//===- bench_pipeline.cpp - Experiment E5 ----------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// E5 (paper Section 4): multi-level cascades. With the straight-line
// program, "All calls to read must start before any calls to compute can
// be made. All results from read must be claimed, and all calls to
// compute must be started, before any calls to write can be made." The
// composed program (one process per stream, promise queues between)
// pipelines the levels.
//
// Sweep the number of items and the number of levels (2..4 stages, each
// on its own guardian). Expect composed ~ max over stages instead of sum,
// so the speedup approaches the level count for balanced stages.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "promises/core/Coenter.h"
#include "promises/core/PromiseQueue.h"
#include "promises/runtime/RemoteHandler.h"
#include "promises/support/StrUtil.h"

#include <benchmark/benchmark.h>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;

namespace {

constexpr sim::Time Service = sim::usec(200);

struct CascadeWorld {
  sim::Simulation S;
  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<Guardian> Client;
  std::vector<std::unique_ptr<Guardian>> StageG;
  std::vector<HandlerRef<int32_t(int32_t)>> Stage;

  explicit CascadeWorld(int Levels, GuardianConfig GC = GuardianConfig()) {
    Net = std::make_unique<net::SimNetwork>(S, net::NetConfig{});
    Client = std::make_unique<Guardian>(*Net, Net->addNode("client"),
                                        "client", GC);
    for (int L = 0; L < Levels; ++L) {
      auto G = std::make_unique<Guardian>(
          *Net, Net->addNode(strprintf("stage%d", L)),
          strprintf("stage%d", L), GC);
      Stage.push_back(G->addHandler<int32_t(int32_t)>(
          "work", [this](int32_t V) -> Outcome<int32_t> {
            S.sleep(Service);
            return V + 1;
          }));
      StageG.push_back(std::move(G));
    }
  }
};

void BM_Sequential(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  const int Levels = static_cast<int>(State.range(1));
  const size_t Window = static_cast<size_t>(State.range(2));
  for (auto _ : State) {
    GuardianConfig GC;
    GC.Stream.MaxInFlightCalls = Window;
    CascadeWorld W(Levels, GC);
    W.Client->spawnProcess("main", [&] {
      auto A = W.Client->newAgent();
      std::vector<int32_t> Vals(static_cast<size_t>(N));
      for (int I = 0; I < N; ++I)
        Vals[static_cast<size_t>(I)] = I;
      for (int L = 0; L < Levels; ++L) {
        auto H = bindHandler(*W.Client, A, W.Stage[static_cast<size_t>(L)]);
        std::vector<Promise<int32_t>> Ps;
        for (int32_t V : Vals)
          Ps.push_back(H.streamCall(V));
        H.flush();
        for (int I = 0; I < N; ++I)
          Vals[static_cast<size_t>(I)] =
              Ps[static_cast<size_t>(I)].claim().value();
      }
    });
    W.S.run();
    State.counters["vms"] = sim::toMillis(W.S.now());
    benchutil::exportObservability(
        strprintf("pipeline_seq_n%d_l%d_w%zu", N, Levels, Window), W.S);
  }
}

void BM_Composed(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  const int Levels = static_cast<int>(State.range(1));
  const size_t Window = static_cast<size_t>(State.range(2));
  for (auto _ : State) {
    GuardianConfig GC;
    GC.Stream.MaxInFlightCalls = Window;
    CascadeWorld W(Levels, GC);
    W.Client->spawnProcess("main", [&] {
      // Level L consumes Queues[L-1] and produces Queues[L]; level 0
      // generates items.
      std::vector<std::unique_ptr<PromiseQueue<Promise<int32_t>>>> Queues;
      for (int L = 0; L < Levels; ++L)
        Queues.push_back(
            std::make_unique<PromiseQueue<Promise<int32_t>>>(W.S));
      Coenter Co(W.S);
      for (int L = 0; L < Levels; ++L) {
        Co.arm(strprintf("level%d", L), [&, L]() -> ArmResult {
          auto A = W.Client->newAgent();
          auto H = bindHandler(*W.Client, A, W.Stage[static_cast<size_t>(L)]);
          for (int32_t I = 0; I < N; ++I) {
            int32_t In = I;
            if (L > 0)
              In = Queues[static_cast<size_t>(L - 1)]->deq().claim().value();
            Queues[static_cast<size_t>(L)]->enq(H.streamCall(In));
          }
          return H.synch().toExn();
        });
      }
      ArmResult Bad = Co.run();
      // Drain the final queue (results of the last stage).
      for (int I = 0; I < N && !Bad; ++I)
        Queues[static_cast<size_t>(Levels - 1)]->deq().claim();
    });
    W.S.run();
    State.counters["vms"] = sim::toMillis(W.S.now());
    benchutil::exportObservability(
        strprintf("pipeline_comp_n%d_l%d_w%zu", N, Levels, Window), W.S);
  }
}

// Wire-integrity ablation on the same hot path: every datagram the cascade
// sends is sealed in a checksummed frame and verified on receipt
// (wire/Frame.h). Arg(1) toggles StreamConfig::FrameChecksums; comparing
// the two rows isolates the CRC32C cost. Virtual time ("vms") is identical
// by construction — the checksum is pure CPU — so the interesting number
// is real time per iteration. Measured overhead is well under 5% (see
// docs/PROTOCOL.md "Checksum cost").
void BM_ChecksumOverhead(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  const bool Checksums = State.range(1) != 0;
  const int Levels = 2;
  for (auto _ : State) {
    GuardianConfig GC;
    GC.Stream.FrameChecksums = Checksums;
    CascadeWorld W(Levels, GC);
    W.Client->spawnProcess("main", [&] {
      auto A = W.Client->newAgent();
      for (int L = 0; L < Levels; ++L) {
        auto H = bindHandler(*W.Client, A, W.Stage[static_cast<size_t>(L)]);
        std::vector<Promise<int32_t>> Ps;
        for (int32_t I = 0; I < N; ++I)
          Ps.push_back(H.streamCall(I));
        H.flush();
        for (auto &P : Ps)
          P.claim();
      }
    });
    W.S.run();
    State.counters["vms"] = sim::toMillis(W.S.now());
  }
  State.SetLabel(Checksums ? "checksums on" : "checksums off");
}

} // namespace

// The third dimension is the in-flight window (0 = unbounded): pipelining
// through a bounded window still beats the straight-line program, since
// the stages overlap even when each stream admits only 32 unacked calls.
BENCHMARK(BM_Sequential)
    ->ArgsProduct({{32, 128, 512}, {2, 3, 4}, {0, 32}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Composed)
    ->ArgsProduct({{32, 128, 512}, {2, 3, 4}, {0, 32}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ChecksumOverhead)
    ->ArgsProduct({{512, 2048}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
