//===- bench_breaks.cpp - Experiment E9 ------------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// E9 (paper Sections 2, 3): when the guarantees cannot be kept the stream
// breaks; outstanding calls terminate with unavailable, and "the system
// tries hard to deliver messages before breaking a stream, so there is no
// point in the caller repeating a call immediately". Loss is absorbed by
// retransmission well below the break threshold.
//
// Three measurements:
//  - BM_LossOverhead: completion time and retransmissions for 256 calls
//    as the loss rate rises (0..40%): graceful degradation, no breaks.
//  - BM_CrashDetection: server crashes mid-stream; report the virtual
//    time from crash to every outstanding promise being resolved, sweeping
//    the retry budget (detection ~ RetransmitTimeout * MaxRetries).
//  - BM_RestartCost: break + auto-restart + rerun of the workload.
//  - BM_FailFast: 16 sequential calls against a partitioned server, with
//    the circuit breaker off (every call blocks for the full break
//    detection) vs on (the first break trips the breaker and the rest
//    resolve as born-ready unavailable without touching the network).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace promises;
using namespace promises::benchutil;
using namespace promises::core;
using namespace promises::runtime;

namespace {

void BM_LossOverhead(benchmark::State &State) {
  const double Loss = static_cast<double>(State.range(0)) / 100.0;
  const int N = 256;
  for (auto _ : State) {
    net::NetConfig NC;
    NC.LossRate = Loss;
    NC.Seed = 7;
    KvWorld W(NC);
    int Failures = 0;
    W.Client->spawnProcess("driver", [&] {
      auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
      std::vector<Promise<std::string>> Ps;
      for (int I = 0; I < N; ++I)
        Ps.push_back(H.streamCall(std::string("payload")));
      H.flush();
      for (auto &P : Ps)
        if (!P.claim().isNormal())
          ++Failures;
    });
    W.S.run();
    reportVirtual(State, W.S.now(), N, W.Net->counters());
    State.counters["retrans"] = static_cast<double>(
        W.Client->transport().counters().Retransmissions);
    State.counters["failed"] = Failures;
  }
}

void BM_CrashDetection(benchmark::State &State) {
  const int MaxRetries = static_cast<int>(State.range(0));
  for (auto _ : State) {
    runtime::GuardianConfig GC;
    GC.Stream.RetransmitTimeout = sim::msec(20);
    GC.Stream.MaxRetries = MaxRetries;
    KvWorld W(net::NetConfig(), GC);
    sim::Time CrashAt = 0, ResolvedAt = 0;
    W.Client->spawnProcess("driver", [&] {
      auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
      std::vector<Promise<std::string>> Ps;
      for (int I = 0; I < 32; ++I)
        Ps.push_back(H.streamCall(std::string("x")));
      H.flush();
      // Crash the server while calls are outstanding.
      CrashAt = W.S.now();
      W.Net->crash(W.Server->nodeId());
      for (auto &P : Ps)
        P.claim();
      ResolvedAt = W.S.now();
    });
    W.S.run();
    State.counters["detect_ms"] = sim::toMillis(ResolvedAt - CrashAt);
    State.counters["breaks"] = static_cast<double>(
        W.Client->transport().counters().SenderBreaks);
  }
}

void BM_RestartCost(benchmark::State &State) {
  // Partition, break, heal, auto-restart, rerun: the full recovery cycle.
  for (auto _ : State) {
    runtime::GuardianConfig GC;
    GC.Stream.RetransmitTimeout = sim::msec(20);
    GC.Stream.MaxRetries = 3;
    KvWorld W(net::NetConfig(), GC);
    sim::Time HealedAt = 0, RecoveredAt = 0;
    W.Client->spawnProcess("driver", [&] {
      auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
      W.Net->setPartitioned(W.Server->nodeId(), W.Client->nodeId(), true);
      auto P = H.streamCall(std::string("lost"));
      H.flush();
      P.claim(); // Unavailable after the retry budget.
      W.Net->setPartitioned(W.Server->nodeId(), W.Client->nodeId(), false);
      HealedAt = W.S.now();
      // First call after the heal reincarnates the stream automatically.
      for (int I = 0; I < 16; ++I)
        H.streamCall(std::string("retry"));
      H.synch();
      RecoveredAt = W.S.now();
    });
    W.S.run();
    State.counters["recover_ms"] = sim::toMillis(RecoveredAt - HealedAt);
    State.counters["restarts"] = static_cast<double>(
        W.Client->transport().counters().Restarts);
  }
}

void BM_FailFast(benchmark::State &State) {
  // Arg: breaker threshold (0 = breaker off). With a flapping (here:
  // partitioned) endpoint, fail-fast turns N sequential break detections
  // into one detection plus N-1 immediate unavailable outcomes.
  const size_t Threshold = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    runtime::GuardianConfig GC;
    GC.Stream.RetransmitTimeout = sim::msec(20);
    GC.Stream.MaxRetries = 3;
    GC.Stream.BreakerThreshold = Threshold;
    KvWorld W(net::NetConfig(), GC);
    sim::Time Start = 0, ResolvedAt = 0;
    W.Client->spawnProcess("driver", [&] {
      auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
      W.Net->setPartitioned(W.Server->nodeId(), W.Client->nodeId(), true);
      Start = W.S.now();
      for (int I = 0; I < 16; ++I) {
        auto P = H.streamCall(std::string("x"));
        H.flush();
        P.claim(); // Unavailable: slow break, or instant once tripped.
      }
      ResolvedAt = W.S.now();
    });
    W.S.run();
    State.counters["resolve_ms"] = sim::toMillis(ResolvedAt - Start);
    State.counters["fast_fails"] = static_cast<double>(
        W.Client->transport().counters().BreakerFastFails);
    State.counters["breaks"] = static_cast<double>(
        W.Client->transport().counters().SenderBreaks);
  }
}

} // namespace

BENCHMARK(BM_LossOverhead)->Arg(0)->Arg(10)->Arg(20)->Arg(40)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CrashDetection)->Arg(1)->Arg(3)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RestartCost)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FailFast)->Arg(0)->Arg(2)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
