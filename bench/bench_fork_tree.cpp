//===- bench_fork_tree.cpp - Experiment E8 ---------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// E8 (paper Section 3.2): forked promises as a local concurrency
// mechanism — "parallel insertion and searching of elements in a binary
// tree in which the nodes of the tree are promises. If a search reaches a
// node that cannot be claimed yet, it waits until the promise is ready."
//
// Workload: build a balanced promise-node tree over N keys where creating
// each node costs simulated work, then run M searches that race the
// construction. Compare against a serial build-then-search. Expect the
// forked version's virtual time ~ per-level work (construction
// parallelism) plus search depth, far below the serial sum, with the gap
// widening in N.
//
//===----------------------------------------------------------------------===//

#include "promises/core/Fork.h"

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <vector>

using namespace promises;
using namespace promises::core;

namespace {

constexpr sim::Time NodeCost = sim::usec(100);

struct Node;
using NodePromise = Promise<std::shared_ptr<Node>>;
struct Node {
  int Key = 0;
  NodePromise Left, Right;
};

NodePromise buildForked(sim::Simulation &S, std::vector<int> Keys) {
  return fork(S, [&S, Keys = std::move(Keys)]() -> std::shared_ptr<Node> {
    if (Keys.empty())
      return nullptr;
    S.sleep(NodeCost);
    size_t Mid = Keys.size() / 2;
    auto N = std::make_shared<Node>();
    N->Key = Keys[Mid];
    N->Left =
        buildForked(S, std::vector<int>(Keys.begin(),
                                        Keys.begin() + static_cast<long>(Mid)));
    N->Right = buildForked(
        S, std::vector<int>(Keys.begin() + static_cast<long>(Mid) + 1,
                            Keys.end()));
    return N;
  });
}

bool searchPromiseTree(NodePromise Root, int Key) {
  NodePromise Cur = std::move(Root);
  while (true) {
    auto N = Cur.claim().value(); // Waits if the subtree is unbuilt.
    if (!N)
      return false;
    if (N->Key == Key)
      return true;
    Cur = Key < N->Key ? N->Left : N->Right;
  }
}

void BM_ForkedBuildAndSearch(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    sim::Simulation S;
    std::vector<int> Keys;
    for (int I = 0; I < N; ++I)
      Keys.push_back(I * 2); // Even keys present.
    int Found = 0;
    S.spawn("driver", [&] {
      NodePromise Root = buildForked(S, Keys);
      // Searches race construction; promise nodes make that safe.
      for (int Q = 0; Q < 32; ++Q)
        Found += searchPromiseTree(Root, (Q * 2) % (2 * N)) ? 1 : 0;
    });
    S.run();
    benchmark::DoNotOptimize(Found);
    State.counters["vms"] = sim::toMillis(S.now());
    State.counters["procs"] = static_cast<double>(S.processesSpawned());
  }
}

void BM_SerialBuildAndSearch(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    sim::Simulation S;
    struct PlainNode {
      int Key;
      std::unique_ptr<PlainNode> Left, Right;
    };
    std::function<std::unique_ptr<PlainNode>(int, int)> Build =
        [&](int Lo, int Hi) -> std::unique_ptr<PlainNode> {
      if (Lo >= Hi)
        return nullptr;
      S.sleep(NodeCost);
      int Mid = Lo + (Hi - Lo) / 2;
      auto Nd = std::make_unique<PlainNode>();
      Nd->Key = Mid * 2;
      Nd->Left = Build(Lo, Mid);
      Nd->Right = Build(Mid + 1, Hi);
      return Nd;
    };
    int Found = 0;
    S.spawn("driver", [&] {
      auto Root = Build(0, N);
      for (int Q = 0; Q < 32; ++Q) {
        int Key = (Q * 2) % (2 * N);
        const PlainNode *Cur = Root.get();
        while (Cur) {
          if (Cur->Key == Key) {
            ++Found;
            break;
          }
          Cur = Key < Cur->Key ? Cur->Left.get() : Cur->Right.get();
        }
      }
    });
    S.run();
    benchmark::DoNotOptimize(Found);
    State.counters["vms"] = sim::toMillis(S.now());
    State.counters["procs"] = static_cast<double>(S.processesSpawned());
  }
}

} // namespace

BENCHMARK(BM_ForkedBuildAndSearch)->Arg(63)->Arg(255)->Arg(1023)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SerialBuildAndSearch)->Arg(63)->Arg(255)->Arg(1023)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
