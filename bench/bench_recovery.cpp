//===- bench_recovery.cpp - Stable storage / recovery bench (BENCH_10) ----===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Measures what durability costs and what recovery costs
// (docs/DURABILITY.md):
//
//   BM_PutOverhead    end-to-end KvStore put, volatile vs WAL-backed, on
//                     the simulator: virtual ns/call for both, so the
//                     force (sync) cost of every acknowledged write is a
//                     deterministic number, plus the wall-clock CPU cost
//                     of the logging itself (encode + frame + CRC).
//   BM_AppendWall     raw append+sync wall cost per record, log only.
//   BM_Recovery       wall-clock replay time against log length (1k /
//                     10k / 100k records): scan + CRC-check + decode +
//                     apply, the full restart path.
//   BM_TornTail       the fault model's two detection paths (CRC-damaged
//                     final record, truncated final record) must both be
//                     detected and both stop replay cleanly.
//
// Bespoke wall-clock driver (no google-benchmark: half the numbers are
// virtual-time and all of them are one-shot batch measurements).
//
//   bench_recovery --records 100000 --out BENCH_10.json
//
//===----------------------------------------------------------------------===//

#include "promises/apps/KvStore.h"
#include "promises/runtime/RemoteHandler.h"
#include "promises/storage/Storage.h"
#include "promises/support/StrUtil.h"
#include "promises/wire/Encoder.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace promises;
using namespace promises::runtime;
using Clock = std::chrono::steady_clock;

namespace {

struct Options {
  size_t PutCalls = 2000;   ///< End-to-end puts per variant.
  size_t Records = 100000;  ///< Largest recovery log length.
  std::string Out;          ///< JSON output path ("" = stdout only).
};

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --put-calls N  end-to-end puts per variant (default 2000)\n"
               "  --records N    largest recovery log (default 100000)\n"
               "  --out FILE     also write the JSON record to FILE\n",
               Argv0);
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    auto Need = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    const char *A = Argv[I];
    const char *V = nullptr;
    if (!std::strcmp(A, "--put-calls")) {
      if (!(V = Need(A)))
        return false;
      O.PutCalls = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--records")) {
      if (!(V = Need(A)))
        return false;
      O.Records = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--out")) {
      if (!(V = Need(A)))
        return false;
      O.Out = V;
    } else {
      std::fprintf(stderr,
                   "error: unknown flag %s (valid: --put-calls --records "
                   "--out)\n",
                   A);
      return false;
    }
  }
  if (O.PutCalls == 0 || O.Records == 0) {
    std::fprintf(stderr, "error: --put-calls/--records must be > 0\n");
    return false;
  }
  return true;
}

double wallNs(Clock::time_point T0) {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::
                                 nanoseconds>(Clock::now() - T0)
                                 .count());
}

/// End-to-end sequential puts through the full client/server stack.
/// Returns {virtual ns/call, wall ns/call}.
struct PutCost {
  double VirtualNs = 0;
  double WallNs = 0;
};

PutCost runPuts(size_t Calls, bool Durable) {
  sim::Simulation S;
  net::SimNetwork Net(S, net::NetConfig());
  net::NodeId SN = Net.addNode("server");
  net::NodeId CN = Net.addNode("client");
  runtime::Guardian Server(Net, SN, "server");
  runtime::Guardian Client(Net, CN, "client");
  storage::StableStore *Wal = nullptr;
  storage::StorageConfig SC;
  if (Durable)
    Wal = new storage::StableStore(S, SC);
  apps::KvStoreConfig KC;
  KC.Wal = Wal; // SnapshotEvery stays on: compaction is part of the cost.
  apps::KvStore Kv = apps::installKvStore(Server, KC);

  sim::Time Span = 0;
  Client.spawnProcess("driver", [&] {
    auto H = bindHandler(Client, Client.newAgent(), Kv.Put);
    sim::Time T0 = S.now();
    for (size_t I = 0; I != Calls; ++I)
      H.call(strprintf("k%zu", I % 512), strprintf("v%zu", I));
    Span = S.now() - T0;
  });
  Clock::time_point W0 = Clock::now();
  S.run();
  double Wall = wallNs(W0);
  delete Wal;
  return {static_cast<double>(Span) / static_cast<double>(Calls),
          Wall / static_cast<double>(Calls)};
}

/// Raw append+sync wall cost, log only (no network, no handlers).
double runAppendWall(size_t Records) {
  sim::Simulation S;
  storage::StorageConfig SC;
  SC.SyncTime = 0; // Isolate the CPU cost; virtual sync time is policy.
  storage::StableStore Store(S, SC);
  wire::Bytes Payload(32, 0xab);
  Clock::time_point W0 = Clock::now();
  for (size_t I = 0; I != Records; ++I) {
    Store.append(Payload);
    if ((I & 63) == 0)
      Store.sync();
  }
  Store.sync();
  return wallNs(W0) / static_cast<double>(Records);
}

/// Builds an N-record kv redo log, then measures the wall time of the
/// full restart path: scan (CRC every record) + decode + apply.
struct RecoveryPoint {
  size_t Records = 0;
  double WallMs = 0;
  bool Complete = false;
};

RecoveryPoint runRecovery(size_t Records) {
  sim::Simulation S;
  storage::StorageConfig SC;
  SC.SyncTime = 0;
  storage::StableStore Store(S, SC);
  for (size_t I = 0; I != Records; ++I) {
    wire::Encoder E;
    E.writeString(strprintf("k%zu", I % 4096));
    E.writeString(strprintf("v%zu", I));
    Store.append(E.take());
  }
  Store.sync();

  Clock::time_point W0 = Clock::now();
  storage::StableStore::Recovery R = Store.scan();
  auto Data = apps::replayKvData(R);
  double Ms = wallNs(W0) / 1e6;

  bool Complete = !R.TornTail && R.Records.size() == Records &&
                  Data.size() == std::min<size_t>(Records, 4096) &&
                  Data.count("k0") != 0;
  return {Records, Ms, Complete};
}

/// Drives the fault model until both torn-tail detection paths fire: a
/// truncated final record (short read) and a CRC-damaged final record
/// (bit flip). Returns true only if both were detected and replay
/// stopped at the synced prefix each time.
bool runTornTail() {
  bool SawTruncated = false, SawDamaged = false;
  for (uint64_t Seed = 1; Seed != 257 && !(SawTruncated && SawDamaged);
       ++Seed) {
    sim::Simulation S;
    storage::StorageConfig SC;
    SC.SyncTime = 0;
    SC.Faults = {1.0, 1.0, Seed}; // Always lose, always tear.
    storage::StableStore Store(S, SC);
    wire::Encoder E1;
    E1.writeString("stable");
    E1.writeString("yes");
    Store.append(E1.take());
    Store.sync();
    wire::Encoder E2;
    E2.writeString("unsynced");
    E2.writeString("gone");
    wire::Bytes Rec = E2.take();
    uint64_t RecLen = 9 + Rec.size(); // Framing header + payload.
    Store.append(Rec);
    Store.crash(); // Tears the un-synced record.
    storage::StableStore::Recovery R = Store.scan();
    if (!R.TornTail || R.Records.size() != 1)
      return false; // Tear missed or replay ran past it.
    auto Data = apps::replayKvData(R);
    if (Data.size() != 1 || Data.count("stable") == 0)
      return false;
    // DiscardedBytes equal to the full record length means the tear
    // kept every byte and flipped one (the CRC path); anything shorter
    // is a partial prefix (the truncation path).
    if (R.DiscardedBytes == RecLen)
      SawDamaged = true;
    else if (R.DiscardedBytes > 0)
      SawTruncated = true;
    else
      return false; // Torn tail reported with nothing discarded.
  }
  return SawTruncated && SawDamaged;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    usage(Argv[0]);
    return 2;
  }

  std::fprintf(stderr, "BM_PutOverhead %zu calls x 2 variants...\n",
               O.PutCalls);
  PutCost Volatile = runPuts(O.PutCalls, false);
  PutCost Durable = runPuts(O.PutCalls, true);
  std::fprintf(stderr, "BM_AppendWall %zu records...\n", O.Records);
  double AppendNs = runAppendWall(O.Records);
  std::fprintf(stderr, "BM_Recovery 1k/10k/%zuk records...\n",
               O.Records / 1000);
  RecoveryPoint R1 = runRecovery(1000);
  RecoveryPoint R10 = runRecovery(10000);
  RecoveryPoint R100 = runRecovery(O.Records);
  std::fprintf(stderr, "BM_TornTail...\n");
  bool Torn = runTornTail();

  bool Complete = R1.Complete && R10.Complete && R100.Complete;
  double RecPerSec =
      R100.WallMs > 0 ? static_cast<double>(R100.Records) /
                            (R100.WallMs / 1e3)
                      : 0;
  std::string Json = strprintf(
      "{\"bench\": \"bench_recovery\", \"pr\": 10,\n"
      " \"put_volatile\": {\"virtual_ns\": %.0f, \"wall_ns\": %.0f},\n"
      " \"put_durable\": {\"virtual_ns\": %.0f, \"wall_ns\": %.0f},\n"
      " \"wal_overhead_virtual_ns\": %.0f,\n"
      " \"append_wall_ns\": %.1f,\n"
      " \"recovery\": [{\"records\": %zu, \"wall_ms\": %.2f}, "
      "{\"records\": %zu, \"wall_ms\": %.2f}, "
      "{\"records\": %zu, \"wall_ms\": %.2f}],\n"
      " \"replay_records_per_s\": %.0f,\n"
      " \"replay_complete\": %s, \"torn_detected\": %s}\n",
      Volatile.VirtualNs, Volatile.WallNs, Durable.VirtualNs,
      Durable.WallNs, Durable.VirtualNs - Volatile.VirtualNs, AppendNs,
      R1.Records, R1.WallMs, R10.Records, R10.WallMs, R100.Records,
      R100.WallMs, RecPerSec, Complete ? "true" : "false",
      Torn ? "true" : "false");
  std::fputs(Json.c_str(), stdout);
  if (!O.Out.empty()) {
    FILE *F = std::fopen(O.Out.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", O.Out.c_str());
      return 1;
    }
    std::fputs(Json.c_str(), F);
    std::fclose(F);
  }
  return Complete && Torn ? 0 : 1;
}
