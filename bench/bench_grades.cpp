//===- bench_grades.cpp - Experiment E4 ------------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// E4 (paper Sections 3.1, 4): the grades program. The Figure 3-1 version
// delays streaming to the printer until all record_grade calls have been
// initiated; the Figure 4-2 coenter version overlaps recording and
// printing. "Obviously, this overlapping of recording and printing
// becomes more important as the number of calls increases."
//
// Sweep the number of students; report virtual completion time for the
// figure3-1 and figure4-2 programs. Expect figure4-2 to win by an
// increasing margin as N grows.
//
//===----------------------------------------------------------------------===//

#include "promises/apps/GradesDb.h"
#include "promises/apps/Printer.h"
#include "promises/core/Coenter.h"
#include "promises/core/Fork.h"
#include "promises/core/PromiseQueue.h"
#include "promises/support/StrUtil.h"

#include <benchmark/benchmark.h>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;

namespace {

constexpr sim::Time ProduceCost = sim::usec(150);

struct GradesWorld {
  sim::Simulation S;
  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<Guardian> DbG, PrG, Client;
  apps::GradesDb Db;
  apps::Printer Pr;

  GradesWorld() {
    Net = std::make_unique<net::SimNetwork>(S, net::NetConfig{});
    DbG = std::make_unique<Guardian>(*Net, Net->addNode("db"), "db");
    PrG = std::make_unique<Guardian>(*Net, Net->addNode("pr"), "pr");
    Client = std::make_unique<Guardian>(*Net, Net->addNode("cl"), "cl");
    Db = apps::installGradesDb(*DbG);
    Pr = apps::installPrinter(*PrG);
  }
};

std::vector<std::pair<std::string, int32_t>> makeGrades(int N) {
  std::vector<std::pair<std::string, int32_t>> G;
  for (int I = 0; I < N; ++I)
    G.emplace_back(strprintf("student%05d", I), 60 + (I * 7) % 40);
  return G;
}

void BM_Figure31(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    GradesWorld W;
    auto Grades = makeGrades(N);
    W.Client->spawnProcess("main", [&] {
      auto A = W.Client->newAgent();
      auto Rec = bindHandler(*W.Client, A, W.Db.RecordGrade);
      auto Print = bindHandler(*W.Client, A, W.Pr.Print);
      std::vector<Promise<double, apps::NoSuchStudent>> Averages;
      for (auto &[Stu, Grade] : Grades) {
        W.S.sleep(ProduceCost);
        Averages.push_back(Rec.streamCall(Stu, Grade));
      }
      Rec.flush();
      for (size_t I = 0; I != Averages.size(); ++I)
        Print.streamCall(Grades[I].first + ": " +
                         formatDouble(Averages[I].claim().value(), 1));
      Print.synch();
    });
    W.S.run();
    State.counters["vms"] = sim::toMillis(W.S.now());
    State.counters["printed"] = static_cast<double>(W.Pr.Out->Lines.size());
  }
}

void BM_Figure41(benchmark::State &State) {
  // The forks variant (paper Figure 4-1): same composition as 4-2 but
  // hand-rolled with fork + claim instead of coenter arms.
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    GradesWorld W;
    auto Grades = makeGrades(N);
    W.Client->spawnProcess("main", [&] {
      PromiseQueue<Promise<double, apps::NoSuchStudent>> AveQ(W.S);
      auto UseDb = fork(W.S, [&]() -> Outcome<int32_t> {
        auto A = W.Client->newAgent();
        auto Rec = bindHandler(*W.Client, A, W.Db.RecordGrade);
        for (auto &[Stu, Grade] : Grades) {
          W.S.sleep(ProduceCost);
          AveQ.enq(Rec.streamCall(Stu, Grade));
        }
        return Rec.synch().ok() ? Outcome<int32_t>(0)
                                : Outcome<int32_t>(Failure{"cannot_record"});
      });
      auto DoPrint = fork(W.S, [&]() -> Outcome<int32_t> {
        auto A = W.Client->newAgent();
        auto Print = bindHandler(*W.Client, A, W.Pr.Print);
        for (size_t I = 0; I != Grades.size(); ++I) {
          auto Ave = AveQ.deq();
          Print.streamCall(Grades[I].first + ": " +
                           formatDouble(Ave.claim().value(), 1));
        }
        return Print.synch().ok() ? Outcome<int32_t>(0)
                                  : Outcome<int32_t>(Failure{"cannot_print"});
      });
      UseDb.claim();
      DoPrint.claim();
    });
    W.S.run();
    State.counters["vms"] = sim::toMillis(W.S.now());
    State.counters["printed"] = static_cast<double>(W.Pr.Out->Lines.size());
  }
}

void BM_Figure42(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    GradesWorld W;
    auto Grades = makeGrades(N);
    W.Client->spawnProcess("main", [&] {
      PromiseQueue<Promise<double, apps::NoSuchStudent>> AveQ(W.S);
      Coenter(W.S)
          .arm("recording",
               [&]() -> ArmResult {
                 auto A = W.Client->newAgent();
                 auto Rec = bindHandler(*W.Client, A, W.Db.RecordGrade);
                 for (auto &[Stu, Grade] : Grades) {
                   W.S.sleep(ProduceCost);
                   AveQ.enq(Rec.streamCall(Stu, Grade));
                 }
                 return Rec.synch().toExn();
               })
          .arm("printing",
               [&]() -> ArmResult {
                 auto A = W.Client->newAgent();
                 auto Print = bindHandler(*W.Client, A, W.Pr.Print);
                 for (size_t I = 0; I != Grades.size(); ++I) {
                   auto Ave = AveQ.deq();
                   Print.streamCall(Grades[I].first + ": " +
                                    formatDouble(Ave.claim().value(), 1));
                 }
                 return Print.synch().toExn();
               })
          .run();
    });
    W.S.run();
    State.counters["vms"] = sim::toMillis(W.S.now());
    State.counters["printed"] = static_cast<double>(W.Pr.Out->Lines.size());
  }
}

} // namespace

BENCHMARK(BM_Figure31)->Arg(10)->Arg(50)->Arg(200)->Arg(800)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Figure41)->Arg(10)->Arg(50)->Arg(200)->Arg(800)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Figure42)->Arg(10)->Arg(50)->Arg(200)->Arg(800)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
