//===- bench_per_item.cpp - Experiment E10 ---------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// E10 (paper Section 4.3): composing streams with a process per *data
// item* instead of a process per *stream* gives extra (filter)
// concurrency but "there are many more processes to manage than in the
// process-per-stream case. This can impose a substantial burden on the
// system, and even slow down the program ... the process-per-stream
// structure avoids the whole problem and therefore is better, at least on
// a sequential machine."
//
// Workload: a two-level cascade over N items. process-per-stream = two
// coenter arms + a promise queue. process-per-item = one coenter arm per
// item; each arm pushes its item through both streams, with per-stream
// ticket queues enforcing call order. Report virtual time, processes
// spawned, and context switches (the management burden).
//
//===----------------------------------------------------------------------===//

#include "promises/core/Coenter.h"
#include "promises/core/PromiseQueue.h"
#include "promises/runtime/RemoteHandler.h"

#include <benchmark/benchmark.h>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;

namespace {

struct TwoStageWorld {
  sim::Simulation S;
  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<Guardian> AG, BG, Client;
  HandlerRef<int32_t(int32_t)> StageA;
  HandlerRef<wire::Unit(int32_t)> StageB;

  TwoStageWorld() {
    Net = std::make_unique<net::SimNetwork>(S, net::NetConfig{});
    AG = std::make_unique<Guardian>(*Net, Net->addNode("a"), "a");
    BG = std::make_unique<Guardian>(*Net, Net->addNode("b"), "b");
    Client = std::make_unique<Guardian>(*Net, Net->addNode("cl"), "cl");
    StageA = AG->addHandler<int32_t(int32_t)>(
        "work", [this](int32_t V) -> Outcome<int32_t> {
          S.sleep(sim::usec(100));
          return V * 2;
        });
    StageB = BG->addHandler<wire::Unit(int32_t)>(
        "sink", [this](int32_t) -> Outcome<wire::Unit> {
          S.sleep(sim::usec(100));
          return wire::Unit{};
        });
  }
};

void BM_ProcessPerStream(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    TwoStageWorld W;
    W.Client->spawnProcess("main", [&] {
      PromiseQueue<Promise<int32_t>> Q(W.S);
      Coenter(W.S)
          .arm("stageA",
               [&]() -> ArmResult {
                 auto A = W.Client->newAgent();
                 auto H = bindHandler(*W.Client, A, W.StageA);
                 for (int32_t I = 0; I < N; ++I)
                   Q.enq(H.streamCall(I));
                 return H.synch().toExn();
               })
          .arm("stageB",
               [&]() -> ArmResult {
                 auto A = W.Client->newAgent();
                 auto H = bindHandler(*W.Client, A, W.StageB);
                 for (int32_t I = 0; I < N; ++I)
                   H.streamCall(Q.deq().claim().value());
                 return H.synch().toExn();
               })
          .run();
    });
    W.S.run();
    State.counters["vms"] = sim::toMillis(W.S.now());
    State.counters["procs"] = static_cast<double>(W.S.processesSpawned());
    State.counters["switches"] =
        static_cast<double>(W.S.contextSwitches());
  }
}

void BM_ProcessPerItem(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    TwoStageWorld W;
    W.Client->spawnProcess("main", [&] {
      // Per-stream tickets: item I may issue its call on a stream only
      // after item I-1 has issued its call there ("synchronization would
      // be needed to ensure that the calls on each stream were made in
      // order").
      struct Ticket {
        explicit Ticket(sim::Simulation &S) : Turn(S) {}
        int32_t Next = 0;
        sim::WaitQueue Turn;
      };
      Ticket TicketA(W.S), TicketB(W.S);
      auto AgentA = W.Client->newAgent();
      auto AgentB = W.Client->newAgent();
      auto HA = bindHandler(*W.Client, AgentA, W.StageA);
      auto HB = bindHandler(*W.Client, AgentB, W.StageB);

      std::vector<int32_t> Items;
      for (int32_t I = 0; I < N; ++I)
        Items.push_back(I);
      Coenter Co(W.S);
      Co.armEach(Items, [&](int32_t I) -> ArmResult {
        // Stage A, in item order.
        while (TicketA.Next != I)
          TicketA.Turn.wait();
        auto P = HA.streamCall(I);
        TicketA.Next = I + 1;
        TicketA.Turn.notifyAll();
        const auto &O = P.claim();
        if (!O.isNormal())
          return O.toExn();
        // Stage B, in item order (the filter ran in this process).
        while (TicketB.Next != I)
          TicketB.Turn.wait();
        auto P2 = HB.streamCall(O.value());
        TicketB.Next = I + 1;
        TicketB.Turn.notifyAll();
        const auto &O2 = P2.claim();
        return O2.isNormal() ? ArmResult{} : ArmResult(O2.toExn());
      });
      Co.run();
    });
    W.S.run();
    State.counters["vms"] = sim::toMillis(W.S.now());
    State.counters["procs"] = static_cast<double>(W.S.processesSpawned());
    State.counters["switches"] =
        static_cast<double>(W.S.contextSwitches());
  }
}

} // namespace

BENCHMARK(BM_ProcessPerStream)->Arg(64)->Arg(256)->Arg(1024)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProcessPerItem)->Arg(64)->Arg(256)->Arg(1024)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
