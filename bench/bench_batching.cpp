//===- bench_batching.cpp - Experiment E2 ----------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// E2 (paper Section 2): "Buffering allows us to amortize the overhead of
// kernel calls and the transmission delays for messages over several
// calls, especially for small calls and replies."
//
// Workload: 512 stream calls; sweep the batch size (MaxBatchCalls) and
// the payload size. Expect the datagram count to fall ~1/B and completion
// time to fall steeply at small B, with diminishing returns — and the
// relative win to shrink as payloads grow (per-byte cost dominates).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "promises/support/StrUtil.h"

using namespace promises;
using namespace promises::benchutil;
using namespace promises::core;
using namespace promises::runtime;

namespace {

void BM_BatchSweep(benchmark::State &State) {
  const size_t Batch = static_cast<size_t>(State.range(0));
  const size_t PayloadBytes = static_cast<size_t>(State.range(1));
  const int N = 512;
  for (auto _ : State) {
    runtime::GuardianConfig GC;
    GC.Stream.MaxBatchCalls = Batch;
    GC.Stream.MaxBatchBytes = 1 << 30; // Count-driven batching only.
    GC.Stream.MaxReplyBatch = Batch;
    apps::KvStoreConfig KC;
    KC.ServiceTime = 0; // Isolate the transport costs.
    KvWorld W(net::NetConfig(), GC, KC);
    W.Client->spawnProcess("driver", [&] {
      auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
      std::vector<Promise<std::string>> Ps;
      for (int I = 0; I < N; ++I)
        Ps.push_back(H.streamCall(std::string(PayloadBytes, 'x')));
      H.flush();
      for (auto &P : Ps)
        benchmark::DoNotOptimize(P.claim());
    });
    W.S.run();
    reportVirtual(State, W.S.now(), N, W.Net->counters());
    State.counters["bytes"] =
        static_cast<double>(W.Net->counters().BytesSent);
    exportObservability(strprintf("batching_b%zu_p%zu", Batch, PayloadBytes),
                        W.S);
  }
}

// Flow-control companion: a saturating issuer over a lossy link, sweeping
// the in-flight window (0 = unbounded). A bounded window caps the unacked
// buffer a loss episode can force into retransmission, so retransmitted
// bytes and peak occupancy fall as the window shrinks, at some cost in
// completion time.
void BM_WindowSweep(benchmark::State &State) {
  const size_t Window = static_cast<size_t>(State.range(0));
  const int N = 512;
  for (auto _ : State) {
    net::NetConfig NC;
    NC.LossRate = 0.05;
    runtime::GuardianConfig GC;
    GC.Stream.MaxInFlightCalls = Window;
    GC.Stream.MaxRetries = 1000; // The loss is noise, not a break.
    apps::KvStoreConfig KC;
    KC.ServiceTime = 0;
    KvWorld W(NC, GC, KC);
    W.Client->spawnProcess("driver", [&] {
      auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
      std::vector<Promise<std::string>> Ps;
      for (int I = 0; I < N; ++I)
        Ps.push_back(H.streamCall(std::string(8, 'x')));
      H.flush();
      for (auto &P : Ps)
        benchmark::DoNotOptimize(P.claim());
    });
    W.S.run();
    reportVirtual(State, W.S.now(), N, W.Net->counters());
    const stream::StreamCounters C = W.Client->transport().counters();
    State.counters["retx_B"] = static_cast<double>(C.RetransmittedBytes);
    State.counters["blocked"] = static_cast<double>(C.CallsBlocked);
    exportObservability(strprintf("windowsweep_w%zu", Window), W.S);
  }
}

} // namespace

BENCHMARK(BM_BatchSweep)
    ->ArgsProduct({{1, 2, 4, 8, 16, 32, 64}, {8, 256}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WindowSweep)
    ->Args({0})->Args({8})->Args({32})->Args({128})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
