//===- bench_spawn_scale.cpp - Process-scale microbenches (BENCH_6) -------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Measures the kernel numbers the fiber runtime exists for (ROADMAP item
// 1, docs/RUNTIME.md): how fast processes spawn, what a scheduler context
// switch costs on each backend, and how many concurrently-blocked
// processes fit in memory. Unlike the E-series benchmarks these measure
// *wall-clock* cost of the scheduler itself, not virtual-time behavior of
// the protocol stack, so this is a bespoke driver rather than a
// google-benchmark harness:
//
//   BM_SpawnScale      spawn N processes, block them all on one queue,
//                      record spawn rate, peak live count, and RSS.
//   BM_SwitchRoundRobin K processes yield in a loop; wall ns per scheduler
//                      round trip (suspend + dispatch + resume). K > 1 so
//                      the ready set looks like a real simulation's, not a
//                      single warm ping-pong pair.
//
// Writes the repo's first BENCH_*.json trajectory point:
//
//   bench_spawn_scale --procs 1000000 --out BENCH_6.json
//
//===----------------------------------------------------------------------===//

#include "promises/sim/Simulation.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/resource.h>
#include <unistd.h>

using namespace promises;
using namespace promises::sim;

namespace {

struct Options {
  size_t Procs = 1'000'000;       ///< Fiber spawn-scale process count.
  size_t ThreadProcs = 2'000;     ///< Thread-backend comparison count.
  size_t SwitchProcs = 64;        ///< Round-robin yielders (both backends).
  size_t SwitchIters = 2'000'000; ///< Fiber total yields across yielders.
  size_t ThreadSwitchIters = 20'000; ///< Thread total yields.
  std::string Out; ///< JSON output path ("" = stdout only).
};

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --procs N              fiber spawn-scale processes (default 1M)\n"
      "  --thread-procs N       thread-backend comparison (default 2000)\n"
      "  --switch-procs N       round-robin yielder count (default 64)\n"
      "  --switch-iters N       fiber total yields (default 2M)\n"
      "  --thread-switch-iters N  thread total yields (default 20k)\n"
      "  --out FILE             also write the JSON record to FILE\n",
      Argv0);
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    auto Need = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    const char *A = Argv[I];
    const char *V = nullptr;
    if (!std::strcmp(A, "--procs")) {
      if (!(V = Need(A)))
        return false;
      O.Procs = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--thread-procs")) {
      if (!(V = Need(A)))
        return false;
      O.ThreadProcs = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--switch-procs")) {
      if (!(V = Need(A)))
        return false;
      O.SwitchProcs = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--switch-iters")) {
      if (!(V = Need(A)))
        return false;
      O.SwitchIters = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--thread-switch-iters")) {
      if (!(V = Need(A)))
        return false;
      O.ThreadSwitchIters = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--out")) {
      if (!(V = Need(A)))
        return false;
      O.Out = V;
    } else {
      std::fprintf(stderr,
                   "error: unknown flag %s (valid: --procs --thread-procs "
                   "--switch-procs --switch-iters --thread-switch-iters "
                   "--out)\n",
                   A);
      return false;
    }
  }
  if (O.Procs == 0 || O.ThreadProcs == 0 || O.SwitchProcs == 0 ||
      O.SwitchIters == 0 || O.ThreadSwitchIters == 0) {
    std::fprintf(stderr, "error: all counts must be > 0\n");
    return false;
  }
  return true;
}

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Current resident set in bytes (/proc/self/statm field 2).
size_t rssBytes() {
  FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0;
  unsigned long long Size = 0, Resident = 0;
  int N = std::fscanf(F, "%llu %llu", &Size, &Resident);
  std::fclose(F);
  if (N != 2)
    return 0;
  return static_cast<size_t>(Resident) *
         static_cast<size_t>(sysconf(_SC_PAGESIZE));
}

struct SpawnResult {
  double SpawnPerSec = 0;
  size_t MaxLive = 0;
  size_t RssDeltaBytes = 0;
  double DrainSeconds = 0;
};

/// Spawns N processes that all block on one queue, measures the rate at
/// which they reach their blocked state, then wakes and drains them.
SpawnResult runSpawnScale(BackendKind K, size_t N) {
  Simulation S(SimConfig{.Backend = K});
  WaitQueue Q(S);
  size_t Woken = 0;
  size_t Rss0 = rssBytes();
  auto T0 = std::chrono::steady_clock::now();
  for (size_t I = 0; I != N; ++I)
    S.spawn("p", [&] {
      Q.wait();
      ++Woken;
    });
  S.runFor(0); // Dispatch every start event: all N run and block.
  double SpawnSecs = secondsSince(T0);
  SpawnResult R;
  R.MaxLive = S.liveProcessCount();
  R.RssDeltaBytes = rssBytes() - Rss0;
  R.SpawnPerSec = static_cast<double>(N) / SpawnSecs;
  auto T1 = std::chrono::steady_clock::now();
  Q.notifyAll();
  S.run();
  R.DrainSeconds = secondsSince(T1);
  if (Woken != N || S.liveProcessCount() != 0) {
    std::fprintf(stderr, "error: spawn-scale run incomplete (%zu/%zu)\n",
                 Woken, N);
    std::exit(1);
  }
  return R;
}

/// K processes yielding round-robin: wall-clock ns per scheduler round
/// trip (suspend, event dispatch, resume). The multi-process ready set is
/// what a real simulation's scheduler sees — a 1-process ping-pong would
/// flatter the thread backend, whose two-thread handoff stays warm in a
/// way a thousand-thread runqueue never is.
double runSwitchRoundRobin(BackendKind K, size_t Procs, size_t TotalIters) {
  Simulation S(SimConfig{.Backend = K});
  size_t PerProc = std::max<size_t>(1, TotalIters / Procs);
  for (size_t P = 0; P != Procs; ++P)
    S.spawn("rr", [&S, PerProc] {
      for (size_t I = 0; I != PerProc; ++I)
        S.yieldNow();
    });
  auto T0 = std::chrono::steady_clock::now();
  S.run();
  double Secs = secondsSince(T0);
  return Secs * 1e9 / static_cast<double>(S.contextSwitches());
}

std::string jsonRecord(const Options &O, const SpawnResult &FiberSpawn,
                       const SpawnResult &ThreadSpawn, double FiberSwitchNs,
                       double ThreadSwitchNs, size_t PeakRssBytes) {
  char Buf[1024];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"bench\": \"BM_SpawnScale\", \"pr\": 6, \"switch_procs\": %zu,\n"
      " \"fiber\": {\"procs\": %zu, \"spawn_per_s\": %.0f, "
      "\"max_live_procs\": %zu, \"rss_bytes\": %zu, \"switch_ns\": %.1f, "
      "\"switch_iters\": %zu},\n"
      " \"thread\": {\"procs\": %zu, \"spawn_per_s\": %.0f, "
      "\"switch_ns\": %.1f, \"switch_iters\": %zu},\n"
      " \"switch_speedup\": %.1f, \"peak_rss_bytes\": %zu}\n",
      O.SwitchProcs, O.Procs, FiberSpawn.SpawnPerSec, FiberSpawn.MaxLive,
      FiberSpawn.RssDeltaBytes, FiberSwitchNs, O.SwitchIters, O.ThreadProcs,
      ThreadSpawn.SpawnPerSec, ThreadSwitchNs, O.ThreadSwitchIters,
      ThreadSwitchNs / FiberSwitchNs, PeakRssBytes);
  return Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    usage(Argv[0]);
    return 2;
  }

  // Thread-backend comparisons first, fiber spawn-scale last, so the
  // process-wide ru_maxrss peak reflects the 1M-process run.
  std::fprintf(stderr, "BM_SwitchRoundRobin[thread] %zu procs, %zu iters...\n",
               O.SwitchProcs, O.ThreadSwitchIters);
  double ThreadSwitchNs = runSwitchRoundRobin(BackendKind::Thread,
                                              O.SwitchProcs,
                                              O.ThreadSwitchIters);
  std::fprintf(stderr, "BM_SpawnScale[thread] %zu procs...\n", O.ThreadProcs);
  SpawnResult ThreadSpawn = runSpawnScale(BackendKind::Thread, O.ThreadProcs);
  std::fprintf(stderr, "BM_SwitchRoundRobin[fiber] %zu procs, %zu iters...\n",
               O.SwitchProcs, O.SwitchIters);
  double FiberSwitchNs =
      runSwitchRoundRobin(BackendKind::Fiber, O.SwitchProcs, O.SwitchIters);
  std::fprintf(stderr, "BM_SpawnScale[fiber] %zu procs...\n", O.Procs);
  SpawnResult FiberSpawn = runSpawnScale(BackendKind::Fiber, O.Procs);

  struct rusage RU;
  getrusage(RUSAGE_SELF, &RU);
  size_t PeakRss = static_cast<size_t>(RU.ru_maxrss) * 1024; // KB on Linux.

  std::string Json = jsonRecord(O, FiberSpawn, ThreadSpawn, FiberSwitchNs,
                                ThreadSwitchNs, PeakRss);
  std::fputs(Json.c_str(), stdout);
  if (!O.Out.empty()) {
    FILE *F = std::fopen(O.Out.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", O.Out.c_str());
      return 1;
    }
    std::fputs(Json.c_str(), F);
    std::fclose(F);
  }
  return 0;
}
