//===- bench_netpath.cpp - UDP loopback data-plane bench (BENCH_8) --------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Measures the real-socket measurement plane (docs/NETWORK.md): what the
// promises stack costs when the network is a kernel, not a cost model.
// Both ends live in this process, talking over loopback UDP through the
// UdpNetwork backend — the same guardians, transport, and frames as the
// simulator, with wall time driving the clock.
//
//   BM_RpcLatency      sequential echo RPCs; wall-clock round-trip
//                      latency percentiles (p50/p99) and mean.
//   BM_StreamThroughput pipelined stream calls, one flush, claim all;
//                      sustained calls/s through the socket path.
//
// Bespoke wall-clock driver (no google-benchmark: the interesting numbers
// are percentiles over individual round trips, not iteration averages).
//
//   bench_netpath --rpc-calls 2000 --stream-calls 20000 --out BENCH_8.json
//
//===----------------------------------------------------------------------===//

#include "promises/apps/KvStore.h"
#include "promises/net/UdpNetwork.h"
#include "promises/runtime/RemoteHandler.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;

namespace {

struct Options {
  size_t RpcCalls = 2000;      ///< Latency-sample round trips.
  size_t StreamCalls = 20000;  ///< Pipelined throughput calls.
  size_t PayloadBytes = 32;    ///< Echo argument size.
  size_t Warmup = 200;         ///< Untimed calls before each measurement.
  std::string Out;             ///< JSON output path ("" = stdout only).
};

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --rpc-calls N     latency sample size (default 2000)\n"
               "  --stream-calls N  pipelined throughput calls (default "
               "20000)\n"
               "  --payload BYTES   echo argument size (default 32)\n"
               "  --warmup N        untimed warmup calls (default 200)\n"
               "  --out FILE        also write the JSON record to FILE\n",
               Argv0);
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    auto Need = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    const char *A = Argv[I];
    const char *V = nullptr;
    if (!std::strcmp(A, "--rpc-calls")) {
      if (!(V = Need(A)))
        return false;
      O.RpcCalls = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--stream-calls")) {
      if (!(V = Need(A)))
        return false;
      O.StreamCalls = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--payload")) {
      if (!(V = Need(A)))
        return false;
      O.PayloadBytes = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--warmup")) {
      if (!(V = Need(A)))
        return false;
      O.Warmup = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--out")) {
      if (!(V = Need(A)))
        return false;
      O.Out = V;
    } else if (!std::strcmp(A, "--help") || !std::strcmp(A, "-h")) {
      usage(Argv[0]);
      return false;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", A);
      usage(Argv[0]);
      return false;
    }
  }
  return true;
}

double nsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

struct RpcResult {
  double P50Ns = 0, P99Ns = 0, MeanNs = 0;
};

struct StreamResult {
  double CallsPerSec = 0, NsPerCall = 0;
};

/// One harness per measurement: a fresh Simulation and UdpNetwork so the
/// two benches cannot warm each other's socket buffers or ack state.
struct Harness {
  sim::Simulation S;
  net::UdpNetwork Net{S};
  Guardian Server, Client;
  apps::KvStore Kv;

  explicit Harness(sim::Time ServiceTime = 0)
      : Server(Net, Net.addNode("server"), "server", GuardianConfig{}),
        Client(Net, Net.addNode("client"), "client", GuardianConfig{}),
        Kv(apps::installKvStore(
            Server, apps::KvStoreConfig{.ServiceTime = ServiceTime})) {}

  /// Zero-tolerance integrity check: loopback must be clean.
  void checkClean(const char *What, size_t Expected, size_t Got) {
    if (Got != Expected) {
      std::fprintf(stderr, "error: %s completed %zu/%zu calls\n", What, Got,
                   Expected);
      std::exit(1);
    }
    uint64_t Malformed = Server.transport().counters().MalformedDropped +
                         Client.transport().counters().MalformedDropped;
    if (Malformed != 0 || Net.unknownSourceDrops() != 0) {
      std::fprintf(stderr,
                   "error: %s saw %" PRIu64 " malformed, %" PRIu64
                   " unknown-source drops on loopback\n",
                   What, Malformed, Net.unknownSourceDrops());
      std::exit(1);
    }
  }
};

RpcResult runRpcLatency(const Options &O) {
  Harness H;
  std::vector<double> Ns;
  Ns.reserve(O.RpcCalls);
  size_t Done = 0;
  H.Client.spawnProcess("driver", [&] {
    auto Echo = bindHandler(H.Client, H.Client.newAgent(), H.Kv.Echo);
    std::string Payload(O.PayloadBytes, 'x');
    for (size_t I = 0; I != O.Warmup; ++I)
      (void)Echo.call(Payload);
    for (size_t I = 0; I != O.RpcCalls; ++I) {
      auto T0 = std::chrono::steady_clock::now();
      auto Out = Echo.call(Payload);
      double D = nsSince(T0);
      if (Out.isNormal()) {
        Ns.push_back(D);
        ++Done;
      }
    }
  });
  H.S.run();
  H.checkClean("rpc", O.RpcCalls, Done);

  std::sort(Ns.begin(), Ns.end());
  RpcResult R;
  R.P50Ns = Ns[Ns.size() / 2];
  R.P99Ns = Ns[std::min(Ns.size() - 1, Ns.size() * 99 / 100)];
  double Sum = 0;
  for (double D : Ns)
    Sum += D;
  R.MeanNs = Sum / static_cast<double>(Ns.size());
  return R;
}

StreamResult runStreamThroughput(const Options &O) {
  Harness H;
  size_t Done = 0;
  double Secs = 0;
  H.Client.spawnProcess("driver", [&] {
    auto Echo = bindHandler(H.Client, H.Client.newAgent(), H.Kv.Echo);
    std::string Payload(O.PayloadBytes, 'x');
    for (size_t I = 0; I != O.Warmup; ++I)
      (void)Echo.call(Payload);
    std::vector<Promise<std::string>> Ps;
    Ps.reserve(O.StreamCalls);
    auto T0 = std::chrono::steady_clock::now();
    for (size_t I = 0; I != O.StreamCalls; ++I)
      Ps.push_back(Echo.streamCall(Payload));
    Echo.flush();
    for (auto &P : Ps)
      if (P.claim().isNormal())
        ++Done;
    Secs = nsSince(T0) / 1e9;
  });
  H.S.run();
  H.checkClean("stream", O.StreamCalls, Done);

  StreamResult R;
  R.CallsPerSec = static_cast<double>(Done) / Secs;
  R.NsPerCall = Secs * 1e9 / static_cast<double>(Done);
  return R;
}

std::string jsonRecord(const Options &O, const RpcResult &Rpc,
                       const StreamResult &Stream) {
  char Buf[768];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"bench\": \"bench_netpath\", \"pr\": 8, \"net\": \"udp-loopback\", "
      "\"payload_bytes\": %zu,\n"
      " \"rpc\": {\"calls\": %zu, \"p50_ns\": %.0f, \"p99_ns\": %.0f, "
      "\"mean_ns\": %.0f},\n"
      " \"stream\": {\"calls\": %zu, \"calls_per_s\": %.0f, "
      "\"ns_per_call\": %.1f},\n"
      " \"malformed_dropped\": 0}\n",
      O.PayloadBytes, O.RpcCalls, Rpc.P50Ns, Rpc.P99Ns, Rpc.MeanNs,
      O.StreamCalls, Stream.CallsPerSec, Stream.NsPerCall);
  return Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    usage(Argv[0]);
    return 2;
  }

  std::fprintf(stderr, "BM_RpcLatency %zu calls, %zuB payload...\n",
               O.RpcCalls, O.PayloadBytes);
  RpcResult Rpc = runRpcLatency(O);
  std::fprintf(stderr, "BM_StreamThroughput %zu calls...\n", O.StreamCalls);
  StreamResult Stream = runStreamThroughput(O);

  std::string Json = jsonRecord(O, Rpc, Stream);
  std::fputs(Json.c_str(), stdout);
  if (!O.Out.empty()) {
    FILE *F = std::fopen(O.Out.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", O.Out.c_str());
      return 1;
    }
    std::fputs(Json.c_str(), F);
    std::fclose(F);
  }
  return 0;
}
