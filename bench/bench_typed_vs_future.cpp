//===- bench_typed_vs_future.cpp - Experiment E6 ---------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// E6 (paper Section 3.3): futures "are inefficient to implement unless
// specialized hardware is available, since every object must be examined
// each time it is accessed to determine whether or not it is a future."
// Promises avoid this: they are a distinct static type, so once claimed,
// the value is an ordinary value and later uses are free.
//
// This is the one *wall-clock* microbenchmark in the suite: sum an array
// of 64k numbers, accessed repeatedly,
//   - typed    : claim each promise once, then use plain doubles;
//   - future   : every access goes through the DynFuture dynamic check.
// Expect a large per-access gap (pointer chase + tag test + any_cast vs a
// plain load).
//
//===----------------------------------------------------------------------===//

#include "promises/baseline/DynFuture.h"
#include "promises/core/Promise.h"

#include <benchmark/benchmark.h>

#include <vector>

using namespace promises;
using namespace promises::baseline;
using namespace promises::core;

namespace {

constexpr size_t Count = 64 * 1024;

void BM_TypedPromiseClaimOnce(benchmark::State &State) {
  // Claimed promises: the claim is explicit and happens once; afterwards
  // the program holds ordinary doubles.
  std::vector<Promise<double>> Ps;
  Ps.reserve(Count);
  for (size_t I = 0; I != Count; ++I)
    Ps.push_back(
        Promise<double>::makeReady(Outcome<double>(static_cast<double>(I))));
  std::vector<double> Values;
  Values.reserve(Count);
  for (auto &P : Ps)
    Values.push_back(P.claim().value()); // The one-time claim.

  for (auto _ : State) {
    double Sum = 0;
    for (double V : Values)
      Sum += V;
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Count));
}

void BM_DynFutureCheckedAccess(benchmark::State &State) {
  // Future-style: values stay wrapped, every use re-checks.
  std::vector<DynFuture> Fs;
  Fs.reserve(Count);
  for (size_t I = 0; I != Count; ++I)
    Fs.push_back(DynFuture::immediate(static_cast<double>(I)));

  for (auto _ : State) {
    double Sum = 0;
    for (const DynFuture &F : Fs)
      Sum += F.as<double>();
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Count));
}

void BM_TypedPromiseReClaimEachAccess(benchmark::State &State) {
  // Middle ground: re-claiming a ready promise on every access (legal but
  // not idiomatic) — still cheaper than the type-erased future.
  std::vector<Promise<double>> Ps;
  Ps.reserve(Count);
  for (size_t I = 0; I != Count; ++I)
    Ps.push_back(
        Promise<double>::makeReady(Outcome<double>(static_cast<double>(I))));

  for (auto _ : State) {
    double Sum = 0;
    for (const auto &P : Ps)
      Sum += P.claim().value();
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Count));
}

} // namespace

BENCHMARK(BM_TypedPromiseClaimOnce);
BENCHMARK(BM_TypedPromiseReClaimEachAccess);
BENCHMARK(BM_DynFutureCheckedAccess);

BENCHMARK_MAIN();
