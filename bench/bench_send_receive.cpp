//===- bench_send_receive.cpp - Experiment E7 ------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// E7 (paper Section 5): "The send/receive approach can allow programs to
// achieve high throughput, but it leads to complex and ill-structured
// programs ... Promises and streams, however, retain high throughput
// without imposing this burden."
//
// Workload: N request/reply exchanges. Three programs:
//   - send/receive: explicit messages both ways, user-managed correlation
//     ids (the server is a hand-written receive loop);
//   - stream+promises: streamCall and claim;
//   - rpc: the low-throughput strawman for contrast.
// Expect stream ~ send/receive (parity), both far above RPC.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "promises/baseline/SendReceive.h"
#include "promises/support/StrUtil.h"

using namespace promises;
using namespace promises::baseline;
using namespace promises::benchutil;
using namespace promises::core;
using namespace promises::runtime;

namespace {

void BM_SendReceive(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    sim::Simulation S;
    net::SimNetwork Net(S, net::NetConfig{});
    Mailbox ServerBox(Net, Net.addNode("server"));
    Mailbox ClientBox(Net, Net.addNode("client"));

    // The hand-written server loop: decode id, compute, reply with id.
    S.spawn("server", [&] {
      for (int I = 0; I < N; ++I) {
        Msg M = ServerBox.receive();
        wire::Decoder D(M.Payload);
        uint32_t Id = D.readU32();
        uint32_t Val = D.readU32();
        S.sleep(sim::usec(100)); // Same service time as the KV server.
        wire::Encoder E;
        E.writeU32(Id);
        E.writeU32(Val * 2);
        ServerBox.sendMsg(M.From, E.take());
      }
      ServerBox.flushTo(ClientBox.address());
    });

    S.spawn("client", [&] {
      std::map<uint32_t, uint32_t> Outstanding; // The user's burden.
      for (int I = 0; I < N; ++I) {
        wire::Encoder E;
        E.writeU32(static_cast<uint32_t>(I));
        E.writeU32(static_cast<uint32_t>(I) + 1);
        ClientBox.sendMsg(ServerBox.address(), E.take());
        Outstanding[static_cast<uint32_t>(I)] =
            static_cast<uint32_t>(I) + 1;
      }
      ClientBox.flushTo(ServerBox.address());
      for (int I = 0; I < N; ++I) {
        Msg M = ClientBox.receive();
        wire::Decoder D(M.Payload);
        uint32_t Id = D.readU32();
        uint32_t Val = D.readU32();
        auto It = Outstanding.find(Id);
        assert(It != Outstanding.end() && "unmatched reply");
        assert(Val == It->second * 2 && "corrupted exchange");
        (void)Val;
        Outstanding.erase(It);
      }
    });
    S.run();
    reportVirtual(State, S.now(), static_cast<uint64_t>(N),
                  Net.counters());
    exportObservability(strprintf("send_receive_n%d", N), S);
  }
}

void BM_StreamPromises(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    KvWorld W; // 100us service time, like the hand-written server.
    W.Client->spawnProcess("client", [&] {
      auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
      std::vector<Promise<std::string>> Ps;
      for (int I = 0; I < N; ++I)
        Ps.push_back(H.streamCall(std::to_string(I)));
      H.flush();
      for (int I = 0; I < N; ++I) {
        const auto &O = Ps[static_cast<size_t>(I)].claim();
        assert(O.isNormal() && O.value() == std::to_string(I));
        (void)O;
      }
    });
    W.S.run();
    reportVirtual(State, W.S.now(), static_cast<uint64_t>(N),
                  W.Net->counters());
    exportObservability(strprintf("stream_promises_n%d", N), W.S);
  }
}

void BM_PlainRpc(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    KvWorld W;
    W.Client->spawnProcess("client", [&] {
      auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
      for (int I = 0; I < N; ++I)
        benchmark::DoNotOptimize(H.call(std::to_string(I)));
    });
    W.S.run();
    reportVirtual(State, W.S.now(), static_cast<uint64_t>(N),
                  W.Net->counters());
    exportObservability(strprintf("plain_rpc_n%d", N), W.S);
  }
}

} // namespace

BENCHMARK(BM_SendReceive)->Arg(64)->Arg(512)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StreamPromises)->Arg(64)->Arg(512)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlainRpc)->Arg(64)->Arg(512)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
