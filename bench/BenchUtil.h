//===- BenchUtil.h - Shared benchmark scaffolding ---------------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common world setup for the experiment benchmarks (E1-E11, see
/// DESIGN.md). Benchmarks measure *virtual* time on the deterministic
/// simulator; wall-clock time is irrelevant except in E6's access
/// microbenchmark. Every benchmark therefore runs with Iterations(1) and
/// reports its results through counters:
///
///   vms     - virtual completion time, milliseconds
///   calls_s - workload throughput, calls per virtual second
///   dgrams  - datagrams the network carried
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_BENCH_BENCHUTIL_H
#define PROMISES_BENCH_BENCHUTIL_H

#include "promises/apps/KvStore.h"
#include "promises/runtime/RemoteHandler.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>

namespace promises::benchutil {

/// A client and a key-value server on a two-node network.
struct KvWorld {
  sim::Simulation S;
  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<runtime::Guardian> Server, Client;
  apps::KvStore Kv;

  explicit KvWorld(net::NetConfig NC = net::NetConfig(),
                   runtime::GuardianConfig GC = runtime::GuardianConfig(),
                   apps::KvStoreConfig KC = apps::KvStoreConfig()) {
    Net = std::make_unique<net::SimNetwork>(S, NC);
    net::NodeId SN = Net->addNode("server");
    net::NodeId CN = Net->addNode("client");
    Server = std::make_unique<runtime::Guardian>(*Net, SN, "server", GC);
    Client = std::make_unique<runtime::Guardian>(*Net, CN, "client", GC);
    Kv = apps::installKvStore(*Server, KC);
  }
};

/// Attaches the standard counters for a completed virtual-time run.
inline void reportVirtual(benchmark::State &State, sim::Time Elapsed,
                          uint64_t Calls, const net::NetCounters &NC) {
  State.counters["vms"] = sim::toMillis(Elapsed);
  if (Elapsed != 0)
    State.counters["calls_s"] =
        static_cast<double>(Calls) / (static_cast<double>(Elapsed) / 1e9);
  State.counters["dgrams"] = static_cast<double>(NC.DatagramsSent);
}

/// Exports the simulation's observability state when PROMISES_METRICS_DIR
/// is set: `<dir>/<Name>.metrics.jsonl` (all instruments + events) and
/// `<dir>/<Name>.trace.json` (chrome://tracing). No-op otherwise, so
/// benchmark timing is unaffected by default.
inline void exportObservability(const std::string &Name,
                                sim::Simulation &S) {
  const char *Dir = std::getenv("PROMISES_METRICS_DIR");
  if (!Dir || !Dir[0])
    return;
  const MetricsRegistry &Reg = S.metrics();
  std::string Safe = Name; // Benchmark names contain '/' (args).
  for (char &C : Safe)
    if (C == '/' || C == ':')
      C = '_';
  std::string Base = std::string(Dir) + "/" + Safe;
  Reg.writeJsonLinesFile(Base + ".metrics.jsonl");
  Reg.writeChromeTraceFile(Base + ".trace.json");
}

} // namespace promises::benchutil

#endif // PROMISES_BENCH_BENCHUTIL_H
