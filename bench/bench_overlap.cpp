//===- bench_overlap.cpp - Experiment E3 -----------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// E3 (paper Sections 2, 3): stream calls "allow the caller to run in
// parallel with the sending and processing of the call". The caller does
// W microseconds of local work per call; with RPC the round trip is added
// to every iteration, with stream calls it is hidden behind the local
// work once W is large enough (and behind batching when W is small).
//
// Workload: 64 calls, sweep per-call local work W; modes RPC vs Stream.
// Expect the stream total to approach max(N*W, transport time) while the
// RPC total stays ~N*(W + RTT): a constant-factor win that narrows as W
// grows past the RTT.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace promises;
using namespace promises::benchutil;
using namespace promises::core;
using namespace promises::runtime;

namespace {

constexpr int N = 64;

void BM_RpcWithLocalWork(benchmark::State &State) {
  const sim::Time Work = sim::usec(static_cast<uint64_t>(State.range(0)));
  for (auto _ : State) {
    KvWorld W;
    W.Client->spawnProcess("driver", [&] {
      auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
      for (int I = 0; I < N; ++I) {
        W.S.sleep(Work); // Local computation for this item.
        benchmark::DoNotOptimize(H.call(std::string("item")));
      }
    });
    W.S.run();
    reportVirtual(State, W.S.now(), N, W.Net->counters());
  }
}

void BM_StreamWithLocalWork(benchmark::State &State) {
  const sim::Time Work = sim::usec(static_cast<uint64_t>(State.range(0)));
  for (auto _ : State) {
    KvWorld W;
    W.Client->spawnProcess("driver", [&] {
      auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
      std::vector<Promise<std::string>> Ps;
      for (int I = 0; I < N; ++I) {
        W.S.sleep(Work);
        Ps.push_back(H.streamCall(std::string("item")));
      }
      H.flush();
      for (auto &P : Ps)
        benchmark::DoNotOptimize(P.claim());
    });
    W.S.run();
    reportVirtual(State, W.S.now(), N, W.Net->counters());
  }
}

} // namespace

BENCHMARK(BM_RpcWithLocalWork)
    ->Arg(0)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StreamWithLocalWork)
    ->Arg(0)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
