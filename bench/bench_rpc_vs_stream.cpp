//===- bench_rpc_vs_stream.cpp - Experiment E1 -----------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// E1 (paper Sections 1, 2, 5): "remote calls require the caller to wait
// for a reply before continuing, and therefore can lead to lower
// performance than explicit message exchange"; stream calls raise
// throughput because the caller keeps issuing while calls are in transit
// and messages are batched. RPC systems "can be optimized only to reduce
// the delay of individual calls, not to improve the throughput of groups
// of calls."
//
// Workload: N echo calls (16-byte payloads) from one client activity to
// one server handler; sweep N. Modes: RPC (wait each), Stream (pipeline,
// claim at the end). Expect stream throughput to exceed RPC by roughly
// RTT / per-call-batch-share, growing until the server or batch path
// saturates.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "promises/support/Stats.h"

using namespace promises;
using namespace promises::benchutil;
using namespace promises::core;
using namespace promises::runtime;

namespace {

std::string payload() { return std::string(16, 'x'); }

void rpcLoop(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    KvWorld W;
    Stats Latency; // Issue-to-outcome time per call, in ms.
    W.Client->spawnProcess("driver", [&] {
      auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
      for (int I = 0; I < N; ++I) {
        sim::Time T0 = W.S.now();
        benchmark::DoNotOptimize(H.call(payload()));
        Latency.add(sim::toMillis(W.S.now() - T0));
      }
    });
    W.S.run();
    reportVirtual(State, W.S.now(), static_cast<uint64_t>(N),
                  W.Net->counters());
    State.counters["lat_p50_ms"] = Latency.median();
    State.counters["lat_p99_ms"] = Latency.percentile(99);
  }
}

void streamLoop(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    KvWorld W;
    Stats Latency;
    W.Client->spawnProcess("driver", [&] {
      auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
      std::vector<Promise<std::string>> Ps;
      std::vector<sim::Time> IssuedAt;
      Ps.reserve(static_cast<size_t>(N));
      for (int I = 0; I < N; ++I) {
        IssuedAt.push_back(W.S.now());
        Ps.push_back(H.streamCall(payload()));
      }
      H.flush();
      // Per-call latency = issue-to-ready; note the pipelining tradeoff:
      // later calls queue behind earlier ones at the server, so stream
      // latency *rises* with depth while throughput rises too.
      for (int I = 0; I < N; ++I) {
        const auto &O = Ps[static_cast<size_t>(I)].claim();
        benchmark::DoNotOptimize(O);
        Latency.add(sim::toMillis(W.S.now() - IssuedAt[static_cast<size_t>(I)]));
      }
    });
    W.S.run();
    reportVirtual(State, W.S.now(), static_cast<uint64_t>(N),
                  W.Net->counters());
    State.counters["lat_p50_ms"] = Latency.median();
    State.counters["lat_p99_ms"] = Latency.percentile(99);
  }
}

void BM_Rpc(benchmark::State &State) { rpcLoop(State); }
void BM_Stream(benchmark::State &State) { streamLoop(State); }

} // namespace

BENCHMARK(BM_Rpc)->Arg(8)->Arg(64)->Arg(256)->Arg(1024)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Stream)->Arg(8)->Arg(64)->Arg(256)->Arg(1024)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
