//===- bench_flush_synch.cpp - Experiment E11 ------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// E11 (paper Section 2): "flush ... causes the sending of any buffered
// call requests on the flushed stream and the flushing back of replies at
// the other side. (Even without the flush, the system will send these
// messages eventually; the flush merely speeds this up.)" and "synch not
// only does a flush, but it causes the caller to wait until all earlier
// calls on the stream have completed."
//
// Measurements:
//  - BM_TailLatency: time until the last of 8 calls is claimable, with
//    and without an explicit flush, sweeping the background flush
//    interval. Expect no-flush ~ flush-interval-bound, flush ~ RTT-bound.
//  - BM_SynchWait: the caller-visible cost of synch as the number of
//    outstanding calls grows (it waits for completion, unlike flush).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace promises;
using namespace promises::benchutil;
using namespace promises::core;
using namespace promises::runtime;

namespace {

void BM_TailLatency(benchmark::State &State) {
  const bool UseFlush = State.range(0) != 0;
  const sim::Time FlushInterval =
      sim::msec(static_cast<uint64_t>(State.range(1)));
  for (auto _ : State) {
    runtime::GuardianConfig GC;
    GC.Stream.MaxBatchCalls = 64; // Count threshold never reached.
    GC.Stream.FlushInterval = FlushInterval;
    GC.Stream.ReplyFlushInterval = FlushInterval;
    apps::KvStoreConfig KC;
    KC.ServiceTime = 0;
    KvWorld W(net::NetConfig(), GC, KC);
    sim::Time LastReady = 0;
    W.Client->spawnProcess("driver", [&] {
      auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
      std::vector<Promise<std::string>> Ps;
      for (int I = 0; I < 8; ++I)
        Ps.push_back(H.streamCall(std::string("x")));
      if (UseFlush)
        H.flush();
      Ps.back().claim();
      LastReady = W.S.now();
    });
    W.S.run();
    State.counters["tail_ms"] = sim::toMillis(LastReady);
  }
}

void BM_SynchWait(benchmark::State &State) {
  const int Outstanding = static_cast<int>(State.range(0));
  for (auto _ : State) {
    apps::KvStoreConfig KC;
    KC.ServiceTime = sim::usec(200);
    KvWorld W(net::NetConfig(), runtime::GuardianConfig(), KC);
    sim::Time SynchStart = 0, SynchEnd = 0;
    W.Client->spawnProcess("driver", [&] {
      auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
      for (int I = 0; I < Outstanding; ++I)
        H.streamCall(std::string("x"));
      SynchStart = W.S.now();
      H.synch();
      SynchEnd = W.S.now();
    });
    W.S.run();
    State.counters["synch_ms"] = sim::toMillis(SynchEnd - SynchStart);
    State.counters["per_call_us"] =
        Outstanding == 0
            ? 0.0
            : sim::toMicros(SynchEnd - SynchStart) / Outstanding;
  }
}

} // namespace

// Args: (use_flush, flush_interval_ms).
BENCHMARK(BM_TailLatency)
    ->Args({0, 5})->Args({1, 5})->Args({0, 20})->Args({1, 20})
    ->Args({0, 80})->Args({1, 80})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SynchWait)->Arg(1)->Arg(16)->Arg(128)->Arg(512)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
