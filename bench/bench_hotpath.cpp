//===- bench_hotpath.cpp - Data-plane hot-path microbench -----------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Wall-clock cost of the data-plane hot path: one call's full journey
// issue -> encode -> seal -> deliver -> decode -> claim, measured over a
// real transport pair in one simulation. Unlike the EXPERIMENTS.md benches
// (virtual-time, protocol-level), this one measures what the host CPU
// actually pays per call, plus two machine-independent companions:
//
//  * allocs/call — heap allocations counted by a global operator new hook,
//  * seal-copied bytes/call — payload bytes memcpy'd while sealing frames
//    (wire::frameStats()); the zero-copy send path must keep this at 0.
//
// Emits the PR 7+ perf-trajectory point (BENCH_7.json): run with --out.
// CI's perf-smoke job fails if ns/call regresses >25% against the
// committed baseline (tools/check_bench.py).
//
//===----------------------------------------------------------------------===//

#include "promises/core/Promise.h"
#include "promises/net/Network.h"
#include "promises/sim/Simulation.h"
#include "promises/stream/StreamTransport.h"
#include "promises/wire/Frame.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

using namespace promises;

//===----------------------------------------------------------------------===//
// Allocation counting hook
//===----------------------------------------------------------------------===//

// Counts every heap allocation in the process. Relaxed atomic: the fiber
// backend runs everything on one thread, and the thread backend hands the
// single execution turn across threads with proper synchronization.
static std::atomic<uint64_t> GAllocs{0};

void *operator new(std::size_t N) {
  GAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t N) { return ::operator new(N); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

//===----------------------------------------------------------------------===//
// Workload
//===----------------------------------------------------------------------===//

namespace {

struct Sample {
  double NsPerCall = 0;
  double AllocsPerCall = 0;
  double SealCopiedPerCall = 0; ///< Payload bytes copied while sealing.
  double WireBytesPerCall = 0;  ///< Datagram bytes on the wire (context).
};

struct Options {
  uint64_t Calls = 50000;
  uint64_t Warmup = 5000;
  size_t ArgBytes = 64;
  size_t Pipeline = 64; ///< Outstanding calls in stream mode.
  std::string Out;
};

/// One world: client transport on node 0, echo server on node 1. The
/// server's sink completes every call immediately, echoing the argument
/// bytes, so each call exercises encode+seal+deliver+decode on both the
/// call and the reply direction.
struct World {
  sim::Simulation Sim;
  net::SimNetwork Net;
  std::unique_ptr<stream::StreamTransport> Client;
  std::unique_ptr<stream::StreamTransport> Server;
  stream::AgentId Agent = 0;

  World() : Net(Sim) {
    net::NodeId C = Net.addNode("client");
    net::NodeId S = Net.addNode("server");
    Client = std::make_unique<stream::StreamTransport>(Net, C);
    Server = std::make_unique<stream::StreamTransport>(Net, S);
    Agent = Client->newAgent();
    Server->setCallSink([](stream::IncomingCall IC) {
      IC.Complete(stream::ReplyStatus::Normal, 0, std::move(IC.Args), {});
    });
  }
};

using EchoPromise = core::Promise<uint64_t>;
using EchoResolver = core::Resolver<uint64_t>;

/// Issues one echo call and returns its promise. The reply callback
/// fulfills with the payload size (the claim side of the hot path).
EchoPromise issueOne(World &W, const wire::Bytes &Args, bool IsRpc) {
  auto [P, R] = core::makePromise<uint64_t>(W.Sim);
  auto Issue = W.Client->issueCall(
      W.Agent, W.Server->address(), /*Group=*/1, /*Port=*/1,
      wire::Bytes(Args), /*NoReply=*/false, IsRpc,
      [R = R](const stream::ReplyOutcome &O) {
        R.fulfill(core::Outcome<uint64_t>(
            static_cast<uint64_t>(O.Payload.size())));
      });
  if (!Issue.Issued) {
    std::fprintf(stderr, "issue failed: %s\n", Issue.Reason.c_str());
    std::abort();
  }
  return P;
}

/// RPC mode: strict request/response round trips — the latency path.
void runRpc(World &W, const wire::Bytes &Args, uint64_t N) {
  for (uint64_t I = 0; I != N; ++I)
    issueOne(W, Args, /*IsRpc=*/true).claim();
}

/// Stream mode: a bounded pipeline of buffered stream calls — the
/// throughput path (batching amortizes the per-message costs).
void runStream(World &W, const wire::Bytes &Args, uint64_t N,
               size_t Pipeline) {
  std::vector<EchoPromise> InFlight;
  InFlight.reserve(Pipeline);
  size_t Claim = 0;
  for (uint64_t I = 0; I != N; ++I) {
    InFlight.push_back(issueOne(W, Args, /*IsRpc=*/false));
    if (InFlight.size() - Claim >= Pipeline) {
      InFlight[Claim].claim();
      InFlight[Claim] = EchoPromise();
      ++Claim;
    }
  }
  for (; Claim != InFlight.size(); ++Claim)
    InFlight[Claim].claim();
}

template <typename Fn>
Sample measure(const Options &Opt, Fn &&Run) {
  World W;
  wire::Bytes Args(Opt.ArgBytes, 0xAB);
  Sample Out;
  W.Sim.spawn("driver", [&] {
    Run(W, Args, Opt.Warmup); // Warm slabs, rings, and stream state.
    uint64_t Allocs0 = GAllocs.load(std::memory_order_relaxed);
    wire::FrameStats FS0 = wire::frameStats();
    uint64_t Bytes0 = W.Net.counters().BytesSent;
    auto T0 = std::chrono::steady_clock::now();
    Run(W, Args, Opt.Calls);
    auto T1 = std::chrono::steady_clock::now();
    uint64_t Allocs1 = GAllocs.load(std::memory_order_relaxed);
    wire::FrameStats FS1 = wire::frameStats();
    uint64_t Bytes1 = W.Net.counters().BytesSent;
    double N = static_cast<double>(Opt.Calls);
    Out.NsPerCall =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
                .count()) /
        N;
    Out.AllocsPerCall = static_cast<double>(Allocs1 - Allocs0) / N;
    Out.SealCopiedPerCall =
        static_cast<double>(FS1.PayloadBytesCopied - FS0.PayloadBytesCopied) /
        N;
    Out.WireBytesPerCall = static_cast<double>(Bytes1 - Bytes0) / N;
  });
  W.Sim.run();
  return Out;
}

void printSample(const char *Name, const Sample &S) {
  std::printf("%-8s ns/call %9.1f   allocs/call %6.2f   "
              "seal-copied B/call %8.1f   wire B/call %8.1f\n",
              Name, S.NsPerCall, S.AllocsPerCall, S.SealCopiedPerCall,
              S.WireBytesPerCall);
}

void writeJson(std::FILE *F, const char *Name, const Sample &S,
               const char *Trail) {
  std::fprintf(F,
               " \"%s\": {\"ns_per_call\": %.1f, \"allocs_per_call\": %.2f, "
               "\"seal_copied_bytes_per_call\": %.1f, "
               "\"wire_bytes_per_call\": %.1f}%s\n",
               Name, S.NsPerCall, S.AllocsPerCall, S.SealCopiedPerCall,
               S.WireBytesPerCall, Trail);
}

} // namespace

int main(int argc, char **argv) {
  Options Opt;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", A.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--calls")
      Opt.Calls = std::strtoull(Next(), nullptr, 10);
    else if (A == "--warmup")
      Opt.Warmup = std::strtoull(Next(), nullptr, 10);
    else if (A == "--arg-bytes")
      Opt.ArgBytes = std::strtoull(Next(), nullptr, 10);
    else if (A == "--pipeline")
      Opt.Pipeline = std::strtoull(Next(), nullptr, 10);
    else if (A == "--out")
      Opt.Out = Next();
    else {
      std::fprintf(stderr,
                   "usage: bench_hotpath [--calls N] [--warmup N] "
                   "[--arg-bytes N] [--pipeline N] [--out FILE]\n");
      return A == "--help" ? 0 : 2;
    }
  }

  Sample Rpc = measure(Opt, [](World &W, const wire::Bytes &Args,
                               uint64_t N) { runRpc(W, Args, N); });
  Sample Stream =
      measure(Opt, [&](World &W, const wire::Bytes &Args, uint64_t N) {
        runStream(W, Args, N, Opt.Pipeline);
      });

  std::printf("bench_hotpath: %llu calls, %zu-byte args, pipeline %zu\n",
              static_cast<unsigned long long>(Opt.Calls), Opt.ArgBytes,
              Opt.Pipeline);
  printSample("rpc", Rpc);
  printSample("stream", Stream);

  if (!Opt.Out.empty()) {
    std::FILE *F = std::fopen(Opt.Out.c_str(), "w");
    if (!F) {
      std::perror("open --out");
      return 1;
    }
    std::fprintf(F,
                 "{\"bench\": \"bench_hotpath\", \"pr\": 7, \"calls\": %llu, "
                 "\"arg_bytes\": %zu, \"pipeline\": %zu,\n",
                 static_cast<unsigned long long>(Opt.Calls), Opt.ArgBytes,
                 Opt.Pipeline);
    writeJson(F, "rpc", Rpc, ",");
    writeJson(F, "stream", Stream, "}");
    std::fclose(F);
    std::printf("wrote %s\n", Opt.Out.c_str());
  }
  return 0;
}
