//===- bench_ablation.cpp - Design-choice ablations -------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Ablations for transport design choices DESIGN.md calls out:
//
//  A1 Reply-batch shape: delta batches (each reply sent once, probes
//     recover losses) vs state-shaped batches (every batch carries all
//     unacked replies). State-shaped is simpler but quadratic in flight
//     depth — visible in bytes and completion time at N=1024.
//  A2 Ack piggyback window (AckDelay): too small wastes pure-ack
//     datagrams; too large delays receiver-side reply trimming.
//  A3 Retransmission timeout under loss: small timeouts recover fast but
//     risk spurious retransmissions; large ones stall the pipeline.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "promises/actions/AtomicCell.h"
#include "promises/apps/TwoPhase.h"
#include "promises/core/Coenter.h"
#include "promises/support/StrUtil.h"

using namespace promises;
using namespace promises::benchutil;
using namespace promises::core;
using namespace promises::runtime;

namespace {

void runPipelinedEchoes(benchmark::State &State, const char *Tag,
                        runtime::GuardianConfig GC, net::NetConfig NC,
                        int N) {
  apps::KvStoreConfig KC;
  KC.ServiceTime = sim::usec(100);
  KvWorld W(NC, GC, KC);
  W.Client->spawnProcess("driver", [&] {
    auto H = bindHandler(*W.Client, W.Client->newAgent(), W.Kv.Echo);
    std::vector<Promise<std::string>> Ps;
    for (int I = 0; I < N; ++I)
      Ps.push_back(H.streamCall(std::string("xxxxxxxx")));
    H.flush();
    for (auto &P : Ps)
      benchmark::DoNotOptimize(P.claim());
  });
  W.S.run();
  reportVirtual(State, W.S.now(), static_cast<uint64_t>(N),
                W.Net->counters());
  State.counters["kbytes"] =
      static_cast<double>(W.Net->counters().BytesSent) / 1024.0;
  exportObservability(strprintf("%s_n%d", Tag, N), W.S);
}

void BM_ReplyShape(benchmark::State &State) {
  const bool StateShaped = State.range(0) != 0;
  const int N = static_cast<int>(State.range(1));
  for (auto _ : State) {
    runtime::GuardianConfig GC;
    GC.Stream.StateShapedReplies = StateShaped;
    runPipelinedEchoes(State, "ablation_reply_shape", GC, net::NetConfig(), N);
  }
}

void BM_AckDelay(benchmark::State &State) {
  const sim::Time Delay = sim::usec(static_cast<uint64_t>(State.range(0)));
  for (auto _ : State) {
    runtime::GuardianConfig GC;
    GC.Stream.AckDelay = Delay;
    runPipelinedEchoes(State, "ablation_ack_delay", GC, net::NetConfig(), 512);
  }
}

void BM_RetransTimeoutUnderLoss(benchmark::State &State) {
  const sim::Time Timeout = sim::msec(static_cast<uint64_t>(State.range(0)));
  for (auto _ : State) {
    runtime::GuardianConfig GC;
    GC.Stream.RetransmitTimeout = Timeout;
    net::NetConfig NC;
    NC.LossRate = 0.2;
    NC.Seed = 3;
    runPipelinedEchoes(State, "ablation_retrans", GC, NC, 256);
  }
}

void BM_ActionContention(benchmark::State &State) {
  // A4: atomic-action throughput as workers contend for a shrinking set
  // of cells (extension module; not a paper claim). 64 workers x 8 ops.
  const int NumCells = static_cast<int>(State.range(0));
  for (auto _ : State) {
    sim::Simulation S;
    actions::ActionManager M(S);
    std::vector<std::unique_ptr<actions::AtomicCell<int>>> Cells;
    for (int I = 0; I < NumCells; ++I)
      Cells.push_back(std::make_unique<actions::AtomicCell<int>>(M, 0));
    int Committed = 0;
    S.spawn("root", [&] {
      core::Coenter Co(S);
      for (int W = 0; W < 64; ++W)
        Co.arm("w", [&, W]() -> core::ArmResult {
          for (int Op = 0; Op < 8; ++Op) {
            actions::Action A(M);
            auto &C = *Cells[static_cast<size_t>((W * 7 + Op) % NumCells)];
            C.write(A, C.read(A) + 1);
            S.sleep(sim::usec(50)); // Hold the lock briefly.
            if (A.commit())
              ++Committed;
          }
          return {};
        });
      Co.run();
    });
    S.run();
    State.counters["vms"] = sim::toMillis(S.now());
    State.counters["committed"] = Committed;
    State.counters["aborted"] = static_cast<double>(M.aborts());
  }
}

void BM_TwoPhaseParticipants(benchmark::State &State) {
  // A5: distributed-commit latency grows linearly with participants
  // (sequential RPC rounds in this simple coordinator).
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    sim::Simulation S;
    net::SimNetwork Net(S, net::NetConfig{});
    runtime::Guardian Client(Net, Net.addNode("cl"), "cl");
    std::vector<std::unique_ptr<runtime::Guardian>> Gs;
    std::vector<apps::TxnKv> Kvs;
    for (int I = 0; I < N; ++I) {
      Gs.push_back(std::make_unique<runtime::Guardian>(
          Net, Net.addNode("p" + std::to_string(I)),
          "p" + std::to_string(I)));
      Kvs.push_back(apps::installTxnKv(*Gs.back()));
    }
    sim::Time Took = 0;
    Client.spawnProcess("txn", [&] {
      sim::Time T0 = S.now();
      apps::TwoPhaseCoordinator T(Client);
      for (int I = 0; I < N; ++I) {
        size_t Idx = T.enlist(Kvs[static_cast<size_t>(I)]);
        T.put(Idx, "k", "v");
      }
      benchmark::DoNotOptimize(T.commit());
      Took = S.now() - T0;
    });
    S.run();
    State.counters["commit_ms"] = sim::toMillis(Took);
  }
}

} // namespace

// Args: (state_shaped, N).
BENCHMARK(BM_ReplyShape)
    ->Args({0, 128})->Args({1, 128})->Args({0, 1024})->Args({1, 1024})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AckDelay)->Arg(100)->Arg(1000)->Arg(5000)->Arg(20000)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RetransTimeoutUnderLoss)->Arg(5)->Arg(20)->Arg(80)->Arg(320)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ActionContention)->Arg(64)->Arg(8)->Arg(1)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoPhaseParticipants)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
