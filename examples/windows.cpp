//===- windows.cpp - Dynamic ports and per-window streams ------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// The window-system sketch from Section 2 of the paper: create_window
// returns a struct of newly created ports (putc, puts, change_color); all
// ports of one window share a port group, so a client's operations on one
// window are ordered while operations on different windows proceed
// independently.
//
//===----------------------------------------------------------------------===//

#include "promises/apps/WindowSystem.h"
#include "promises/support/StrUtil.h"

#include <cstdio>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;

int main() {
  sim::Simulation S;
  net::SimNetwork Net(S, net::NetConfig{});
  Guardian ServerG(Net, Net.addNode("window-server"), "window-server");
  Guardian ClientG(Net, Net.addNode("client"), "client");

  apps::WindowSystemConfig Cfg;
  Cfg.ServiceTime = sim::msec(1);
  apps::WindowSystem W = apps::installWindowSystem(ServerG, Cfg);

  bool Ok = true;
  ClientG.spawnProcess("ui", [&] {
    auto A = ClientG.newAgent();
    auto Create = bindHandler(ClientG, A, W.CreateWindow);

    // Ports arrive as values in the reply — the paper's dynamic port
    // creation.
    auto O1 = Create.call(wire::Unit{});
    auto O2 = Create.call(wire::Unit{});
    if (!O1.isNormal() || !O2.isNormal()) {
      Ok = false;
      return;
    }
    apps::WindowPorts Log = O1.value();
    apps::WindowPorts Status = O2.value();

    auto LogPuts = bindHandler(ClientG, A, Log.Puts);
    auto LogPutc = bindHandler(ClientG, A, Log.Putc);
    auto LogColor = bindHandler(ClientG, A, Log.ChangeColor);
    auto StatusPuts = bindHandler(ClientG, A, Status.Puts);

    // Stream a burst of updates to both windows. Per-window order is
    // guaranteed (one group per window); the two windows' streams are
    // independent.
    sim::Time Start = S.now();
    LogColor.streamCall(std::string("green"));
    for (int I = 0; I < 10; ++I) {
      LogPuts.streamCall(strprintf("line%d ", I));
      StatusPuts.streamCall(strprintf("[%d%%]", I * 10));
    }
    LogPutc.streamCall(uint8_t('\n'));
    std::printf("[%-8s] 22 window ops streamed in %s of caller time\n",
                formatDuration(S.now()).c_str(),
                formatDuration(S.now() - Start).c_str());
    if (!LogPuts.synch().ok() || !StatusPuts.synch().ok())
      Ok = false;

    auto LogText =
        bindHandler(ClientG, A, Log.Contents).call(wire::Unit{}).value();
    auto StatusText =
        bindHandler(ClientG, A, Status.Contents).call(wire::Unit{}).value();
    std::printf("[%-8s] log window    : %s", formatDuration(S.now()).c_str(),
                LogText.c_str());
    std::printf("[%-8s] status window : %s\n",
                formatDuration(S.now()).c_str(), StatusText.c_str());

    std::string ExpectLog;
    for (int I = 0; I < 10; ++I)
      ExpectLog += strprintf("line%d ", I);
    ExpectLog += '\n';
    std::string ExpectStatus;
    for (int I = 0; I < 10; ++I)
      ExpectStatus += strprintf("[%d%%]", I * 10);
    if (LogText != ExpectLog || StatusText != ExpectStatus)
      Ok = false;
    if (W.Screen->Windows.size() != 2)
      Ok = false;
  });

  S.run();
  std::printf("%s\n", Ok ? "windows example OK" : "windows example FAILED");
  return Ok ? 0 : 1;
}
