//===- futures_vs_promises.cpp - The Section 3.3 comparison ---------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Two claims from the paper's discussion of MultiLisp futures, run live:
//
//  1. "futures ... are inefficient to implement unless specialized
//     hardware is available, since every object must be examined each
//     time it is accessed" — we time a hot loop over plain (claimed)
//     values vs dynamically checked futures, in real nanoseconds.
//
//  2. "it is difficult to do anything very useful with exceptions. In
//     MultiLisp, exceptions are turned into error values automatically,
//     and information about the error value propagates through the
//     expression" — we let an error flow through arithmetic and show
//     where (and how mangled) it finally surfaces, against the typed
//     claim-site handling of a promise.
//
//===----------------------------------------------------------------------===//

#include "promises/baseline/DynFuture.h"
#include "promises/core/Fork.h"

#include <chrono>
#include <cstdio>
#include <vector>

using namespace promises;
using namespace promises::baseline;
using namespace promises::core;

namespace {

struct DivideByZero {
  static constexpr const char *Name = "divide_by_zero";
};

double wallNanosPerAccess(const std::function<double()> &SumAll,
                          size_t Count, int Reps) {
  using Clock = std::chrono::steady_clock;
  double Sink = 0;
  auto T0 = Clock::now();
  for (int R = 0; R < Reps; ++R)
    Sink += SumAll();
  auto T1 = Clock::now();
  if (Sink == 42.0)
    std::printf("!"); // Defeat over-clever optimizers.
  double Nanos = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0).count());
  return Nanos / (static_cast<double>(Count) * Reps);
}

} // namespace

int main() {
  bool Ok = true;

  // --- 1. Access cost. ---
  const size_t Count = 256 * 1024;
  const int Reps = 20;

  std::vector<Promise<double>> Ps;
  Ps.reserve(Count);
  for (size_t I = 0; I != Count; ++I)
    Ps.push_back(Promise<double>::makeReady(
        Outcome<double>(static_cast<double>(I % 97))));
  std::vector<double> Claimed;
  Claimed.reserve(Count);
  for (auto &P : Ps)
    Claimed.push_back(P.claim().value()); // The one explicit claim.

  std::vector<DynFuture> Fs;
  Fs.reserve(Count);
  for (size_t I = 0; I != Count; ++I)
    Fs.push_back(DynFuture::immediate(static_cast<double>(I % 97)));

  double NsPromise = wallNanosPerAccess(
      [&] {
        double Sum = 0;
        for (double V : Claimed)
          Sum += V;
        return Sum;
      },
      Count, Reps);
  double NsFuture = wallNanosPerAccess(
      [&] {
        double Sum = 0;
        for (const DynFuture &F : Fs)
          Sum += F.as<double>(); // Tag check + any_cast, every time.
        return Sum;
      },
      Count, Reps);
  std::printf("access cost, %zu values x %d sweeps:\n", Count, Reps);
  std::printf("  claimed promise values : %6.2f ns/access\n", NsPromise);
  std::printf("  dynamic futures        : %6.2f ns/access (%.1fx)\n",
              NsFuture, NsFuture / NsPromise);
  if (NsFuture <= NsPromise)
    Ok = false; // The whole point of static typing here.

  // --- 2. Exception locality. ---
  sim::Simulation S;
  DynFuture Bad =
      DynFuture::spawn(S, [] { return DynFuture::error("divide by zero"); });
  std::string SurfacedAs;
  S.spawn("future-path", [&] {
    DynFuture Step1 = Bad + DynFuture::immediate(1.0);
    DynFuture Step2 = Step1 + Step1;
    DynFuture Step3 = Step2 + DynFuture::immediate(5.0);
    if (Step3.isError())
      SurfacedAs = Step3.errorReason();
  });
  bool TypedCaught = false;
  auto P = fork(S, []() -> Outcome<double, DivideByZero> {
    return DivideByZero{};
  });
  S.spawn("promise-path", [&] {
    P.claimWith([](const double &) {},
                [&](const DivideByZero &) { TypedCaught = true; },
                [](const auto &) {});
  });
  S.run();
  std::printf("\nexception locality:\n");
  std::printf("  future error surfaced 3 expressions later as:\n"
              "    \"%s\"\n",
              SurfacedAs.c_str());
  std::printf("  promise claim saw the typed exception in place: %s\n",
              TypedCaught ? "divide_by_zero" : "(missed!)");
  if (SurfacedAs.find("propagated") == std::string::npos || !TypedCaught)
    Ok = false;

  std::printf("%s\n", Ok ? "futures_vs_promises OK"
                         : "futures_vs_promises FAILED");
  return Ok ? 0 : 1;
}
