//===- transfer.cpp - Atomic actions with coenter and streams --------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Section 4.2 of the paper runs coenter arms "as actions" so that forced
// termination cannot leave work half-done. This example shows the
// reproduction's lightweight actions doing exactly that: a bank guardian
// whose transfer handler moves money between AtomicCell accounts under an
// action; remote clients drive transfers over streams; a failing transfer
// (or a terminated coenter arm) aborts and leaves balances untouched.
//
//===----------------------------------------------------------------------===//

#include "promises/actions/AtomicCell.h"
#include "promises/core/Coenter.h"
#include "promises/runtime/RemoteHandler.h"
#include "promises/support/StrUtil.h"

#include <cstdio>
#include <memory>
#include <vector>

using namespace promises;
using namespace promises::actions;
using namespace promises::core;
using namespace promises::runtime;

namespace {

struct InsufficientFunds {
  static constexpr const char *Name = "insufficient_funds";
  int32_t Available = 0;
};

} // namespace

namespace promises::wire {
template <> struct Codec<InsufficientFunds> {
  static void encode(Encoder &E, const InsufficientFunds &V) {
    E.writeI32(V.Available);
  }
  static InsufficientFunds decode(Decoder &D) { return {D.readI32()}; }
};
} // namespace promises::wire

int main() {
  sim::Simulation S;
  net::SimNetwork Net(S, net::NetConfig{});
  Guardian Bank(Net, Net.addNode("bank"), "bank");
  Guardian ClientG(Net, Net.addNode("client"), "client");

  // The bank's state: atomic account cells managed by one ActionManager.
  ActionManager AM(S);
  const int NumAccounts = 4;
  std::vector<std::unique_ptr<AtomicCell<int32_t>>> Accounts;
  for (int I = 0; I < NumAccounts; ++I)
    Accounts.push_back(std::make_unique<AtomicCell<int32_t>>(AM, 100));

  auto Transfer =
      Bank.addHandler<int32_t(int32_t, int32_t, int32_t), InsufficientFunds>(
          "transfer",
          [&](int32_t From, int32_t To,
              int32_t Amount) -> Outcome<int32_t, InsufficientFunds> {
            Action A(AM); // RAII: aborts unless committed.
            AtomicCell<int32_t> &Src = *Accounts[static_cast<size_t>(From)];
            AtomicCell<int32_t> &Dst = *Accounts[static_cast<size_t>(To)];
            int32_t Have = Src.read(A);
            if (Have < Amount)
              return InsufficientFunds{Have}; // ~A aborts: nothing moved.
            Src.write(A, Have - Amount);
            S.sleep(sim::usec(200)); // The window a crash could tear...
            Dst.write(A, Dst.read(A) + Amount);
            if (!A.commit())
              return Failure{"transfer aborted (lock conflict)"};
            return Have - Amount;
          });

  auto TotalOf = [&] {
    int32_t Sum = 0;
    for (auto &C : Accounts)
      Sum += C->peek();
    return Sum;
  };

  bool Ok = true;
  ClientG.spawnProcess("teller", [&] {
    auto A = ClientG.newAgent();
    auto H = bindHandler(ClientG, A, Transfer);

    // 1. A plain transfer.
    auto O = H.call(int32_t(0), int32_t(1), int32_t(30));
    std::printf("[%-8s] transfer 0->1 of 30: %s (balance now %d)\n",
                formatDuration(S.now()).c_str(),
                O.isNormal() ? "ok" : O.exceptionName(),
                Accounts[0]->peek());
    if (!O.isNormal() || Accounts[0]->peek() != 70 ||
        Accounts[1]->peek() != 130)
      Ok = false;

    // 2. A rejected transfer: the action aborted, nothing moved.
    auto O2 = H.call(int32_t(2), int32_t(3), int32_t(500));
    std::printf("[%-8s] transfer 2->3 of 500: %s (available %d)\n",
                formatDuration(S.now()).c_str(), O2.exceptionName(),
                O2.is<InsufficientFunds>()
                    ? O2.get<InsufficientFunds>().Available
                    : -1);
    if (!O2.is<InsufficientFunds>() || Accounts[2]->peek() != 100)
      Ok = false;

    // 3. A storm of concurrent transfers from coenter arms; money is
    //    conserved no matter how the lock schedule interleaves.
    int32_t Before = TotalOf();
    Coenter Storm(S);
    for (int I = 0; I < 12; ++I)
      Storm.arm(strprintf("t%d", I), [&, I]() -> ArmResult {
        auto MyAgent = ClientG.newAgent();
        auto MyH = bindHandler(ClientG, MyAgent, Transfer);
        auto R = MyH.call(int32_t(I % NumAccounts),
                          int32_t((I + 1) % NumAccounts), int32_t(5));
        (void)R; // insufficient_funds is fine; torn money is not.
        return {};
      });
    Storm.run();
    int32_t After = TotalOf();
    std::printf("[%-8s] 12 concurrent transfers: total %d -> %d\n",
                formatDuration(S.now()).c_str(), Before, After);
    if (Before != After)
      Ok = false;
  });
  S.run();

  // 4. The termination story: a coenter arm mid-transfer is killed; its
  //    RAII action aborts and conservation still holds.
  int32_t Before = 0;
  ClientG.spawnProcess("crash-drill", [&] {
    Before = 0;
    for (auto &C : Accounts)
      Before += C->peek();
    Coenter(S)
        .arm("slow-transfer",
             [&]() -> ArmResult {
               // Run the transfer logic locally under an action, slowly.
               Action A(AM);
               auto &Src = *Accounts[0];
               auto &Dst = *Accounts[1];
               Src.write(A, Src.read(A) - 50);
               S.sleep(sim::msec(50)); // Killed in this window.
               Dst.write(A, Dst.read(A) + 50);
               A.commit();
               return {};
             })
        .arm("failer",
             [&]() -> ArmResult {
               S.sleep(sim::msec(1));
               return armRaise("unavailable", "simulated trouble");
             })
        .run();
  });
  S.run();
  int32_t After = 0;
  for (auto &C : Accounts)
    After += C->peek();
  std::printf("[%-8s] killed mid-transfer: total %d -> %d (rolled back)\n",
              formatDuration(S.now()).c_str(), Before, After);
  if (Before != After)
    Ok = false;

  std::printf("%s\n", Ok ? "transfer example OK" : "transfer example FAILED");
  return Ok ? 0 : 1;
}
