//===- grades.cpp - The paper's grades example, three ways ----------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Section 3.1 / Section 4 of the paper: record each student's grade in a
// grades database (getting back the updated average) and print an
// alphabetical list of students with their averages, using two streams.
//
//  * figure3-1: one process; stream all record_grade calls, then claim in
//    order and stream the prints (limited overlap: printing cannot start
//    until every record_grade was issued).
//  * figure4-1: two forked processes connected by a promise queue.
//  * figure4-2: the same composition with coenter — inline arms and group
//    termination.
//
// The composed versions overlap recording with printing, and the win grows
// with the number of students ("this overlapping becomes more important as
// the number of calls increases").
//
//===----------------------------------------------------------------------===//

#include "promises/apps/GradesDb.h"
#include "promises/apps/Printer.h"
#include "promises/core/Coenter.h"
#include "promises/core/Fork.h"
#include "promises/core/PromiseQueue.h"
#include "promises/support/StrUtil.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;

namespace {

struct StudentInfo {
  std::string Stu;
  int32_t Grade;
};

/// One self-contained world per run so virtual timings are comparable.
struct World {
  sim::Simulation S;
  net::SimNetwork Net;
  net::NodeId DbNode, PrNode, ClNode;
  Guardian DbG, PrG, Client;
  apps::GradesDb Db;
  apps::Printer Pr;

  World()
      : Net(S, net::NetConfig{}), DbNode(Net.addNode("grades-db")),
        PrNode(Net.addNode("printer")), ClNode(Net.addNode("client")),
        DbG(Net, DbNode, "grades-db"), PrG(Net, PrNode, "printer"),
        Client(Net, ClNode, "client"), Db(apps::installGradesDb(DbG)),
        Pr(apps::installPrinter(PrG)) {}
};

std::vector<StudentInfo> makeGrades(int N) {
  std::vector<StudentInfo> Grades;
  for (int I = 0; I < N; ++I)
    Grades.push_back({strprintf("student%04d", I), 60 + (I * 7) % 40});
  return Grades;
}

/// Producing each element of the pre-recorded grades array costs local
/// work (the paper's elements iterator "produced incrementally"). This is
/// part of what the composed versions overlap with printing.
constexpr sim::Time ProduceCost = sim::usec(150);

std::string makeLine(const std::string &Stu, double Avg) {
  return Stu + ": " + formatDouble(Avg, 1);
}

/// Figure 3-1: the straight-line program.
sim::Time runFigure31(int N) {
  World W;
  auto Grades = makeGrades(N);
  W.Client.spawnProcess("main", [&] {
    auto A = W.Client.newAgent();
    auto RecordGrade = bindHandler(W.Client, A, W.Db.RecordGrade);
    auto Print = bindHandler(W.Client, A, W.Pr.Print);

    // Record grades: stream the calls, keep the promises in an array.
    std::vector<Promise<double, apps::NoSuchStudent>> Averages;
    for (const StudentInfo &Si : Grades) {
      W.S.sleep(ProduceCost); // elements yields the next record.
      Averages.push_back(RecordGrade.streamCall(Si.Stu, Si.Grade));
    }
    RecordGrade.flush();

    // Print: claim in (alphabetical) order, stream the prints.
    for (size_t I = 0; I != Averages.size(); ++I) {
      const auto &O = Averages[I].claim();
      Print.streamCall(makeLine(Grades[I].Stu, O.value()));
    }
    Print.synch();
  });
  W.S.run();
  return W.S.now();
}

/// Figure 4-1: forks communicating through a promise queue.
sim::Time runFigure41(int N) {
  World W;
  auto Grades = makeGrades(N);
  W.Client.spawnProcess("main", [&] {
    PromiseQueue<Promise<double, apps::NoSuchStudent>> AveQ(W.S);

    auto UseDb = fork(W.S, [&]() -> Outcome<int32_t> {
      auto A = W.Client.newAgent();
      auto RecordGrade = bindHandler(W.Client, A, W.Db.RecordGrade);
      for (const StudentInfo &Si : Grades) {
        W.S.sleep(ProduceCost);
        AveQ.enq(RecordGrade.streamCall(Si.Stu, Si.Grade));
      }
      if (!RecordGrade.synch().ok())
        return Failure{"cannot_record"};
      return 0;
    });

    auto DoPrint = fork(W.S, [&]() -> Outcome<int32_t> {
      auto A = W.Client.newAgent();
      auto Print = bindHandler(W.Client, A, W.Pr.Print);
      for (size_t I = 0; I != Grades.size(); ++I) {
        auto Ave = AveQ.deq();
        Print.streamCall(makeLine(Grades[I].Stu, Ave.claim().value()));
      }
      if (!Print.synch().ok())
        return Failure{"cannot_print"};
      return 0;
    });

    UseDb.claim();
    DoPrint.claim();
  });
  W.S.run();
  return W.S.now();
}

/// Figure 4-2: the coenter form.
sim::Time runFigure42(int N, bool *SawProblem = nullptr) {
  World W;
  auto Grades = makeGrades(N);
  W.Client.spawnProcess("main", [&] {
    PromiseQueue<Promise<double, apps::NoSuchStudent>> AveQ(W.S);
    ArmResult Bad =
        Coenter(W.S)
            .arm("recording",
                 [&]() -> ArmResult {
                   auto A = W.Client.newAgent();
                   auto RecordGrade =
                       bindHandler(W.Client, A, W.Db.RecordGrade);
                   for (const StudentInfo &Si : Grades) {
                     W.S.sleep(ProduceCost);
                     AveQ.enq(RecordGrade.streamCall(Si.Stu, Si.Grade));
                   }
                   return RecordGrade.synch().toExn();
                 })
            .arm("printing",
                 [&]() -> ArmResult {
                   auto A = W.Client.newAgent();
                   auto Print = bindHandler(W.Client, A, W.Pr.Print);
                   for (size_t I = 0; I != Grades.size(); ++I) {
                     auto Ave = AveQ.deq();
                     Print.streamCall(
                         makeLine(Grades[I].Stu, Ave.claim().value()));
                   }
                   return Print.synch().toExn();
                 })
            .run();
    if (SawProblem)
      *SawProblem = Bad.has_value();
  });
  W.S.run();
  return W.S.now();
}

} // namespace

int main() {
  std::printf("The grades example (paper Figures 3-1, 4-1, 4-2)\n");
  std::printf("%8s %14s %14s %14s\n", "students", "figure3-1",
              "figure4-1", "figure4-2");
  bool Ok = true;
  for (int N : {10, 50, 200}) {
    sim::Time T31 = runFigure31(N);
    sim::Time T41 = runFigure41(N);
    sim::Time T42 = runFigure42(N);
    std::printf("%8d %14s %14s %14s\n", N, formatDuration(T31).c_str(),
                formatDuration(T41).c_str(), formatDuration(T42).c_str());
    // The composed versions must beat the straight-line program once the
    // call count is large enough for the overlap to matter.
    if (N >= 50 && !(T42 < T31 && T41 < T31))
      Ok = false;
  }

  // The termination story: crash the grades database mid-run; the
  // recording arm raises, the printing arm (blocked in deq) is terminated
  // as part of the group instead of hanging forever.
  {
    World W;
    auto Grades = makeGrades(1000);
    bool GroupTerminated = false;
    W.Client.spawnProcess("main", [&] {
      PromiseQueue<Promise<double, apps::NoSuchStudent>> AveQ(W.S);
      ArmResult Bad =
          Coenter(W.S)
              .arm("recording",
                   [&]() -> ArmResult {
                     auto A = W.Client.newAgent();
                     auto RecordGrade =
                         bindHandler(W.Client, A, W.Db.RecordGrade);
                     for (const StudentInfo &Si : Grades) {
                       W.S.sleep(ProduceCost);
                       AveQ.enq(RecordGrade.streamCall(Si.Stu, Si.Grade));
                     }
                     return RecordGrade.synch().toExn();
                   })
              .arm("printing",
                   [&]() -> ArmResult {
                     auto A = W.Client.newAgent();
                     auto Print = bindHandler(W.Client, A, W.Pr.Print);
                     for (size_t I = 0; I != Grades.size(); ++I) {
                       auto Ave = AveQ.deq();
                       const auto &O = Ave.claim();
                       if (!O.isNormal())
                         return O.toExn();
                       Print.streamCall(
                           makeLine(Grades[I].Stu, O.value()));
                     }
                     return Print.synch().toExn();
                   })
              .run();
      GroupTerminated = Bad.has_value();
    });
    W.S.schedule(sim::msec(20), [&] { W.Net.crash(W.DbNode); });
    W.S.run();
    std::printf("\ncrash drill: grades db crashed mid-run -> coenter "
                "raised '%s' and terminated the group (no hang)\n",
                GroupTerminated ? "unavailable" : "nothing!?");
    if (!GroupTerminated)
      Ok = false;
  }

  std::printf("%s\n", Ok ? "grades example OK" : "grades example FAILED");
  return Ok ? 0 : 1;
}
