//===- quickstart.cpp - First contact with promises ------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// The smallest end-to-end tour: two guardians on a simulated network, an
// RPC, stream calls with promises, exception handling via claim, a local
// fork, and flush/synch.
//
//===----------------------------------------------------------------------===//

#include "promises/apps/KvStore.h"
#include "promises/core/Fork.h"
#include "promises/runtime/RemoteHandler.h"
#include "promises/support/StrUtil.h"

#include <cstdio>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;

int main() {
  // A simulated network with two nodes: the whole system runs in virtual
  // time, deterministically.
  sim::Simulation S;
  net::SimNetwork Net(S, net::NetConfig{});
  net::NodeId ServerNode = Net.addNode("server");
  net::NodeId ClientNode = Net.addNode("client");

  // A guardian (Argus's active entity) providing a key-value service.
  Guardian Server(Net, ServerNode, "kv-server");
  apps::KvStore Kv = apps::installKvStore(Server);

  // The client guardian; its processes make the calls.
  Guardian Client(Net, ClientNode, "client");

  bool Ok = true;
  Client.spawnProcess("main", [&] {
    // Each client activity gets an agent: all calls made through handlers
    // bound to this agent (and one port group) share one call-stream.
    stream::AgentId Me = Client.newAgent();
    auto Put = bindHandler(Client, Me, Kv.Put);
    auto Get = bindHandler(Client, Me, Kv.Get);
    auto Echo = bindHandler(Client, Me, Kv.Echo);

    // --- 1. A plain RPC: blocks for the reply. ---
    Put.call(std::string("greeting"), std::string("hello world"));
    std::printf("[%-8s] rpc put done\n", formatDuration(S.now()).c_str());

    // --- 2. Stream calls: fire many, claim later; promises become ready
    //        in call order while we keep working. ---
    std::vector<Promise<std::string>> Ps;
    for (int I = 0; I < 5; ++I)
      Ps.push_back(Echo.streamCall(std::string("msg") + std::to_string(I)));
    std::printf("[%-8s] 5 stream calls issued (none waited for)\n",
                formatDuration(S.now()).c_str());
    Echo.flush(); // Expedite the buffered batch.
    for (auto &P : Ps) {
      const auto &O = P.claim();
      if (!O.isNormal())
        Ok = false;
    }
    std::printf("[%-8s] all 5 echoes claimed\n",
                formatDuration(S.now()).c_str());

    // --- 3. Exceptions are values, handled at the claim site. ---
    Get.call(std::string("missing-key"))
        .visit(Visitor{
            [&](const std::string &V) {
              std::printf("unexpected value: %s\n", V.c_str());
              Ok = false;
            },
            [&](const apps::NotFound &E) {
              std::printf("[%-8s] get(\"%s\") signalled not_found — "
                          "handled like an except arm\n",
                          formatDuration(S.now()).c_str(), E.Key.c_str());
            },
            [&](const auto &) { Ok = false; },
        });

    // --- 4. A local fork: same promise type, no network involved. ---
    auto Sum = fork(S, [&] {
      S.sleep(sim::usec(100)); // Some local work in parallel.
      return 40 + 2;
    });
    std::printf("[%-8s] forked; caller still running\n",
                formatDuration(S.now()).c_str());
    if (Sum.claim().value() != 42)
      Ok = false;
    std::printf("[%-8s] fork claimed: %d\n",
                formatDuration(S.now()).c_str(), Sum.claim().value());

    // --- 5. Sends + synch: fire-and-forget with a checkpoint. ---
    for (int I = 0; I < 3; ++I)
      Put.send(std::string("k") + std::to_string(I), std::string("v"));
    if (!Put.synch().ok())
      Ok = false;
    std::printf("[%-8s] 3 sends synched; store has %zu keys\n",
                formatDuration(S.now()).c_str(), Kv.Store->Data.size());
  });

  S.run();
  std::printf("%s (virtual time %s, %llu datagrams)\n",
              Ok ? "quickstart OK" : "quickstart FAILED",
              formatDuration(S.now()).c_str(),
              static_cast<unsigned long long>(
                  Net.counters().DatagramsSent));
  return Ok ? 0 : 1;
}
