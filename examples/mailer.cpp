//===- mailer.cpp - Stream ordering semantics (Section 2.1) ----------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// The mailer guardian scenario from the paper: send_mail and read_mail
// share one port group. One client's calls are sequenced — its read waits
// for its own earlier send — while two clients' calls run concurrently at
// the guardian.
//
//===----------------------------------------------------------------------===//

#include "promises/apps/Mailer.h"
#include "promises/support/StrUtil.h"

#include <cstdio>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;

int main() {
  sim::Simulation S;
  net::SimNetwork Net(S, net::NetConfig{});
  Guardian MailerG(Net, Net.addNode("mailer"), "mailer");
  Guardian C1(Net, Net.addNode("c1"), "c1");
  Guardian C2(Net, Net.addNode("c2"), "c2");

  apps::MailerConfig Cfg;
  Cfg.ServiceTime = sim::msec(2);
  apps::Mailer M = apps::installMailer(MailerG, Cfg);
  M.Mail->Boxes["alice"]; // Pre-registered users.
  M.Mail->Boxes["bob"];

  bool Ok = true;
  sim::Time C1Done = 0, C2Done = 0;

  // C1: streams a send_mail, then read_mail on the same stream. The
  // ordering rule guarantees the read sees the send.
  C1.spawnProcess("c1", [&] {
    auto A = C1.newAgent();
    auto Send = bindHandler(C1, A, M.SendMail);
    auto Read = bindHandler(C1, A, M.ReadMail);
    Send.streamCall(std::string("alice"), std::string("lunch at noon?"));
    auto P = Read.streamCall(std::string("alice"));
    Read.flush();
    const auto &O = P.claim();
    if (!O.isNormal() || O.value().size() != 1 ||
        O.value()[0] != "lunch at noon?") {
      Ok = false;
    } else {
      std::printf("[%-8s] c1: read own mail after streamed send: \"%s\"\n",
                  formatDuration(S.now()).c_str(), O.value()[0].c_str());
    }
    C1Done = S.now();
  });

  // C2: a different stream; its call runs concurrently with C1's.
  C2.spawnProcess("c2", [&] {
    auto A = C2.newAgent();
    auto Read = bindHandler(C2, A, M.ReadMail);
    auto O = Read.call(std::string("bob"));
    if (!O.isNormal() || !O.value().empty())
      Ok = false;
    std::printf("[%-8s] c2: read bob's (empty) mailbox concurrently\n",
                formatDuration(S.now()).c_str());
    C2Done = S.now();
  });

  S.run();

  // Concurrency check: C1 used two 2ms operations, C2 one. With
  // per-stream concurrency, C2's single operation finishes before C1's
  // two (its service overlapped theirs); if the mailer serialized all
  // three, C2 — whose call arrives at roughly the same time — would
  // finish last or nearly so.
  if (!(C2Done < C1Done && C2Done < sim::msec(7))) {
    std::printf("expected cross-stream concurrency, got serialization "
                "(c1=%s c2=%s)\n",
                formatDuration(C1Done).c_str(),
                formatDuration(C2Done).c_str());
    Ok = false;
  }

  // Exception path: reading an unknown user's mail signals.
  bool SawNoSuchUser = false;
  C2.spawnProcess("c2-err", [&] {
    auto Read = bindHandler(C2, C2.newAgent(), M.ReadMail);
    Read.call(std::string("mallory"))
        .visit(Visitor{
            [&](const std::vector<std::string> &) { Ok = false; },
            [&](const apps::NoSuchUser &E) {
              SawNoSuchUser = true;
              std::printf("[%-8s] c2: read_mail(\"%s\") signalled "
                          "no_such_user\n",
                          formatDuration(S.now()).c_str(), E.Who.c_str());
            },
            [&](const auto &) { Ok = false; },
        });
  });
  S.run();
  if (!SawNoSuchUser)
    Ok = false;

  std::printf("%s\n", Ok ? "mailer example OK" : "mailer example FAILED");
  return Ok ? 0 : 1;
}
