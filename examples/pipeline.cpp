//===- pipeline.cpp - Composing a three-level cascade ----------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Section 4 of the paper: three handlers on three different guardians,
//
//   read    = handler () returns (item)
//   compute = handler (item) returns (result)
//   write   = handler (result)
//
// pipelined so that results of calls on one stream feed calls on the next.
// The straight-line program serializes the stages (all reads before any
// compute, all computes before any write); the coenter composition runs
// one process per stream connected by promise queues, and items flow
// through all three stages concurrently. The filter between stages is a
// local computation, as the paper prescribes.
//
//===----------------------------------------------------------------------===//

#include "promises/core/Coenter.h"
#include "promises/core/PromiseQueue.h"
#include "promises/runtime/RemoteHandler.h"
#include "promises/support/StrUtil.h"

#include <cstdio>
#include <vector>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;

namespace {

struct Stages {
  runtime::HandlerRef<int32_t(int32_t)> Read;    // item index -> raw item
  runtime::HandlerRef<int32_t(int32_t)> Compute; // raw -> computed
  runtime::HandlerRef<wire::Unit(int32_t)> Write;
};

struct World {
  sim::Simulation S;
  net::SimNetwork Net;
  Guardian Reader, Computer, Writer, Client;
  Stages St;
  std::vector<int32_t> Written;

  explicit World(sim::Time Service)
      : Net(S, net::NetConfig{}),
        Reader(Net, Net.addNode("reader"), "reader"),
        Computer(Net, Net.addNode("computer"), "computer"),
        Writer(Net, Net.addNode("writer"), "writer"),
        Client(Net, Net.addNode("client"), "client") {
    St.Read = Reader.addHandler<int32_t(int32_t)>(
        "read", [this, Service](int32_t I) -> Outcome<int32_t> {
          S.sleep(Service);
          return I * 2;
        });
    St.Compute = Computer.addHandler<int32_t(int32_t)>(
        "compute", [this, Service](int32_t V) -> Outcome<int32_t> {
          S.sleep(Service);
          return V + 1;
        });
    St.Write = Writer.addHandler<wire::Unit(int32_t)>(
        "write", [this, Service](int32_t V) -> Outcome<wire::Unit> {
          S.sleep(Service);
          Written.push_back(V);
          return wire::Unit{};
        });
  }
};

/// Straight-line: each stage's loop runs to completion before the next
/// stage's loop starts (the structure the paper criticizes).
sim::Time runSequential(int N, sim::Time Service, std::vector<int32_t> *Out) {
  World W(Service);
  W.Client.spawnProcess("main", [&] {
    auto A = W.Client.newAgent();
    auto Read = bindHandler(W.Client, A, W.St.Read);
    auto Compute = bindHandler(W.Client, A, W.St.Compute);
    auto Write = bindHandler(W.Client, A, W.St.Write);

    std::vector<Promise<int32_t>> Raw;
    for (int32_t I = 0; I < N; ++I)
      Raw.push_back(Read.streamCall(I));
    Read.flush();

    std::vector<Promise<int32_t>> Computed;
    for (auto &P : Raw) // Filter: claim, pass along.
      Computed.push_back(Compute.streamCall(P.claim().value()));
    Compute.flush();

    for (auto &P : Computed)
      Write.streamCall(P.claim().value());
    Write.synch();
  });
  W.S.run();
  if (Out)
    *Out = W.Written;
  return W.S.now();
}

/// Composed: one process per stream, promise queues in between; items
/// cascade as soon as they are ready.
sim::Time runComposed(int N, sim::Time Service, std::vector<int32_t> *Out) {
  World W(Service);
  W.Client.spawnProcess("main", [&] {
    PromiseQueue<Promise<int32_t>> RawQ(W.S), ComputedQ(W.S);
    Coenter(W.S)
        .arm("reading",
             [&]() -> ArmResult {
               auto A = W.Client.newAgent();
               auto Read = bindHandler(W.Client, A, W.St.Read);
               for (int32_t I = 0; I < N; ++I)
                 RawQ.enq(Read.streamCall(I));
               return Read.synch().toExn();
             })
        .arm("computing",
             [&]() -> ArmResult {
               auto A = W.Client.newAgent();
               auto Compute = bindHandler(W.Client, A, W.St.Compute);
               for (int32_t I = 0; I < N; ++I) {
                 auto P = RawQ.deq();
                 // The filter: claim the read, feed the compute.
                 ComputedQ.enq(Compute.streamCall(P.claim().value()));
               }
               return Compute.synch().toExn();
             })
        .arm("writing",
             [&]() -> ArmResult {
               auto A = W.Client.newAgent();
               auto Write = bindHandler(W.Client, A, W.St.Write);
               for (int32_t I = 0; I < N; ++I) {
                 auto P = ComputedQ.deq();
                 Write.streamCall(P.claim().value());
               }
               return Write.synch().toExn();
             })
        .run();
  });
  W.S.run();
  if (Out)
    *Out = W.Written;
  return W.S.now();
}

} // namespace

int main() {
  std::printf("Three-level cascade: read -> compute -> write (Section 4)\n");
  std::printf("%8s %14s %14s %9s\n", "items", "sequential", "composed",
              "speedup");
  bool Ok = true;
  const sim::Time Service = sim::usec(200);
  for (int N : {8, 32, 128, 512}) {
    std::vector<int32_t> SeqOut, CompOut;
    sim::Time TSeq = runSequential(N, Service, &SeqOut);
    sim::Time TComp = runComposed(N, Service, &CompOut);
    std::printf("%8d %14s %14s %8.2fx\n", N,
                formatDuration(TSeq).c_str(), formatDuration(TComp).c_str(),
                static_cast<double>(TSeq) / static_cast<double>(TComp));
    // Same results regardless of schedule: item i becomes 2i+1, written
    // in order on the write stream.
    if (SeqOut != CompOut || static_cast<int>(SeqOut.size()) != N)
      Ok = false;
    for (int32_t I = 0; I < N; ++I)
      if (SeqOut[static_cast<size_t>(I)] != 2 * I + 1)
        Ok = false;
    if (N >= 128 && TComp >= TSeq)
      Ok = false; // Composition must win once there is enough to overlap.
  }
  std::printf("%s\n", Ok ? "pipeline example OK" : "pipeline example FAILED");
  return Ok ? 0 : 1;
}
