//===- Trace.cpp - Optional event tracing ----------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/support/Trace.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace promises;

namespace {
TraceSink &sinkSlot() {
  static TraceSink Sink;
  return Sink;
}

bool envEnabled() {
  static bool Enabled = [] {
    const char *V = std::getenv("PROMISES_TRACE");
    return V != nullptr && V[0] != '\0';
  }();
  return Enabled;
}
} // namespace

bool promises::traceEnabled() { return envEnabled() || sinkSlot() != nullptr; }

void promises::setTraceSink(TraceSink Sink) { sinkSlot() = std::move(Sink); }

void promises::tracef(const char *Fmt, ...) {
  if (!traceEnabled())
    return;
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Line;
  if (Needed > 0) {
    std::vector<char> Buf(static_cast<size_t>(Needed) + 1);
    std::vsnprintf(Buf.data(), Buf.size(), Fmt, Args);
    Line.assign(Buf.data(), static_cast<size_t>(Needed));
  }
  va_end(Args);
  if (sinkSlot())
    sinkSlot()(Line);
  if (envEnabled())
    std::fprintf(stderr, "[promises] %s\n", Line.c_str());
}
