//===- Metrics.cpp - Observability core -------------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/support/Metrics.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <ostream>

using namespace promises;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

void Histogram::record(double Sample) {
  if (Count == 0) {
    Min = Max = Sample;
  } else {
    Min = std::min(Min, Sample);
    Max = std::max(Max, Sample);
  }
  ++Count;
  Sum += Sample;
  ++Buckets[bucketIndex(Sample)];
}

double Histogram::representative(size_t B) const {
  // Invert bucketIndex: bucket 0 covers "< 1"; otherwise recover the
  // (Shift, top-bits) pair and report the linear midpoint of
  // [Top << Shift, (Top + 1) << Shift). For raw indices below
  // 2 * SubBuckets the shift is 0 and the bucket holds exactly one
  // integer value.
  if (B == 0)
    return std::clamp(0.5, Min, Max);
  size_t Raw = B - 1;
  size_t Shift = Raw < 2 * SubBuckets ? 0 : Raw / SubBuckets - 1;
  size_t Top = Raw - Shift * SubBuckets;
  double V = std::ldexp(static_cast<double>(Top) + 0.5, static_cast<int>(Shift));
  return std::clamp(V, Min, Max);
}

double Histogram::percentile(double P) const {
  // Total function: out-of-range P clamps, NaN maps to the minimum, and
  // empty histograms return 0.0 — never index buckets from garbage (a
  // release build with asserts stripped must not walk out of range).
  if (!(P > 0.0))
    P = 0.0; // Negative or NaN.
  else if (P > 100.0)
    P = 100.0;
  if (Count == 0)
    return 0.0;
  uint64_t Rank = static_cast<uint64_t>((P / 100.0) *
                                        static_cast<double>(Count - 1));
  uint64_t Seen = 0;
  for (size_t B = 0; B < NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen > Rank)
      return representative(B);
  }
  return Max;
}

//===----------------------------------------------------------------------===//
// Event kinds
//===----------------------------------------------------------------------===//

const char *promises::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::CallIssued:
    return "call_issued";
  case EventKind::CallSpan:
    return "call";
  case EventKind::CallBatchTx:
    return "call_batch_tx";
  case EventKind::ReplyBatchTx:
    return "reply_batch_tx";
  case EventKind::SenderBreak:
    return "sender_break";
  case EventKind::ReceiverBreak:
    return "receiver_break";
  case EventKind::StreamRestart:
    return "stream_restart";
  case EventKind::StreamSuperseded:
    return "stream_superseded";
  case EventKind::OrphanDestroyed:
    return "orphan_destroyed";
  case EventKind::NodeCrash:
    return "node_crash";
  case EventKind::NodeRestart:
    return "node_restart";
  case EventKind::SenderBlocked:
    return "sender_blocked";
  case EventKind::SenderUnblocked:
    return "sender_unblocked";
  case EventKind::DeadlineExpired:
    return "deadline_expired";
  case EventKind::CallCancelled:
    return "call_cancelled";
  case EventKind::CallRetry:
    return "call_retry";
  case EventKind::CallShed:
    return "call_shed";
  case EventKind::BreakerOpen:
    return "breaker_open";
  case EventKind::BreakerClose:
    return "breaker_close";
  case EventKind::DatagramCorrupted:
    return "datagram_corrupted";
  case EventKind::FrameCorruptDropped:
    return "frame_corrupt_dropped";
  case EventKind::Custom:
    break;
  }
  return "custom";
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

MetricsRegistry::MetricsRegistry() : EnabledFlag(enabledByEnvironment()) {}

bool MetricsRegistry::enabledByEnvironment() {
  const char *A = std::getenv("PROMISES_METRICS");
  const char *B = std::getenv("PROMISES_METRICS_DIR");
  return (A && A[0] != '\0') || (B && B[0] != '\0');
}

std::string MetricsRegistry::key(const std::string &Name,
                                 const MetricLabels &Labels) {
  std::string K = Name;
  K.push_back('{');
  for (const auto &[L, V] : Labels) {
    K += L;
    K.push_back('=');
    K += V;
    K.push_back(',');
  }
  K.push_back('}');
  return K;
}

MetricsRegistry::Instrument &MetricsRegistry::find(Type T,
                                                   const std::string &Name,
                                                   MetricLabels Labels) {
  auto [It, Inserted] = Instruments.try_emplace(key(Name, Labels));
  Instrument &I = It->second;
  if (Inserted) {
    I.T = T;
    I.Name = Name;
    I.Labels = std::move(Labels);
    switch (T) {
    case Type::Counter:
      I.C = &CounterPool.emplace_back(Counter());
      break;
    case Type::Gauge:
      I.G = &GaugePool.emplace_back(Gauge());
      break;
    case Type::Histogram:
      I.H = &HistogramPool.emplace_back(Histogram(&EnabledFlag));
      break;
    }
  }
  assert(I.T == T && "metric re-registered with a different type");
  return I;
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  MetricLabels Labels) {
  return *find(Type::Counter, Name, std::move(Labels)).C;
}

Gauge &MetricsRegistry::gauge(const std::string &Name, MetricLabels Labels) {
  return *find(Type::Gauge, Name, std::move(Labels)).G;
}

Gauge &MetricsRegistry::gaugeProbe(const std::string &Name,
                                   std::function<double()> Probe,
                                   MetricLabels Labels) {
  Gauge &G = *find(Type::Gauge, Name, std::move(Labels)).G;
  G.Probe = std::move(Probe);
  return G;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      MetricLabels Labels) {
  return *find(Type::Histogram, Name, std::move(Labels)).H;
}

void MetricsRegistry::emit(TraceEvent E) {
  if (!EnabledFlag)
    return;
  if (Events.size() >= MaxEvents) {
    ++DroppedEvents;
    return;
  }
  Events.push_back(std::move(E));
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

namespace {

void jsonEscape(std::ostream &OS, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
}

void writeLabelsJson(std::ostream &OS, const MetricLabels &Labels) {
  OS << "{";
  bool First = true;
  for (const auto &[L, V] : Labels) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\"";
    jsonEscape(OS, L);
    OS << "\":\"";
    jsonEscape(OS, V);
    OS << "\"";
  }
  OS << "}";
}

/// JSON has no spelling for nan/inf: the default operator<< would emit
/// them as bare tokens and make the whole line unparseable to a strict
/// reader (Python json, jq). A histogram fed a NaN sample, or a gauge
/// probe dividing by zero, poisons every downstream aggregate — render
/// any non-finite value as 0 so one bad sample cannot corrupt an export.
double finiteOrZero(double V) { return std::isfinite(V) ? V : 0.0; }

std::string labelsText(const MetricLabels &Labels) {
  if (Labels.empty())
    return "";
  std::string S = "{";
  for (size_t I = 0; I < Labels.size(); ++I) {
    if (I)
      S += ",";
    S += Labels[I].first + "=" + Labels[I].second;
  }
  S += "}";
  return S;
}

} // namespace

void MetricsRegistry::writeSummary(std::ostream &OS) const {
  for (const auto &[K, I] : Instruments) {
    OS << "  " << I.Name << labelsText(I.Labels) << " = ";
    switch (I.T) {
    case Type::Counter:
      OS << I.C->value();
      break;
    case Type::Gauge:
      OS << finiteOrZero(I.G->value());
      break;
    case Type::Histogram:
      if (I.H->count() == 0) {
        OS << "(no samples)";
      } else {
        OS << "count " << I.H->count() << ", mean "
           << finiteOrZero(I.H->mean()) << ", min "
           << finiteOrZero(I.H->min()) << ", p50 "
           << finiteOrZero(I.H->percentile(50)) << ", p90 "
           << finiteOrZero(I.H->percentile(90)) << ", p99 "
           << finiteOrZero(I.H->percentile(99)) << ", max "
           << finiteOrZero(I.H->max());
      }
      break;
    }
    OS << "\n";
  }
  if (!Events.empty() || DroppedEvents)
    OS << "  trace events: " << Events.size() << " captured, "
       << DroppedEvents << " dropped\n";
}

void MetricsRegistry::writeJsonLines(std::ostream &OS) const {
  for (const auto &[K, I] : Instruments) {
    OS << "{\"type\":\"";
    switch (I.T) {
    case Type::Counter:
      OS << "counter";
      break;
    case Type::Gauge:
      OS << "gauge";
      break;
    case Type::Histogram:
      OS << "histogram";
      break;
    }
    OS << "\",\"name\":\"";
    jsonEscape(OS, I.Name);
    OS << "\",\"labels\":";
    writeLabelsJson(OS, I.Labels);
    switch (I.T) {
    case Type::Counter:
      OS << ",\"value\":" << I.C->value();
      break;
    case Type::Gauge:
      OS << ",\"value\":" << finiteOrZero(I.G->value());
      break;
    case Type::Histogram:
      OS << ",\"count\":" << I.H->count()
         << ",\"sum\":" << finiteOrZero(I.H->sum())
         << ",\"min\":" << finiteOrZero(I.H->min())
         << ",\"max\":" << finiteOrZero(I.H->max())
         << ",\"mean\":" << finiteOrZero(I.H->mean())
         << ",\"p50\":" << finiteOrZero(I.H->percentile(50))
         << ",\"p90\":" << finiteOrZero(I.H->percentile(90))
         << ",\"p99\":" << finiteOrZero(I.H->percentile(99));
      break;
    }
    OS << "}\n";
  }
  for (const TraceEvent &E : Events) {
    OS << "{\"type\":\"event\",\"kind\":\"" << eventKindName(E.Kind)
       << "\",\"ts_ns\":" << E.TsNs << ",\"node\":" << E.Node
       << ",\"id\":" << E.Id << ",\"seq\":" << E.Seq;
    if (E.DurNs)
      OS << ",\"dur_ns\":" << E.DurNs;
    if (!E.Detail.empty()) {
      OS << ",\"detail\":\"";
      jsonEscape(OS, E.Detail);
      OS << "\"";
    }
    OS << "}\n";
  }
  if (DroppedEvents)
    OS << "{\"type\":\"meta\",\"dropped_events\":" << DroppedEvents << "}\n";
}

void MetricsRegistry::writeChromeTrace(std::ostream &OS) const {
  OS << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  for (const TraceEvent &E : Events) {
    if (!First)
      OS << ",";
    First = false;
    // chrome://tracing timestamps are microseconds.
    OS << "\n{\"name\":\"" << eventKindName(E.Kind) << "\",\"cat\":\"promises\""
       << ",\"ph\":\"" << (E.DurNs ? "X" : "i") << "\",\"ts\":"
       << static_cast<double>(E.TsNs) / 1000.0;
    if (E.DurNs)
      OS << ",\"dur\":" << static_cast<double>(E.DurNs) / 1000.0;
    else
      OS << ",\"s\":\"t\"";
    OS << ",\"pid\":" << E.Node << ",\"tid\":" << E.Id
       << ",\"args\":{\"seq\":" << E.Seq;
    if (!E.Detail.empty()) {
      OS << ",\"detail\":\"";
      jsonEscape(OS, E.Detail);
      OS << "\"";
    }
    OS << "}}";
  }
  OS << "\n]}\n";
}

bool MetricsRegistry::writeJsonLinesFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeJsonLines(OS);
  return true;
}

bool MetricsRegistry::writeChromeTraceFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeChromeTrace(OS);
  return true;
}
