//===- StrUtil.cpp - Small string helpers ---------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/support/StrUtil.h"

#include <cstdarg>
#include <cstdio>

using namespace promises;

std::string promises::formatDuration(uint64_t Nanos) {
  if (Nanos < 1000)
    return strprintf("%lluns", static_cast<unsigned long long>(Nanos));
  if (Nanos < 1000ull * 1000)
    return strprintf("%.2fus", static_cast<double>(Nanos) / 1e3);
  if (Nanos < 1000ull * 1000 * 1000)
    return strprintf("%.2fms", static_cast<double>(Nanos) / 1e6);
  return strprintf("%.3fs", static_cast<double>(Nanos) / 1e9);
}

std::string promises::formatDouble(double Value, int Decimals) {
  return strprintf("%.*f", Decimals, Value);
}

std::string promises::join(const std::vector<std::string> &Parts,
                           const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string promises::strprintf(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Needed > 0) {
    Out.resize(static_cast<size_t>(Needed));
    // vsnprintf writes the terminating NUL past size(); use a buffer.
    std::vector<char> Buf(static_cast<size_t>(Needed) + 1);
    std::vsnprintf(Buf.data(), Buf.size(), Fmt, Args);
    Out.assign(Buf.data(), static_cast<size_t>(Needed));
  }
  va_end(Args);
  return Out;
}
