//===- SendReceive.cpp - Explicit messaging baseline -----------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/baseline/SendReceive.h"

using namespace promises;
using namespace promises::baseline;

Mailbox::Mailbox(net::Network &Net, net::NodeId Node,
                 stream::StreamConfig Cfg)
    : Reg(Net.simulation().metrics()), Labels{{"node", Net.nodeName(Node)}} {
  MsgsSent = &Reg.counter("baseline.msgs_sent", Labels);
  MsgsReceived = &Reg.counter("baseline.msgs_received", Labels);
  Reg.gaugeProbe("baseline.inbox_depth", [this] {
    return static_cast<double>(Inbox.size());
  }, Labels);
  Transport = std::make_unique<stream::StreamTransport>(Net, Node, Cfg);
  InboxWaiters = std::make_unique<sim::WaitQueue>(Net.simulation());
  Transport->setCallSink([this](stream::IncomingCall IC) {
    // Every incoming "call" is a one-way message: complete right away
    // (sends omit normal replies on the wire) and enqueue the payload.
    Msg M;
    M.Payload = std::move(IC.Args);
    IC.Complete(stream::ReplyStatus::Normal, 0, {}, "");
    // Sender address travels in-band; decode the envelope.
    wire::Decoder D(M.Payload);
    M.From = wire::Codec<net::Address>::decode(D);
    M.Payload = D.readBytes();
    if (D.failed())
      return; // Malformed envelope: drop.
    MsgsReceived->inc();
    Inbox.push_back(std::move(M));
    InboxWaiters->notifyOne();
  });
}

Mailbox::~Mailbox() {
  // Freeze the probe gauge: the registry outlives this mailbox, and a
  // probe capturing `this` must not dangle.
  double Final = static_cast<double>(Inbox.size());
  Reg.gaugeProbe("baseline.inbox_depth", [Final] { return Final; }, Labels);
}

void Mailbox::sendMsg(net::Address To, wire::Bytes Payload) {
  auto It = Agents.find(To);
  if (It == Agents.end())
    It = Agents.emplace(To, Transport->newAgent()).first;
  MsgsSent->inc();
  wire::Encoder E;
  wire::Codec<net::Address>::encode(E, Transport->address());
  E.writeBytes(Payload.data(), Payload.size());
  Transport->issueCall(It->second, To, MsgGroup, MsgPort, E.take(),
                       /*NoReply=*/true, /*IsRpc=*/false,
                       /*OnReply=*/nullptr);
}

void Mailbox::flushTo(net::Address To) {
  auto It = Agents.find(To);
  if (It != Agents.end())
    Transport->flush(It->second, To, MsgGroup);
}

Msg Mailbox::receive() {
  while (Inbox.empty())
    InboxWaiters->wait();
  Msg M = std::move(Inbox.front());
  Inbox.pop_front();
  return M;
}

bool Mailbox::tryReceive(Msg &Out) {
  if (Inbox.empty())
    return false;
  Out = std::move(Inbox.front());
  Inbox.pop_front();
  return true;
}
