//===- Chaos.cpp - Deterministic fault injection ---------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/chaos/Chaos.h"

#include "promises/apps/KvStore.h"
#include "promises/runtime/RemoteHandler.h"
#include "promises/storage/Storage.h"
#include "promises/support/StrUtil.h"

#include <algorithm>
#include <memory>
#include <set>

using namespace promises;
using namespace promises::chaos;
using sim::Time;

//===----------------------------------------------------------------------===//
// Profiles
//===----------------------------------------------------------------------===//

const ChaosProfile &ChaosProfile::crashes() {
  static const ChaosProfile P = [] {
    ChaosProfile X;
    X.Name = "crashes";
    X.CrashWeight = 0.7;
    X.ShutdownWeight = 0.3;
    X.MinOutage = sim::msec(15);
    X.MaxOutage = sim::msec(80);
    return X;
  }();
  return P;
}

const ChaosProfile &ChaosProfile::partitions() {
  static const ChaosProfile P = [] {
    ChaosProfile X;
    X.Name = "partitions";
    X.PartitionWeight = 1.0;
    X.MinOutage = sim::msec(10);
    X.MaxOutage = sim::msec(60);
    return X;
  }();
  return P;
}

const ChaosProfile &ChaosProfile::loss() {
  static const ChaosProfile P = [] {
    ChaosProfile X;
    X.Name = "loss";
    X.LossBurstWeight = 1.0;
    X.MinGap = sim::msec(6);
    X.MaxGap = sim::msec(30);
    X.MinOutage = sim::msec(10);
    X.MaxOutage = sim::msec(50);
    X.BaseLoss = 0.05;
    X.BaseJitter = sim::msec(1);
    return X;
  }();
  return P;
}

const ChaosProfile &ChaosProfile::mixed() {
  static const ChaosProfile P = [] {
    ChaosProfile X;
    X.Name = "mixed";
    X.CrashWeight = 0.3;
    X.PartitionWeight = 0.3;
    X.LossBurstWeight = 0.25;
    X.ShutdownWeight = 0.15;
    return X;
  }();
  return P;
}

const ChaosProfile *ChaosProfile::byName(std::string_view Name) {
  for (const ChaosProfile *P :
       {&crashes(), &partitions(), &loss(), &mixed()})
    if (P->Name == Name)
      return P;
  return nullptr;
}

std::vector<std::string> ChaosProfile::names() {
  return {crashes().Name, partitions().Name, loss().Name, mixed().Name};
}

//===----------------------------------------------------------------------===//
// Plan generation
//===----------------------------------------------------------------------===//

std::string chaos::formatAction(const ChaosAction &A) {
  double Ms = static_cast<double>(A.At) / 1e6;
  switch (A.K) {
  case ChaosAction::Kind::CrashNode:
    return strprintf("%8.2fms crash srv%u", Ms, A.Server);
  case ChaosAction::Kind::RestartNode:
    return strprintf("%8.2fms restart srv%u", Ms, A.Server);
  case ChaosAction::Kind::TransportShutdown:
    return strprintf("%8.2fms shutdown srv%u transport", Ms, A.Server);
  case ChaosAction::Kind::ServerReincarnate:
    return strprintf("%8.2fms reincarnate srv%u", Ms, A.Server);
  case ChaosAction::Kind::PartitionLink:
    return strprintf("%8.2fms partition cli%u <-> srv%u", Ms, A.Client,
                     A.Server);
  case ChaosAction::Kind::HealLink:
    return strprintf("%8.2fms heal cli%u <-> srv%u", Ms, A.Client, A.Server);
  case ChaosAction::Kind::LossBurstStart:
    return strprintf("%8.2fms loss burst cli%u <-> srv%u rate %.2f", Ms,
                     A.Client, A.Server, A.Rate);
  case ChaosAction::Kind::LossBurstEnd:
    return strprintf("%8.2fms loss burst end cli%u <-> srv%u", Ms, A.Client,
                     A.Server);
  case ChaosAction::Kind::CorruptBurstStart:
    return strprintf("%8.2fms corrupt burst rate %.2f", Ms, A.Rate);
  case ChaosAction::Kind::CorruptBurstEnd:
    return strprintf("%8.2fms corrupt burst end", Ms);
  }
  return "?";
}

namespace {

uint64_t mixSeed(uint64_t Seed, uint64_t Salt) {
  uint64_t X = Seed + 0x9e3779b97f4a7c15ull * (Salt + 1);
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

// Wire-integrity workload rates (ChaosOptions::Corrupt/Dup/Reorder). The
// ambient corruption rate runs for the whole injection window; planned
// corruption bursts spike it network-wide for one outage.
constexpr double ChaosAmbientCorrupt = 0.01;
constexpr double ChaosBurstCorrupt = 0.08;
constexpr double ChaosCorruptWeight = 0.3;
constexpr double ChaosDupRate = 0.08;
constexpr double ChaosReorderRate = 0.25;
constexpr sim::Time ChaosReorderMax = sim::msec(2);

} // namespace

ChaosPlan ChaosPlan::generate(const ChaosOptions &O) {
  const ChaosProfile &P = O.Profile;
  ChaosPlan Plan;
  Plan.Seed = O.Seed;
  Plan.Profile = P.Name;
  Rng R(mixSeed(O.Seed, std::hash<std::string>{}(P.Name)));

  using K = ChaosAction::Kind;
  // Corruption bursts join the mix only for the wire-integrity workload,
  // so plans for runs without --corrupt are unchanged.
  double CorruptWeight = O.Corrupt ? ChaosCorruptWeight : 0;
  double Total = P.CrashWeight + P.PartitionWeight + P.LossBurstWeight +
                 P.ShutdownWeight + CorruptWeight;
  Time T = static_cast<Time>(R.between(P.MinGap, P.MaxGap));
  while (Total > 0 && T < O.Horizon) {
    Time Outage = static_cast<Time>(R.between(P.MinOutage, P.MaxOutage));
    auto Srv = static_cast<uint32_t>(R.below(O.Servers));
    auto Cli = static_cast<uint32_t>(R.below(O.Clients));
    double Pick = R.unit() * Total;
    if ((Pick -= P.CrashWeight) < 0) {
      Plan.Actions.push_back({T, K::CrashNode, Srv, 0, 0});
      Plan.Actions.push_back({T + Outage, K::RestartNode, Srv, 0, 0});
    } else if ((Pick -= P.PartitionWeight) < 0) {
      Plan.Actions.push_back({T, K::PartitionLink, Srv, Cli, 0});
      Plan.Actions.push_back({T + Outage, K::HealLink, Srv, Cli, 0});
    } else if ((Pick -= P.LossBurstWeight) < 0) {
      Plan.Actions.push_back({T, K::LossBurstStart, Srv, Cli, P.BurstLoss});
      Plan.Actions.push_back({T + Outage, K::LossBurstEnd, Srv, Cli,
                              P.BaseLoss});
    } else if (CorruptWeight > 0 && (Pick -= P.ShutdownWeight) >= 0) {
      Plan.Actions.push_back({T, K::CorruptBurstStart, 0, 0,
                              ChaosBurstCorrupt});
      Plan.Actions.push_back({T + Outage, K::CorruptBurstEnd, 0, 0,
                              ChaosAmbientCorrupt});
    } else {
      Plan.Actions.push_back({T, K::TransportShutdown, Srv, 0, 0});
      Plan.Actions.push_back({T + Outage, K::ServerReincarnate, Srv, 0, 0});
    }
    T += static_cast<Time>(R.between(P.MinGap, P.MaxGap));
  }

  // Cleanup phase: after the injection window (plus the longest possible
  // outstanding outage) everything heals, so the workload always drains.
  Time End = O.Horizon + P.MaxOutage + sim::msec(1);
  for (uint32_t S = 0; S != O.Servers; ++S) {
    Plan.Actions.push_back({End, K::RestartNode, S, 0, 0});
    Plan.Actions.push_back({End, K::ServerReincarnate, S, 0, 0});
  }
  for (uint32_t S = 0; S != O.Servers; ++S)
    for (uint32_t C = 0; C != O.Clients; ++C) {
      Plan.Actions.push_back({End, K::HealLink, S, C, 0});
      Plan.Actions.push_back({End, K::LossBurstEnd, S, C, P.BaseLoss});
    }
  if (O.Corrupt)
    Plan.Actions.push_back({End, K::CorruptBurstEnd, 0, 0,
                            ChaosAmbientCorrupt});

  std::stable_sort(Plan.Actions.begin(), Plan.Actions.end(),
                   [](const ChaosAction &A, const ChaosAction &B) {
                     return A.At < B.At;
                   });
  return Plan;
}

//===----------------------------------------------------------------------===//
// Workload
//===----------------------------------------------------------------------===//

namespace {

/// The one declared exception of the chaos service; raised for a
/// deterministic subset of ops so exception replies flow under faults.
struct ChaosBusy {
  static constexpr const char *Name = "chaos_busy";
  uint64_t Op = 0;
};

} // namespace

namespace promises::wire {
template <> struct Codec<ChaosBusy> {
  static void encode(Encoder &E, const ChaosBusy &V) { E.writeU64(V.Op); }
  static ChaosBusy decode(Decoder &D) { return {D.readU64()}; }
};
} // namespace promises::wire

namespace {

constexpr bool opRaises(uint64_t Op) { return Op % 13 == 5; }

/// Slow ops hold the server long enough that a stream superseded after a
/// break can still catch its predecessor executing — the orphan-
/// destruction path (paper, Section 4.2).
constexpr bool opIsSlow(uint64_t Op) { return Op % 23 == 11; }

// Resilience-workload predicates (only consulted when
// ChaosOptions::Deadlines). Deterministic functions of the op number, so
// replays and the relaxed exactly-once invariant agree on which ops may
// legitimately re-execute.
constexpr bool opIdempotent(uint64_t Op) { return Op % 3 == 0; }
constexpr bool opHasDeadline(uint64_t Op) { return Op % 7 == 3; }
constexpr bool opCancels(uint64_t Op) { return Op % 11 == 4; }

/// Retry-policy attempt cap for idempotent ops; the relaxed exactly-once
/// invariant allows up to this many executions per idempotent op.
constexpr int ChaosMaxAttempts = 3;

using RecordSig = uint64_t(uint32_t, uint64_t);
using RecordRef = runtime::HandlerRef<RecordSig, ChaosBusy>;
using RecordHandler = runtime::RemoteHandler<RecordSig, ChaosBusy>;
using RecordPromise = core::Promise<uint64_t, ChaosBusy>;
using RecordOutcome = core::Outcome<uint64_t, ChaosBusy>;

/// One handler execution, as observed server-side.
struct ExecEntry {
  uint32_t Gen = 0; ///< Guardian incarnation (globally unique).
  uint32_t Client = 0;
  uint64_t Op = 0;
};

/// One server identity: a node that hosts a succession of guardian
/// incarnations. Old incarnations are kept (never destroyed mid-run) so
/// their transports can be audited at quiescence.
struct ServerSlot {
  net::NodeId Node = 0;
  runtime::Guardian *Current = nullptr;
  RecordRef Record;
  bool TransportDead = false; ///< Shutdown injected since last incarnation.
  /// Durable mode only: the slot's stable store (outlives every guardian
  /// incarnation, like a disk outlives the processes using it) and the
  /// current incarnation's recovered kv ports.
  std::unique_ptr<storage::StableStore> Wal;
  apps::KvStore Kv;
};

/// A durable put the client saw acknowledged; must survive any later
/// crash schedule.
struct DurableAck {
  size_t Slot = 0;
  std::string Key, Val;
};

/// Deterministic subset of ops that run as durable puts under
/// --storage-faults (disjoint from opIdempotent's Op%3==0).
constexpr bool opDurablePut(uint64_t Op) { return Op % 3 == 1; }

struct World {
  explicit World(const ChaosOptions &Opt);

  void applyAction(const ChaosAction &A);
  void installServer(size_t Slot);
  void runDriver(uint32_t Client);
  ChaosReport finish();

  ChaosOptions O;
  ChaosPlan Plan;
  sim::Simulation S;
  std::unique_ptr<net::SimNetwork> Net;
  std::vector<ServerSlot> Slots;
  std::vector<net::NodeId> ClientNodes;
  std::vector<std::unique_ptr<runtime::Guardian>> ServerGuardians;
  std::vector<std::unique_ptr<runtime::Guardian>> ClientGuardians;
  std::vector<std::vector<stream::AgentId>> Agents; ///< [client][slot].
  std::vector<ExecEntry> Log;
  std::vector<DurableAck> Acked;
  uint32_t NextGen = 0;
  ChaosReport Report;
};

stream::StreamConfig chaosStreamConfig(uint64_t Seed, uint64_t Salt) {
  stream::StreamConfig C;
  // Tightened loss recovery so breaks land within a fault outage instead
  // of dominating the run; a small window keeps flow control in play.
  C.MaxBatchCalls = 8;
  C.RetransmitTimeout = sim::msec(6);
  C.RetransmitTimeoutMax = sim::msec(30);
  C.MaxRetries = 3;
  C.MaxInFlightCalls = 8;
  C.RetransSeed = mixSeed(Seed, Salt);
  return C;
}

World::World(const ChaosOptions &Opt)
    : O(Opt), Plan(ChaosPlan::generate(Opt)),
      S(sim::SimConfig{.Backend = Opt.Backend}) {
  // The trace-event stream is the determinism oracle; always record it.
  S.metrics().setEnabled(true);

  net::NetConfig NC;
  NC.LossRate = O.Profile.BaseLoss;
  NC.DupRate = O.Profile.BaseDup;
  NC.JitterMax = O.Profile.BaseJitter;
  NC.Propagation = sim::msec(1);
  NC.Seed = mixSeed(O.Seed, 0);
  // Byte-level damage knobs (the wire-integrity workload).
  if (O.Corrupt)
    NC.CorruptRate = ChaosAmbientCorrupt;
  if (O.Dup)
    NC.DupRate = std::max(NC.DupRate, ChaosDupRate);
  if (O.Reorder) {
    NC.ReorderRate = ChaosReorderRate;
    NC.ReorderMax = ChaosReorderMax;
  }
  Net = std::make_unique<net::SimNetwork>(S, NC);

  Slots.resize(O.Servers);
  for (size_t I = 0; I != O.Servers; ++I)
    Slots[I].Node = Net->addNode(strprintf("srv%zu", I));
  for (size_t I = 0; I != O.Clients; ++I)
    ClientNodes.push_back(Net->addNode(strprintf("cli%zu", I)));

  if (O.Storage)
    for (size_t I = 0; I != O.Servers; ++I) {
      storage::StorageConfig SC;
      SC.Name = strprintf("srv%zu", I);
      SC.SyncTime = sim::usec(200);
      SC.Faults = {O.LostRate, O.TornRate, mixSeed(O.Seed, 7000 + I)};
      Slots[I].Wal = std::make_unique<storage::StableStore>(S, SC);
    }

  for (size_t I = 0; I != O.Servers; ++I)
    installServer(I);

  Agents.resize(O.Clients);
  for (uint32_t C = 0; C != O.Clients; ++C) {
    runtime::GuardianConfig GC;
    GC.Stream = chaosStreamConfig(O.Seed, 1000 + C);
    if (O.Deadlines) {
      // Endpoint circuit breaking: two consecutive timeout breaks trip
      // the breaker; a short cooldown keeps probes inside fault outages.
      GC.Stream.BreakerThreshold = 2;
      GC.Stream.BreakerCooldown = sim::msec(8);
    }
    ClientGuardians.push_back(std::make_unique<runtime::Guardian>(
        *Net, ClientNodes[C], strprintf("cli%u", C), GC));
    for (size_t Sl = 0; Sl != O.Servers; ++Sl)
      Agents[C].push_back(ClientGuardians[C]->newAgent());
    ClientGuardians[C]->spawnProcess("driver",
                                     [this, C] { runDriver(C); });
  }

  for (const ChaosAction &A : Plan.Actions)
    S.schedule(A.At, [this, A] { applyAction(A); });
}

void World::installServer(size_t Slot) {
  ServerSlot &SS = Slots[Slot];
  uint32_t Gen = ++NextGen;
  runtime::GuardianConfig GC;
  GC.Stream = chaosStreamConfig(O.Seed, 2000 + Gen);
  if (O.Deadlines)
    GC.MaxPendingCalls = 6; // Admission control: shed under backlog.
  auto G = std::make_unique<runtime::Guardian>(
      *Net, SS.Node, strprintf("srv%zu#%u", Slot, Gen), GC);
  SS.Record = G->addHandler<RecordSig, ChaosBusy>(
      "record", [this, Gen](uint32_t Client, uint64_t Op) -> RecordOutcome {
        Log.push_back({Gen, Client, Op});
        ++Report.Executions;
        // Slow ops outlive the sender's break threshold (~72ms of silence
        // under the chaos stream config), so the sender legitimately
        // gives up on them and reincarnates; the superseding batch then
        // catches the old incarnation mid-execution and orphan
        // destruction fires.
        S.sleep(opIsSlow(Op) ? sim::msec(100) : sim::usec(100));
        if (opRaises(Op))
          return ChaosBusy{Op};
        return Op;
      });
  if (O.Storage) {
    // Recover before serving: the incarnation replays its slot's log
    // (acked writes from any predecessor must reappear).
    apps::KvStoreConfig KC;
    KC.ServiceTime = sim::usec(100);
    KC.Wal = SS.Wal.get();
    KC.SnapshotEvery = 32;
    SS.Kv = apps::installKvStore(*G, KC);
  }
  SS.Current = G.get();
  SS.TransportDead = false;
  ServerGuardians.push_back(std::move(G));
}

void World::applyAction(const ChaosAction &A) {
  using K = ChaosAction::Kind;
  ServerSlot &SS = Slots[A.Server];
  switch (A.K) {
  case K::CrashNode:
    if (Net->isUp(SS.Node)) {
      Net->crash(SS.Node);
      if (SS.Wal)
        SS.Wal->crash(); // Media fault model: un-synced tail at risk.
      ++Report.Crashes;
    }
    break;
  case K::RestartNode:
    if (!Net->isUp(SS.Node)) {
      Net->restart(SS.Node);
      installServer(A.Server);
      ++Report.Restarts;
    }
    break;
  case K::TransportShutdown:
    if (Net->isUp(SS.Node) && !SS.TransportDead && !SS.Current->crashed()) {
      SS.Current->transport().shutdown();
      SS.TransportDead = true;
      ++Report.Shutdowns;
    }
    break;
  case K::ServerReincarnate:
    if (Net->isUp(SS.Node) && SS.TransportDead) {
      installServer(A.Server);
      ++Report.Reincarnations;
    }
    break;
  case K::PartitionLink:
    Net->setPartitioned(ClientNodes[A.Client], SS.Node, true);
    ++Report.Partitions;
    break;
  case K::HealLink:
    Net->setPartitioned(ClientNodes[A.Client], SS.Node, false);
    break;
  case K::LossBurstStart:
    Net->setLinkLoss(ClientNodes[A.Client], SS.Node, A.Rate);
    ++Report.LossBursts;
    break;
  case K::LossBurstEnd:
    Net->setLinkLoss(ClientNodes[A.Client], SS.Node, A.Rate);
    break;
  case K::CorruptBurstStart:
    Net->setCorruptRate(A.Rate);
    ++Report.CorruptBursts;
    break;
  case K::CorruptBurstEnd:
    Net->setCorruptRate(A.Rate);
    break;
  }
}

void World::runDriver(uint32_t Client) {
  Rng R(mixSeed(O.Seed, 3000 + Client));

  struct PendingOp {
    RecordPromise P;
    uint64_t Op;
  };
  std::vector<PendingOp> Pending;

  auto tally = [this](const RecordOutcome &Out, uint64_t Op) {
    if (Out.isNormal()) {
      ++Report.Normal;
      if (Out.value() != Op)
        Report.Violations.push_back(strprintf(
            "payload mismatch: op %llu returned %llu",
            static_cast<unsigned long long>(Op),
            static_cast<unsigned long long>(Out.value())));
    } else if (Out.is<ChaosBusy>()) {
      ++Report.ExceptionReplies;
      if (Out.get<ChaosBusy>().Op != Op)
        Report.Violations.push_back(strprintf(
            "exception payload mismatch on op %llu",
            static_cast<unsigned long long>(Op)));
    } else if (Out.is<core::Unavailable>()) {
      ++Report.Unavailable;
      const std::string &Why = Out.get<core::Unavailable>().Reason;
      if (Why == core::reasons::DeadlineExpired)
        ++Report.Expired;
      else if (Why == core::reasons::Cancelled)
        ++Report.Cancelled;
      else if (Why == core::reasons::Overloaded)
        ++Report.Shed;
      else if (Why == core::reasons::CircuitOpen)
        ++Report.FastFails;
    } else {
      ++Report.Failed;
    }
  };
  auto claimAll = [&] {
    for (PendingOp &PO : Pending)
      tally(PO.P.claim(), PO.Op);
    Pending.clear();
  };

  for (uint64_t Op = 1; Op <= O.OpsPerClient; ++Op) {
    size_t Slot = R.below(O.Servers);
    if (O.Storage && opDurablePut(Op)) {
      // Durable branch: a blocking put whose ack promises the write
      // survives any later crash schedule. Keys are unique per
      // (client, op) so the durability audit is exact.
      ++Report.OpsIssued;
      auto H = runtime::bindHandler(*ClientGuardians[Client],
                                    Agents[Client][Slot], Slots[Slot].Kv.Put);
      std::string Key =
          strprintf("c%u-o%llu", Client, (unsigned long long)Op);
      std::string Val = strprintf("v%llu", (unsigned long long)Op);
      auto Out = H.call(Key, Val);
      if (Out.isNormal()) {
        ++Report.Normal;
        ++Report.DurableAcked;
        Acked.push_back({Slot, std::move(Key), std::move(Val)});
      } else if (Out.is<core::Unavailable>()) {
        ++Report.Unavailable;
        const std::string &Why = Out.get<core::Unavailable>().Reason;
        if (Why == core::reasons::DeadlineExpired)
          ++Report.Expired;
        else if (Why == core::reasons::Cancelled)
          ++Report.Cancelled;
        else if (Why == core::reasons::Overloaded)
          ++Report.Shed;
        else if (Why == core::reasons::CircuitOpen)
          ++Report.FastFails;
      } else {
        ++Report.Failed;
      }
      S.sleep(sim::usec(R.between(50, 1500)));
      continue;
    }
    RecordHandler H(*ClientGuardians[Client], Agents[Client][Slot],
                    Slots[Slot].Record);
    if (O.Deadlines) {
      if (opIdempotent(Op)) {
        runtime::RetryPolicy RP;
        RP.MaxAttempts = ChaosMaxAttempts;
        RP.Backoff = sim::msec(2);
        RP.BackoffMax = sim::msec(16);
        RP.Budget = 8.0;
        RP.BudgetCredit = 0.5;
        H.withRetryPolicy(RP).declareIdempotent();
      }
      if (opHasDeadline(Op))
        H.withDeadline(sim::msec(4));
    }
    ++Report.OpsIssued;
    uint64_t Pick = R.below(10);
    if (Pick < 6) {
      if (O.Deadlines && opCancels(Op)) {
        // Cancellable call: let it get airborne, then tear it down. The
        // promise still resolves (usually with unavailable("cancelled"),
        // sometimes with the real outcome if the cancel lost the race).
        auto [P, CH] = H.streamCallCancellable(Client, Op);
        Pending.push_back({std::move(P), Op});
        S.sleep(sim::usec(300));
        if (CH.valid())
          H.cancel(CH);
      } else {
        Pending.push_back({H.streamCall(Client, Op), Op});
      }
      if (Pending.size() >= 8)
        claimAll();
    } else if (Pick < 8) {
      tally(H.call(Client, Op), Op);
    } else {
      ++Report.Sends;
      H.send(Client, Op);
    }
    if (R.below(8) == 0) {
      H.synch();
      ++Report.Synchs;
    }
    S.sleep(sim::usec(R.between(50, 1500)));
  }
  claimAll();
  // Drain every stream this client still has sends or replies outstanding
  // on; synch blocks until the remote executed (or the stream broke), so
  // after this loop every promise this driver created is resolved.
  for (size_t Slot = 0; Slot != O.Servers; ++Slot) {
    RecordHandler H(*ClientGuardians[Client], Agents[Client][Slot],
                    Slots[Slot].Record);
    H.synch();
    ++Report.Synchs;
  }
}

uint64_t fnv1a(uint64_t H, uint64_t V) {
  for (int I = 0; I != 8; ++I) {
    H ^= (V >> (I * 8)) & 0xff;
    H *= 0x100000001b3ull;
  }
  return H;
}

ChaosReport World::finish() {
  ChaosReport &Rep = Report;
  Rep.VirtualEnd = S.now();

  auto violate = [&](std::string Msg) {
    Rep.Violations.push_back(std::move(Msg));
  };

  // 1. Quiescence: the scheduler drained, so any live process is stuck
  // forever (a missed wakeup on a kill/break path).
  if (size_t N = S.liveProcessCount())
    violate(strprintf("%zu processes still live at quiescence", N));

  // 2. Network conservation: every datagram is delivered or dropped.
  net::NetCounters NC = Net->counters();
  if (NC.DatagramsSent + NC.DatagramsDuplicated !=
      NC.DatagramsDelivered + NC.DatagramsDropped)
    violate(strprintf("net conservation: %llu sent + %llu dup != %llu "
                      "delivered + %llu dropped",
                      (unsigned long long)NC.DatagramsSent,
                      (unsigned long long)NC.DatagramsDuplicated,
                      (unsigned long long)NC.DatagramsDelivered,
                      (unsigned long long)NC.DatagramsDropped));
  Rep.StaleEpochDrops = Net->staleEpochDrops();

  // 3. Per-transport conservation and hygiene, clients and every server
  // incarnation alike.
  auto audit = [&](const std::string &Who, runtime::Guardian &G) {
    stream::StreamCounters C = G.transport().counters();
    if (C.CallsIssued != C.CallsFulfilled + C.CallsBroken)
      violate(strprintf("%s: %llu issued != %llu fulfilled + %llu broken",
                        Who.c_str(), (unsigned long long)C.CallsIssued,
                        (unsigned long long)C.CallsFulfilled,
                        (unsigned long long)C.CallsBroken));
    if (size_t N = G.transport().armedTimerCount())
      violate(strprintf("%s: %zu timers still armed", Who.c_str(), N));
    if (size_t N = G.transport().brokenSenderStreamCount())
      violate(strprintf("%s: %zu broken sender streams not reclaimed",
                        Who.c_str(), N));
    if (size_t N = G.liveCallProcessCount())
      violate(strprintf("%s: %zu call processes leaked", Who.c_str(), N));
    if (size_t N = G.gatedCallCount())
      violate(strprintf("%s: %zu gated calls leaked", Who.c_str(), N));
    Rep.OrphansDestroyed += G.orphansDestroyed();
  };
  for (size_t C = 0; C != ClientGuardians.size(); ++C)
    audit(strprintf("cli%zu", C), *ClientGuardians[C]);
  for (auto &G : ServerGuardians)
    audit(G->name(), *G);

  // 3b. Resilience accounting. Server-side counters bound the
  // client-observed ones from above: a deadline drop, shed, or cancel is
  // only *seen* by the client if its reply survives (and a retried op
  // tallies client-side once, on its final outcome, while every attempt
  // counts server-side).
  uint64_t TransportFastFails = 0;
  for (auto &G : ClientGuardians) {
    Rep.Retries += G->retriesIssued();
    Rep.CancelsSent += G->transport().counters().CancelsSent;
    TransportFastFails += G->transport().counters().BreakerFastFails;
  }
  for (auto &G : ServerGuardians) {
    Rep.ServerExpired += G->deadlinesExpired();
    Rep.ServerShed += G->callsShed();
  }
  // Transport counters are labelled (node, port) and ports restart at 1
  // after a node crash, so a reincarnated transport can share its
  // predecessor's counters — summing them per guardian would double
  // count. The trace-event stream has exactly one CallCancelled per
  // server-side cancellation (and one FrameCorruptDropped per rejected
  // frame), so count those instead.
  for (const TraceEvent &E : S.metrics().events()) {
    if (E.Kind == EventKind::CallCancelled)
      ++Rep.ServerCancelled;
    else if (E.Kind == EventKind::FrameCorruptDropped) {
      if (E.Detail == "malformed message")
        ++Rep.MalformedDropped;
      else
        ++Rep.FramesCorruptDropped;
    }
  }
  auto boundedBy = [&](const char *What, uint64_t Observed,
                       uint64_t Bound) {
    if (Observed > Bound)
      violate(strprintf("%s: %llu client-observed > %llu bound", What,
                        (unsigned long long)Observed,
                        (unsigned long long)Bound));
  };
  boundedBy("deadline drops", Rep.Expired, Rep.ServerExpired);
  boundedBy("sheds", Rep.Shed, Rep.ServerShed);
  boundedBy("cancels", Rep.Cancelled, Rep.ServerCancelled);
  boundedBy("fast-fails", Rep.FastFails, TransportFastFails);
  // Each cancel completion traces back to exactly one cancel message
  // (duplicated or re-delivered cancels are deduplicated).
  boundedBy("cancel completions", Rep.ServerCancelled, Rep.CancelsSent);
  if (Rep.Expired + Rep.Cancelled + Rep.Shed + Rep.FastFails >
      Rep.Unavailable)
    violate(strprintf("unavailable split exceeds total: %llu+%llu+%llu+%llu "
                      "> %llu",
                      (unsigned long long)Rep.Expired,
                      (unsigned long long)Rep.Cancelled,
                      (unsigned long long)Rep.Shed,
                      (unsigned long long)Rep.FastFails,
                      (unsigned long long)Rep.Unavailable));
  if (!O.Deadlines &&
      (Rep.Retries | Rep.CancelsSent | Rep.ServerExpired | Rep.ServerShed |
       Rep.ServerCancelled))
    violate("resilience machinery fired without --deadlines");

  // 3c. Wire integrity. Under byte-level damage the checksum layer must
  // reject every damaged frame before decode: a "malformed message" drop
  // means a frame-valid datagram failed to decode — a local encode bug,
  // never line noise — and is always a violation. Each rejected frame
  // traces back to a distinct corrupted copy, and without --corrupt no
  // corruption machinery may fire at all.
  Rep.DatagramsCorrupted = NC.DatagramsCorrupted;
  if (Rep.MalformedDropped)
    violate(strprintf("%llu frame-valid datagrams failed to decode "
                      "(local encode bug)",
                      (unsigned long long)Rep.MalformedDropped));
  if (Rep.FramesCorruptDropped > Rep.DatagramsCorrupted)
    violate(strprintf("%llu corrupt-frame drops > %llu corrupted datagrams",
                      (unsigned long long)Rep.FramesCorruptDropped,
                      (unsigned long long)Rep.DatagramsCorrupted));
  if (!O.Corrupt &&
      (Rep.DatagramsCorrupted | Rep.FramesCorruptDropped | Rep.CorruptBursts))
    violate("corruption machinery fired without --corrupt");

  // 4. Client accounting: every claimed op has exactly one outcome.
  if (Rep.Normal + Rep.Unavailable + Rep.Failed + Rep.ExceptionReplies !=
      Rep.OpsIssued - Rep.Sends)
    violate(strprintf(
        "outcome conservation: %llu+%llu+%llu+%llu != %llu issued - %llu "
        "sends",
        (unsigned long long)Rep.Normal, (unsigned long long)Rep.Unavailable,
        (unsigned long long)Rep.Failed,
        (unsigned long long)Rep.ExceptionReplies,
        (unsigned long long)Rep.OpsIssued, (unsigned long long)Rep.Sends));

  // 5. Exactly-once: no (client, op) executed twice, across every server
  // incarnation. The network may duplicate datagrams and senders
  // retransmit, but user code must see each call at most once. Under
  // --deadlines, retry policies deliberately re-issue idempotent ops —
  // those may execute up to ChaosMaxAttempts times, but a non-idempotent
  // op must still execute at most once even when the mix includes
  // deadlines, sheds, and cancels.
  std::map<std::pair<uint32_t, uint64_t>, uint64_t> ExecCount;
  for (const ExecEntry &E : Log) {
    uint64_t N = ++ExecCount[{E.Client, E.Op}];
    uint64_t Allowed =
        (O.Deadlines && opIdempotent(E.Op)) ? ChaosMaxAttempts : 1;
    if (N == Allowed + 1)
      violate(strprintf("op %llu from cli%u executed more than %llu times",
                        (unsigned long long)E.Op, E.Client,
                        (unsigned long long)Allowed));
  }

  // 6. Ordered execution: within one guardian incarnation, one client's
  // ops execute in issue order (ops lost to breaks leave gaps, never
  // inversions). Across incarnations order is not comparable — a call
  // reported `unavailable` may legitimately still execute late on an old
  // incarnation whose transport was shut down mid-backlog. Retried
  // (idempotent) ops under --deadlines re-issue with fresh sequence
  // numbers out of issue order, so they are excluded there; everything
  // else — including cancelled and deadline-carrying ops — must stay
  // ordered.
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> LastOp;
  for (const ExecEntry &E : Log) {
    if (O.Deadlines && opIdempotent(E.Op))
      continue;
    uint64_t &Last = LastOp[{E.Gen, E.Client}];
    if (E.Op <= Last)
      violate(strprintf("order inversion: cli%u op %llu after op %llu in "
                        "gen %u",
                        E.Client, (unsigned long long)E.Op,
                        (unsigned long long)Last, E.Gen));
    Last = E.Op;
  }

  // 6b. Durability (--storage-faults): every client-acknowledged write
  // survived the full crash schedule — present in the final
  // incarnation's live map AND in an offline replay of the media alone.
  // The two views must in fact agree exactly: live state is replayed
  // state plus logged puts, nothing else. Torn tails can only come from
  // crashes.
  if (O.Storage) {
    for (size_t I = 0; I != Slots.size(); ++I) {
      ServerSlot &SS = Slots[I];
      Rep.StorageCrashes += SS.Wal->crashes();
      Rep.TornTails += SS.Wal->tornTails();
      Rep.Replayed += SS.Kv.Store->Replayed;
      std::map<std::string, std::string> Media =
          apps::replayKvData(SS.Wal->scan());
      if (Media != SS.Kv.Store->Data)
        violate(strprintf("srv%zu: media replay diverges from live state "
                          "(%zu media keys vs %zu live)",
                          I, Media.size(), SS.Kv.Store->Data.size()));
    }
    for (const DurableAck &A : Acked) {
      const auto &Live = Slots[A.Slot].Kv.Store->Data;
      auto It = Live.find(A.Key);
      if (It == Live.end() || It->second != A.Val)
        violate(strprintf("acked durable write %s lost from srv%zu",
                          A.Key.c_str(), A.Slot));
    }
    if (Rep.TornTails > Rep.StorageCrashes)
      violate(strprintf("%llu torn tails > %llu storage crashes",
                        (unsigned long long)Rep.TornTails,
                        (unsigned long long)Rep.StorageCrashes));
  }

  // 7. Determinism oracle: digest the full trace-event stream in order.
  const MetricsRegistry &Reg = S.metrics();
  uint64_t H = 0xcbf29ce484222325ull;
  for (const TraceEvent &E : Reg.events()) {
    H = fnv1a(H, E.TsNs);
    H = fnv1a(H, static_cast<uint64_t>(E.Kind));
    H = fnv1a(H, E.Node);
    H = fnv1a(H, E.Id);
    H = fnv1a(H, E.Seq);
    H = fnv1a(H, E.DurNs);
    for (char C : E.Detail)
      H = fnv1a(H, static_cast<unsigned char>(C));
  }
  Rep.TraceEvents = Reg.events().size() + Reg.droppedEvents();
  Rep.TraceHash = H;
  return Rep;
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

ChaosReport chaos::runChaos(const ChaosOptions &O) {
  World W(O);
  W.S.run();
  return W.finish();
}

std::string chaos::replayCommand(const ChaosOptions &O) {
  return strprintf("chaossim --seed %llu --profile %s --ops %zu --clients "
                   "%zu --servers %zu --horizon-ms %llu --backend %s%s%s%s%s",
                   static_cast<unsigned long long>(O.Seed),
                   O.Profile.Name.c_str(), O.OpsPerClient, O.Clients,
                   O.Servers,
                   static_cast<unsigned long long>(O.Horizon / 1000000),
                   sim::SimConfig::backendName(O.Backend),
                   O.Deadlines ? " --deadlines" : "",
                   O.Corrupt ? " --corrupt" : "", O.Dup ? " --dup" : "",
                   O.Reorder ? " --reorder" : "") +
         (O.Storage
              ? strprintf(" --storage-faults --torn-rate %g --lost-rate %g",
                          O.TornRate, O.LostRate)
              : std::string());
}

std::string ChaosReport::summary() const {
  return strprintf(
      "ops=%llu normal=%llu unavailable=%llu failed=%llu exn=%llu "
      "sends=%llu exec=%llu orphans=%llu crashes=%llu restarts=%llu "
      "shutdowns=%llu parts=%llu bursts=%llu stale=%llu vms=%.3f "
      "trace=%llu@%016llx",
      (unsigned long long)OpsIssued, (unsigned long long)Normal,
      (unsigned long long)Unavailable, (unsigned long long)Failed,
      (unsigned long long)ExceptionReplies, (unsigned long long)Sends,
      (unsigned long long)Executions, (unsigned long long)OrphansDestroyed,
      (unsigned long long)Crashes, (unsigned long long)Restarts,
      (unsigned long long)Shutdowns, (unsigned long long)Partitions,
      (unsigned long long)LossBursts, (unsigned long long)StaleEpochDrops,
      static_cast<double>(VirtualEnd) / 1e6,
      (unsigned long long)TraceEvents, (unsigned long long)TraceHash) +
         (Retries | CancelsSent | ServerExpired | ServerShed |
                  ServerCancelled | Expired | Cancelled | Shed | FastFails
              ? strprintf(" expired=%llu/%llu cancelled=%llu/%llu "
                          "shed=%llu/%llu fastfail=%llu retries=%llu "
                          "cancels=%llu",
                          (unsigned long long)Expired,
                          (unsigned long long)ServerExpired,
                          (unsigned long long)Cancelled,
                          (unsigned long long)ServerCancelled,
                          (unsigned long long)Shed,
                          (unsigned long long)ServerShed,
                          (unsigned long long)FastFails,
                          (unsigned long long)Retries,
                          (unsigned long long)CancelsSent)
              : std::string()) +
         (DatagramsCorrupted | FramesCorruptDropped | MalformedDropped |
                  CorruptBursts
              ? strprintf(" corrupted=%llu cdropped=%llu malformed=%llu "
                          "cbursts=%llu",
                          (unsigned long long)DatagramsCorrupted,
                          (unsigned long long)FramesCorruptDropped,
                          (unsigned long long)MalformedDropped,
                          (unsigned long long)CorruptBursts)
              : std::string()) +
         (DurableAcked | StorageCrashes | TornTails | Replayed
              ? strprintf(" dput=%llu replay=%llu scrash=%llu torn=%llu",
                          (unsigned long long)DurableAcked,
                          (unsigned long long)Replayed,
                          (unsigned long long)StorageCrashes,
                          (unsigned long long)TornTails)
              : std::string());
}
