//===- GradesDb.cpp - The grades database -----------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/apps/GradesDb.h"

using namespace promises;
using namespace promises::apps;
using namespace promises::core;

GradesDb apps::installGradesDb(runtime::Guardian &G, GradesDbConfig Cfg) {
  GradesDb Db;
  Db.Db = std::make_shared<GradesDb::State>();
  auto St = Db.Db;
  sim::Simulation &S = G.simulation();

  Db.RecordGrade =
      G.addHandler<double(std::string, int32_t), NoSuchStudent>(
          "record_grade",
          [St, Cfg, &S](std::string Stu,
                        int32_t Grade) -> Outcome<double, NoSuchStudent> {
            if (Cfg.ServiceTime != 0)
              S.sleep(Cfg.ServiceTime);
            ++St->RecordCalls;
            auto It = St->Grades.find(Stu);
            if (It == St->Grades.end()) {
              if (Cfg.RequireRegistration)
                return NoSuchStudent{Stu};
              It = St->Grades.emplace(Stu, std::vector<int32_t>{}).first;
            }
            It->second.push_back(Grade);
            double Sum = 0;
            for (int32_t V : It->second)
              Sum += V;
            return Sum / static_cast<double>(It->second.size());
          });

  Db.GetAverage = G.addHandler<double(std::string), NoSuchStudent>(
      "get_average",
      [St, Cfg, &S](std::string Stu) -> Outcome<double, NoSuchStudent> {
        if (Cfg.ServiceTime != 0)
          S.sleep(Cfg.ServiceTime);
        auto It = St->Grades.find(Stu);
        if (It == St->Grades.end() || It->second.empty())
          return NoSuchStudent{Stu};
        double Sum = 0;
        for (int32_t V : It->second)
          Sum += V;
        return Sum / static_cast<double>(It->second.size());
      });

  Db.RegisterStudent = G.addHandler<wire::Unit(std::string)>(
      "register_student", [St](std::string Stu) -> Outcome<wire::Unit> {
        St->Grades.emplace(Stu, std::vector<int32_t>{});
        return wire::Unit{};
      });

  // --- Staged batches: the all-or-nothing discipline of Section 4.2. ---

  Db.BeginBatch = G.addHandler<uint32_t(wire::Unit)>(
      "begin_batch", [St](wire::Unit) -> Outcome<uint32_t> {
        uint32_t Id = St->NextBatch++;
        St->Batches[Id];
        return Id;
      });

  Db.RecordInBatch = G.addHandler<double(uint32_t, std::string, int32_t),
                                  NoSuchStudent, NoSuchBatch>(
      "record_in_batch",
      [St, Cfg, &S](uint32_t Batch, std::string Stu, int32_t Grade)
          -> Outcome<double, NoSuchStudent, NoSuchBatch> {
        if (Cfg.ServiceTime != 0)
          S.sleep(Cfg.ServiceTime);
        auto BIt = St->Batches.find(Batch);
        if (BIt == St->Batches.end())
          return NoSuchBatch{Batch};
        if (Cfg.RequireRegistration && !St->Grades.count(Stu))
          return NoSuchStudent{Stu};
        BIt->second.emplace_back(Stu, Grade);
        // Preview: the average this student would have after commit,
        // counting earlier staged grades in this batch.
        double Sum = Grade;
        int Count = 1;
        if (auto GIt = St->Grades.find(Stu); GIt != St->Grades.end()) {
          for (int32_t V : GIt->second) {
            Sum += V;
            ++Count;
          }
        }
        for (size_t I = 0; I + 1 < BIt->second.size(); ++I) {
          if (BIt->second[I].first == Stu) {
            Sum += BIt->second[I].second;
            ++Count;
          }
        }
        return Sum / Count;
      });

  Db.CommitBatch = G.addHandler<wire::Unit(uint32_t), NoSuchBatch>(
      "commit_batch",
      [St](uint32_t Batch) -> Outcome<wire::Unit, NoSuchBatch> {
        auto BIt = St->Batches.find(Batch);
        if (BIt == St->Batches.end())
          return NoSuchBatch{Batch};
        for (auto &[Stu, Grade] : BIt->second) {
          St->Grades[Stu].push_back(Grade);
          ++St->RecordCalls;
        }
        St->Batches.erase(BIt);
        ++St->Commits;
        return wire::Unit{};
      });

  Db.AbortBatch = G.addHandler<wire::Unit(uint32_t), NoSuchBatch>(
      "abort_batch",
      [St](uint32_t Batch) -> Outcome<wire::Unit, NoSuchBatch> {
        auto BIt = St->Batches.find(Batch);
        if (BIt == St->Batches.end())
          return NoSuchBatch{Batch};
        St->Batches.erase(BIt);
        ++St->Aborts;
        return wire::Unit{};
      });

  return Db;
}
