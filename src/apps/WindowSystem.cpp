//===- WindowSystem.cpp - The window system ----------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/apps/WindowSystem.h"

using namespace promises;
using namespace promises::apps;
using namespace promises::core;

WindowSystem apps::installWindowSystem(runtime::Guardian &G,
                                       WindowSystemConfig Cfg) {
  WindowSystem W;
  W.Screen = std::make_shared<WindowSystem::State>();
  auto St = W.Screen;
  sim::Simulation &S = G.simulation();

  W.CreateWindow = G.addHandler<WindowPorts(wire::Unit)>(
      "create_window",
      [&G, St, Cfg, &S](wire::Unit) -> Outcome<WindowPorts> {
        // Ports are created dynamically; all ports of one window share a
        // fresh group so its operations form one stream per client agent.
        stream::GroupId Group = G.createGroup();
        St->Windows.emplace(Group, WindowSystem::WindowState{});
        auto Work = [St, Cfg, &S] {
          if (Cfg.ServiceTime != 0)
            S.sleep(Cfg.ServiceTime);
        };
        WindowPorts P;
        P.Putc = G.addHandler<wire::Unit(uint8_t)>(
            "putc", Group, [St, Group, Work](uint8_t C) -> Outcome<wire::Unit> {
              Work();
              St->Windows[Group].Text.push_back(static_cast<char>(C));
              return wire::Unit{};
            });
        P.Puts = G.addHandler<wire::Unit(std::string)>(
            "puts", Group,
            [St, Group, Work](std::string Text) -> Outcome<wire::Unit> {
              Work();
              St->Windows[Group].Text += Text;
              return wire::Unit{};
            });
        P.ChangeColor = G.addHandler<wire::Unit(std::string)>(
            "change_color", Group,
            [St, Group, Work](std::string Color) -> Outcome<wire::Unit> {
              Work();
              St->Windows[Group].Color = std::move(Color);
              return wire::Unit{};
            });
        P.Contents = G.addHandler<std::string(wire::Unit)>(
            "contents", Group,
            [St, Group](wire::Unit) -> Outcome<std::string> {
              return St->Windows[Group].Text;
            });
        return P;
      });

  W.DestroyWindow = G.addHandler<wire::Unit(WindowPorts)>(
      "destroy_window", [&G, St](WindowPorts P) -> Outcome<wire::Unit> {
        if (!St->Windows.count(P.Putc.Group))
          return Failure{"no such window"};
        G.removeHandler(P.Putc);
        G.removeHandler(P.Puts);
        G.removeHandler(P.ChangeColor);
        G.removeHandler(P.Contents);
        St->Windows.erase(P.Putc.Group);
        return wire::Unit{};
      });
  return W;
}
