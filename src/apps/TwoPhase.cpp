//===- TwoPhase.cpp - Distributed commit kit ---------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/apps/TwoPhase.h"

using namespace promises;
using namespace promises::apps;
using namespace promises::core;
using namespace promises::runtime;

TxnKv apps::installTxnKv(Guardian &G, TxnKvConfig Cfg) {
  TxnKv K;
  K.Store = std::make_shared<TxnKv::State>();
  auto St = K.Store;
  sim::Simulation &S = G.simulation();
  auto Work = [St, Cfg, &S] {
    if (Cfg.ServiceTime != 0)
      S.sleep(Cfg.ServiceTime);
  };

  K.Begin = G.addHandler<uint32_t(wire::Unit)>(
      "t_begin", [St, Work](wire::Unit) -> Outcome<uint32_t> {
        Work();
        uint32_t Id = St->NextTxn++;
        St->Txns[Id];
        return Id;
      });

  K.Put = G.addHandler<wire::Unit(uint32_t, std::string, std::string),
                       NoSuchTxn, TxnConflict>(
      "t_put",
      [St, Work](uint32_t Txn, std::string Key, std::string Val)
          -> Outcome<wire::Unit, NoSuchTxn, TxnConflict> {
        Work();
        auto TIt = St->Txns.find(Txn);
        if (TIt == St->Txns.end())
          return NoSuchTxn{Txn};
        auto LIt = St->Locks.find(Key);
        if (LIt != St->Locks.end() && LIt->second != Txn)
          return TxnConflict{Key};
        St->Locks[Key] = Txn;
        TIt->second.Staged[std::move(Key)] = std::move(Val);
        return wire::Unit{};
      });

  K.Get = G.addHandler<std::string(uint32_t, std::string), NoSuchTxn>(
      "t_get",
      [St, Work](uint32_t Txn,
                 std::string Key) -> Outcome<std::string, NoSuchTxn> {
        Work();
        auto TIt = St->Txns.find(Txn);
        if (TIt == St->Txns.end())
          return NoSuchTxn{Txn};
        // Read-your-writes through the staged state.
        auto SIt = TIt->second.Staged.find(Key);
        if (SIt != TIt->second.Staged.end())
          return SIt->second;
        auto DIt = St->Data.find(Key);
        return DIt != St->Data.end() ? DIt->second : std::string();
      });

  K.Prepare = G.addHandler<bool(uint32_t), NoSuchTxn>(
      "t_prepare", [St, Work](uint32_t Txn) -> Outcome<bool, NoSuchTxn> {
        Work();
        auto TIt = St->Txns.find(Txn);
        if (TIt == St->Txns.end())
          return NoSuchTxn{Txn};
        // Volatile participant: a yes vote just pins the staged state.
        TIt->second.Prepared = true;
        return true;
      });

  auto Release = [St](uint32_t Txn) {
    for (auto It = St->Locks.begin(); It != St->Locks.end();) {
      if (It->second == Txn)
        It = St->Locks.erase(It);
      else
        ++It;
    }
  };

  K.Commit = G.addHandler<wire::Unit(uint32_t), NoSuchTxn>(
      "t_commit",
      [St, Work, Release](uint32_t Txn) -> Outcome<wire::Unit, NoSuchTxn> {
        Work();
        auto TIt = St->Txns.find(Txn);
        if (TIt == St->Txns.end())
          return NoSuchTxn{Txn};
        for (auto &[Key, Val] : TIt->second.Staged)
          St->Data[Key] = Val;
        Release(Txn);
        St->Txns.erase(TIt);
        ++St->Commits;
        return wire::Unit{};
      });

  K.Abort = G.addHandler<wire::Unit(uint32_t), NoSuchTxn>(
      "t_abort",
      [St, Work, Release](uint32_t Txn) -> Outcome<wire::Unit, NoSuchTxn> {
        Work();
        auto TIt = St->Txns.find(Txn);
        if (TIt == St->Txns.end())
          return NoSuchTxn{Txn};
        Release(Txn);
        St->Txns.erase(TIt);
        ++St->Aborts;
        return wire::Unit{};
      });

  // Completion-side ports run under priority admission: a shed prepare,
  // commit, or abort strands locks and staged state that calls already
  // admitted (begin/put) created — under overload the store would leak
  // transactions instead of degrading. The work these ports finish is
  // bounded by admitted begins, so exempting them cannot unbound the
  // guardian's load.
  G.setShedExempt(K.Prepare.Port);
  G.setShedExempt(K.Commit.Port);
  G.setShedExempt(K.Abort.Port);

  return K;
}

//===----------------------------------------------------------------------===//
// TwoPhaseCoordinator
//===----------------------------------------------------------------------===//

size_t TwoPhaseCoordinator::enlist(const TxnKv &Participant) {
  assert(!Finished && "coordinator already finished");
  Enlisted E;
  E.Kv = Participant;
  E.Agent = Local.newAgent();
  Participants.push_back(std::move(E));
  return Participants.size() - 1;
}

bool TwoPhaseCoordinator::ensureBegun(Enlisted &E) {
  if (E.Begun)
    return true;
  auto H = bindHandler(Local, E.Agent, E.Kv.Begin);
  auto O = H.call(wire::Unit{});
  if (!O.isNormal()) {
    Doomed = true;
    return false;
  }
  E.Txn = O.value();
  E.Begun = true;
  return true;
}

bool TwoPhaseCoordinator::put(size_t Idx, const std::string &Key,
                              const std::string &Val) {
  assert(Idx < Participants.size() && "unknown participant");
  assert(!Finished && "coordinator already finished");
  Enlisted &E = Participants[Idx];
  if (!ensureBegun(E))
    return false;
  auto H = bindHandler(Local, E.Agent, E.Kv.Put);
  auto O = H.call(E.Txn, Key, Val);
  if (!O.isNormal()) {
    Doomed = true;
    return false;
  }
  return true;
}

TwoPhaseResult TwoPhaseCoordinator::commit() {
  assert(!Finished && "coordinator already finished");
  if (Doomed) {
    abort();
    return TwoPhaseResult::Aborted;
  }
  // Phase 1: collect votes; any no / unreachable participant aborts.
  for (Enlisted &E : Participants) {
    if (!E.Begun)
      continue; // Never touched: trivially prepared.
    auto H = bindHandler(Local, E.Agent, E.Kv.Prepare);
    auto O = H.call(E.Txn);
    if (!O.isNormal() || !O.value()) {
      abort();
      return TwoPhaseResult::Aborted;
    }
  }
  // Phase 2: commit everywhere. A participant lost now is the blocking
  // window: survivors commit, the lost one is in doubt.
  Finished = true;
  bool AnyLost = false;
  for (Enlisted &E : Participants) {
    if (!E.Begun)
      continue;
    auto H = bindHandler(Local, E.Agent, E.Kv.Commit);
    auto O = H.call(E.Txn);
    if (!O.isNormal())
      AnyLost = true;
  }
  return AnyLost ? TwoPhaseResult::InDoubt : TwoPhaseResult::Committed;
}

void TwoPhaseCoordinator::abort() {
  Finished = true;
  for (Enlisted &E : Participants) {
    if (!E.Begun)
      continue;
    auto H = bindHandler(Local, E.Agent, E.Kv.Abort);
    H.call(E.Txn); // Best effort; unreachable participants time out
                   // their locks with their own state (volatile).
  }
}
