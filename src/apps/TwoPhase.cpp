//===- TwoPhase.cpp - Distributed commit kit ---------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/apps/TwoPhase.h"

#include "promises/support/Check.h"

using namespace promises;
using namespace promises::apps;
using namespace promises::core;
using namespace promises::runtime;

namespace {

// Participant log record kinds (docs/DURABILITY.md "TxnKv log").
constexpr uint8_t RecPrepared = 1;
constexpr uint8_t RecCommit = 2;
constexpr uint8_t RecAbort = 3;

// Coordinator kit record kinds.
constexpr uint8_t RecIncarnation = 1;
constexpr uint8_t RecDecidedCommit = 2;

void releaseLocks(TxnKv::State &St, uint32_t Txn) {
  for (auto It = St.Locks.begin(); It != St.Locks.end();) {
    if (It->second == Txn)
      It = St.Locks.erase(It);
    else
      ++It;
  }
}

void applyCommit(TxnKv::State &St, std::map<uint32_t, TxnKv::State::Txn>::iterator TIt) {
  for (auto &[Key, Val] : TIt->second.Staged)
    St.Data[Key] = Val;
  if (TIt->second.Gtid != 0)
    St.Applied.insert(TIt->second.Gtid);
  releaseLocks(St, TIt->first);
  St.Txns.erase(TIt);
  ++St.Commits;
}

void applyAbort(TxnKv::State &St, std::map<uint32_t, TxnKv::State::Txn>::iterator TIt) {
  releaseLocks(St, TIt->first);
  St.Txns.erase(TIt);
  ++St.Aborts;
}

void writeStringMap(wire::Encoder &E,
                    const std::map<std::string, std::string> &M) {
  E.writeU32(static_cast<uint32_t>(M.size()));
  for (const auto &[K, V] : M) {
    E.writeString(K);
    E.writeString(V);
  }
}

std::map<std::string, std::string> readStringMap(wire::Decoder &D) {
  std::map<std::string, std::string> M;
  uint32_t N = D.readU32();
  for (uint32_t I = 0; I < N && !D.failed(); ++I) {
    std::string K = D.readString();
    M[std::move(K)] = D.readString();
  }
  return M;
}

/// Full durable participant state; written at compaction. Memory is
/// always ahead of the log (apply-first), so the snapshot subsumes
/// every record it truncates.
wire::Bytes encodeTxnSnapshot(const TxnKv::State &St) {
  wire::Encoder E;
  writeStringMap(E, St.Data);
  E.writeU32(static_cast<uint32_t>(St.Applied.size()));
  for (uint64_t G : St.Applied)
    E.writeU64(G);
  // Only durably prepared transactions checkpoint: everything else is
  // volatile by the presumed-abort rule.
  uint32_t NPrepared = 0;
  for (const auto &[Id, T] : St.Txns)
    if (T.Prepared && T.Gtid != 0)
      ++NPrepared;
  E.writeU32(NPrepared);
  for (const auto &[Id, T] : St.Txns) {
    if (!T.Prepared || T.Gtid == 0)
      continue;
    E.writeU32(Id);
    E.writeU64(T.Gtid);
    writeStringMap(E, T.Staged);
  }
  E.writeU32(St.NextTxn);
  return E.take();
}

/// Revives a prepared transaction (from snapshot or a Prepared record).
void reviveTxn(TxnKv::State &St, uint32_t Id, uint64_t Gtid,
               std::map<std::string, std::string> Staged) {
  TxnKv::State::Txn &T = St.Txns[Id];
  T.Prepared = true;
  T.Gtid = Gtid;
  for (const auto &[Key, Val] : Staged)
    St.Locks[Key] = Id;
  T.Staged = std::move(Staged);
  if (Id >= St.NextTxn)
    St.NextTxn = Id + 1;
}

std::map<uint32_t, TxnKv::State::Txn>::iterator
findByGtid(TxnKv::State &St, uint64_t Gtid) {
  for (auto It = St.Txns.begin(); It != St.Txns.end(); ++It)
    if (It->second.Gtid == Gtid)
      return It;
  return St.Txns.end();
}

} // namespace

TxnKv::State apps::replayTxnState(const storage::StableStore::Recovery &R) {
  TxnKv::State St;
  if (!R.Snapshot.empty()) {
    wire::Decoder D(R.Snapshot);
    St.Data = readStringMap(D);
    uint32_t NApplied = D.readU32();
    for (uint32_t I = 0; I < NApplied && !D.failed(); ++I)
      St.Applied.insert(D.readU64());
    uint32_t NPrepared = D.readU32();
    for (uint32_t I = 0; I < NPrepared && !D.failed(); ++I) {
      uint32_t Id = D.readU32();
      uint64_t Gtid = D.readU64();
      reviveTxn(St, Id, Gtid, readStringMap(D));
    }
    uint32_t Next = D.readU32();
    PROMISES_CHECK(!D.failed(), "corrupt txn snapshot");
    if (Next > St.NextTxn)
      St.NextTxn = Next;
  }
  for (const wire::Bytes &Rec : R.Records) {
    wire::Decoder D(Rec);
    uint8_t Kind = D.readU8();
    switch (Kind) {
    case RecPrepared: {
      uint32_t Id = D.readU32();
      uint64_t Gtid = D.readU64();
      reviveTxn(St, Id, Gtid, readStringMap(D));
      break;
    }
    case RecCommit: {
      uint64_t Gtid = D.readU64();
      auto TIt = findByGtid(St, Gtid);
      PROMISES_CHECK(TIt != St.Txns.end(), "commit record without prepare");
      applyCommit(St, TIt);
      break;
    }
    case RecAbort: {
      uint64_t Gtid = D.readU64();
      auto TIt = findByGtid(St, Gtid);
      PROMISES_CHECK(TIt != St.Txns.end(), "abort record without prepare");
      applyAbort(St, TIt);
      break;
    }
    default:
      PROMISES_CHECK(false, "unknown txn log record kind");
    }
    PROMISES_CHECK(!D.failed(), "corrupt txn log record");
    ++St.Replayed;
  }
  St.RecoveredTorn = R.TornTail;
  return St;
}

TxnKv apps::installTxnKv(Guardian &G, TxnKvConfig Cfg) {
  TxnKv K;
  K.Store = std::make_shared<TxnKv::State>();
  auto St = K.Store;
  sim::Simulation &S = G.simulation();
  auto Work = [St, ServiceTime = Cfg.ServiceTime, &S] {
    if (ServiceTime != 0)
      S.sleep(ServiceTime);
  };

  K.Begin = G.addHandler<uint32_t(wire::Unit)>(
      "t_begin", [St, Work](wire::Unit) -> Outcome<uint32_t> {
        Work();
        uint32_t Id = St->NextTxn++;
        St->Txns[Id];
        return Id;
      });

  K.Put = G.addHandler<wire::Unit(uint32_t, std::string, std::string),
                       NoSuchTxn, TxnConflict>(
      "t_put",
      [St, Work](uint32_t Txn, std::string Key, std::string Val)
          -> Outcome<wire::Unit, NoSuchTxn, TxnConflict> {
        Work();
        auto TIt = St->Txns.find(Txn);
        if (TIt == St->Txns.end())
          return NoSuchTxn{Txn};
        auto LIt = St->Locks.find(Key);
        if (LIt != St->Locks.end() && LIt->second != Txn)
          return TxnConflict{Key};
        St->Locks[Key] = Txn;
        TIt->second.Staged[std::move(Key)] = std::move(Val);
        return wire::Unit{};
      });

  K.Get = G.addHandler<std::string(uint32_t, std::string), NoSuchTxn>(
      "t_get",
      [St, Work](uint32_t Txn,
                 std::string Key) -> Outcome<std::string, NoSuchTxn> {
        Work();
        auto TIt = St->Txns.find(Txn);
        if (TIt == St->Txns.end())
          return NoSuchTxn{Txn};
        // Read-your-writes through the staged state.
        auto SIt = TIt->second.Staged.find(Key);
        if (SIt != TIt->second.Staged.end())
          return SIt->second;
        auto DIt = St->Data.find(Key);
        return DIt != St->Data.end() ? DIt->second : std::string();
      });

  K.Prepare = G.addHandler<bool(uint32_t), NoSuchTxn>(
      "t_prepare", [St, Work](uint32_t Txn) -> Outcome<bool, NoSuchTxn> {
        Work();
        auto TIt = St->Txns.find(Txn);
        if (TIt == St->Txns.end())
          return NoSuchTxn{Txn};
        // Volatile participant: a yes vote just pins the staged state.
        TIt->second.Prepared = true;
        return true;
      });

  K.Commit = G.addHandler<wire::Unit(uint32_t), NoSuchTxn>(
      "t_commit",
      [St, Work](uint32_t Txn) -> Outcome<wire::Unit, NoSuchTxn> {
        Work();
        auto TIt = St->Txns.find(Txn);
        if (TIt == St->Txns.end())
          return NoSuchTxn{Txn};
        applyCommit(*St, TIt);
        return wire::Unit{};
      });

  K.Abort = G.addHandler<wire::Unit(uint32_t), NoSuchTxn>(
      "t_abort",
      [St, Work](uint32_t Txn) -> Outcome<wire::Unit, NoSuchTxn> {
        Work();
        auto TIt = St->Txns.find(Txn);
        if (TIt == St->Txns.end())
          return NoSuchTxn{Txn};
        applyAbort(*St, TIt);
        return wire::Unit{};
      });

  // Completion-side ports run under priority admission: a shed prepare,
  // commit, or abort strands locks and staged state that calls already
  // admitted (begin/put) created — under overload the store would leak
  // transactions instead of degrading. The work these ports finish is
  // bounded by admitted begins, so exempting them cannot unbound the
  // guardian's load.
  G.setShedExempt(K.Prepare.Port);
  G.setShedExempt(K.Commit.Port);
  G.setShedExempt(K.Abort.Port);

  if (Cfg.Wal == nullptr)
    return K;

  //===--------------------------------------------------------------------===//
  // Durable mode: replay before serving, then the gtid-keyed protocol
  // ports. Ports install after the volatile six so volatile numbering
  // never shifts.
  //===--------------------------------------------------------------------===//

  storage::StableStore *Wal = Cfg.Wal;
  {
    storage::StableStore::Recovery R = Wal->open();
    *St = replayTxnState(R);
  }

  // One force: compact into a snapshot when the log is long enough,
  // plain fsync otherwise.
  auto ForceLog = [St, Wal, Every = Cfg.SnapshotEvery] {
    if (Every != 0 && Wal->recordsInLog() >= Every)
      Wal->saveSnapshot([St] { return encodeTxnSnapshot(*St); });
    else
      Wal->sync();
  };

  // Redo-log a decision: memory first, then the record, then the force.
  auto DurableCommit = [St, Wal, ForceLog](uint32_t Txn, uint64_t Gtid) {
    auto TIt = St->Txns.find(Txn);
    PROMISES_CHECK(TIt != St->Txns.end(), "durable commit of unknown txn");
    applyCommit(*St, TIt);
    wire::Encoder E;
    E.writeU8(RecCommit);
    E.writeU64(Gtid);
    Wal->append(E.take());
    ForceLog();
  };
  auto DurableAbort = [St, Wal, ForceLog](uint32_t Txn, uint64_t Gtid) {
    auto TIt = St->Txns.find(Txn);
    PROMISES_CHECK(TIt != St->Txns.end(), "durable abort of unknown txn");
    applyAbort(*St, TIt);
    wire::Encoder E;
    E.writeU8(RecAbort);
    E.writeU64(Gtid);
    Wal->append(E.take());
    ForceLog();
  };

  // Non-blocking termination: a prepared transaction that waits too
  // long asks the coordinator itself. Committed -> redo; unknown and no
  // longer in flight -> presumed abort; in flight/unreachable -> retry.
  // The resolver dies with the incarnation (guardian crash kills its
  // processes), and replay re-arms it, so no prepared lock ever
  // outlives recovery unresolved.
  auto ArmResolver = [&G, &S, St, Query = Cfg.QueryStatus,
                      Retry = Cfg.ResolveRetry, DurableCommit,
                      DurableAbort](uint32_t Txn, uint64_t Gtid,
                                    sim::Time Delay) {
    if (!Query)
      return; // No oracle wired: classic blocking participant.
    G.spawnProcess("txn_resolve", [&G, &S, St, Query, Retry, DurableCommit,
                                   DurableAbort, Txn, Gtid, Delay] {
      S.sleep(Delay);
      for (;;) {
        auto TIt = St->Txns.find(Txn);
        if (TIt == St->Txns.end() || TIt->second.Gtid != Gtid)
          return; // The decision arrived while we slept.
        if (G.transport().isShutDown())
          return; // This incarnation is done for; its successor replays
                  // the prepared record and re-arms its own resolver.
        int Decision = Query(Gtid);
        TIt = St->Txns.find(Txn); // The probe blocked; recheck.
        if (TIt == St->Txns.end() || TIt->second.Gtid != Gtid)
          return;
        if (Decision == TwoPhaseCoordinatorKit::StatusCommitted) {
          ++St->ResolvedCommits;
          DurableCommit(Txn, Gtid);
          return;
        }
        if (Decision == TwoPhaseCoordinatorKit::StatusAborted) {
          ++St->ResolvedAborts;
          DurableAbort(Txn, Gtid);
          return;
        }
        S.sleep(Retry); // In flight or unreachable: ask again.
      }
    });
  };

  K.PrepareG = G.addHandler<bool(uint32_t, uint64_t), NoSuchTxn>(
      "t_prepare_g",
      [St, Work, Wal, ForceLog, ArmResolver, After = Cfg.ResolveAfter](
          uint32_t Txn, uint64_t Gtid) -> Outcome<bool, NoSuchTxn> {
        Work();
        auto TIt = St->Txns.find(Txn);
        if (TIt == St->Txns.end())
          return NoSuchTxn{Txn};
        TIt->second.Prepared = true;
        TIt->second.Gtid = Gtid;
        wire::Encoder E;
        E.writeU8(RecPrepared);
        E.writeU32(Txn);
        E.writeU64(Gtid);
        writeStringMap(E, TIt->second.Staged);
        Wal->append(E.take());
        ForceLog(); // The prepare force: crash after this replays us.
        ArmResolver(Txn, Gtid, After);
        return true;
      });

  K.CommitG = G.addHandler<wire::Unit(uint32_t, uint64_t), NoSuchTxn>(
      "t_commit_g",
      [St, Work, DurableCommit](uint32_t Txn, uint64_t Gtid)
          -> Outcome<wire::Unit, NoSuchTxn> {
        Work();
        auto TIt = St->Txns.find(Txn);
        if (TIt == St->Txns.end() || TIt->second.Gtid != Gtid) {
          if (St->Applied.count(Gtid))
            return wire::Unit{}; // Resolver beat us to it: idempotent.
          return NoSuchTxn{Txn};
        }
        DurableCommit(Txn, Gtid);
        return wire::Unit{};
      });

  K.AbortG = G.addHandler<wire::Unit(uint32_t, uint64_t), NoSuchTxn>(
      "t_abort_g",
      [St, Work, DurableAbort](uint32_t Txn, uint64_t Gtid)
          -> Outcome<wire::Unit, NoSuchTxn> {
        Work();
        auto TIt = St->Txns.find(Txn);
        if (TIt == St->Txns.end())
          return wire::Unit{}; // Already resolved (presumed abort): fine.
        if (TIt->second.Prepared && TIt->second.Gtid == Gtid) {
          DurableAbort(Txn, Gtid);
        } else if (!TIt->second.Prepared) {
          // Never durably prepared: nothing on disk, nothing to log.
          applyAbort(*St, TIt);
        } else {
          return NoSuchTxn{Txn}; // Another incarnation's gtid.
        }
        return wire::Unit{};
      });

  G.setShedExempt(K.PrepareG.Port);
  G.setShedExempt(K.CommitG.Port);
  G.setShedExempt(K.AbortG.Port);

  // Replay revived in-doubt transactions: resolve them promptly rather
  // than after the full ResolveAfter grace (their decision is already
  // overdue).
  for (auto &[Id, T] : St->Txns) {
    if (!T.Prepared || T.Gtid == 0)
      continue;
    ++St->InDoubtRecovered;
    ArmResolver(Id, T.Gtid, Cfg.ResolveRetry);
  }

  return K;
}

//===----------------------------------------------------------------------===//
// TwoPhaseCoordinatorKit
//===----------------------------------------------------------------------===//

uint64_t TwoPhaseCoordinatorKit::State::beginTxn() {
  uint64_t Gtid =
      (CoordId << 48) | ((Incarnation & 0xFFFFull) << 32) | NextSeq++;
  Active.insert(Gtid);
  return Gtid;
}

void TwoPhaseCoordinatorKit::State::logCommit(uint64_t Gtid) {
  wire::Encoder E;
  E.writeU8(RecDecidedCommit);
  E.writeU64(Gtid);
  Wal->append(E.take());
  Wal->sync(); // The decision force. Crash during it: presumed abort.
  Committed.insert(Gtid);
}

TwoPhaseCoordinatorKit apps::installTwoPhaseCoordinator(
    Guardian &G, storage::StableStore &Wal, uint64_t CoordId) {
  TwoPhaseCoordinatorKit Kit;
  Kit.St = std::make_shared<TwoPhaseCoordinatorKit::State>();
  auto St = Kit.St;
  St->Wal = &Wal;
  St->CoordId = CoordId;

  storage::StableStore::Recovery R = Wal.open();
  for (const wire::Bytes &Rec : R.Records) {
    wire::Decoder D(Rec);
    uint8_t Kind = D.readU8();
    uint64_t V = D.readU64();
    PROMISES_CHECK(!D.failed(), "corrupt coordinator log record");
    if (Kind == RecIncarnation) {
      if (V > St->Incarnation)
        St->Incarnation = V;
    } else {
      PROMISES_CHECK(Kind == RecDecidedCommit,
                     "unknown coordinator log record kind");
      St->Committed.insert(V);
    }
    ++St->Replayed;
  }
  St->RecoveredTorn = R.TornTail;

  // Force the new incarnation before minting any gtid from it: ids must
  // stay unique across restarts even if this incarnation crashes at
  // once.
  ++St->Incarnation;
  wire::Encoder E;
  E.writeU8(RecIncarnation);
  E.writeU64(St->Incarnation);
  Wal.append(E.take());
  Wal.sync();

  Kit.StatusPort = G.addHandler<uint8_t(uint64_t)>(
      "txn_status", [St](uint64_t Gtid) -> Outcome<uint8_t> {
        if (St->Committed.count(Gtid))
          return uint8_t(TwoPhaseCoordinatorKit::StatusCommitted);
        if (St->Active.count(Gtid))
          return uint8_t(TwoPhaseCoordinatorKit::StatusActive);
        return uint8_t(TwoPhaseCoordinatorKit::StatusAborted);
      });
  return Kit;
}

//===----------------------------------------------------------------------===//
// TwoPhaseCoordinator
//===----------------------------------------------------------------------===//

TwoPhaseCoordinator::TwoPhaseCoordinator(Guardian &Local,
                                         const TwoPhaseCoordinatorKit *Kit)
    : Local(Local) {
  if (Kit != nullptr && Kit->St != nullptr) {
    KitSt = Kit->St;
    Gtid = KitSt->beginTxn();
  }
}

TwoPhaseCoordinator::~TwoPhaseCoordinator() {
  // An abandoned transaction must not read as in-flight forever: drop
  // it from the active set so status probes presume abort.
  if (KitSt)
    KitSt->finishTxn(Gtid);
}

size_t TwoPhaseCoordinator::enlist(const TxnKv &Participant) {
  PROMISES_CHECK(!Finished, "coordinator already finished");
  PROMISES_CHECK(!KitSt || Participant.PrepareG.Port != 0,
                 "durable coordinator requires durable participants");
  Enlisted E;
  E.Kv = Participant;
  E.Agent = Local.newAgent();
  Participants.push_back(std::move(E));
  return Participants.size() - 1;
}

bool TwoPhaseCoordinator::ensureBegun(Enlisted &E) {
  if (E.Begun)
    return true;
  auto H = bindHandler(Local, E.Agent, E.Kv.Begin);
  auto O = H.call(wire::Unit{});
  if (!O.isNormal()) {
    Doomed = true;
    return false;
  }
  E.Txn = O.value();
  E.Begun = true;
  return true;
}

bool TwoPhaseCoordinator::put(size_t Idx, const std::string &Key,
                              const std::string &Val) {
  PROMISES_CHECK(Idx < Participants.size(), "unknown participant");
  PROMISES_CHECK(!Finished, "coordinator already finished");
  Enlisted &E = Participants[Idx];
  if (!ensureBegun(E))
    return false;
  auto H = bindHandler(Local, E.Agent, E.Kv.Put);
  auto O = H.call(E.Txn, Key, Val);
  if (!O.isNormal()) {
    Doomed = true;
    return false;
  }
  return true;
}

TwoPhaseResult TwoPhaseCoordinator::commit() {
  PROMISES_CHECK(!Finished, "coordinator already finished");
  if (Doomed) {
    abort();
    return TwoPhaseResult::Aborted;
  }
  // Phase 1: collect votes; any no / unreachable participant aborts.
  for (Enlisted &E : Participants) {
    if (!E.Begun)
      continue; // Never touched: trivially prepared.
    bool Yes;
    if (KitSt) {
      auto H = bindHandler(Local, E.Agent, E.Kv.PrepareG);
      auto O = H.call(E.Txn, Gtid);
      Yes = O.isNormal() && O.value();
    } else {
      auto H = bindHandler(Local, E.Agent, E.Kv.Prepare);
      auto O = H.call(E.Txn);
      Yes = O.isNormal() && O.value();
    }
    if (!Yes) {
      abort();
      return TwoPhaseResult::Aborted;
    }
  }
  // The decision force: after this line the transaction is committed no
  // matter what crashes — prepared participants redo from our status.
  if (KitSt)
    KitSt->logCommit(Gtid);
  // Phase 2: commit everywhere. Volatile participants lost now are the
  // blocking window (survivors committed, the lost one in doubt);
  // durable ones resolve themselves against the logged decision, so
  // InDoubt only describes what *this client* observed.
  Finished = true;
  bool AnyLost = false;
  for (Enlisted &E : Participants) {
    if (!E.Begun)
      continue;
    bool Ok;
    if (KitSt) {
      auto H = bindHandler(Local, E.Agent, E.Kv.CommitG);
      Ok = H.call(E.Txn, Gtid).isNormal();
    } else {
      auto H = bindHandler(Local, E.Agent, E.Kv.Commit);
      Ok = H.call(E.Txn).isNormal();
    }
    if (!Ok)
      AnyLost = true;
  }
  if (KitSt)
    KitSt->finishTxn(Gtid);
  return AnyLost ? TwoPhaseResult::InDoubt : TwoPhaseResult::Committed;
}

void TwoPhaseCoordinator::abort() {
  Finished = true;
  for (Enlisted &E : Participants) {
    if (!E.Begun)
      continue;
    // Best effort; a durably prepared participant we cannot reach
    // resolves itself (presumed abort), a volatile one times out with
    // its own state.
    if (KitSt) {
      auto H = bindHandler(Local, E.Agent, E.Kv.AbortG);
      H.call(E.Txn, Gtid);
    } else {
      auto H = bindHandler(Local, E.Agent, E.Kv.Abort);
      H.call(E.Txn);
    }
  }
  if (KitSt)
    KitSt->finishTxn(Gtid);
}
