//===- Mailer.cpp - The mailer guardian --------------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/apps/Mailer.h"

using namespace promises;
using namespace promises::apps;
using namespace promises::core;

Mailer apps::installMailer(runtime::Guardian &G, MailerConfig Cfg) {
  Mailer M;
  M.Mail = std::make_shared<Mailer::State>();
  auto St = M.Mail;
  sim::Simulation &S = G.simulation();

  auto Touch = [St, Cfg, &S] {
    if (Cfg.ServiceTime != 0)
      S.sleep(Cfg.ServiceTime);
    ++St->Operations;
  };

  M.SendMail =
      G.addHandler<wire::Unit(std::string, std::string), NoSuchUser>(
          "send_mail",
          [St, Touch](std::string User, std::string Body)
              -> Outcome<wire::Unit, NoSuchUser> {
            Touch();
            auto It = St->Boxes.find(User);
            if (It == St->Boxes.end())
              return NoSuchUser{User};
            It->second.push_back(std::move(Body));
            return wire::Unit{};
          });

  M.ReadMail =
      G.addHandler<std::vector<std::string>(std::string), NoSuchUser>(
          "read_mail",
          [St, Touch](std::string User)
              -> Outcome<std::vector<std::string>, NoSuchUser> {
            Touch();
            auto It = St->Boxes.find(User);
            if (It == St->Boxes.end())
              return NoSuchUser{User};
            std::vector<std::string> Out = std::move(It->second);
            It->second.clear();
            return Out;
          });

  M.AddUser = G.addHandler<wire::Unit(std::string)>(
      "add_user", [St](std::string User) -> Outcome<wire::Unit> {
        St->Boxes.emplace(std::move(User), std::vector<std::string>{});
        return wire::Unit{};
      });

  return M;
}
