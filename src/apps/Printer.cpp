//===- Printer.cpp - The printer guardian -----------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/apps/Printer.h"

using namespace promises;
using namespace promises::apps;
using namespace promises::core;

Printer apps::installPrinter(runtime::Guardian &G, PrinterConfig Cfg) {
  Printer P;
  P.Out = std::make_shared<Printer::State>();
  auto St = P.Out;
  sim::Simulation &S = G.simulation();

  P.Print = G.addHandler<wire::Unit(std::string), Jam>(
      "print", [St, Cfg, &S](std::string Line) -> Outcome<wire::Unit, Jam> {
        if (Cfg.ServiceTime != 0)
          S.sleep(Cfg.ServiceTime);
        if (Cfg.JamEvery != 0 &&
            (St->Lines.size() + St->Jams + 1) % Cfg.JamEvery == 0) {
          ++St->Jams;
          return Jam{};
        }
        St->Lines.push_back(std::move(Line));
        return wire::Unit{};
      });
  return P;
}
