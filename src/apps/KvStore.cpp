//===- KvStore.cpp - Key-value workload guardian ------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/apps/KvStore.h"

#include "promises/support/Check.h"

using namespace promises;
using namespace promises::apps;
using namespace promises::core;

namespace {

wire::Bytes encodeKvSnapshot(const std::map<std::string, std::string> &Data) {
  wire::Encoder E;
  E.writeU32(static_cast<uint32_t>(Data.size()));
  for (const auto &[K, V] : Data) {
    E.writeString(K);
    E.writeString(V);
  }
  return E.take();
}

} // namespace

std::map<std::string, std::string>
apps::replayKvData(const storage::StableStore::Recovery &R) {
  std::map<std::string, std::string> Data;
  if (!R.Snapshot.empty()) {
    wire::Decoder D(R.Snapshot);
    uint32_t N = D.readU32();
    for (uint32_t I = 0; I < N; ++I) {
      std::string K = D.readString();
      Data[std::move(K)] = D.readString();
    }
    PROMISES_CHECK(!D.failed(), "corrupt kv snapshot");
  }
  for (const wire::Bytes &Rec : R.Records) {
    wire::Decoder D(Rec);
    std::string K = D.readString();
    std::string V = D.readString();
    PROMISES_CHECK(!D.failed(), "corrupt kv redo record");
    Data[std::move(K)] = std::move(V);
  }
  return Data;
}

KvStore apps::installKvStore(runtime::Guardian &G, KvStoreConfig Cfg) {
  KvStore K;
  K.Store = std::make_shared<KvStore::State>();
  auto St = K.Store;
  sim::Simulation &S = G.simulation();

  if (Cfg.Wal != nullptr) {
    // Replay before serving: this incarnation starts from whatever the
    // media kept. A torn tail was a record never acknowledged, so
    // stopping at it is correct, not lossy.
    storage::StableStore::Recovery R = Cfg.Wal->open();
    St->Data = replayKvData(R);
    St->Replayed = R.Records.size();
    St->RecoveredTorn = R.TornTail;
  }

  auto Work = [St, Cfg, &S] {
    if (Cfg.ServiceTime != 0)
      S.sleep(Cfg.ServiceTime);
    ++St->Calls;
  };

  K.Put = G.addHandler<wire::Unit(std::string, std::string)>(
      "put",
      [St, Cfg, Work](std::string Key,
                      std::string Val) -> Outcome<wire::Unit> {
        Work();
        if (Cfg.Wal == nullptr) {
          St->Data[std::move(Key)] = std::move(Val);
          return wire::Unit{};
        }
        // Apply first, then log, then force, then ack: the in-memory
        // map is always ahead of the log, which is what makes
        // sleep-then-serialize snapshots safe (docs/DURABILITY.md).
        St->Data[Key] = Val;
        wire::Encoder E;
        E.writeString(Key);
        E.writeString(Val);
        Cfg.Wal->append(E.take());
        if (Cfg.SnapshotEvery != 0 &&
            Cfg.Wal->recordsInLog() >= Cfg.SnapshotEvery)
          Cfg.Wal->saveSnapshot([St] { return encodeKvSnapshot(St->Data); });
        else
          Cfg.Wal->sync();
        return wire::Unit{};
      });

  K.Get = G.addHandler<std::string(std::string), NotFound>(
      "get", [St, Work](std::string Key) -> Outcome<std::string, NotFound> {
        Work();
        auto It = St->Data.find(Key);
        if (It == St->Data.end())
          return NotFound{Key};
        return It->second;
      });

  K.Echo = G.addHandler<std::string(std::string)>(
      "echo", [Work](std::string V) -> Outcome<std::string> {
        Work();
        return V;
      });

  return K;
}
