//===- KvStore.cpp - Key-value workload guardian ------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/apps/KvStore.h"

using namespace promises;
using namespace promises::apps;
using namespace promises::core;

KvStore apps::installKvStore(runtime::Guardian &G, KvStoreConfig Cfg) {
  KvStore K;
  K.Store = std::make_shared<KvStore::State>();
  auto St = K.Store;
  sim::Simulation &S = G.simulation();

  auto Work = [St, Cfg, &S] {
    if (Cfg.ServiceTime != 0)
      S.sleep(Cfg.ServiceTime);
    ++St->Calls;
  };

  K.Put = G.addHandler<wire::Unit(std::string, std::string)>(
      "put",
      [St, Work](std::string Key, std::string Val) -> Outcome<wire::Unit> {
        Work();
        St->Data[std::move(Key)] = std::move(Val);
        return wire::Unit{};
      });

  K.Get = G.addHandler<std::string(std::string), NotFound>(
      "get", [St, Work](std::string Key) -> Outcome<std::string, NotFound> {
        Work();
        auto It = St->Data.find(Key);
        if (It == St->Data.end())
          return NotFound{Key};
        return It->second;
      });

  K.Echo = G.addHandler<std::string(std::string)>(
      "echo", [Work](std::string V) -> Outcome<std::string> {
        Work();
        return V;
      });

  return K;
}
