//===- Sync.cpp - Simulated synchronization -------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/sim/Sync.h"

#include <cassert>

using namespace promises::sim;

void SimMutex::lock() {
  Process *P = Simulation::current();
  assert(P && "SimMutex::lock() outside a simulated process");
  assert(Owner != P && "recursive SimMutex lock");
  while (Owner != nullptr)
    Q.wait();
  Owner = P;
}

bool SimMutex::tryLock() {
  Process *P = Simulation::current();
  assert(P && "SimMutex::tryLock() outside a simulated process");
  if (Owner != nullptr)
    return false;
  Owner = P;
  return true;
}

void SimMutex::unlock() {
  assert(Owner == Simulation::current() && "unlock by non-owner");
  Owner = nullptr;
  Q.notifyOne();
}

void SimCondVar::wait(SimMutex &M) {
  assert(M.heldByCurrent() && "SimCondVar::wait without the mutex");
  M.unlock();
  try {
    Q.wait();
  } catch (ProcessKilled &) {
    // Reacquire so the caller's scoped guard can unlock during unwind.
    // lock() does not re-deliver the kill while unwinding.
    M.lock();
    throw;
  }
  M.lock();
}

bool SimCondVar::waitFor(SimMutex &M, Time Timeout) {
  assert(M.heldByCurrent() && "SimCondVar::waitFor without the mutex");
  M.unlock();
  bool Notified = false;
  try {
    Notified = Q.waitFor(Timeout);
  } catch (ProcessKilled &) {
    M.lock();
    throw;
  }
  M.lock();
  return Notified;
}
