//===- Simulation.cpp - Discrete-event kernel -----------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/sim/Simulation.h"

#include <algorithm>
#include <cassert>
#include <exception>

using namespace promises::sim;

/// The process currently holding the execution turn on this thread.
/// nullptr on the scheduler thread.
static thread_local Process *CurrentProc = nullptr;

//===----------------------------------------------------------------------===//
// Process
//===----------------------------------------------------------------------===//

Process::Process(Simulation &S, uint64_t Id, std::string Name,
                 std::function<void()> Body)
    : Sim(S), Id(Id), Name(std::move(Name)), Body(std::move(Body)),
      JoinQ(std::make_unique<WaitQueue>(S)),
      SleepQ(std::make_unique<WaitQueue>(S)) {
  Thread = std::thread([this] { threadMain(); });
}

Process::~Process() {
  if (!Thread.joinable())
    return;
  if (!finished()) {
    // Fail-safe for destruction without a clean shutdown: grant the thread
    // one final turn with a kill pending so it unwinds and exits.
    KillPending = true;
    CriticalDepth = 0;
    {
      std::lock_guard<std::mutex> L(Mu);
      TurnIsProcess = true;
    }
    Cv.notify_all();
    {
      std::unique_lock<std::mutex> L(Mu);
      Cv.wait(L, [&] { return !TurnIsProcess; });
    }
  }
  Thread.join();
}

void Process::threadMain() {
  // Park until the scheduler grants the first turn.
  {
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait(L, [&] { return TurnIsProcess; });
  }
  CurrentProc = this;
  try {
    deliverKill();
    Body();
  } catch (ProcessKilled &) {
    // Forced termination unwound the body; nothing else to do.
  }
  Body = nullptr; // Release captured state deterministically.
  State = ProcState::Finished;
  JoinQ->notifyAll();
  CurrentProc = nullptr;
  {
    std::lock_guard<std::mutex> L(Mu);
    TurnIsProcess = false;
  }
  Cv.notify_all();
}

void Process::yieldToScheduler() {
  assert(CurrentProc == this && "yield from a thread that lacks the turn");
  {
    std::lock_guard<std::mutex> L(Mu);
    TurnIsProcess = false;
  }
  Cv.notify_all();
  {
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait(L, [&] { return TurnIsProcess; });
  }
  deliverKill();
}

void Process::deliverKill() {
  if (!KillPending || Unwinding)
    return;
  if (CriticalDepth > 0 && !Sim.ShuttingDown)
    return; // Deferred: inside a critical section (paper, Section 4.2).
  Unwinding = true;
  throw ProcessKilled{};
}

//===----------------------------------------------------------------------===//
// WaitQueue
//===----------------------------------------------------------------------===//

void WaitQueue::enqueueCurrent(Process *P) {
  assert(P->WaitingOn == nullptr && "process already waiting");
  Waiters.push_back(P);
  P->WaitingOn = this;
  P->State = ProcState::Blocked;
}

WaitQueue::~WaitQueue() {
  // A queue should outlive its waiters, but during teardown after a
  // failed run (e.g. a violation left processes blocked at quiescence)
  // owners can be destroyed first. Detach the waiters so a later kill
  // does not dereference a dangling WaitingOn.
  for (Process *P : Waiters)
    P->WaitingOn = nullptr;
}

void WaitQueue::removeWaiter(Process *P) {
  auto It = std::find(Waiters.begin(), Waiters.end(), P);
  assert(It != Waiters.end() && "process not waiting here");
  Waiters.erase(It);
}

void WaitQueue::wait() {
  Process *P = Simulation::current();
  assert(P && "WaitQueue::wait() outside a simulated process");
  P->deliverKill();
  enqueueCurrent(P);
  P->NotifiedFlag = false;
  P->yieldToScheduler();
}

bool WaitQueue::waitFor(Time Timeout) {
  Process *P = Simulation::current();
  assert(P && "WaitQueue::waitFor() outside a simulated process");
  P->deliverKill();
  enqueueCurrent(P);
  P->NotifiedFlag = false;
  // The epoch guards against this timeout firing after the process has
  // been woken by other means (notify or kill) and has moved on.
  uint64_t Epoch = P->WaitEpoch;
  uint64_t Ev = Sim.schedule(Timeout, [this, P, Epoch] {
    P->HasTimeoutEvent = false;
    if (P->WaitingOn == this && P->WaitEpoch == Epoch) {
      removeWaiter(P);
      P->WaitingOn = nullptr;
      Sim.makeReady(P);
    }
  });
  P->TimeoutEvent = Ev;
  P->HasTimeoutEvent = true;
  P->yieldToScheduler();
  return P->NotifiedFlag;
}

void WaitQueue::notifyOne() {
  if (Waiters.empty())
    return;
  Process *P = Waiters.front();
  Waiters.pop_front();
  P->WaitingOn = nullptr;
  P->NotifiedFlag = true;
  Sim.makeReady(P);
}

void WaitQueue::notifyAll() {
  while (!Waiters.empty())
    notifyOne();
}

//===----------------------------------------------------------------------===//
// CriticalSection
//===----------------------------------------------------------------------===//

CriticalSection::CriticalSection()
    : Proc(Simulation::current()),
      ExceptionsAtEntry(std::uncaught_exceptions()) {
  assert(Proc && "critical section outside a simulated process");
  ++Proc->CriticalDepth;
}

CriticalSection::~CriticalSection() noexcept(false) {
  assert(Proc->CriticalDepth > 0 && "unbalanced critical section");
  --Proc->CriticalDepth;
  // Leaving the outermost section is a kill delivery point — but never
  // while another exception is already unwinding through us.
  if (Proc->CriticalDepth == 0 &&
      std::uncaught_exceptions() == ExceptionsAtEntry)
    Proc->deliverKill();
}

//===----------------------------------------------------------------------===//
// Simulation
//===----------------------------------------------------------------------===//

Simulation::Simulation() {
  CtxSwitches = &Metrics.counter("sim.context_switches");
  Metrics.gaugeProbe("sim.event_queue_depth",
                     [this] { return static_cast<double>(Queue.size()); });
  Metrics.gaugeProbe("sim.live_processes", [this] {
    return static_cast<double>(liveProcessCount());
  });
  Metrics.gaugeProbe("sim.processes_spawned", [this] {
    return static_cast<double>(NextProcId);
  });
}

Simulation::~Simulation() { shutdown(); }

Process *Simulation::current() { return CurrentProc; }

ProcessHandle Simulation::spawn(std::string Name,
                                std::function<void()> Body) {
  auto P = std::shared_ptr<Process>(
      new Process(*this, NextProcId++, std::move(Name), std::move(Body)));
  AllProcs.push_back(P);
  // The start event: the process first runs when the loop reaches it.
  uint64_t Id = ++NextEventSeq;
  Queue.emplace(QueueKey{NowNs, Id}, Id);
  Events[Id] = EventPayload{P.get(), nullptr};
  return P;
}

uint64_t Simulation::schedule(Time Delay, std::function<void()> Fn) {
  uint64_t Id = ++NextEventSeq;
  Queue.emplace(QueueKey{NowNs + Delay, Id}, Id);
  Events[Id] = EventPayload{nullptr, std::move(Fn)};
  return Id;
}

void Simulation::cancel(uint64_t EventId) { Events.erase(EventId); }

void Simulation::makeReady(Process *P) {
  assert((P->State == ProcState::Blocked || P->State == ProcState::Created) &&
         "makeReady on a process that is not blocked");
  P->State = ProcState::Ready;
  ++P->WaitEpoch;
  if (P->HasTimeoutEvent) {
    // Cancel the pending waitFor timeout so it cannot linger in the queue
    // and artificially advance the clock after the process moved on.
    cancel(P->TimeoutEvent);
    P->HasTimeoutEvent = false;
  }
  uint64_t Id = ++NextEventSeq;
  Queue.emplace(QueueKey{NowNs, Id}, Id);
  Events[Id] = EventPayload{P, nullptr};
}

void Simulation::switchTo(Process *P) {
  assert(CurrentProc == nullptr && "nested switchTo");
  CtxSwitches->inc();
  P->State = ProcState::Running;
  {
    std::lock_guard<std::mutex> L(P->Mu);
    P->TurnIsProcess = true;
  }
  P->Cv.notify_all();
  {
    std::unique_lock<std::mutex> L(P->Mu);
    P->Cv.wait(L, [&] { return !P->TurnIsProcess; });
  }
}

bool Simulation::step(Time Horizon) {
  while (!Queue.empty()) {
    auto It = Queue.begin();
    if (It->first.At > Horizon)
      return false;
    uint64_t Id = It->second;
    auto PIt = Events.find(Id);
    if (PIt == Events.end()) {
      Queue.erase(It); // Cancelled.
      continue;
    }
    assert(It->first.At >= NowNs && "event queue went backwards");
    NowNs = It->first.At;
    EventPayload Payload = std::move(PIt->second);
    Events.erase(PIt);
    Queue.erase(It);
    if (Payload.Wake) {
      Process *P = Payload.Wake;
      // A wake can race with kill-driven wakes; only run if still due.
      if (P->State == ProcState::Ready || P->State == ProcState::Created)
        switchTo(P);
    } else {
      Payload.Fn();
    }
    return true;
  }
  return false;
}

void Simulation::run() {
  assert(!inProcess() && "run() must be called from scheduler context");
  StopRequested = false;
  while (!StopRequested && step(UINT64_MAX)) {
  }
}

bool Simulation::runFor(Time Duration) {
  assert(!inProcess() && "runFor() must be called from scheduler context");
  Time Horizon = NowNs + Duration;
  StopRequested = false;
  while (!StopRequested && step(Horizon)) {
  }
  if (!StopRequested && NowNs < Horizon)
    NowNs = Horizon;
  return !Queue.empty();
}

void Simulation::sleep(Time Duration) {
  Process *P = current();
  assert(P && "sleep() outside a simulated process");
  P->SleepQ->waitFor(Duration);
}

void Simulation::yieldNow() {
  Process *P = current();
  assert(P && "yieldNow() outside a simulated process");
  P->deliverKill();
  P->State = ProcState::Blocked;
  makeReady(P);
  P->yieldToScheduler();
}

void Simulation::join(const ProcessHandle &P) {
  Process *Cur = current();
  assert(Cur && "join() outside a simulated process");
  assert(P.get() != Cur && "a process cannot join itself");
  (void)Cur;
  while (!P->finished())
    P->JoinQ->wait();
}

void Simulation::woundImpl(Process *P) {
  if (P->State == ProcState::Finished)
    return;
  P->Wounded = true;
}

void Simulation::killImpl(Process *P) {
  if (P->State == ProcState::Finished)
    return;
  P->Wounded = true;
  P->KillPending = true;
  if (P->State == ProcState::Blocked &&
      (P->CriticalDepth == 0 || ShuttingDown)) {
    if (P->WaitingOn) {
      P->WaitingOn->removeWaiter(P);
      P->WaitingOn = nullptr;
    }
    makeReady(P);
  }
  // Created: the start event is already queued; the trampoline delivers.
  // Ready/Running: delivered at the next resume or blocking point.
}

size_t Simulation::liveProcessCount() const {
  size_t N = 0;
  for (const auto &P : AllProcs)
    if (!P->finished())
      ++N;
  return N;
}

void Simulation::shutdown() {
  ShuttingDown = true;
  // Killing one process can unblock others that then block elsewhere, so
  // iterate to a fixpoint (bounded for safety).
  for (int Round = 0; Round < 64; ++Round) {
    bool AnyLive = false;
    for (auto &P : AllProcs) {
      if (!P->finished()) {
        AnyLive = true;
        killImpl(P.get());
      }
    }
    if (!AnyLive)
      break;
    StopRequested = false;
    while (step(UINT64_MAX)) {
    }
  }
  AllProcs.clear(); // Joins all threads (see ~Process fail-safe).
}
