//===- Simulation.cpp - Discrete-event kernel -----------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/sim/Simulation.h"

#include "promises/sim/Clock.h"

#include "ExecBackend.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <exception>

using namespace promises::sim;

namespace promises::sim::detail {
/// The process currently holding the execution turn on this thread.
/// nullptr in scheduler context. With the fiber backend everything runs on
/// one OS thread and the backend flips this around each switch (writing
/// the slot directly — see ExecBackend.h); with the thread backend each
/// process thread sets its own copy via BackendAccess::setCurrent.
thread_local Process *CurrentProcTL = nullptr;
} // namespace promises::sim::detail

//===----------------------------------------------------------------------===//
// SimConfig
//===----------------------------------------------------------------------===//

bool SimConfig::parseBackend(std::string_view Name, BackendKind &Out) {
  if (Name == "fiber") {
    Out = BackendKind::Fiber;
    return true;
  }
  if (Name == "thread") {
    Out = BackendKind::Thread;
    return true;
  }
  return false;
}

const char *SimConfig::backendName(BackendKind K) {
  return K == BackendKind::Fiber ? "fiber" : "thread";
}

BackendKind SimConfig::defaultBackend() {
  static BackendKind K = [] {
    const char *E = std::getenv("PROMISES_BACKEND");
    if (!E || !*E)
      return BackendKind::Fiber;
    BackendKind Out;
    if (!parseBackend(E, Out)) {
      std::fprintf(stderr,
                   "promises: bad PROMISES_BACKEND '%s' (valid: fiber, "
                   "thread)\n",
                   E);
      std::abort();
    }
    return Out;
  }();
  return K;
}

bool SimConfig::defaultGuardPages() {
  static bool G = [] {
    const char *E = std::getenv("PROMISES_FIBER_GUARD");
    return E && *E && std::strcmp(E, "0") != 0;
  }();
  return G;
}

//===----------------------------------------------------------------------===//
// ClockDriver / MonotonicClock
//===----------------------------------------------------------------------===//

ClockDriver::~ClockDriver() = default;

Time MonotonicClock::read() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<Time>(Ts.tv_sec) * 1000000000ull +
         static_cast<Time>(Ts.tv_nsec);
}

//===----------------------------------------------------------------------===//
// Process
//===----------------------------------------------------------------------===//

Process::Process(Simulation &S, uint64_t Id, std::string Name,
                 std::function<void()> Body)
    : Sim(S), Id(Id), Name(std::move(Name)), Body(std::move(Body)), JoinQ(S),
      SleepQ(S) {}

Process::~Process() {
  if (!Exec)
    return;
  // Fail-safe for destruction without a clean reap (shutdown's fixpoint
  // exhausted, or a Simulation torn down mid-run): grant the context one
  // final turn with a kill pending so it unwinds and exits, then release
  // its resources. The Simulation is necessarily still alive here — reaped
  // processes have Exec == nullptr, and shutdown() reaps everything it
  // finishes before ~Simulation returns.
  if (!finished()) {
    if (WaitingOn) {
      WaitingOn->removeWaiter(this);
      WaitingOn = nullptr;
    }
    Sim.Backend->forceUnwind(*this);
  }
  Sim.Backend->reclaim(*this);
}

void Process::runBody() {
  try {
    deliverKill(); // A kill can land before the first turn.
    Body();
  } catch (ProcessKilled &) {
    // Forced termination unwound the body; nothing else to do.
  }
  Body = nullptr; // Release captured state deterministically.
  State = ProcState::Finished;
  assert(Sim.LiveProcs > 0 && "live-process counter underflow");
  --Sim.LiveProcs;
  JoinQ.notifyAll();
}

void Process::yieldToScheduler() {
  assert(detail::CurrentProcTL == this &&
         "yield from a context that lacks the turn");
  Sim.Backend->suspend(*this);
  deliverKill();
}

void Process::deliverKill() {
  if (!KillPending || Unwinding)
    return;
  if (CriticalDepth > 0 && !Sim.ShuttingDown)
    return; // Deferred: inside a critical section (paper, Section 4.2).
  Unwinding = true;
  throw ProcessKilled{};
}

//===----------------------------------------------------------------------===//
// WaitQueue
//===----------------------------------------------------------------------===//

void WaitQueue::enqueueCurrent(Process *P) {
  assert(P->WaitingOn == nullptr && "process already waiting");
  P->WaitingOn = this;
  P->State = ProcState::Blocked;
  P->WaitPrev = Tail;
  P->WaitNext = nullptr;
  (Tail ? Tail->WaitNext : Head) = P;
  Tail = P;
  ++Count;
}

WaitQueue::~WaitQueue() {
  // A queue should outlive its waiters, but during teardown after a
  // failed run (e.g. a violation left processes blocked at quiescence)
  // owners can be destroyed first. Detach the waiters so a later kill
  // does not dereference a dangling WaitingOn.
  for (Process *P = Head; P;) {
    Process *Next = P->WaitNext;
    P->WaitingOn = nullptr;
    P->WaitPrev = P->WaitNext = nullptr;
    P = Next;
  }
}

void WaitQueue::removeWaiter(Process *P) {
  assert(P->WaitingOn == this && "process not waiting here");
  (P->WaitPrev ? P->WaitPrev->WaitNext : Head) = P->WaitNext;
  (P->WaitNext ? P->WaitNext->WaitPrev : Tail) = P->WaitPrev;
  P->WaitPrev = P->WaitNext = nullptr;
  --Count;
}

void WaitQueue::wait() {
  Process *P = Simulation::current();
  assert(P && "WaitQueue::wait() outside a simulated process");
  P->deliverKill();
  enqueueCurrent(P);
  P->NotifiedFlag = false;
  P->yieldToScheduler();
}

bool WaitQueue::waitFor(Time Timeout) {
  Process *P = Simulation::current();
  assert(P && "WaitQueue::waitFor() outside a simulated process");
  P->deliverKill();
  enqueueCurrent(P);
  P->NotifiedFlag = false;
  // The epoch guards against this timeout firing after the process has
  // been woken by other means (notify or kill) and has moved on.
  uint64_t Epoch = P->WaitEpoch;
  uint64_t Ev = Sim.schedule(Timeout, [this, P, Epoch] {
    P->HasTimeoutEvent = false;
    if (P->WaitingOn == this && P->WaitEpoch == Epoch) {
      removeWaiter(P);
      P->WaitingOn = nullptr;
      Sim.makeReady(P);
    }
  });
  P->TimeoutEvent = Ev;
  P->HasTimeoutEvent = true;
  P->yieldToScheduler();
  return P->NotifiedFlag;
}

void WaitQueue::notifyOne() {
  if (!Head)
    return;
  Process *P = Head;
  removeWaiter(P);
  P->WaitingOn = nullptr;
  P->NotifiedFlag = true;
  Sim.makeReady(P);
}

void WaitQueue::notifyAll() {
  while (Head)
    notifyOne();
}

//===----------------------------------------------------------------------===//
// CriticalSection
//===----------------------------------------------------------------------===//

CriticalSection::CriticalSection()
    : Proc(Simulation::current()),
      ExceptionsAtEntry(std::uncaught_exceptions()) {
  assert(Proc && "critical section outside a simulated process");
  ++Proc->CriticalDepth;
}

CriticalSection::~CriticalSection() noexcept(false) {
  assert(Proc->CriticalDepth > 0 && "unbalanced critical section");
  --Proc->CriticalDepth;
  // Leaving the outermost section is a kill delivery point — but never
  // while another exception is already unwinding through us.
  if (Proc->CriticalDepth == 0 &&
      std::uncaught_exceptions() == ExceptionsAtEntry)
    Proc->deliverKill();
}

//===----------------------------------------------------------------------===//
// Simulation
//===----------------------------------------------------------------------===//

Simulation::Simulation() : Simulation(SimConfig()) {}

Simulation::Simulation(SimConfig C) : Cfg(C) {
  Backend = Cfg.Backend == BackendKind::Thread
                ? detail::makeThreadBackend()
                : detail::makeFiberBackend(Cfg);
  CtxSwitches = &Metrics.counter("sim.context_switches");
  Metrics.gaugeProbe("sim.event_queue_depth", [this] {
    return static_cast<double>(LiveTimed + ReadyCount);
  });
  Metrics.gaugeProbe("sim.live_processes", [this] {
    return static_cast<double>(liveProcessCount());
  });
  Metrics.gaugeProbe("sim.processes_spawned", [this] {
    return static_cast<double>(NextProcId);
  });
}

Simulation::~Simulation() { shutdown(); }

Process *Simulation::current() { return detail::CurrentProcTL; }

ProcessHandle Simulation::spawn(std::string Name,
                                std::function<void()> Body) {
  auto P = std::shared_ptr<Process>(
      new Process(*this, NextProcId++, std::move(Name), std::move(Body)));
  Backend->start(*P);
  ++LiveProcs;
  AllProcs.emplace(P->id(), P);
  // The start wake: the process first runs when the loop reaches it.
  pushReady(P.get());
  return P;
}

void Simulation::pushReady(Process *P) {
  assert(P->ReadyNext == nullptr && P != ReadyTail &&
         "process already has a pending wake");
  P->ReadyAt = NowNs;
  P->ReadySeq = ++NextEventSeq;
  (ReadyTail ? ReadyTail->ReadyNext : ReadyHead) = P;
  ReadyTail = P;
  ++ReadyCount;
}

uint64_t Simulation::schedule(Time Delay, std::function<void()> Fn) {
  uint32_t Slot;
  if (FreeEventHead != UINT32_MAX) {
    Slot = FreeEventHead;
    FreeEventHead = EventPool[Slot].NextFree;
  } else {
    Slot = static_cast<uint32_t>(EventPool.size());
    EventPool.emplace_back();
  }
  EventRecord &R = EventPool[Slot];
  R.Fn = std::move(Fn);
  R.Armed = true;
  R.Cancelled = false;
  TimedHeap.push_back({NowNs + Delay, ++NextEventSeq, Slot, R.Gen});
  std::push_heap(TimedHeap.begin(), TimedHeap.end(), timedAfter);
  ++LiveTimed;
  return (static_cast<uint64_t>(R.Gen) << 32) | Slot;
}

void Simulation::cancel(uint64_t EventId) {
  uint32_t Slot = static_cast<uint32_t>(EventId);
  uint32_t Gen = static_cast<uint32_t>(EventId >> 32);
  if (Slot >= EventPool.size())
    return;
  EventRecord &R = EventPool[Slot];
  if (!R.Armed || R.Gen != Gen || R.Cancelled)
    return; // Already ran or already cancelled.
  R.Cancelled = true;
  R.Fn = nullptr; // Eager destruction, as the old map erase provided.
  --LiveTimed;
}

Simulation::TimedEvent *Simulation::peekTimed() {
  while (!TimedHeap.empty()) {
    TimedEvent &Top = TimedHeap.front();
    // A slot stays owned by its heap entry until that entry surfaces, so
    // the cancelled flag alone identifies tombstones.
    if (!EventPool[Top.Slot].Cancelled)
      return &Top;
    uint32_t Slot = Top.Slot;
    std::pop_heap(TimedHeap.begin(), TimedHeap.end(), timedAfter);
    TimedHeap.pop_back();
    releaseEventSlot(Slot);
  }
  return nullptr;
}

void Simulation::releaseEventSlot(uint32_t Slot) {
  EventRecord &R = EventPool[Slot];
  R.Fn = nullptr;
  R.Armed = false;
  R.Cancelled = false;
  ++R.Gen;
  R.NextFree = FreeEventHead;
  FreeEventHead = Slot;
}

void Simulation::makeReady(Process *P) {
  assert((P->State == ProcState::Blocked || P->State == ProcState::Created) &&
         "makeReady on a process that is not blocked");
  P->State = ProcState::Ready;
  ++P->WaitEpoch;
  if (P->HasTimeoutEvent) {
    // Cancel the pending waitFor timeout so it cannot linger in the queue
    // and artificially advance the clock after the process moved on.
    cancel(P->TimeoutEvent);
    P->HasTimeoutEvent = false;
  }
  pushReady(P);
}

void Simulation::switchTo(Process *P) {
  assert(detail::CurrentProcTL == nullptr && "nested switchTo");
  CtxSwitches->inc();
  P->State = ProcState::Running;
  Backend->resume(*P);
  // A process finishes inside its own context, then yields the turn one
  // last time; reclaim its resources as soon as the scheduler sees that.
  if (P->State == ProcState::Finished && P->Exec)
    reap(P);
}

void Simulation::reap(Process *P) {
  Backend->reclaim(*P);
  assert(P->Exec == nullptr && "backend left exec state behind");
  // Joiners were woken by runBody (their wake events hold raw Process*
  // but any external joiner reached via Simulation::join holds the
  // shared_ptr); dropping the kernel handle frees the Process once the
  // last external handle goes away.
  AllProcs.erase(P->id());
}

bool Simulation::step(Time Horizon) {
  // Merge the ready FIFO and the timed queue by (At, Seq): dispatch order
  // is exactly what a single queue would produce, but the wake path (the
  // context-switch hot path) never touches the allocating tree. The FIFO
  // front is its minimum by construction — appends carry the current time
  // and a fresh seq, both non-decreasing.
  Process *RP = ReadyHead;
  TimedEvent *Ev = peekTimed();
  bool TakeReady =
      RP && (!Ev || RP->ReadyAt < Ev->At ||
             (RP->ReadyAt == Ev->At && RP->ReadySeq < Ev->Seq));
  if (TakeReady) {
    if (RP->ReadyAt > Horizon)
      return false;
    assert(RP->ReadyAt >= NowNs && "ready FIFO went backwards");
    NowNs = RP->ReadyAt;
    ReadyHead = RP->ReadyNext;
    if (!ReadyHead)
      ReadyTail = nullptr;
    RP->ReadyNext = nullptr;
    --ReadyCount;
    // The wake fires only if the process is still due to run (it may have
    // finished meanwhile via a shutdown-path kill).
    if (RP->State == ProcState::Ready || RP->State == ProcState::Created)
      switchTo(RP);
    return true;
  }
  if (!Ev)
    return false;
  if (Ev->At > Horizon)
    return false;
  assert(Ev->At >= NowNs && "event queue went backwards");
  NowNs = Ev->At;
  uint32_t Slot = Ev->Slot;
  std::pop_heap(TimedHeap.begin(), TimedHeap.end(), timedAfter);
  TimedHeap.pop_back();
  std::function<void()> Fn = std::move(EventPool[Slot].Fn);
  releaseEventSlot(Slot);
  --LiveTimed;
  Fn();
  return true;
}

void Simulation::run() {
  assert(!inProcess() && "run() must be called from scheduler context");
  if (Clock) {
    runRealTime(UINT64_MAX);
    return;
  }
  StopRequested = false;
  while (!StopRequested && step(UINT64_MAX)) {
  }
}

bool Simulation::runFor(Time Duration) {
  assert(!inProcess() && "runFor() must be called from scheduler context");
  Time Horizon = Duration < UINT64_MAX - NowNs ? NowNs + Duration : UINT64_MAX;
  if (Clock) {
    runRealTime(Horizon);
    if (!StopRequested && NowNs < Horizon && Horizon != UINT64_MAX)
      NowNs = Horizon;
    return LiveTimed != 0;
  }
  StopRequested = false;
  while (!StopRequested && step(Horizon)) {
  }
  if (!StopRequested && NowNs < Horizon)
    NowNs = Horizon;
  return LiveTimed != 0;
}

void Simulation::advanceClockToWall(Time Wall) {
  // Never jump past pending work: an event armed for an earlier instant
  // must still dispatch at its own time (step() asserts monotonicity).
  Time Target = Wall;
  if (TimedEvent *Ev = peekTimed())
    Target = std::min(Target, Ev->At);
  if (ReadyHead)
    Target = std::min(Target, ReadyHead->ReadyAt);
  if (Target > NowNs)
    NowNs = Target;
}

void Simulation::runRealTime(Time Horizon) {
  StopRequested = false;
  // An idle tick still polls at this period, bounding how stale the
  // virtual clock can get while nothing is armed.
  constexpr Time MaxPoll = msec(100);
  while (!StopRequested) {
    Time Wall = std::min(Clock->now(), Horizon);
    // Dispatch everything due at or before the wall reading, in virtual
    // order — exactly the simulated loop, just bounded by real time.
    while (!StopRequested && step(Wall)) {
    }
    if (StopRequested)
      break;
    advanceClockToWall(Wall);
    if (Wall >= Horizon)
      break;
    // Quiescence exit only for an unbounded run: nothing live means no
    // local work can ever arise again (unsolicited IO into bound handlers
    // alone doesn't count — a live server keeps a blocked process). A
    // bounded run is a serve-this-long request and keeps polling.
    if (Horizon == UINT64_MAX && !ReadyHead && LiveTimed == 0 &&
        LiveProcs == 0)
      break;
    Time SleepNs = MaxPoll;
    if (TimedEvent *Ev = peekTimed())
      SleepNs = Ev->At > Wall ? Ev->At - Wall : 0;
    if (Horizon != UINT64_MAX)
      SleepNs = std::min(SleepNs, Horizon - Wall);
    // The driver polls IO while sleeping and may dispatch datagrams and
    // arm timers before returning.
    Clock->waitFor(SleepNs);
  }
}

void Simulation::sleep(Time Duration) {
  Process *P = current();
  assert(P && "sleep() outside a simulated process");
  P->SleepQ.waitFor(Duration);
}

void Simulation::yieldNow() {
  Process *P = current();
  assert(P && "yieldNow() outside a simulated process");
  P->deliverKill();
  P->State = ProcState::Blocked;
  makeReady(P);
  P->yieldToScheduler();
}

void Simulation::join(const ProcessHandle &P) {
  Process *Cur = current();
  assert(Cur && "join() outside a simulated process");
  assert(P.get() != Cur && "a process cannot join itself");
  (void)Cur;
  while (!P->finished())
    P->JoinQ.wait();
}

void Simulation::woundImpl(Process *P) {
  if (P->State == ProcState::Finished)
    return;
  P->Wounded = true;
}

void Simulation::killImpl(Process *P) {
  if (P->State == ProcState::Finished)
    return;
  P->Wounded = true;
  P->KillPending = true;
  if (P->State == ProcState::Blocked &&
      (P->CriticalDepth == 0 || ShuttingDown)) {
    if (P->WaitingOn) {
      P->WaitingOn->removeWaiter(P);
      P->WaitingOn = nullptr;
    }
    makeReady(P);
  }
  // Created: the start event is already queued; the trampoline delivers.
  // Ready/Running: delivered at the next resume or blocking point.
}

void Simulation::shutdown() {
  ShuttingDown = true;
  // Killing one process can unblock others that then block elsewhere, so
  // iterate to a fixpoint (bounded for safety). Finished processes are
  // reaped (and erased from AllProcs) inside step(), so each round only
  // sees the still-unfinished ones.
  for (int Round = 0; Round < 64 && !AllProcs.empty(); ++Round) {
    for (auto &[Id, P] : AllProcs)
      killImpl(P.get());
    StopRequested = false;
    while (step(UINT64_MAX)) {
    }
  }
  // If the fixpoint bound was exhausted, drop any pending wakes before the
  // fail-safe destructor path frees the processes they point at.
  ReadyHead = ReadyTail = nullptr;
  ReadyCount = 0;
  AllProcs.clear(); // Anything left goes through the ~Process fail-safe.
}
