//===- ThreadBackend.cpp - One parked OS thread per process ---------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// The pre-fiber execution backend, retained for sanitizer and debugging
// runs (docs/RUNTIME.md): each process body runs on its own OS thread, and
// the single execution turn is handed back and forth through a per-process
// mutex/condvar pair. Only one thread is ever runnable, so the scheduling
// semantics are identical to the fiber backend — just ~100-1000x slower per
// switch (two kernel context switches each) and bounded by thread limits in
// the low hundreds of thousands.
//
//===----------------------------------------------------------------------===//

#include "ExecBackend.h"

#include <cassert>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace promises::sim::detail {
namespace {

/// Per-process execution state: the thread plus the turn-handoff pair.
struct ThreadExec {
  std::mutex Mu;
  std::condition_variable Cv;
  /// Whose turn it is. Guarded by Mu; flipped exactly once per handoff.
  bool TurnIsProcess = false;
  std::thread Thr;
};

class ThreadBackend final : public ExecutionBackend {
public:
  void start(Process &P) override {
    auto *E = new ThreadExec();
    BackendAccess::exec(P) = E;
    E->Thr = std::thread([&P, E] {
      // Park until the scheduler grants the first turn.
      {
        std::unique_lock<std::mutex> L(E->Mu);
        E->Cv.wait(L, [E] { return E->TurnIsProcess; });
      }
      BackendAccess::setCurrent(&P);
      BackendAccess::runBody(P);
      BackendAccess::setCurrent(nullptr);
      // Final turn release; the scheduler's resume() returns and reaps us.
      {
        std::lock_guard<std::mutex> L(E->Mu);
        E->TurnIsProcess = false;
      }
      E->Cv.notify_one();
    });
  }

  void resume(Process &P) override {
    auto *E = static_cast<ThreadExec *>(BackendAccess::exec(P));
    assert(E && "resume on a reaped process");
    {
      std::lock_guard<std::mutex> L(E->Mu);
      E->TurnIsProcess = true;
    }
    E->Cv.notify_one();
    std::unique_lock<std::mutex> L(E->Mu);
    E->Cv.wait(L, [E] { return !E->TurnIsProcess; });
  }

  void suspend(Process &P) override {
    auto *E = static_cast<ThreadExec *>(BackendAccess::exec(P));
    BackendAccess::setCurrent(nullptr);
    {
      std::lock_guard<std::mutex> L(E->Mu);
      E->TurnIsProcess = false;
    }
    E->Cv.notify_one();
    std::unique_lock<std::mutex> L(E->Mu);
    E->Cv.wait(L, [E] { return E->TurnIsProcess; });
    BackendAccess::setCurrent(&P);
  }

  void reclaim(Process &P) override {
    auto *E = static_cast<ThreadExec *>(BackendAccess::exec(P));
    if (!E)
      return;
    assert(BackendAccess::finished(P) && "reclaiming an unfinished process");
    E->Thr.join();
    delete E;
    BackendAccess::exec(P) = nullptr;
  }

  void forceUnwind(Process &P) override {
    // Grant one final turn with an unconditional kill armed; the
    // trampoline's deliverKill / the next blocking point unwinds the body.
    BackendAccess::armKill(P);
    resume(P);
    assert(BackendAccess::finished(P) && "forced unwind did not finish");
  }

  const char *name() const override { return "thread"; }
};

} // namespace

std::unique_ptr<ExecutionBackend> makeThreadBackend() {
  return std::make_unique<ThreadBackend>();
}

} // namespace promises::sim::detail
