//===- FiberBackend.cpp - Stackful fibers on one OS thread ----------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// The default execution backend (docs/RUNTIME.md): every simulated process
// is a stackful fiber, and the scheduler plus all fibers share one OS
// thread. A turn handoff is a userspace context switch — save six callee-
// saved registers, swap the stack pointer, restore — so switching costs
// tens of nanoseconds instead of the thread backend's two kernel context
// switches, and a million concurrent blocked processes fit in a few GB.
//
// Three pieces of machinery make this safe:
//
//  * Stack slabs. vm.max_map_count (~65k) forbids one mmap per stack at
//    1M-process scale, so stacks are carved from 64 MiB MAP_NORESERVE
//    slabs and recycled through a freelist. MADV_NOHUGEPAGE keeps a single
//    touched page from ballooning to a 2 MiB huge page spanning sixteen
//    neighboring stacks. An optional guard-page mode (SimConfig /
//    PROMISES_FIBER_GUARD=1) maps each stack separately with an
//    inaccessible low page for overflow detection in debugging runs.
//
//  * Exception-state isolation. A fiber can suspend while an exception is
//    in flight (SimCondVar::wait catches ProcessKilled, reacquires the
//    mutex — which blocks — and rethrows), so the 16 bytes of libstdc++'s
//    per-thread __cxa_eh_globals are swapped on every switch. Without this
//    a `throw;` in one fiber could rethrow another fiber's exception.
//
//  * ASan fiber annotations. Under AddressSanitizer every switch brackets
//    the hop with __sanitizer_start_switch_fiber/finish_switch_fiber so
//    the fake-stack machinery follows the fiber, keeping the sanitize CI
//    job green on this backend (see the satellite note in docs/RUNTIME.md).
//
// The context switch itself is hand-written System V x86-64 assembly; on
// other architectures the backend falls back to ucontext, which is
// makecontext/swapcontext — slower (it saves the signal mask) but portable.
//
//===----------------------------------------------------------------------===//

#include "ExecBackend.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <sys/mman.h>
#include <unistd.h>

#if defined(__x86_64__) && defined(__ELF__)
#define PROMISES_FIBER_ASM 1
#else
#define PROMISES_FIBER_ASM 0
#include <ucontext.h>
#endif

#ifdef __SANITIZE_ADDRESS__
#define PROMISES_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PROMISES_ASAN 1
#endif
#endif
#ifndef PROMISES_ASAN
#define PROMISES_ASAN 0
#endif

#if PROMISES_ASAN
extern "C" {
void __sanitizer_start_switch_fiber(void **FakeStackSave, const void *Bottom,
                                    size_t Size);
void __sanitizer_finish_switch_fiber(void *FakeStackSave,
                                     const void **BottomOld, size_t *SizeOld);
}
#endif

// libstdc++'s per-thread exception bookkeeping: { __cxa_exception
// *caughtExceptions; unsigned uncaughtExceptions; } — 16 bytes on LP64.
// The header declaring the struct (unwind-cxx.h) is not installed, so
// declare the accessor opaquely and copy the bytes.
extern "C" void *__cxa_get_globals() noexcept;

namespace promises::sim::detail {
namespace {

struct EhGlobals {
  alignas(void *) unsigned char Bytes[16] = {};
};

/// __cxa_get_globals is an out-of-line libstdc++ call, but its result —
/// the address of this thread's eh state — is constant for the thread's
/// lifetime. Cache it so the twice-per-switch swap is six inline moves
/// instead of two PLT calls per scheduler round trip.
thread_local void *EhGlobalsAddr = nullptr;

inline void *ehGlobals() {
  void *A = EhGlobalsAddr;
  if (A == nullptr) [[unlikely]]
    EhGlobalsAddr = A = __cxa_get_globals();
  return A;
}

inline void swapEhGlobals(EhGlobals &Saved) {
  void *Live = ehGlobals();
  EhGlobals Tmp;
  std::memcpy(Tmp.Bytes, Live, sizeof(Tmp.Bytes));
  std::memcpy(Live, Saved.Bytes, sizeof(Saved.Bytes));
  Saved = Tmp;
}

//===----------------------------------------------------------------------===//
// Machine context switch
//===----------------------------------------------------------------------===//

#if PROMISES_FIBER_ASM

// void promises_fiber_switch(void **SaveSP, void *RestoreSP)
//
// Saves the System V callee-saved integer registers plus the return
// address on the current stack, stores the resulting stack pointer in
// *SaveSP, installs RestoreSP, and continues in the restored context. The
// SSE control words (mxcsr/x87) are left alone: the kernel never changes
// rounding modes, and neither backend offers that knob. No CFI is emitted
// — no exception ever crosses a switch (ProcessKilled is caught inside
// the fiber by the trampoline), so the unwinder never walks through here.
//
// The tail is pop+jmp rather than ret on purpose: a ret whose target does
// not match the call that pushed it (every switch, by definition) both
// mispredicts and desynchronizes the return-stack branch predictor, so
// each frame unwound afterwards mispredicts too. An indirect jmp predicts
// from the BTB and leaves the RSB alone — measured ~18 ns faster per
// scheduler round trip on this microarchitecture.
asm(".text\n"
    ".align 16\n"
    ".globl promises_fiber_switch\n"
    ".hidden promises_fiber_switch\n"
    ".type promises_fiber_switch,@function\n"
    "promises_fiber_switch:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  movq %rsp, (%rdi)\n"
    "  movq %rsi, %rsp\n"
    "  popq %r15\n"
    "  popq %r14\n"
    "  popq %r13\n"
    "  popq %r12\n"
    "  popq %rbx\n"
    "  popq %rbp\n"
    "  popq %rcx\n"
    "  jmpq *%rcx\n"
    ".size promises_fiber_switch,.-promises_fiber_switch\n");

extern "C" void promises_fiber_switch(void **SaveSP, void *RestoreSP);

#endif // PROMISES_FIBER_ASM

//===----------------------------------------------------------------------===//
// Stack pool
//===----------------------------------------------------------------------===//

/// Recycles fiber stacks. Two modes:
///
///  * Slab (default): stacks carved from 64 MiB MAP_NORESERVE anonymous
///    slabs — ~512 stacks per mapping, so 1M concurrent fibers use ~2000
///    mappings, far under vm.max_map_count. Only touched pages are
///    resident.
///  * Guard: each stack is its own mapping with a PROT_NONE low page, so
///    overflow faults deterministically. One mapping per pooled stack;
///    meant for debugging, not 1M scale.
class StackPool {
public:
  StackPool(size_t StackBytes, bool Guard)
      : PageSize(static_cast<size_t>(sysconf(_SC_PAGESIZE))),
        StackBytes(roundUp(StackBytes, PageSize)), Guard(Guard) {}

  StackPool(const StackPool &) = delete;
  StackPool &operator=(const StackPool &) = delete;

  ~StackPool() {
    for (const auto &[Base, Len] : Mappings)
      munmap(Base, Len);
  }

  size_t stackBytes() const { return StackBytes; }

  /// Returns the low address of a usable StackBytes region.
  void *allocate() {
    if (!Free.empty()) {
      void *S = Free.back();
      Free.pop_back();
      return S;
    }
    return Guard ? allocateGuarded() : carveFromSlab();
  }

  void release(void *Stack) { Free.push_back(Stack); }

private:
  static size_t roundUp(size_t N, size_t To) { return (N + To - 1) / To * To; }

  [[noreturn]] static void dieOOM(size_t Len) {
    std::fprintf(stderr,
                 "promises: fiber stack mmap of %zu bytes failed; lower the "
                 "process count or SimConfig::FiberStackBytes\n",
                 Len);
    std::abort();
  }

  void *map(size_t Len, int ExtraFlags) {
    void *P = mmap(nullptr, Len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | ExtraFlags, -1, 0);
    if (P == MAP_FAILED)
      dieOOM(Len);
    Mappings.emplace_back(P, Len);
    return P;
  }

  void *allocateGuarded() {
    auto *Base = static_cast<unsigned char *>(map(StackBytes + PageSize, 0));
    if (mprotect(Base, PageSize, PROT_NONE) != 0) {
      std::fprintf(stderr, "promises: fiber guard mprotect failed\n");
      std::abort();
    }
    return Base + PageSize;
  }

  void *carveFromSlab() {
    if (SlabLeft < StackBytes) {
      size_t SlabBytes = std::max<size_t>(64ull << 20, StackBytes);
      SlabCur = static_cast<unsigned char *>(map(SlabBytes, MAP_NORESERVE));
      SlabLeft = SlabBytes;
#ifdef MADV_NOHUGEPAGE
      // A transparent huge page spanning sixteen 128 KiB stacks would make
      // each fiber's single touched page cost 2 MiB of RSS.
      madvise(SlabCur, SlabBytes, MADV_NOHUGEPAGE);
#endif
    }
    void *S = SlabCur;
    SlabCur += StackBytes;
    SlabLeft -= StackBytes;
    return S;
  }

  const size_t PageSize;
  const size_t StackBytes;
  const bool Guard;
  std::vector<void *> Free;
  std::vector<std::pair<void *, size_t>> Mappings;
  unsigned char *SlabCur = nullptr;
  size_t SlabLeft = 0;
};

//===----------------------------------------------------------------------===//
// FiberBackend
//===----------------------------------------------------------------------===//

/// Per-fiber execution state (heap-allocated; ~64 bytes — the stack itself
/// lives in the pool).
struct FiberExec {
#if PROMISES_FIBER_ASM
  void *SP = nullptr; ///< Saved stack pointer while not running.
#else
  ucontext_t Ctx;
#endif
  void *Stack = nullptr; ///< Low address of the pooled stack region.
  bool Started = false;
  EhGlobals Eh; ///< This fiber's exception state while suspended.
#if PROMISES_ASAN
  void *FakeStack = nullptr;
#endif
};

class FiberBackend;

/// The backend whose fiber currently holds (or is taking) the turn on this
/// thread. Set around every resume so the naked trampoline entry — which
/// receives no arguments — can find its world.
thread_local FiberBackend *CurBackend = nullptr;

extern "C" void promisesFiberEntry();

class FiberBackend final : public ExecutionBackend {
public:
  explicit FiberBackend(const SimConfig &Cfg)
      : Pool(Cfg.FiberStackBytes, Cfg.FiberGuardPages) {}

  void start(Process &P) override {
    auto *E = new FiberExec();
    E->Stack = Pool.allocate();
#if PROMISES_FIBER_ASM
    // Craft an initial frame the switch's pops+ret will "return" into:
    // six zeroed callee-saved registers below the entry address, and a
    // zero fake return address above it so the frame base is recognizable.
    // After ret, rsp ≡ 8 (mod 16) — exactly the ABI state on function
    // entry — so the trampoline may call anything, SSE spills included.
    auto Top = reinterpret_cast<uintptr_t>(E->Stack) + Pool.stackBytes();
    auto *Slot = reinterpret_cast<uintptr_t *>(Top & ~uintptr_t(15));
    *--Slot = 0; // Fake return address: end of the line.
    *--Slot = reinterpret_cast<uintptr_t>(&promisesFiberEntry);
    for (int I = 0; I < 6; ++I)
      *--Slot = 0; // rbp, rbx, r12-r15.
    E->SP = Slot;
#else
    getcontext(&E->Ctx);
    E->Ctx.uc_stack.ss_sp = E->Stack;
    E->Ctx.uc_stack.ss_size = Pool.stackBytes();
    E->Ctx.uc_link = nullptr; // The trampoline switches home explicitly.
    makecontext(&E->Ctx, reinterpret_cast<void (*)()>(&promisesFiberEntry),
                0);
#endif
    BackendAccess::exec(P) = E;
  }

  void resume(Process &P) override {
    auto *E = static_cast<FiberExec *>(BackendAccess::exec(P));
    assert(E && "resume on a reaped process");
    assert(Active == nullptr && "nested fiber resume");
    FiberBackend *PrevBackend = CurBackend;
    CurBackend = this;
    Active = &P;
    ActiveExec = E;
    CurrentProcTL = &P;
    // Install the fiber's exception state (zeroed on first run); ours is
    // restored on the way back out.
    swapEhGlobals(E->Eh);
#if PROMISES_ASAN
    __sanitizer_start_switch_fiber(&SchedFakeStack, E->Stack,
                                   Pool.stackBytes());
#endif
#if PROMISES_FIBER_ASM
    promises_fiber_switch(&SchedSP, E->SP);
#else
    swapcontext(&SchedCtx, &E->Ctx);
#endif
    // Back in scheduler context: the fiber either suspended or finished.
#if PROMISES_ASAN
    __sanitizer_finish_switch_fiber(SchedFakeStack, nullptr, nullptr);
#endif
    swapEhGlobals(E->Eh);
    CurrentProcTL = nullptr;
    ActiveExec = nullptr;
    Active = nullptr;
    CurBackend = PrevBackend;
  }

  void suspend(Process &P) override {
    auto *E = static_cast<FiberExec *>(BackendAccess::exec(P));
    assert(CurBackend == this && Active == &P &&
           "suspend from a fiber that lacks the turn");
#if PROMISES_ASAN
    __sanitizer_start_switch_fiber(&E->FakeStack, SchedStackBottom,
                                   SchedStackSize);
#endif
#if PROMISES_FIBER_ASM
    promises_fiber_switch(&E->SP, SchedSP);
#else
    swapcontext(&E->Ctx, &SchedCtx);
#endif
    // Resumed for another turn.
#if PROMISES_ASAN
    __sanitizer_finish_switch_fiber(E->FakeStack, &SchedStackBottom,
                                    &SchedStackSize);
#endif
  }

  void reclaim(Process &P) override {
    auto *E = static_cast<FiberExec *>(BackendAccess::exec(P));
    if (!E)
      return;
    assert(BackendAccess::finished(P) && "reclaiming an unfinished process");
    Pool.release(E->Stack);
    delete E;
    BackendAccess::exec(P) = nullptr;
  }

  void forceUnwind(Process &P) override {
    // One final turn with an unconditional kill armed: the trampoline (if
    // never started) or the blocking point the fiber sits in delivers
    // ProcessKilled, the body unwinds, and the trampoline switches home
    // for good.
    BackendAccess::armKill(P);
    resume(P);
    assert(BackendAccess::finished(P) && "forced unwind did not finish");
  }

  const char *name() const override { return "fiber"; }

  /// Runs on the fiber's own stack; the outermost frame of every process.
  /// noexcept is the backstop that turns an escaped non-ProcessKilled
  /// exception into std::terminate at this frame instead of letting the
  /// unwinder walk off the crafted stack base.
  void fiberMain() noexcept {
    Process &P = *Active;
    FiberExec *E = ActiveExec;
#if PROMISES_ASAN
    // First gain of control: complete the scheduler's start_switch and
    // learn the scheduler stack's bounds for the hops back.
    __sanitizer_finish_switch_fiber(nullptr, &SchedStackBottom,
                                    &SchedStackSize);
#endif
    E->Started = true;
    BackendAccess::runBody(P);
    // Finished. Switch home for good; resume() observes Finished and the
    // scheduler reclaims the stack.
#if PROMISES_ASAN
    __sanitizer_start_switch_fiber(nullptr, SchedStackBottom, SchedStackSize);
#endif
#if PROMISES_FIBER_ASM
    void *Discard;
    promises_fiber_switch(&Discard, SchedSP);
#else
    swapcontext(&E->Ctx, &SchedCtx);
#endif
    // A finished fiber must never be handed the turn again.
    std::abort();
  }

private:
  StackPool Pool;
  Process *Active = nullptr;
  FiberExec *ActiveExec = nullptr;
#if PROMISES_FIBER_ASM
  void *SchedSP = nullptr; ///< Scheduler context while a fiber runs.
#else
  ucontext_t SchedCtx;
#endif
#if PROMISES_ASAN
  void *SchedFakeStack = nullptr;
  const void *SchedStackBottom = nullptr;
  size_t SchedStackSize = 0;
#endif
};

/// The address the crafted initial frame "returns" into. Naked entry: no
/// arguments (the switch zeroed all callee-saved registers), so the fiber
/// finds its backend through the thread-local set by resume().
extern "C" void promisesFiberEntry() {
  CurBackend->fiberMain();
  std::abort(); // fiberMain never returns control here.
}

} // namespace

std::unique_ptr<ExecutionBackend> makeFiberBackend(const SimConfig &Cfg) {
  return std::make_unique<FiberBackend>(Cfg);
}

} // namespace promises::sim::detail
