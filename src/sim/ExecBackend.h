//===- ExecBackend.h - Process execution backend seam ----------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The internal seam between the deterministic scheduler and the machinery
/// that actually runs process bodies (docs/RUNTIME.md). The scheduler only
/// ever performs four operations on a process's execution context: create
/// it, transfer the turn in, take the turn back, and release it. Two
/// implementations exist:
///
///  * FiberBackend  - stackful fibers, everything on one OS thread.
///  * ThreadBackend - one parked OS thread per process, mutex/condvar
///                    turn handoff (the pre-fiber design, kept for
///                    sanitizer and debugging runs).
///
/// Both are driven identically by Simulation::switchTo /
/// Process::yieldToScheduler, so scheduling order — and therefore every
/// trace hash — is backend-independent by construction.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_SIM_EXECBACKEND_H
#define PROMISES_SIM_EXECBACKEND_H

#include "promises/sim/Simulation.h"

#include <memory>

namespace promises::sim::detail {

/// Executes process bodies on behalf of one Simulation. All methods are
/// called under the single-runner discipline: resume/start/reclaim from
/// scheduler context, suspend from inside the process being suspended.
class ExecutionBackend {
public:
  virtual ~ExecutionBackend() = default;

  /// Allocates execution state for a freshly spawned process and stores it
  /// in the process (BackendAccess::exec). The body must not run yet; the
  /// first resume() enters the trampoline, which calls Process::runBody.
  virtual void start(Process &P) = 0;

  /// Scheduler side: hands the turn to \p P and returns once \p P has
  /// yielded it back (or finished).
  virtual void resume(Process &P) = 0;

  /// Process side: gives the turn back to the scheduler; returns when the
  /// scheduler resumes this process again.
  virtual void suspend(Process &P) = 0;

  /// Scheduler side, after \p P finished: releases its execution state
  /// (joins the thread / recycles the stack) and nulls the exec pointer.
  virtual void reclaim(Process &P) = 0;

  /// Fail-safe for destroying a process that never finished (shutdown
  /// fixpoint exhausted): forces one final turn with a kill pending so the
  /// context unwinds and exits. Must leave \p P finished.
  virtual void forceUnwind(Process &P) = 0;

  /// "fiber" or "thread".
  virtual const char *name() const = 0;
};

std::unique_ptr<ExecutionBackend> makeFiberBackend(const SimConfig &Cfg);
std::unique_ptr<ExecutionBackend> makeThreadBackend();

/// The process currently holding the execution turn on this thread
/// (nullptr in scheduler context). Exposed here — not only behind
/// BackendAccess::setCurrent — so the fiber backend's switch hot path can
/// flip it with one initial-exec TLS store instead of a cross-TU call per
/// hop. Defined in Simulation.cpp.
extern thread_local Process *CurrentProcTL;

/// The kernel's private door for backends (kept to one friend declaration
/// in the public header).
struct BackendAccess {
  static void *&exec(Process &P) { return P.Exec; }
  static void runBody(Process &P) { P.runBody(); }
  static bool finished(const Process &P) { return P.finished(); }
  static void armKill(Process &P) {
    P.KillPending = true;
    P.CriticalDepth = 0; // Destruction overrides critical sections.
  }
  /// The thread_local "process holding the turn" slot; backends set it
  /// around body execution (fibers: on the scheduler thread itself).
  static void setCurrent(Process *P) { CurrentProcTL = P; }
};

} // namespace promises::sim::detail

#endif // PROMISES_SIM_EXECBACKEND_H
