//===- Guardian.cpp - Active entities --------------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/runtime/Guardian.h"

#include "promises/support/StrUtil.h"

#include <cassert>

using namespace promises;
using namespace promises::runtime;

Guardian::Guardian(net::Network &Net, net::NodeId Node, std::string Name,
                   GuardianConfig Cfg)
    : Net(Net), Node(Node), Name(std::move(Name)), Cfg(Cfg),
      Reg(Net.simulation().metrics()) {
  MetricLabels L{{"guardian", this->Name},
                 {"node", strprintf("%u", Node)}};
  CallsExec = &Reg.counter("runtime.calls_executed", L);
  OrphansDestroyed = &Reg.counter("runtime.orphans_destroyed", L);
  Reg.gaugeProbe("runtime.handler_queue_depth", [this] {
    size_t N = 0;
    for (const auto &[Tag, D] : Domains)
      N += D.Waiting.size();
    return static_cast<double>(N);
  }, L);
  Reg.gaugeProbe("runtime.live_call_processes", [this] {
    size_t N = 0;
    for (const auto &[Tag, D] : Domains)
      N += D.Running.size();
    return static_cast<double>(N);
  }, L);
  Transport = std::make_unique<stream::StreamTransport>(Net, Node, Cfg.Stream);
  Transport->setCallSink(
      [this](stream::IncomingCall IC) { onIncomingCall(std::move(IC)); });
  Transport->setStreamDeadHook([this](uint64_t Tag) { onStreamDead(Tag); });
  Net.onCrash(Node, [this] { onNodeCrash(); });
}

Guardian::~Guardian() {
  // Stop traffic first so no new call processes are spawned while the
  // executor table is being torn down.
  Transport->shutdown();
  // Freeze the probe gauges at their final value: the registry outlives
  // this guardian, and a probe capturing `this` must not dangle.
  MetricLabels L{{"guardian", Name}, {"node", strprintf("%u", Node)}};
  for (const char *G : {"runtime.handler_queue_depth",
                        "runtime.live_call_processes"}) {
    double Final = Reg.gauge(G, L).value();
    Reg.gaugeProbe(G, [Final] { return Final; }, L);
  }
}

void Guardian::onNodeCrash() {
  Crashed = true;
  // The transport registered its crash observer first and has already shut
  // down; all that remains is to kill the guardian's processes.
  sim::Simulation &Sim = Net.simulation();
  for (const sim::ProcessHandle &P : Procs)
    Sim.kill(P);
}

sim::ProcessHandle Guardian::spawnProcess(std::string ProcName,
                                          std::function<void()> Body) {
  assert(!Crashed && "spawnProcess on a crashed guardian");
  sim::ProcessHandle P =
      Net.simulation().spawn(Name + "/" + ProcName, std::move(Body));
  Procs.push_back(P);
  return P;
}

Guardian::ExecDomain &Guardian::domain(uint64_t Tag) { return Domains[Tag]; }

void Guardian::onIncomingCall(stream::IncomingCall IC) {
  if (Crashed)
    return;
  // One process (and agent) per call. The process waits for its turn so
  // that calls on the same stream appear to execute in call order; calls
  // on different streams (different tags) proceed concurrently.
  auto Call = std::make_shared<stream::IncomingCall>(std::move(IC));
  std::string PN = strprintf("call#%llu",
                             static_cast<unsigned long long>(Call->CallSeq));
  ExecDomain &D = domain(Call->StreamTag);
  sim::ProcessHandle P;
  // A handler killed mid-flight (node crash, orphan destruction) unwinds
  // out of the body without reaching trailing statements, so the executor
  // tables — which feed the probe gauges — are cleaned by a guard, not by
  // straight-line code.
  struct Cleanup {
    ExecDomain &D;
    stream::Seq Mine;
    ~Cleanup() {
      D.Waiting.erase(Mine);
      D.Running.erase(Mine);
    }
  };
  if (isParallelGroup(Call->Group)) {
    // Explicit override: no gating; the transport reorders completions
    // back into call order for the sender.
    P = Net.simulation().spawn(Name + "/" + PN, [this, Call, &D] {
      Cleanup C{D, Call->CallSeq};
      runCall(*Call);
    });
  } else {
    P = Net.simulation().spawn(Name + "/" + PN, [this, Call, &D] {
      stream::Seq Mine = Call->CallSeq;
      Cleanup C{D, Mine};
      if (D.DoneThrough + 1 != Mine) {
        auto &Q = D.Waiting[Mine];
        if (!Q)
          Q = std::make_unique<sim::WaitQueue>(Net.simulation());
        while (D.DoneThrough + 1 != Mine)
          Q->wait();
        D.Waiting.erase(Mine);
      }
      runCall(*Call);
      D.DoneThrough = Mine;
      auto Next = D.Waiting.find(Mine + 1);
      if (Next != D.Waiting.end())
        Next->second->notifyOne();
    });
  }
  D.Running.emplace(Call->CallSeq, P);
  Procs.push_back(std::move(P));
}

void Guardian::onStreamDead(uint64_t Tag) {
  // The stream broke or was superseded: destroy its orphaned executions
  // (paper, Section 4.2: the system "will find these computations and
  // destroy them later" — here, promptly). The call that triggered the
  // break may be the current process; it finishes its own cleanup.
  auto It = Domains.find(Tag);
  if (It == Domains.end())
    return;
  sim::Process *Self = sim::Simulation::current();
  sim::Simulation &Sim = Net.simulation();
  for (auto &[Seq, PH] : It->second.Running) {
    if (PH.get() == Self)
      continue;
    OrphansDestroyed->inc();
    if (Reg.enabled())
      Reg.emit({Sim.now(), EventKind::OrphanDestroyed, Node, Tag, Seq, 0, {}});
    Sim.kill(PH);
  }
  It->second.Running.clear();
}

void Guardian::runCall(stream::IncomingCall &IC) {
  // "Calls on broken streams are discarded automatically, so user code
  // never needs to deal with them."
  if (Transport->isReceiverBroken(IC.StreamTag))
    return;
  CallsExec->inc();
  auto It = Executors.find(IC.Port);
  if (It == Executors.end()) {
    IC.Complete(stream::ReplyStatus::Failure, 0, {}, "no such port");
    return;
  }
  It->second(IC);
}
