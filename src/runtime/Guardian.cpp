//===- Guardian.cpp - Active entities --------------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/runtime/Guardian.h"

#include "promises/core/Exceptions.h"
#include "promises/support/StrUtil.h"

#include <algorithm>
#include <cassert>

using namespace promises;
using namespace promises::runtime;

Guardian::Guardian(net::Network &Net, net::NodeId Node, std::string Name,
                   GuardianConfig Cfg)
    : Net(Net), Sim(Net.simulation()), Node(Node), Name(std::move(Name)),
      Cfg(Cfg), Reg(Sim.metrics()) {
  MetricLabels L{{"guardian", this->Name},
                 {"node", strprintf("%u", Node)}};
  CallsExec = &Reg.counter("runtime.calls_executed", L);
  OrphansDestroyed = &Reg.counter("runtime.orphans_destroyed", L);
  DeadlinesExpired = &Reg.counter("call.deadline_expired", L);
  CallsShed = &Reg.counter("call.shed", L);
  Retries = &Reg.counter("call.retries", L);
  Reg.gaugeProbe("runtime.handler_queue_depth", [this] {
    size_t N = 0;
    for (const auto &[Tag, D] : Domains)
      N += D.Waiting.size();
    return static_cast<double>(N);
  }, L);
  Reg.gaugeProbe("runtime.live_call_processes", [this] {
    return static_cast<double>(LiveCallProcs);
  }, L);
  Transport = std::make_unique<stream::StreamTransport>(Net, Node, Cfg.Stream);
  Transport->setCallSink(
      [this](stream::IncomingCall IC) { onIncomingCall(std::move(IC)); });
  Transport->setStreamDeadHook([this](uint64_t Tag) { onStreamDead(Tag); });
  Transport->setCallCancelHook(
      [this](uint64_t Tag, stream::Seq Sq) { cancelCall(Tag, Sq); });
  Net.onCrash(Node, [this] { onNodeCrash(); });
}

Guardian::~Guardian() {
  // Stop traffic first so no new call processes are spawned while the
  // executor table is being torn down.
  Transport->shutdown();
  // Freeze the probe gauges at their final value: the registry outlives
  // this guardian, and a probe capturing `this` must not dangle.
  MetricLabels L{{"guardian", Name}, {"node", strprintf("%u", Node)}};
  for (const char *G : {"runtime.handler_queue_depth",
                        "runtime.live_call_processes"}) {
    double Final = Reg.gauge(G, L).value();
    Reg.gaugeProbe(G, [Final] { return Final; }, L);
  }
}

void Guardian::onNodeCrash() {
  Crashed = true;
  // The transport registered its crash observer first and has already shut
  // down; all that remains is to kill the guardian's processes.
  for (const sim::ProcessHandle &P : Procs)
    Sim.kill(P);
}

sim::ProcessHandle Guardian::spawnProcess(std::string ProcName,
                                          std::function<void()> Body) {
  assert(!Crashed && "spawnProcess on a crashed guardian");
  sim::ProcessHandle P =
      Sim.spawn(Name + "/" + ProcName, std::move(Body));
  trackProcess(P);
  return P;
}

void Guardian::trackProcess(sim::ProcessHandle P) {
  Procs.push_back(std::move(P));
  if (Procs.size() < NextProcsSweep)
    return;
  std::erase_if(Procs,
                [](const sim::ProcessHandle &H) { return H->finished(); });
  NextProcsSweep = std::max<size_t>(64, Procs.size() * 2);
}

Guardian::ExecDomain &Guardian::domain(uint64_t Tag) { return Domains[Tag]; }

void Guardian::onIncomingCall(stream::IncomingCall IC) {
  if (Crashed)
    return;
  ExecDomain &D = domain(IC.StreamTag);
  D.Parallel = isParallelGroup(IC.Group);
  // Admission control: shed the call before spawning a process for it.
  // The reply is a conserving outcome — the sender sees
  // unavailable("overloaded") in order, like any other completion. Two
  // bounds compose: the guardian-wide MaxPendingCalls cap and the
  // per-stream MaxPendingPerStream quota (tenant isolation — one
  // storming stream cannot occupy every slot).
  bool OverGlobal =
      Cfg.MaxPendingCalls != 0 && LiveCallProcs >= Cfg.MaxPendingCalls;
  bool OverStream = Cfg.MaxPendingPerStream != 0 &&
                    D.Running.size() >= Cfg.MaxPendingPerStream;
  if ((OverGlobal || OverStream) && ShedExemptPorts.count(IC.Port) == 0) {
    CallsShed->inc();
    // A shed seq never spawns a process; settle it in the domain so the
    // calls behind it do not gate on it forever. Parallel domains have no
    // gate (DoneThrough never advances), so recording the seq there would
    // only accumulate.
    if (!D.Parallel && IC.CallSeq > D.DoneThrough) {
      D.Aborted.insert(IC.CallSeq);
      advanceDomain(D);
    }
    if (Reg.enabled())
      Reg.emit({Sim.now(), EventKind::CallShed, Node,
                IC.StreamTag, IC.CallSeq, 0, {}});
    IC.Complete(stream::ReplyStatus::Unavailable, 0, {},
                core::reasons::Overloaded);
    return;
  }
  // One process (and agent) per call. The process waits for its turn so
  // that calls on the same stream appear to execute in call order; calls
  // on different streams (different tags) proceed concurrently.
  auto Call = std::make_shared<stream::IncomingCall>(std::move(IC));
  std::string PN = strprintf("call#%llu",
                             static_cast<unsigned long long>(Call->CallSeq));
  sim::ProcessHandle P;
  // A handler killed mid-flight (node crash, orphan destruction) unwinds
  // out of the body without reaching trailing statements, so the executor
  // tables — which feed the probe gauges — are cleaned by a guard, not by
  // straight-line code.
  struct Cleanup {
    Guardian &G;
    ExecDomain &D;
    stream::Seq Mine;
    ~Cleanup() {
      D.Waiting.erase(Mine);
      G.LiveCallProcs -= D.Running.erase(Mine);
    }
  };
  if (D.Parallel) {
    // Explicit override: no gating; the transport reorders completions
    // back into call order for the sender.
    P = Sim.spawn(Name + "/" + PN, [this, Call, &D] {
      Cleanup C{*this, D, Call->CallSeq};
      runCall(*Call);
    });
  } else {
    P = Sim.spawn(Name + "/" + PN, [this, Call, &D] {
      stream::Seq Mine = Call->CallSeq;
      Cleanup C{*this, D, Mine};
      if (D.DoneThrough + 1 != Mine) {
        auto &Q = D.Waiting[Mine];
        if (!Q)
          Q = std::make_unique<sim::WaitQueue>(Sim);
        while (D.DoneThrough + 1 != Mine)
          Q->wait();
        D.Waiting.erase(Mine);
      }
      runCall(*Call);
      D.DoneThrough = Mine;
      advanceDomain(D);
    });
  }
  LiveCallProcs += D.Running.emplace(Call->CallSeq, P).second;
  trackProcess(std::move(P));
}

void Guardian::advanceDomain(ExecDomain &D) {
  // Cancelled calls never execute their own trailing bookkeeping, so step
  // DoneThrough over any contiguous run of aborted seqs before waking the
  // next gated call.
  while (D.Aborted.erase(D.DoneThrough + 1))
    ++D.DoneThrough;
  auto Next = D.Waiting.find(D.DoneThrough + 1);
  if (Next != D.Waiting.end())
    Next->second->notifyOne();
}

void Guardian::cancelCall(uint64_t Tag, stream::Seq Sq) {
  // The call may never have entered the domain at all (cancelled at
  // delivery inside the transport) — the seq must still be marked settled
  // or its successors would gate on it forever.
  ExecDomain &D = domain(Tag);
  auto RIt = D.Running.find(Sq);
  if (RIt != D.Running.end()) {
    // Tear the call process down through the same machinery as orphan
    // destruction. Erase the Running entry here, not just in the
    // process's cleanup guard: a process killed before its first turn
    // never runs its body, so the guard never fires.
    Sim.kill(RIt->second);
    D.Running.erase(RIt);
    --LiveCallProcs;
  }
  if (!D.Parallel && Sq > D.DoneThrough) {
    D.Aborted.insert(Sq);
    advanceDomain(D);
  }
}

bool Guardian::takeRetryToken(const net::Address &Remote, double Budget) {
  if (Budget <= 0)
    return true;
  auto [It, Inserted] = RetryTokens.try_emplace(Remote, Budget);
  if (It->second < 1.0)
    return false;
  It->second -= 1.0;
  return true;
}

void Guardian::creditRetryToken(const net::Address &Remote, double Budget,
                                double Credit) {
  if (Budget <= 0)
    return;
  auto [It, Inserted] = RetryTokens.try_emplace(Remote, Budget);
  It->second = std::min(Budget, It->second + Credit);
}

void Guardian::noteRetry(stream::AgentId Agent, int Attempt) {
  Retries->inc();
  if (Reg.enabled())
    Reg.emit({Sim.now(), EventKind::CallRetry, Node, Agent,
              static_cast<uint64_t>(Attempt), 0, {}});
}

void Guardian::onStreamDead(uint64_t Tag) {
  // The stream broke or was superseded: destroy its orphaned executions
  // (paper, Section 4.2: the system "will find these computations and
  // destroy them later" — here, promptly). The call that triggered the
  // break may be the current process; it finishes its own cleanup.
  auto It = Domains.find(Tag);
  if (It == Domains.end())
    return;
  sim::Process *Self = sim::Simulation::current();
  for (auto &[Seq, PH] : It->second.Running) {
    if (PH.get() == Self)
      continue;
    OrphansDestroyed->inc();
    if (Reg.enabled())
      Reg.emit({Sim.now(), EventKind::OrphanDestroyed, Node, Tag, Seq, 0, {}});
    Sim.kill(PH);
  }
  // The clear covers every entry — including the current process's, whose
  // cleanup guard will then erase nothing — so the live counter drops by
  // the full map size here, exactly once.
  LiveCallProcs -= It->second.Running.size();
  It->second.Running.clear();
}

void Guardian::runCall(stream::IncomingCall &IC) {
  // "Calls on broken streams are discarded automatically, so user code
  // never needs to deal with them."
  if (Transport->isReceiverBroken(IC.StreamTag))
    return;
  // Deadline check happens at execution start, after any stream-order
  // gating: a call that spent its whole deadline queued behind earlier
  // calls is dropped without running the handler.
  if (IC.DeadlineNs != 0 && Sim.now() >= IC.DeadlineNs) {
    DeadlinesExpired->inc();
    if (Reg.enabled())
      Reg.emit({Sim.now(), EventKind::DeadlineExpired, Node,
                IC.StreamTag, IC.CallSeq, 0, {}});
    IC.Complete(stream::ReplyStatus::Unavailable, 0, {},
                core::reasons::DeadlineExpired);
    return;
  }
  CallsExec->inc();
  auto It = Executors.find(IC.Port);
  if (It == Executors.end()) {
    IC.Complete(stream::ReplyStatus::Failure, 0, {}, "no such port");
    return;
  }
  It->second(IC);
}
