//===- Load.cpp - Open-loop workload generation ----------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/load/Load.h"

#include "promises/apps/KvStore.h"
#include "promises/apps/TwoPhase.h"
#include "promises/chaos/Chaos.h"
#include "promises/runtime/RemoteHandler.h"
#include "promises/storage/Storage.h"
#include "promises/support/Rng.h"
#include "promises/support/StrUtil.h"

#include <algorithm>
#include <cmath>
#include <memory>

using namespace promises;
using namespace promises::load;
using sim::Time;

//===----------------------------------------------------------------------===//
// Scenario catalogue
//===----------------------------------------------------------------------===//

namespace {

LoadScenario steadyScenario() {
  LoadScenario Sc;
  Sc.Name = "steady";
  Sc.Summary = "two compliant tenants (Poisson echo + Pareto put) well "
               "under capacity; the do-no-harm baseline with SLOs on";
  Sc.Servers = 1;
  Sc.Duration = sim::msec(300);
  Sc.ServiceTime = sim::msec(2);
  Sc.MaxPendingCalls = 16; // Capacity 8k cps; offered 3.5k.
  Sc.GoodputFloor = 0.85;  // No storm: both halves must look alike.
  TenantSpec Web;
  Web.Name = "web";
  Web.RateCps = 2000;
  Web.Op = OpKind::Echo;
  Web.Compliant = true;
  Web.SloP99 = sim::msec(5);
  TenantSpec Batch;
  Batch.Name = "batch";
  Batch.RateCps = 1500;
  Batch.Arr = Arrival::Pareto;
  Batch.Op = OpKind::KvPut;
  Batch.Compliant = true;
  Batch.SloP99 = sim::msec(10);
  Sc.Tenants = {Web, Batch};
  return Sc;
}

LoadScenario stormScenario() {
  LoadScenario Sc;
  Sc.Name = "storm";
  Sc.Summary = "the headline overload test: Poisson echo near capacity, "
               "step to 2x at half time; goodput must hold the floor";
  Sc.Servers = 1;
  Sc.Duration = sim::msec(400);
  Sc.ServiceTime = sim::msec(2);
  Sc.MaxPendingCalls = 8; // 8 parallel slots x 2ms => 4k cps capacity.
  Sc.GoodputFloor = 0.7;
  TenantSpec T;
  T.Name = "web";
  T.RateCps = 3000; // 0.75 of capacity base; 1.5x capacity in the storm.
  T.Sh = Shape::Step;
  T.StormFactor = 2.0;
  T.Streams = 8;
  Sc.Tenants = {T};
  return Sc;
}

LoadScenario spikeScenario() {
  LoadScenario Sc;
  Sc.Name = "spike";
  Sc.Summary = "heavy-tailed Pareto arrivals with a 5x flash spike, "
               "deadlines and budgeted retries riding along";
  Sc.Servers = 1;
  Sc.Duration = sim::msec(400);
  Sc.ServiceTime = sim::msec(1);
  Sc.MaxPendingCalls = 8; // Capacity 8k cps.
  Sc.GoodputFloor = 0.7;
  TenantSpec T;
  T.Name = "flash";
  T.RateCps = 2000;
  T.Arr = Arrival::Pareto;
  T.ParetoAlpha = 1.3;
  T.Sh = Shape::Spike;
  T.StormFactor = 5.0;
  T.StormStartFrac = 0.6;
  T.StormEndFrac = 0.75;
  T.Deadline = sim::msec(8);
  T.RetryAttempts = 3;
  T.RetryBudget = 4.0;
  Sc.Tenants = {T};
  return Sc;
}

LoadScenario diurnalScenario() {
  LoadScenario Sc;
  Sc.Name = "diurnal";
  Sc.Summary = "one simulated day: a sinusoidal ramp whose peak exceeds "
               "capacity, so the top of the day sheds and the trough drains";
  Sc.Servers = 1;
  Sc.Duration = sim::msec(400);
  Sc.ServiceTime = sim::msec(2);
  Sc.MaxPendingCalls = 8; // Capacity 4k cps; peak offered 5.4k.
  Sc.GoodputFloor = 0;    // The halves are peak vs trough by design.
  TenantSpec T;
  T.Name = "day";
  T.RateCps = 3000;
  T.Sh = Shape::Diurnal;
  T.DiurnalAmplitude = 0.8;
  T.Streams = 8;
  Sc.Tenants = {T};
  return Sc;
}

LoadScenario tenantsScenario() {
  LoadScenario Sc;
  Sc.Name = "tenants";
  Sc.Summary = "multi-tenant isolation: a noisy tenant storms to 5x while "
               "a compliant tenant must keep its p99 SLO behind the "
               "per-stream quota";
  Sc.Servers = 1;
  Sc.Duration = sim::msec(300);
  Sc.ServiceTime = sim::msec(2);
  Sc.MaxPendingCalls = 24;    // Capacity 12k cps...
  Sc.MaxPendingPerStream = 2; // ...but one stream holds at most 2 slots.
  Sc.GoodputFloor = 0.5;
  TenantSpec Noisy;
  Noisy.Name = "noisy";
  Noisy.RateCps = 1000;
  Noisy.Arr = Arrival::Pareto;
  Noisy.Sh = Shape::Step;
  Noisy.StormFactor = 5.0;
  Noisy.StormStartFrac = 0.4;
  Noisy.Streams = 2; // Quota caps it at 4 concurrent executions.
  TenantSpec Paying;
  Paying.Name = "paying";
  Paying.RateCps = 1500;
  Paying.Streams = 8;
  Paying.Compliant = true;
  Paying.SloP99 = sim::msec(5);
  Paying.SloMultiplier = 3.0;
  Sc.Tenants = {Noisy, Paying};
  return Sc;
}

LoadScenario neworderScenario() {
  LoadScenario Sc;
  Sc.Name = "neworder";
  Sc.Summary = "TPC-C-style new-order: multi-partition two-phase "
               "transactions under a 2.5x storm; commit-side ports ride "
               "priority admission so overload cannot strand locks";
  Sc.Servers = 3;
  Sc.Duration = sim::msec(400);
  Sc.ServiceTime = sim::usec(300);
  Sc.MaxPendingCalls = 24; // Per partition.
  Sc.GoodputFloor = 0.5;
  TenantSpec T;
  T.Name = "orders";
  T.RateCps = 500; // Transactions (not calls) per second.
  T.Sh = Shape::Step;
  T.StormFactor = 2.5;
  T.Op = OpKind::NewOrder;
  Sc.Tenants = {T};
  return Sc;
}

LoadScenario neworderCrashScenario() {
  LoadScenario Sc;
  Sc.Name = "neworder-crash";
  Sc.Summary = "durable new-order under a crash storm: WAL-backed "
               "partitions, presumed-abort 2PC, media faults at every "
               "crash; the durability battery audits the logs offline";
  Sc.Servers = 3;
  Sc.Duration = sim::msec(500);
  Sc.ServiceTime = sim::usec(300);
  Sc.MaxPendingCalls = 24;
  Sc.GoodputFloor = 0; // Crashes dominate goodput; the battery gates.
  Sc.Chaos = true;
  Sc.ChaosProfile = "crashes";
  Sc.Storage = true;
  TenantSpec T;
  T.Name = "orders";
  T.RateCps = 300;
  T.Sh = Shape::Step;
  T.StormFactor = 2.0;
  T.Op = OpKind::NewOrder;
  Sc.Tenants = {T};
  return Sc;
}

LoadScenario chaosStormScenario() {
  LoadScenario Sc;
  Sc.Name = "chaos-storm";
  Sc.Summary = "the PR 3/5 chaos battery during a storm: crashes, "
               "partitions and loss bursts while offered load doubles, "
               "with deadlines, retries and breakers on";
  Sc.Servers = 2;
  Sc.Duration = sim::msec(500);
  Sc.ServiceTime = sim::usec(500);
  Sc.MaxPendingCalls = 16;
  Sc.BreakerThreshold = 2;
  Sc.BreakerCooldown = sim::msec(8);
  Sc.GoodputFloor = 0; // Faults dominate goodput; the battery gates.
  Sc.Chaos = true;
  TenantSpec T;
  T.Name = "web";
  T.RateCps = 4000;
  T.Sh = Shape::Step;
  T.StormFactor = 2.0;
  T.Deadline = sim::msec(10);
  T.RetryAttempts = 3;
  T.RetryBudget = 8.0;
  Sc.Tenants = {T};
  return Sc;
}

} // namespace

const std::vector<LoadScenario> &LoadScenario::all() {
  static const std::vector<LoadScenario> Sc = {
      steadyScenario(),        stormScenario(),   spikeScenario(),
      diurnalScenario(),       tenantsScenario(), neworderScenario(),
      neworderCrashScenario(), chaosStormScenario()};
  return Sc;
}

const LoadScenario *LoadScenario::byName(std::string_view Name) {
  for (const LoadScenario &Sc : all())
    if (Sc.Name == Name)
      return &Sc;
  return nullptr;
}

std::vector<std::string> LoadScenario::names() {
  std::vector<std::string> N;
  for (const LoadScenario &Sc : all())
    N.push_back(Sc.Name);
  return N;
}

//===----------------------------------------------------------------------===//
// The world
//===----------------------------------------------------------------------===//

namespace {

uint64_t mixSeed(uint64_t Seed, uint64_t Salt) {
  uint64_t X = Seed + 0x9e3779b97f4a7c15ull * (Salt + 1);
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

uint64_t fnv1a(uint64_t H, uint64_t V) {
  for (int I = 0; I != 8; ++I) {
    H ^= (V >> (I * 8)) & 0xff;
    H *= 0x100000001b3ull;
  }
  return H;
}

/// One server identity: a node hosting a succession of guardian
/// incarnations (chaos can crash/reincarnate them). Old incarnations are
/// kept for the quiescence audit.
struct ServerSlot {
  net::NodeId Node = 0;
  runtime::Guardian *Current = nullptr;
  apps::KvStore Kv;
  apps::TxnKv Txn;
  bool TransportDead = false;
  /// Durable runs only: the slot's media, owned by the *node*, not the
  /// incarnation — a restarted guardian replays them before serving.
  std::unique_ptr<storage::StableStore> KvWal;
  std::unique_ptr<storage::StableStore> TxnWal;
};

/// Per-tenant mutable tallies plus the registry instruments they feed
/// (docs/OBSERVABILITY.md: the load.* family, labelled {tenant=...}).
struct Tally {
  TenantReport R;
  Counter *COffered = nullptr;
  Counter *CNormal = nullptr;
  Counter *CShed = nullptr;
  Counter *CFastFail = nullptr;
  Counter *CExpired = nullptr;
  Histogram *LatUs = nullptr;
};

struct World {
  explicit World(const LoadOptions &Opt);

  void installServer(size_t Slot);
  void applyAction(const chaos::ChaosAction &A);
  double shapeFactor(const TenantSpec &T, Time Now) const;
  void runArrivals(size_t TIdx);
  void runEcho(size_t TIdx, uint64_t Seq, size_t Lane, Time ArrivedAt);
  void runNewOrder(size_t TIdx, uint64_t Seq, Time ArrivedAt);
  void recordNormal(size_t TIdx, Time ArrivedAt, Time T0);
  void recordUnavailable(size_t TIdx, const std::string &Why);
  LoadReport finish();

  Time splitAt() const {
    return static_cast<Time>(static_cast<double>(Duration) *
                             O.Scenario.SplitFrac);
  }

  LoadOptions O;
  Time Duration; ///< Scenario duration after DurationScale.
  bool UseStorage;
  double TornRate, LostRate;
  sim::Simulation S;
  std::unique_ptr<net::SimNetwork> Net;
  std::vector<ServerSlot> Slots;
  std::vector<net::NodeId> ClientNodes; ///< One per tenant.
  std::vector<std::unique_ptr<runtime::Guardian>> ServerGuardians;
  std::vector<std::unique_ptr<runtime::Guardian>> ClientGuardians;
  std::vector<std::vector<stream::AgentId>> Lanes; ///< [tenant][srv*Streams+i]
  std::vector<Tally> Tallies;
  /// Durable runs: one coordinator kit per NewOrder tenant, living on
  /// the tenant's client guardian (client nodes never crash here, so
  /// each kit has exactly one incarnation). CoordId = tenant index.
  std::vector<std::unique_ptr<storage::StableStore>> CoordWals;
  std::vector<apps::TwoPhaseCoordinatorKit> Kits;
  Histogram *GlobalLat = nullptr;
  chaos::ChaosPlan Plan; ///< Empty unless Scenario.Chaos.
  uint32_t NextGen = 0;
  LoadReport Report;
};

stream::StreamConfig loadStreamConfig(const LoadScenario &Sc, uint64_t Seed,
                                      uint64_t Salt) {
  stream::StreamConfig C;
  if (Sc.Chaos) {
    // Chaos-tightened recovery, as in the chaos harness: breaks land
    // within a fault outage instead of dominating the run.
    C.MaxBatchCalls = 8;
    C.RetransmitTimeout = sim::msec(6);
    C.RetransmitTimeoutMax = sim::msec(30);
    C.MaxRetries = 3;
  }
  // MaxInFlightCalls stays 0 (unbounded): the generator is open-loop, so
  // client-side flow control would silently convert overload into sender
  // queueing and hide the server's shedding behavior.
  C.RetransSeed = mixSeed(Seed, Salt);
  return C;
}

World::World(const LoadOptions &Opt)
    : O(Opt),
      Duration(static_cast<Time>(
          static_cast<double>(Opt.Scenario.Duration) * Opt.DurationScale)),
      UseStorage(Opt.Scenario.Storage || Opt.ForceStorage),
      TornRate(Opt.TornRate >= 0 ? Opt.TornRate : Opt.Scenario.TornRate),
      LostRate(Opt.LostRate >= 0 ? Opt.LostRate : Opt.Scenario.LostRate),
      S(sim::SimConfig{.Backend = Opt.Backend}) {
  const LoadScenario &Sc = O.Scenario;
  // The trace-event stream is the determinism oracle; always record it.
  S.metrics().setEnabled(true);
  GlobalLat = &S.metrics().histogram("load.latency_us");

  net::NetConfig NC;
  NC.Seed = mixSeed(O.Seed, 0);
  if (Sc.Chaos) {
    const chaos::ChaosProfile *P = chaos::ChaosProfile::byName(Sc.ChaosProfile);
    if (!P)
      P = &chaos::ChaosProfile::mixed();
    NC.LossRate = P->BaseLoss;
    NC.DupRate = P->BaseDup;
    NC.JitterMax = P->BaseJitter;
    NC.Propagation = sim::msec(1);
  } else {
    // Clean wire: losses would blur the cheap-rejection conservation
    // checks, and the point of the non-chaos scenarios is overload alone.
    NC.Propagation = sim::usec(200);
  }
  Net = std::make_unique<net::SimNetwork>(S, NC);

  Slots.resize(Sc.Servers);
  for (size_t I = 0; I != Sc.Servers; ++I)
    Slots[I].Node = Net->addNode(strprintf("srv%zu", I));
  for (size_t I = 0; I != Sc.Tenants.size(); ++I)
    ClientNodes.push_back(Net->addNode(strprintf("cli%zu", I)));
  if (UseStorage) {
    for (size_t I = 0; I != Sc.Servers; ++I) {
      storage::StorageConfig KC;
      KC.Name = strprintf("srv%zu.kv", I);
      KC.Faults = {LostRate, TornRate, mixSeed(O.Seed, 7000 + I)};
      Slots[I].KvWal = std::make_unique<storage::StableStore>(S, KC);
      storage::StorageConfig TC;
      TC.Name = strprintf("srv%zu.txn", I);
      TC.Faults = {LostRate, TornRate, mixSeed(O.Seed, 7100 + I)};
      Slots[I].TxnWal = std::make_unique<storage::StableStore>(S, TC);
    }
    CoordWals.resize(Sc.Tenants.size());
    Kits.resize(Sc.Tenants.size());
  }
  for (size_t I = 0; I != Sc.Servers; ++I)
    installServer(I);

  if (Sc.MaxPendingCalls != 0 && Sc.ServiceTime != 0)
    Report.CapacityCps = static_cast<double>(Sc.MaxPendingCalls) * 1e9 *
                         static_cast<double>(Sc.Servers) /
                         static_cast<double>(Sc.ServiceTime);

  Tallies.resize(Sc.Tenants.size());
  Lanes.resize(Sc.Tenants.size());
  for (size_t T = 0; T != Sc.Tenants.size(); ++T) {
    const TenantSpec &Ten = Sc.Tenants[T];
    Tally &Ta = Tallies[T];
    Ta.R.Name = Ten.Name;
    MetricLabels L{{"tenant", Ten.Name}};
    Ta.COffered = &S.metrics().counter("load.offered", L);
    Ta.CNormal = &S.metrics().counter("load.normal", L);
    Ta.CShed = &S.metrics().counter("load.shed", L);
    Ta.CFastFail = &S.metrics().counter("load.fast_failed", L);
    Ta.CExpired = &S.metrics().counter("load.expired", L);
    Ta.LatUs = &S.metrics().histogram("load.latency_us", L);

    runtime::GuardianConfig GC;
    GC.Stream = loadStreamConfig(Sc, O.Seed, 1000 + T);
    if (Sc.BreakerThreshold > 0) {
      GC.Stream.BreakerThreshold = Sc.BreakerThreshold;
      GC.Stream.BreakerCooldown = Sc.BreakerCooldown;
    }
    ClientGuardians.push_back(std::make_unique<runtime::Guardian>(
        *Net, ClientNodes[T], strprintf("cli-%s", Ten.Name.c_str()), GC));
    if (UseStorage && Ten.Op == OpKind::NewOrder) {
      storage::StorageConfig CC;
      CC.Name = strprintf("coord%zu", T);
      // Client nodes never crash in load plans; the kit's media only
      // needs to exist so decisions are forced before phase 2.
      CC.Faults = {0.0, 0.0, mixSeed(O.Seed, 7200 + T)};
      CoordWals[T] = std::make_unique<storage::StableStore>(S, CC);
      Kits[T] = apps::installTwoPhaseCoordinator(*ClientGuardians[T],
                                                 *CoordWals[T], T);
    }
    for (size_t Srv = 0; Srv != Sc.Servers; ++Srv)
      for (size_t I = 0; I != std::max<size_t>(1, Ten.Streams); ++I)
        Lanes[T].push_back(ClientGuardians[T]->newAgent());
    ClientGuardians[T]->spawnProcess("arrivals",
                                    [this, T] { runArrivals(T); });
  }

  if (Sc.Chaos) {
    chaos::ChaosOptions CO;
    CO.Seed = O.Seed;
    const chaos::ChaosProfile *P = chaos::ChaosProfile::byName(Sc.ChaosProfile);
    CO.Profile = P ? *P : chaos::ChaosProfile::mixed();
    CO.Clients = Sc.Tenants.size();
    CO.Servers = Sc.Servers;
    // Faults stop (and the cleanup phase heals everything) well before
    // arrivals do, so the run always drains.
    CO.Horizon = Duration / 2;
    Plan = chaos::ChaosPlan::generate(CO);
    for (const chaos::ChaosAction &A : Plan.Actions)
      S.schedule(A.At, [this, A] { applyAction(A); });
  }
}

void World::installServer(size_t Slot) {
  ServerSlot &SS = Slots[Slot];
  // The dying incarnation's resolver tallies would vanish with it;
  // accumulate them before the new incarnation replaces the state.
  if (UseStorage && SS.Txn.Store) {
    Report.InDoubtRecovered += SS.Txn.Store->InDoubtRecovered;
    Report.ResolvedCommits += SS.Txn.Store->ResolvedCommits;
    Report.ResolvedAborts += SS.Txn.Store->ResolvedAborts;
  }
  uint32_t Gen = ++NextGen;
  const LoadScenario &Sc = O.Scenario;
  runtime::GuardianConfig GC;
  GC.Stream = loadStreamConfig(Sc, O.Seed, 2000 + Gen);
  GC.MaxPendingCalls = Sc.MaxPendingCalls;
  GC.MaxPendingPerStream = Sc.MaxPendingPerStream;
  auto G = std::make_unique<runtime::Guardian>(
      *Net, SS.Node, strprintf("srv%zu#%u", Slot, Gen), GC);
  // The service ports run in parallel (the paper's explicit override):
  // MaxPendingCalls then bounds *concurrency*, so the guardian is an
  // N-slot loss system with capacity MaxPendingCalls / ServiceTime.
  G->setParallelGroup(runtime::Guardian::DefaultGroup);
  apps::KvStoreConfig KvC;
  KvC.ServiceTime = Sc.ServiceTime;
  apps::TxnKvConfig TxC;
  TxC.ServiceTime = Sc.ServiceTime;
  if (UseStorage) {
    KvC.Wal = SS.KvWal.get();
    TxC.Wal = SS.TxnWal.get();
    // One status probe: route by the gtid's coordinator id to the owning
    // tenant's kit, called from this incarnation over a fresh lane.
    TxC.QueryStatus = [this, GP = G.get()](uint64_t Gtid) -> int {
      size_t Cid = static_cast<size_t>(
          apps::TwoPhaseCoordinatorKit::State::coordOf(Gtid));
      if (Cid >= Kits.size() || !Kits[Cid].St)
        return -1;
      auto H = runtime::bindHandler(*GP, GP->newAgent(),
                                    Kits[Cid].StatusPort);
      auto Out = H.call(Gtid);
      return Out.isNormal() ? static_cast<int>(Out.value()) : -1;
    };
  }
  SS.Kv = apps::installKvStore(*G, KvC);
  SS.Txn = apps::installTxnKv(*G, TxC);
  SS.Current = G.get();
  SS.TransportDead = false;
  ServerGuardians.push_back(std::move(G));
}

void World::applyAction(const chaos::ChaosAction &A) {
  using K = chaos::ChaosAction::Kind;
  ServerSlot &SS = Slots[A.Server];
  switch (A.K) {
  case K::CrashNode:
    if (Net->isUp(SS.Node)) {
      Net->crash(SS.Node);
      if (SS.KvWal)
        SS.KvWal->crash();
      if (SS.TxnWal)
        SS.TxnWal->crash();
      ++Report.Crashes;
    }
    break;
  case K::RestartNode:
    if (!Net->isUp(SS.Node)) {
      Net->restart(SS.Node);
      installServer(A.Server);
      ++Report.Restarts;
    }
    break;
  case K::TransportShutdown:
    if (Net->isUp(SS.Node) && !SS.TransportDead && !SS.Current->crashed()) {
      SS.Current->transport().shutdown();
      SS.TransportDead = true;
      ++Report.Shutdowns;
    }
    break;
  case K::ServerReincarnate:
    if (Net->isUp(SS.Node) && SS.TransportDead) {
      installServer(A.Server);
      ++Report.Reincarnations;
    }
    break;
  case K::PartitionLink:
    Net->setPartitioned(ClientNodes[A.Client], SS.Node, true);
    ++Report.Partitions;
    break;
  case K::HealLink:
    Net->setPartitioned(ClientNodes[A.Client], SS.Node, false);
    break;
  case K::LossBurstStart:
    Net->setLinkLoss(ClientNodes[A.Client], SS.Node, A.Rate);
    ++Report.LossBursts;
    break;
  case K::LossBurstEnd:
    Net->setLinkLoss(ClientNodes[A.Client], SS.Node, A.Rate);
    break;
  case K::CorruptBurstStart:
  case K::CorruptBurstEnd:
    Net->setCorruptRate(A.Rate); // Not planned here (Corrupt is off).
    break;
  }
}

double World::shapeFactor(const TenantSpec &T, Time Now) const {
  double Frac = static_cast<double>(Now) / static_cast<double>(Duration);
  switch (T.Sh) {
  case Shape::Steady:
    return 1.0;
  case Shape::Diurnal:
    return std::max(
        0.0, 1.0 + T.DiurnalAmplitude * std::sin(2.0 * M_PI * Frac));
  case Shape::Step:
  case Shape::Spike:
    return Frac >= T.StormStartFrac && Frac < T.StormEndFrac ? T.StormFactor
                                                             : 1.0;
  }
  return 1.0;
}

void World::runArrivals(size_t TIdx) {
  const TenantSpec &T = O.Scenario.Tenants[TIdx];
  Tally &Ta = Tallies[TIdx];
  Rng R(mixSeed(O.Seed, 100 + TIdx));
  double Rate = T.RateCps * O.RateScale; // Mean arrivals/sec at factor 1.
  double PeakFactor = 1.0;
  switch (T.Sh) {
  case Shape::Steady:
    break;
  case Shape::Diurnal:
    PeakFactor = 1.0 + T.DiurnalAmplitude;
    break;
  case Shape::Step:
  case Shape::Spike:
    PeakFactor = std::max(1.0, T.StormFactor);
    break;
  }
  double Peak = Rate * PeakFactor; // Generator rate before thinning.
  uint64_t Seq = 0;

  for (;;) {
    // Draw the next inter-arrival gap at the peak rate...
    double U = std::clamp(R.unit(), 1e-12, 1.0 - 1e-12);
    double GapSec;
    if (T.Arr == Arrival::Poisson) {
      GapSec = -std::log(1.0 - U) / Peak;
    } else {
      // Bounded Pareto with mean 1/Peak: xm = (a-1)/(a*Peak), capped at
      // 1000 mean gaps so one draw cannot swallow the whole run.
      double Alpha = std::max(1.05, T.ParetoAlpha);
      double Xm = (Alpha - 1.0) / (Alpha * Peak);
      GapSec = std::min(Xm / std::pow(U, 1.0 / Alpha), 1000.0 / Peak);
    }
    S.sleep(std::max<Time>(1, static_cast<Time>(GapSec * 1e9)));
    Time Now = S.now();
    if (Now >= Duration)
      return;
    // ...then thin it down to the shaped rate (Lewis-Shedler): accept
    // with probability rate(now)/Peak. The generator never looks at
    // outcomes — that is what keeps the loop open.
    if (R.unit() * Peak >= shapeFactor(T, Now) * Rate)
      continue;

    ++Seq;
    ++Ta.R.Offered;
    Ta.COffered->inc();
    if (Now < splitAt())
      ++Ta.R.BaseOffered;
    else
      ++Ta.R.OverOffered;

    if (T.Op == OpKind::NewOrder) {
      uint64_t MySeq = Seq;
      ClientGuardians[TIdx]->spawnProcess(
          strprintf("txn%llu", static_cast<unsigned long long>(Seq)),
          [this, TIdx, MySeq, Now] { runNewOrder(TIdx, MySeq, Now); });
    } else {
      size_t Lane = R.below(Lanes[TIdx].size());
      uint64_t MySeq = Seq;
      ClientGuardians[TIdx]->spawnProcess(
          strprintf("call%llu", static_cast<unsigned long long>(Seq)),
          [this, TIdx, MySeq, Lane, Now] {
            runEcho(TIdx, MySeq, Lane, Now);
          });
    }
  }
}

void World::recordNormal(size_t TIdx, Time ArrivedAt, Time T0) {
  Tally &Ta = Tallies[TIdx];
  ++Ta.R.Completed;
  ++Ta.R.Normal;
  Ta.CNormal->inc();
  if (ArrivedAt < splitAt())
    ++Ta.R.BaseNormal;
  else
    ++Ta.R.OverNormal;
  double Us = static_cast<double>(S.now() - T0) / 1000.0;
  Ta.LatUs->observe(Us);
  GlobalLat->observe(Us);
}

void World::recordUnavailable(size_t TIdx, const std::string &Why) {
  Tally &Ta = Tallies[TIdx];
  ++Ta.R.Completed;
  if (Why == core::reasons::Overloaded) {
    ++Ta.R.Shed;
    Ta.CShed->inc();
  } else if (Why == core::reasons::CircuitOpen) {
    ++Ta.R.FastFails;
    Ta.CFastFail->inc();
  } else if (Why == core::reasons::DeadlineExpired) {
    ++Ta.R.Expired;
    Ta.CExpired->inc();
  } else {
    ++Ta.R.OtherUnavailable;
  }
}

void World::runEcho(size_t TIdx, uint64_t Seq, size_t Lane, Time ArrivedAt) {
  const TenantSpec &T = O.Scenario.Tenants[TIdx];
  size_t Streams = std::max<size_t>(1, T.Streams);
  size_t Srv = Lane / Streams;
  ServerSlot &SS = Slots[Srv];
  Tally &Ta = Tallies[TIdx];
  Time T0 = S.now();

  auto configure = [&](auto &H) -> auto & {
    if (T.Deadline != 0)
      H.withDeadline(T.Deadline);
    if (T.RetryAttempts > 1) {
      runtime::RetryPolicy RP;
      RP.MaxAttempts = T.RetryAttempts;
      RP.Backoff = T.RetryBackoff;
      RP.BackoffMax = T.RetryBackoff * 8;
      RP.Budget = T.RetryBudget;
      RP.BudgetCredit = T.RetryCredit;
      // Echo and put are idempotent by construction.
      H.withRetryPolicy(RP).declareIdempotent();
    }
    return H;
  };
  auto tallyOutcome = [&](const auto &Out) {
    if (Out.isNormal()) {
      recordNormal(TIdx, ArrivedAt, T0);
    } else if (Out.template is<core::Unavailable>()) {
      recordUnavailable(TIdx,
                        Out.template get<core::Unavailable>().Reason);
    } else if (Out.template is<core::Failure>()) {
      ++Ta.R.Completed;
      ++Ta.R.Failed;
    } else {
      ++Ta.R.Completed;
      ++Ta.R.ExceptionReplies;
    }
  };

  if (T.Op == OpKind::KvPut) {
    auto H = runtime::bindHandler(*ClientGuardians[TIdx],
                                  Lanes[TIdx][Lane], SS.Kv.Put);
    tallyOutcome(configure(H).call(
        strprintf("k%llu", static_cast<unsigned long long>(Seq % 1024)),
        strprintf("v%llu", static_cast<unsigned long long>(Seq))));
  } else {
    auto H = runtime::bindHandler(*ClientGuardians[TIdx],
                                  Lanes[TIdx][Lane], SS.Kv.Echo);
    tallyOutcome(configure(H).call(
        strprintf("p%llu", static_cast<unsigned long long>(Seq))));
  }
}

void World::runNewOrder(size_t TIdx, uint64_t Seq, Time ArrivedAt) {
  const LoadScenario &Sc = O.Scenario;
  Tally &Ta = Tallies[TIdx];
  Time T0 = S.now();

  // One new-order transaction: stage a handful of writes spread over
  // every partition (item lines + the order row), then two-phase commit
  // across all of them, the coordinator fanning out from this process.
  apps::TwoPhaseCoordinator Txn(*ClientGuardians[TIdx],
                                UseStorage ? &Kits[TIdx] : nullptr);
  for (size_t Srv = 0; Srv != Sc.Servers; ++Srv)
    Txn.enlist(Slots[Srv].Txn);
  size_t Puts = std::max<size_t>(4, Sc.Servers);
  for (size_t I = 0; I != Puts; ++I) {
    size_t Part = (Seq + I) % Sc.Servers;
    // A modest keyspace per partition so concurrent transactions contend
    // for locks occasionally (aborts are part of the workload).
    Txn.put(Part,
            strprintf("w%llu",
                      static_cast<unsigned long long>((Seq * 7 + I) % 997)),
            strprintf("o%llu", static_cast<unsigned long long>(Seq)));
    if (Txn.doomed())
      break;
  }
  switch (Txn.commit()) {
  case apps::TwoPhaseResult::Committed:
    recordNormal(TIdx, ArrivedAt, T0);
    break;
  case apps::TwoPhaseResult::Aborted:
    ++Ta.R.Completed;
    ++Ta.R.TxnAborted;
    break;
  case apps::TwoPhaseResult::InDoubt:
    ++Ta.R.Completed;
    ++Ta.R.TxnInDoubt;
    break;
  }
}

//===----------------------------------------------------------------------===//
// The graceful-degradation battery
//===----------------------------------------------------------------------===//

LoadReport World::finish() {
  const LoadScenario &Sc = O.Scenario;
  LoadReport &Rep = Report;
  Rep.VirtualEnd = S.now();

  auto violate = [&](std::string Msg) {
    Rep.Violations.push_back(std::move(Msg));
  };

  // 1. Quiescence: the scheduler drained, so any live process is stuck
  // forever. This is the regression gate for the shed->DoneThrough hang
  // class: a shed call that fails to settle its seq leaves every
  // successor on its stream gated for good.
  if (size_t N = S.liveProcessCount())
    violate(strprintf("%zu processes still live at quiescence", N));

  // 2. Network conservation.
  net::NetCounters NC = Net->counters();
  if (NC.DatagramsSent + NC.DatagramsDuplicated !=
      NC.DatagramsDelivered + NC.DatagramsDropped)
    violate(strprintf("net conservation: %llu sent + %llu dup != %llu "
                      "delivered + %llu dropped",
                      (unsigned long long)NC.DatagramsSent,
                      (unsigned long long)NC.DatagramsDuplicated,
                      (unsigned long long)NC.DatagramsDelivered,
                      (unsigned long long)NC.DatagramsDropped));

  // 3. Per-transport conservation and hygiene, clients and every server
  // incarnation alike (the PR 3/5 audit, here under storm load).
  auto audit = [&](const std::string &Who, runtime::Guardian &G,
                   bool CanLoseCalls) {
    stream::StreamCounters C = G.transport().counters();
    // Durable servers issue status probes, and a node crash kills a
    // prober mid-call, leaving that call permanently unsettled in the
    // (node, port)-keyed counters its successors share. For those,
    // conservation relaxes to a bound; clients must balance exactly.
    if (CanLoseCalls ? C.CallsFulfilled + C.CallsBroken > C.CallsIssued
                     : C.CallsIssued != C.CallsFulfilled + C.CallsBroken)
      violate(strprintf("%s: %llu issued != %llu fulfilled + %llu broken",
                        Who.c_str(), (unsigned long long)C.CallsIssued,
                        (unsigned long long)C.CallsFulfilled,
                        (unsigned long long)C.CallsBroken));
    if (size_t N = G.transport().armedTimerCount())
      violate(strprintf("%s: %zu timers still armed", Who.c_str(), N));
    if (size_t N = G.transport().brokenSenderStreamCount())
      violate(strprintf("%s: %zu broken sender streams not reclaimed",
                        Who.c_str(), N));
    if (size_t N = G.liveCallProcessCount())
      violate(strprintf("%s: %zu call processes leaked", Who.c_str(), N));
    if (size_t N = G.gatedCallCount())
      violate(strprintf("%s: %zu gated calls leaked", Who.c_str(), N));
  };
  for (size_t T = 0; T != ClientGuardians.size(); ++T)
    audit(strprintf("cli-%s", Sc.Tenants[T].Name.c_str()),
          *ClientGuardians[T], false);
  for (auto &G : ServerGuardians)
    audit(G->name(), *G, UseStorage);

  // Server-side aggregates.
  for (auto &G : ServerGuardians) {
    Rep.Executions += G->callsExecuted();
    Rep.ServerShed += G->callsShed();
    Rep.ServerExpired += G->deadlinesExpired();
  }
  uint64_t ShedEvents = 0;
  for (const TraceEvent &E : S.metrics().events())
    if (E.Kind == EventKind::CallShed)
      ++ShedEvents;

  // 4. Per-tenant accounting, retry-budget bounds, and breaker bounds.
  double SplitSec = static_cast<double>(splitAt()) / 1e9;
  double OverSec = static_cast<double>(Duration) / 1e9 - SplitSec;
  for (size_t T = 0; T != Sc.Tenants.size(); ++T) {
    const TenantSpec &Ten = Sc.Tenants[T];
    TenantReport &R = Tallies[T].R;
    R.Retries = ClientGuardians[T]->retriesIssued();

    // Every arrival resolves to exactly one tallied outcome.
    if (R.Completed != R.Offered)
      violate(strprintf("%s: %llu offered != %llu completed",
                        Ten.Name.c_str(), (unsigned long long)R.Offered,
                        (unsigned long long)R.Completed));
    if (R.Normal + R.Shed + R.FastFails + R.Expired + R.OtherUnavailable +
            R.Failed + R.ExceptionReplies + R.TxnAborted + R.TxnInDoubt !=
        R.Completed)
      violate(strprintf("%s: outcome split does not sum to %llu completed",
                        Ten.Name.c_str(),
                        (unsigned long long)R.Completed));

    // Retry volume bounded by the budget: every retry takes a token;
    // tokens come from the initial per-endpoint bucket (one per server
    // incarnation at worst), success credits, and fast-fail refunds.
    if (Ten.RetryAttempts > 1) {
      double Bound =
          static_cast<double>(ServerGuardians.size()) * Ten.RetryBudget +
          Ten.RetryCredit * static_cast<double>(R.Normal) +
          static_cast<double>(R.FastFails) + 1.0;
      if (static_cast<double>(R.Retries) > Bound)
        violate(strprintf("%s: %llu retries exceed the budget bound %.1f",
                          Ten.Name.c_str(), (unsigned long long)R.Retries,
                          Bound));
    } else if (R.Retries != 0) {
      violate(strprintf("%s: %llu retries issued with retries disabled",
                        Ten.Name.c_str(), (unsigned long long)R.Retries));
    }

    // Breaker accounting: probes are the bounded trickle — at most one
    // per open plus the fast-fails that kept it open; closes only follow
    // opens; and with no breaker configured nothing may fire.
    stream::StreamCounters C = ClientGuardians[T]->transport().counters();
    if (C.BreakerProbes > C.BreakerOpens + C.BreakerFastFails)
      violate(strprintf("%s: %llu probes > %llu opens + %llu fast-fails",
                        Ten.Name.c_str(), (unsigned long long)C.BreakerProbes,
                        (unsigned long long)C.BreakerOpens,
                        (unsigned long long)C.BreakerFastFails));
    if (C.BreakerCloses > C.BreakerOpens)
      violate(strprintf("%s: %llu breaker closes > %llu opens",
                        Ten.Name.c_str(), (unsigned long long)C.BreakerCloses,
                        (unsigned long long)C.BreakerOpens));
    if (Sc.BreakerThreshold == 0 &&
        (C.BreakerOpens | C.BreakerFastFails | C.BreakerProbes))
      violate(strprintf("%s: breaker fired with no breaker configured",
                        Ten.Name.c_str()));

    // Reduce.
    R.GoodputCps = static_cast<double>(R.Normal) /
                   (static_cast<double>(Duration) / 1e9);
    R.P50Us = Tallies[T].LatUs->percentile(50);
    R.P99Us = Tallies[T].LatUs->percentile(99);
    R.P999Us = Tallies[T].LatUs->percentile(99.9);
    Rep.Offered += R.Offered;
    Rep.Completed += R.Completed;
    Rep.Normal += R.Normal;
    Rep.Shed += R.Shed;
    Rep.FastFails += R.FastFails;
    Rep.Expired += R.Expired;
    Rep.Retries += R.Retries;
    Rep.BaseGoodputCps += SplitSec > 0
                              ? static_cast<double>(R.BaseNormal) / SplitSec
                              : 0;
    Rep.OverGoodputCps +=
        OverSec > 0 ? static_cast<double>(R.OverNormal) / OverSec : 0;
  }
  Rep.GoodputRatio =
      Rep.BaseGoodputCps > 0 ? Rep.OverGoodputCps / Rep.BaseGoodputCps : 0;
  Rep.P50Us = GlobalLat->percentile(50);
  Rep.P99Us = GlobalLat->percentile(99);
  Rep.P999Us = GlobalLat->percentile(99.9);

  // 5. Client-observed sheds are bounded by server sheds (a shed reply
  // can be lost, and a retried shed tallies once client-side).
  if (Rep.Shed > Rep.ServerShed)
    violate(strprintf("%llu client-observed sheds > %llu server sheds",
                      (unsigned long long)Rep.Shed,
                      (unsigned long long)Rep.ServerShed));

  if (!Sc.Chaos) {
    // 6. Cheap rejection: on a clean wire every delivered call either
    // executed, was shed before execution, or was dropped at its deadline
    // — sheds never consume an execution slot, and the counter, the trace
    // stream, and the transports all agree. With wire deadlines in play
    // the sender also cancels delivered-but-unstarted calls, so the
    // identity relaxes to a bound.
    uint64_t Delivered = 0;
    bool AnyDeadline = false;
    for (auto &G : ServerGuardians)
      Delivered += G->transport().counters().CallsDelivered;
    for (const TenantSpec &Ten : Sc.Tenants)
      AnyDeadline |= Ten.Deadline != 0;
    uint64_t Settled = Rep.Executions + Rep.ServerShed + Rep.ServerExpired;
    if (AnyDeadline ? Settled > Delivered : Settled != Delivered)
      violate(strprintf("cheap rejection: %llu delivered vs %llu executed "
                        "+ %llu shed + %llu expired",
                        (unsigned long long)Delivered,
                        (unsigned long long)Rep.Executions,
                        (unsigned long long)Rep.ServerShed,
                        (unsigned long long)Rep.ServerExpired));
    if (ShedEvents != Rep.ServerShed)
      violate(strprintf("%llu call.shed trace events != %llu counted sheds",
                        (unsigned long long)ShedEvents,
                        (unsigned long long)Rep.ServerShed));

    // 7. Graceful degradation: overload-window goodput holds the floor.
    if (Sc.GoodputFloor > 0) {
      if (Rep.BaseGoodputCps <= 0)
        violate("goodput floor set but base-window goodput is zero");
      else if (Rep.GoodputRatio < Sc.GoodputFloor)
        violate(strprintf("goodput collapse: overload/base ratio %.3f "
                          "below floor %.3f (%.0f -> %.0f cps)",
                          Rep.GoodputRatio, Sc.GoodputFloor,
                          Rep.BaseGoodputCps, Rep.OverGoodputCps));
    }

    // 8. Tenant isolation: compliant tenants keep their p99 SLO and are
    // not starved, whatever the other tenants are doing.
    for (size_t T = 0; T != Sc.Tenants.size(); ++T) {
      const TenantSpec &Ten = Sc.Tenants[T];
      if (!Ten.Compliant)
        continue;
      TenantReport &R = Tallies[T].R;
      R.SloChecked = true;
      double SloUs = static_cast<double>(Ten.SloP99) / 1000.0;
      if (R.P99Us > Ten.SloMultiplier * SloUs) {
        R.SloOk = false;
        violate(strprintf("%s: p99 %.0fus breaches SLO %.0fus x %.1f",
                          Ten.Name.c_str(), R.P99Us, SloUs,
                          Ten.SloMultiplier));
      }
      if (static_cast<double>(R.Normal) <
          0.9 * static_cast<double>(R.Completed))
        violate(strprintf("%s: compliant tenant starved: %llu/%llu normal",
                          Ten.Name.c_str(), (unsigned long long)R.Normal,
                          (unsigned long long)R.Completed));
    }

    // 9. Transactional hygiene: after the storm no partition may hold
    // leftover transactions or locks (priority admission for
    // prepare/commit/abort is what makes this hold under overload), and
    // commit accounting is exact on a clean wire.
    bool AnyTxn = false;
    for (const TenantSpec &Ten : Sc.Tenants)
      AnyTxn |= Ten.Op == OpKind::NewOrder;
    if (AnyTxn) {
      uint64_t Commits = 0, InDoubt = 0, Committed = 0;
      for (size_t Srv = 0; Srv != Sc.Servers; ++Srv) {
        const auto &St = *Slots[Srv].Txn.Store;
        if (!St.Txns.empty())
          violate(strprintf("srv%zu: %zu transactions stranded", Srv,
                            St.Txns.size()));
        if (!St.Locks.empty())
          violate(strprintf("srv%zu: %zu locks stranded", Srv,
                            St.Locks.size()));
        Commits += St.Commits;
      }
      for (const Tally &Ta : Tallies) {
        Committed += Ta.R.Normal;
        InDoubt += Ta.R.TxnInDoubt;
      }
      if (InDoubt != 0)
        violate(strprintf("%llu transactions in doubt on a clean wire",
                          (unsigned long long)InDoubt));
      if (Commits != Committed * Sc.Servers)
        violate(strprintf("commit conservation: %llu participant commits "
                          "!= %llu committed x %zu partitions",
                          (unsigned long long)Commits,
                          (unsigned long long)Committed, Sc.Servers));
    }
  }

  // 9b. Durability battery (durable runs; chaos does not exempt it): the
  // media alone must reconstruct exactly the surviving state, every
  // durably committed transaction must be applied on every partition,
  // and no prepared lock may outlive recovery unresolved. Stranded
  // *unprepared* transactions are permitted — a lost best-effort abort
  // leaves one behind by design, and presumed abort is precisely the
  // rule that makes that safe.
  if (UseStorage) {
    std::set<uint64_t> Decided;
    for (const auto &Kit : Kits)
      if (Kit.St) {
        Decided.insert(Kit.St->Committed.begin(), Kit.St->Committed.end());
        Rep.TxnCommitted += Kit.St->Committed.size();
      }
    uint64_t NewOrderNormal = 0, NewOrderInDoubt = 0;
    for (size_t T = 0; T != Sc.Tenants.size(); ++T)
      if (Sc.Tenants[T].Op == OpKind::NewOrder) {
        NewOrderNormal += Tallies[T].R.Normal;
        NewOrderInDoubt += Tallies[T].R.TxnInDoubt;
      }
    if (Decided.size() < NewOrderNormal ||
        Decided.size() > NewOrderNormal + NewOrderInDoubt)
      violate(strprintf("%zu logged commit decisions outside "
                        "[%llu normal, %llu normal+indoubt]",
                        Decided.size(), (unsigned long long)NewOrderNormal,
                        (unsigned long long)(NewOrderNormal +
                                             NewOrderInDoubt)));

    for (size_t Srv = 0; Srv != Sc.Servers; ++Srv) {
      ServerSlot &SS = Slots[Srv];
      Rep.StorageCrashes += SS.KvWal->crashes() + SS.TxnWal->crashes();
      Rep.TornTails += SS.KvWal->tornTails() + SS.TxnWal->tornTails();
      Rep.Replayed += SS.Kv.Store->Replayed + SS.Txn.Store->Replayed;
      Rep.InDoubtRecovered += SS.Txn.Store->InDoubtRecovered;
      Rep.ResolvedCommits += SS.Txn.Store->ResolvedCommits;
      Rep.ResolvedAborts += SS.Txn.Store->ResolvedAborts;

      const apps::TxnKv::State &Live = *SS.Txn.Store;
      for (const auto &[Id, T] : Live.Txns)
        if (T.Prepared)
          violate(strprintf("srv%zu: txn %u still prepared (in doubt) at "
                            "quiescence",
                            Srv, Id));
      apps::TxnKv::State Media = apps::replayTxnState(SS.TxnWal->scan());
      if (!Media.Txns.empty())
        violate(strprintf("srv%zu: %zu prepared txns on media lack a "
                          "logged decision",
                          Srv, Media.Txns.size()));
      if (Media.Data != Live.Data)
        violate(strprintf("srv%zu: txn media replay diverges from live "
                          "data (%zu vs %zu keys)",
                          Srv, Media.Data.size(), Live.Data.size()));
      if (Media.Applied != Live.Applied)
        violate(strprintf("srv%zu: txn media replay diverges from live "
                          "applied set (%zu vs %zu gtids)",
                          Srv, Media.Applied.size(), Live.Applied.size()));
      if (apps::replayKvData(SS.KvWal->scan()) != SS.Kv.Store->Data)
        violate(strprintf("srv%zu: kv media replay diverges from live "
                          "state",
                          Srv));
      for (uint64_t G : Decided)
        if (!Live.Applied.count(G))
          violate(strprintf("srv%zu: committed gtid %llx not applied "
                            "after recovery",
                            Srv, (unsigned long long)G));
      for (uint64_t G : Live.Applied)
        if (!Decided.count(G))
          violate(strprintf("srv%zu: applied gtid %llx never durably "
                            "committed",
                            Srv, (unsigned long long)G));
    }
    if (Rep.TornTails > Rep.StorageCrashes)
      violate(strprintf("%llu torn tails > %llu storage crashes",
                        (unsigned long long)Rep.TornTails,
                        (unsigned long long)Rep.StorageCrashes));
  }

  // 10. Determinism oracle: digest the full trace-event stream in order.
  const MetricsRegistry &Reg = S.metrics();
  uint64_t H = 0xcbf29ce484222325ull;
  for (const TraceEvent &E : Reg.events()) {
    H = fnv1a(H, E.TsNs);
    H = fnv1a(H, static_cast<uint64_t>(E.Kind));
    H = fnv1a(H, E.Node);
    H = fnv1a(H, E.Id);
    H = fnv1a(H, E.Seq);
    H = fnv1a(H, E.DurNs);
    for (char C : E.Detail)
      H = fnv1a(H, static_cast<unsigned char>(C));
  }
  Rep.TraceEvents = Reg.events().size() + Reg.droppedEvents();
  Rep.TraceHash = H;

  for (Tally &Ta : Tallies)
    Rep.Tenants.push_back(Ta.R);
  return Rep;
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

LoadReport load::runLoad(const LoadOptions &O) {
  World W(O);
  W.S.run();
  return W.finish();
}

std::string load::replayCommand(const LoadOptions &O) {
  std::string Cmd = strprintf(
      "loadsim --scenario %s --seed %llu --backend %s",
      O.Scenario.Name.c_str(), static_cast<unsigned long long>(O.Seed),
      sim::SimConfig::backendName(O.Backend));
  if (O.RateScale != 1.0)
    Cmd += strprintf(" --rate-scale %g", O.RateScale);
  if (O.DurationScale != 1.0)
    Cmd += strprintf(" --duration-scale %g", O.DurationScale);
  if (O.ForceStorage)
    Cmd += " --storage-faults";
  if (O.TornRate >= 0)
    Cmd += strprintf(" --torn-rate %g", O.TornRate);
  if (O.LostRate >= 0)
    Cmd += strprintf(" --lost-rate %g", O.LostRate);
  return Cmd;
}

std::string LoadReport::summary() const {
  std::string Dur;
  if (StorageCrashes | TornTails | Replayed | InDoubtRecovered |
      ResolvedCommits | ResolvedAborts | TxnCommitted)
    Dur = strprintf(" committed=%llu scrash=%llu torn=%llu replay=%llu "
                    "indoubt=%llu resolved=%llu/%llu",
                    (unsigned long long)TxnCommitted,
                    (unsigned long long)StorageCrashes,
                    (unsigned long long)TornTails,
                    (unsigned long long)Replayed,
                    (unsigned long long)InDoubtRecovered,
                    (unsigned long long)ResolvedCommits,
                    (unsigned long long)ResolvedAborts);
  return strprintf(
      "offered=%llu normal=%llu shed=%llu/%llu fastfail=%llu expired=%llu "
      "retries=%llu exec=%llu goodput=%.0f->%.0fcps ratio=%.2f "
      "p50=%.0fus p99=%.0fus p999=%.0fus vms=%.3f trace=%llu@%016llx",
      (unsigned long long)Offered, (unsigned long long)Normal,
      (unsigned long long)Shed, (unsigned long long)ServerShed,
      (unsigned long long)FastFails, (unsigned long long)Expired,
      (unsigned long long)Retries, (unsigned long long)Executions,
      BaseGoodputCps, OverGoodputCps, GoodputRatio, P50Us, P99Us, P999Us,
      static_cast<double>(VirtualEnd) / 1e6, (unsigned long long)TraceEvents,
      (unsigned long long)TraceHash) +
         Dur;
}

std::string load::benchJson(const LoadOptions &O, const LoadReport &R) {
  std::string Tenants;
  for (const TenantReport &T : R.Tenants) {
    if (!Tenants.empty())
      Tenants += ", ";
    Tenants += strprintf(
        "{\"name\": \"%s\", \"offered\": %llu, \"normal\": %llu, "
        "\"shed\": %llu, \"goodput_cps\": %.1f, \"p50_us\": %.1f, "
        "\"p99_us\": %.1f, \"p999_us\": %.1f, \"slo_checked\": %s, "
        "\"slo_ok\": %s}",
        T.Name.c_str(), (unsigned long long)T.Offered,
        (unsigned long long)T.Normal, (unsigned long long)T.Shed,
        T.GoodputCps, T.P50Us, T.P99Us, T.P999Us,
        T.SloChecked ? "true" : "false", T.SloOk ? "true" : "false");
  }
  return strprintf(
      "{\"bench\": \"bench_overload\", \"scenario\": \"%s\", "
      "\"seed\": %llu, \"backend\": \"%s\", \"capacity_cps\": %.1f, "
      "\"base_goodput_cps\": %.1f, \"overload_goodput_cps\": %.1f, "
      "\"goodput_ratio\": %.4f, \"goodput_floor\": %.4f, "
      "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, "
      "\"offered\": %llu, \"normal\": %llu, \"shed\": %llu, "
      "\"retries\": %llu, \"battery_violations\": %zu, \"tenants\": [%s]}",
      O.Scenario.Name.c_str(), static_cast<unsigned long long>(O.Seed),
      sim::SimConfig::backendName(O.Backend), R.CapacityCps,
      R.BaseGoodputCps, R.OverGoodputCps, R.GoodputRatio,
      O.Scenario.GoodputFloor, R.P50Us, R.P99Us, R.P999Us,
      (unsigned long long)R.Offered, (unsigned long long)R.Normal,
      (unsigned long long)R.Shed, (unsigned long long)R.Retries,
      R.Violations.size(), Tenants.c_str());
}
