//===- Action.cpp - Lightweight atomic actions ------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/actions/Action.h"

#include <cassert>

using namespace promises;
using namespace promises::actions;

ActionId ActionManager::begin(ActionId Parent) {
  assert((Parent == 0 || Records.count(Parent)) &&
         "subaction of a finished action");
  ActionId Id = NextId++;
  Record R;
  R.Parent = Parent;
  Records.emplace(Id, std::move(R));
  if (Parent != 0)
    ++Records[Parent].ActiveChildren;
  return Id;
}

bool ActionManager::isActive(ActionId Id) const {
  return Records.count(Id) != 0;
}

bool ActionManager::isDoomed(ActionId Id) const {
  auto It = Records.find(Id);
  return It != Records.end() && It->second.Doomed;
}

void ActionManager::doom(ActionId Id) {
  auto It = Records.find(Id);
  if (It != Records.end())
    It->second.Doomed = true;
}

bool ActionManager::isSelfOrAncestor(ActionId Maybe, ActionId Id) const {
  for (ActionId Cur = Id; Cur != 0;) {
    if (Cur == Maybe)
      return true;
    auto It = Records.find(Cur);
    if (It == Records.end())
      return false;
    Cur = It->second.Parent;
  }
  return false;
}

ActionId ActionManager::parentOf(ActionId Id) const {
  auto It = Records.find(Id);
  return It != Records.end() ? It->second.Parent : 0;
}

void ActionManager::onFinish(ActionId Id,
                             std::function<void(bool)> Hook) {
  auto It = Records.find(Id);
  assert(It != Records.end() && "finish hook on a finished action");
  It->second.FinishHooks.push_back(std::move(Hook));
}

bool ActionManager::commit(ActionId Id) {
  auto It = Records.find(Id);
  assert(It != Records.end() && "commit of an unknown action");
  if (It->second.Doomed || It->second.ActiveChildren != 0) {
    // A doomed action cannot commit; an action with live children must
    // not (the Action RAII discipline prevents this in practice).
    abort(Id);
    return false;
  }
  finish(Id, /*Committed=*/true);
  ++Commits;
  return true;
}

void ActionManager::abort(ActionId Id) {
  auto It = Records.find(Id);
  if (It == Records.end())
    return; // Already finished (idempotent).
  finish(Id, /*Committed=*/false);
  ++Aborts;
}

void ActionManager::finish(ActionId Id, bool Committed) {
  auto It = Records.find(Id);
  assert(It != Records.end());
  ActionId Parent = It->second.Parent;
  // Hooks may install new hooks on the *parent* (lock transfer), never on
  // this action; move them out first. The record must stay alive while
  // the hooks run — they consult parentOf/isSelfOrAncestor for Id.
  std::vector<std::function<void(bool)>> Hooks =
      std::move(It->second.FinishHooks);
  for (auto &H : Hooks)
    H(Committed);
  Records.erase(Id);
  if (Parent != 0) {
    auto PIt = Records.find(Parent);
    if (PIt != Records.end()) {
      --PIt->second.ActiveChildren;
      assert(PIt->second.ActiveChildren >= 0);
    }
  }
}
