//===- Coenter.cpp - Structured concurrency -------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/core/Coenter.h"

#include <cassert>
#include <memory>

using namespace promises;
using namespace promises::core;

ArmResult Coenter::run() {
  assert(sim::Simulation::inProcess() &&
         "coenter must run inside a simulated process");

  struct Shared {
    ArmResult FirstExn;
    bool Terminating = false;
    std::vector<sim::ProcessHandle> Procs;
  };
  auto State = std::make_shared<Shared>();

  // Spawn one subprocess (and agent) per arm. They start running in spawn
  // order at the current instant.
  State->Procs.reserve(Arms.size());
  for (ArmSpec &A : Arms) {
    State->Procs.push_back(Sim.spawn(
        std::move(A.Name), [this, State, Body = std::move(A.Body)] {
          ArmResult R = Body();
          if (!R || State->Terminating)
            return;
          // First exception wins: record it and force the sibling arms to
          // terminate (critical sections defer the kill, per the paper).
          State->Terminating = true;
          State->FirstExn = std::move(R);
          sim::Process *Self = sim::Simulation::current();
          for (const sim::ProcessHandle &P : State->Procs)
            if (P.get() != Self)
              Sim.kill(P);
        }));
  }
  Arms.clear();

  // The parent halts until every subprocess completes (normally or by
  // forced termination).
  for (const sim::ProcessHandle &P : State->Procs)
    Sim.join(P);
  return std::move(State->FirstExn);
}
