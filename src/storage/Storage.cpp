//===- Storage.cpp - Simulated stable storage -----------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/storage/Storage.h"

#include "promises/support/Check.h"

using namespace promises;
using namespace promises::storage;

namespace {

constexpr uint8_t RecordMagic = 0xA6;
constexpr size_t RecordHeaderBytes = 9; // magic u8 + len u32 + crc u32

void putLe32(wire::Bytes &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

uint32_t getLe32(const uint8_t *P) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  return V;
}

} // namespace

StableStore::StableStore(sim::Simulation &S, StorageConfig C)
    : S(S), Cfg(std::move(C)), FaultRng(Cfg.Faults.Seed) {
  MetricLabels L{{"store", Cfg.Name}};
  auto &M = S.metrics();
  CAppends = &M.counter("storage.appends", L);
  CAppendedBytes = &M.counter("storage.appended_bytes", L);
  CSyncs = &M.counter("storage.syncs", L);
  CSnapshots = &M.counter("storage.snapshots", L);
  CReplays = &M.counter("storage.replays", L);
  CReplayedRecords = &M.counter("storage.replayed_records", L);
  CCrashes = &M.counter("storage.crashes", L);
  CLostBytes = &M.counter("storage.lost_bytes", L);
  CTornTails = &M.counter("storage.torn_tails", L);
}

void StableStore::append(const wire::Bytes &Payload) {
  PROMISES_CHECK(Payload.size() <= UINT32_MAX, "oversized storage record");
  // Grow geometrically: an exact-size reserve here would reallocate and
  // copy the whole log on every append (quadratic over the log length).
  size_t Need = Log.size() + RecordHeaderBytes + Payload.size();
  if (Need > Log.capacity())
    Log.reserve(std::max(Need, Log.capacity() * 2));
  Log.push_back(RecordMagic);
  putLe32(Log, static_cast<uint32_t>(Payload.size()));
  putLe32(Log, wire::crc32c(Payload));
  Log.insert(Log.end(), Payload.begin(), Payload.end());
  RecordEnds.push_back(Log.size());
  CAppends->inc();
  CAppendedBytes->inc(RecordHeaderBytes + Payload.size());
}

void StableStore::sync() {
  if (Synced == Log.size())
    return; // Tail already durable (a concurrent force covered it).
  if (Cfg.SyncTime != 0 && sim::Simulation::inProcess())
    S.sleep(Cfg.SyncTime);
  // A crash during the sleep killed the calling process above, so
  // reaching this line means the force completed: everything appended
  // by now (including during the sleep — group commit) is durable.
  Synced = Log.size();
  CSyncs->inc();
}

void StableStore::saveSnapshot(const std::function<wire::Bytes()> &Make) {
  if (Cfg.SyncTime != 0 && sim::Simulation::inProcess())
    S.sleep(Cfg.SyncTime);
  // Serialize *after* the force sleep: mutations applied during it are
  // in memory before their records hit the log (apply-first
  // discipline), so the snapshot subsumes every record it truncates.
  Snapshot = Make();
  HasSnapshot = true;
  Log.clear();
  RecordEnds.clear();
  Synced = 0;
  CSnapshots->inc();
}

void StableStore::crash() {
  ++Crashes;
  CCrashes->inc();
  if (Synced >= Log.size())
    return; // Nothing volatile to lose.
  if (!FaultRng.chance(Cfg.Faults.LostSuffixRate))
    return; // Write-back cache survived; the whole tail reads back.
  uint64_t Keep = Synced;
  if (FaultRng.chance(Cfg.Faults.TornWriteRate)) {
    // Tear the first un-synced record. Synced sits on a record
    // boundary, so find that record's end and pick a cut inside it.
    uint64_t End = 0;
    for (uint64_t E : RecordEnds)
      if (E > Synced) {
        End = E;
        break;
      }
    PROMISES_CHECK(End > Synced, "synced frontier off record boundary");
    uint64_t RecLen = End - Synced;
    uint64_t Cut = 1 + FaultRng.below(RecLen); // in [1, RecLen]
    if (Cut == RecLen) {
      // Keep the full length but flip a payload bit: the CRC path.
      Keep = End;
      Log[End - 1] ^= 0x01;
    } else {
      Keep = Synced + Cut; // Partial prefix: the truncation path.
    }
    ++TornTails;
    CTornTails->inc();
  }
  LostBytes += Log.size() - Keep;
  CLostBytes->inc(Log.size() - Keep);
  Log.resize(Keep);
  while (!RecordEnds.empty() && RecordEnds.back() > Keep)
    RecordEnds.pop_back();
}

StableStore::Recovery StableStore::scan() const {
  Recovery R;
  if (HasSnapshot)
    R.Snapshot = Snapshot;
  uint64_t Pos = 0;
  while (Pos < Log.size()) {
    uint64_t Left = Log.size() - Pos;
    if (Left < RecordHeaderBytes || Log[Pos] != RecordMagic) {
      R.TornTail = true;
      break;
    }
    uint32_t Len = getLe32(Log.data() + Pos + 1);
    uint32_t Crc = getLe32(Log.data() + Pos + 5);
    if (Len > Left - RecordHeaderBytes ||
        wire::crc32c(Log.data() + Pos + RecordHeaderBytes, Len) != Crc) {
      R.TornTail = true;
      break;
    }
    const uint8_t *P = Log.data() + Pos + RecordHeaderBytes;
    R.Records.emplace_back(P, P + Len);
    Pos += RecordHeaderBytes + Len;
  }
  R.DiscardedBytes = Log.size() - Pos;
  return R;
}

StableStore::Recovery StableStore::open() {
  Recovery R = scan();
  if (R.DiscardedBytes != 0) {
    Log.resize(Log.size() - R.DiscardedBytes);
    while (!RecordEnds.empty() && RecordEnds.back() > Log.size())
      RecordEnds.pop_back();
  }
  // Rebuild boundaries from the scan in case a fault-free crash left
  // them stale, and mark the surviving log durable: it was just read
  // back from the media, so it is stable by definition.
  RecordEnds.clear();
  uint64_t Pos = 0;
  for (const wire::Bytes &Rec : R.Records) {
    Pos += RecordHeaderBytes + Rec.size();
    RecordEnds.push_back(Pos);
  }
  PROMISES_CHECK(Pos == Log.size(), "log scan out of step with media");
  Synced = Log.size();
  CReplays->inc();
  CReplayedRecords->inc(R.Records.size());
  return R;
}
