//===- UdpNetwork.cpp - Real UDP socket backend ---------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/net/UdpNetwork.h"

#include "promises/support/StrUtil.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <ctime>
#include <unistd.h>

using namespace promises;
using namespace promises::net;

namespace {

/// IPv4 + UDP header bytes, counted into BytesSent like the simulated
/// backend's NetConfig::HeaderBytes.
constexpr uint64_t UdpWireOverhead = 28;

[[noreturn]] void fatal(const char *What) {
  std::fprintf(stderr, "promises: udp backend: %s: %s\n", What,
               std::strerror(errno));
  std::abort();
}

in_addr parseIp(const std::string &Ip) {
  in_addr A{};
  if (::inet_pton(AF_INET, Ip.c_str(), &A) != 1) {
    std::fprintf(stderr, "promises: udp backend: bad IPv4 address '%s'\n",
                 Ip.c_str());
    std::abort();
  }
  return A;
}

uint64_t udpKey(uint32_t Ip, uint16_t Port) {
  return (static_cast<uint64_t>(Ip) << 16) | Port;
}

bool sendWouldBlock(int Err) {
  // ENOBUFS/ENOMEM are transient queue pressure on loopback; parking the
  // datagram and retrying on POLLOUT beats dropping it.
  return Err == EAGAIN || Err == EWOULDBLOCK || Err == ENOBUFS ||
         Err == ENOMEM;
}

} // namespace

/// One bound promises port: one nonblocking UDP socket plus the datagrams
/// parked when the kernel's send buffer pushed back.
struct UdpNetwork::Endpoint {
  int Fd = -1;
  Address Addr;
  uint32_t Ip = 0;      ///< Bound address, network byte order.
  uint16_t UdpPort = 0; ///< Bound udp port, host byte order.
  std::function<void(Datagram)> Handler;
  std::deque<std::pair<sockaddr_in, wire::Bytes>> SendQ;
};

struct UdpNetwork::NodeRec {
  std::string Name;
  bool Up = true;
  bool Local = true;
  uint32_t Epoch = 0;
  uint32_t NextPort = 1;
  uint16_t Base = 0;     ///< udp base port; 0 = kernel-assigned (local only).
  uint32_t RemoteIp = 0; ///< Network byte order; remote nodes only.
  CounterCells Counters;
  std::vector<std::function<void()>> CrashObservers;
};

UdpNetwork::UdpNetwork(sim::Simulation &S, UdpConfig C)
    : Sim(S), Reg(S.metrics()), Cfg(std::move(C)) {
  registerCells(Reg, Totals, {});
  UnknownSource = &Reg.counter("net.udp_unknown_source_dropped", {});
  QueueDrops = &Reg.counter("net.udp_send_queue_drops", {});
  RecvBuf.resize(Cfg.MaxDatagramBytes);
  assert(Sim.clockDriver() == nullptr &&
         "simulation already has a clock driver");
  Sim.setClockDriver(this);
}

UdpNetwork::~UdpNetwork() {
  for (auto &[A, E] : Binds)
    if (E->Fd >= 0)
      ::close(E->Fd);
  if (Sim.clockDriver() == this)
    Sim.setClockDriver(nullptr);
}

UdpNetwork::NodeRec &UdpNetwork::node(NodeId N) {
  assert(N < Nodes.size() && "unknown node");
  return Nodes[N];
}

const UdpNetwork::NodeRec &UdpNetwork::node(NodeId N) const {
  assert(N < Nodes.size() && "unknown node");
  return Nodes[N];
}

NodeId UdpNetwork::addNodeRec(std::string Name, bool Local, uint16_t Base,
                              uint32_t RemoteIp) {
  NodeId N = static_cast<NodeId>(Nodes.size());
  Nodes.push_back(NodeRec{});
  NodeRec &Nd = Nodes.back();
  Nd.Name = std::move(Name);
  Nd.Local = Local;
  Nd.Base = Base;
  Nd.RemoteIp = RemoteIp;
  registerCells(Reg, Nd.Counters,
                {{"node", Nd.Name}, {"id", strprintf("%u", N)}});
  return N;
}

NodeId UdpNetwork::addNode(std::string Name) {
  return addNodeRec(std::move(Name), true, 0, 0);
}

NodeId UdpNetwork::addNode(std::string Name, uint16_t Base) {
  assert(Base != 0 && "explicit base port must be nonzero");
  return addNodeRec(std::move(Name), true, Base, 0);
}

NodeId UdpNetwork::addRemoteNode(std::string Name, std::string Ip,
                                 uint16_t Base) {
  assert(Base != 0 && "remote nodes need a known base port");
  return addNodeRec(std::move(Name), false, Base, parseIp(Ip).s_addr);
}

const std::string &UdpNetwork::nodeName(NodeId N) const {
  return node(N).Name;
}

Address UdpNetwork::bind(NodeId N, std::function<void(Datagram)> Handler) {
  NodeRec &Nd = node(N);
  assert(Nd.Local && "bind on a remote node");
  assert(Nd.Up && "bind on a crashed node");
  Address A{N, Nd.NextPort++, Nd.Epoch};
  if (Nd.Base != 0 && A.Port >= Cfg.PortSpan) {
    std::fprintf(stderr, "promises: udp backend: node '%s' exhausted its "
                 "port block (PortSpan=%u)\n",
                 Nd.Name.c_str(), unsigned(Cfg.PortSpan));
    std::abort();
  }

  int Fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    fatal("socket");
  if (Cfg.SocketBufferBytes > 0) {
    // Best effort: the kernel clamps to net.core.{r,w}mem_max.
    (void)::setsockopt(Fd, SOL_SOCKET, SO_RCVBUF, &Cfg.SocketBufferBytes,
                       sizeof Cfg.SocketBufferBytes);
    (void)::setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Cfg.SocketBufferBytes,
                       sizeof Cfg.SocketBufferBytes);
  }
  sockaddr_in Sa{};
  Sa.sin_family = AF_INET;
  Sa.sin_addr = parseIp(Cfg.BindIp);
  Sa.sin_port = htons(Nd.Base != 0
                          ? static_cast<uint16_t>(Nd.Base + A.Port)
                          : 0);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof Sa) < 0)
    fatal("bind");
  socklen_t SaLen = sizeof Sa;
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Sa), &SaLen) < 0)
    fatal("getsockname");

  auto E = std::make_unique<Endpoint>();
  E->Fd = Fd;
  E->Addr = A;
  E->Ip = Sa.sin_addr.s_addr;
  E->UdpPort = ntohs(Sa.sin_port);
  E->Handler = std::move(Handler);
  ByUdp[udpKey(E->Ip, E->UdpPort)] = E.get();
  ByFd[Fd] = E.get();
  Binds[A] = std::move(E);
  return A;
}

void UdpNetwork::closeEndpoint(Endpoint &E) {
  ByUdp.erase(udpKey(E.Ip, E.UdpPort));
  ByFd.erase(E.Fd);
  ::close(E.Fd);
  E.Fd = -1;
}

void UdpNetwork::unbind(Address A) {
  auto It = Binds.find(A);
  if (It == Binds.end())
    return;
  closeEndpoint(*It->second);
  Binds.erase(It);
}

bool UdpNetwork::isUp(NodeId N) const { return node(N).Up; }

uint32_t UdpNetwork::nodeEpoch(NodeId N) const { return node(N).Epoch; }

void UdpNetwork::onCrash(NodeId N, std::function<void()> Cb) {
  node(N).CrashObservers.push_back(std::move(Cb));
}

void UdpNetwork::crash(NodeId N) {
  NodeRec &Nd = node(N);
  if (!Nd.Up)
    return;
  Nd.Up = false;
  if (Reg.enabled())
    Reg.emit({Sim.now(), EventKind::NodeCrash, N, 0, 0, 0, Nd.Name});
  for (auto It = Binds.begin(); It != Binds.end();) {
    if (It->first.Node == N) {
      closeEndpoint(*It->second);
      It = Binds.erase(It);
    } else {
      ++It;
    }
  }
  std::vector<std::function<void()>> Observers;
  Observers.swap(Nd.CrashObservers);
  for (auto &Cb : Observers)
    Cb();
}

void UdpNetwork::restart(NodeId N) {
  NodeRec &Nd = node(N);
  assert(!Nd.Up && "restart of a node that is up");
  Nd.Up = true;
  ++Nd.Epoch;
  Nd.NextPort = 1;
  if (Reg.enabled())
    Reg.emit({Sim.now(), EventKind::NodeRestart, N, 0, 0, 0, Nd.Name});
}

NetCounters UdpNetwork::counters() const { return Totals.view(); }

NetCounters UdpNetwork::counters(NodeId N) const {
  return node(N).Counters.view();
}

uint64_t UdpNetwork::unknownSourceDrops() const {
  return UnknownSource->value();
}

uint64_t UdpNetwork::sendQueueDrops() const { return QueueDrops->value(); }

void UdpNetwork::send(Address From, Address To, wire::Bytes Payload) {
  NodeRec &Sender = node(From.Node);
  uint64_t WireBytes = Payload.size() + UdpWireOverhead;
  Totals.Sent->inc();
  Totals.Bytes->inc(WireBytes);
  Sender.Counters.Sent->inc();
  Sender.Counters.Bytes->inc(WireBytes);

  if (!Sender.Up) {
    Totals.Dropped->inc();
    return;
  }
  auto SrcIt = Binds.find(From);
  if (SrcIt == Binds.end()) {
    Totals.Dropped->inc();
    return;
  }

  sockaddr_in Dst{};
  Dst.sin_family = AF_INET;
  NodeRec &Rcv = node(To.Node);
  if (!Rcv.Up) {
    // Local knowledge only: a remote peer we *believe* down. An actually
    // dead remote just never answers — which is also fine.
    Totals.Dropped->inc();
    return;
  }
  if (Rcv.Local) {
    // Exact-address lookup: a stale epoch or an unbound port has no
    // socket, so the datagram is unroutable — the same silent drop the
    // simulator models. Still a real loopback send would be nicer for
    // fidelity, but there is no socket to address it to.
    auto DstIt = Binds.find(To);
    if (DstIt == Binds.end()) {
      Totals.Dropped->inc();
      return;
    }
    Dst.sin_addr.s_addr = DstIt->second->Ip;
    Dst.sin_port = htons(DstIt->second->UdpPort);
  } else {
    if (To.Port == 0 || To.Port >= Cfg.PortSpan) {
      Totals.Dropped->inc();
      return;
    }
    Dst.sin_addr.s_addr = Rcv.RemoteIp;
    Dst.sin_port = htons(static_cast<uint16_t>(Rcv.Base + To.Port));
  }

  Endpoint &E = *SrcIt->second;
  // Anything already parked must go first to preserve per-socket order.
  if (!E.SendQ.empty()) {
    if (E.SendQ.size() >= Cfg.MaxSendQueue) {
      QueueDrops->inc();
      Totals.Dropped->inc();
      return;
    }
    E.SendQ.emplace_back(Dst, std::move(Payload));
    return;
  }
  ssize_t R = ::sendto(E.Fd, Payload.data(), Payload.size(), 0,
                       reinterpret_cast<sockaddr *>(&Dst), sizeof Dst);
  if (R >= 0)
    return;
  if (sendWouldBlock(errno)) {
    E.SendQ.emplace_back(Dst, std::move(Payload));
    return;
  }
  // Hard send error (unreachable, etc.) — a lost datagram; the transport's
  // retransmission recovers or breaks the stream, as with any loss.
  Totals.Dropped->inc();
}

bool UdpNetwork::mapSource(uint32_t Ip, uint16_t Port, Address &Out) const {
  auto It = ByUdp.find(udpKey(Ip, Port));
  if (It != ByUdp.end()) {
    Out = It->second->Addr;
    return true;
  }
  for (NodeId N = 0; N != Nodes.size(); ++N) {
    const NodeRec &Nd = Nodes[N];
    if (Nd.Local || Nd.RemoteIp != Ip)
      continue;
    if (Port > Nd.Base && Port < Nd.Base + Cfg.PortSpan) {
      Out = Address{N, static_cast<uint32_t>(Port - Nd.Base), 0};
      return true;
    }
  }
  return false;
}

void UdpNetwork::drainRecv(int Fd) {
  // Bounded per poll round so one busy socket cannot starve the others;
  // whatever remains re-signals POLLIN on the next round. The endpoint is
  // re-looked-up per datagram because a handler may unbind sockets.
  for (int I = 0; I != 64; ++I) {
    auto FdIt = ByFd.find(Fd);
    if (FdIt == ByFd.end())
      return;
    Endpoint &E = *FdIt->second;
    sockaddr_in Src{};
    socklen_t SrcLen = sizeof Src;
    ssize_t R = ::recvfrom(Fd, RecvBuf.data(), RecvBuf.size(), 0,
                           reinterpret_cast<sockaddr *>(&Src), &SrcLen);
    if (R < 0)
      return; // EAGAIN (or a transient error): nothing more now.
    Address From;
    if (!mapSource(Src.sin_addr.s_addr, ntohs(Src.sin_port), From)) {
      UnknownSource->inc();
      Totals.Dropped->inc();
      continue;
    }
    Totals.Delivered->inc();
    node(E.Addr.Node).Counters.Delivered->inc();
    Datagram D{From, E.Addr,
               wire::Bytes(RecvBuf.data(), RecvBuf.data() + R)};
    E.Handler(std::move(D));
  }
}

void UdpNetwork::drainSendQueue(Endpoint &E) {
  while (!E.SendQ.empty()) {
    auto &[Dst, Bytes] = E.SendQ.front();
    ssize_t R = ::sendto(E.Fd, Bytes.data(), Bytes.size(), 0,
                         reinterpret_cast<sockaddr *>(&Dst), sizeof Dst);
    if (R < 0) {
      if (sendWouldBlock(errno))
        return; // Still pushed back; POLLOUT will retry.
      Totals.Dropped->inc(); // Hard error: drop this one, keep going.
    }
    E.SendQ.pop_front();
  }
}

void UdpNetwork::rebuildPollSet() {
  Pfds.clear();
  for (auto &[A, E] : Binds) {
    short Ev = POLLIN;
    if (!E->SendQ.empty())
      Ev |= POLLOUT;
    Pfds.push_back(pollfd{E->Fd, Ev, 0});
  }
}

void UdpNetwork::waitFor(sim::Time Timeout) {
  // Bound any one sleep so a pathological timeout can't wedge the loop.
  Timeout = std::min<sim::Time>(Timeout, sim::sec(1));
  timespec Ts;
  Ts.tv_sec = static_cast<time_t>(Timeout / 1000000000ull);
  Ts.tv_nsec = static_cast<long>(Timeout % 1000000000ull);
  rebuildPollSet();
  if (Pfds.empty()) {
    ::nanosleep(&Ts, nullptr);
    return;
  }
  int N = ::ppoll(Pfds.data(), Pfds.size(), &Ts, nullptr);
  if (N <= 0)
    return; // Timeout (or EINTR): the run loop re-derives its deadline.
  // Handlers scheduled work must see a fresh clock — the virtual now()
  // went stale while we slept.
  Sim.advanceClockToWall(Wall.now());
  for (const pollfd &P : Pfds) {
    if (P.revents == 0)
      continue;
    if (P.revents & POLLOUT) {
      auto It = ByFd.find(P.fd);
      if (It != ByFd.end())
        drainSendQueue(*It->second);
    }
    if (P.revents & (POLLIN | POLLERR))
      drainRecv(P.fd);
  }
}
