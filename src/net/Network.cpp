//===- Network.cpp - Simulated datagram network backend -------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/net/Network.h"

#include "promises/support/StrUtil.h"

#include <algorithm>
#include <cassert>

using namespace promises;
using namespace promises::net;
using sim::Time;

Network::~Network() = default;

void Network::registerCells(MetricsRegistry &Reg, CounterCells &C,
                            MetricLabels Labels) {
  C.Sent = &Reg.counter("net.datagrams_sent", Labels);
  C.Delivered = &Reg.counter("net.datagrams_delivered", Labels);
  C.Dropped = &Reg.counter("net.datagrams_dropped", Labels);
  C.Duplicated = &Reg.counter("net.datagrams_duplicated", Labels);
  C.Corrupted = &Reg.counter("net.datagrams_corrupted", Labels);
  C.Bytes = &Reg.counter("net.bytes_sent", std::move(Labels));
}

SimNetwork::SimNetwork(sim::Simulation &S, NetConfig C)
    : Sim(S), Reg(S.metrics()), Cfg(C), Rand(C.Seed) {
  registerCells(Reg, Totals, {});
  StaleDrops = &Reg.counter("net.datagrams_stale_dropped", {});
}

NodeId SimNetwork::addNode(std::string Name) {
  NodeId N = static_cast<NodeId>(Nodes.size());
  Nodes.push_back(Node{});
  Nodes.back().Name = std::move(Name);
  registerCells(Reg, Nodes.back().Counters,
                {{"node", Nodes.back().Name}, {"id", strprintf("%u", N)}});
  return N;
}

SimNetwork::Node &SimNetwork::node(NodeId N) {
  assert(N < Nodes.size() && "unknown node");
  return Nodes[N];
}

const SimNetwork::Node &SimNetwork::node(NodeId N) const {
  assert(N < Nodes.size() && "unknown node");
  return Nodes[N];
}

const std::string &SimNetwork::nodeName(NodeId N) const {
  return node(N).Name;
}

Address SimNetwork::bind(NodeId N, std::function<void(Datagram)> Handler) {
  Node &Nd = node(N);
  assert(Nd.Up && "bind on a crashed node");
  Address A{N, Nd.NextPort++, Nd.Epoch};
  Binds[A] = std::move(Handler);
  return A;
}

void SimNetwork::unbind(Address A) { Binds.erase(A); }

bool SimNetwork::isUp(NodeId N) const { return node(N).Up; }

void SimNetwork::setPartitioned(NodeId A, NodeId B, bool Cut) {
  auto Key = std::minmax(A, B);
  if (Cut)
    Partitions.insert({Key.first, Key.second});
  else
    Partitions.erase({Key.first, Key.second});
}

bool SimNetwork::isPartitioned(NodeId A, NodeId B) const {
  auto Key = std::minmax(A, B);
  return Partitions.count({Key.first, Key.second}) != 0;
}

void SimNetwork::setLinkLoss(NodeId A, NodeId B, double Rate) {
  auto Key = std::minmax(A, B);
  LinkLoss[{Key.first, Key.second}] = Rate;
}

double SimNetwork::lossBetween(NodeId A, NodeId B) const {
  auto Key = std::minmax(A, B);
  auto It = LinkLoss.find({Key.first, Key.second});
  return It != LinkLoss.end() ? It->second : Cfg.LossRate;
}

void SimNetwork::onCrash(NodeId N, std::function<void()> Cb) {
  node(N).CrashObservers.push_back(std::move(Cb));
}

void SimNetwork::crash(NodeId N) {
  Node &Nd = node(N);
  if (!Nd.Up)
    return;
  Nd.Up = false;
  if (Reg.enabled())
    Reg.emit({Sim.now(), EventKind::NodeCrash, N, 0, 0, 0, Nd.Name});
  // Remove every binding on the node; later deliveries count as drops.
  for (auto It = Binds.begin(); It != Binds.end();) {
    if (It->first.Node == N)
      It = Binds.erase(It);
    else
      ++It;
  }
  // Fire observers once, then clear them (restart re-registers).
  std::vector<std::function<void()>> Observers;
  Observers.swap(Nd.CrashObservers);
  for (auto &Cb : Observers)
    Cb();
}

void SimNetwork::restart(NodeId N) {
  Node &Nd = node(N);
  assert(!Nd.Up && "restart of a node that is up");
  Nd.Up = true;
  Nd.TxFreeAt = Sim.now();
  Nd.RxFreeAt = Sim.now();
  // The new incarnation reuses port numbers (a rebooted kernel starts
  // allocating from scratch); the epoch bump keeps addresses from the old
  // incarnation dead — see the stale-epoch check in arrive().
  ++Nd.Epoch;
  Nd.NextPort = 1;
  if (Reg.enabled())
    Reg.emit({Sim.now(), EventKind::NodeRestart, N, 0, 0, 0, Nd.Name});
}

NetCounters SimNetwork::counters() const { return Totals.view(); }

NetCounters SimNetwork::counters(NodeId N) const {
  return node(N).Counters.view();
}

SimNetwork::LinkStats &SimNetwork::linkStats(NodeId From, NodeId To) {
  auto [It, Inserted] = Links.try_emplace({From, To});
  if (Inserted) {
    MetricLabels L{{"link", node(From).Name + "->" + node(To).Name}};
    It->second.Drops = &Reg.counter("net.link_drops", L);
    It->second.LatencyUs = &Reg.histogram("net.link_latency_us", std::move(L));
  }
  return It->second;
}

void SimNetwork::countDrop(NodeId From, NodeId To) {
  Totals.Dropped->inc();
  if (Reg.enabled())
    linkStats(From, To).Drops->inc();
}

uint32_t SimNetwork::nodeEpoch(NodeId N) const { return node(N).Epoch; }

uint64_t SimNetwork::staleEpochDrops() const { return StaleDrops->value(); }

sim::Time SimNetwork::txFreeAt(NodeId N) const { return node(N).TxFreeAt; }

void SimNetwork::send(Address From, Address To, wire::Bytes Payload) {
  Node &Sender = node(From.Node);
  uint64_t WireBytes = Payload.size() + Cfg.HeaderBytes;
  Totals.Sent->inc();
  Totals.Bytes->inc(WireBytes);
  Sender.Counters.Sent->inc();
  Sender.Counters.Bytes->inc(WireBytes);

  if (!Sender.Up) {
    countDrop(From.Node, To.Node);
    return;
  }

  // The transmit path is a serial resource: the datagram occupies it for
  // the kernel-call overhead plus the per-byte cost.
  Time Busy = Cfg.SendKernelOverhead + WireBytes * Cfg.PerByte;
  Time Start = std::max(Sim.now(), Sender.TxFreeAt);
  Sender.TxFreeAt = Start + Busy;

  // Loss and partition at transmission time.
  if (isPartitioned(From.Node, To.Node) ||
      Rand.chance(lossBetween(From.Node, To.Node))) {
    countDrop(From.Node, To.Node);
    return;
  }

  Time Jitter = Cfg.JitterMax != 0 ? Rand.below(Cfg.JitterMax + 1) : 0;
  Time ArriveAt = Sender.TxFreeAt + Cfg.Propagation + Jitter;
  int Copies = Rand.chance(Cfg.DupRate) ? 2 : 1;
  if (Copies == 2) {
    Totals.Duplicated->inc();
    Sender.Counters.Duplicated->inc();
  }
  Time SentAt = Sim.now();
  for (int I = 0; I != Copies; ++I) {
    // The last copy adopts the payload instead of copying it: in the
    // common (no-dup) case the sealed buffer travels from the sender's
    // Encoder to the receiver's decoder with zero payload copies.
    Datagram D{From, To,
               I + 1 == Copies ? std::move(Payload) : wire::Bytes(Payload)};
    // Bounded reordering: an unlucky copy dawdles, letting later sends (or
    // its own twin) overtake it. Bit flips damage the copy in flight; it
    // still arrives and counts as delivered — detecting the damage is the
    // transport's job (wire/Frame.h checksums). Both draws are gated on
    // their rates, so runs with the knobs off consume no RNG state.
    Time Extra = 0;
    if (Rand.chance(Cfg.ReorderRate) && Cfg.ReorderMax != 0)
      Extra = Rand.below(Cfg.ReorderMax + 1);
    if (Rand.chance(Cfg.CorruptRate) && !D.Payload.empty()) {
      uint32_t MaxBits = std::max(1u, Cfg.CorruptMaxBits);
      uint32_t Bits = 1 + static_cast<uint32_t>(Rand.below(MaxBits));
      for (uint32_t B = 0; B != Bits; ++B) {
        uint64_t Pos = Rand.below(D.Payload.size() * 8);
        D.Payload[Pos / 8] ^= static_cast<uint8_t>(1u << (Pos % 8));
      }
      Totals.Corrupted->inc();
      Sender.Counters.Corrupted->inc();
      if (Reg.enabled())
        Reg.emit({Sim.now(), EventKind::DatagramCorrupted, From.Node, From.Port,
                  Bits, 0, ""});
    }
    Sim.schedule(ArriveAt + Extra - Sim.now(),
                 [this, D = std::move(D), SentAt]() mutable {
      arrive(std::move(D), SentAt);
    });
  }
}

void SimNetwork::arrive(Datagram D, Time SentAt) {
  // Conditions are re-checked at arrival so that partitions and crashes
  // that happen while a datagram is in flight still drop it (the source of
  // the paper's *asynchronous* breaks).
  Node &Receiver = node(D.To.Node);
  if (!Receiver.Up || isPartitioned(D.From.Node, D.To.Node)) {
    countDrop(D.From.Node, D.To.Node);
    return;
  }
  uint64_t WireBytes = D.Payload.size() + Cfg.HeaderBytes;
  Time Busy = Cfg.RecvKernelOverhead + WireBytes * Cfg.PerByte;
  Time Start = std::max(Sim.now(), Receiver.RxFreeAt);
  Receiver.RxFreeAt = Start + Busy;
  Sim.schedule(Start + Busy - Sim.now(),
               [this, D = std::move(D), SentAt]() mutable {
    Node &R = node(D.To.Node);
    if (!R.Up) {
      countDrop(D.From.Node, D.To.Node);
      return;
    }
    // A datagram sent before a crash must not land in the post-restart
    // incarnation, even if the new incarnation rebound the same port.
    if (D.To.Epoch != R.Epoch) {
      StaleDrops->inc();
      countDrop(D.From.Node, D.To.Node);
      return;
    }
    auto It = Binds.find(D.To);
    if (It == Binds.end()) {
      countDrop(D.From.Node, D.To.Node);
      return;
    }
    Totals.Delivered->inc();
    R.Counters.Delivered->inc();
    if (Reg.enabled())
      linkStats(D.From.Node, D.To.Node)
          .LatencyUs->observe(static_cast<double>(Sim.now() - SentAt) / 1e3);
    It->second(std::move(D));
  });
}
