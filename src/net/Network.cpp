//===- Network.cpp - Simulated datagram network ---------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/net/Network.h"

#include <algorithm>
#include <cassert>

using namespace promises;
using namespace promises::net;
using sim::Time;

Network::Network(sim::Simulation &S, NetConfig C)
    : Sim(S), Cfg(C), Rand(C.Seed) {}

NodeId Network::addNode(std::string Name) {
  Nodes.push_back(Node{});
  Nodes.back().Name = std::move(Name);
  return static_cast<NodeId>(Nodes.size() - 1);
}

Network::Node &Network::node(NodeId N) {
  assert(N < Nodes.size() && "unknown node");
  return Nodes[N];
}

const Network::Node &Network::node(NodeId N) const {
  assert(N < Nodes.size() && "unknown node");
  return Nodes[N];
}

const std::string &Network::nodeName(NodeId N) const { return node(N).Name; }

Address Network::bind(NodeId N, std::function<void(Datagram)> Handler) {
  Node &Nd = node(N);
  assert(Nd.Up && "bind on a crashed node");
  Address A{N, Nd.NextPort++};
  Binds[A] = std::move(Handler);
  return A;
}

void Network::unbind(Address A) { Binds.erase(A); }

bool Network::isUp(NodeId N) const { return node(N).Up; }

void Network::setPartitioned(NodeId A, NodeId B, bool Cut) {
  auto Key = std::minmax(A, B);
  if (Cut)
    Partitions.insert({Key.first, Key.second});
  else
    Partitions.erase({Key.first, Key.second});
}

bool Network::isPartitioned(NodeId A, NodeId B) const {
  auto Key = std::minmax(A, B);
  return Partitions.count({Key.first, Key.second}) != 0;
}

void Network::setLinkLoss(NodeId A, NodeId B, double Rate) {
  auto Key = std::minmax(A, B);
  LinkLoss[{Key.first, Key.second}] = Rate;
}

double Network::lossBetween(NodeId A, NodeId B) const {
  auto Key = std::minmax(A, B);
  auto It = LinkLoss.find({Key.first, Key.second});
  return It != LinkLoss.end() ? It->second : Cfg.LossRate;
}

void Network::onCrash(NodeId N, std::function<void()> Cb) {
  node(N).CrashObservers.push_back(std::move(Cb));
}

void Network::crash(NodeId N) {
  Node &Nd = node(N);
  if (!Nd.Up)
    return;
  Nd.Up = false;
  // Remove every binding on the node; later deliveries count as drops.
  for (auto It = Binds.begin(); It != Binds.end();) {
    if (It->first.Node == N)
      It = Binds.erase(It);
    else
      ++It;
  }
  // Fire observers once, then clear them (restart re-registers).
  std::vector<std::function<void()>> Observers;
  Observers.swap(Nd.CrashObservers);
  for (auto &Cb : Observers)
    Cb();
}

void Network::restart(NodeId N) {
  Node &Nd = node(N);
  assert(!Nd.Up && "restart of a node that is up");
  Nd.Up = true;
  Nd.TxFreeAt = Sim.now();
  Nd.RxFreeAt = Sim.now();
}

const NetCounters &Network::counters(NodeId N) const {
  return node(N).Counters;
}

sim::Time Network::txFreeAt(NodeId N) const { return node(N).TxFreeAt; }

void Network::send(Address From, Address To, wire::Bytes Payload) {
  Node &Sender = node(From.Node);
  uint64_t WireBytes = Payload.size() + Cfg.HeaderBytes;
  ++Totals.DatagramsSent;
  Totals.BytesSent += WireBytes;
  ++Sender.Counters.DatagramsSent;
  Sender.Counters.BytesSent += WireBytes;

  if (!Sender.Up) {
    ++Totals.DatagramsDropped;
    return;
  }

  // The transmit path is a serial resource: the datagram occupies it for
  // the kernel-call overhead plus the per-byte cost.
  Time Busy = Cfg.SendKernelOverhead + WireBytes * Cfg.PerByte;
  Time Start = std::max(Sim.now(), Sender.TxFreeAt);
  Sender.TxFreeAt = Start + Busy;

  // Loss and partition at transmission time.
  if (isPartitioned(From.Node, To.Node) ||
      Rand.chance(lossBetween(From.Node, To.Node))) {
    ++Totals.DatagramsDropped;
    return;
  }

  Time Jitter = Cfg.JitterMax != 0 ? Rand.below(Cfg.JitterMax + 1) : 0;
  Time ArriveAt = Sender.TxFreeAt + Cfg.Propagation + Jitter;
  int Copies = Rand.chance(Cfg.DupRate) ? 2 : 1;
  for (int I = 0; I != Copies; ++I) {
    Datagram D{From, To, Payload};
    Sim.schedule(ArriveAt - Sim.now(),
                 [this, D = std::move(D)]() mutable { arrive(std::move(D)); });
  }
}

void Network::arrive(Datagram D) {
  // Conditions are re-checked at arrival so that partitions and crashes
  // that happen while a datagram is in flight still drop it (the source of
  // the paper's *asynchronous* breaks).
  Node &Receiver = node(D.To.Node);
  if (!Receiver.Up || isPartitioned(D.From.Node, D.To.Node)) {
    ++Totals.DatagramsDropped;
    return;
  }
  uint64_t WireBytes = D.Payload.size() + Cfg.HeaderBytes;
  Time Busy = Cfg.RecvKernelOverhead + WireBytes * Cfg.PerByte;
  Time Start = std::max(Sim.now(), Receiver.RxFreeAt);
  Receiver.RxFreeAt = Start + Busy;
  Sim.schedule(Start + Busy - Sim.now(), [this, D = std::move(D)]() mutable {
    Node &R = node(D.To.Node);
    if (!R.Up) {
      ++Totals.DatagramsDropped;
      return;
    }
    auto It = Binds.find(D.To);
    if (It == Binds.end()) {
      ++Totals.DatagramsDropped;
      return;
    }
    ++Totals.DatagramsDelivered;
    ++R.Counters.DatagramsDelivered;
    It->second(std::move(D));
  });
}
