//===- StreamTransport.cpp - Call-stream layer ----------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/stream/StreamTransport.h"

#include "promises/stream/SeqRing.h"

#include "promises/core/Exceptions.h"
#include "promises/sim/Sync.h"
#include "promises/support/Check.h"
#include "promises/support/StrUtil.h"
#include "promises/support/Trace.h"
#include "promises/wire/Frame.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace promises;
using namespace promises::stream;
using sim::Time;

//===----------------------------------------------------------------------===//
// Message framing
//===----------------------------------------------------------------------===//

namespace {
constexpr uint8_t KindCallBatch = 1;
constexpr uint8_t KindReplyBatch = 2;
constexpr uint8_t KindCancel = 3;

// Exact encoded sizes, kept in lock-step with the Codec<> definitions in
// Messages.h (fixed-width scalars + u32 length prefixes). The size feeds
// the encoder's reserve() so a framed encode is exactly one allocation —
// the one-alloc regression test in hotpath_test.cpp enforces that these
// never drift from the codecs.
size_t encodedSizeOf(const CallReq &C) {
  return 8 + 4 + 1 + 1 + 8 + (4 + C.Args.size());
}
size_t encodedSizeOf(const WireReply &R) {
  return 8 + 1 + 4 + (4 + R.Payload.size()) + (4 + R.Reason.size());
}

size_t messageSizeOf(const Message &M) {
  if (const auto *CB = std::get_if<CallBatchMsg>(&M)) {
    size_t N = 1 + 8 + 4 + 4 + 8 + 1 + 4;
    for (const CallReq &C : CB->Calls)
      N += encodedSizeOf(C);
    return N;
  }
  if (const auto *RB = std::get_if<ReplyBatchMsg>(&M)) {
    size_t N =
        1 + 8 + 4 + 4 + 8 + 8 + 1 + 1 + (4 + RB->BreakReason.size()) + 4;
    for (const WireReply &R : RB->Replies)
      N += encodedSizeOf(R);
    return N;
  }
  return 1 + 8 + 4 + 4 + 4 + 8 * std::get<CancelMsg>(M).Seqs.size();
}

void writeMessage(wire::Encoder &E, const Message &M) {
  if (const auto *CB = std::get_if<CallBatchMsg>(&M)) {
    E.writeU8(KindCallBatch);
    wire::Codec<CallBatchMsg>::encode(E, *CB);
  } else if (const auto *RB = std::get_if<ReplyBatchMsg>(&M)) {
    E.writeU8(KindReplyBatch);
    wire::Codec<ReplyBatchMsg>::encode(E, *RB);
  } else {
    E.writeU8(KindCancel);
    wire::Codec<CancelMsg>::encode(E, std::get<CancelMsg>(M));
  }
}
} // namespace

wire::Bytes promises::stream::encodeMessage(const Message &M) {
  wire::Encoder E;
  E.reserve(messageSizeOf(M));
  writeMessage(E, M);
  PROMISES_CHECK(!E.failed(), "stream messages must always encode");
  return E.take();
}

wire::Bytes promises::stream::encodeFramedMessage(const Message &M,
                                                  bool Checksum) {
  wire::Encoder E;
  wire::beginFrame(E, messageSizeOf(M));
  writeMessage(E, M);
  PROMISES_CHECK(!E.failed(), "stream messages must always encode");
  wire::Bytes Frame = wire::finishFrame(E, Checksum);
  PROMISES_CHECK(!E.failed(), "stream message exceeds the frame limit");
  return Frame;
}

std::optional<Message>
promises::stream::decodeMessage(const wire::Bytes &B) {
  wire::Decoder D(B);
  uint8_t Kind = D.readU8();
  Message M;
  if (Kind == KindCallBatch)
    M = wire::Codec<CallBatchMsg>::decode(D);
  else if (Kind == KindReplyBatch)
    M = wire::Codec<ReplyBatchMsg>::decode(D);
  else if (Kind == KindCancel)
    M = wire::Codec<CancelMsg>::decode(D);
  else
    return std::nullopt;
  if (D.failed() || !D.atEnd())
    return std::nullopt;
  return M;
}

//===----------------------------------------------------------------------===//
// Stream state
//===----------------------------------------------------------------------===//

struct StreamTransport::SenderStream {
  SenderStream(sim::Simulation &S, AgentId A, net::Address R, GroupId G)
      : Agent(A), Remote(R), Group(G),
        FulfillQ(std::make_unique<sim::WaitQueue>(S)), WindowMx(S),
        WindowCv(S) {}

  AgentId Agent;
  net::Address Remote;
  GroupId Group;
  Incarnation Inc = 1;

  Seq NextSeq = 1;             ///< The next issued call takes this seq.
  Seq TransmittedThrough = 0;  ///< Sent at least once through here.
  Seq AckedCallThrough = 0;    ///< Receiver delivered through here.
  Seq CompletedThroughMax = 0; ///< Receiver executed through here.
  Seq FulfilledThrough = 0;    ///< Outcomes handed to callbacks through
                               ///< here (always in order).
  Seq LastAckSent = 0;         ///< AckReplyThrough in our last batch.

  struct Slot {
    bool NoReply = false;
    bool IsRpc = false;
    sim::Time IssuedAt = 0; ///< For the call-latency histogram.
    ReplyCallback Cb;
  };
  /// Calls kept for retransmission: (AckedCallThrough, NextSeq).
  SeqRing<CallReq> Window;
  /// Callbacks awaiting outcomes: (FulfilledThrough, NextSeq).
  SeqRing<Slot> Slots;
  /// Explicit replies received but not yet consumable in order.
  SeqRing<WireReply> PendingReplies;
  size_t BufferedBytes = 0; ///< Untransmitted argument bytes.
  size_t WindowBytes = 0;   ///< Argument bytes retained in Window.

  bool Broken = false;
  bool BrokenIsFailure = false;
  std::string BreakReason;

  // Synch-window bookkeeping (reset by synch or by an RPC's reply).
  bool ExceptionSinceMark = false;
  bool BreakSinceMark = false;
  bool BreakSinceMarkIsFailure = false;
  std::string BreakSinceMarkReason;

  // Timers.
  bool FlushTimerArmed = false;
  uint64_t FlushTimer = 0;
  bool RetransTimerArmed = false;
  uint64_t RetransTimer = 0;
  bool AckTimerArmed = false;
  uint64_t AckTimer = 0;
  int Retries = 0;
  Seq LastProgressAcked = 0;
  Seq LastProgressFulfilled = 0;
  sim::Time CurrentRto = 0; ///< Backed-off retransmit timeout; 0 = base.

  std::unique_ptr<sim::WaitQueue> FulfillQ; ///< synch waiters.
  /// Processes currently blocked on this stream (synch, or a full
  /// in-flight window). A pinned stream must not be retired: the blocked
  /// frames hold references into it.
  int PinCount = 0;
  sim::SimMutex WindowMx;   ///< Guards the window-space condition.
  sim::SimCondVar WindowCv; ///< Signalled when window space frees.

  Seq untransmittedCount() const { return NextSeq - 1 - TransmittedThrough; }
  Seq outstanding() const { return NextSeq - 1 - FulfilledThrough; }
  void resetMark() {
    ExceptionSinceMark = false;
    BreakSinceMark = false;
    BreakSinceMarkIsFailure = false;
    BreakSinceMarkReason.clear();
  }
};

struct StreamTransport::ReceiverStream {
  uint64_t Tag = 0;
  net::Address SenderAddr;
  AgentId Agent = 0;
  GroupId Group = 0;
  Incarnation Inc = 1;

  Seq NextExpected = 1; ///< Next call seq to deliver to user code.
  SeqRing<CallReq> Future; ///< Received ahead of order.
  Seq CompletedThrough = 0;
  /// Calls executed beyond the contiguous prefix (only possible when the
  /// runtime opts a group into parallel execution); nullopt entries are
  /// normally-terminated sends with no explicit reply.
  SeqRing<std::optional<WireReply>> DoneAhead;
  SeqRing<WireReply> UnackedReplies;
  Seq FlushThrough = 0;     ///< Completions <= this flush immediately.
  Seq FlushWhenCompleted = 0; ///< RPC replies wanted as soon as the
                              ///< prefix reaches this seq.
  Seq LastSentCompleted = 0;
  Seq LastSentAck = 0;
  Seq LastBatchedReply = 0; ///< Highest reply ever included in a batch;
                            ///< normal batches send only newer ones.
  bool NeedAck = false; ///< Duplicate calls seen; re-ack soon.

  bool Broken = false;
  bool BrokenIsFailure = false;
  std::string BreakReason;

  /// Seqs cancelled by the sender. Undelivered seqs wait here until
  /// delivery order reaches them (then complete as cancelled without
  /// touching user code); already-delivered seqs are added after their
  /// cancel completion so a killed-but-critical-section call process
  /// cannot complete the call a second time when it finally unwinds.
  std::set<Seq> Cancelled;

  bool ReplyFlushTimerArmed = false;
  uint64_t ReplyFlushTimer = 0;
  bool AckTimerArmed = false;
  uint64_t AckTimer = 0;
};

//===----------------------------------------------------------------------===//
// Construction / teardown
//===----------------------------------------------------------------------===//

StreamTransport::StreamTransport(net::Network &Net, net::NodeId Node,
                                 StreamConfig Cfg)
    : Net(Net), Sim(Net.simulation()), Node(Node),
      Reg(Sim.metrics()), Cfg(Cfg) {
  Addr = Net.bind(Node, [this](net::Datagram D) { onDatagram(std::move(D)); });
  Net.onCrash(Node, [this] { shutdown(); });
  // (node, port) identifies this transport even with several per node.
  MetricLabels L{{"node", Net.nodeName(Node)},
                 {"port", strprintf("%u", Addr.Port)}};
  Counters.CallsIssued = &Reg.counter("stream.calls_issued", L);
  Counters.CallBatchesSent = &Reg.counter("stream.call_batches_sent", L);
  Counters.AckBatchesSent = &Reg.counter("stream.ack_batches_sent", L);
  Counters.ReplyBatchesSent = &Reg.counter("stream.reply_batches_sent", L);
  Counters.CallsDelivered = &Reg.counter("stream.calls_delivered", L);
  Counters.DuplicateCallsDropped =
      &Reg.counter("stream.duplicate_calls_dropped", L);
  Counters.Retransmissions = &Reg.counter("stream.retransmissions", L);
  Counters.Probes = &Reg.counter("stream.probes", L);
  Counters.SenderBreaks = &Reg.counter("stream.sender_breaks", L);
  Counters.ReceiverBreaks = &Reg.counter("stream.receiver_breaks", L);
  Counters.Restarts = &Reg.counter("stream.restarts", L);
  Counters.CallsFulfilled = &Reg.counter("stream.calls_fulfilled", L);
  Counters.CallsBroken = &Reg.counter("stream.calls_broken", L);
  Counters.CallsBlocked = &Reg.counter("stream.calls_blocked", L);
  Counters.RetransmittedBytes =
      &Reg.counter("stream.retransmitted_bytes", L);
  Counters.CancelsSent = &Reg.counter("stream.cancels_sent", L);
  Counters.CallsCancelled = &Reg.counter("call.cancelled", L);
  Counters.BreakerFastFails = &Reg.counter("breaker.fast_fails", L);
  Counters.BreakerOpens = &Reg.counter("breaker.opened", L);
  Counters.BreakerCloses = &Reg.counter("breaker.closed", L);
  Counters.BreakerProbes = &Reg.counter("breaker.probes", L);
  Counters.FramesCorruptDropped =
      &Reg.counter("net.frames_corrupt_dropped", L);
  Counters.MalformedDropped = &Reg.counter("stream.malformed_dropped", L);
  Counters.FramesTrailingBytes =
      &Reg.counter("net.frames_trailing_bytes", L);
  Reg.gaugeProbe("breaker.state", [this] {
    return static_cast<double>(openBreakerCount());
  }, L);
  Counters.CallLatencyUs = &Reg.histogram("stream.call_latency_us", L);
  Counters.BatchOccupancy = &Reg.histogram("stream.batch_occupancy", L);
  Counters.ReplyOccupancy = &Reg.histogram("stream.reply_batch_occupancy", L);
  Counters.RetransmitBatch = &Reg.histogram("stream.retransmit_batch", L);
  Counters.WindowOccupancy = &Reg.histogram("stream.window_occupancy", L);
  Counters.BlockTimeUs = &Reg.histogram("stream.block_time_us", L);
  // Endpoint identity decorrelates the jitter streams of transports that
  // share a seed without sacrificing replay determinism.
  RetransRng.reseed(Cfg.RetransSeed ^
                    (static_cast<uint64_t>(Node) << 32) ^ Addr.Port);
}

StreamCounters StreamTransport::counters() const {
  return {Counters.CallsIssued->value(),
          Counters.CallBatchesSent->value(),
          Counters.AckBatchesSent->value(),
          Counters.ReplyBatchesSent->value(),
          Counters.CallsDelivered->value(),
          Counters.DuplicateCallsDropped->value(),
          Counters.Retransmissions->value(),
          Counters.Probes->value(),
          Counters.SenderBreaks->value(),
          Counters.ReceiverBreaks->value(),
          Counters.Restarts->value(),
          Counters.CallsFulfilled->value(),
          Counters.CallsBroken->value(),
          Counters.CallsBlocked->value(),
          Counters.RetransmittedBytes->value(),
          Counters.CancelsSent->value(),
          Counters.CallsCancelled->value(),
          Counters.BreakerFastFails->value(),
          Counters.BreakerOpens->value(),
          Counters.BreakerCloses->value(),
          Counters.BreakerProbes->value(),
          Counters.FramesCorruptDropped->value(),
          Counters.MalformedDropped->value(),
          Counters.FramesTrailingBytes->value()};
}

StreamTransport::~StreamTransport() {
  shutdown();
  // Freeze the breaker.state probe at its final value: the registry
  // outlives this transport, and a probe capturing `this` must not dangle.
  MetricLabels L{{"node", Net.nodeName(Node)},
                 {"port", strprintf("%u", Addr.Port)}};
  double Final = static_cast<double>(openBreakerCount());
  Reg.gaugeProbe("breaker.state", [Final] { return Final; }, L);
}

void StreamTransport::shutdown() {
  if (Dead)
    return;
  Dead = true;
  if (Net.isUp(Node))
    Net.unbind(Addr);
  // Wake order is scheduling-visible: blocked processes resume in notify
  // order. The pre-sharding node-global map iterated senders in
  // (agent, address, group) key order, so reproduce exactly that order
  // here — sharding is a representation change and must not perturb
  // schedules (the chaos trace-hash oracle holds us to it).
  std::vector<std::tuple<AgentId, net::Address, GroupId, SenderStream *>>
      Ordered;
  for (auto &[RemoteAddr, Shard] : SenderShards)
    for (auto &[SK, S] : Shard.Streams)
      Ordered.emplace_back(SK.first, RemoteAddr, SK.second, S.get());
  std::sort(Ordered.begin(), Ordered.end(),
            [](const auto &A, const auto &B) {
              if (std::get<0>(A) != std::get<0>(B))
                return std::get<0>(A) < std::get<0>(B);
              if (!(std::get<1>(A) == std::get<1>(B)))
                return std::get<1>(A) < std::get<1>(B);
              return std::get<2>(A) < std::get<2>(B);
            });
  for (auto &[A, RemoteAddr, G, S] : Ordered) {
    (void)A;
    (void)RemoteAddr;
    (void)G;
    if (S->FlushTimerArmed)
      Sim.cancel(S->FlushTimer);
    if (S->RetransTimerArmed)
      Sim.cancel(S->RetransTimer);
    if (S->AckTimerArmed)
      Sim.cancel(S->AckTimer);
    S->FlushTimerArmed = S->RetransTimerArmed = S->AckTimerArmed = false;
    // Processes blocked in synch or on a full window must not hang on a
    // dead transport.
    S->FulfillQ->notifyAll();
    S->WindowCv.notifyAll();
  }
  for (auto &[FromAddr, Shard] : ReceiverShards) {
    for (auto &[SK, R] : Shard.Streams) {
      if (R->ReplyFlushTimerArmed)
        Sim.cancel(R->ReplyFlushTimer);
      if (R->AckTimerArmed)
        Sim.cancel(R->AckTimer);
      R->ReplyFlushTimerArmed = R->AckTimerArmed = false;
    }
  }
  for (auto &[K, B] : Breakers) {
    if (B.ProbeTimerArmed)
      Sim.cancel(B.ProbeTimer);
    B.ProbeTimerArmed = false;
  }
}

//===----------------------------------------------------------------------===//
// Sender side
//===----------------------------------------------------------------------===//

StreamTransport::SenderShard &
StreamTransport::senderShard(const net::Address &R) {
  // One-entry cache: the hot paths (issue, reply handling) hammer a single
  // endpoint at a time, and shards are never erased, so the pointer is
  // stable for the transport's lifetime.
  if (LastSenderShard && LastSenderAddr == R)
    return *LastSenderShard;
  SenderShard &Sh = SenderShards[R];
  LastSenderAddr = R;
  LastSenderShard = &Sh;
  return Sh;
}

StreamTransport::SenderShard *
StreamTransport::findSenderShard(const net::Address &R) const {
  if (LastSenderShard && LastSenderAddr == R)
    return LastSenderShard;
  auto It = SenderShards.find(R);
  if (It == SenderShards.end())
    return nullptr;
  LastSenderAddr = R;
  LastSenderShard = const_cast<SenderShard *>(&It->second);
  return LastSenderShard;
}

StreamTransport::ReceiverShard *
StreamTransport::findReceiverShard(const net::Address &From) const {
  auto It = ReceiverShards.find(From);
  return It != ReceiverShards.end()
             ? const_cast<ReceiverShard *>(&It->second)
             : nullptr;
}

size_t StreamTransport::senderStreamCount() const {
  size_t N = 0;
  for (const auto &[Addr2, Sh] : SenderShards)
    N += Sh.Streams.size();
  return N;
}

size_t StreamTransport::receiverStreamCount() const {
  size_t N = 0;
  for (const auto &[Addr2, Sh] : ReceiverShards)
    N += Sh.Streams.size();
  return N;
}

StreamTransport::SenderStream *
StreamTransport::findSender(AgentId A, net::Address R, GroupId G) const {
  SenderShard *Sh = findSenderShard(R);
  if (!Sh)
    return nullptr;
  auto It = Sh->Streams.find(StreamKey{A, G});
  return It != Sh->Streams.end() ? It->second.get() : nullptr;
}

StreamTransport::SenderStream &
StreamTransport::getSender(AgentId A, net::Address R, GroupId G) {
  SenderKey Key = senderKey(A, R, G);
  auto &Slot = senderShard(R).Streams[StreamKey{A, G}];
  if (!Slot) {
    Slot = std::make_unique<SenderStream>(Sim, A, R, G);
    auto It = Retired.find(Key);
    if (It != Retired.end()) {
      // Resurrect the retired stream as the broken stream it was: the
      // preserved incarnation keeps the receiver's stale-incarnation
      // filter working, and the preserved break outcome keeps the
      // broken-stream paths (AutoRestart, synch marks) uniform.
      Slot->Inc = It->second.Inc;
      Slot->Broken = true;
      Slot->BrokenIsFailure = It->second.IsFailure;
      Slot->BreakReason = It->second.Reason;
      Slot->ExceptionSinceMark = It->second.ExceptionSinceMark;
      Slot->BreakSinceMark = It->second.BreakSinceMark;
      Slot->BreakSinceMarkIsFailure = It->second.BreakSinceMarkIsFailure;
      Slot->BreakSinceMarkReason = It->second.BreakSinceMarkReason;
      Retired.erase(It);
    }
  }
  return *Slot;
}

bool StreamTransport::windowFull(const SenderStream &S) const {
  return (Cfg.MaxInFlightCalls > 0 &&
          S.Window.size() >= Cfg.MaxInFlightCalls) ||
         (Cfg.MaxInFlightBytes > 0 && S.WindowBytes >= Cfg.MaxInFlightBytes);
}

void StreamTransport::blockForWindow(SenderStream &S) {
  sim::Time T0 = Sim.now();
  Counters.CallsBlocked->inc();
  if (Reg.enabled())
    Reg.emit({T0, EventKind::SenderBlocked, Node, S.Agent, S.Window.size(),
              0, {}});
  if (traceEnabled())
    tracef("window full agent=%llu inflight=%zu/%zu bytes=%zu/%zu",
           static_cast<unsigned long long>(S.Agent), S.Window.size(),
           Cfg.MaxInFlightCalls, S.WindowBytes, Cfg.MaxInFlightBytes);
  ++S.PinCount;
  struct Unpin {
    int &Count;
    ~Unpin() { --Count; }
  } U{S.PinCount};
  {
    // FIFO mutex + condition: blocked issuers reacquire in block order,
    // so window space is handed out in issue (= seq) order.
    sim::SimMutex::Guard G(S.WindowMx);
    while (!Dead && !S.Broken && windowFull(S))
      S.WindowCv.wait(S.WindowMx);
  }
  sim::Time Blocked = Sim.now() - T0;
  Counters.BlockTimeUs->observe(static_cast<double>(Blocked) / 1e3);
  if (Reg.enabled())
    Reg.emit({Sim.now(), EventKind::SenderUnblocked, Node,
              S.Agent, S.Window.size(), Blocked, {}});
}

void StreamTransport::maybeRetireSender(const SenderKey &K) {
  if (Dead)
    return;
  SenderShard *Sh = findSenderShard(std::get<1>(K));
  if (!Sh)
    return;
  auto It = Sh->Streams.find(StreamKey{std::get<0>(K), std::get<2>(K)});
  if (It == Sh->Streams.end())
    return;
  SenderStream &S = *It->second;
  if (!S.Broken || S.PinCount > 0)
    return;
  assert(!S.FlushTimerArmed && !S.RetransTimerArmed && !S.AckTimerArmed &&
         "broken stream left a timer armed");
  assert(S.Slots.empty() && S.Window.empty() &&
         "broken stream retains calls");
  RetiredSender T;
  T.Inc = S.Inc;
  T.IsFailure = S.BrokenIsFailure;
  T.Reason = S.BreakReason;
  T.ExceptionSinceMark = S.ExceptionSinceMark;
  T.BreakSinceMark = S.BreakSinceMark;
  T.BreakSinceMarkIsFailure = S.BreakSinceMarkIsFailure;
  T.BreakSinceMarkReason = S.BreakSinceMarkReason;
  Retired[K] = std::move(T);
  // The stream goes; its (empty) shard stays warm for the next stream to
  // this endpoint.
  Sh->Streams.erase(It);
}

StreamTransport::IssueResult
StreamTransport::issueCall(AgentId Agent, net::Address Remote, GroupId Group,
                           PortId Port, wire::Bytes Args, bool NoReply,
                           bool IsRpc, ReplyCallback OnReply,
                           sim::Time DeadlineAt) {
  if (Dead)
    return {false, false, core::reasons::TransportShutDown};
  // Circuit breaker: a tripped endpoint fails fast before any stream state
  // is touched — no seq consumed, no datagram sent, no promise blocks.
  if (Cfg.BreakerThreshold > 0) {
    SenderKey Key = senderKey(Agent, Remote, Group);
    auto BIt = Breakers.find(Key);
    if (BIt != Breakers.end() && BIt->second.State != 0) {
      Counters.BreakerFastFails->inc();
      if (traceEnabled())
        tracef("fast-fail agent=%llu group=%u: breaker open",
               static_cast<unsigned long long>(Agent), Group);
      armBreakerProbe(Key);
      return {false, false, core::reasons::CircuitOpen};
    }
  }
  SenderStream &S = getSender(Agent, Remote, Group);
  // Flow control: block (in issue order) until the in-flight window has
  // room. Only simulated processes can block; scheduler-context callers
  // (timers, tests poking the transport directly) bypass the limit. A
  // broken stream's window is empty, so it never blocks — the break
  // handling below decides what happens to the call.
  if ((Cfg.MaxInFlightCalls > 0 || Cfg.MaxInFlightBytes > 0) &&
      sim::Simulation::inProcess() && !S.Broken && windowFull(S)) {
    blockForWindow(S);
    if (Dead)
      return {false, false, core::reasons::TransportShutDown};
  }
  if (S.Broken) {
    if (!Cfg.AutoRestart) {
      IssueResult R{false, S.BrokenIsFailure, S.BreakReason};
      maybeRetireSender(senderKey(Agent, Remote, Group));
      return R;
    }
    reincarnate(S);
  }
  Seq Sq = S.NextSeq++;
  CallReq Req;
  Req.S = Sq;
  Req.Port = Port;
  Req.NoReply = NoReply;
  Req.FlushReply = IsRpc;
  Req.DeadlineNs = DeadlineAt;
  S.BufferedBytes += Args.size();
  S.WindowBytes += Args.size();
  Req.Args = std::move(Args);
  S.Window.insert(Sq, std::move(Req));
  Counters.WindowOccupancy->observe(static_cast<double>(S.Window.size()));
  SenderStream::Slot Slot;
  Slot.NoReply = NoReply;
  Slot.IsRpc = IsRpc;
  Slot.IssuedAt = Sim.now();
  Slot.Cb = std::move(OnReply);
  S.Slots.insert(Sq, std::move(Slot));
  Counters.CallsIssued->inc();
  if (Reg.enabled())
    Reg.emit({Sim.now(), EventKind::CallIssued, Node, Agent, Sq,
              0, {}});
  if (traceEnabled())
    tracef("issue agent=%llu group=%u port=%u seq=%llu%s%s",
           static_cast<unsigned long long>(Agent), Group, Port,
           static_cast<unsigned long long>(Sq), NoReply ? " send" : "",
           IsRpc ? " rpc" : "");

  if (IsRpc) {
    // RPCs "are sent over the network immediately, to minimize the delay
    // for a call" — and they carry any earlier buffered stream calls with
    // them, preserving order.
    transmitNewCalls(S, /*FlushReplies=*/true);
  } else if (S.untransmittedCount() >= Cfg.MaxBatchCalls ||
             S.BufferedBytes >= Cfg.MaxBatchBytes) {
    transmitNewCalls(S, /*FlushReplies=*/false);
  } else {
    armSenderFlushTimer(S);
  }
  return {true, false, {}, Sq, S.Inc};
}

bool StreamTransport::cancelCall(AgentId Agent, net::Address Remote,
                                 GroupId Group, Seq Sq, Incarnation Inc) {
  if (Dead)
    return false;
  SenderStream *S = findSender(Agent, Remote, Group);
  if (!S || S->Broken || S->Inc != Inc)
    return false;
  if (Sq <= S->FulfilledThrough || Sq >= S->NextSeq)
    return false; // Outcome already known, or never issued.
  // The receiver can only act on a cancel for a call it will see: push any
  // untransmitted prefix out first so the cancel never overtakes the call
  // into a void.
  if (S->TransmittedThrough < Sq)
    transmitNewCalls(*S, /*FlushReplies=*/false);
  CancelMsg M;
  M.Agent = Agent;
  M.Group = Group;
  M.Inc = S->Inc;
  M.Seqs.push_back(Sq);
  Counters.CancelsSent->inc();
  if (traceEnabled())
    tracef("tx cancel agent=%llu inc=%u seq=%llu",
           static_cast<unsigned long long>(Agent), S->Inc,
           static_cast<unsigned long long>(Sq));
  sendMessage(Remote, Message(std::move(M)));
  return true;
}

void StreamTransport::transmitNewCalls(SenderStream &S, bool FlushReplies) {
  if (S.Broken || Dead)
    return;
  Seq From = S.TransmittedThrough + 1;
  Seq Through = S.NextSeq - 1;
  bool HasReplyGap = S.FulfilledThrough < S.TransmittedThrough;
  if (From > Through && !(FlushReplies && HasReplyGap))
    return; // Nothing to send and nothing to flush out of the far side.
  sendCallBatch(S, From, Through, FlushReplies, /*IsRetransmit=*/false);
  S.TransmittedThrough = Through;
  S.BufferedBytes = 0;
  if (S.FlushTimerArmed) {
    Sim.cancel(S.FlushTimer);
    S.FlushTimerArmed = false;
  }
  armSenderRetransTimer(S);
}

void StreamTransport::sendCallBatch(SenderStream &S, Seq FromSeq,
                                    Seq ThroughSeq, bool FlushReplies,
                                    bool IsRetransmit) {
  CallBatchMsg M;
  M.Agent = S.Agent;
  M.Group = S.Group;
  M.Inc = S.Inc;
  M.AckReplyThrough = S.FulfilledThrough;
  M.FlushReplies = FlushReplies;
  for (Seq Q = FromSeq; Q <= ThroughSeq; ++Q) {
    const CallReq *C = S.Window.find(Q);
    PROMISES_CHECK(C != nullptr, "call missing from window");
    M.Calls.push_back(*C);
  }
  if (IsRetransmit) {
    Counters.Retransmissions->inc(M.Calls.size());
    Counters.RetransmitBatch->observe(static_cast<double>(M.Calls.size()));
    size_t Bytes = 0;
    for (const CallReq &C : M.Calls)
      Bytes += C.Args.size();
    Counters.RetransmittedBytes->inc(Bytes);
  }
  S.LastAckSent = S.FulfilledThrough;
  if (M.Calls.empty()) {
    Counters.AckBatchesSent->inc();
  } else {
    Counters.CallBatchesSent->inc();
    if (!IsRetransmit)
      Counters.BatchOccupancy->observe(static_cast<double>(M.Calls.size()));
  }
  if (Reg.enabled())
    Reg.emit({Sim.now(), EventKind::CallBatchTx, Node, S.Agent,
              M.Calls.size(), 0, {}});
  if (traceEnabled())
    tracef("tx call-batch agent=%llu inc=%u calls=%zu ack=%llu%s%s",
           static_cast<unsigned long long>(S.Agent), S.Inc, M.Calls.size(),
           static_cast<unsigned long long>(M.AckReplyThrough),
           M.FlushReplies ? " flush" : "", IsRetransmit ? " retrans" : "");
  sendMessage(S.Remote, Message(std::move(M)));
}

void StreamTransport::armSenderFlushTimer(SenderStream &S) {
  if (S.FlushTimerArmed || S.Broken)
    return;
  S.FlushTimerArmed = true;
  S.FlushTimer = Sim.schedule(Cfg.FlushInterval, [this, &S] {
    S.FlushTimerArmed = false;
    if (Dead || S.Broken)
      return;
    if (S.untransmittedCount() > 0)
      transmitNewCalls(S, /*FlushReplies=*/false);
  });
}

/// Re-sends the unacknowledged window in chunks that respect the batch
/// limits, exactly like fresh transmission does. One chunk always carries
/// at least one call, even when that call alone exceeds MaxBatchBytes.
/// Only the last chunk asks the receiver to flush replies: one recovery
/// reply-batch per round, not one per chunk.
void StreamTransport::retransmitWindow(SenderStream &S) {
  size_t MaxCalls = std::max<size_t>(1, Cfg.MaxBatchCalls);
  Seq From = S.AckedCallThrough + 1;
  Seq Last = S.TransmittedThrough;
  while (From <= Last) {
    Seq Through = From;
    size_t Bytes = S.Window.at(From).Args.size();
    while (Through < Last && Through - From + 1 < MaxCalls) {
      size_t NextBytes = S.Window.at(Through + 1).Args.size();
      if (Bytes + NextBytes > Cfg.MaxBatchBytes)
        break;
      Bytes += NextBytes;
      ++Through;
    }
    sendCallBatch(S, From, Through, /*FlushReplies=*/Through == Last,
                  /*IsRetransmit=*/true);
    From = Through + 1;
  }
}

void StreamTransport::armSenderRetransTimer(SenderStream &S) {
  if (S.RetransTimerArmed || S.Broken || Dead)
    return;
  S.RetransTimerArmed = true;
  sim::Time Base = S.CurrentRto ? S.CurrentRto : Cfg.RetransmitTimeout;
  sim::Time Delay = Base;
  if (Cfg.RetransJitter > 0) {
    auto Span = static_cast<uint64_t>(static_cast<double>(Base) *
                                      Cfg.RetransJitter);
    if (Span > 0)
      Delay += static_cast<sim::Time>(RetransRng.below(Span + 1));
  }
  S.RetransTimer = Sim.schedule(Delay, [this, &S] {
    S.RetransTimerArmed = false;
    if (Dead || S.Broken)
      return;
    onSenderRetransTimer(S);
  });
}

void StreamTransport::onSenderRetransTimer(SenderStream &S) {
  bool AwaitingAck = S.AckedCallThrough < S.TransmittedThrough;
  bool AwaitingReply = S.FulfilledThrough < S.TransmittedThrough;
  if (!AwaitingAck && !AwaitingReply) {
    S.Retries = 0;
    S.CurrentRto = 0;
    return; // Quiesced; the timer stays disarmed until the next transmit.
  }
  // Progress since the last firing: all is well — reset the retry budget
  // (and the backoff) and keep waiting without retransmitting or probing.
  if (S.AckedCallThrough > S.LastProgressAcked ||
      S.FulfilledThrough > S.LastProgressFulfilled) {
    S.Retries = 0;
    S.CurrentRto = 0;
    S.LastProgressAcked = S.AckedCallThrough;
    S.LastProgressFulfilled = S.FulfilledThrough;
    armSenderRetransTimer(S);
    return;
  }
  S.LastProgressAcked = S.AckedCallThrough;
  S.LastProgressFulfilled = S.FulfilledThrough;
  if (++S.Retries > Cfg.MaxRetries) {
    // The system "tried hard"; give up and break (paper, Section 2).
    SenderKey Key = senderKey(S.Agent, S.Remote, S.Group);
    Incarnation Inc = S.Inc;
    breakSender(S, /*IsFailure=*/false, core::reasons::CannotCommunicate);
    // Only timeout breaks feed the circuit breaker: they are the
    // endpoint-unreachable signal. Receiver-reported breaks arrive in
    // reply batches, proving reachability.
    if (Cfg.BreakerThreshold > 0)
      breakerOnTimeoutBreak(Key, Inc);
    maybeRetireSender(Key);
    return;
  }
  if (AwaitingAck) {
    retransmitWindow(S);
  } else {
    // Calls delivered but replies missing: probe so the receiver resends
    // its unacked-reply state.
    Counters.Probes->inc();
    sendCallBatch(S, 1, 0, /*FlushReplies=*/true, /*IsRetransmit=*/false);
  }
  // An unproductive round: back off before the next firing, up to the cap.
  sim::Time Cap = std::max(Cfg.RetransmitTimeoutMax, Cfg.RetransmitTimeout);
  sim::Time Cur = S.CurrentRto ? S.CurrentRto : Cfg.RetransmitTimeout;
  S.CurrentRto = backoffRto(Cur, Cfg.RetransBackoff, Cap);
  armSenderRetransTimer(S);
}

void StreamTransport::armSenderAckTimer(SenderStream &S) {
  if (S.AckTimerArmed || S.Broken || Dead)
    return;
  S.AckTimerArmed = true;
  S.AckTimer = Sim.schedule(Cfg.AckDelay, [this, &S] {
    S.AckTimerArmed = false;
    if (Dead || S.Broken)
      return;
    if (S.LastAckSent < S.FulfilledThrough)
      sendCallBatch(S, 1, 0, /*FlushReplies=*/false, /*IsRetransmit=*/false);
  });
}

void StreamTransport::handleReplyBatch(const net::Address &From,
                                       ReplyBatchMsg &M) {
  // Any reply batch proves the endpoint is reachable, so it closes an
  // open/half-open breaker — before the liveness checks below, because the
  // probed stream is typically broken or already retired to a tombstone.
  if (Cfg.BreakerThreshold > 0)
    breakerOnReply(senderKey(M.Agent, From, M.Group));
  SenderStream *S = findSender(M.Agent, From, M.Group);
  if (!S || S->Broken || M.Inc != S->Inc)
    return;

  // Delivery acknowledgements let the retransmission window shrink — and
  // window space frees the oldest blocked issuer first (FIFO wakeup).
  if (M.AckCallThrough > S->AckedCallThrough) {
    S->AckedCallThrough = M.AckCallThrough;
    while (!S->Window.empty() &&
           S->Window.firstSeq() <= S->AckedCallThrough) {
      Seq Q = S->Window.firstSeq();
      S->WindowBytes -= S->Window.at(Q).Args.size();
      S->Window.erase(Q);
    }
    S->WindowCv.notifyAll();
  }

  // Merge explicit replies; detect a batch that carries nothing new
  // (the receiver missed our ack — re-ack immediately).
  bool AnyNew = false;
  for (WireReply &R : M.Replies) {
    if (R.S > S->FulfilledThrough && !S->PendingReplies.contains(R.S)) {
      S->PendingReplies.insert(R.S, std::move(R));
      AnyNew = true;
    }
  }
  if (M.CompletedThrough > S->CompletedThroughMax) {
    S->CompletedThroughMax = M.CompletedThrough;
    AnyNew = true;
  }

  // Consume outcomes in order first (a synchronous break leaves calls up
  // to CompletedThrough unaffected), then apply the break to the rest.
  Seq Before = S->FulfilledThrough;
  fulfillInOrder(*S);
  if (M.Broken) {
    AgentId Agent = S->Agent;
    net::Address Remote = S->Remote;
    GroupId Group = S->Group;
    breakSender(*S, M.BreakIsFailure, M.BreakReason);
    maybeRetireSender(senderKey(Agent, Remote, Group));
    return;
  }
  if (!M.Replies.empty() && !AnyNew) {
    // Nothing new: the receiver missed our ack — repeat it immediately.
    sendCallBatch(*S, 1, 0, /*FlushReplies=*/false, /*IsRetransmit=*/false);
    return;
  }
  if (S->FulfilledThrough > Before)
    armSenderAckTimer(*S);
}

void StreamTransport::fulfillInOrder(SenderStream &S) {
  bool Progress = false;
  while (S.FulfilledThrough < S.CompletedThroughMax) {
    Seq Next = S.FulfilledThrough + 1;
    SenderStream::Slot *Slot = S.Slots.find(Next);
    PROMISES_CHECK(Slot != nullptr, "missing reply slot");
    ReplyOutcome O;
    WireReply *PR = S.PendingReplies.find(Next);
    if (PR) {
      // The entry is consumed exactly once (erased below): move the
      // payload out rather than copying it.
      WireReply &W = *PR;
      switch (W.Status) {
      case ReplyStatus::Normal:
        O.K = ReplyOutcome::Kind::Normal;
        O.Payload = std::move(W.Payload);
        break;
      case ReplyStatus::Exception:
        O.K = ReplyOutcome::Kind::Exception;
        O.ExTag = W.ExTag;
        O.Payload = std::move(W.Payload);
        break;
      case ReplyStatus::Failure:
        O.K = ReplyOutcome::Kind::Failure;
        O.Reason = std::move(W.Reason);
        break;
      case ReplyStatus::Unavailable:
        // Per-call unavailability (deadline expired, cancelled, shed):
        // the stream itself stays healthy.
        O.K = ReplyOutcome::Kind::Unavailable;
        O.Reason = std::move(W.Reason);
        break;
      }
      S.PendingReplies.erase(Next);
    } else if (Slot->NoReply) {
      O.K = ReplyOutcome::Kind::Normal; // A send that completed normally.
    } else {
      break; // The explicit reply is still in flight; probes recover it.
    }
    S.FulfilledThrough = Next;
    Progress = true;
    Counters.CallsFulfilled->inc();
    if (Reg.enabled()) {
      sim::Time Now = Sim.now();
      sim::Time Lat = Now - Slot->IssuedAt;
      Counters.CallLatencyUs->observe(static_cast<double>(Lat) / 1e3);
      Reg.emit({Slot->IssuedAt, EventKind::CallSpan, Node, S.Agent,
                Next, Lat, {}});
    }
    bool WasRpc = Slot->IsRpc;
    ReplyCallback Cb = std::move(Slot->Cb);
    S.Slots.erase(Next);
    if (WasRpc) {
      // "since the last synch or regular RPC on the stream": an RPC's own
      // completion starts a fresh synch window.
      S.resetMark();
    } else if (O.K != ReplyOutcome::Kind::Normal) {
      S.ExceptionSinceMark = true;
    }
    if (Cb)
      Cb(O);
  }
  if (Progress)
    S.FulfillQ->notifyAll();
}

void StreamTransport::breakSender(SenderStream &S, bool IsFailure,
                                  std::string Reason) {
  if (S.Broken)
    return;
  Counters.SenderBreaks->inc();
  if (Reg.enabled())
    Reg.emit({Sim.now(), EventKind::SenderBreak, Node, S.Agent,
              S.Inc, 0, Reason});
  if (traceEnabled())
    tracef("break sender agent=%llu inc=%u %s: %s",
           static_cast<unsigned long long>(S.Agent), S.Inc,
           IsFailure ? "failure" : "unavailable", Reason.c_str());
  S.Broken = true;
  S.BrokenIsFailure = IsFailure;
  S.BreakReason = Reason;
  S.BreakSinceMark = true;
  S.BreakSinceMarkIsFailure = IsFailure;
  S.BreakSinceMarkReason = Reason;

  ReplyOutcome O = IsFailure ? ReplyOutcome::failure(Reason)
                             : ReplyOutcome::unavailable(Reason);
  // Every call without an outcome terminates with the break outcome, still
  // in call order.
  while (!S.Slots.empty()) {
    Seq First = S.Slots.firstSeq();
    PROMISES_CHECK(First == S.FulfilledThrough + 1, "slot gap at break");
    S.FulfilledThrough = First;
    Counters.CallsBroken->inc();
    ReplyCallback Cb = std::move(S.Slots.at(First).Cb);
    S.Slots.erase(First);
    if (Cb)
      Cb(O);
  }
  S.Window.clear();
  S.PendingReplies.clear();
  S.BufferedBytes = 0;
  S.WindowBytes = 0;
  if (S.FlushTimerArmed) {
    Sim.cancel(S.FlushTimer);
    S.FlushTimerArmed = false;
  }
  if (S.RetransTimerArmed) {
    Sim.cancel(S.RetransTimer);
    S.RetransTimerArmed = false;
  }
  if (S.AckTimerArmed) {
    Sim.cancel(S.AckTimer);
    S.AckTimerArmed = false;
  }
  S.FulfillQ->notifyAll();
  // Issuers blocked on window space observe the break and decide between
  // reincarnation and failure when they resume.
  S.WindowCv.notifyAll();
}

void StreamTransport::reincarnate(SenderStream &S) {
  PROMISES_CHECK(S.Broken, "reincarnate of a live stream");
  Counters.Restarts->inc();
  if (Reg.enabled())
    Reg.emit({Sim.now(), EventKind::StreamRestart, Node, S.Agent,
              static_cast<uint64_t>(S.Inc) + 1, 0, {}});
  if (traceEnabled())
    tracef("restart agent=%llu inc=%u->%u",
           static_cast<unsigned long long>(S.Agent), S.Inc, S.Inc + 1);
  ++S.Inc;
  S.NextSeq = 1;
  S.TransmittedThrough = 0;
  S.AckedCallThrough = 0;
  S.CompletedThroughMax = 0;
  S.FulfilledThrough = 0;
  S.LastAckSent = 0;
  S.Window.clear();
  S.Slots.clear();
  S.PendingReplies.clear();
  S.BufferedBytes = 0;
  S.WindowBytes = 0;
  S.Broken = false;
  S.BrokenIsFailure = false;
  S.BreakReason.clear();
  S.Retries = 0;
  S.LastProgressAcked = 0;
  S.LastProgressFulfilled = 0;
  S.CurrentRto = 0;
  S.WindowCv.notifyAll(); // The fresh incarnation's window is empty.
}

void StreamTransport::flush(AgentId Agent, net::Address Remote,
                            GroupId Group) {
  if (Dead)
    return;
  SenderStream *S = findSender(Agent, Remote, Group);
  if (!S || S->Broken)
    return;
  transmitNewCalls(*S, /*FlushReplies=*/true);
}

SynchOutcome StreamTransport::synch(AgentId Agent, net::Address Remote,
                                    GroupId Group) {
  assert(sim::Simulation::inProcess() &&
         "synch must be called from a simulated process");
  SenderKey Key = senderKey(Agent, Remote, Group);
  SenderStream &S = getSender(Agent, Remote, Group);
  if (!S.Broken)
    transmitNewCalls(S, /*FlushReplies=*/true);
  {
    // Pin the stream across the blocking wait: a break must not retire it
    // out from under this frame.
    ++S.PinCount;
    struct Unpin {
      int &Count;
      ~Unpin() { --Count; }
    } U{S.PinCount};
    while (!S.Broken && !Dead && S.outstanding() > 0)
      S.FulfillQ->wait();
  }
  SynchOutcome Out;
  if (Dead && S.outstanding() > 0) {
    // The transport died under us; the window cannot be vouched for.
    Out.S = SynchOutcome::Status::Unavailable;
    Out.Reason = core::reasons::TransportShutDown;
    return Out;
  }
  if (S.BreakSinceMark) {
    Out.S = S.BreakSinceMarkIsFailure ? SynchOutcome::Status::Failure
                                      : SynchOutcome::Status::Unavailable;
    Out.Reason = S.BreakSinceMarkReason;
  } else if (S.ExceptionSinceMark) {
    Out.S = SynchOutcome::Status::ExceptionReply;
  }
  S.resetMark();
  maybeRetireSender(Key);
  return Out;
}

void StreamTransport::restart(AgentId Agent, net::Address Remote,
                              GroupId Group) {
  if (Dead)
    return;
  SenderStream &S = getSender(Agent, Remote, Group);
  if (!S.Broken)
    breakSender(S, /*IsFailure=*/false, core::reasons::StreamRestarted);
  reincarnate(S);
}

bool StreamTransport::isBroken(AgentId Agent, net::Address Remote,
                               GroupId Group) const {
  if (SenderStream *S = findSender(Agent, Remote, Group))
    return S->Broken;
  return Retired.count(senderKey(Agent, Remote, Group)) != 0;
}

size_t StreamTransport::armedTimerCount() const {
  size_t N = 0;
  for (const auto &[Addr2, Sh] : SenderShards)
    for (const auto &[SK, S] : Sh.Streams)
      N += static_cast<size_t>(S->FlushTimerArmed) +
           static_cast<size_t>(S->RetransTimerArmed) +
           static_cast<size_t>(S->AckTimerArmed);
  for (const auto &[Addr2, Sh] : ReceiverShards)
    for (const auto &[SK, R] : Sh.Streams)
      N += static_cast<size_t>(R->ReplyFlushTimerArmed) +
           static_cast<size_t>(R->AckTimerArmed);
  for (const auto &[K, B] : Breakers)
    N += static_cast<size_t>(B.ProbeTimerArmed);
  return N;
}

size_t StreamTransport::brokenSenderStreamCount() const {
  size_t N = 0;
  for (const auto &[Addr2, Sh] : SenderShards)
    for (const auto &[SK, S] : Sh.Streams)
      N += static_cast<size_t>(S->Broken);
  return N;
}

size_t StreamTransport::senderWindowSize(AgentId Agent, net::Address Remote,
                                         GroupId Group) const {
  SenderStream *S = findSender(Agent, Remote, Group);
  return S ? S->Window.size() : 0;
}

//===----------------------------------------------------------------------===//
// Endpoint circuit breaker
//===----------------------------------------------------------------------===//

void StreamTransport::breakerOnTimeoutBreak(const SenderKey &K,
                                            Incarnation Inc) {
  Breaker &B = Breakers[K];
  B.ProbeInc = Inc;
  if (B.State != 0)
    return; // Already open; probes decide when to close.
  if (++B.Consecutive < Cfg.BreakerThreshold)
    return;
  B.State = 1;
  Counters.BreakerOpens->inc();
  if (Reg.enabled())
    Reg.emit({Sim.now(), EventKind::BreakerOpen, Node,
              std::get<0>(K), static_cast<uint64_t>(B.Consecutive), 0, {}});
  if (traceEnabled())
    tracef("breaker open agent=%llu group=%u after %d breaks",
           static_cast<unsigned long long>(std::get<0>(K)), std::get<2>(K),
           B.Consecutive);
  armBreakerProbe(K);
}

void StreamTransport::breakerOnReply(const SenderKey &K) {
  auto It = Breakers.find(K);
  if (It == Breakers.end())
    return;
  Breaker &B = It->second;
  // Any reply batch — even a break notice — proves reachability: reset
  // the consecutive-timeout count, and close the breaker if tripped.
  B.Consecutive = 0;
  if (B.State == 0)
    return;
  B.State = 0;
  if (B.ProbeTimerArmed) {
    Sim.cancel(B.ProbeTimer);
    B.ProbeTimerArmed = false;
  }
  Counters.BreakerCloses->inc();
  if (Reg.enabled())
    Reg.emit({Sim.now(), EventKind::BreakerClose, Node,
              std::get<0>(K), 0, 0, {}});
  if (traceEnabled())
    tracef("breaker close agent=%llu group=%u",
           static_cast<unsigned long long>(std::get<0>(K)), std::get<2>(K));
}

void StreamTransport::armBreakerProbe(const SenderKey &K) {
  auto It = Breakers.find(K);
  if (It == Breakers.end() || It->second.ProbeTimerArmed || Dead)
    return;
  It->second.ProbeTimerArmed = true;
  // The timer fires exactly once (rearmed only by the next fail-fast), so
  // an unreachable endpoint cannot keep the event queue alive forever.
  It->second.ProbeTimer =
      Sim.schedule(Cfg.BreakerCooldown, [this, K] {
        auto BIt = Breakers.find(K);
        if (BIt == Breakers.end())
          return;
        BIt->second.ProbeTimerArmed = false;
        if (Dead || BIt->second.State == 0)
          return;
        sendBreakerProbe(K, BIt->second);
      });
}

void StreamTransport::sendBreakerProbe(const SenderKey &K, Breaker &B) {
  // Probe at the newest incarnation this endpoint knows about so the
  // receiver's stale-incarnation filter lets it through.
  Incarnation Inc = B.ProbeInc;
  if (SenderStream *S =
          findSender(std::get<0>(K), std::get<1>(K), std::get<2>(K)))
    Inc = S->Inc;
  else if (auto RIt = Retired.find(K); RIt != Retired.end())
    Inc = RIt->second.Inc;
  B.State = 2; // Half-open: one probe in flight, any reply closes.
  Counters.BreakerProbes->inc();
  CallBatchMsg M;
  M.Agent = std::get<0>(K);
  M.Group = std::get<2>(K);
  M.Inc = Inc;
  M.FlushReplies = true;
  Counters.AckBatchesSent->inc();
  if (traceEnabled())
    tracef("breaker probe agent=%llu group=%u inc=%u",
           static_cast<unsigned long long>(M.Agent), M.Group, Inc);
  sendMessage(std::get<1>(K), Message(std::move(M)));
}

int StreamTransport::breakerState(AgentId Agent, net::Address Remote,
                                  GroupId Group) const {
  auto It = Breakers.find(senderKey(Agent, Remote, Group));
  return It != Breakers.end() ? It->second.State : 0;
}

size_t StreamTransport::openBreakerCount() const {
  size_t N = 0;
  for (const auto &[K, B] : Breakers)
    N += static_cast<size_t>(B.State != 0);
  return N;
}

Seq StreamTransport::outstandingCalls(AgentId Agent, net::Address Remote,
                                      GroupId Group) const {
  SenderStream *S = findSender(Agent, Remote, Group);
  return S ? S->outstanding() : 0;
}

//===----------------------------------------------------------------------===//
// Receiver side
//===----------------------------------------------------------------------===//

StreamTransport::ReceiverStream &
StreamTransport::getReceiver(const net::Address &From, const CallBatchMsg &M) {
  auto &Slot = ReceiverShards[From].Streams[StreamKey{M.Agent, M.Group}];
  if (Slot && Slot->Inc == M.Inc)
    return *Slot;
  if (Slot) {
    // A newer incarnation replaces the old one; the old stream is dead
    // (its completions will be dropped). Its timers capture the old
    // object, so cancel them before destroying it.
    PROMISES_CHECK(M.Inc > Slot->Inc, "caller filters stale incarnations");
    if (Slot->ReplyFlushTimerArmed)
      Sim.cancel(Slot->ReplyFlushTimer);
    if (Slot->AckTimerArmed)
      Sim.cancel(Slot->AckTimer);
    ReceiversByTag.erase(Slot->Tag);
    if (Reg.enabled())
      Reg.emit({Sim.now(), EventKind::StreamSuperseded, Node,
                Slot->Tag, M.Inc, 0, {}});
    if (StreamDeadHook)
      StreamDeadHook(Slot->Tag); // Orphaned executions get destroyed.
  }
  auto R = std::make_unique<ReceiverStream>();
  R->Tag = NextStreamTag++;
  R->SenderAddr = From;
  R->Agent = M.Agent;
  R->Group = M.Group;
  R->Inc = M.Inc;
  ReceiversByTag[R->Tag] = R.get();
  Slot = std::move(R);
  return *Slot;
}

void StreamTransport::handleCallBatch(const net::Address &From,
                                      CallBatchMsg &M) {
  // Filter stale incarnations before touching state.
  if (ReceiverShard *Sh = findReceiverShard(From)) {
    auto Existing = Sh->Streams.find(StreamKey{M.Agent, M.Group});
    if (Existing != Sh->Streams.end() && M.Inc < Existing->second->Inc)
      return;
  }
  ReceiverStream &R = getReceiver(From, M);

  if (R.Broken) {
    // "Further calls on that stream will be discarded" — but keep telling
    // the sender about the break until it learns.
    sendReplyBatch(R, /*ResendAll=*/true);
    return;
  }

  // The sender has consumed replies through AckReplyThrough.
  while (!R.UnackedReplies.empty() &&
         R.UnackedReplies.firstSeq() <= M.AckReplyThrough)
    R.UnackedReplies.erase(R.UnackedReplies.firstSeq());

  bool SawDuplicate = false;
  for (CallReq &C : M.Calls) {
    if (C.S < R.NextExpected || R.Future.contains(C.S)) {
      Counters.DuplicateCallsDropped->inc();
      SawDuplicate = true;
      continue;
    }
    R.Future.insert(C.S, std::move(C));
  }
  deliverReadyCalls(R);

  if (M.FlushReplies) {
    R.FlushThrough = std::max(R.FlushThrough, R.NextExpected - 1);
    // The ack / probe response: resend everything unacknowledged so a
    // sender stalled by a lost reply batch always recovers.
    sendReplyBatch(R, /*ResendAll=*/true);
    return;
  }
  if (SawDuplicate)
    R.NeedAck = true;
  if (R.NextExpected - 1 > R.LastSentAck || R.NeedAck)
    armReceiverAckTimer(R);
}

void StreamTransport::deliverReadyCalls(ReceiverStream &R) {
  if (!CallSink)
    return;
  while (!R.Future.empty() && R.Future.firstSeq() == R.NextExpected) {
    CallReq C = std::move(R.Future.at(R.NextExpected));
    R.Future.erase(R.NextExpected);
    ++R.NextExpected;
    if (R.Cancelled.count(C.S)) {
      // Cancelled before delivery: never reaches user code, but still
      // completes (as cancelled) through the reply path so the sender's
      // accounting is conserved.
      Counters.CallsCancelled->inc();
      if (Reg.enabled())
        Reg.emit({Sim.now(), EventKind::CallCancelled, Node,
                  R.Tag, C.S, 0, {}});
      if (traceEnabled())
        tracef("cancel tag=%llu seq=%llu (at delivery)",
               static_cast<unsigned long long>(R.Tag),
               static_cast<unsigned long long>(C.S));
      // The runtime never sees this call, but it must still learn the seq
      // is settled — successors gate on their predecessors in call order.
      if (CallCancelHook)
        CallCancelHook(R.Tag, C.S);
      completeCall(R, C.S, /*NoReply=*/false, C.FlushReply,
                   ReplyStatus::Unavailable, 0, {},
                   core::reasons::Cancelled);
      continue;
    }
    Counters.CallsDelivered->inc();
    IncomingCall IC;
    IC.StreamTag = R.Tag;
    IC.CallSeq = C.S;
    IC.Group = R.Group;
    IC.Port = C.Port;
    IC.NoReply = C.NoReply;
    IC.DeadlineNs = C.DeadlineNs;
    IC.Args = std::move(C.Args);
    uint64_t Tag = R.Tag;
    Seq S = C.S;
    bool NoReply = C.NoReply;
    bool FlushReply = C.FlushReply;
    IC.Complete = [this, Tag, S, NoReply, FlushReply](
                      ReplyStatus St, uint32_t ExTag, wire::Bytes Payload,
                      std::string Reason) {
      if (Dead)
        return;
      auto It = ReceiversByTag.find(Tag);
      if (It == ReceiversByTag.end())
        return; // Superseded incarnation.
      if (It->second->Cancelled.count(S))
        return; // Already completed as cancelled; the call process was
                // killed but unwound late (critical section).
      completeCall(*It->second, S, NoReply, FlushReply, St, ExTag,
                   std::move(Payload), std::move(Reason));
    };
    CallSink(std::move(IC));
  }
}

void StreamTransport::handleCancel(const net::Address &From,
                                   const CancelMsg &M) {
  ReceiverShard *Sh = findReceiverShard(From);
  if (!Sh)
    return;
  auto It = Sh->Streams.find(StreamKey{M.Agent, M.Group});
  if (It == Sh->Streams.end())
    return;
  ReceiverStream &R = *It->second;
  if (R.Broken || R.Inc != M.Inc)
    return;
  for (Seq S : M.Seqs) {
    if (S >= R.NextExpected) {
      // Not yet delivered (possibly not yet received): cancel at delivery
      // time, preserving call order.
      R.Cancelled.insert(S);
      continue;
    }
    if (S <= R.CompletedThrough || R.DoneAhead.contains(S) ||
        R.Cancelled.count(S))
      continue; // Already completed (or already cancelled): too late.
    // Delivered and executing (or gated): destroy the call process like an
    // orphan, then complete on its behalf. The completion must precede the
    // Cancelled insert — it is a real completion, not a late duplicate.
    Counters.CallsCancelled->inc();
    if (Reg.enabled())
      Reg.emit({Sim.now(), EventKind::CallCancelled, Node,
                R.Tag, S, 0, {}});
    if (traceEnabled())
      tracef("cancel tag=%llu seq=%llu (executing)",
             static_cast<unsigned long long>(R.Tag),
             static_cast<unsigned long long>(S));
    if (CallCancelHook)
      CallCancelHook(R.Tag, S);
    completeCall(R, S, /*NoReply=*/false, /*FlushReply=*/true,
                 ReplyStatus::Unavailable, 0, {}, core::reasons::Cancelled);
    R.Cancelled.insert(S);
  }
}

void StreamTransport::completeCall(ReceiverStream &R, Seq S, bool NoReply,
                                   bool FlushReply, ReplyStatus St,
                                   uint32_t ExTag, wire::Bytes Payload,
                                   std::string Reason) {
  if (R.Broken)
    return; // The break already told the sender everything it will learn.
  assert(S > R.CompletedThrough && !R.DoneAhead.contains(S) &&
         "call completed twice");
  // Sends omit normal replies (paper, Section 2); everything else — and
  // exceptional sends — produce an explicit reply.
  std::optional<WireReply> W;
  if (!(NoReply && St == ReplyStatus::Normal)) {
    W.emplace();
    W->S = S;
    W->Status = St;
    W->ExTag = ExTag;
    W->Payload = std::move(Payload);
    W->Reason = std::move(Reason);
  }
  R.DoneAhead.insert(S, std::move(W));
  if (FlushReply)
    R.FlushWhenCompleted = std::max(R.FlushWhenCompleted, S);
  // CompletedThrough is the *contiguous* executed prefix; with in-order
  // execution (the default) the map holds exactly one entry here.
  while (!R.DoneAhead.empty() &&
         R.DoneAhead.firstSeq() == R.CompletedThrough + 1) {
    Seq Next = R.DoneAhead.firstSeq();
    auto Entry = std::move(R.DoneAhead.at(Next));
    R.DoneAhead.erase(Next);
    R.CompletedThrough = Next;
    if (Entry)
      R.UnackedReplies.insert(R.CompletedThrough, std::move(*Entry));
  }
  bool WantFlush = (R.FlushWhenCompleted != 0 &&
                    R.CompletedThrough >= R.FlushWhenCompleted) ||
                   R.CompletedThrough <= R.FlushThrough;
  if (R.FlushWhenCompleted != 0 &&
      R.CompletedThrough >= R.FlushWhenCompleted)
    R.FlushWhenCompleted = 0;
  if (R.CompletedThrough > R.LastSentCompleted &&
      (WantFlush ||
       R.CompletedThrough - R.LastSentCompleted >= Cfg.MaxReplyBatch)) {
    sendReplyBatch(R);
    return;
  }
  if (R.CompletedThrough > R.LastSentCompleted ||
      !R.UnackedReplies.empty())
    armReplyFlushTimer(R);
}

void StreamTransport::sendReplyBatch(ReceiverStream &R, bool ResendAll) {
  if (Dead)
    return;
  ReplyBatchMsg M;
  M.Agent = R.Agent;
  M.Group = R.Group;
  M.Inc = R.Inc;
  M.AckCallThrough = R.NextExpected - 1;
  M.CompletedThrough = R.CompletedThrough;
  M.Broken = R.Broken;
  M.BreakIsFailure = R.BrokenIsFailure;
  M.BreakReason = R.BreakReason;
  // Normal batches are deltas (replies never sent before); recovery
  // batches — responses to a flush/probe, and break notices — carry the
  // full unacknowledged state so a stalled sender always catches up.
  bool All = ResendAll || Cfg.StateShapedReplies;
  R.UnackedReplies.forEach([&](Seq S, const WireReply &W) {
    if (All || S > R.LastBatchedReply)
      M.Replies.push_back(W);
  });
  if (!R.UnackedReplies.empty())
    R.LastBatchedReply = std::max(R.LastBatchedReply,
                                  R.UnackedReplies.lastSeq());
  R.LastSentCompleted = R.CompletedThrough;
  R.LastSentAck = R.NextExpected - 1;
  R.NeedAck = false;
  if (R.ReplyFlushTimerArmed) {
    Sim.cancel(R.ReplyFlushTimer);
    R.ReplyFlushTimerArmed = false;
  }
  if (R.AckTimerArmed) {
    Sim.cancel(R.AckTimer);
    R.AckTimerArmed = false;
  }
  Counters.ReplyBatchesSent->inc();
  Counters.ReplyOccupancy->observe(static_cast<double>(M.Replies.size()));
  if (Reg.enabled())
    Reg.emit({Sim.now(), EventKind::ReplyBatchTx, Node, R.Tag,
              M.Replies.size(), 0, {}});
  if (traceEnabled())
    tracef("tx reply-batch agent=%llu inc=%u replies=%zu ack=%llu ct=%llu%s",
           static_cast<unsigned long long>(R.Agent), R.Inc,
           M.Replies.size(),
           static_cast<unsigned long long>(M.AckCallThrough),
           static_cast<unsigned long long>(M.CompletedThrough),
           M.Broken ? " BROKEN" : "");
  sendMessage(R.SenderAddr, Message(std::move(M)));
}

void StreamTransport::armReplyFlushTimer(ReceiverStream &R) {
  if (R.ReplyFlushTimerArmed || Dead)
    return;
  R.ReplyFlushTimerArmed = true;
  R.ReplyFlushTimer =
      Sim.schedule(Cfg.ReplyFlushInterval, [this, &R] {
        R.ReplyFlushTimerArmed = false;
        if (Dead)
          return;
        if (R.CompletedThrough > R.LastSentCompleted ||
            !R.UnackedReplies.empty())
          sendReplyBatch(R);
      });
}

void StreamTransport::armReceiverAckTimer(ReceiverStream &R) {
  if (R.AckTimerArmed || R.ReplyFlushTimerArmed || Dead)
    return;
  R.AckTimerArmed = true;
  R.AckTimer = Sim.schedule(Cfg.AckDelay, [this, &R] {
    R.AckTimerArmed = false;
    if (Dead)
      return;
    if (R.NextExpected - 1 > R.LastSentAck || R.NeedAck)
      sendReplyBatch(R);
  });
}

bool StreamTransport::isReceiverBroken(uint64_t StreamTag) const {
  auto It = ReceiversByTag.find(StreamTag);
  if (It == ReceiversByTag.end())
    return true; // Superseded by a newer incarnation: equally dead.
  return It->second->Broken;
}

void StreamTransport::breakReceiverStream(uint64_t StreamTag,
                                          std::string Reason,
                                          bool IsFailure) {
  auto It = ReceiversByTag.find(StreamTag);
  if (It == ReceiversByTag.end())
    return;
  ReceiverStream &R = *It->second;
  if (R.Broken)
    return;
  Counters.ReceiverBreaks->inc();
  if (Reg.enabled())
    Reg.emit({Sim.now(), EventKind::ReceiverBreak, Node,
              StreamTag, 0, 0, Reason});
  if (traceEnabled())
    tracef("break receiver tag=%llu: %s",
           static_cast<unsigned long long>(StreamTag), Reason.c_str());
  R.Broken = true;
  R.BrokenIsFailure = IsFailure;
  R.BreakReason = std::move(Reason);
  R.Future.clear(); // Undelivered calls are discarded.
  sendReplyBatch(R, /*ResendAll=*/true);
  if (StreamDeadHook)
    StreamDeadHook(R.Tag);
}

//===----------------------------------------------------------------------===//
// Datagram dispatch
//===----------------------------------------------------------------------===//

void StreamTransport::sendMessage(const net::Address &To, const Message &M) {
  Net.send(Addr, To, encodeFramedMessage(M, Cfg.FrameChecksums));
}

void StreamTransport::onDatagram(net::Datagram D) {
  if (Dead)
    return;
  // Integrity first: no byte of the payload is decoded until the frame
  // header checks out and (unless the ablation knob disabled it) the
  // checksum matches. A rejected frame is indistinguishable from a lost
  // datagram — the retransmit path recovers it.
  // Tolerant of trailing bytes: real datagram stacks can pad past the
  // sender's length, so excess beyond the declared frame is dropped and
  // counted rather than rejecting the (intact) frame in front of it.
  wire::FrameError FE = wire::FrameError::None;
  size_t Trailing = 0;
  std::optional<wire::Bytes> Payload =
      wire::openFrame(D.Payload, Cfg.FrameChecksums, &FE, &Trailing);
  if (Trailing != 0)
    Counters.FramesTrailingBytes->inc(Trailing);
  if (!Payload) {
    Counters.FramesCorruptDropped->inc();
    if (Reg.enabled())
      Reg.emit({Sim.now(), EventKind::FrameCorruptDropped, Node,
                Addr.Port, D.Payload.size(), 0, wire::frameErrorName(FE)});
    if (traceEnabled())
      tracef("rx frame dropped (%s) bytes=%zu", wire::frameErrorName(FE),
             D.Payload.size());
    return;
  }
  std::optional<Message> M = decodeMessage(*Payload);
  if (!M) {
    // The frame was intact, so the bytes are what the sender produced —
    // an undecodable message here is a local encode bug, not line noise.
    // Count and trace it distinctly; the chaos invariants treat any
    // occurrence as a violation.
    Counters.MalformedDropped->inc();
    if (Reg.enabled())
      Reg.emit({Sim.now(), EventKind::FrameCorruptDropped, Node,
                Addr.Port, Payload->size(), 0, "malformed message"});
    if (traceEnabled())
      tracef("rx malformed message bytes=%zu", Payload->size());
    return;
  }
  if (auto *CB = std::get_if<CallBatchMsg>(&*M))
    handleCallBatch(D.From, *CB);
  else if (auto *RB = std::get_if<ReplyBatchMsg>(&*M))
    handleReplyBatch(D.From, *RB);
  else
    handleCancel(D.From, std::get<CancelMsg>(*M));
}
