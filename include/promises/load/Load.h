//===- promises/load/Load.h - Open-loop workload generation ----*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production-traffic workload subsystem (docs/WORKLOADS.md): open-loop
/// arrival processes — Poisson and heavy-tailed bounded-Pareto
/// inter-arrivals, shaped by diurnal ramps and step/spike overload storms —
/// driving fiber-backed simulated clients against the call-stream apps
/// (KvStore echo/put traffic and TPC-C-style multi-partition new-order
/// transactions coordinated over TwoPhase with coenter-style fan-out).
///
/// Open loop means clients do *not* slow down when the server does: the
/// arrival generator keeps its schedule regardless of outcomes, each
/// arrival runs in its own fiber, and only that fiber blocks on the call.
/// That is what makes overload real — offered load stays at 2x capacity
/// while the admission/breaker/retry machinery decides what to shed.
///
/// At quiescence a graceful-degradation invariant battery runs: goodput at
/// 2x offered overload must stay above a floor of measured capacity (no
/// congestion collapse), shed and fast-failed calls must be rejected
/// before execution (cheap rejection, cross-checked against counters and
/// trace events), retry volume must stay inside the budgets, breaker
/// half-open probes must be bounded, compliant tenants must keep their
/// p99 SLO while another tenant storms, and the usual transport/process
/// quiescence audits from the chaos harness must hold — including with a
/// full crash/partition/loss chaos plan running *during* the storm.
///
/// Everything is a pure function of (scenario, seed): a failing seed
/// replays byte-identically via the printed loadsim command.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_LOAD_LOAD_H
#define PROMISES_LOAD_LOAD_H

#include "promises/sim/Simulation.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace promises::load {

/// Inter-arrival process for one tenant. Both are open-loop: the next
/// arrival time never depends on outcomes.
enum class Arrival : uint8_t {
  Poisson, ///< Exponential inter-arrivals (memoryless).
  Pareto,  ///< Bounded Pareto: bursty, heavy-tailed gaps with the same
           ///< mean rate — the worst case for admission control.
};

/// Time-varying rate shape, as a multiplier on TenantSpec::RateCps.
enum class Shape : uint8_t {
  Steady,  ///< Factor 1 throughout.
  Diurnal, ///< 1 + Amplitude * sin(2*pi * t / Duration): one "day" per run.
  Step,    ///< StormFactor inside [StormStartFrac, StormEndFrac), else 1.
  Spike,   ///< Same mechanics as Step; named for short, violent windows.
};

/// What each arrival does.
enum class OpKind : uint8_t {
  Echo,     ///< One KvStore echo RPC (the pure overload workload).
  KvPut,    ///< One KvStore put (state-bearing, still one call).
  NewOrder, ///< TPC-C-style new-order: a TwoPhase transaction staging
            ///< writes across every partition, then two-phase commit.
};

/// One tenant: an independent open-loop client population with its own
/// rate, arrival process, shape, resilience policy, and SLO.
struct TenantSpec {
  std::string Name;
  double RateCps = 10000; ///< Offered arrivals/sec at shape factor 1.
  Arrival Arr = Arrival::Poisson;
  double ParetoAlpha = 1.5; ///< Tail index (must be > 1 for a finite mean).
  Shape Sh = Shape::Steady;
  double StormFactor = 1.0;    ///< Rate multiplier inside the storm window.
  double StormStartFrac = 0.5; ///< Storm window as fractions of Duration.
  double StormEndFrac = 1.0;
  double DiurnalAmplitude = 0.6;
  OpKind Op = OpKind::Echo;
  /// Agent lanes per server: each lane is one call-stream, so this bounds
  /// how many admission slots the tenant can occupy under a per-stream
  /// quota and how much stream-order queueing its calls see.
  size_t Streams = 4;
  sim::Time Deadline = 0;    ///< Per-call wire deadline; 0 = none.
  int RetryAttempts = 1;     ///< >1 enables the idempotent retry policy.
  double RetryBudget = 8.0;  ///< Per-endpoint token bucket seed.
  double RetryCredit = 0.5;  ///< Tokens credited back per success.
  sim::Time RetryBackoff = sim::msec(2);
  /// Compliant tenants stay inside their own capacity share; the battery
  /// enforces their SLO even while other tenants storm.
  bool Compliant = false;
  sim::Time SloP99 = sim::msec(20); ///< p99 latency SLO.
  double SloMultiplier = 2.0;       ///< Battery allows p99 up to SLO * this.
};

/// One named workload scenario: servers, service cost, admission/breaker
/// knobs, and the tenant mix.
struct LoadScenario {
  std::string Name;
  std::string Summary;
  size_t Servers = 1; ///< Server guardians (partitions for NewOrder).
  sim::Time Duration = sim::msec(400); ///< Arrival window; then drain.
  sim::Time ServiceTime = sim::msec(1); ///< Handler service time per call.
  size_t MaxPendingCalls = 32;     ///< Guardian admission bound.
  size_t MaxPendingPerStream = 0;  ///< Per-stream quota (tenant isolation).
  int BreakerThreshold = 0;        ///< Client breaker; 0 = off.
  sim::Time BreakerCooldown = sim::msec(10);
  /// The measurement split: arrivals in [0, SplitFrac * Duration) form the
  /// base (capacity-measuring) window, the rest the overload window.
  double SplitFrac = 0.5;
  /// When > 0: overload-window goodput must be at least this fraction of
  /// base-window goodput (the no-congestion-collapse floor).
  double GoodputFloor = 0;
  bool Chaos = false; ///< Run a chaos fault plan during the storm.
  std::string ChaosProfile = "mixed";
  /// Durable servers: every partition gets WAL-backed stable stores
  /// (KvStore redo log + TxnKv prepared/decision log), NewOrder tenants
  /// run the durable presumed-abort 2PC through a coordinator kit, and a
  /// crash applies the media-fault model before recovery replays the log
  /// (docs/DURABILITY.md). The durability battery then audits the media
  /// offline at quiescence. Off creates no stores: trace hashes stay
  /// bit-identical to previous releases.
  bool Storage = false;
  double TornRate = 0.3;
  double LostRate = 0.7;
  std::vector<TenantSpec> Tenants;

  /// The built-in scenario catalogue (docs/WORKLOADS.md).
  static const std::vector<LoadScenario> &all();
  static const LoadScenario *byName(std::string_view Name);
  static std::vector<std::string> names();
};

/// One run's parameters. Every observable is a function of these.
struct LoadOptions {
  uint64_t Seed = 1;
  LoadScenario Scenario;
  double RateScale = 1.0;     ///< Scales every tenant's RateCps.
  double DurationScale = 1.0; ///< Scales the scenario Duration.
  sim::BackendKind Backend = sim::SimConfig::defaultBackend();
  /// Force durable storage onto a scenario that does not enable it
  /// (loadsim --storage-faults); negative rates defer to the scenario.
  bool ForceStorage = false;
  double TornRate = -1;
  double LostRate = -1;
};

/// Per-tenant observations.
struct TenantReport {
  std::string Name;
  uint64_t Offered = 0;   ///< Arrivals generated (transactions for NewOrder).
  uint64_t Completed = 0; ///< Arrivals whose outcome was tallied.
  uint64_t Normal = 0;    ///< Good completions (committed transactions).
  uint64_t Shed = 0;      ///< Final outcome unavailable("overloaded").
  uint64_t FastFails = 0; ///< Final outcome unavailable("circuit open").
  uint64_t Expired = 0;   ///< unavailable("deadline expired").
  uint64_t OtherUnavailable = 0; ///< Breaks, crashes, shutdowns.
  uint64_t Failed = 0;
  uint64_t ExceptionReplies = 0; ///< Typed app exceptions (e.g. conflicts).
  uint64_t TxnAborted = 0;       ///< NewOrder: clean two-phase aborts.
  uint64_t TxnInDoubt = 0;       ///< NewOrder: the 2PC blocking window.
  uint64_t Retries = 0;          ///< Retry attempts issued for this tenant.
  uint64_t BaseOffered = 0, BaseNormal = 0; ///< Arrivals in the base window.
  uint64_t OverOffered = 0, OverNormal = 0; ///< Arrivals in the overload window.
  double GoodputCps = 0; ///< Normal / Duration.
  double P50Us = 0, P99Us = 0, P999Us = 0; ///< Latency of Normal completions.
  bool SloChecked = false;
  bool SloOk = true;
};

/// What one run observed, plus any battery violations.
struct LoadReport {
  std::vector<std::string> Violations;
  bool ok() const { return Violations.empty(); }

  std::vector<TenantReport> Tenants;

  // Aggregates over all tenants.
  uint64_t Offered = 0, Completed = 0, Normal = 0;
  uint64_t Shed = 0, FastFails = 0, Expired = 0, Retries = 0;
  uint64_t Executions = 0;  ///< Handler bodies entered, all servers.
  uint64_t ServerShed = 0;  ///< call.shed, summed over server incarnations.
  uint64_t ServerExpired = 0;
  double CapacityCps = 0;   ///< Analytic: MaxPendingCalls / ServiceTime.
  double BaseGoodputCps = 0, OverGoodputCps = 0;
  double GoodputRatio = 0;  ///< Over / Base (the floor gates this).
  double P50Us = 0, P99Us = 0, P999Us = 0; ///< All-tenant Normal latency.

  // Chaos tallies (zero unless the scenario runs a fault plan).
  uint64_t Crashes = 0, Restarts = 0, Shutdowns = 0, Reincarnations = 0;
  uint64_t Partitions = 0, LossBursts = 0;

  // Durability tallies (zero unless the run is durable). The battery
  // audits the media offline: every committed transaction applied on
  // every partition, no prepared lock surviving recovery unresolved.
  uint64_t StorageCrashes = 0; ///< Media crash events applied.
  uint64_t TornTails = 0;      ///< Crashes that left a torn record.
  uint64_t Replayed = 0;       ///< Records the final incarnations replayed.
  uint64_t InDoubtRecovered = 0; ///< Prepared txns revived by replay.
  uint64_t ResolvedCommits = 0;  ///< Resolver redo outcomes.
  uint64_t ResolvedAborts = 0;   ///< Resolver presumed-abort outcomes.
  uint64_t TxnCommitted = 0;     ///< Gtids durably decided by coordinators.

  // Determinism oracle: the structured trace-event stream digested in
  // order. Two runs of the same options must agree exactly.
  uint64_t TraceEvents = 0;
  uint64_t TraceHash = 0;
  sim::Time VirtualEnd = 0;

  /// One line: goodput, tails, sheds, hash (violations not included).
  std::string summary() const;
};

/// Runs the scenario and checks the graceful-degradation battery at
/// quiescence. Deterministic: equal options give equal reports, including
/// the trace hash.
LoadReport runLoad(const LoadOptions &O);

/// The loadsim command line that reproduces \p O.
std::string replayCommand(const LoadOptions &O);

/// The BENCH_9 record (bench "bench_overload") for one run, as a JSON
/// object string: goodput floor/ratio, tails, shed/retry volumes, and the
/// per-tenant goodput/p99/SLO table. check_bench.py gates it.
std::string benchJson(const LoadOptions &O, const LoadReport &R);

} // namespace promises::load

#endif // PROMISES_LOAD_LOAD_H
