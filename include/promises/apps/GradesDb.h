//===- promises/apps/GradesDb.h - The grades database ----------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The grades database of the paper's running example (Section 3.1): "a
/// guardian that stores information about the grades of students and
/// provides a handler, record_grade, that records a new grade for a
/// student and returns an updated average for that student."
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_APPS_GRADESDB_H
#define PROMISES_APPS_GRADESDB_H

#include "promises/runtime/RemoteHandler.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace promises::apps {

/// Raised when a grade is recorded for an unknown student (registration
/// is implicit unless RequireRegistration is set).
struct NoSuchStudent {
  static constexpr const char *Name = "no_such_student";
  std::string Who;
};

struct GradesDbConfig {
  /// Simulated processing time per record_grade call.
  sim::Time ServiceTime = sim::usec(100);
  /// When true, record_grade signals no_such_student for unregistered
  /// students; register_student must be called first.
  bool RequireRegistration = false;
};

/// Raised for operations on an unknown or already-finished batch.
struct NoSuchBatch {
  static constexpr const char *Name = "no_such_batch";
  uint32_t Batch = 0;
};

/// The typed ports of a grades database plus shared state for inspection.
///
/// Besides direct recording, the database offers *staged batches* — the
/// all-or-nothing discipline the paper gets from Argus transactions
/// ("running the recording process as an atomic transaction can ensure
/// that if it is not possible to record all grades, none will be
/// recorded", Section 4.2): grades recorded under a batch are invisible
/// until CommitBatch and vanish entirely on AbortBatch.
struct GradesDb {
  using RecordGradeRef =
      runtime::HandlerRef<double(std::string, int32_t), NoSuchStudent>;
  using GetAverageRef =
      runtime::HandlerRef<double(std::string), NoSuchStudent>;
  using RegisterRef = runtime::HandlerRef<wire::Unit(std::string)>;
  using BeginBatchRef = runtime::HandlerRef<uint32_t(wire::Unit)>;
  using RecordInBatchRef = runtime::HandlerRef<
      double(uint32_t, std::string, int32_t), NoSuchStudent, NoSuchBatch>;
  using FinishBatchRef =
      runtime::HandlerRef<wire::Unit(uint32_t), NoSuchBatch>;

  RecordGradeRef RecordGrade;
  GetAverageRef GetAverage;
  RegisterRef RegisterStudent;
  BeginBatchRef BeginBatch;
  RecordInBatchRef RecordInBatch; ///< Stages; returns the would-be average.
  FinishBatchRef CommitBatch;     ///< Applies every staged grade.
  FinishBatchRef AbortBatch;      ///< Discards every staged grade.

  /// Server-side state, exposed for tests and examples.
  struct State {
    std::map<std::string, std::vector<int32_t>> Grades;
    std::map<uint32_t, std::vector<std::pair<std::string, int32_t>>>
        Batches;
    uint32_t NextBatch = 1;
    uint64_t RecordCalls = 0;
    uint64_t Commits = 0;
    uint64_t Aborts = 0;
  };
  std::shared_ptr<State> Db;
};

/// Installs the grades-database handlers on \p G (default port group) and
/// returns their typed references.
GradesDb installGradesDb(runtime::Guardian &G,
                         GradesDbConfig Cfg = GradesDbConfig());

} // namespace promises::apps

namespace promises::wire {
template <> struct Codec<apps::NoSuchStudent> {
  static void encode(Encoder &E, const apps::NoSuchStudent &V) {
    E.writeString(V.Who);
  }
  static apps::NoSuchStudent decode(Decoder &D) { return {D.readString()}; }
};
template <> struct Codec<apps::NoSuchBatch> {
  static void encode(Encoder &E, const apps::NoSuchBatch &V) {
    E.writeU32(V.Batch);
  }
  static apps::NoSuchBatch decode(Decoder &D) { return {D.readU32()}; }
};
} // namespace promises::wire

#endif // PROMISES_APPS_GRADESDB_H
