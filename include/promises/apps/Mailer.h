//===- promises/apps/Mailer.h - The mailer guardian ------------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mailer guardian of Section 2.1: handlers send_mail and read_mail in
/// the same port group, so one client's calls are sequenced (its read sees
/// its own earlier send) while different clients' calls run concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_APPS_MAILER_H
#define PROMISES_APPS_MAILER_H

#include "promises/runtime/RemoteHandler.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace promises::apps {

/// Raised for mail operations on unregistered users.
struct NoSuchUser {
  static constexpr const char *Name = "no_such_user";
  std::string Who;
};

struct MailerConfig {
  /// Simulated processing time per operation.
  sim::Time ServiceTime = sim::usec(500);
};

/// Typed ports of a mailer plus its mailbox state.
struct Mailer {
  using SendMailRef = runtime::HandlerRef<
      wire::Unit(std::string, std::string), NoSuchUser>;
  using ReadMailRef = runtime::HandlerRef<
      std::vector<std::string>(std::string), NoSuchUser>;
  using AddUserRef = runtime::HandlerRef<wire::Unit(std::string)>;

  SendMailRef SendMail; ///< send_mail(user, message)
  ReadMailRef ReadMail; ///< read_mail(user) -> messages, then empties box
  AddUserRef AddUser;

  struct State {
    std::map<std::string, std::vector<std::string>> Boxes;
    uint64_t Operations = 0;
  };
  std::shared_ptr<State> Mail;
};

/// Installs the mailer handlers on \p G (one shared port group, as in the
/// paper) and returns their references.
Mailer installMailer(runtime::Guardian &G, MailerConfig Cfg = MailerConfig());

} // namespace promises::apps

namespace promises::wire {
template <> struct Codec<apps::NoSuchUser> {
  static void encode(Encoder &E, const apps::NoSuchUser &V) {
    E.writeString(V.Who);
  }
  static apps::NoSuchUser decode(Decoder &D) { return {D.readString()}; }
};
} // namespace promises::wire

#endif // PROMISES_APPS_MAILER_H
