//===- promises/apps/Printer.h - The printer guardian ----------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The printing guardian of the grades example: "a second guardian
/// provides printing of grades information via its print operation."
/// Printing is an external activity, so it can jam — the paper's footnote
/// 4 on external actions motivates the Jam exception used in fault tests.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_APPS_PRINTER_H
#define PROMISES_APPS_PRINTER_H

#include "promises/runtime/RemoteHandler.h"

#include <memory>
#include <string>
#include <vector>

namespace promises::apps {

/// Raised when the (simulated) printer is jammed.
struct Jam {
  static constexpr const char *Name = "jam";
};

struct PrinterConfig {
  /// Simulated time to print one line.
  sim::Time ServiceTime = sim::usec(200);
  /// When nonzero, print signals jam on every JamEvery-th line.
  uint32_t JamEvery = 0;
};

/// Typed ports of a printer plus its observable output.
struct Printer {
  using PrintRef = runtime::HandlerRef<wire::Unit(std::string), Jam>;
  PrintRef Print;

  struct State {
    std::vector<std::string> Lines;
    uint64_t Jams = 0;
  };
  std::shared_ptr<State> Out;
};

/// Installs the printer handler on \p G and returns its reference.
Printer installPrinter(runtime::Guardian &G,
                       PrinterConfig Cfg = PrinterConfig());

} // namespace promises::apps

namespace promises::wire {
template <> struct Codec<apps::Jam> {
  static void encode(Encoder &, const apps::Jam &) {}
  static apps::Jam decode(Decoder &) { return {}; }
};
} // namespace promises::wire

#endif // PROMISES_APPS_PRINTER_H
