//===- promises/apps/WindowSystem.h - The window system --------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The window system of Section 2: "a window system might provide a
/// create_window port ... When called, this port returns a number of
/// newly-created ports that can be used to interact with the new window".
/// Each window's ports live in their own port group, so operations on
/// different windows are independent streams while operations on one
/// window stay ordered.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_APPS_WINDOWSYSTEM_H
#define PROMISES_APPS_WINDOWSYSTEM_H

#include "promises/runtime/RemoteHandler.h"

#include <map>
#include <memory>
#include <string>

namespace promises::apps {

/// The per-window port bundle (the paper's `window` struct of ports).
struct WindowPorts {
  runtime::HandlerRef<wire::Unit(uint8_t)> Putc;
  runtime::HandlerRef<wire::Unit(std::string)> Puts;
  runtime::HandlerRef<wire::Unit(std::string)> ChangeColor;
  runtime::HandlerRef<std::string(wire::Unit)> Contents; ///< For tests.

  friend bool operator==(const WindowPorts &, const WindowPorts &) = default;
};

struct WindowSystemConfig {
  sim::Time ServiceTime = sim::usec(50);
};

/// The window server's entry port and observable state.
struct WindowSystem {
  runtime::HandlerRef<WindowPorts(wire::Unit)> CreateWindow;
  /// Destroys a window: its ports stop existing (later calls fail with
  /// "no such port") and its screen state is discarded.
  runtime::HandlerRef<wire::Unit(WindowPorts)> DestroyWindow;

  struct WindowState {
    std::string Text;
    std::string Color = "white";
  };
  struct State {
    std::map<uint32_t, WindowState> Windows; ///< Keyed by group id.
  };
  std::shared_ptr<State> Screen;
};

/// Installs the window system on \p G.
WindowSystem installWindowSystem(runtime::Guardian &G,
                                 WindowSystemConfig Cfg =
                                     WindowSystemConfig());

} // namespace promises::apps

namespace promises::wire {
template <> struct Codec<apps::WindowPorts> {
  static void encode(Encoder &E, const apps::WindowPorts &V) {
    Codec<decltype(V.Putc)>::encode(E, V.Putc);
    Codec<decltype(V.Puts)>::encode(E, V.Puts);
    Codec<decltype(V.ChangeColor)>::encode(E, V.ChangeColor);
    Codec<decltype(V.Contents)>::encode(E, V.Contents);
  }
  static apps::WindowPorts decode(Decoder &D) {
    apps::WindowPorts V;
    V.Putc = Codec<decltype(V.Putc)>::decode(D);
    V.Puts = Codec<decltype(V.Puts)>::decode(D);
    V.ChangeColor = Codec<decltype(V.ChangeColor)>::decode(D);
    V.Contents = Codec<decltype(V.Contents)>::decode(D);
    return V;
  }
};
} // namespace promises::wire

#endif // PROMISES_APPS_WINDOWSYSTEM_H
