//===- promises/apps/TwoPhase.h - Distributed commit kit -------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simplified rendition of Argus's *distributed* actions (the paper
/// defers to reference [16]): a transactional key-value participant that
/// guardians can install, and a client-side two-phase-commit coordinator
/// built entirely on the public promise/stream API.
///
/// Protocol (classic presumed-abort 2PC, volatile participants):
///   begin on each participant -> stage puts -> phase 1: prepare votes ->
///   all yes: phase 2 commit everywhere; any no/unreachable: abort
///   everywhere. A participant lost *after* voting yes leaves the
///   coordinator InDoubt — the blocking window every 2PC has; tests
///   exercise it deliberately.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_APPS_TWOPHASE_H
#define PROMISES_APPS_TWOPHASE_H

#include "promises/runtime/RemoteHandler.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace promises::apps {

/// Raised for operations naming an unknown/finished transaction.
struct NoSuchTxn {
  static constexpr const char *Name = "no_such_txn";
  uint32_t Txn = 0;
};

/// Raised when a staged write conflicts with another transaction's lock.
struct TxnConflict {
  static constexpr const char *Name = "txn_conflict";
  std::string Key;
};

struct TxnKvConfig {
  sim::Time ServiceTime = sim::usec(100);
};

/// The participant: a key-value store with staged, locked transactions.
struct TxnKv {
  runtime::HandlerRef<uint32_t(wire::Unit)> Begin;
  runtime::HandlerRef<wire::Unit(uint32_t, std::string, std::string),
                      NoSuchTxn, TxnConflict>
      Put; ///< Stages a write; takes the key's lock.
  runtime::HandlerRef<std::string(uint32_t, std::string), NoSuchTxn>
      Get; ///< Reads through the transaction's own staged state.
  runtime::HandlerRef<bool(uint32_t), NoSuchTxn> Prepare; ///< The vote.
  runtime::HandlerRef<wire::Unit(uint32_t), NoSuchTxn> Commit;
  runtime::HandlerRef<wire::Unit(uint32_t), NoSuchTxn> Abort;

  struct State {
    std::map<std::string, std::string> Data;
    struct Txn {
      std::map<std::string, std::string> Staged;
      bool Prepared = false;
    };
    std::map<uint32_t, Txn> Txns;
    std::map<std::string, uint32_t> Locks; ///< Key -> owning txn.
    uint32_t NextTxn = 1;
    uint64_t Commits = 0;
    uint64_t Aborts = 0;
  };
  std::shared_ptr<State> Store;
};

/// Installs the transactional KV handlers on \p G.
TxnKv installTxnKv(runtime::Guardian &G, TxnKvConfig Cfg = TxnKvConfig());

/// Outcome of a coordinated commit.
enum class TwoPhaseResult {
  Committed, ///< Every participant committed.
  Aborted,   ///< Some vote failed before any commit; all rolled back.
  InDoubt,   ///< A participant vanished after voting yes: the classic
             ///< 2PC blocking window (survivors committed).
};

/// Client-side coordinator for one distributed transaction across TxnKv
/// participants. Usage (from a simulated process):
///
/// \code
///   TwoPhaseCoordinator Txn(ClientGuardian);
///   Txn.enlist(KvA);
///   Txn.enlist(KvB);
///   Txn.put(0, "x", "1");   // participant index, key, value
///   Txn.put(1, "y", "2");
///   TwoPhaseResult R = Txn.commit();
/// \endcode
class TwoPhaseCoordinator {
public:
  explicit TwoPhaseCoordinator(runtime::Guardian &Local) : Local(Local) {}

  /// Adds a participant; returns its index. Must precede put/commit.
  size_t enlist(const TxnKv &Participant);

  /// Stages a write at participant \p Idx. Returns false when the write
  /// failed (conflict or participant unreachable); the transaction is
  /// then doomed and commit() will abort.
  bool put(size_t Idx, const std::string &Key, const std::string &Val);

  /// Runs two-phase commit. Callable once.
  TwoPhaseResult commit();

  /// Aborts everywhere (best effort).
  void abort();

  bool doomed() const { return Doomed; }

private:
  struct Enlisted {
    TxnKv Kv;
    stream::AgentId Agent = 0;
    uint32_t Txn = 0;
    bool Begun = false;
  };

  bool ensureBegun(Enlisted &E);

  runtime::Guardian &Local;
  std::vector<Enlisted> Participants;
  bool Doomed = false;
  bool Finished = false;
};

} // namespace promises::apps

namespace promises::wire {
template <> struct Codec<apps::NoSuchTxn> {
  static void encode(Encoder &E, const apps::NoSuchTxn &V) {
    E.writeU32(V.Txn);
  }
  static apps::NoSuchTxn decode(Decoder &D) { return {D.readU32()}; }
};
template <> struct Codec<apps::TxnConflict> {
  static void encode(Encoder &E, const apps::TxnConflict &V) {
    E.writeString(V.Key);
  }
  static apps::TxnConflict decode(Decoder &D) { return {D.readString()}; }
};
} // namespace promises::wire

#endif // PROMISES_APPS_TWOPHASE_H
