//===- promises/apps/TwoPhase.h - Distributed commit kit -------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simplified rendition of Argus's *distributed* actions (the paper
/// defers to reference [16]): a transactional key-value participant that
/// guardians can install, and a client-side two-phase-commit coordinator
/// built entirely on the public promise/stream API.
///
/// Protocol (classic presumed-abort 2PC):
///   begin on each participant -> stage puts -> phase 1: prepare votes ->
///   all yes: phase 2 commit everywhere; any no/unreachable: abort
///   everywhere.
///
/// Two participant modes share the handlers below:
///
/// *Volatile* (no stable store): a participant lost after voting yes
/// leaves the coordinator InDoubt — the blocking window every
/// memory-only 2PC has; tests exercise it deliberately.
///
/// *Durable* (TxnKvConfig::Wal set): participants force-log prepared
/// state before voting yes, the coordinator kit force-logs the commit
/// decision before phase 2, and nothing else is ever logged (presumed
/// abort). A prepared transaction whose decision never arrives — lost
/// phase 2, coordinator crash, participant restart — resolves itself by
/// querying the coordinator's status port: committed means redo,
/// anything unknown and no longer in flight means abort. No lock
/// outlives recovery unresolved. See docs/DURABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_APPS_TWOPHASE_H
#define PROMISES_APPS_TWOPHASE_H

#include "promises/runtime/RemoteHandler.h"
#include "promises/storage/Storage.h"

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace promises::apps {

/// Raised for operations naming an unknown/finished transaction.
struct NoSuchTxn {
  static constexpr const char *Name = "no_such_txn";
  uint32_t Txn = 0;
};

/// Raised when a staged write conflicts with another transaction's lock.
struct TxnConflict {
  static constexpr const char *Name = "txn_conflict";
  std::string Key;
};

struct TxnKvConfig {
  sim::Time ServiceTime = sim::usec(100);
  /// When set, the participant is durable: prepares force-log staged
  /// state before the yes vote, commit/abort decisions are redo-logged,
  /// and install replays the log (resurrecting in-doubt transactions
  /// and their locks) before serving. Null keeps today's volatile
  /// participant byte-identically.
  storage::StableStore *Wal = nullptr;
  /// Compact the log into a snapshot every this many records (0 = never).
  size_t SnapshotEvery = 128;
  /// One status probe against the coordinator owning \p Gtid. Returns
  /// TwoPhaseCoordinatorKit::Status (0 aborted, 1 committed, 2 still in
  /// flight) or -1 when unreachable; in-flight/unreachable answers are
  /// retried. Unset leaves prepared transactions blocked (the classic
  /// hole) — durable participants should always wire one.
  std::function<int(uint64_t Gtid)> QueryStatus;
  /// How long a prepared transaction waits for its decision before the
  /// participant starts asking the coordinator itself.
  sim::Time ResolveAfter = sim::msec(40);
  /// Backoff between status probes that answered in-flight/unreachable.
  sim::Time ResolveRetry = sim::msec(10);
};

/// The participant: a key-value store with staged, locked transactions.
struct TxnKv {
  runtime::HandlerRef<uint32_t(wire::Unit)> Begin;
  runtime::HandlerRef<wire::Unit(uint32_t, std::string, std::string),
                      NoSuchTxn, TxnConflict>
      Put; ///< Stages a write; takes the key's lock.
  runtime::HandlerRef<std::string(uint32_t, std::string), NoSuchTxn>
      Get; ///< Reads through the transaction's own staged state.
  runtime::HandlerRef<bool(uint32_t), NoSuchTxn> Prepare; ///< The vote.
  runtime::HandlerRef<wire::Unit(uint32_t), NoSuchTxn> Commit;
  runtime::HandlerRef<wire::Unit(uint32_t), NoSuchTxn> Abort;

  /// Durable-protocol ports, installed only when Config.Wal is set (so
  /// volatile port numbering never shifts). The gtid names the
  /// transaction globally, making commit/abort idempotent across
  /// participant recoveries and resolver races.
  runtime::HandlerRef<bool(uint32_t, uint64_t), NoSuchTxn> PrepareG;
  runtime::HandlerRef<wire::Unit(uint32_t, uint64_t), NoSuchTxn> CommitG;
  runtime::HandlerRef<wire::Unit(uint32_t, uint64_t), NoSuchTxn> AbortG;

  struct State {
    std::map<std::string, std::string> Data;
    struct Txn {
      std::map<std::string, std::string> Staged;
      bool Prepared = false;
      uint64_t Gtid = 0; ///< Global id once durably prepared; else 0.
    };
    std::map<uint32_t, Txn> Txns;
    std::map<std::string, uint32_t> Locks; ///< Key -> owning txn.
    uint32_t NextTxn = 1;
    uint64_t Commits = 0;
    uint64_t Aborts = 0;

    /// Durable mode only:
    std::set<uint64_t> Applied; ///< Gtids whose commit is applied+logged.
    uint64_t Replayed = 0;      ///< Log records applied at install.
    bool RecoveredTorn = false; ///< Install-time replay hit a torn tail.
    uint64_t InDoubtRecovered = 0; ///< Prepared txns revived by replay.
    uint64_t ResolvedCommits = 0;  ///< Resolver outcomes (status said 1).
    uint64_t ResolvedAborts = 0;   ///< Resolver outcomes (presumed abort).
  };
  std::shared_ptr<State> Store;
};

/// Installs the transactional KV handlers on \p G.
TxnKv installTxnKv(runtime::Guardian &G, TxnKvConfig Cfg = TxnKvConfig());

/// Rebuilds participant state from a recovery image: snapshot, then log
/// records in order. Surviving prepared transactions hold their locks
/// and are in doubt. installTxnKv applies exactly this; exposed so
/// recovery audits (load durability battery, tests) can check the media
/// offline.
TxnKv::State replayTxnState(const storage::StableStore::Recovery &R);

/// Durable coordinator-side 2PC state (presumed abort): force-logs only
/// commit decisions and its own incarnation, and answers participant
/// status probes. "Unknown and not in flight" is authoritatively
/// aborted — that is the presumption that keeps aborts log-free.
struct TwoPhaseCoordinatorKit {
  enum Status : uint8_t {
    StatusAborted = 0,   ///< Not committed, not in flight: presumed abort.
    StatusCommitted = 1, ///< Decision durably logged.
    StatusActive = 2,    ///< Still in flight; ask again later.
  };

  runtime::HandlerRef<uint8_t(uint64_t)> StatusPort;

  struct State {
    storage::StableStore *Wal = nullptr;
    uint64_t CoordId = 0;     ///< Top 16 gtid bits this kit mints.
    uint64_t Incarnation = 0; ///< Durable restart counter (gtid bits 32..47).
    uint64_t NextSeq = 1;
    std::set<uint64_t> Committed; ///< Durably decided commits.
    /// Minted but undecided gtids. Deliberately volatile: a coordinator
    /// crash empties it, which is exactly what turns an in-flight
    /// transaction into a presumed abort.
    std::set<uint64_t> Active;
    uint64_t Replayed = 0;
    bool RecoveredTorn = false;

    /// Mints a gtid and marks it in flight.
    uint64_t beginTxn();
    /// Forces the commit decision; visible to status probes only after
    /// the force completes (a decision a crash could still lose must
    /// not leak to participants).
    void logCommit(uint64_t Gtid);
    void finishTxn(uint64_t Gtid) { Active.erase(Gtid); }
    static uint64_t coordOf(uint64_t Gtid) { return Gtid >> 48; }
  };
  std::shared_ptr<State> St;
};

/// Installs a durable coordinator on \p G: replays \p Wal (prior
/// incarnations' decisions), force-logs the new incarnation, and serves
/// the status port.
TwoPhaseCoordinatorKit installTwoPhaseCoordinator(runtime::Guardian &G,
                                                  storage::StableStore &Wal,
                                                  uint64_t CoordId = 0);

/// Outcome of a coordinated commit.
enum class TwoPhaseResult {
  Committed, ///< Every participant committed.
  Aborted,   ///< Some vote failed before any commit; all rolled back.
  InDoubt,   ///< A participant vanished after voting yes: the classic
             ///< 2PC blocking window (survivors committed).
};

/// Client-side coordinator for one distributed transaction across TxnKv
/// participants. Usage (from a simulated process):
///
/// \code
///   TwoPhaseCoordinator Txn(ClientGuardian);
///   Txn.enlist(KvA);
///   Txn.enlist(KvB);
///   Txn.put(0, "x", "1");   // participant index, key, value
///   Txn.put(1, "y", "2");
///   TwoPhaseResult R = Txn.commit();
/// \endcode
/// With a kit, the coordinator runs the durable protocol: PrepareG
/// carries the gtid, the decision is force-logged before phase 2, and
/// aborts log nothing (presumed). Without one it is today's volatile
/// coordinator, unchanged.
class TwoPhaseCoordinator {
public:
  explicit TwoPhaseCoordinator(runtime::Guardian &Local,
                               const TwoPhaseCoordinatorKit *Kit = nullptr);
  ~TwoPhaseCoordinator();

  /// Adds a participant; returns its index. Must precede put/commit.
  size_t enlist(const TxnKv &Participant);

  /// Stages a write at participant \p Idx. Returns false when the write
  /// failed (conflict or participant unreachable); the transaction is
  /// then doomed and commit() will abort.
  bool put(size_t Idx, const std::string &Key, const std::string &Val);

  /// Runs two-phase commit. Callable once.
  TwoPhaseResult commit();

  /// Aborts everywhere (best effort).
  void abort();

  bool doomed() const { return Doomed; }
  /// Global transaction id (0 when running volatile).
  uint64_t gtid() const { return Gtid; }

private:
  struct Enlisted {
    TxnKv Kv;
    stream::AgentId Agent = 0;
    uint32_t Txn = 0;
    bool Begun = false;
  };

  bool ensureBegun(Enlisted &E);

  runtime::Guardian &Local;
  std::shared_ptr<TwoPhaseCoordinatorKit::State> KitSt; ///< Null = volatile.
  uint64_t Gtid = 0;
  std::vector<Enlisted> Participants;
  bool Doomed = false;
  bool Finished = false;
};

} // namespace promises::apps

namespace promises::wire {
template <> struct Codec<apps::NoSuchTxn> {
  static void encode(Encoder &E, const apps::NoSuchTxn &V) {
    E.writeU32(V.Txn);
  }
  static apps::NoSuchTxn decode(Decoder &D) { return {D.readU32()}; }
};
template <> struct Codec<apps::TxnConflict> {
  static void encode(Encoder &E, const apps::TxnConflict &V) {
    E.writeString(V.Key);
  }
  static apps::TxnConflict decode(Decoder &D) { return {D.readString()}; }
};
} // namespace promises::wire

#endif // PROMISES_APPS_TWOPHASE_H
