//===- promises/apps/KvStore.h - Key-value workload guardian ---*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic key-value guardian used as the benchmark workload server
/// (echo/put/get with a configurable service time) — the "component
/// programs used over a network" of the paper's heterogeneous-computing
/// setting, reduced to its performance-relevant skeleton.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_APPS_KVSTORE_H
#define PROMISES_APPS_KVSTORE_H

#include "promises/runtime/RemoteHandler.h"

#include <map>
#include <memory>
#include <string>

namespace promises::apps {

/// Raised by get for absent keys.
struct NotFound {
  static constexpr const char *Name = "not_found";
  std::string Key;
};

struct KvStoreConfig {
  sim::Time ServiceTime = sim::usec(100);
};

/// Typed ports of the store.
struct KvStore {
  runtime::HandlerRef<wire::Unit(std::string, std::string)> Put;
  runtime::HandlerRef<std::string(std::string), NotFound> Get;
  runtime::HandlerRef<std::string(std::string)> Echo; ///< Returns its arg.

  struct State {
    std::map<std::string, std::string> Data;
    uint64_t Calls = 0;
  };
  std::shared_ptr<State> Store;
};

/// Installs the key-value handlers on \p G.
KvStore installKvStore(runtime::Guardian &G,
                       KvStoreConfig Cfg = KvStoreConfig());

} // namespace promises::apps

namespace promises::wire {
template <> struct Codec<apps::NotFound> {
  static void encode(Encoder &E, const apps::NotFound &V) {
    E.writeString(V.Key);
  }
  static apps::NotFound decode(Decoder &D) { return {D.readString()}; }
};
} // namespace promises::wire

#endif // PROMISES_APPS_KVSTORE_H
