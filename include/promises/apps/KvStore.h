//===- promises/apps/KvStore.h - Key-value workload guardian ---*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic key-value guardian used as the benchmark workload server
/// (echo/put/get with a configurable service time) — the "component
/// programs used over a network" of the paper's heterogeneous-computing
/// setting, reduced to its performance-relevant skeleton.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_APPS_KVSTORE_H
#define PROMISES_APPS_KVSTORE_H

#include "promises/runtime/RemoteHandler.h"
#include "promises/storage/Storage.h"

#include <map>
#include <memory>
#include <string>

namespace promises::apps {

/// Raised by get for absent keys.
struct NotFound {
  static constexpr const char *Name = "not_found";
  std::string Key;
};

struct KvStoreConfig {
  sim::Time ServiceTime = sim::usec(100);
  /// When set, puts are redo-logged to this stable store and
  /// acknowledged only after a force; install replays snapshot + log
  /// before serving, and the log compacts into a snapshot every
  /// SnapshotEvery records (docs/DURABILITY.md). Null keeps the store
  /// fully volatile with today's exact behavior.
  storage::StableStore *Wal = nullptr;
  size_t SnapshotEvery = 64;
};

/// Typed ports of the store.
struct KvStore {
  runtime::HandlerRef<wire::Unit(std::string, std::string)> Put;
  runtime::HandlerRef<std::string(std::string), NotFound> Get;
  runtime::HandlerRef<std::string(std::string)> Echo; ///< Returns its arg.

  struct State {
    std::map<std::string, std::string> Data;
    uint64_t Calls = 0;
    uint64_t Replayed = 0;     ///< Redo records applied at install.
    bool RecoveredTorn = false; ///< Install-time replay hit a torn tail.
  };
  std::shared_ptr<State> Store;
};

/// Installs the key-value handlers on \p G.
KvStore installKvStore(runtime::Guardian &G,
                       KvStoreConfig Cfg = KvStoreConfig());

/// The map a replay of \p R yields: snapshot first, then redo records
/// in order. installKvStore applies exactly this; exposed so recovery
/// audits (chaos durability invariants) can check the media offline.
std::map<std::string, std::string>
replayKvData(const storage::StableStore::Recovery &R);

} // namespace promises::apps

namespace promises::wire {
template <> struct Codec<apps::NotFound> {
  static void encode(Encoder &E, const apps::NotFound &V) {
    E.writeString(V.Key);
  }
  static apps::NotFound decode(Decoder &D) { return {D.readString()}; }
};
} // namespace promises::wire

#endif // PROMISES_APPS_KVSTORE_H
