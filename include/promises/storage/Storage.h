//===- promises/storage/Storage.h - Simulated stable storage ---*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-node simulated stable storage in the Argus tradition the paper's
/// guardians assume: an append-only write-ahead log plus an atomically
/// replaced snapshot, both surviving node crashes. Records are framed
/// with the same CRC32C discipline as the wire (docs/DURABILITY.md):
///
///   [u8 magic 0xA6][u32 payload len][u32 crc32c(payload)][payload]
///
/// The store distinguishes the volatile log tail (appended, not yet
/// forced) from the durable prefix behind the `synced` frontier. A
/// `sync()` models fsync: it costs `SyncTime` of virtual time, and a
/// crash during the sleep kills the calling process *before* the
/// frontier advances — force semantics fall out of the simulator's
/// kill-on-crash rule with no extra bookkeeping.
///
/// `crash()` applies the seed-driven media-fault model: the un-synced
/// suffix is lost with probability `LostSuffixRate` (1.0 by default —
/// the classic volatile write-back cache), and a lost suffix leaves a
/// torn first record with probability `TornWriteRate` (either a partial
/// prefix of its bytes or a full-length record with a flipped byte, so
/// replay exercises both the truncation and the CRC detection paths).
/// Rates of exactly 0 or 1 consume no RNG (support/Rng.h `chance`), so
/// fault-free configurations stay bit-identical to runs without any
/// fault model.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_STORAGE_STORAGE_H
#define PROMISES_STORAGE_STORAGE_H

#include "promises/sim/Simulation.h"
#include "promises/support/Metrics.h"
#include "promises/support/Rng.h"
#include "promises/wire/Frame.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace promises::storage {

/// Media-fault model applied at crash() (docs/DURABILITY.md "Fault
/// model"). Deterministic: a function of Seed and the crash sequence.
struct StorageFaults {
  /// P(the un-synced log suffix is lost at a crash). 1.0 models a
  /// volatile write-back cache (the default and the paper-faithful
  /// assumption); 0.0 models a battery-backed cache that always
  /// survives. Values of exactly 0 or 1 draw no RNG.
  double LostSuffixRate = 1.0;
  /// Given the suffix is lost, P(the first lost record leaves a torn
  /// tail on disk instead of vanishing cleanly).
  double TornWriteRate = 0.0;
  uint64_t Seed = 0;
};

struct StorageConfig {
  /// Label for the store's `storage.*` counters.
  std::string Name = "store";
  /// Virtual-time cost of one force (sync or snapshot rename).
  sim::Time SyncTime = sim::usec(200);
  StorageFaults Faults;
};

/// One node's stable store: snapshot + append-only log.
///
/// Thread/fiber discipline: mutating calls happen from the owning
/// node's processes only; the simulator interleaves them at sleep
/// points, and every mutation below is atomic between sleeps.
class StableStore {
public:
  StableStore(sim::Simulation &S, StorageConfig Cfg);

  /// What a replay of the media finds (docs/DURABILITY.md "Recovery").
  struct Recovery {
    wire::Bytes Snapshot;             ///< Empty if none was ever saved.
    std::vector<wire::Bytes> Records; ///< Valid records, append order.
    bool TornTail = false;     ///< Scan stopped at a torn/corrupt tail.
    uint64_t DiscardedBytes = 0; ///< Bytes past the last valid record.
  };

  /// Appends one record to the volatile log tail. Cheap; no yield.
  void append(const wire::Bytes &Payload);

  /// Forces the log to stable storage (fsync): sleeps SyncTime (when
  /// called from a process), then advances the durable frontier over
  /// everything appended so far — including records queued by others
  /// during the sleep (group commit; their own sync() then returns
  /// without sleeping). A crash mid-sleep kills the caller before the
  /// frontier moves. No-op when the tail is already durable.
  void sync();

  /// Checkpoints full state and truncates the log, costing one force.
  /// \p Make is invoked *after* the force sleep so the snapshot
  /// captures every mutation applied during it — safe because state is
  /// always mutated before its record is appended (the apply-first
  /// discipline, docs/DURABILITY.md). The swap is atomic (temp file +
  /// rename in the real-disk reading): a crash mid-sleep leaves the old
  /// snapshot and log untouched.
  void saveSnapshot(const std::function<wire::Bytes()> &Make);

  /// Applies the media-fault model for a node crash. Call alongside
  /// net::Network::crash; the store itself survives into the next
  /// incarnation.
  void crash();

  /// Pure scan of the media: snapshot plus every valid record, torn
  /// tail detection included. Does not mutate; usable for audits.
  Recovery scan() const;

  /// Recovery for serving: scan(), then discard any torn/invalid tail
  /// so new appends land after the last valid record, and mark the
  /// whole surviving log durable (it is: it was read back from disk).
  Recovery open();

  const std::string &name() const { return Cfg.Name; }
  uint64_t logBytes() const { return Log.size(); }
  uint64_t syncedBytes() const { return Synced; }
  /// Records currently in the log (snapshot truncation resets this).
  uint64_t recordsInLog() const { return RecordEnds.size(); }
  uint64_t crashes() const { return Crashes; }
  uint64_t tornTails() const { return TornTails; }
  uint64_t lostBytes() const { return LostBytes; }

private:
  sim::Simulation &S;
  StorageConfig Cfg;
  Rng FaultRng;

  wire::Bytes Snapshot;
  bool HasSnapshot = false;
  wire::Bytes Log;
  /// Absolute end offset of each whole record in Log, append order.
  /// Synced always sits on one of these boundaries (or 0).
  std::vector<uint64_t> RecordEnds;
  uint64_t Synced = 0;

  uint64_t Crashes = 0, TornTails = 0, LostBytes = 0;

  Counter *CAppends, *CAppendedBytes, *CSyncs, *CSnapshots, *CReplays,
      *CReplayedRecords, *CCrashes, *CLostBytes, *CTornTails;
};

} // namespace promises::storage

#endif // PROMISES_STORAGE_STORAGE_H
