//===- promises/core/Fork.h - Promises for local forks ---------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Local forks (paper Section 3.2): a fork runs a local procedure in a new
/// process, in parallel with the caller, and returns a promise for its
/// result:
///
///   p: pt := fork foo(a)   ~>   auto P = fork(Sim, [&] { return foo(A); });
///
/// Arguments are passed by sharing (ordinary C++ captures — captured
/// objects must outlive the fork, mirroring Argus's heap-allocated
/// objects). Exceptions propagate by returning an Outcome from the body; a
/// body returning a plain value produces a promise with no declared
/// exceptions.
///
/// If the forked process is forcibly terminated before completing, its
/// promise becomes ready with Failure("forked process terminated") so
/// claimers never hang.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_CORE_FORK_H
#define PROMISES_CORE_FORK_H

#include "promises/core/Promise.h"

#include <string>
#include <type_traits>
#include <utility>

namespace promises::core {
namespace detail {

/// Maps a fork body's return type onto the promise machinery.
template <typename T> struct ForkTraits {
  using OutcomeType = Outcome<T>;
  static auto make(sim::Simulation &S) { return makePromise<T>(S); }
  template <typename Fn> static OutcomeType invoke(Fn &Body) {
    return OutcomeType(Body());
  }
};

template <typename R, ExceptionType... Es>
struct ForkTraits<Outcome<R, Es...>> {
  using OutcomeType = Outcome<R, Es...>;
  static auto make(sim::Simulation &S) { return makePromise<R, Es...>(S); }
  template <typename Fn> static OutcomeType invoke(Fn &Body) {
    return Body();
  }
};

/// Fulfills the promise with Failure if the body never completed (forced
/// termination unwinding through the process).
template <typename Resolver> class ForkGuard {
public:
  explicit ForkGuard(Resolver R) : R(std::move(R)) {}
  ~ForkGuard() {
    if (!R.fulfilled())
      R.fulfill(Failure{"forked process terminated"});
  }
  ForkGuard(const ForkGuard &) = delete;
  ForkGuard &operator=(const ForkGuard &) = delete;

private:
  Resolver R;
};

} // namespace detail

/// Runs \p Body in a freshly spawned process and returns the promise for
/// its result. The body either returns a plain value (promise with no
/// declared exceptions) or an Outcome<R, Es...> (promise with those
/// exceptions). The returned promise is claimable from any process.
template <typename Fn>
auto fork(sim::Simulation &S, Fn Body, std::string Name = "fork") {
  using Traits = detail::ForkTraits<std::invoke_result_t<Fn>>;
  auto [P, R] = Traits::make(S);
  using ResolverT = std::decay_t<decltype(R)>;
  S.spawn(std::move(Name), [Body = std::move(Body), R]() mutable {
    detail::ForkGuard<ResolverT> Guard(R);
    R.fulfill(Traits::invoke(Body));
  });
  return P;
}

} // namespace promises::core

#endif // PROMISES_CORE_FORK_H
