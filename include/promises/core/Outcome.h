//===- promises/core/Outcome.h - Typed call outcomes -----------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Outcome<Ret, Exs...> is the value a call terminates with under the
/// termination model: either a normal result of type Ret, one of the
/// declared exceptions Exs..., or one of the two built-ins (Unavailable,
/// Failure) that every call can raise. It is the C++ rendering of the
/// paper's handler/promise result type:
///
///   pt = promise returns (real) signals (foo)
///     ~> Promise<double, Foo>, whose claim yields Outcome<double, Foo>.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_CORE_OUTCOME_H
#define PROMISES_CORE_OUTCOME_H

#include "promises/core/Exceptions.h"

#include <cassert>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>

namespace promises::core {

/// The outcome of one call: Ret on normal termination, else one of
/// Exs..., Unavailable, or Failure. Exs must be distinct exception types
/// and must not include the built-ins.
template <typename Ret, ExceptionType... Exs> class Outcome {
public:
  using ValueType = Ret;
  using VariantType = std::variant<Ret, Exs..., Unavailable, Failure>;

  /// Normal termination.
  Outcome(Ret V) : V(std::in_place_index<0>, std::move(V)) {}

  /// Exceptional termination with a declared or built-in exception.
  template <typename E>
    requires(std::same_as<E, Exs> || ...) || std::same_as<E, Unavailable> ||
            std::same_as<E, Failure>
  Outcome(E Ex) : V(std::move(Ex)) {}

  /// True on normal termination.
  bool isNormal() const { return V.index() == 0; }

  /// The normal result; asserts isNormal().
  const Ret &value() const & {
    assert(isNormal() && "value() on exceptional outcome");
    return std::get<0>(V);
  }
  Ret &&value() && {
    assert(isNormal() && "value() on exceptional outcome");
    return std::get<0>(std::move(V));
  }

  /// True if the outcome is exception E.
  template <typename E> bool is() const {
    return std::holds_alternative<E>(V);
  }

  /// The exception value; asserts is<E>().
  template <typename E> const E &get() const {
    assert(is<E>() && "get<E>() on a different outcome");
    return std::get<E>(V);
  }

  /// Name of the exception, or "" on normal termination.
  const char *exceptionName() const {
    if (isNormal())
      return "";
    return std::visit(
        [](const auto &Alt) -> const char * {
          using T = std::decay_t<decltype(Alt)>;
          if constexpr (std::same_as<T, Ret>)
            return "";
          else
            return T::Name;
        },
        V);
  }

  /// Dispatches on the outcome with one callable per alternative (or a
  /// generic lambda catch-all), like the paper's except statement:
  ///
  /// \code
  ///   O.visit(Visitor{
  ///     [](const double &Avg) { ... },        // normal arm
  ///     [](const NoSuchStudent &E) { ... },   // when no_such_student
  ///     [](const auto &Other) { ... },        // when others
  ///   });
  /// \endcode
  template <typename Fn> decltype(auto) visit(Fn &&F) const {
    return std::visit(std::forward<Fn>(F), V);
  }

  /// Converts an exceptional outcome to an untyped Exn (for coenter arms).
  /// Asserts !isNormal().
  Exn toExn() const {
    assert(!isNormal() && "toExn() on a normal outcome");
    return std::visit(
        [](const auto &Alt) -> Exn {
          using T = std::decay_t<decltype(Alt)>;
          if constexpr (std::same_as<T, Ret>) {
            return Exn{"", ""};
          } else if constexpr (std::same_as<T, Unavailable> ||
                               std::same_as<T, Failure>) {
            return Exn{T::Name, Alt.Reason};
          } else {
            return Exn{T::Name, ""};
          }
        },
        V);
  }

  /// The raw variant (index 0 = normal result).
  const VariantType &raw() const { return V; }

  friend bool operator==(const Outcome &, const Outcome &) = default;

private:
  VariantType V;
};

/// Trait for detecting Outcome instantiations (used by fork's deduction).
template <typename T> struct IsOutcome : std::false_type {};
template <typename R, ExceptionType... Es>
struct IsOutcome<Outcome<R, Es...>> : std::true_type {};
template <typename T> inline constexpr bool IsOutcomeV = IsOutcome<T>::value;

} // namespace promises::core

#endif // PROMISES_CORE_OUTCOME_H
