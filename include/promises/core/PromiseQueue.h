//===- promises/core/PromiseQueue.h - Composition queues -------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared queue used to compose streams (paper Section 4): the process
/// driving stream n enqueues the promises its calls create; the process
/// driving stream n+1 dequeues and claims them. "When a process attempts
/// to deq an element from the queue, it will wait if the queue is empty
/// until an element is enqueued. Queues can be implemented using standard
/// synchronization mechanisms such as semaphores or monitors."
///
/// The queue's internal mutations run inside critical sections, so a
/// process forcibly terminated by a coenter is never stopped "in the
/// middle of dequeuing", which "could leave the aveq in a damaged state"
/// (Section 4.2) — the kill is deferred to the critical section's end.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_CORE_PROMISEQUEUE_H
#define PROMISES_CORE_PROMISEQUEUE_H

#include "promises/sim/Sync.h"

#include <cassert>
#include <deque>

namespace promises::core {

/// An unbounded FIFO queue for simulated processes, typically holding
/// promises. deq blocks while empty; there is no close operation — a
/// consumer stuck in deq after its producer died is exactly the
/// termination problem the coenter solves by killing the group.
template <typename T> class PromiseQueue {
public:
  explicit PromiseQueue(sim::Simulation &S) : M(S), NotEmpty(S) {}

  /// Appends an element and wakes one blocked consumer.
  void enq(T V) {
    sim::SimMutex::Guard G(M);
    // Mutation and wake-up form one critical section: a kill delivered
    // between them would strand a consumer with an element available.
    sim::CriticalSection Cs;
    Items.push_back(std::move(V));
    NotEmpty.notifyOne();
  }

  /// Removes and returns the oldest element, blocking while the queue is
  /// empty. Kill delivery point while blocked (never mid-mutation).
  T deq() {
    sim::SimMutex::Guard G(M);
    while (Items.empty())
      NotEmpty.wait(M);
    sim::CriticalSection Cs;
    T V = std::move(Items.front());
    Items.pop_front();
    return V;
  }

  /// Non-blocking variant; returns false when empty.
  bool tryDeq(T &Out) {
    sim::SimMutex::Guard G(M);
    if (Items.empty())
      return false;
    sim::CriticalSection Cs;
    Out = std::move(Items.front());
    Items.pop_front();
    return true;
  }

  /// Elements currently queued.
  size_t size() const { return Items.size(); }

  bool empty() const { return Items.empty(); }

private:
  sim::SimMutex M;
  sim::SimCondVar NotEmpty;
  std::deque<T> Items;
};

} // namespace promises::core

#endif // PROMISES_CORE_PROMISEQUEUE_H
