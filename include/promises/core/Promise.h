//===- promises/core/Promise.h - The promise data type ---------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central contribution: a *promise* is a strongly typed place
/// holder for a value that will exist in the future (Section 3).
///
///  * A promise is created *blocked*; when the call that computes it
///    completes, it becomes *ready* with the call's outcome, and "once a
///    promise is ready it remains ready from then on and its value never
///    changes again".
///  * `claim` waits until the promise is ready, then yields the outcome —
///    the normal result or the raised exception. "A promise can be claimed
///    multiple times; the same outcome will occur each time."
///  * `ready` tests readiness without blocking.
///
/// Unlike MultiLisp futures, promises are distinct types: no runtime check
/// is ever paid when using an ordinary value, and the possible exceptions
/// are part of the type (Section 3.3). The baseline library contains a
/// futures-style DynFuture for the comparison benchmark.
///
/// Promises are handed out by three producers: stream calls
/// (runtime::RemoteHandler::streamCall), local forks (core/Fork.h), and —
/// for plumbing — makePromise below, whose Resolver the "system" side
/// fulfills exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_CORE_PROMISE_H
#define PROMISES_CORE_PROMISE_H

#include "promises/core/Outcome.h"
#include "promises/sim/Simulation.h"

#include <memory>
#include <optional>
#include <utility>

namespace promises::core {

template <typename Ret, ExceptionType... Exs> class Resolver;

/// A strongly typed place holder for the outcome of an asynchronous call.
/// Copyable; copies share the same state (promises can be stored in
/// arrays and queues and claimed from any process, as in the grades
/// example).
template <typename Ret, ExceptionType... Exs> class Promise {
public:
  using OutcomeType = Outcome<Ret, Exs...>;

  /// An invalid promise (no state); valid() is false. Assigned over in
  /// container use.
  Promise() = default;
  Promise(const Promise &O) : St(O.St) {
    if (St)
      St->retain();
  }
  Promise(Promise &&O) noexcept : St(O.St) { O.St = nullptr; }
  Promise &operator=(const Promise &O) {
    if (O.St)
      O.St->retain();
    if (St)
      St->release();
    St = O.St;
    return *this;
  }
  Promise &operator=(Promise &&O) noexcept {
    if (this != &O) {
      if (St)
        St->release();
      St = O.St;
      O.St = nullptr;
    }
    return *this;
  }
  ~Promise() {
    if (St)
      St->release();
  }

  /// True if this promise refers to a call at all.
  bool valid() const { return St != nullptr; }

  /// True once the call has completed (never blocks).
  bool ready() const {
    assert(valid() && "ready() on an invalid promise");
    return St->Value.has_value();
  }

  /// Waits until the promise is ready and returns the outcome. Must run
  /// inside a simulated process when blocking is required; claiming an
  /// already-ready promise works anywhere. Kill delivery point while
  /// blocked.
  const OutcomeType &claim() const {
    assert(valid() && "claim() on an invalid promise");
    while (!St->Value.has_value()) {
      assert(St->Waiters && "blocking claim outside a simulation");
      St->Waiters->wait();
    }
    return *St->Value;
  }

  /// Bounded claim: waits until the promise is ready or until \p Duration
  /// of virtual time has elapsed, whichever comes first. Returns the
  /// outcome, or nullptr on timeout. A timeout leaves the promise
  /// untouched — "a promise can be claimed multiple times", so a later
  /// claim (bounded or not) can still succeed. Kill delivery point while
  /// blocked.
  const OutcomeType *claimFor(sim::Time Duration) const {
    assert(valid() && "claimFor() on an invalid promise");
    if (St->Value.has_value())
      return &*St->Value;
    assert(St->Waiters && "blocking claim outside a simulation");
    return claimUntil(St->Waiters->simulation().now() + Duration);
  }

  /// As claimFor, but with an absolute virtual-time deadline.
  const OutcomeType *claimUntil(sim::Time Deadline) const {
    assert(valid() && "claimUntil() on an invalid promise");
    while (!St->Value.has_value()) {
      assert(St->Waiters && "blocking claim outside a simulation");
      sim::Time Now = St->Waiters->simulation().now();
      if (Now >= Deadline)
        return nullptr;
      St->Waiters->waitFor(Deadline - Now);
    }
    return &*St->Value;
  }

  /// Claims and dispatches in one step (the except-statement idiom):
  ///
  /// \code
  ///   P.claimWith(
  ///     [](const double &Avg) { ... },
  ///     [](const Unavailable &U) { ... },
  ///     [](const auto &Others) { ... });
  /// \endcode
  template <typename... Fs> decltype(auto) claimWith(Fs &&...Handlers) const {
    return claim().visit(Visitor{std::forward<Fs>(Handlers)...});
  }

  /// Makes a promise that is born ready (used for immediate failures:
  /// where Argus would signal without creating a promise, this library
  /// returns a ready promise carrying the exception — claiming it raises
  /// the same exception in the same place).
  static Promise makeReady(OutcomeType O) {
    Promise P;
    P.St = State::acquire();
    P.St->Value.emplace(std::move(O));
    return P;
  }

private:
  friend class Resolver<Ret, Exs...>;
  template <typename R, ExceptionType... Es>
  friend std::pair<Promise<R, Es...>, Resolver<R, Es...>>
  makePromise(sim::Simulation &S);

  /// Promise state lives in per-type slabs threaded through a freelist:
  /// every call allocates one of these, so the general-purpose heap is the
  /// wrong tool (a malloc plus — before this — a second malloc for the
  /// wait queue, per promise). acquire()/release() recycle states for the
  /// process lifetime; one slab allocation amortizes over SlabStates
  /// promises. The refcount is deliberately non-atomic: the simulation
  /// runs at most one simulated process at a time (single-runner
  /// discipline — the thread backend serializes through mutex handoffs
  /// that establish happens-before), so contended increments cannot occur.
  struct State {
    std::optional<OutcomeType> Value;
    std::optional<sim::WaitQueue> Waiters; ///< Engaged unless born-ready.
    uint32_t Refs = 1;

    static constexpr size_t SlabStates = 64;

    void retain() { ++Refs; }
    void release() {
      if (--Refs != 0)
        return;
      this->~State();
      void *&Head = freeHead();
      *reinterpret_cast<void **>(this) = Head;
      Head = this;
    }

    static State *acquire() {
      void *&Head = freeHead();
      if (!Head) {
        static_assert(sizeof(State) >= sizeof(void *) &&
                      alignof(State) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__);
        char *Slab =
            static_cast<char *>(::operator new(SlabStates * sizeof(State)));
        for (size_t I = 0; I != SlabStates; ++I) {
          void *P = Slab + I * sizeof(State);
          *static_cast<void **>(P) = Head;
          Head = P;
        }
      }
      void *P = Head;
      Head = *static_cast<void **>(P);
      return ::new (P) State();
    }

  private:
    /// thread_local so the thread execution backend needs no locking; a
    /// state released on a different thread than it was acquired on simply
    /// migrates freelists. Slabs are never returned to the heap.
    static void *&freeHead() {
      thread_local void *Head = nullptr;
      return Head;
    }
  };

  State *St = nullptr;
};

/// The producing end of a promise; fulfilled exactly once by the system
/// (stream reply processing, fork completion).
template <typename Ret, ExceptionType... Exs> class Resolver {
public:
  using PromiseType = Promise<Ret, Exs...>;
  using OutcomeType = Outcome<Ret, Exs...>;

  Resolver() = default;
  Resolver(const Resolver &O) : St(O.St) {
    if (St)
      St->retain();
  }
  Resolver(Resolver &&O) noexcept : St(O.St) { O.St = nullptr; }
  Resolver &operator=(const Resolver &O) {
    if (O.St)
      O.St->retain();
    if (St)
      St->release();
    St = O.St;
    return *this;
  }
  Resolver &operator=(Resolver &&O) noexcept {
    if (this != &O) {
      if (St)
        St->release();
      St = O.St;
      O.St = nullptr;
    }
    return *this;
  }
  ~Resolver() {
    if (St)
      St->release();
  }

  /// True if fulfill() may still be called.
  bool valid() const { return St != nullptr; }

  /// True once fulfilled.
  bool fulfilled() const {
    assert(valid());
    return St->Value.has_value();
  }

  /// Moves the promise from blocked to ready and wakes every claimer.
  /// Exactly-once; asserts on double fulfill.
  void fulfill(OutcomeType O) const {
    assert(valid() && "fulfill() on an invalid resolver");
    assert(!St->Value.has_value() && "promise fulfilled twice");
    St->Value.emplace(std::move(O));
    St->Waiters->notifyAll();
  }

private:
  template <typename R, ExceptionType... Es>
  friend std::pair<Promise<R, Es...>, Resolver<R, Es...>>
  makePromise(sim::Simulation &S);

  typename PromiseType::State *St = nullptr;
};

/// Creates a blocked promise and its resolver.
template <typename Ret, ExceptionType... Exs>
std::pair<Promise<Ret, Exs...>, Resolver<Ret, Exs...>>
makePromise(sim::Simulation &S) {
  using State = typename Promise<Ret, Exs...>::State;
  State *St = State::acquire();
  St->Waiters.emplace(S);
  Promise<Ret, Exs...> P;
  P.St = St;
  Resolver<Ret, Exs...> R;
  St->retain();
  R.St = St;
  return {std::move(P), std::move(R)};
}

} // namespace promises::core

#endif // PROMISES_CORE_PROMISE_H
