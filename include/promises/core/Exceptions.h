//===- promises/core/Exceptions.h - Termination-model values ---*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value types for the Argus termination model of exception handling
/// (paper reference [11]): a call terminates either normally or in one of
/// a set of named exception conditions, each carrying results. In this
/// library an exception is an ordinary struct with a static `Name`; it is
/// raised by returning it and handled by visiting an Outcome. C++ throw is
/// never used for these.
///
/// Two built-ins exist on every call (paper, Section 3: "Since any call
/// can fail, every handler can raise the exceptions failure and
/// unavailable"):
///
///  * Unavailable — a temporary problem: communication is impossible right
///    now. The system already "tried hard", so immediate retry is useless.
///  * Failure — a permanent problem: the target no longer exists, or
///    encoding/decoding failed.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_CORE_EXCEPTIONS_H
#define PROMISES_CORE_EXCEPTIONS_H

#include <concepts>
#include <string>

namespace promises::core {

/// Built-in: temporary communication problem (retry later, not now).
struct Unavailable {
  static constexpr const char *Name = "unavailable";
  std::string Reason;

  friend bool operator==(const Unavailable &, const Unavailable &) = default;
};

/// Built-in: permanent problem (target gone, encode/decode error, ...).
struct Failure {
  static constexpr const char *Name = "failure";
  std::string Reason;

  friend bool operator==(const Failure &, const Failure &) = default;
};

/// Every user-declared exception is a struct with a static Name.
template <typename E>
concept ExceptionType = requires {
  { E::Name } -> std::convertible_to<const char *>;
};

/// An untyped exception value used where exceptions cross type boundaries
/// (coenter arms, generic logging). Typed outcomes convert into this.
struct Exn {
  std::string Name;
  std::string What;

  friend bool operator==(const Exn &, const Exn &) = default;
};

/// Overload-set helper for Outcome::visit / Promise::claimWith.
template <typename... Fs> struct Visitor : Fs... {
  using Fs::operator()...;
};
template <typename... Fs> Visitor(Fs...) -> Visitor<Fs...>;

} // namespace promises::core

#endif // PROMISES_CORE_EXCEPTIONS_H
