//===- promises/core/Exceptions.h - Termination-model values ---*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value types for the Argus termination model of exception handling
/// (paper reference [11]): a call terminates either normally or in one of
/// a set of named exception conditions, each carrying results. In this
/// library an exception is an ordinary struct with a static `Name`; it is
/// raised by returning it and handled by visiting an Outcome. C++ throw is
/// never used for these.
///
/// Two built-ins exist on every call (paper, Section 3: "Since any call
/// can fail, every handler can raise the exceptions failure and
/// unavailable"):
///
///  * Unavailable — a temporary problem: communication is impossible right
///    now. The system already "tried hard", so immediate retry is useless.
///  * Failure — a permanent problem: the target no longer exists, or
///    encoding/decoding failed.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_CORE_EXCEPTIONS_H
#define PROMISES_CORE_EXCEPTIONS_H

#include <concepts>
#include <string>

namespace promises::core {

/// Built-in: temporary communication problem (retry later, not now).
struct Unavailable {
  static constexpr const char *Name = "unavailable";
  std::string Reason;

  friend bool operator==(const Unavailable &, const Unavailable &) = default;
};

/// Built-in: permanent problem (target gone, encode/decode error, ...).
struct Failure {
  static constexpr const char *Name = "failure";
  std::string Reason;

  friend bool operator==(const Failure &, const Failure &) = default;
};

/// Canonical reason strings carried by the built-in exceptions. The
/// runtime and transport construct every system-originated Unavailable /
/// Failure from these, so tests and the chaos oracle can match on symbols
/// instead of prose.
namespace reasons {
/// The issuing process was wounded; the runtime refuses to start calls on
/// its behalf (paper, Section 4.2).
inline constexpr const char *WoundedCaller = "calling process is wounded";
/// A call-stream break: retransmits exhausted without any acknowledgment.
inline constexpr const char *CannotCommunicate = "cannot communicate";
/// The local transport was shut down with calls outstanding.
inline constexpr const char *TransportShutDown = "transport shut down";
/// The sender restarted a stream, abandoning its outstanding calls.
inline constexpr const char *StreamRestarted = "stream restarted by sender";
/// The caller cancelled the call before its outcome arrived.
inline constexpr const char *Cancelled = "cancelled";
/// The call's deadline passed before the receiver started executing it.
inline constexpr const char *DeadlineExpired = "deadline expired";
/// The receiving guardian shed the call under admission control.
inline constexpr const char *Overloaded = "overloaded";
/// The endpoint circuit breaker is open; the call failed fast without
/// touching the network.
inline constexpr const char *CircuitOpen = "circuit open";
} // namespace reasons

/// Every user-declared exception is a struct with a static Name.
template <typename E>
concept ExceptionType = requires {
  { E::Name } -> std::convertible_to<const char *>;
};

/// An untyped exception value used where exceptions cross type boundaries
/// (coenter arms, generic logging). Typed outcomes convert into this.
struct Exn {
  std::string Name;
  std::string What;

  friend bool operator==(const Exn &, const Exn &) = default;
};

/// Overload-set helper for Outcome::visit / Promise::claimWith.
template <typename... Fs> struct Visitor : Fs... {
  using Fs::operator()...;
};
template <typename... Fs> Visitor(Fs...) -> Visitor<Fs...>;

} // namespace promises::core

#endif // PROMISES_CORE_EXCEPTIONS_H
