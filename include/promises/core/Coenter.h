//===- promises/core/Coenter.h - Structured concurrency --------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coenter statement (paper Section 4.2): a set of *arms*, each run as
/// its own process, with the parent halted until all arms complete. An arm
/// terminates the whole coenter early by producing an exception (the
/// analogue of a control transfer out of the coenter); the remaining arms
/// are then forcibly terminated — with termination deferred while an arm
/// is inside a critical section, exactly as the Argus runtime does — and
/// the exception is returned to the parent for its except logic.
///
///   coenter
///     action ... end
///     action ... end
///   end except when others: ...
///
/// ~>
///
///   auto Bad = Coenter(Sim)
///     .arm("recording", [&](...) -> ArmResult { ...; return {}; })
///     .arm("printing",  [&] { ...; return armRaise(...); })
///     .run();
///   if (Bad) { /* when others */ }
///
/// A dynamic number of arms (the paper's extension "to allow a dynamic
/// number of processes") falls out naturally: call arm() in a loop, or use
/// armEach over a container.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_CORE_COENTER_H
#define PROMISES_CORE_COENTER_H

#include "promises/core/Exceptions.h"
#include "promises/sim/Simulation.h"

#include <string>

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace promises::core {

/// What an arm body produces: nothing on normal completion, or the
/// exception that should terminate the coenter.
using ArmResult = std::optional<Exn>;

/// Builds an ArmResult carrying an exception.
inline ArmResult armRaise(std::string Name, std::string What = "") {
  return Exn{std::move(Name), std::move(What)};
}

/// A coenter statement under construction. Build arms, then run().
class Coenter {
public:
  explicit Coenter(sim::Simulation &S) : Sim(S) {}
  Coenter(const Coenter &) = delete;
  Coenter &operator=(const Coenter &) = delete;

  /// Adds an arm. Arms start only when run() is called, in the order they
  /// were added.
  Coenter &arm(std::string Name, std::function<ArmResult()> Body) {
    Arms.push_back({std::move(Name), std::move(Body)});
    return *this;
  }

  /// Adds one arm per element of \p Items (the dynamic coenter). \p Body
  /// is invoked with a copy of the element. Arms are named "arm[<index>]"
  /// so trace events and exception reports from dynamic coenters stay
  /// distinguishable.
  template <typename Container, typename Fn>
  Coenter &armEach(const Container &Items, Fn Body) {
    size_t Index = 0;
    for (const auto &Item : Items)
      arm("arm[" + std::to_string(Index++) + "]",
          [Body, Item]() -> ArmResult { return Body(Item); });
    return *this;
  }

  /// Runs every arm as a process, halting the calling process until all
  /// complete. If an arm produces an exception, every other unfinished arm
  /// is forcibly terminated (respecting critical sections) and that first
  /// exception is returned; std::nullopt means all arms finished normally.
  /// Must be called from a simulated process.
  ArmResult run();

private:
  struct ArmSpec {
    std::string Name;
    std::function<ArmResult()> Body;
  };

  sim::Simulation &Sim;
  std::vector<ArmSpec> Arms;
};

} // namespace promises::core

#endif // PROMISES_CORE_COENTER_H
