//===- promises/stream/SeqRing.h - Flat sequence windows -------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat ring keyed by absolute sequence number, replacing the
/// std::map<Seq, T> windows on the transport hot path. The maps held
/// dense, mostly-contiguous sequence ranges (a sender's retransmission
/// window, its outcome slots, a receiver's ahead-of-order buffers), so
/// every lookup was a pointer-chasing tree walk and every insert a node
/// allocation. The ring stores entries inline in a power-of-two slot
/// array indexed by `S & Mask`: O(1) find/insert/erase, zero allocations
/// after warm-up (capacity is retained across clear() — per-stream state
/// recycles the way PR 6 recycles fiber stacks), and cache-line locality
/// for the dense ranges that dominate.
///
/// Invariants:
///  * All present seqs lie in [Lo, Hi), and Hi - Lo <= capacity, so a
///    slot index collides with no other in-range seq.
///  * Lo is the lowest present seq and Hi-1 the highest (maintained
///    eagerly by insert/erase), making firstSeq()/lastSeq() O(1).
///  * Iteration (forEach) visits seqs ascending — the same order the
///    std::map gave, which scheduling determinism depends on.
///
/// Entries may be sparse within [Lo, Hi) (ahead-of-order buffers have
/// gaps); erase() resets the slot to T{} so owned buffers free eagerly.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_STREAM_SEQRING_H
#define PROMISES_STREAM_SEQRING_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace promises::stream {

template <typename T> class SeqRing {
public:
  using Seq = uint64_t;

  bool empty() const { return Count == 0; }
  size_t size() const { return Count; }

  bool contains(Seq S) const {
    return S >= Lo && S < Hi && Slots[index(S)].Present;
  }

  /// Pointer to the entry for \p S, or nullptr when absent.
  T *find(Seq S) { return contains(S) ? &Slots[index(S)].Value : nullptr; }
  const T *find(Seq S) const {
    return contains(S) ? &Slots[index(S)].Value : nullptr;
  }

  /// The entry for \p S, which must be present.
  T &at(Seq S) {
    assert(contains(S) && "SeqRing::at on an absent seq");
    return Slots[index(S)].Value;
  }
  const T &at(Seq S) const {
    assert(contains(S) && "SeqRing::at on an absent seq");
    return Slots[index(S)].Value;
  }

  /// Inserts \p V at \p S, which must be absent. Seqs may arrive in any
  /// order (reply batches overtake each other); the ring grows to span
  /// [min, max] of everything present.
  void insert(Seq S, T V) {
    assert(!contains(S) && "SeqRing::insert on a present seq");
    Seq NewLo = Count == 0 ? S : (S < Lo ? S : Lo);
    Seq NewHi = Count == 0 ? S + 1 : (S + 1 > Hi ? S + 1 : Hi);
    if (NewHi - NewLo > Slots.size())
      grow(NewHi - NewLo);
    Lo = NewLo;
    Hi = NewHi;
    Entry &E = Slots[index(S)];
    E.Value = std::move(V);
    E.Present = true;
    ++Count;
  }

  /// Removes \p S (which must be present), resetting its slot to T{} so
  /// owned buffers are released immediately, and tightening [Lo, Hi).
  void erase(Seq S) {
    assert(contains(S) && "SeqRing::erase on an absent seq");
    Entry &E = Slots[index(S)];
    E.Value = T{};
    E.Present = false;
    --Count;
    if (Count == 0) {
      Lo = Hi = 0;
      return;
    }
    if (S == Lo)
      while (!Slots[index(Lo)].Present)
        ++Lo;
    if (S + 1 == Hi)
      while (!Slots[index(Hi - 1)].Present)
        --Hi;
  }

  /// Lowest / highest present seq; the ring must not be empty.
  Seq firstSeq() const {
    assert(Count != 0 && "SeqRing::firstSeq on an empty ring");
    return Lo;
  }
  Seq lastSeq() const {
    assert(Count != 0 && "SeqRing::lastSeq on an empty ring");
    return Hi - 1;
  }

  /// Drops every entry but keeps the slot array: a reincarnated or
  /// reused stream re-fills warm capacity instead of reallocating.
  void clear() {
    for (Seq S = Lo; S < Hi; ++S) {
      Entry &E = Slots[index(S)];
      if (E.Present) {
        E.Value = T{};
        E.Present = false;
      }
    }
    Lo = Hi = 0;
    Count = 0;
  }

  /// Visits present entries in ascending seq order (the iteration order
  /// the std::map had — determinism-sensitive call sites rely on it).
  template <typename Fn> void forEach(Fn &&F) const {
    for (Seq S = Lo; S < Hi; ++S) {
      const Entry &E = Slots[index(S)];
      if (E.Present)
        F(S, E.Value);
    }
  }

private:
  struct Entry {
    T Value{};
    bool Present = false;
  };

  size_t index(Seq S) const { return static_cast<size_t>(S) & Mask; }

  void grow(Seq Needed) {
    size_t Cap = Slots.empty() ? 16 : Slots.size();
    while (Cap < Needed)
      Cap *= 2;
    std::vector<Entry> Fresh(Cap);
    size_t NewMask = Cap - 1;
    for (Seq S = Lo; S < Hi; ++S) {
      Entry &E = Slots[index(S)];
      if (E.Present)
        Fresh[static_cast<size_t>(S) & NewMask] = std::move(E);
    }
    Slots = std::move(Fresh);
    Mask = NewMask;
  }

  std::vector<Entry> Slots;
  size_t Mask = static_cast<size_t>(-1); ///< Slots.size() - 1 once allocated.
  Seq Lo = 0, Hi = 0; ///< Present seqs span [Lo, Hi); empty when Lo == Hi.
  size_t Count = 0;
};

} // namespace promises::stream

#endif // PROMISES_STREAM_SEQRING_H
