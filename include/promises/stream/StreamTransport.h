//===- promises/stream/StreamTransport.h - Call-stream layer ---*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call-stream communication mechanism of Section 2 of the paper (the
/// Mercury design, reference [14]), built on the unreliable datagram
/// network:
///
///  * A stream connects an *agent* (sending end) to a *port group*
///    (receiving end). All calls from one agent to ports in one group are
///    sequenced on one stream.
///  * Streams guarantee exactly-once, ordered delivery of call requests to
///    user code, and ordered consumption of replies, via sequence numbers,
///    retransmission, and deduplication.
///  * Stream calls and replies are *buffered* and sent in batches,
///    amortizing the per-message kernel overhead; RPCs flush immediately.
///  * When the guarantees cannot be kept (crash, partition, decode failure
///    at the receiver) the stream *breaks*: outstanding calls terminate
///    with `unavailable` (temporary) or `failure` (permanent), and the
///    sender may *restart* the stream, creating a new incarnation.
///  * `flush` expedites buffered traffic; `synch` additionally blocks until
///    all earlier calls complete and reports whether any terminated
///    exceptionally (the paper's exception_reply).
///
/// Loss recovery is sender-driven: the sender retransmits unacknowledged
/// calls and probes for missing replies; every reply batch from the
/// receiver carries its full unacknowledged-reply state (see Messages.h).
/// After StreamConfig::MaxRetries probe rounds without progress the sender
/// breaks the stream with `unavailable` — the system "tries hard", so
/// there is no point in the user retrying immediately (paper, Section 2).
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_STREAM_STREAMTRANSPORT_H
#define PROMISES_STREAM_STREAMTRANSPORT_H

#include "promises/net/Network.h"
#include "promises/stream/Messages.h"
#include "promises/support/Metrics.h"
#include "promises/support/Rng.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>

namespace promises::stream {

/// Tuning knobs for one transport endpoint.
struct StreamConfig {
  /// Transmit a call batch once this many calls are buffered.
  size_t MaxBatchCalls = 16;
  /// ... or once the buffered argument bytes exceed this.
  size_t MaxBatchBytes = 4096;
  /// ... or once the oldest buffered call has waited this long.
  sim::Time FlushInterval = sim::msec(1);
  /// Receiver-side analogues for reply batching.
  size_t MaxReplyBatch = 16;
  sim::Time ReplyFlushInterval = sim::msec(1);
  /// Retransmit/probe cadence and the break threshold. RetransmitTimeout
  /// is the *base* cadence: every unproductive retransmit round multiplies
  /// the current timeout by RetransBackoff, capped at
  /// max(RetransmitTimeoutMax, RetransmitTimeout); any progress (or
  /// quiescence) resets it to the base. Each firing is additionally
  /// delayed by a deterministic jitter uniform in
  /// [0, timeout * RetransJitter], drawn from an Rng seeded with
  /// RetransSeed (xor'd with the endpoint identity), so synchronized
  /// senders do not retransmit in lockstep yet replays stay identical.
  sim::Time RetransmitTimeout = sim::msec(20);
  int MaxRetries = 8;
  double RetransBackoff = 2.0;
  sim::Time RetransmitTimeoutMax = sim::msec(160);
  double RetransJitter = 0.1;
  uint64_t RetransSeed = 1;
  /// Sender-side flow control: issueCall blocks the calling process once
  /// this many calls (or argument bytes) are in flight — issued but not
  /// yet delivery-acknowledged — on one stream. 0 means unbounded (the
  /// pre-flow-control behavior). Blocked issuers resume in issue order as
  /// acknowledgements shrink the window; callers outside a simulated
  /// process cannot block and bypass the limit.
  size_t MaxInFlightCalls = 0;
  size_t MaxInFlightBytes = 0;
  /// Delay before a pure acknowledgement is sent (piggybacking window).
  sim::Time AckDelay = sim::msec(1);
  /// When true (paper Section 3: broken streams are "restarted
  /// automatically"), issuing a call on a broken stream reincarnates it;
  /// when false the call fails immediately with the break outcome.
  bool AutoRestart = true;
  /// Ablation knob: when true, every reply batch carries the receiver's
  /// full unacknowledged-reply state (simplest-possible recovery) instead
  /// of only new replies. Correct but quadratic in flight-depth; see
  /// bench_ablation.
  bool StateShapedReplies = false;
  /// Endpoint circuit breaker: after this many consecutive
  /// communication-timeout breaks on one (agent, remote, group) stream,
  /// further issues fail fast with Unavailable{circuit open} — no promise
  /// blocks, nothing touches the network — until a half-open probe draws
  /// any reply batch from the remote. 0 disables (the default). Breaks
  /// caused by receiver-reported failures (decode errors) do not count:
  /// they prove the endpoint is reachable.
  int BreakerThreshold = 0;
  /// Delay between a breaker opening (or a fail-fast finding it open) and
  /// the next half-open probe.
  sim::Time BreakerCooldown = sim::msec(50);
  /// Wire integrity: seal every outgoing datagram in a checksummed frame
  /// and verify arriving frames before decode (wire/Frame.h). Both sides
  /// follow *their own* config — the flag is deliberately not carried on
  /// the wire, so corruption cannot forge a "skip verification" bit. Off
  /// is an ablation knob for measuring checksum cost (BM_ChecksumOverhead);
  /// frames are still sealed, with a zero CRC field that the receiver
  /// ignores.
  bool FrameChecksums = true;
};

/// Next retransmission timeout after an unproductive round: Cur * Factor,
/// saturated at Cap (and never below Cur). The product is compared against
/// the cap while still a double: after ~40 doublings of a 20ms base it
/// exceeds what uint64_t nanoseconds can hold, and casting such a value is
/// undefined behavior — in practice it wrapped to a tiny RTO, turning a
/// long-partitioned endpoint into a retransmit storm. Factors below 1 (and
/// NaN) are treated as 1.
inline sim::Time backoffRto(sim::Time Cur, double Factor, sim::Time Cap) {
  double Next = static_cast<double>(Cur) * std::max(1.0, Factor);
  if (!(Next < static_cast<double>(Cap)))
    return Cap;
  return static_cast<sim::Time>(Next);
}

/// The sender-visible outcome of one stream call.
struct ReplyOutcome {
  enum class Kind : uint8_t {
    Normal,      ///< Payload holds encoded results.
    Exception,   ///< ExTag selects the declared exception; Payload holds
                 ///< its encoded arguments.
    Unavailable, ///< Built-in: temporary communication problem.
    Failure,     ///< Built-in: permanent problem.
  };
  Kind K = Kind::Normal;
  uint32_t ExTag = 0;
  wire::Bytes Payload;
  std::string Reason;

  static ReplyOutcome unavailable(std::string Why) {
    ReplyOutcome R;
    R.K = Kind::Unavailable;
    R.Reason = std::move(Why);
    return R;
  }
  static ReplyOutcome failure(std::string Why) {
    ReplyOutcome R;
    R.K = Kind::Failure;
    R.Reason = std::move(Why);
    return R;
  }
};

/// Invoked (in scheduler context, exactly once, in call order per stream)
/// when a call's outcome becomes known.
using ReplyCallback = std::function<void(const ReplyOutcome &)>;

/// A call delivered to the receiving entity's runtime.
struct IncomingCall {
  uint64_t StreamTag = 0; ///< Ordering domain: calls sharing a tag must
                          ///< appear to execute in CallSeq order (unless
                          ///< the runtime opted the group into parallel
                          ///< execution).
  Seq CallSeq = 0;
  GroupId Group = 0;
  PortId Port = 0;
  bool NoReply = false;
  sim::Time DeadlineNs = 0; ///< Absolute deadline from the wire; 0 = none.
  wire::Bytes Args;
  /// The runtime must invoke this exactly once when the call completes.
  /// Out-of-order completions within a stream are buffered; the sender
  /// still observes outcomes in call order.
  std::function<void(ReplyStatus, uint32_t ExTag, wire::Bytes Payload,
                     std::string Reason)>
      Complete;
};

/// Result of synch (paper Section 2/3): AllNormal unless some call in the
/// synch window terminated exceptionally or the stream broke.
struct SynchOutcome {
  enum class Status : uint8_t { AllNormal, ExceptionReply, Unavailable,
                                Failure };
  Status S = Status::AllNormal;
  std::string Reason;
};

/// Traffic and event counters for one transport. A thin value view of the
/// registry-backed cells (see support/Metrics.h). At quiescence every
/// issued call has exactly one outcome, so
/// CallsIssued == CallsFulfilled + CallsBroken.
struct StreamCounters {
  uint64_t CallsIssued = 0;
  uint64_t CallBatchesSent = 0; ///< Batches that carried calls.
  uint64_t AckBatchesSent = 0;  ///< Empty batches (acks and probes).
  uint64_t ReplyBatchesSent = 0;
  uint64_t CallsDelivered = 0;
  uint64_t DuplicateCallsDropped = 0;
  uint64_t Retransmissions = 0; ///< Calls re-sent (not batches).
  uint64_t Probes = 0;
  uint64_t SenderBreaks = 0;
  uint64_t ReceiverBreaks = 0;
  uint64_t Restarts = 0;
  uint64_t CallsFulfilled = 0; ///< Outcomes delivered by reply processing.
  uint64_t CallsBroken = 0;    ///< Outcomes delivered by a stream break.
  uint64_t CallsBlocked = 0;   ///< Issuers that hit a full in-flight window.
  uint64_t RetransmittedBytes = 0; ///< Argument bytes re-sent.
  uint64_t CancelsSent = 0;        ///< Cancel messages sent (sender side).
  uint64_t CallsCancelled = 0;     ///< Calls completed as cancelled
                                   ///< (receiver side).
  uint64_t BreakerFastFails = 0;   ///< Issues failed fast by an open breaker.
  uint64_t BreakerOpens = 0;
  uint64_t BreakerCloses = 0;
  uint64_t BreakerProbes = 0;      ///< Half-open probes sent.
  uint64_t FramesCorruptDropped = 0; ///< Arriving frames rejected before
                                     ///< decode (checksum/header damage).
  uint64_t MalformedDropped = 0;     ///< Frame-valid datagrams whose message
                                     ///< failed to decode (local encode bug;
                                     ///< chaos treats any as a violation).
  uint64_t FramesTrailingBytes = 0;  ///< Bytes beyond a frame's declared
                                     ///< length (datagram padding), dropped
                                     ///< before decode.
};

/// One entity's endpoint of the call-stream layer: the sending side of all
/// streams its agents open, and the receiving side of all streams that
/// target its port groups.
class StreamTransport {
public:
  /// Binds a fresh network endpoint on \p Node.
  StreamTransport(net::Network &Net, net::NodeId Node,
                  StreamConfig Cfg = StreamConfig());
  ~StreamTransport();
  StreamTransport(const StreamTransport &) = delete;
  StreamTransport &operator=(const StreamTransport &) = delete;

  net::Network &network() { return Net; }
  sim::Simulation &simulation() { return Sim; }
  net::Address address() const { return Addr; }
  net::NodeId nodeId() const { return Node; }
  const StreamConfig &config() const { return Cfg; }

  /// Installs the receiver-side sink. Runs in scheduler context; must not
  /// block (hand calls to processes instead).
  void setCallSink(std::function<void(IncomingCall)> Sink) {
    CallSink = std::move(Sink);
  }

  /// Installs a hook invoked when a receiver stream dies (breaks or is
  /// superseded by a newer incarnation). The runtime uses it to destroy
  /// orphaned call executions (paper, Section 4.2: the system "will find
  /// these computations and destroy them later"). May be invoked from the
  /// middle of one of the stream's own calls.
  void setStreamDeadHook(std::function<void(uint64_t StreamTag)> Hook) {
    StreamDeadHook = std::move(Hook);
  }

  /// Allocates a new agent (a sending end; paper: "agents identify
  /// activities").
  AgentId newAgent() { return ++LastAgent; }

  /// Outcome of issueCall: when Issued is false the call was never sent
  /// (broken stream with AutoRestart off, shut-down transport, or open
  /// circuit breaker) and OnReply was not retained — the caller raises the
  /// indicated exception directly, without creating a promise (paper,
  /// Section 3, step 1). On success S/Inc identify the call for
  /// cancelCall().
  struct IssueResult {
    bool Issued = true;
    bool IsFailure = false; ///< Else unavailable.
    std::string Reason;
    Seq S = 0;
    Incarnation Inc = 0;
  };

  /// Issues a call on the stream (Agent -> Remote transport's Group).
  /// \p NoReply marks a "send" (no normal result flows back); \p IsRpc
  /// flushes the request immediately and asks the receiver to flush the
  /// reply. \p OnReply fires exactly once, in call order per stream.
  /// \p DeadlineAt, when nonzero, is carried to the receiver, which drops
  /// the call with Unavailable{deadline expired} if execution has not
  /// started by that (absolute, virtual) time.
  IssueResult issueCall(AgentId Agent, net::Address Remote, GroupId Group,
                        PortId Port, wire::Bytes Args, bool NoReply,
                        bool IsRpc, ReplyCallback OnReply,
                        sim::Time DeadlineAt = 0);

  /// Best-effort cancellation of one outstanding call previously issued on
  /// the stream: sends a single (never retransmitted) cancel message. The
  /// receiver kills the call process if it is already executing, and in
  /// all cases completes the call with Unavailable{cancelled} through the
  /// normal reply path, so the promise fulfills in call order and every
  /// counter is conserved. Returns false when nothing was sent (unknown or
  /// broken stream, stale incarnation, or the outcome already arrived).
  bool cancelCall(AgentId Agent, net::Address Remote, GroupId Group, Seq S,
                  Incarnation Inc);

  /// Installs the hook invoked (in scheduler context) when a cancel
  /// message targets a call already handed to the runtime: the runtime
  /// kills the call's process via the orphan-destruction machinery; the
  /// transport then completes the call as cancelled.
  void setCallCancelHook(std::function<void(uint64_t StreamTag, Seq S)> Hook) {
    CallCancelHook = std::move(Hook);
  }

  /// Expedites buffered calls on the stream and asks the far side to flush
  /// replies (paper's `flush`). No-op on unknown/broken streams.
  void flush(AgentId Agent, net::Address Remote, GroupId Group);

  /// Paper's `synch`: flush, then block the calling process until every
  /// call issued so far on the stream has an outcome. Reports AllNormal /
  /// ExceptionReply for the window since the last synch point (a synch or
  /// an RPC); a break inside the window reports the break kind. Must be
  /// called from a simulated process.
  SynchOutcome synch(AgentId Agent, net::Address Remote, GroupId Group);

  /// Explicitly breaks (as if by the sender) and reincarnates the stream
  /// (paper's `restart`). Outstanding calls terminate with `unavailable`.
  void restart(AgentId Agent, net::Address Remote, GroupId Group);

  /// True if the sender side of the stream is currently broken (only
  /// observable between a break and the next call when AutoRestart is on).
  bool isBroken(AgentId Agent, net::Address Remote, GroupId Group) const;

  /// Number of calls issued but without outcome on this stream.
  Seq outstandingCalls(AgentId Agent, net::Address Remote,
                       GroupId Group) const;

  /// Breaks the receiving side of the stream identified by \p StreamTag
  /// (paper: a decode failure at the receiver breaks the stream so that
  /// "further calls on that stream will be discarded"). Already-delivered
  /// calls still complete; their replies flow back with the break marker.
  void breakReceiverStream(uint64_t StreamTag, std::string Reason,
                           bool IsFailure = true);

  /// True if the receiving side of the stream identified by \p StreamTag
  /// is broken or superseded; the runtime discards gated calls on broken
  /// streams instead of executing them.
  bool isReceiverBroken(uint64_t StreamTag) const;

  /// Stops all activity (timers, sends, deliveries); called automatically
  /// when the node crashes.
  void shutdown();

  bool isShutDown() const { return Dead; }

  /// Counter snapshot (thin view of the registry cells).
  StreamCounters counters() const;

  /// --- Test introspection ---
  size_t senderStreamCount() const;
  size_t receiverStreamCount() const;
  /// Fully-broken sender streams reduced to tombstones (incarnation +
  /// break outcome only); a later call on the same key resurrects them.
  size_t retiredStreamCount() const { return Retired.size(); }
  /// Timers currently armed across all sender and receiver streams.
  size_t armedTimerCount() const;
  /// Broken sender streams still holding full state. Transient while a
  /// process is pinned in synch or undelivered outcomes remain; at
  /// quiescence every broken stream must have been reduced to a tombstone,
  /// so a nonzero value then means reclamation leaked.
  size_t brokenSenderStreamCount() const;
  /// Calls in flight (issued but not delivery-acknowledged) on one stream;
  /// the quantity MaxInFlightCalls bounds.
  size_t senderWindowSize(AgentId Agent, net::Address Remote,
                          GroupId Group) const;
  /// Breaker state for one endpoint: 0 closed (or no breaker), 1 open,
  /// 2 half-open (probe sent, awaiting any reply).
  int breakerState(AgentId Agent, net::Address Remote, GroupId Group) const;
  /// Breakers currently not closed (what the breaker.state gauge reports).
  size_t openBreakerCount() const;

private:
  struct SenderStream;
  struct ReceiverStream;

  /// What survives of a fully-broken sender stream: enough to keep
  /// isBroken() observable and to resurrect the stream — with incarnation
  /// continuity, so the receiver's stale-incarnation filter still works —
  /// when the agent calls again.
  struct RetiredSender {
    Incarnation Inc = 1;
    bool IsFailure = false;
    std::string Reason;
    bool ExceptionSinceMark = false;
    bool BreakSinceMark = false;
    bool BreakSinceMarkIsFailure = false;
    std::string BreakSinceMarkReason;
  };

  // Keys carry the full epoch-qualified address: streams to different
  // incarnations of a remote node never share state, so a post-restart
  // binding that reuses a port number cannot inherit (or corrupt) the
  // sequencing of a stream to the pre-crash incarnation. SenderKey is
  // retained for the cold-path maps (tombstones, breakers); the live
  // stream state itself is sharded per remote endpoint below.
  using SenderKey = std::tuple<AgentId, net::Address, GroupId>;
  using ReceiverKey = std::tuple<net::Address, AgentId, GroupId>;
  /// Within one endpoint shard, a stream is named by (agent, group).
  using StreamKey = std::pair<AgentId, GroupId>;

  static SenderKey senderKey(AgentId A, net::Address R, GroupId G) {
    return {A, R, G};
  }

  /// All sender-side streams to one remote endpoint (epoch-qualified
  /// address). Sharding replaces the node-global (agent, address, group)
  /// map: hot-path lookups touch only the state of the endpoint being
  /// talked to, and a one-entry cache makes the common talk-to-the-same-
  /// endpoint-repeatedly case a single compare. Shards are never erased
  /// while the transport lives — emptied shards keep their warm map
  /// nodes (and cached pointers stay valid), recycled when the endpoint
  /// is talked to again.
  struct SenderShard {
    std::map<StreamKey, std::unique_ptr<SenderStream>> Streams;
  };
  /// Receiver-side analogue, keyed by the sending transport's address.
  struct ReceiverShard {
    std::map<StreamKey, std::unique_ptr<ReceiverStream>> Streams;
  };

  SenderShard &senderShard(const net::Address &R);
  SenderShard *findSenderShard(const net::Address &R) const;
  ReceiverShard *findReceiverShard(const net::Address &From) const;

  SenderStream *findSender(AgentId A, net::Address R, GroupId G) const;
  SenderStream &getSender(AgentId A, net::Address R, GroupId G);

  /// Endpoint circuit breaker (tentpole 4). Keyed like sender streams but
  /// surviving their retirement: the breaker must stay tripped while the
  /// broken stream collapses to a tombstone.
  struct Breaker {
    int Consecutive = 0; ///< Timeout breaks since the last sign of life.
    uint8_t State = 0;   ///< 0 closed, 1 open, 2 half-open.
    Incarnation ProbeInc = 1; ///< Fallback incarnation for probes.
    bool ProbeTimerArmed = false;
    uint64_t ProbeTimer = 0;
  };

  void breakerOnTimeoutBreak(const SenderKey &K, Incarnation Inc);
  void breakerOnReply(const SenderKey &K);
  void armBreakerProbe(const SenderKey &K);
  void sendBreakerProbe(const SenderKey &K, Breaker &B);

  // Sender-side machinery.
  void transmitNewCalls(SenderStream &S, bool FlushReplies);
  void sendCallBatch(SenderStream &S, Seq FromSeq, Seq ThroughSeq,
                     bool FlushReplies, bool IsRetransmit);
  void retransmitWindow(SenderStream &S);
  void armSenderFlushTimer(SenderStream &S);
  void armSenderRetransTimer(SenderStream &S);
  void armSenderAckTimer(SenderStream &S);
  void onSenderRetransTimer(SenderStream &S);
  void handleReplyBatch(const net::Address &From, ReplyBatchMsg &M);
  void fulfillInOrder(SenderStream &S);
  void breakSender(SenderStream &S, bool IsFailure, std::string Reason);
  void reincarnate(SenderStream &S);
  bool windowFull(const SenderStream &S) const;
  void blockForWindow(SenderStream &S);
  void maybeRetireSender(const SenderKey &K);

  // Receiver-side machinery.
  ReceiverStream &getReceiver(const net::Address &From,
                              const CallBatchMsg &M);
  void handleCallBatch(const net::Address &From, CallBatchMsg &M);
  void handleCancel(const net::Address &From, const CancelMsg &M);
  void deliverReadyCalls(ReceiverStream &R);
  void completeCall(ReceiverStream &R, Seq S, bool NoReply, bool FlushReply,
                    ReplyStatus St, uint32_t ExTag, wire::Bytes Payload,
                    std::string Reason);
  void sendReplyBatch(ReceiverStream &R, bool ResendAll = false);
  void armReplyFlushTimer(ReceiverStream &R);
  void armReceiverAckTimer(ReceiverStream &R);

  void onDatagram(net::Datagram D);

  /// Seals \p M in a checksummed frame (per Cfg.FrameChecksums) and sends
  /// it to \p To. Every datagram the transport emits goes through here.
  void sendMessage(const net::Address &To, const Message &M);

  /// Registry-backed cells behind the StreamCounters view, plus the
  /// transport's histograms (gated on the registry's enabled flag).
  struct Cells {
    Counter *CallsIssued, *CallBatchesSent, *AckBatchesSent,
        *ReplyBatchesSent, *CallsDelivered, *DuplicateCallsDropped,
        *Retransmissions, *Probes, *SenderBreaks, *ReceiverBreaks, *Restarts,
        *CallsFulfilled, *CallsBroken, *CallsBlocked, *RetransmittedBytes,
        *CancelsSent, *CallsCancelled, *BreakerFastFails, *BreakerOpens,
        *BreakerCloses, *BreakerProbes, *FramesCorruptDropped,
        *MalformedDropped, *FramesTrailingBytes;
    Histogram *CallLatencyUs;      ///< issue -> outcome, microseconds.
    Histogram *BatchOccupancy;     ///< Calls per fresh call batch.
    Histogram *ReplyOccupancy;     ///< Replies per reply batch.
    Histogram *RetransmitBatch;    ///< Calls per retransmit batch.
    Histogram *WindowOccupancy;    ///< In-flight calls, sampled at issue.
    Histogram *BlockTimeUs;        ///< Time an issuer spent blocked.
  };

  net::Network &Net;
  /// Cached from Net at construction: simulation() is on the hot path of
  /// every timer and timestamp, and Network::simulation() is virtual.
  sim::Simulation &Sim;
  net::NodeId Node;
  MetricsRegistry &Reg;
  StreamConfig Cfg;
  net::Address Addr;
  bool Dead = false;
  AgentId LastAgent = 0;
  uint64_t NextStreamTag = 1;
  std::function<void(IncomingCall)> CallSink;
  std::function<void(uint64_t)> StreamDeadHook;
  std::function<void(uint64_t, Seq)> CallCancelHook;
  Cells Counters;
  Rng RetransRng; ///< Deterministic retransmit jitter (see StreamConfig).

  std::map<net::Address, SenderShard> SenderShards;
  std::map<net::Address, ReceiverShard> ReceiverShards;
  /// One-entry shard caches for the hot path: almost every operation in a
  /// tight call loop targets the endpoint targeted last time. Shards are
  /// never erased (see SenderShard), so the pointers cannot dangle.
  mutable net::Address LastSenderAddr{};
  mutable SenderShard *LastSenderShard = nullptr;
  std::map<SenderKey, RetiredSender> Retired;
  std::map<SenderKey, Breaker> Breakers;
  std::map<uint64_t, ReceiverStream *> ReceiversByTag;
};

} // namespace promises::stream

#endif // PROMISES_STREAM_STREAMTRANSPORT_H
