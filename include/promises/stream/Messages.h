//===- promises/stream/Messages.h - Stream wire messages -------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wire-level messages exchanged by call-stream transports, and their
/// codecs. Two message kinds exist:
///
///  * CallBatchMsg — a batch of buffered call requests from the sending
///    end of one stream, plus piggybacked acknowledgements of replies.
///  * ReplyBatchMsg — the receiving end's state for one stream: cumulative
///    delivery/completion acknowledgements, every still-unacknowledged
///    explicit reply, and (when the stream is broken) the break marker.
///  * CancelMsg — best-effort cancellation of specific outstanding calls;
///    the receiver tears the call processes down and completes the calls
///    with Unavailable{cancelled} through the normal reply path.
///
/// ReplyBatchMsg is deliberately *state-shaped* rather than delta-shaped:
/// any reply batch whose CompletedThrough covers call n also carries n's
/// explicit reply if one exists, which makes loss recovery purely
/// sender-driven (see StreamTransport.h).
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_STREAM_MESSAGES_H
#define PROMISES_STREAM_MESSAGES_H

#include "promises/wire/Codec.h"

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace promises::stream {

/// Identifies an agent (the sending end of streams) within one transport.
/// Globally a stream is named by (sender transport address, agent, group).
using AgentId = uint64_t;

/// Identifies a port group (the receiving end of streams) within an
/// entity.
using GroupId = uint32_t;

/// Identifies a port (handler) within an entity.
using PortId = uint32_t;

/// Call sequence number within one stream incarnation; starts at 1.
using Seq = uint64_t;

/// Stream incarnation; bumped by restart (paper: "reincarnation").
using Incarnation = uint32_t;

/// Outcome category of one executed call as sent on the wire.
enum class ReplyStatus : uint8_t {
  Normal = 0,    ///< Normal termination; payload = encoded results.
  Exception = 1, ///< Declared exception; ExTag selects which, payload =
                 ///< encoded exception arguments.
  Failure = 2,   ///< The `failure` built-in (e.g. decode failure, no such
                 ///< port); Reason explains.
  Unavailable = 3, ///< The `unavailable` built-in scoped to this one call
                   ///< (deadline expired, cancelled, shed); Reason
                   ///< explains. Unlike a break, the stream stays usable.
};

/// One call request inside a CallBatchMsg.
struct CallReq {
  Seq S = 0;
  PortId Port = 0;
  bool NoReply = false;    ///< A "send": normal replies are omitted.
  bool FlushReply = false; ///< RPC: flush the reply as soon as available.
  uint64_t DeadlineNs = 0; ///< Absolute virtual-time deadline; the
                           ///< receiver drops the call with
                           ///< Unavailable{deadline expired} if execution
                           ///< has not started by then. 0 = none.
  wire::Bytes Args;

  friend bool operator==(const CallReq &, const CallReq &) = default;
};

/// One explicit reply inside a ReplyBatchMsg.
struct WireReply {
  Seq S = 0;
  ReplyStatus Status = ReplyStatus::Normal;
  uint32_t ExTag = 0;
  wire::Bytes Payload;
  std::string Reason;

  friend bool operator==(const WireReply &, const WireReply &) = default;
};

/// Sender -> receiver: new or retransmitted calls plus reply acks. An
/// empty Calls list is a pure ack and/or probe.
struct CallBatchMsg {
  AgentId Agent = 0;
  GroupId Group = 0;
  Incarnation Inc = 1;
  Seq AckReplyThrough = 0; ///< Sender has consumed replies through here.
  bool FlushReplies = false;
  std::vector<CallReq> Calls;

  friend bool operator==(const CallBatchMsg &, const CallBatchMsg &) = default;
};

/// Receiver -> sender: cumulative acks, unacked replies, break marker.
struct ReplyBatchMsg {
  AgentId Agent = 0;
  GroupId Group = 0;
  Incarnation Inc = 1;
  Seq AckCallThrough = 0;   ///< Calls delivered to user code through here.
  Seq CompletedThrough = 0; ///< Calls executed to completion through here.
  bool Broken = false;
  bool BreakIsFailure = false; ///< Else the break maps to `unavailable`.
  std::string BreakReason;
  std::vector<WireReply> Replies;

  friend bool operator==(const ReplyBatchMsg &,
                         const ReplyBatchMsg &) = default;
};

/// Sender -> receiver: cancel specific outstanding calls. Fire-and-forget
/// (never retransmitted): a lost cancel just means the call completes
/// normally, which the sender must tolerate anyway. Cancelled calls are
/// completed with ReplyStatus::Unavailable through the regular reply
/// machinery, so ordering and conservation are untouched.
struct CancelMsg {
  AgentId Agent = 0;
  GroupId Group = 0;
  Incarnation Inc = 1;
  std::vector<Seq> Seqs;

  friend bool operator==(const CancelMsg &, const CancelMsg &) = default;
};

/// Any stream-layer message.
using Message = std::variant<CallBatchMsg, ReplyBatchMsg, CancelMsg>;

/// Encodes \p M with a leading kind byte.
wire::Bytes encodeMessage(const Message &M);

/// Encodes \p M directly into a sealed frame (wire/Frame.h): the encoder
/// reserves the frame header up front, presized from the exact encoded
/// size, then the length and CRC32C are patched in place — one buffer
/// allocation and zero payload copies per message, byte-identical to
/// `sealFrame(encodeMessage(M), Checksum)`. Aborts (in every build mode)
/// if the message fails to encode or exceeds the frame payload limit;
/// garbage is never transmitted.
wire::Bytes encodeFramedMessage(const Message &M, bool Checksum);

/// Decodes a stream message; std::nullopt on malformed input.
std::optional<Message> decodeMessage(const wire::Bytes &B);

} // namespace promises::stream

namespace promises::wire {

template <> struct Codec<stream::CallReq> {
  static void encode(Encoder &E, const stream::CallReq &V) {
    E.writeU64(V.S);
    E.writeU32(V.Port);
    E.writeBool(V.NoReply);
    E.writeBool(V.FlushReply);
    E.writeU64(V.DeadlineNs);
    E.writeBytes(V.Args.data(), V.Args.size());
  }
  static stream::CallReq decode(Decoder &D) {
    stream::CallReq V;
    V.S = D.readU64();
    V.Port = D.readU32();
    V.NoReply = D.readBool();
    V.FlushReply = D.readBool();
    V.DeadlineNs = D.readU64();
    V.Args = D.readBytes();
    return V;
  }
};

template <> struct Codec<stream::WireReply> {
  static void encode(Encoder &E, const stream::WireReply &V) {
    E.writeU64(V.S);
    E.writeU8(static_cast<uint8_t>(V.Status));
    E.writeU32(V.ExTag);
    E.writeBytes(V.Payload.data(), V.Payload.size());
    E.writeString(V.Reason);
  }
  static stream::WireReply decode(Decoder &D) {
    stream::WireReply V;
    V.S = D.readU64();
    uint8_t Raw = D.readU8();
    if (Raw > static_cast<uint8_t>(stream::ReplyStatus::Unavailable)) {
      D.fail("bad reply status");
      Raw = 0;
    }
    V.Status = static_cast<stream::ReplyStatus>(Raw);
    V.ExTag = D.readU32();
    V.Payload = D.readBytes();
    V.Reason = D.readString();
    return V;
  }
};

template <> struct Codec<stream::CallBatchMsg> {
  static void encode(Encoder &E, const stream::CallBatchMsg &V) {
    E.writeU64(V.Agent);
    E.writeU32(V.Group);
    E.writeU32(V.Inc);
    E.writeU64(V.AckReplyThrough);
    E.writeBool(V.FlushReplies);
    Codec<std::vector<stream::CallReq>>::encode(E, V.Calls);
  }
  static stream::CallBatchMsg decode(Decoder &D) {
    stream::CallBatchMsg V;
    V.Agent = D.readU64();
    V.Group = D.readU32();
    V.Inc = D.readU32();
    V.AckReplyThrough = D.readU64();
    V.FlushReplies = D.readBool();
    V.Calls = Codec<std::vector<stream::CallReq>>::decode(D);
    return V;
  }
};

template <> struct Codec<stream::ReplyBatchMsg> {
  static void encode(Encoder &E, const stream::ReplyBatchMsg &V) {
    E.writeU64(V.Agent);
    E.writeU32(V.Group);
    E.writeU32(V.Inc);
    E.writeU64(V.AckCallThrough);
    E.writeU64(V.CompletedThrough);
    E.writeBool(V.Broken);
    E.writeBool(V.BreakIsFailure);
    E.writeString(V.BreakReason);
    Codec<std::vector<stream::WireReply>>::encode(E, V.Replies);
  }
  static stream::ReplyBatchMsg decode(Decoder &D) {
    stream::ReplyBatchMsg V;
    V.Agent = D.readU64();
    V.Group = D.readU32();
    V.Inc = D.readU32();
    V.AckCallThrough = D.readU64();
    V.CompletedThrough = D.readU64();
    V.Broken = D.readBool();
    V.BreakIsFailure = D.readBool();
    V.BreakReason = D.readString();
    V.Replies = Codec<std::vector<stream::WireReply>>::decode(D);
    return V;
  }
};

template <> struct Codec<stream::CancelMsg> {
  static void encode(Encoder &E, const stream::CancelMsg &V) {
    E.writeU64(V.Agent);
    E.writeU32(V.Group);
    E.writeU32(V.Inc);
    Codec<std::vector<stream::Seq>>::encode(E, V.Seqs);
  }
  static stream::CancelMsg decode(Decoder &D) {
    stream::CancelMsg V;
    V.Agent = D.readU64();
    V.Group = D.readU32();
    V.Inc = D.readU32();
    V.Seqs = Codec<std::vector<stream::Seq>>::decode(D);
    return V;
  }
};

} // namespace promises::wire

#endif // PROMISES_STREAM_MESSAGES_H
