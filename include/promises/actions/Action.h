//===- promises/actions/Action.h - Lightweight atomic actions --*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simplified rendition of the Argus atomic actions the paper leans on
/// in Section 4.2 ("Each arm is run as an action ... running the
/// recording process as an atomic transaction can ensure that if it is
/// not possible to record all grades, none will be recorded"). Full Argus
/// transactions (reference [16]) are beyond the paper's scope and this
/// reproduction's; what is implemented is the part the paper's programs
/// use:
///
///  * actions with strict two-phase locking over AtomicCell objects,
///    nested one-or-more levels deep (a coenter arm's action is a
///    subaction of the enclosing action);
///  * commit merges a subaction's locks and undo information into its
///    parent (Moss-style); a top-level commit makes effects durable and
///    releases locks;
///  * abort rolls back the action's own writes and releases its locks;
///  * an Action is an RAII scope: a process that is forcibly terminated
///    (coenter group termination) unwinds through it and the action
///    aborts — exactly the guarantee the paper's recovery story needs;
///  * lock waits block the simulated process; waiting out LockTimeout
///    *dooms* the action (it can still run, but commit will fail),
///    which doubles as the deadlock escape.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_ACTIONS_ACTION_H
#define PROMISES_ACTIONS_ACTION_H

#include "promises/sim/Simulation.h"

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace promises::actions {

/// Identifies an action; 0 means "no action".
using ActionId = uint64_t;

struct ActionConfig {
  /// How long a lock acquisition may block before the acquiring action is
  /// doomed (the deadlock escape).
  sim::Time LockTimeout = sim::msec(50);
};

/// Tracks the action forest and finish notifications. One per simulation
/// (or per guardian); AtomicCells are bound to a manager.
class ActionManager {
public:
  explicit ActionManager(sim::Simulation &S, ActionConfig Cfg = {})
      : Sim(S), Cfg(Cfg) {}
  ActionManager(const ActionManager &) = delete;
  ActionManager &operator=(const ActionManager &) = delete;

  sim::Simulation &simulation() { return Sim; }
  const ActionConfig &config() const { return Cfg; }

  /// Starts an action; \p Parent must be active (or 0 for top-level).
  ActionId begin(ActionId Parent = 0);

  /// True while the action has neither committed nor aborted.
  bool isActive(ActionId Id) const;

  /// True if the action has been doomed (lock timeout); committing a
  /// doomed action aborts instead.
  bool isDoomed(ActionId Id) const;

  /// Marks the action (and transitively its descendants' fate at commit
  /// time) as unable to commit.
  void doom(ActionId Id);

  /// Commits: merges into the parent, or — for a top action — makes
  /// effects durable. Returns false (and aborts) if the action was
  /// doomed or has an active child. Descendant-finished-first is the
  /// caller's responsibility (Action RAII enforces it).
  bool commit(ActionId Id);

  /// Aborts: undoes the action's writes (and its committed descendants'
  /// writes merged into it) and releases its locks.
  void abort(ActionId Id);

  /// True if \p Maybe is \p Id or one of Id's ancestors.
  bool isSelfOrAncestor(ActionId Maybe, ActionId Id) const;

  /// Parent of an action (0 for top-level).
  ActionId parentOf(ActionId Id) const;

  /// Registers a finish hook for \p Id, invoked exactly once with
  /// Committed=true/false when the action commits or aborts (AtomicCells
  /// use this to release locks / roll back).
  void onFinish(ActionId Id, std::function<void(bool Committed)> Hook);

  /// --- Introspection ---
  uint64_t commits() const { return Commits; }
  uint64_t aborts() const { return Aborts; }
  size_t activeCount() const { return Records.size(); }

private:
  struct Record {
    ActionId Parent = 0;
    bool Doomed = false;
    int ActiveChildren = 0;
    std::vector<std::function<void(bool)>> FinishHooks;
  };

  void finish(ActionId Id, bool Committed);

  sim::Simulation &Sim;
  ActionConfig Cfg;
  ActionId NextId = 1;
  std::map<ActionId, Record> Records;
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
};

/// RAII action scope. If neither commit() nor abort() ran by destruction
/// time — including when a forced termination unwinds the process — the
/// action aborts.
class Action {
public:
  /// Begins a top-level action.
  explicit Action(ActionManager &M) : M(M), Id(M.begin()) {}

  /// Begins a subaction of \p Parent.
  Action(ActionManager &M, const Action &Parent)
      : M(M), Id(M.begin(Parent.id())) {}

  ~Action() {
    if (M.isActive(Id))
      M.abort(Id);
  }
  Action(const Action &) = delete;
  Action &operator=(const Action &) = delete;

  ActionId id() const { return Id; }
  ActionManager &manager() const { return M; }
  bool active() const { return M.isActive(Id); }
  bool doomed() const { return M.isDoomed(Id); }

  /// Commits; false means the action aborted instead (doomed).
  bool commit() { return M.commit(Id); }

  void abort() { M.abort(Id); }

private:
  ActionManager &M;
  ActionId Id;
};

} // namespace promises::actions

#endif // PROMISES_ACTIONS_ACTION_H
