//===- promises/actions/AtomicCell.h - Atomic objects ----------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An atomic object: a value accessed under strict two-phase locking by
/// actions (the substrate behind Section 4.2's "recording grades is not
/// something that should be done part way"). Moss-style nested-action
/// rules:
///
///  * a read takes a shared lock; compatible when the current writer (if
///    any) is the reader itself or one of its ancestors;
///  * a write requires that every current lock holder be the writer
///    itself or an ancestor; the writing action always becomes the
///    innermost writer and logs its own pre-image on its first write;
///  * subaction commit transfers its locks and (older-wins) pre-image to
///    the parent; abort restores the action's own pre-image;
///  * locks are held until the action finishes (strict 2PL).
///
/// Lock conflicts block the calling process; waiting longer than
/// ActionConfig::LockTimeout dooms the action and lets it continue
/// without the lock (its commit will fail) — also the deadlock escape.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_ACTIONS_ATOMICCELL_H
#define PROMISES_ACTIONS_ATOMICCELL_H

#include "promises/actions/Action.h"

#include <cassert>
#include <set>

namespace promises::actions {

template <typename T> class AtomicCell {
public:
  AtomicCell(ActionManager &M, T Initial)
      : M(M), Value(std::move(Initial)), Waiters(M.simulation()) {}
  AtomicCell(const AtomicCell &) = delete;
  AtomicCell &operator=(const AtomicCell &) = delete;

  /// Reads under a shared lock held until \p A finishes. A timed-out
  /// acquisition dooms \p A and returns the current value (harmless: a
  /// doomed action cannot commit).
  const T &read(Action &A) {
    acquire(A, /*Exclusive=*/false);
    return Value;
  }

  /// Writes under an exclusive lock held until \p A finishes; the first
  /// write by an action logs its pre-image for rollback. A doomed
  /// acquisition leaves the value untouched.
  void write(Action &A, T V) {
    if (!acquire(A, /*Exclusive=*/true))
      return;
    ActionId Id = A.id();
    if (!Undo.count(Id))
      Undo.emplace(Id, Value);
    Value = std::move(V);
  }

  /// The value as last written (committed or not); for tests/monitoring.
  const T &peek() const { return Value; }

  /// True if any action holds a lock here.
  bool locked() const { return Writer != 0 || !Sharers.empty(); }

private:
  bool compatible(ActionId Id, bool Exclusive) const {
    if (Writer != 0 && !M.isSelfOrAncestor(Writer, Id))
      return false; // An unrelated action is writing.
    if (!Exclusive)
      return true;
    for (ActionId S : Sharers)
      if (!M.isSelfOrAncestor(S, Id))
        return false; // An unrelated reader blocks the write.
    return true;
  }

  /// Returns true when the lock was obtained; false when the wait timed
  /// out and \p A is now doomed.
  bool acquire(Action &A, bool Exclusive) {
    assert(A.active() && "lock acquisition by a finished action");
    ActionId Id = A.id();
    while (!compatible(Id, Exclusive)) {
      if (!Waiters.waitFor(M.config().LockTimeout)) {
        M.doom(Id);
        return false;
      }
    }
    if (Exclusive)
      Writer = Id; // Innermost writer (may displace an ancestor).
    Sharers.insert(Id);
    if (!Enlisted.count(Id)) {
      Enlisted.insert(Id);
      M.onFinish(Id,
                 [this, Id](bool Committed) { release(Id, Committed); });
    }
    return true;
  }

  /// Nearest ancestor of \p Id that has written this cell (holds an undo
  /// entry); 0 when none.
  ActionId nearestWritingAncestor(ActionId Id) const {
    for (ActionId Cur = M.parentOf(Id); Cur != 0; Cur = M.parentOf(Cur))
      if (Undo.count(Cur))
        return Cur;
    return 0;
  }

  void release(ActionId Id, bool Committed) {
    Enlisted.erase(Id);
    Sharers.erase(Id);
    ActionId Parent = M.parentOf(Id);
    if (!Committed) {
      auto U = Undo.find(Id);
      if (U != Undo.end()) {
        Value = std::move(U->second);
        Undo.erase(U);
      }
      if (Writer == Id)
        Writer = nearestWritingAncestor(Id);
    } else if (Parent != 0) {
      // Merge into the parent: shared lock, write lock, and the older
      // pre-image.
      enlistParent(Parent);
      Sharers.insert(Parent);
      if (Writer == Id)
        Writer = Parent;
      auto U = Undo.find(Id);
      if (U != Undo.end()) {
        if (!Undo.count(Parent))
          Undo.emplace(Parent, std::move(U->second));
        Undo.erase(U);
      }
    } else {
      // Top-level commit: effects durable.
      Undo.erase(Id);
      if (Writer == Id)
        Writer = 0;
    }
    Waiters.notifyAll();
  }

  void enlistParent(ActionId Parent) {
    if (Enlisted.count(Parent))
      return;
    Enlisted.insert(Parent);
    M.onFinish(Parent,
               [this, Parent](bool C) { release(Parent, C); });
  }

  ActionManager &M;
  T Value;
  std::map<ActionId, T> Undo; ///< Pre-image per writing action.
  std::set<ActionId> Sharers;
  ActionId Writer = 0;
  std::set<ActionId> Enlisted; ///< Actions with a finish hook installed.
  sim::WaitQueue Waiters;
};

} // namespace promises::actions

#endif // PROMISES_ACTIONS_ATOMICCELL_H
