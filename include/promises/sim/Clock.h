//===- promises/sim/Clock.h - Real-time clock driver seam ------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The clock driver seam that lets the discrete-event kernel run against
/// wall-clock time (docs/NETWORK.md).
///
/// Without a driver installed, the kernel is a pure discrete-event
/// simulator: run() pops the next event and jumps the virtual clock
/// straight to it. With a driver installed (Simulation::setClockDriver),
/// run()/runFor() switch to a *real-time* loop: they drain every event due
/// at or before the driver's current wall reading, advance the virtual
/// clock to match, and then sleep in the driver — which is where a real
/// backend (net::UdpNetwork) polls its sockets and dispatches arriving
/// datagrams — until the next timer is due or IO wakes it early.
///
/// The virtual clock thus tracks wall time but never runs ahead of a
/// pending event: timers still fire at the exact virtual instant they were
/// armed for, so transport code (retransmit timers, breakers, deadlines)
/// is oblivious to which mode it runs in.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_SIM_CLOCK_H
#define PROMISES_SIM_CLOCK_H

#include "promises/sim/Time.h"

namespace promises::sim {

/// Supplies wall time and bounded blocking to the kernel's real-time run
/// loop. Implemented by real backends (net::UdpNetwork); the simulated
/// backend needs none (virtual time is free).
class ClockDriver {
public:
  virtual ~ClockDriver();

  /// Monotonic nanoseconds since the driver's epoch (its construction).
  /// Must never decrease.
  virtual Time now() = 0;

  /// Blocks for at most \p Timeout nanoseconds, returning early when
  /// external work arrives. Runs in scheduler context: the driver may
  /// dispatch IO directly (deliver datagrams to bound handlers, arm
  /// timers via Simulation::schedule) before returning. Implementations
  /// should call Simulation::advanceClockToWall before dispatching so
  /// handlers observe a fresh now().
  virtual void waitFor(Time Timeout) = 0;
};

/// CLOCK_MONOTONIC nanoseconds relative to construction; the standard
/// epoch source for ClockDriver implementations (a fresh Simulation starts
/// at virtual time 0, so the driver's epoch must be "now" at setup).
class MonotonicClock {
public:
  MonotonicClock() : Epoch(read()) {}

  /// Nanoseconds since construction.
  Time now() const { return read() - Epoch; }

private:
  static Time read();
  Time Epoch;
};

} // namespace promises::sim

#endif // PROMISES_SIM_CLOCK_H
