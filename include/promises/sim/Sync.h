//===- promises/sim/Sync.h - Simulated synchronization ---------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mutex and condition-variable primitives for simulated processes. The
/// paper's promise queues "can be implemented using standard
/// synchronization mechanisms such as semaphores or monitors" — these are
/// the simulated equivalents of those mechanisms.
///
/// Because at most one simulated process runs at a time, these primitives
/// exist to express *logical* mutual exclusion across blocking points, not
/// to prevent data races.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_SIM_SYNC_H
#define PROMISES_SIM_SYNC_H

#include "promises/sim/Simulation.h"

namespace promises::sim {

/// A mutex for simulated processes. Non-recursive.
class SimMutex {
public:
  explicit SimMutex(Simulation &S) : Q(S) {}

  /// Acquires the mutex, blocking the calling process while another
  /// process holds it. Kill delivery point while blocked (never while the
  /// lock is held).
  void lock();

  /// Acquires the mutex if free; returns false without blocking otherwise.
  bool tryLock();

  /// Releases the mutex; must be called by the owner.
  void unlock();

  /// True if the calling process owns the mutex.
  bool heldByCurrent() const { return Owner == Simulation::current(); }

  /// Scoped lock.
  class Guard {
  public:
    explicit Guard(SimMutex &M) : M(M) { M.lock(); }
    ~Guard() { M.unlock(); }
    Guard(const Guard &) = delete;
    Guard &operator=(const Guard &) = delete;

  private:
    SimMutex &M;
  };

private:
  friend class SimCondVar;
  WaitQueue Q;
  Process *Owner = nullptr;
};

/// A condition variable used with SimMutex (a monitor, in the paper's
/// terms).
class SimCondVar {
public:
  explicit SimCondVar(Simulation &S) : Q(S) {}

  /// Atomically releases \p M and blocks until notified, then reacquires
  /// \p M. Kill delivery point; on forced termination the mutex is
  /// reacquired before unwinding so scoped guards stay balanced.
  void wait(SimMutex &M);

  /// Like wait(), but returns false if \p Timeout elapses first.
  bool waitFor(SimMutex &M, Time Timeout);

  /// Wakes one waiter.
  void notifyOne() { Q.notifyOne(); }

  /// Wakes all waiters.
  void notifyAll() { Q.notifyAll(); }

  /// Number of processes blocked in wait().
  size_t waiterCount() const { return Q.waiterCount(); }

private:
  WaitQueue Q;
};

} // namespace promises::sim

#endif // PROMISES_SIM_SYNC_H
