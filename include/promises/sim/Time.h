//===- promises/sim/Time.h - Virtual time ----------------------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Virtual-time representation for the discrete-event simulator. All
/// durations and instants are unsigned nanosecond counts; helpers below
/// build durations from coarser units.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_SIM_TIME_H
#define PROMISES_SIM_TIME_H

#include <cstdint>

namespace promises::sim {

/// A virtual-time instant or duration, in nanoseconds.
using Time = uint64_t;

/// Builds a duration of \p N nanoseconds.
constexpr Time nsec(uint64_t N) { return N; }

/// Builds a duration of \p N microseconds.
constexpr Time usec(uint64_t N) { return N * 1000ull; }

/// Builds a duration of \p N milliseconds.
constexpr Time msec(uint64_t N) { return N * 1000ull * 1000ull; }

/// Builds a duration of \p N seconds.
constexpr Time sec(uint64_t N) { return N * 1000ull * 1000ull * 1000ull; }

/// Converts a virtual duration to fractional milliseconds (for reporting).
constexpr double toMillis(Time T) { return static_cast<double>(T) / 1e6; }

/// Converts a virtual duration to fractional microseconds (for reporting).
constexpr double toMicros(Time T) { return static_cast<double>(T) / 1e3; }

} // namespace promises::sim

#endif // PROMISES_SIM_TIME_H
