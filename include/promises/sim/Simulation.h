//===- promises/sim/Simulation.h - Discrete-event kernel -------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discrete-event simulation kernel the whole system runs on.
///
/// The kernel provides *cooperative simulated processes*: exactly one
/// process (or the scheduler) runs at any instant, with control handed off
/// explicitly at blocking points. This gives the ergonomics of ordinary
/// blocking code (Argus processes block in `claim`, queue `deq`, `synch`,
/// ...) together with fully deterministic virtual time.
///
/// How a process is *executed* is an implementation seam (see
/// docs/RUNTIME.md): the default FiberBackend runs every process as a
/// stackful fiber on the scheduler's own OS thread (a context switch is a
/// few dozen instructions, so millions of concurrent processes are
/// practical), while the ThreadBackend backs each process with a parked OS
/// thread (one kernel handoff per turn; retained for sanitizer and
/// debugging runs). Both backends drive the same event loop in the same
/// order, so a seed produces bit-identical traces on either.
///
/// The kernel also implements the termination machinery the paper's coenter
/// needs (Section 4.2): a process can be *wounded* and then killed, but the
/// kill is deferred while the process is inside a critical section, exactly
/// as the Argus runtime "keeps track of how many critical sections a
/// process is in and delays its termination until the count is zero".
///
/// Forced termination is delivered by throwing the internal ProcessKilled
/// exception from a blocking primitive; this is the single use of C++
/// exceptions in this codebase (see DESIGN.md). User-level "exceptions"
/// (the Argus termination model) are plain values.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_SIM_SIMULATION_H
#define PROMISES_SIM_SIMULATION_H

#include "promises/sim/Time.h"
#include "promises/support/Metrics.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

namespace promises::sim {

class Simulation;
class WaitQueue;
class Process;
class ClockDriver;

namespace detail {
class ExecutionBackend;
struct BackendAccess;
} // namespace detail

/// How simulated processes are executed (docs/RUNTIME.md).
enum class BackendKind : uint8_t {
  Fiber,  ///< Stackful fibers on one OS thread (default; scales to 1M+).
  Thread, ///< One parked OS thread per process (sanitizer/debug fallback).
};

/// Kernel configuration. Plain data; pass to the Simulation constructor.
struct SimConfig {
  /// Execution backend. Defaults to the PROMISES_BACKEND environment
  /// variable ("fiber" or "thread"; anything else aborts), or Fiber when
  /// unset.
  BackendKind Backend = defaultBackend();

  /// Virtual-address reservation per fiber stack (rounded up to a page).
  /// Stacks are carved from large MAP_NORESERVE slabs and pooled, so only
  /// pages a fiber actually touches become resident — a blocked call
  /// process costs about one page regardless of this setting.
  size_t FiberStackBytes = 128 * 1024;

  /// When true, every fiber stack is its own mapping with an inaccessible
  /// low guard page, so overflow faults instead of corrupting a neighbor.
  /// Costs one mmap/mprotect pair per pooled stack (and counts against
  /// vm.max_map_count), so it is off by default; also enabled by
  /// PROMISES_FIBER_GUARD=1. Intended for debugging runs, not 1M-process
  /// scale.
  bool FiberGuardPages = defaultGuardPages();

  /// PROMISES_BACKEND-resolved default (Fiber when unset).
  static BackendKind defaultBackend();
  /// PROMISES_FIBER_GUARD-resolved default (false when unset).
  static bool defaultGuardPages();
  /// Parses "fiber"/"thread" into \p Out; false on anything else.
  static bool parseBackend(std::string_view Name, BackendKind &Out);
  /// "fiber" or "thread".
  static const char *backendName(BackendKind K);
};

/// Internal control-flow exception used to unwind a forcibly terminated
/// process from its current blocking point. Never thrown through user data;
/// caught by the process trampoline. User code must be exception-neutral
/// (RAII cleanup only) and must never swallow it.
struct ProcessKilled {};

/// Lifecycle states of a simulated process.
enum class ProcState : uint8_t {
  Created,  ///< Spawned, not yet run.
  Ready,    ///< Wake event scheduled; will run when it fires.
  Running,  ///< Currently holds the turn.
  Blocked,  ///< Waiting in a WaitQueue (or sleeping).
  Finished, ///< Body returned or process was killed.
};

/// A FIFO queue of blocked processes; the basic blocking primitive.
///
/// Waiters are linked intrusively through the Process objects themselves
/// (a process blocks in at most one queue at a time), so an idle queue is
/// three words and enqueue/dequeue/remove are O(1) with no allocation —
/// the per-process join and sleep queues below rely on this.
///
/// Only usable from inside simulated processes (wait side) and from any
/// single-runner context (notify side).
class WaitQueue {
public:
  explicit WaitQueue(Simulation &S) : Sim(S) {}
  ~WaitQueue();
  WaitQueue(const WaitQueue &) = delete;
  WaitQueue &operator=(const WaitQueue &) = delete;

  /// Blocks the current process until notified. Kill delivery point.
  void wait();

  /// Blocks until notified or until \p Timeout elapses. Returns true when
  /// woken by a notify, false on timeout. Kill delivery point.
  bool waitFor(Time Timeout);

  /// Wakes the longest-waiting process, if any.
  void notifyOne();

  /// Wakes all waiting processes.
  void notifyAll();

  /// Number of processes currently blocked here.
  size_t waiterCount() const { return Count; }

  /// The simulation this queue blocks in (for deadline arithmetic in
  /// bounded claims).
  Simulation &simulation() const { return Sim; }

private:
  friend class Simulation;
  friend class Process;

  void removeWaiter(Process *P);
  void enqueueCurrent(Process *P);

  Simulation &Sim;
  Process *Head = nullptr; ///< Longest waiting (next to wake).
  Process *Tail = nullptr;
  size_t Count = 0;
};

/// A cooperative simulated process.
///
/// Created via Simulation::spawn. All members are manipulated only while
/// the owning execution context (or the scheduler) holds the single
/// execution turn, so no locking is needed beyond the backend's own
/// turn-handoff machinery.
class Process {
public:
  Process(const Process &) = delete;
  Process &operator=(const Process &) = delete;
  ~Process();

  /// Monotonically increasing id, unique within the Simulation.
  uint64_t id() const { return Id; }

  /// Debug name given at spawn time.
  const std::string &name() const { return Name; }

  /// True once the body has returned or the process has been killed.
  bool finished() const { return State == ProcState::Finished; }

  /// True if the process has been wounded (asked to terminate). A wounded
  /// process is "greatly restricted" (paper, Section 4.2): the runtime
  /// refuses to start remote calls on its behalf.
  bool wounded() const { return Wounded; }

  /// Current nesting depth of critical sections.
  int criticalDepth() const { return CriticalDepth; }

private:
  friend class Simulation;
  friend class WaitQueue;
  friend class CriticalSection;
  friend struct detail::BackendAccess;

  Process(Simulation &S, uint64_t Id, std::string Name,
          std::function<void()> Body);

  /// The shared trampoline core, run inside the process's own execution
  /// context (fiber or thread): delivers a pre-start kill, runs the body,
  /// absorbs ProcessKilled, marks Finished, and wakes joiners. The backend
  /// then returns the turn to the scheduler for good.
  void runBody();

  /// Gives the turn back to the scheduler and blocks until it is returned.
  /// On resume, delivers a pending kill if it is safe to do so.
  void yieldToScheduler();

  /// Throws ProcessKilled if a kill is pending and deliverable here.
  void deliverKill();

  Simulation &Sim;
  const uint64_t Id;
  const std::string Name;
  std::function<void()> Body;

  /// Backend-owned execution state (fiber stack + saved context, or the
  /// thread + handoff pair). Null once the process has been reaped.
  void *Exec = nullptr;

  // Simulation-side state; single-runner discipline, no locks needed.
  ProcState State = ProcState::Created;
  bool NotifiedFlag = false; ///< Set when woken by notify (vs timeout).
  bool Wounded = false;
  bool KillPending = false;
  bool Unwinding = false;      ///< ProcessKilled currently propagating.
  bool HasTimeoutEvent = false;
  int CriticalDepth = 0;
  WaitQueue *WaitingOn = nullptr;
  Process *WaitPrev = nullptr; ///< Intrusive links within WaitingOn.
  Process *WaitNext = nullptr;
  Process *ReadyNext = nullptr; ///< Link in the scheduler's ready FIFO.
  Time ReadyAt = 0;             ///< (At, Seq) dispatch key of the pending
  uint64_t ReadySeq = 0;        ///< wake, merged against timed events.
  uint64_t WaitEpoch = 0;    ///< Incremented on every wait; guards stale
                             ///< timeout events.
  uint64_t TimeoutEvent = 0; ///< Pending waitFor timeout; cancelled on any
                             ///< wake so it cannot advance the clock.

  WaitQueue JoinQ;  ///< Waiters in Simulation::join.
  WaitQueue SleepQ; ///< Private queue backing sleep().
};

using ProcessHandle = std::shared_ptr<Process>;

/// RAII critical-section marker (the Argus built-in critical section).
///
/// While at least one CriticalSection is alive in a process, a pending kill
/// is deferred; it is delivered when the outermost section is left (or at
/// the next blocking point after that).
class CriticalSection {
public:
  CriticalSection();
  ~CriticalSection() noexcept(false);
  CriticalSection(const CriticalSection &) = delete;
  CriticalSection &operator=(const CriticalSection &) = delete;

private:
  Process *Proc;
  int ExceptionsAtEntry;
};

/// The discrete-event simulator: virtual clock, event queue, and process
/// scheduler. One Simulation per test/benchmark/example; not thread-safe
/// across Simulations sharing threads (each owns its execution backend).
class Simulation {
public:
  Simulation();
  explicit Simulation(SimConfig Cfg);
  ~Simulation();
  Simulation(const Simulation &) = delete;
  Simulation &operator=(const Simulation &) = delete;

  /// Current virtual time.
  Time now() const { return NowNs; }

  /// The execution backend this world runs on.
  BackendKind backend() const { return Cfg.Backend; }

  /// "fiber" or "thread".
  const char *backendName() const {
    return SimConfig::backendName(Cfg.Backend);
  }

  /// The observability registry shared by every layer of this world (see
  /// docs/OBSERVABILITY.md). The kernel registers sim.context_switches,
  /// sim.event_queue_depth, sim.live_processes, and sim.processes_spawned.
  MetricsRegistry &metrics() { return Metrics; }
  const MetricsRegistry &metrics() const { return Metrics; }

  /// Creates a process that will start running at the current time (once
  /// the event loop reaches its start event).
  ProcessHandle spawn(std::string Name, std::function<void()> Body);

  /// Runs the event loop until no events remain or stop() is called.
  /// Must be called from outside any simulated process.
  ///
  /// With a clock driver installed this becomes the real-time loop (see
  /// sim/Clock.h): it returns at quiescence — no live processes, no armed
  /// timers, nothing ready — or on stop(). A server that should stay
  /// alive for unsolicited IO must keep a (blocked) process around.
  void run();

  /// Runs until virtual time reaches now()+Duration (or the queue drains,
  /// or stop()). Returns true if events remain. Advances the clock to the
  /// requested horizon even if the queue drains earlier.
  ///
  /// With a clock driver installed the horizon is a wall-clock deadline:
  /// the loop keeps polling the driver for IO until wall time reaches it
  /// (it does not return early at quiescence — new work can arrive from
  /// outside).
  bool runFor(Time Duration);

  /// Requests that run()/runFor() return after the current event.
  void stop() { StopRequested = true; }

  /// --- Real-time mode (sim/Clock.h; used by net::UdpNetwork) ---

  /// Installs (or, with nullptr, removes) the wall-clock driver. The
  /// driver must outlive every subsequent run()/runFor() call.
  void setClockDriver(ClockDriver *D) { Clock = D; }
  ClockDriver *clockDriver() const { return Clock; }

  /// Advances the virtual clock toward \p Wall, clamped to the earliest
  /// pending event so dispatch never observes time running backwards.
  /// Called by clock drivers before dispatching IO mid-wait, and by the
  /// real-time loop after each drain. No-op when \p Wall is in the past.
  void advanceClockToWall(Time Wall);

  /// --- Callable from inside a simulated process ---

  /// Blocks the calling process for \p Duration of virtual time.
  void sleep(Time Duration);

  /// Reschedules the calling process at the current time, letting other
  /// ready processes and events at this instant run first.
  void yieldNow();

  /// Blocks the calling process until \p P finishes. Kill delivery point.
  /// Fine to call on an already-reaped process; returns immediately.
  void join(const ProcessHandle &P);

  /// The process currently holding the turn, or nullptr in scheduler
  /// context (event callbacks, code outside run()).
  static Process *current();

  /// True when called from inside a simulated process.
  static bool inProcess() { return current() != nullptr; }

  /// --- Termination (paper Section 4.2) ---

  /// Wounds \p P: marks it as asked-to-terminate without forcing unwind.
  /// The runtime refuses remote calls for wounded processes.
  void wound(const ProcessHandle &P) { woundImpl(P.get()); }

  /// Wounds \p P and forces termination at the next safe point: a blocking
  /// point (or critical-section exit) with critical depth zero. If \p P is
  /// currently blocked outside any critical section it is woken
  /// immediately to unwind. No-op on finished (including reaped)
  /// processes.
  void kill(const ProcessHandle &P) { killImpl(P.get()); }

  /// --- Events ---

  /// Schedules \p Fn to run in scheduler context after \p Delay. The
  /// callback must not block. Returns an id usable with cancel().
  uint64_t schedule(Time Delay, std::function<void()> Fn);

  /// Cancels a scheduled callback; no-op if it already ran or was
  /// cancelled.
  void cancel(uint64_t EventId);

  /// --- Introspection (used by tests and the E10 benchmark) ---

  /// Total number of scheduler->process handoffs so far. A direct measure
  /// of the process-management burden discussed in paper Section 4.3.
  /// (Thin view of the sim.context_switches registry counter.)
  uint64_t contextSwitches() const { return CtxSwitches->value(); }

  /// Number of processes spawned so far.
  uint64_t processesSpawned() const { return NextProcId; }

  /// Number of spawned processes that have not finished. A maintained
  /// counter, not a scan: O(1) at any scale.
  size_t liveProcessCount() const { return LiveProcs; }

private:
  friend class Process;
  friend class WaitQueue;
  friend struct detail::BackendAccess;

  /// One armed schedule() callback in the timed heap. Entries are small
  /// PODs ordered by (At, Seq) — the exact dispatch order the former
  /// std::map<QueueKey, function> gave — while the closure lives in a
  /// pooled EventRecord slot, so arming a timer costs no node allocations
  /// (the old representation paid a tree node plus a hash-map node per
  /// event, on a path the transport hits several times per call).
  struct TimedEvent {
    Time At;
    uint64_t Seq;  ///< Global dispatch tiebreak (NextEventSeq).
    uint32_t Slot; ///< Index into EventPool.
    uint32_t Gen;  ///< EventPool[Slot].Gen at arm time.
  };
  /// Pooled per-event state, recycled through an intrusive freelist.
  /// Cancellation is lazy: cancel() flags the record (destroying the
  /// closure eagerly, as the map erase used to) and the tombstoned heap
  /// entry is dropped unexecuted — without advancing the clock — when it
  /// surfaces. The generation makes stale ids (event already ran, slot
  /// reused) miss, which is what the old hash-map lookup provided.
  struct EventRecord {
    std::function<void()> Fn;
    uint32_t Gen = 0;      ///< Bumped on slot release; validates ids.
    uint32_t NextFree = 0; ///< Freelist link while free.
    bool Armed = false;
    bool Cancelled = false;
  };

  static bool timedAfter(const TimedEvent &A, const TimedEvent &B) {
    return A.At != B.At ? A.At > B.At : A.Seq > B.Seq;
  }

  /// Drops tombstoned (cancelled) entries off the top of the heap, then
  /// returns the next live timed event, or nullptr when none remain.
  TimedEvent *peekTimed();

  /// Returns \p Slot to the freelist, destroying its closure and bumping
  /// its generation so outstanding ids for it go stale.
  void releaseEventSlot(uint32_t Slot);

  /// Hands the turn to \p P and waits until it yields back; reaps it if it
  /// finished during the turn.
  void switchTo(Process *P);

  /// Schedules a wake event for a Blocked/Created process at now().
  void makeReady(Process *P);

  /// Appends \p P to the ready FIFO with a fresh (now, seq) dispatch key.
  void pushReady(Process *P);

  /// Releases a finished process's execution resources and drops the
  /// kernel's handle (joiners were already woken; external handles keep
  /// the object alive). Scheduler context only.
  void reap(Process *P);

  void woundImpl(Process *P);
  void killImpl(Process *P);

  /// Runs one event; returns false when the queue is empty or the next
  /// event lies beyond \p Horizon.
  bool step(Time Horizon);

  /// The run()/runFor() body when a clock driver is installed: drain due
  /// events, advance to wall, sleep in the driver until the next timer.
  /// Returns when wall time reaches \p Horizon, on stop(), or — only with
  /// an unbounded horizon — at quiescence.
  void runRealTime(Time Horizon);

  /// Kills all unfinished processes (ignoring critical sections) and
  /// drains; used by the destructor.
  void shutdown();

  /// Declared first so instrument handles outlive everything else.
  MetricsRegistry Metrics;
  Counter *CtxSwitches = nullptr; ///< sim.context_switches.

  SimConfig Cfg;
  /// Declared before the process table so the ~Process fail-safe (which
  /// runs while AllProcs clears) can still reach it.
  std::unique_ptr<detail::ExecutionBackend> Backend;

  Time NowNs = 0;
  ClockDriver *Clock = nullptr; ///< Non-null => real-time mode.
  bool StopRequested = false;
  bool ShuttingDown = false;
  uint64_t NextProcId = 0;
  uint64_t NextEventSeq = 0;
  size_t LiveProcs = 0;

  /// The two pending-work structures, merged by (time, seq) in step() so
  /// dispatch order is exactly the single-queue order:
  ///
  ///  * Ready FIFO — process wakes, linked intrusively through the
  ///    Process objects (each has at most one pending wake). Appends carry
  ///    the current time and a fresh seq, so the list is (At, Seq)-sorted
  ///    by construction and the wake-heavy hot path — a context switch —
  ///    allocates nothing.
  ///  * Timed heap — schedule() callbacks (timeouts, network delivery),
  ///    cancelled in O(1) by flagging the pooled record.
  Process *ReadyHead = nullptr;
  Process *ReadyTail = nullptr;
  size_t ReadyCount = 0; ///< FIFO length (for the queue-depth gauge).
  std::vector<TimedEvent> TimedHeap; ///< Min-heap via timedAfter.
  std::vector<EventRecord> EventPool;
  uint32_t FreeEventHead = UINT32_MAX; ///< Head of the free-slot list.
  size_t LiveTimed = 0; ///< Armed, not-cancelled events in TimedHeap.

  /// Unfinished processes by id (finished ones are reaped eagerly, so at
  /// quiescence this is empty even after millions of spawns).
  std::map<uint64_t, ProcessHandle> AllProcs;
};

} // namespace promises::sim

#endif // PROMISES_SIM_SIMULATION_H
