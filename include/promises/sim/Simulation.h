//===- promises/sim/Simulation.h - Discrete-event kernel -------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discrete-event simulation kernel the whole system runs on.
///
/// The kernel provides *cooperative simulated processes*: each process is
/// backed by an OS thread, but exactly one thread (a process or the
/// scheduler) runs at any instant, with control handed off explicitly at
/// blocking points. This gives the ergonomics of ordinary blocking code
/// (Argus processes block in `claim`, queue `deq`, `synch`, ...) together
/// with fully deterministic virtual time.
///
/// The kernel also implements the termination machinery the paper's coenter
/// needs (Section 4.2): a process can be *wounded* and then killed, but the
/// kill is deferred while the process is inside a critical section, exactly
/// as the Argus runtime "keeps track of how many critical sections a
/// process is in and delays its termination until the count is zero".
///
/// Forced termination is delivered by throwing the internal ProcessKilled
/// exception from a blocking primitive; this is the single use of C++
/// exceptions in this codebase (see DESIGN.md). User-level "exceptions"
/// (the Argus termination model) are plain values.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_SIM_SIMULATION_H
#define PROMISES_SIM_SIMULATION_H

#include "promises/sim/Time.h"
#include "promises/support/Metrics.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace promises::sim {

class Simulation;
class WaitQueue;

/// Internal control-flow exception used to unwind a forcibly terminated
/// process from its current blocking point. Never thrown through user data;
/// caught by the process trampoline. User code must be exception-neutral
/// (RAII cleanup only) and must never swallow it.
struct ProcessKilled {};

/// Lifecycle states of a simulated process.
enum class ProcState : uint8_t {
  Created,  ///< Spawned, not yet run.
  Ready,    ///< Wake event scheduled; will run when it fires.
  Running,  ///< Currently holds the turn.
  Blocked,  ///< Waiting in a WaitQueue (or sleeping).
  Finished, ///< Body returned or process was killed.
};

/// A cooperative simulated process.
///
/// Created via Simulation::spawn. All members are manipulated only while
/// the owning thread (or the scheduler) holds the single execution turn, so
/// no locking is needed beyond the turn-handoff machinery itself.
class Process {
public:
  Process(const Process &) = delete;
  Process &operator=(const Process &) = delete;
  ~Process();

  /// Monotonically increasing id, unique within the Simulation.
  uint64_t id() const { return Id; }

  /// Debug name given at spawn time.
  const std::string &name() const { return Name; }

  /// True once the body has returned or the process has been killed.
  bool finished() const { return State == ProcState::Finished; }

  /// True if the process has been wounded (asked to terminate). A wounded
  /// process is "greatly restricted" (paper, Section 4.2): the runtime
  /// refuses to start remote calls on its behalf.
  bool wounded() const { return Wounded; }

  /// Current nesting depth of critical sections.
  int criticalDepth() const { return CriticalDepth; }

private:
  friend class Simulation;
  friend class WaitQueue;
  friend class CriticalSection;

  Process(Simulation &S, uint64_t Id, std::string Name,
          std::function<void()> Body);

  /// Thread entry point; waits for the first turn, runs the body, then
  /// hands the turn back for good.
  void threadMain();

  /// Gives the turn back to the scheduler and blocks until it is returned.
  /// On resume, delivers a pending kill if it is safe to do so.
  void yieldToScheduler();

  /// Throws ProcessKilled if a kill is pending and deliverable here.
  void deliverKill();

  Simulation &Sim;
  const uint64_t Id;
  const std::string Name;
  std::function<void()> Body;

  // Turn-handoff machinery (the only cross-thread state).
  std::mutex Mu;
  std::condition_variable Cv;
  bool TurnIsProcess = false;
  std::thread Thread;

  // Simulation-side state; single-runner discipline, no locks needed.
  ProcState State = ProcState::Created;
  WaitQueue *WaitingOn = nullptr;
  uint64_t WaitEpoch = 0;    ///< Incremented on every wait; guards stale
                             ///< timeout events.
  uint64_t TimeoutEvent = 0; ///< Pending waitFor timeout; cancelled on any
                             ///< wake so it cannot advance the clock.
  bool HasTimeoutEvent = false;
  bool NotifiedFlag = false; ///< Set when woken by notify (vs timeout).
  bool Wounded = false;
  bool KillPending = false;
  bool Unwinding = false; ///< ProcessKilled currently propagating.
  int CriticalDepth = 0;

  std::unique_ptr<WaitQueue> JoinQ; ///< Waiters in Simulation::join.
  std::unique_ptr<WaitQueue> SleepQ; ///< Private queue backing sleep().
};

using ProcessHandle = std::shared_ptr<Process>;

/// A FIFO queue of blocked processes; the basic blocking primitive.
///
/// Only usable from inside simulated processes (wait side) and from any
/// single-runner context (notify side).
class WaitQueue {
public:
  explicit WaitQueue(Simulation &S) : Sim(S) {}
  ~WaitQueue();
  WaitQueue(const WaitQueue &) = delete;
  WaitQueue &operator=(const WaitQueue &) = delete;

  /// Blocks the current process until notified. Kill delivery point.
  void wait();

  /// Blocks until notified or until \p Timeout elapses. Returns true when
  /// woken by a notify, false on timeout. Kill delivery point.
  bool waitFor(Time Timeout);

  /// Wakes the longest-waiting process, if any.
  void notifyOne();

  /// Wakes all waiting processes.
  void notifyAll();

  /// Number of processes currently blocked here.
  size_t waiterCount() const { return Waiters.size(); }

  /// The simulation this queue blocks in (for deadline arithmetic in
  /// bounded claims).
  Simulation &simulation() const { return Sim; }

private:
  friend class Simulation;

  void removeWaiter(Process *P);
  void enqueueCurrent(Process *P);

  Simulation &Sim;
  std::deque<Process *> Waiters;
};

/// RAII critical-section marker (the Argus built-in critical section).
///
/// While at least one CriticalSection is alive in a process, a pending kill
/// is deferred; it is delivered when the outermost section is left (or at
/// the next blocking point after that).
class CriticalSection {
public:
  CriticalSection();
  ~CriticalSection() noexcept(false);
  CriticalSection(const CriticalSection &) = delete;
  CriticalSection &operator=(const CriticalSection &) = delete;

private:
  Process *Proc;
  int ExceptionsAtEntry;
};

/// The discrete-event simulator: virtual clock, event queue, and process
/// scheduler. One Simulation per test/benchmark/example; not thread-safe
/// across Simulations sharing threads (each owns its process threads).
class Simulation {
public:
  Simulation();
  ~Simulation();
  Simulation(const Simulation &) = delete;
  Simulation &operator=(const Simulation &) = delete;

  /// Current virtual time.
  Time now() const { return NowNs; }

  /// The observability registry shared by every layer of this world (see
  /// docs/OBSERVABILITY.md). The kernel registers sim.context_switches,
  /// sim.event_queue_depth, sim.live_processes, and sim.processes_spawned.
  MetricsRegistry &metrics() { return Metrics; }
  const MetricsRegistry &metrics() const { return Metrics; }

  /// Creates a process that will start running at the current time (once
  /// the event loop reaches its start event).
  ProcessHandle spawn(std::string Name, std::function<void()> Body);

  /// Runs the event loop until no events remain or stop() is called.
  /// Must be called from outside any simulated process.
  void run();

  /// Runs until virtual time reaches now()+Duration (or the queue drains,
  /// or stop()). Returns true if events remain. Advances the clock to the
  /// requested horizon even if the queue drains earlier.
  bool runFor(Time Duration);

  /// Requests that run()/runFor() return after the current event.
  void stop() { StopRequested = true; }

  /// --- Callable from inside a simulated process ---

  /// Blocks the calling process for \p Duration of virtual time.
  void sleep(Time Duration);

  /// Reschedules the calling process at the current time, letting other
  /// ready processes and events at this instant run first.
  void yieldNow();

  /// Blocks the calling process until \p P finishes. Kill delivery point.
  void join(const ProcessHandle &P);

  /// The process currently holding the turn, or nullptr in scheduler
  /// context (event callbacks, code outside run()).
  static Process *current();

  /// True when called from inside a simulated process.
  static bool inProcess() { return current() != nullptr; }

  /// --- Termination (paper Section 4.2) ---

  /// Wounds \p P: marks it as asked-to-terminate without forcing unwind.
  /// The runtime refuses remote calls for wounded processes.
  void wound(const ProcessHandle &P) { woundImpl(P.get()); }

  /// Wounds \p P and forces termination at the next safe point: a blocking
  /// point (or critical-section exit) with critical depth zero. If \p P is
  /// currently blocked outside any critical section it is woken
  /// immediately to unwind.
  void kill(const ProcessHandle &P) { killImpl(P.get()); }

  /// --- Events ---

  /// Schedules \p Fn to run in scheduler context after \p Delay. The
  /// callback must not block. Returns an id usable with cancel().
  uint64_t schedule(Time Delay, std::function<void()> Fn);

  /// Cancels a scheduled callback; no-op if it already ran or was
  /// cancelled.
  void cancel(uint64_t EventId);

  /// --- Introspection (used by tests and the E10 benchmark) ---

  /// Total number of scheduler->process handoffs so far. A direct measure
  /// of the process-management burden discussed in paper Section 4.3.
  /// (Thin view of the sim.context_switches registry counter.)
  uint64_t contextSwitches() const { return CtxSwitches->value(); }

  /// Number of processes spawned so far.
  uint64_t processesSpawned() const { return NextProcId; }

  /// Number of spawned processes that have not finished.
  size_t liveProcessCount() const;

private:
  friend class Process;
  friend class WaitQueue;

  struct EventPayload {
    Process *Wake = nullptr;
    std::function<void()> Fn;
  };
  struct QueueKey {
    Time At;
    uint64_t Seq;
    bool operator<(const QueueKey &O) const {
      return At != O.At ? At < O.At : Seq < O.Seq;
    }
  };

  /// Hands the turn to \p P and waits until it yields back.
  void switchTo(Process *P);

  /// Schedules a wake event for a Blocked/Created process at now().
  void makeReady(Process *P);

  void woundImpl(Process *P);
  void killImpl(Process *P);

  /// Runs one event; returns false when the queue is empty or the next
  /// event lies beyond \p Horizon.
  bool step(Time Horizon);

  /// Kills all unfinished processes (ignoring critical sections) and
  /// drains; used by the destructor.
  void shutdown();

  /// Declared first so instrument handles outlive everything else.
  MetricsRegistry Metrics;
  Counter *CtxSwitches = nullptr; ///< sim.context_switches.

  Time NowNs = 0;
  bool StopRequested = false;
  bool ShuttingDown = false;
  uint64_t NextProcId = 0;
  uint64_t NextEventSeq = 0;

  std::map<QueueKey, uint64_t> Queue; ///< (time, seq) -> event id.
  std::unordered_map<uint64_t, EventPayload> Events;
  std::vector<ProcessHandle> AllProcs;
};

} // namespace promises::sim

#endif // PROMISES_SIM_SIMULATION_H
