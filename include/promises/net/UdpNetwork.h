//===- promises/net/UdpNetwork.h - Real UDP socket backend -----*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-socket implementation of the `net::Network` seam
/// (docs/NETWORK.md): every bound endpoint is a nonblocking UDP socket,
/// delivery is whatever the kernel's network stack does, and time is wall
/// time — UdpNetwork doubles as the Simulation's ClockDriver, so the
/// event loop sleeps in ppoll(2) over the open sockets and transport
/// timers fire at real nanosecond deadlines.
///
/// The byte stream is unchanged: the same 10-byte CRC32C frames the
/// simulator carries (wire/Frame.h) travel one-per-datagram, so an
/// unchanged StreamTransport provides sequencing, retransmission, and
/// integrity on top. The simulator stays the determinism/chaos oracle;
/// this backend is the measurement plane.
///
/// Addressing. A promises `Address` is (node, port, epoch); UDP gives us
/// (ip, udp-port). The mapping:
///
///  * A *local* node's promises port P is a socket bound to udp port
///    `BasePort + P` (or a kernel-assigned ephemeral port when the node
///    was added without a base — fine within one process, where the
///    reverse map is exact).
///  * A *remote* node (addRemoteNode) is (ip, base): sends to its
///    promises port P go to udp `base + P`, and datagrams arriving from
///    (ip, base+P) are attributed to From = {node, P, 0}.
///
/// No extra bytes travel on the wire for addressing — the udp source
/// address carries it. Epochs are meaningful only for nodes local to this
/// process (crash/restart of a remote process is a real crash; stale
/// traffic to a reused port is then filtered by the remote side's own
/// epoch check at bind-lookup time).
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_NET_UDPNETWORK_H
#define PROMISES_NET_UDPNETWORK_H

#include "promises/net/Network.h"
#include "promises/sim/Clock.h"

#include <deque>
#include <memory>
#include <poll.h>
#include <unordered_map>

namespace promises::net {

/// Socket-level configuration for the UDP backend.
struct UdpConfig {
  /// Local address every socket binds to. Loopback by default: the smoke
  /// and bench setups are single-machine; point it at a real interface
  /// for cross-host runs.
  std::string BindIp = "127.0.0.1";

  /// Promises ports a node may occupy: node base + PortSpan bounds the
  /// udp range attributed to it when reverse-mapping datagram sources.
  uint16_t PortSpan = 256;

  /// Receive buffer size — also the largest datagram accepted. Frames
  /// are far smaller (MaxBatchBytes), so 64 KiB is generous.
  size_t MaxDatagramBytes = 64 * 1024;

  /// Per-socket cap on datagrams parked after EAGAIN/ENOBUFS; overflow
  /// is dropped (and counted) like any other loss.
  size_t MaxSendQueue = 4096;

  /// SO_SNDBUF/SO_RCVBUF request per socket (0 = kernel default).
  int SocketBufferBytes = 1 << 20;
};

/// The measurement-plane backend: real UDP sockets, real time.
///
/// Construction installs the instance as the Simulation's clock driver
/// (destruction removes it), flipping run()/runFor() into real-time mode
/// — see sim/Clock.h for the loop contract. Bound handlers are dispatched
/// from inside waitFor(), i.e. in scheduler context, exactly like the
/// simulated backend's delivery events.
class UdpNetwork final : public Network, public sim::ClockDriver {
public:
  UdpNetwork(sim::Simulation &S, UdpConfig C = UdpConfig());
  ~UdpNetwork() override;

  sim::Simulation &simulation() override { return Sim; }
  const UdpConfig &config() const { return Cfg; }

  /// Creates a local node whose sockets bind kernel-assigned ephemeral
  /// ports. Only addressable from within this process (the reverse map is
  /// this instance's socket table), which is all single-process loopback
  /// runs — parity tests, bench_netpath — need.
  NodeId addNode(std::string Name) override;

  /// Creates a local node with a deterministic udp port block: promises
  /// port P binds udp `Base + P`. Required for cross-process runs, where
  /// the peer must be able to name this node's ports without asking.
  NodeId addNode(std::string Name, uint16_t Base);

  /// Registers a node that lives in another process at (\p Ip, \p Base).
  /// It cannot be bound here; it is a send target and a recognized
  /// datagram source.
  NodeId addRemoteNode(std::string Name, std::string Ip, uint16_t Base);

  const std::string &nodeName(NodeId N) const override;
  Address bind(NodeId N, std::function<void(Datagram)> Handler) override;
  void unbind(Address A) override;
  void send(Address From, Address To, wire::Bytes Payload) override;

  /// Closes every socket of a local node and fires crash observers. For a
  /// remote node it only marks the node down locally (sends drop); the
  /// remote process's actual life is its own.
  void crash(NodeId N) override;
  void restart(NodeId N) override;
  bool isUp(NodeId N) const override;
  uint32_t nodeEpoch(NodeId N) const override;
  void onCrash(NodeId N, std::function<void()> Cb) override;

  NetCounters counters() const override;
  NetCounters counters(NodeId N) const override;

  /// Datagrams from udp sources no local or remote node accounts for.
  uint64_t unknownSourceDrops() const;

  /// Datagrams dropped because a socket's send queue overflowed.
  uint64_t sendQueueDrops() const;

  /// --- ClockDriver ---

  sim::Time now() override { return Wall.now(); }

  /// Sleeps in ppoll over all open sockets for at most \p Timeout,
  /// dispatching arriving datagrams and draining parked sends first.
  void waitFor(sim::Time Timeout) override;

private:
  struct Endpoint; // One bound promises port = one socket.
  struct NodeRec;

  NodeRec &node(NodeId N);
  const NodeRec &node(NodeId N) const;
  NodeId addNodeRec(std::string Name, bool Local, uint16_t Base,
                    uint32_t RemoteIp);
  /// Resolves a datagram source (ip, udp port) to a promises address;
  /// false when no node accounts for it.
  bool mapSource(uint32_t Ip, uint16_t Port, Address &Out) const;
  void closeEndpoint(Endpoint &E);
  /// Receives everything pending on the socket, dispatching handlers. By
  /// fd so a handler that unbinds endpoints mid-dispatch can't dangle us.
  void drainRecv(int Fd);
  void drainSendQueue(Endpoint &E);
  void rebuildPollSet();

  sim::Simulation &Sim;
  MetricsRegistry &Reg;
  UdpConfig Cfg;
  sim::MonotonicClock Wall;
  std::vector<NodeRec> Nodes;
  /// Owning endpoint table by promises address. unique_ptr: endpoints are
  /// pointed into by the udp reverse map and the poll set.
  std::map<Address, std::unique_ptr<Endpoint>> Binds;
  /// Local reverse map: (ip << 16 | udp port) -> endpoint.
  std::unordered_map<uint64_t, Endpoint *> ByUdp;
  std::unordered_map<int, Endpoint *> ByFd; ///< Socket fd -> endpoint.
  std::vector<pollfd> Pfds; ///< Rebuilt from Binds each waitFor.
  std::vector<uint8_t> RecvBuf;
  CounterCells Totals;
  Counter *UnknownSource = nullptr; ///< net.udp_unknown_source_dropped.
  Counter *QueueDrops = nullptr;    ///< net.udp_send_queue_drops.
};

} // namespace promises::net

#endif // PROMISES_NET_UDPNETWORK_H
