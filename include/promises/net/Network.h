//===- promises/net/Network.h - Datagram network backends ------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The datagram network seam (docs/NETWORK.md). `Network` is the abstract
/// unreliable-datagram service every layer above (StreamTransport,
/// Guardian, the send/receive baseline) is written against; two backends
/// implement it:
///
///  * `SimNetwork` (this file) — the deterministic in-process simulator
///    with the cost model that drives the paper's performance claims:
///
///     - every datagram costs a fixed *kernel-call overhead* plus a
///       per-byte serialization cost at each side (paper, Section 2:
///       "Buffering allows us to amortize the overhead of kernel calls and
///       the transmission delays for messages over several calls"),
///     - each node's transmit and receive paths are serial resources, so
///       per-message overheads bound throughput,
///     - one-way propagation delay bounds RPC latency,
///
///    plus seeded fault injection: message loss, duplication, reordering
///    jitter, bit-flip corruption, link partitions, and node crashes — the
///    raw material for broken streams (Section 2). The simulator is the
///    determinism/chaos oracle.
///
///  * `UdpNetwork` (net/UdpNetwork.h) — the same service over real
///    nonblocking UDP sockets and a real-time clock driver; the
///    measurement plane. Same frames, same transport, real kernel.
///
/// The stream transport carries its own integrity (CRC32C frames) and
/// recovery (retransmission) machinery, so both backends may drop,
/// duplicate, and reorder freely.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_NET_NETWORK_H
#define PROMISES_NET_NETWORK_H

#include "promises/sim/Simulation.h"
#include "promises/support/Rng.h"
#include "promises/wire/Codec.h"

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace promises::net {

/// Identifies a node in the network.
using NodeId = uint32_t;

/// A bound datagram endpoint: (node, port number, node incarnation).
///
/// The epoch names the incarnation of the node the port was bound in. A
/// restart bumps the node's epoch and resets port allocation, so an
/// address minted before a crash can never alias a binding made after the
/// restart even when the port number is reused — datagrams addressed to a
/// previous epoch are dropped at delivery.
struct Address {
  NodeId Node = 0;
  uint32_t Port = 0;
  uint32_t Epoch = 0;

  friend bool operator==(const Address &A, const Address &B) {
    return A.Node == B.Node && A.Port == B.Port && A.Epoch == B.Epoch;
  }
  friend bool operator<(const Address &A, const Address &B) {
    if (A.Node != B.Node)
      return A.Node < B.Node;
    if (A.Epoch != B.Epoch)
      return A.Epoch < B.Epoch;
    return A.Port < B.Port;
  }
};

/// A delivered datagram.
struct Datagram {
  Address From;
  Address To;
  wire::Bytes Payload;
};

/// Cost model and fault parameters for the simulated backend. Defaults
/// approximate a late-1980s LAN RPC system; see DESIGN.md Section 5.
struct NetConfig {
  sim::Time SendKernelOverhead = sim::usec(50);
  sim::Time RecvKernelOverhead = sim::usec(20);
  sim::Time PerByte = sim::nsec(100); // 1 us per 10 bytes.
  sim::Time Propagation = sim::msec(2);
  uint32_t HeaderBytes = 32; ///< Fixed per-datagram framing overhead.
  double LossRate = 0.0;
  double DupRate = 0.0;
  sim::Time JitterMax = 0; ///< Uniform extra delay; >0 permits reordering.
  double CorruptRate = 0.0;   ///< Per-copy probability of in-flight bit flips.
  uint32_t CorruptMaxBits = 8; ///< Bits flipped per corruption: 1..this.
  double ReorderRate = 0.0;   ///< Per-copy probability of bounded extra delay.
  sim::Time ReorderMax = 0;   ///< Extra delay drawn uniformly from [0, this].
  uint64_t Seed = 1;
};

/// Message and byte counters, per node and network-wide. A thin value view
/// assembled from the registry-backed cells (see support/Metrics.h); at
/// quiescence DatagramsSent + DatagramsDuplicated ==
/// DatagramsDelivered + DatagramsDropped.
struct NetCounters {
  uint64_t DatagramsSent = 0;       ///< send() calls (copies not counted).
  uint64_t DatagramsDelivered = 0;
  uint64_t DatagramsDropped = 0;    ///< Loss, partition, crash, or no bind.
  uint64_t DatagramsDuplicated = 0; ///< Extra in-flight copies from DupRate.
  uint64_t DatagramsCorrupted = 0;  ///< Copies damaged in flight (bit flips).
  uint64_t BytesSent = 0;           ///< Includes per-datagram header bytes.
};

/// The abstract unreliable-datagram backend (docs/NETWORK.md). Owns node
/// state; endpoints are bound to callbacks that run in scheduler context
/// (they must not block — hand off to processes via wait queues instead).
///
/// The contract every backend provides: datagrams are delivered at most
/// once per in-flight copy, whole or not at all, to the exact bound
/// address they were sent to, with the sender's bound address attached —
/// and may otherwise be lost, duplicated, or reordered arbitrarily.
class Network {
public:
  virtual ~Network();
  Network() = default;
  Network(const Network &) = delete;
  Network &operator=(const Network &) = delete;

  /// The simulation this network delivers into (also its timer source).
  virtual sim::Simulation &simulation() = 0;

  /// Creates a new node, initially up. Backends may restrict which nodes
  /// are local (bindable) — see UdpNetwork.
  virtual NodeId addNode(std::string Name) = 0;

  /// Name given to addNode.
  virtual const std::string &nodeName(NodeId N) const = 0;

  /// Binds a fresh port on \p N to \p Handler and returns its address.
  virtual Address bind(NodeId N, std::function<void(Datagram)> Handler) = 0;

  /// Removes a binding; datagrams to it are counted as dropped.
  virtual void unbind(Address A) = 0;

  /// Sends \p Payload from \p From to \p To. Callable from process or
  /// scheduler context; never blocks (costs are modeled as resource
  /// occupancy or absorbed by per-peer send queues, not caller delay).
  virtual void send(Address From, Address To, wire::Bytes Payload) = 0;

  /// Takes a node down: all its bindings are removed, in-flight traffic to
  /// and from it is dropped, and crash observers fire.
  virtual void crash(NodeId N) = 0;

  /// Brings a crashed node back up (with no bindings). The node enters a
  /// new epoch and port numbering restarts from 1, so addresses bound
  /// before the crash are permanently dead even if their port numbers are
  /// reused by the new incarnation.
  virtual void restart(NodeId N) = 0;

  virtual bool isUp(NodeId N) const = 0;

  /// Current incarnation of \p N (0 until the first restart).
  virtual uint32_t nodeEpoch(NodeId N) const = 0;

  /// Registers a callback to run (in scheduler context) when \p N crashes.
  virtual void onCrash(NodeId N, std::function<void()> Cb) = 0;

  /// Network-wide and per-node counter snapshots (thin views of the
  /// registry cells; see simulation().metrics() for the registry itself).
  virtual NetCounters counters() const = 0;
  virtual NetCounters counters(NodeId N) const = 0;

protected:
  /// Registry-backed counter cells behind one NetCounters view; shared by
  /// the backends so both report under the same metric names.
  struct CounterCells {
    Counter *Sent = nullptr;
    Counter *Delivered = nullptr;
    Counter *Dropped = nullptr;
    Counter *Duplicated = nullptr;
    Counter *Corrupted = nullptr;
    Counter *Bytes = nullptr;
    NetCounters view() const {
      return {Sent->value(),       Delivered->value(), Dropped->value(),
              Duplicated->value(), Corrupted->value(), Bytes->value()};
    }
  };

  /// Binds the six cells against \p Reg under the standard net.* names.
  static void registerCells(MetricsRegistry &Reg, CounterCells &C,
                            MetricLabels Labels);
};

/// The simulated backend: deterministic virtual-time delivery with the
/// paper's cost model and seeded fault injection.
class SimNetwork final : public Network {
public:
  SimNetwork(sim::Simulation &S, NetConfig C = NetConfig());

  sim::Simulation &simulation() override { return Sim; }
  const NetConfig &config() const { return Cfg; }

  NodeId addNode(std::string Name) override;
  const std::string &nodeName(NodeId N) const override;
  Address bind(NodeId N, std::function<void(Datagram)> Handler) override;
  void unbind(Address A) override;

  /// Sends \p Payload from \p From to \p To, applying the cost model and
  /// fault processes.
  void send(Address From, Address To, wire::Bytes Payload) override;

  /// --- Faults ---

  void crash(NodeId N) override;
  void restart(NodeId N) override;
  bool isUp(NodeId N) const override;
  uint32_t nodeEpoch(NodeId N) const override;

  /// Cuts or heals the (symmetric) link between two nodes.
  void setPartitioned(NodeId A, NodeId B, bool Cut);

  bool isPartitioned(NodeId A, NodeId B) const;

  /// Overrides the global loss rate on the (symmetric) link A<->B.
  void setLinkLoss(NodeId A, NodeId B, double Rate);

  void onCrash(NodeId N, std::function<void()> Cb) override;

  /// Adjusts the byte-damage rate at runtime (chaos bursts). A corrupted
  /// copy has 1..CorruptMaxBits of its payload bits flipped in flight; it
  /// still *arrives* (and counts as delivered) — detection is the
  /// transport's job via frame checksums (wire/Frame.h).
  void setCorruptRate(double Rate) { Cfg.CorruptRate = Rate; }

  /// Adjusts the duplication rate at runtime.
  void setDupRate(double Rate) { Cfg.DupRate = Rate; }

  /// Adjusts reordering: each copy independently suffers an extra delay in
  /// [0, Max] with probability \p Rate, letting later sends overtake it.
  void setReorder(double Rate, sim::Time Max) {
    Cfg.ReorderRate = Rate;
    Cfg.ReorderMax = Max;
  }

  /// --- Introspection ---

  NetCounters counters() const override;
  NetCounters counters(NodeId N) const override;

  /// Virtual time at which a node's transmit path becomes free; the
  /// transmit backlog is max(0, txFreeAt - now).
  sim::Time txFreeAt(NodeId N) const;

  /// Datagrams dropped because they addressed a previous node epoch
  /// (stale traffic from before a crash/restart). Also counted in
  /// DatagramsDropped.
  uint64_t staleEpochDrops() const;

private:
  struct Node {
    std::string Name;
    bool Up = true;
    sim::Time TxFreeAt = 0;
    sim::Time RxFreeAt = 0;
    uint32_t Epoch = 0;
    uint32_t NextPort = 1;
    CounterCells Counters;
    std::vector<std::function<void()>> CrashObservers;
  };

  /// Per-directed-link observability, created lazily while enabled.
  struct LinkStats {
    Counter *Drops = nullptr;
    Histogram *LatencyUs = nullptr;
  };

  Node &node(NodeId N);
  const Node &node(NodeId N) const;
  double lossBetween(NodeId A, NodeId B) const;
  LinkStats &linkStats(NodeId From, NodeId To);
  void countDrop(NodeId From, NodeId To);
  void arrive(Datagram D, sim::Time SentAt);

  sim::Simulation &Sim;
  MetricsRegistry &Reg;
  NetConfig Cfg;
  Rng Rand;
  std::vector<Node> Nodes;
  std::map<Address, std::function<void(Datagram)>> Binds;
  std::set<std::pair<NodeId, NodeId>> Partitions;
  std::map<std::pair<NodeId, NodeId>, double> LinkLoss;
  std::map<std::pair<NodeId, NodeId>, LinkStats> Links;
  CounterCells Totals;
  Counter *StaleDrops = nullptr;
};

} // namespace promises::net

namespace promises::wire {
/// Addresses travel in messages (ports may be "sent as arguments and
/// results of remote calls", paper Section 2).
template <> struct Codec<net::Address> {
  static void encode(Encoder &E, const net::Address &A) {
    E.writeU32(A.Node);
    E.writeU32(A.Port);
    E.writeU32(A.Epoch);
  }
  static net::Address decode(Decoder &D) {
    net::Address A;
    A.Node = D.readU32();
    A.Port = D.readU32();
    A.Epoch = D.readU32();
    return A;
  }
};
} // namespace promises::wire

#endif // PROMISES_NET_NETWORK_H
