//===- promises/runtime/RemoteHandler.h - Typed stream calls ---*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed client side of handler calls — the library rendering of the
/// paper's call forms:
///
///   m := g.read_mail(u)        ~>  auto O = H.call(U);        (RPC)
///   x: pt := stream h(3)       ~>  auto P = H.streamCall(3);  (promise)
///   stream h(3)  [statement]   ~>  H.send(3);                 (send)
///   flush h / synch h          ~>  H.flush(); H.synch();
///
/// Each RemoteHandler is bound to an agent; all calls through handlers of
/// one (agent, entity, group) triple share one stream and are therefore
/// sequenced. Promises become ready in call order.
///
/// Where Argus raises an exception *instead of creating a promise* (encode
/// failure, already-broken stream), streamCall returns a promise that is
/// born ready with that exception — claiming it raises the same exception
/// at the same program point, so the paper's program structure carries
/// over unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_RUNTIME_REMOTEHANDLER_H
#define PROMISES_RUNTIME_REMOTEHANDLER_H

#include "promises/core/Promise.h"
#include "promises/runtime/Guardian.h"

#include <cassert>
#include <optional>

namespace promises::runtime {

/// Result of synch: AllNormal, or why not (paper: synch "signals
/// exception_reply" when some call in the window raised; breaks surface as
/// the break exception).
struct SynchResult {
  enum class Kind : uint8_t { AllNormal, ExceptionReply, Unavailable,
                              Failure };
  Kind K = Kind::AllNormal;
  std::string Reason;

  bool ok() const { return K == Kind::AllNormal; }

  /// Converts to an untyped exception for coenter arms (nullopt when ok).
  std::optional<core::Exn> toExn() const {
    switch (K) {
    case Kind::AllNormal:
      return std::nullopt;
    case Kind::ExceptionReply:
      return core::Exn{"exception_reply", Reason};
    case Kind::Unavailable:
      return core::Exn{"unavailable", Reason};
    case Kind::Failure:
      return core::Exn{"failure", Reason};
    }
    return std::nullopt;
  }
};

/// A handler reference bound to a local guardian and an agent — the thing
/// calls are made through.
template <typename Sig, core::ExceptionType... Exs> class RemoteHandler {
public:
  using Traits = SigTraits<Sig>;
  using Ret = typename Traits::RetType;
  using ArgsTuple = typename Traits::ArgsTuple;
  using OutcomeT = core::Outcome<Ret, Exs...>;
  using PromiseT = core::Promise<Ret, Exs...>;

  RemoteHandler() = default;
  RemoteHandler(Guardian &Local, stream::AgentId Agent,
                HandlerRef<Sig, Exs...> Ref)
      : Local(&Local), Agent(Agent), Ref(Ref) {}

  bool valid() const { return Local != nullptr && Ref.valid(); }
  const HandlerRef<Sig, Exs...> &ref() const { return Ref; }
  stream::AgentId agent() const { return Agent; }

  /// Stream call: returns immediately with a (usually blocked) promise;
  /// the caller runs in parallel with the call (paper, Section 3).
  template <typename... As> PromiseT streamCall(As &&...Args) {
    return issue(/*NoReply=*/false, /*IsRpc=*/false,
                 std::forward<As>(Args)...);
  }

  /// RPC: sends immediately and blocks the calling process for the
  /// outcome. Must run inside a simulated process.
  template <typename... As> OutcomeT call(As &&...Args) {
    assert(sim::Simulation::inProcess() &&
           "RPC must be made from a simulated process");
    PromiseT P = issue(/*NoReply=*/false, /*IsRpc=*/true,
                       std::forward<As>(Args)...);
    return P.claim();
  }

  /// Send: a stream call whose normal result is discarded and never
  /// transmitted; exceptions are discoverable via synch. Returns the
  /// immediate issue error if the call could not even be made.
  template <typename... As> std::optional<core::Exn> send(As &&...Args) {
    PromiseT P = issue(/*NoReply=*/true, /*IsRpc=*/false,
                       std::forward<As>(Args)...);
    if (P.ready()) {
      // Born-ready = immediate local failure. Claim exactly once and
      // convert the claimed outcome.
      const OutcomeT &O = P.claim();
      if (!O.isNormal())
        return O.toExn();
    }
    return std::nullopt;
  }

  /// Expedites buffered calls and replies on this handler's stream.
  void flush() {
    assert(valid());
    Local->transport().flush(Agent, Ref.Entity, Ref.Group);
  }

  /// Flush + wait until all earlier calls on the stream completed; report
  /// whether any terminated exceptionally since the last synch point.
  SynchResult synch() {
    assert(valid());
    stream::SynchOutcome SO =
        Local->transport().synch(Agent, Ref.Entity, Ref.Group);
    SynchResult R;
    switch (SO.S) {
    case stream::SynchOutcome::Status::AllNormal:
      R.K = SynchResult::Kind::AllNormal;
      break;
    case stream::SynchOutcome::Status::ExceptionReply:
      R.K = SynchResult::Kind::ExceptionReply;
      break;
    case stream::SynchOutcome::Status::Unavailable:
      R.K = SynchResult::Kind::Unavailable;
      break;
    case stream::SynchOutcome::Status::Failure:
      R.K = SynchResult::Kind::Failure;
      break;
    }
    R.Reason = SO.Reason;
    return R;
  }

  /// Calls issued on this stream whose outcome is not yet known.
  stream::Seq outstanding() const {
    assert(valid());
    return Local->transport().outstandingCalls(Agent, Ref.Entity, Ref.Group);
  }

private:
  template <typename... As>
  PromiseT issue(bool NoReply, bool IsRpc, As &&...Args) {
    assert(valid() && "call through an unbound RemoteHandler");
    // A wounded process "cannot make any remote calls" (paper, 4.2).
    if (sim::Process *P = sim::Simulation::current(); P && P->wounded())
      return PromiseT::makeReady(
          OutcomeT(core::Unavailable{"calling process is wounded"}));
    // Encoding is synchronous caller work (paper, Section 3, step 1).
    if (sim::Simulation::inProcess() && Local->config().EncodeCpu != 0)
      Local->simulation().sleep(Local->config().EncodeCpu);
    std::string Why;
    auto ArgsB =
        wire::encodeToBytes(ArgsTuple(std::forward<As>(Args)...), &Why);
    if (!ArgsB) // Encode failure: fail without making the call (step 1).
      return PromiseT::makeReady(
          OutcomeT(core::Failure{"could not encode: " + Why}));
    auto [P, R] = core::makePromise<Ret, Exs...>(Local->simulation());
    auto Issue = Local->transport().issueCall(
        Agent, Ref.Entity, Ref.Group, Ref.Port, std::move(*ArgsB), NoReply,
        IsRpc, [R = R](const stream::ReplyOutcome &RO) {
          R.fulfill(detail::wireToOutcome<Ret, Exs...>(RO));
        });
    if (!Issue.Issued) {
      if (Issue.IsFailure)
        return PromiseT::makeReady(OutcomeT(core::Failure{Issue.Reason}));
      return PromiseT::makeReady(OutcomeT(core::Unavailable{Issue.Reason}));
    }
    return P;
  }

  Guardian *Local = nullptr;
  stream::AgentId Agent = 0;
  HandlerRef<Sig, Exs...> Ref;
};

/// Binds \p Ref to \p Local and \p Agent.
template <typename Sig, core::ExceptionType... Exs>
RemoteHandler<Sig, Exs...> bindHandler(Guardian &Local, stream::AgentId Agent,
                                       HandlerRef<Sig, Exs...> Ref) {
  return RemoteHandler<Sig, Exs...>(Local, Agent, Ref);
}

} // namespace promises::runtime

#endif // PROMISES_RUNTIME_REMOTEHANDLER_H
