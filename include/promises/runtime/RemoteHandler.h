//===- promises/runtime/RemoteHandler.h - Typed stream calls ---*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed client side of handler calls — the library rendering of the
/// paper's call forms:
///
///   m := g.read_mail(u)        ~>  auto O = H.call(U);        (RPC)
///   x: pt := stream h(3)       ~>  auto P = H.streamCall(3);  (promise)
///   stream h(3)  [statement]   ~>  H.send(3);                 (send)
///   flush h / synch h          ~>  H.flush(); H.synch();
///
/// Each RemoteHandler is bound to an agent; all calls through handlers of
/// one (agent, entity, group) triple share one stream and are therefore
/// sequenced. Promises become ready in call order.
///
/// Where Argus raises an exception *instead of creating a promise* (encode
/// failure, already-broken stream), streamCall returns a promise that is
/// born ready with that exception — claiming it raises the same exception
/// at the same program point, so the paper's program structure carries
/// over unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_RUNTIME_REMOTEHANDLER_H
#define PROMISES_RUNTIME_REMOTEHANDLER_H

#include "promises/core/Exceptions.h"
#include "promises/core/Promise.h"
#include "promises/runtime/Guardian.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <optional>
#include <utility>

namespace promises::runtime {

/// Result of synch: AllNormal, or why not (paper: synch "signals
/// exception_reply" when some call in the window raised; breaks surface as
/// the break exception).
struct SynchResult {
  enum class Kind : uint8_t { AllNormal, ExceptionReply, Unavailable,
                              Failure };
  Kind K = Kind::AllNormal;
  std::string Reason;

  bool ok() const { return K == Kind::AllNormal; }

  /// Converts to an untyped exception for coenter arms (nullopt when ok).
  std::optional<core::Exn> toExn() const {
    switch (K) {
    case Kind::AllNormal:
      return std::nullopt;
    case Kind::ExceptionReply:
      return core::Exn{"exception_reply", Reason};
    case Kind::Unavailable:
      return core::Exn{"unavailable", Reason};
    case Kind::Failure:
      return core::Exn{"failure", Reason};
    }
    return std::nullopt;
  }
};

/// Client retry policy for calls through one RemoteHandler. Retries only
/// re-issue calls that terminated with `unavailable` (transient,
/// conserving outcomes); exception replies and failures are final. A call
/// the user cancelled is never retried.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries.
  int MaxAttempts = 1;
  /// Backoff before attempt 2, doubling per attempt (virtual time).
  sim::Time Backoff = sim::msec(1);
  /// Backoff ceiling.
  sim::Time BackoffMax = sim::msec(64);
  /// Per-endpoint retry token bucket size (shared across all handlers of
  /// the calling guardian to that endpoint). <= 0 disables budgeting.
  double Budget = 10.0;
  /// Tokens credited back per successful call, capped at Budget.
  double BudgetCredit = 0.5;
  /// When true (the default), only calls on a handler that was
  /// declareIdempotent()-ed are retried: an `unavailable` outcome does not
  /// say whether the call executed, so re-issuing a non-idempotent call
  /// risks duplicate effects.
  bool IdempotentOnly = true;
};

/// Identifies one issued call for cancellation. Obtained from
/// streamCallCancellable; invalid (S == 0) when the call failed locally
/// before reaching the stream.
struct CallHandle {
  stream::Seq S = 0;
  stream::Incarnation Inc = 0;
  bool valid() const { return S != 0; }
};

/// A handler reference bound to a local guardian and an agent — the thing
/// calls are made through.
template <typename Sig, core::ExceptionType... Exs> class RemoteHandler {
public:
  using Traits = SigTraits<Sig>;
  using Ret = typename Traits::RetType;
  using ArgsTuple = typename Traits::ArgsTuple;
  using OutcomeT = core::Outcome<Ret, Exs...>;
  using PromiseT = core::Promise<Ret, Exs...>;

  RemoteHandler() = default;
  RemoteHandler(Guardian &Local, stream::AgentId Agent,
                HandlerRef<Sig, Exs...> Ref)
      : Local(&Local), Agent(Agent), Ref(Ref) {}

  bool valid() const { return Local != nullptr && Ref.valid(); }
  const HandlerRef<Sig, Exs...> &ref() const { return Ref; }
  stream::AgentId agent() const { return Agent; }

  /// Attaches a retry policy: calls through this handler that terminate
  /// with `unavailable` are transparently re-issued (subject to the
  /// policy's idempotence rule, budget, and the call's deadline).
  RemoteHandler &withRetryPolicy(RetryPolicy P) {
    Policy = P;
    return *this;
  }
  const RetryPolicy &retryPolicy() const { return Policy; }

  /// Attaches a per-call deadline (relative virtual time): every call
  /// issued through this handler carries now+D on the wire, and the
  /// receiver drops it with unavailable("deadline expired") if execution
  /// has not started by then. 0 disables.
  RemoteHandler &withDeadline(sim::Time D) {
    Deadline = D;
    return *this;
  }
  sim::Time deadline() const { return Deadline; }

  /// Declares the remote handler idempotent: executing it twice is
  /// equivalent to executing it once, so a retry policy may re-issue it
  /// after `unavailable` even though the original may have executed.
  RemoteHandler &declareIdempotent(bool On = true) {
    Idempotent = On;
    return *this;
  }
  bool idempotent() const { return Idempotent; }

  /// Stream call: returns immediately with a (usually blocked) promise;
  /// the caller runs in parallel with the call (paper, Section 3).
  template <typename... As> PromiseT streamCall(As &&...Args) {
    return issue(/*NoReply=*/false, /*IsRpc=*/false, nullptr,
                 std::forward<As>(Args)...);
  }

  /// Stream call that can be cancelled: also returns a CallHandle to pass
  /// to cancel(). Cancellable calls are never auto-retried (a retry would
  /// invalidate the handle).
  template <typename... As>
  std::pair<PromiseT, CallHandle> streamCallCancellable(As &&...Args) {
    CallHandle H;
    PromiseT P = issue(/*NoReply=*/false, /*IsRpc=*/false, &H,
                       std::forward<As>(Args)...);
    return {std::move(P), H};
  }

  /// Best-effort cancellation of an in-flight call. If the call has not
  /// completed at the receiver, its execution is destroyed (or never
  /// started) and the promise is fulfilled with unavailable("cancelled"),
  /// in stream order. Returns false when the transport no longer knows
  /// the call (already fulfilled, stream restarted, ...) — the promise
  /// then resolves with the call's real outcome.
  bool cancel(const CallHandle &H) {
    assert(valid());
    if (!H.valid())
      return false;
    return Local->transport().cancelCall(Agent, Ref.Entity, Ref.Group, H.S,
                                         H.Inc);
  }

  /// RPC: sends immediately and blocks the calling process for the
  /// outcome. Must run inside a simulated process.
  template <typename... As> OutcomeT call(As &&...Args) {
    assert(sim::Simulation::inProcess() &&
           "RPC must be made from a simulated process");
    PromiseT P = issue(/*NoReply=*/false, /*IsRpc=*/true, nullptr,
                       std::forward<As>(Args)...);
    return P.claim();
  }

  /// Send: a stream call whose normal result is discarded and never
  /// transmitted; exceptions are discoverable via synch. Returns the
  /// immediate issue error if the call could not even be made.
  template <typename... As> std::optional<core::Exn> send(As &&...Args) {
    PromiseT P = issue(/*NoReply=*/true, /*IsRpc=*/false, nullptr,
                       std::forward<As>(Args)...);
    if (P.ready()) {
      // Born-ready = immediate local failure. Claim exactly once and
      // convert the claimed outcome.
      const OutcomeT &O = P.claim();
      if (!O.isNormal())
        return O.toExn();
    }
    return std::nullopt;
  }

  /// Expedites buffered calls and replies on this handler's stream.
  void flush() {
    assert(valid());
    Local->transport().flush(Agent, Ref.Entity, Ref.Group);
  }

  /// Flush + wait until all earlier calls on the stream completed; report
  /// whether any terminated exceptionally since the last synch point.
  SynchResult synch() {
    assert(valid());
    stream::SynchOutcome SO =
        Local->transport().synch(Agent, Ref.Entity, Ref.Group);
    SynchResult R;
    switch (SO.S) {
    case stream::SynchOutcome::Status::AllNormal:
      R.K = SynchResult::Kind::AllNormal;
      break;
    case stream::SynchOutcome::Status::ExceptionReply:
      R.K = SynchResult::Kind::ExceptionReply;
      break;
    case stream::SynchOutcome::Status::Unavailable:
      R.K = SynchResult::Kind::Unavailable;
      break;
    case stream::SynchOutcome::Status::Failure:
      R.K = SynchResult::Kind::Failure;
      break;
    }
    R.Reason = SO.Reason;
    return R;
  }

  /// Calls issued on this stream whose outcome is not yet known.
  stream::Seq outstanding() const {
    assert(valid());
    return Local->transport().outstandingCalls(Agent, Ref.Entity, Ref.Group);
  }

private:
  /// State threaded through the attempts of one retryable call. Held by
  /// shared_ptr: the issue callback and any scheduled re-attempt keep it
  /// alive; the promise side only holds the Resolver.
  struct RetryCtx {
    Guardian *G;
    stream::AgentId Agent;
    HandlerRef<Sig, Exs...> Ref;
    wire::Bytes Args;
    bool NoReply, IsRpc;
    sim::Time DeadlineAt;
    RetryPolicy Policy;
    int Attempt = 1;
    core::Resolver<Ret, Exs...> R;
  };

  /// Issues attempt Ctx->Attempt. On unavailable — the only conserving,
  /// possibly-transient outcome — schedules the next attempt on the
  /// virtual clock with doubled backoff, as long as attempts, deadline,
  /// and the per-endpoint retry budget allow. User-cancelled calls
  /// (unavailable("cancelled")) are final: retrying would resurrect a
  /// call the program explicitly tore down.
  static void issueAttempt(std::shared_ptr<RetryCtx> C) {
    auto Issue = C->G->transport().issueCall(
        C->Agent, C->Ref.Entity, C->Ref.Group, C->Ref.Port,
        wire::Bytes(C->Args), C->NoReply, C->IsRpc,
        [C](const stream::ReplyOutcome &RO) {
          if (RO.K == stream::ReplyOutcome::Kind::Unavailable &&
              RO.Reason != core::reasons::Cancelled &&
              C->Attempt < C->Policy.MaxAttempts &&
              (C->DeadlineAt == 0 ||
               C->G->simulation().now() < C->DeadlineAt) &&
              C->G->takeRetryToken(C->Ref.Entity, C->Policy.Budget)) {
            sim::Time Delay = C->Policy.Backoff;
            for (int I = 1; I < C->Attempt; ++I)
              Delay = std::min(C->Policy.BackoffMax, Delay * 2);
            ++C->Attempt;
            C->G->noteRetry(C->Agent, C->Attempt);
            // Scheduled (not process) context: the re-issue never blocks
            // on a full in-flight window; issueCall queues it.
            C->G->simulation().schedule(Delay, [C] { issueAttempt(C); });
            return;
          }
          if (RO.K == stream::ReplyOutcome::Kind::Normal)
            C->G->creditRetryToken(C->Ref.Entity, C->Policy.Budget,
                                   C->Policy.BudgetCredit);
          C->R.fulfill(detail::wireToOutcome<Ret, Exs...>(RO));
        },
        C->DeadlineAt);
    if (!Issue.Issued) {
      // Local refusal (shut down, circuit open, ...): final. Retrying
      // here would hammer an endpoint the breaker just isolated.
      // A re-attempt that lands here paid a retry token for an attempt
      // that never touched the network (the breaker opened between
      // scheduling and firing); refund it, or sustained fast-fails drain
      // the budget and block retries against healthy endpoints later.
      if (C->Attempt > 1)
        C->G->creditRetryToken(C->Ref.Entity, C->Policy.Budget, 1.0);
      if (Issue.IsFailure)
        C->R.fulfill(OutcomeT(core::Failure{Issue.Reason}));
      else
        C->R.fulfill(OutcomeT(core::Unavailable{Issue.Reason}));
    }
  }

  template <typename... As>
  PromiseT issue(bool NoReply, bool IsRpc, CallHandle *HandleOut,
                 As &&...Args) {
    assert(valid() && "call through an unbound RemoteHandler");
    // A wounded process "cannot make any remote calls" (paper, 4.2).
    if (sim::Process *P = sim::Simulation::current(); P && P->wounded())
      return PromiseT::makeReady(
          OutcomeT(core::Unavailable{core::reasons::WoundedCaller}));
    // Encoding is synchronous caller work (paper, Section 3, step 1).
    if (sim::Simulation::inProcess() && Local->config().EncodeCpu != 0)
      Local->simulation().sleep(Local->config().EncodeCpu);
    std::string Why;
    auto ArgsB =
        wire::encodeToBytes(ArgsTuple(std::forward<As>(Args)...), &Why);
    if (!ArgsB) // Encode failure: fail without making the call (step 1).
      return PromiseT::makeReady(
          OutcomeT(core::Failure{"could not encode: " + Why}));
    sim::Time DeadlineAt =
        Deadline != 0 ? Local->simulation().now() + Deadline : 0;
    bool Retryable = Policy.MaxAttempts > 1 && !NoReply &&
                     HandleOut == nullptr &&
                     (Idempotent || !Policy.IdempotentOnly);
    if (!Retryable) {
      auto [P, R] = core::makePromise<Ret, Exs...>(Local->simulation());
      auto Issue = Local->transport().issueCall(
          Agent, Ref.Entity, Ref.Group, Ref.Port, std::move(*ArgsB), NoReply,
          IsRpc,
          [R = R](const stream::ReplyOutcome &RO) {
            R.fulfill(detail::wireToOutcome<Ret, Exs...>(RO));
          },
          DeadlineAt);
      if (!Issue.Issued) {
        if (Issue.IsFailure)
          return PromiseT::makeReady(OutcomeT(core::Failure{Issue.Reason}));
        return PromiseT::makeReady(OutcomeT(core::Unavailable{Issue.Reason}));
      }
      if (HandleOut)
        *HandleOut = CallHandle{Issue.S, Issue.Inc};
      return P;
    }
    auto [P, R] = core::makePromise<Ret, Exs...>(Local->simulation());
    auto C = std::make_shared<RetryCtx>(
        RetryCtx{Local, Agent, Ref, std::move(*ArgsB), NoReply, IsRpc,
                 DeadlineAt, Policy, 1, R});
    issueAttempt(std::move(C));
    return P;
  }

  Guardian *Local = nullptr;
  stream::AgentId Agent = 0;
  HandlerRef<Sig, Exs...> Ref;
  RetryPolicy Policy;
  sim::Time Deadline = 0;
  bool Idempotent = false;
};

/// Binds \p Ref to \p Local and \p Agent.
template <typename Sig, core::ExceptionType... Exs>
RemoteHandler<Sig, Exs...> bindHandler(Guardian &Local, stream::AgentId Agent,
                                       HandlerRef<Sig, Exs...> Ref) {
  return RemoteHandler<Sig, Exs...>(Local, Agent, Ref);
}

} // namespace promises::runtime

#endif // PROMISES_RUNTIME_REMOTEHANDLER_H
