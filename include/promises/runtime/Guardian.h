//===- promises/runtime/Guardian.h - Active entities -----------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guardians — the Argus active entities (paper Section 2.1). A guardian
/// resides entirely at a single node, provides *handlers* (typed ports,
/// grouped into port groups), and runs internal processes.
///
/// The runtime enforces the stream execution rule: "When a handler call
/// arrives at a guardian, the Argus system will delay its execution until
/// all earlier calls on its stream have completed", so calls on one stream
/// appear to execute in call order, while calls on different streams run
/// concurrently (the mailer example). Each call runs in its own process
/// with its own agent.
///
/// When the guardian's node crashes, its transport shuts down and every
/// process it spawned is killed.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_RUNTIME_GUARDIAN_H
#define PROMISES_RUNTIME_GUARDIAN_H

#include "promises/runtime/Handler.h"

#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace promises::runtime {

/// Configuration for one guardian.
struct GuardianConfig {
  stream::StreamConfig Stream;
  /// CPU time the *caller* pays to produce one call message (paper,
  /// Section 3, step 1: "The call message is produced by encoding the
  /// arguments" — encoding happens synchronously in the caller). This is
  /// what makes initiating many calls take time, and hence what stream
  /// composition overlaps (Section 4).
  sim::Time EncodeCpu = sim::usec(10);
  /// Admission control: when nonzero, an incoming call that would push the
  /// number of live handler-call processes (executing + gated) past this
  /// bound is shed immediately with unavailable("overloaded") instead of
  /// being spawned. 0 disables shedding.
  size_t MaxPendingCalls = 0;
  /// Per-stream admission quota: when nonzero, one stream (one agent's
  /// calls to one port group) may hold at most this many live call
  /// processes; further calls on that stream are shed even if the global
  /// MaxPendingCalls bound has headroom. This is the tenant-isolation
  /// knob: a storming client exhausts its own quota, not the guardian.
  /// 0 disables the per-stream bound. Composes with MaxPendingCalls.
  size_t MaxPendingPerStream = 0;
};

/// An active entity: handler table, port groups, processes, and the
/// call-stream endpoint, on one network node.
class Guardian {
public:
  /// The group that handlers join by default ("all ports of handlers
  /// created when a guardian is created belong to the same group").
  static constexpr stream::GroupId DefaultGroup = 1;

  Guardian(net::Network &Net, net::NodeId Node, std::string Name,
           GuardianConfig Cfg = GuardianConfig());
  ~Guardian();
  Guardian(const Guardian &) = delete;
  Guardian &operator=(const Guardian &) = delete;

  net::Network &network() { return Net; }

  const GuardianConfig &config() const { return Cfg; }
  sim::Simulation &simulation() { return Sim; }
  stream::StreamTransport &transport() { return *Transport; }
  net::Address address() const { return Transport->address(); }
  net::NodeId nodeId() const { return Node; }
  const std::string &name() const { return Name; }
  bool crashed() const { return Crashed; }

  /// Creates a fresh port group (entities "determine the grouping of
  /// their ports when they create them" — e.g. one group per window).
  stream::GroupId createGroup() { return NextGroup++; }

  /// The paper's explicit override ("We may provide some explicit
  /// overrides to allow more sophisticated programs that process calls on
  /// the same stream in parallel"): calls to ports in \p Group skip the
  /// per-stream execution gate and run concurrently. Replies still reach
  /// the caller in call order (the transport buffers out-of-order
  /// completions), but side effects may interleave — the handlers must
  /// tolerate that.
  void setParallelGroup(stream::GroupId Group, bool Parallel = true) {
    if (Parallel)
      ParallelGroups.insert(Group);
    else
      ParallelGroups.erase(Group);
  }

  bool isParallelGroup(stream::GroupId Group) const {
    return ParallelGroups.count(Group) != 0;
  }

  /// Priority admission: calls to an exempt port are admitted even when
  /// MaxPendingCalls/MaxPendingPerStream are at their bound. Meant for
  /// completion-side protocol ports (two-phase prepare/commit/abort):
  /// shedding those strands resources the guardian already admitted work
  /// for — staged transactions, locks — turning overload into leaks,
  /// while the work they finish is bounded by calls that *were* admitted.
  void setShedExempt(stream::PortId Port, bool On = true) {
    if (On)
      ShedExemptPorts.insert(Port);
    else
      ShedExemptPorts.erase(Port);
  }

  bool isShedExempt(stream::PortId Port) const {
    return ShedExemptPorts.count(Port) != 0;
  }

  /// Registers a handler on \p Group. \p Impl is invoked — inside a
  /// dedicated process, in call order per stream — with the decoded
  /// arguments, and returns the typed outcome. Returns the transmissible
  /// typed reference for clients.
  ///
  /// \code
  ///   auto RecordGrade =
  ///       G.addHandler<double(std::string, int32_t), NoSuchStudent>(
  ///           "record_grade", Guardian::DefaultGroup,
  ///           [&](std::string Stu, int32_t Gr)
  ///               -> Outcome<double, NoSuchStudent> { ... });
  /// \endcode
  template <typename Sig, core::ExceptionType... Exs, typename Fn>
  HandlerRef<Sig, Exs...> addHandler(std::string HandlerName,
                                     stream::GroupId Group, Fn Impl) {
    using Traits = SigTraits<Sig>;
    using Ret = typename Traits::RetType;
    using ArgsTuple = typename Traits::ArgsTuple;
    using OutcomeT = core::Outcome<Ret, Exs...>;
    stream::PortId Port = NextPort++;
    PortNames[Port] = HandlerName;
    Executors[Port] = [this, Impl = std::move(Impl)](
                          stream::IncomingCall &IC) mutable {
      std::string Why;
      auto Args = wire::decodeFromBytes<ArgsTuple>(IC.Args, &Why);
      if (!Args) {
        // A decode failure at the receiver fails the call *and* breaks
        // the stream (paper, Section 3).
        IC.Complete(stream::ReplyStatus::Failure, 0, {},
                    "could not decode: " + Why);
        Transport->breakReceiverStream(IC.StreamTag,
                                       "could not decode: " + Why);
        return;
      }
      OutcomeT O = std::apply(Impl, std::move(*Args));
      stream::ReplyStatus St = stream::ReplyStatus::Normal;
      uint32_t Tag = 0;
      wire::Bytes Payload;
      std::string Reason;
      if (!detail::outcomeToWire<Ret, Exs...>(O, St, Tag, Payload, Reason)) {
        IC.Complete(stream::ReplyStatus::Failure, 0, {},
                    "could not encode: " + Reason);
        Transport->breakReceiverStream(IC.StreamTag,
                                       "could not encode: " + Reason);
        return;
      }
      IC.Complete(St, Tag, std::move(Payload), std::move(Reason));
    };
    HandlerRef<Sig, Exs...> Ref;
    Ref.Entity = Transport->address();
    Ref.Group = Group;
    Ref.Port = Port;
    return Ref;
  }

  /// Shorthand: register on the default group.
  template <typename Sig, core::ExceptionType... Exs, typename Fn>
  HandlerRef<Sig, Exs...> addHandler(std::string HandlerName, Fn Impl) {
    return addHandler<Sig, Exs...>(std::move(HandlerName), DefaultGroup,
                                   std::move(Impl));
  }

  /// Removes a handler; later calls to its port terminate with
  /// failure("no such port") — a permanent error, like calling a
  /// destroyed window. Idempotent.
  template <typename Sig, core::ExceptionType... Exs>
  void removeHandler(const HandlerRef<Sig, Exs...> &Ref) {
    Executors.erase(Ref.Port);
    PortNames.erase(Ref.Port);
  }

  /// Allocates an agent for one client activity in this guardian.
  stream::AgentId newAgent() { return Transport->newAgent(); }

  /// Spawns a process owned by this guardian; it is killed if the
  /// guardian's node crashes.
  sim::ProcessHandle spawnProcess(std::string ProcName,
                                  std::function<void()> Body);

  /// Number of handler calls this guardian has started executing (a thin
  /// view of the registry's runtime.calls_executed cell).
  uint64_t callsExecuted() const { return CallsExec->value(); }

  /// Number of orphaned call executions destroyed after stream death.
  uint64_t orphansDestroyed() const { return OrphansDestroyed->value(); }

  /// Number of delivered calls dropped because their deadline passed
  /// before execution started.
  uint64_t deadlinesExpired() const { return DeadlinesExpired->value(); }

  /// Number of incoming calls shed by admission control.
  uint64_t callsShed() const { return CallsShed->value(); }

  /// Number of retry attempts issued by this guardian's clients.
  uint64_t retriesIssued() const { return Retries->value(); }

  /// Retry budget: takes one retry token for calls to \p Remote. The
  /// bucket starts at \p Budget and is debited 1.0 per retry; successful
  /// calls credit it back (creditRetryToken), capped at \p Budget. Returns
  /// false when the bucket is exhausted — the caller must not retry.
  /// Budget <= 0 disables the mechanism (always allowed).
  bool takeRetryToken(const net::Address &Remote, double Budget);

  /// Credits \p Credit back into \p Remote's retry bucket (capped at
  /// \p Budget). Called on successful outcomes so sustained success
  /// replenishes the budget.
  void creditRetryToken(const net::Address &Remote, double Budget,
                        double Credit);

  /// Records one retry attempt (counter + trace event). \p Attempt is the
  /// 1-based attempt number about to be issued.
  void noteRetry(stream::AgentId Agent, int Attempt);

  /// Handler-call processes currently alive (executing or gated). Must be
  /// 0 at quiescence: anything else means executor bookkeeping leaked on a
  /// kill path. Same quantity the runtime.live_call_processes gauge reads.
  /// Maintained as a counter (not a scan): the admission-control check
  /// reads it once per incoming call, and a per-call walk over every
  /// stream's domain turns a storm into quadratic work.
  size_t liveCallProcessCount() const {
    assert(LiveCallProcs == [this] {
      size_t N = 0;
      for (const auto &[Tag, D] : Domains)
        N += D.Running.size();
      return N;
    }() && "live-call counter out of sync with domain tables");
    return LiveCallProcs;
  }

  /// Delivered handler calls still gated behind an earlier call on their
  /// stream. Must be 0 at quiescence.
  size_t gatedCallCount() const {
    size_t N = 0;
    for (const auto &[Tag, D] : Domains)
      N += D.Waiting.size();
    return N;
  }

private:
  struct ExecDomain {
    stream::Seq DoneThrough = 0;
    /// Whether this stream's group runs calls in parallel (no execution
    /// gate). Parallel domains never advance DoneThrough, so recording
    /// shed/cancelled seqs in Aborted would accumulate forever — the
    /// settle-the-seq bookkeeping is skipped for them.
    bool Parallel = false;
    /// One wait queue per blocked call, so a completion wakes exactly its
    /// successor (not the whole herd).
    std::map<stream::Seq, std::unique_ptr<sim::WaitQueue>> Waiting;
    /// Live call executions, for orphan destruction when the stream dies.
    std::map<stream::Seq, sim::ProcessHandle> Running;
    /// Seqs whose processes were cancelled before completing: they can no
    /// longer advance DoneThrough themselves, so advanceDomain() skips
    /// over them to unblock successors.
    std::set<stream::Seq> Aborted;
  };

  void onStreamDead(uint64_t Tag);

  void onIncomingCall(stream::IncomingCall IC);
  void runCall(stream::IncomingCall &IC);
  ExecDomain &domain(uint64_t Tag);
  /// Advances DoneThrough over contiguously aborted seqs and wakes the
  /// next gated call, if any.
  void advanceDomain(ExecDomain &D);
  /// Transport cancel hook: kills the call process for (Tag, Sq) if it is
  /// still running, and unblocks its successors.
  void cancelCall(uint64_t Tag, stream::Seq Sq);
  void onNodeCrash();

  net::Network &Net;
  /// Cached from Net at construction (Network::simulation() is virtual).
  sim::Simulation &Sim;
  net::NodeId Node;
  std::string Name;
  GuardianConfig Cfg;
  MetricsRegistry &Reg;
  bool Crashed = false;
  stream::GroupId NextGroup = DefaultGroup + 1;
  stream::PortId NextPort = 1;
  Counter *CallsExec = nullptr;
  Counter *OrphansDestroyed = nullptr;
  Counter *DeadlinesExpired = nullptr;
  Counter *CallsShed = nullptr;
  Counter *Retries = nullptr;
  std::unique_ptr<stream::StreamTransport> Transport;
  std::map<stream::PortId, std::function<void(stream::IncomingCall &)>>
      Executors;
  std::map<stream::PortId, std::string> PortNames;
  std::map<uint64_t, ExecDomain> Domains;
  /// Sum of Running.size() over all domains, kept in lockstep with every
  /// insert/erase so admission control is O(1) per call.
  size_t LiveCallProcs = 0;
  std::set<stream::GroupId> ParallelGroups;
  std::set<stream::PortId> ShedExemptPorts;
  /// Per-remote retry token buckets (see takeRetryToken).
  std::map<net::Address, double> RetryTokens;
  /// Registers \p P in Procs (for kill-on-crash) and amortizes the table:
  /// once it doubles past the last sweep, finished handles are dropped so
  /// long-lived guardians stay O(live), not O(ever spawned).
  void trackProcess(sim::ProcessHandle P);
  /// Every process this guardian has spawned and not yet swept; the
  /// crash path kills them all. Finished entries are reclaimed by
  /// trackProcess's amortized sweep.
  std::vector<sim::ProcessHandle> Procs;
  size_t NextProcsSweep = 64;
};

} // namespace promises::runtime

#endif // PROMISES_RUNTIME_GUARDIAN_H
