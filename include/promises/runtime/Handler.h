//===- promises/runtime/Handler.h - Typed handler descriptors --*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly typed handler (port) descriptors and the conversions between
/// typed Outcomes and the wire-level reply representation.
///
/// A port is strongly typed (paper, Section 2):
///
///   port (int) returns (real) signals (e1(char), e2)
///     ~> HandlerRef<double(int32_t), E1, E2>
///
/// HandlerRefs are transmissible values — "Ports may be sent as arguments
/// and results of remote calls" — which is how the window-system example
/// hands out per-window ports.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_RUNTIME_HANDLER_H
#define PROMISES_RUNTIME_HANDLER_H

#include "promises/core/Outcome.h"
#include "promises/net/Network.h"
#include "promises/stream/StreamTransport.h"

#include <cstdint>
#include <tuple>
#include <type_traits>

namespace promises::runtime {

/// Decomposes a handler signature type `Ret(Args...)`.
template <typename Sig> struct SigTraits;
template <typename Ret, typename... Args> struct SigTraits<Ret(Args...)> {
  using RetType = Ret;
  using ArgsTuple = std::tuple<std::decay_t<Args>...>;
};

/// A typed, transmissible reference to a handler port: which entity, which
/// port group (= which stream calls to it join), and which port.
template <typename Sig, core::ExceptionType... Exs> struct HandlerRef {
  using Signature = Sig;

  net::Address Entity;
  stream::GroupId Group = 0;
  stream::PortId Port = 0;

  /// False for a default-constructed (null) reference.
  bool valid() const { return Port != 0; }

  friend bool operator==(const HandlerRef &, const HandlerRef &) = default;
};

namespace detail {

/// Index of T within Ts... (sizeof...(Ts) when absent).
template <typename T, typename... Ts> constexpr uint32_t indexOf() {
  uint32_t I = 0;
  ((std::same_as<T, Ts> ? true : (++I, false)) || ...);
  return I;
}

/// Encodes a handler's typed outcome into wire reply fields. Returns false
/// when a user codec failed (the caller then reports `failure` and breaks
/// the stream, per the paper's receiver-side encode-failure rule).
template <typename Ret, core::ExceptionType... Exs>
bool outcomeToWire(const core::Outcome<Ret, Exs...> &O,
                   stream::ReplyStatus &St, uint32_t &Tag,
                   wire::Bytes &Payload, std::string &Reason) {
  bool Ok = true;
  O.visit(core::Visitor{
      [&](const Ret &V) {
        St = stream::ReplyStatus::Normal;
        std::string Why;
        auto B = wire::encodeToBytes(V, &Why);
        if (!B) {
          Ok = false;
          Reason = Why;
          return;
        }
        Payload = std::move(*B);
      },
      [&](const core::Unavailable &U) {
        // Handlers have no business raising the built-ins themselves; the
        // closest faithful mapping is a failure reply.
        St = stream::ReplyStatus::Failure;
        Reason = "handler raised unavailable: " + U.Reason;
      },
      [&](const core::Failure &F) {
        St = stream::ReplyStatus::Failure;
        Reason = F.Reason;
      },
      [&](const auto &Ex) {
        using E = std::decay_t<decltype(Ex)>;
        St = stream::ReplyStatus::Exception;
        Tag = indexOf<E, Exs...>();
        std::string Why;
        auto B = wire::encodeToBytes(Ex, &Why);
        if (!B) {
          Ok = false;
          Reason = Why;
          return;
        }
        Payload = std::move(*B);
      },
  });
  return Ok;
}

/// Decodes a declared exception selected by \p Tag.
template <typename OutcomeT, core::ExceptionType... Exs>
OutcomeT decodeExceptionOutcome(uint32_t Tag, const wire::Bytes &Payload) {
  OutcomeT Result{core::Failure{"unknown exception tag"}};
  uint32_t I = 0;
  bool Found = false;
  (
      [&] {
        if (!Found && I == Tag) {
          Found = true;
          std::string Why;
          auto Dec = wire::decodeFromBytes<Exs>(Payload, &Why);
          if (Dec)
            Result = OutcomeT(std::move(*Dec));
          else
            Result = OutcomeT(core::Failure{"could not decode: " + Why});
        }
        ++I;
      }(),
      ...);
  return Result;
}

/// Converts a wire-level reply into the caller's typed outcome (paper,
/// Section 3, step 3: the value is the returned result "unless decoding
/// failed, in which case the value will be failure('could not decode')").
template <typename Ret, core::ExceptionType... Exs>
core::Outcome<Ret, Exs...> wireToOutcome(const stream::ReplyOutcome &RO) {
  using OutcomeT = core::Outcome<Ret, Exs...>;
  switch (RO.K) {
  case stream::ReplyOutcome::Kind::Normal: {
    std::string Why;
    auto V = wire::decodeFromBytes<Ret>(RO.Payload, &Why);
    if (!V)
      return OutcomeT(core::Failure{"could not decode: " + Why});
    return OutcomeT(std::move(*V));
  }
  case stream::ReplyOutcome::Kind::Exception:
    return decodeExceptionOutcome<OutcomeT, Exs...>(RO.ExTag, RO.Payload);
  case stream::ReplyOutcome::Kind::Unavailable:
    return OutcomeT(core::Unavailable{RO.Reason});
  case stream::ReplyOutcome::Kind::Failure:
    return OutcomeT(core::Failure{RO.Reason});
  }
  return OutcomeT(core::Failure{"corrupt reply"});
}

} // namespace detail
} // namespace promises::runtime

namespace promises::wire {
template <typename Sig, promises::core::ExceptionType... Exs>
struct Codec<runtime::HandlerRef<Sig, Exs...>> {
  static void encode(Encoder &E, const runtime::HandlerRef<Sig, Exs...> &V) {
    Codec<net::Address>::encode(E, V.Entity);
    E.writeU32(V.Group);
    E.writeU32(V.Port);
  }
  static runtime::HandlerRef<Sig, Exs...> decode(Decoder &D) {
    runtime::HandlerRef<Sig, Exs...> V;
    V.Entity = Codec<net::Address>::decode(D);
    V.Group = D.readU32();
    V.Port = D.readU32();
    return V;
  }
};
} // namespace promises::wire

#endif // PROMISES_RUNTIME_HANDLER_H
