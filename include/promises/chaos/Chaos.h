//===- promises/chaos/Chaos.h - Deterministic fault injection --*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic chaos harness for the recovery paths the paper's
/// robustness story depends on (Sections 2-3): crashes and partitions must
/// surface as `unavailable`/`failure`, streams must reincarnate without
/// violating exactly-once ordered delivery, and orphaned executions must
/// be destroyed.
///
/// A seed-driven ChaosPlan injects node crashes/restarts, link partitions
/// and heals, loss bursts, and transport shutdowns at randomized virtual
/// times while a multi-client/multi-server workload runs; at quiescence a
/// battery of invariants is checked (counter conservation, exactly-once
/// per-stream execution order, no leaked timers or broken-stream map
/// entries, no live or gated call processes, every promise resolved).
/// Everything — fault times, workload, trace-event stream — is a pure
/// function of the seed, so a failing seed replays byte-identically and
/// becomes a one-line regression test.
///
/// See docs/FAULTS.md for the profiles, the invariants, and the
/// seed-replay workflow.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_CHAOS_CHAOS_H
#define PROMISES_CHAOS_CHAOS_H

#include "promises/sim/Simulation.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace promises::chaos {

/// Shape of the fault mix. The weights pick the next injection's kind;
/// gaps space injections; outages bound how long a fault lasts before its
/// paired heal/restart. Base* are the ambient network conditions outside
/// bursts.
struct ChaosProfile {
  std::string Name;
  double CrashWeight = 0;
  double PartitionWeight = 0;
  double LossBurstWeight = 0;
  double ShutdownWeight = 0;
  sim::Time MinGap = sim::msec(8);
  sim::Time MaxGap = sim::msec(40);
  sim::Time MinOutage = sim::msec(10);
  sim::Time MaxOutage = sim::msec(70);
  double BurstLoss = 0.5;  ///< Link loss rate during a loss burst.
  double BaseLoss = 0.02;  ///< Ambient datagram loss.
  double BaseDup = 0.01;   ///< Ambient datagram duplication.
  sim::Time BaseJitter = sim::usec(500); ///< Ambient reordering jitter.

  static const ChaosProfile &crashes();
  static const ChaosProfile &partitions();
  static const ChaosProfile &loss();
  static const ChaosProfile &mixed();
  /// Profile by name, or nullptr.
  static const ChaosProfile *byName(std::string_view Name);
  static std::vector<std::string> names();
};

/// One run's parameters. Everything observable is a function of these.
struct ChaosOptions {
  uint64_t Seed = 1;
  ChaosProfile Profile = ChaosProfile::mixed();
  size_t OpsPerClient = 96;
  size_t Clients = 2;
  size_t Servers = 2;
  /// Injection window; after it closes a cleanup phase heals every link
  /// and restarts every crashed node so the workload can drain.
  sim::Time Horizon = sim::msec(300);
  /// Exercise the resilience layer: a deterministic subset of ops carries
  /// wire deadlines, another subset is cancelled mid-flight, idempotent
  /// ops ride a retry policy, clients run a circuit breaker, and servers
  /// shed under admission control. Extra invariants apply (see FAULTS.md).
  bool Deadlines = false;
  /// Byte-level damage (the wire-integrity workload, see FAULTS.md):
  /// Corrupt flips bits in delivered datagrams (ambient rate plus planned
  /// corruption bursts) — every damaged frame must be caught by the
  /// checksum and recovered by retransmission; Dup raises datagram
  /// duplication well above the ambient profile rate; Reorder gives each
  /// copy an independent chance of a bounded extra delay so later sends
  /// overtake it. All three leave every quiescence invariant intact.
  bool Corrupt = false;
  bool Dup = false;
  bool Reorder = false;
  /// Durable-storage workload (--storage-faults): every server slot gets
  /// a WAL-backed stable store that survives crash/restart, a
  /// deterministic subset of ops becomes client-acknowledged durable
  /// puts, and restarted incarnations replay the log before serving.
  /// The rates configure the media-fault model applied at each crash
  /// (docs/DURABILITY.md): the un-synced suffix is lost with LostRate
  /// and then torn with TornRate. Extra durability invariants apply.
  /// Off (the default) creates no stores at all, keeping every seed's
  /// trace hash bit-identical to previous releases.
  bool Storage = false;
  double TornRate = 0.3;
  double LostRate = 0.7;
  /// Execution backend for the run's Simulation. Scheduling is
  /// backend-independent, so the same seed must produce the same trace
  /// hash on either — CI diffs them (see docs/RUNTIME.md).
  sim::BackendKind Backend = sim::SimConfig::defaultBackend();
};

/// One planned injection (or its paired recovery).
struct ChaosAction {
  enum class Kind : uint8_t {
    CrashNode,         ///< Crash server Server's node.
    RestartNode,       ///< Restart it and reincarnate its guardian.
    TransportShutdown, ///< Shut down the current server transport only.
    ServerReincarnate, ///< New guardian incarnation on the (up) node.
    PartitionLink,     ///< Cut client Client <-> server Server.
    HealLink,
    LossBurstStart,    ///< Raise loss on the link to Rate.
    LossBurstEnd,      ///< Restore the profile's ambient loss.
    CorruptBurstStart, ///< Raise the network-wide bit-flip rate to Rate.
    CorruptBurstEnd,   ///< Restore the ambient corruption rate.
  };
  sim::Time At = 0;
  Kind K = Kind::CrashNode;
  uint32_t Server = 0;
  uint32_t Client = 0; ///< Only meaningful for link faults.
  double Rate = 0;     ///< Only meaningful for loss bursts.
};

/// Human-readable one-liner for a planned action.
std::string formatAction(const ChaosAction &A);

/// The full, deterministic fault schedule for one (seed, profile, shape).
struct ChaosPlan {
  uint64_t Seed = 0;
  std::string Profile;
  std::vector<ChaosAction> Actions;

  static ChaosPlan generate(const ChaosOptions &O);
};

/// What one run observed, plus any invariant violations.
struct ChaosReport {
  std::vector<std::string> Violations;
  bool ok() const { return Violations.empty(); }

  // Faults actually applied (plan actions can be no-ops, e.g. a crash of
  // an already-down node).
  uint64_t Crashes = 0, Restarts = 0, Shutdowns = 0, Reincarnations = 0;
  uint64_t Partitions = 0, LossBursts = 0, CorruptBursts = 0;

  // Wire integrity (all zero unless ChaosOptions::Corrupt). Every
  // corrupt-frame drop must trace back to an injected corruption, and a
  // "malformed message" drop (frame intact, message undecodable — a local
  // encode bug) is always a violation.
  uint64_t DatagramsCorrupted = 0;   ///< Copies the network bit-flipped.
  uint64_t FramesCorruptDropped = 0; ///< Frames the transports rejected.
  uint64_t MalformedDropped = 0;     ///< Frame-valid but undecodable.

  // Workload tallies. Claimed outcomes must satisfy
  // Normal + Unavailable + Failed + ExceptionReplies == OpsIssued - Sends.
  uint64_t OpsIssued = 0, Sends = 0, Synchs = 0;
  uint64_t Normal = 0, Unavailable = 0, Failed = 0, ExceptionReplies = 0;
  uint64_t Executions = 0;        ///< Handler bodies entered, all servers.
  uint64_t OrphansDestroyed = 0;  ///< Across all server incarnations.
  uint64_t StaleEpochDrops = 0;   ///< Pre-crash datagrams dropped.

  // Durability tallies (all zero unless ChaosOptions::Storage). Every
  // DurableAcked put must be present both in the final incarnation's
  // memory and in an offline replay of the media alone.
  uint64_t DurableAcked = 0;   ///< Client-acknowledged durable puts.
  uint64_t StorageCrashes = 0; ///< Media crash events applied.
  uint64_t TornTails = 0;      ///< Crashes that left a torn record.
  uint64_t Replayed = 0;       ///< Records the final incarnations replayed.

  // Resilience tallies (all zero unless ChaosOptions::Deadlines).
  // Client-observed: final claimed outcomes split by unavailable reason.
  uint64_t Expired = 0, Cancelled = 0, Shed = 0, FastFails = 0;
  // Server-side counters, summed across every incarnation; each bounds
  // its client-observed counterpart from above (replies can be lost to
  // breaks, and retried attempts count once per attempt server-side).
  uint64_t ServerExpired = 0, ServerShed = 0, ServerCancelled = 0;
  uint64_t Retries = 0;     ///< Retry attempts issued, all clients.
  uint64_t CancelsSent = 0; ///< Cancel messages sent, all clients.

  // Determinism oracle: the structured trace-event stream digested in
  // order. Two runs of the same options must agree exactly.
  uint64_t TraceEvents = 0;
  uint64_t TraceHash = 0;
  sim::Time VirtualEnd = 0;

  /// One line: tallies + hash (violations not included).
  std::string summary() const;
};

/// Runs the workload under the plan derived from \p O and checks the
/// invariants at quiescence. Deterministic: equal options give equal
/// reports, including the trace hash.
ChaosReport runChaos(const ChaosOptions &O);

/// The chaossim command line that reproduces \p O.
std::string replayCommand(const ChaosOptions &O);

} // namespace promises::chaos

#endif // PROMISES_CHAOS_CHAOS_H
