//===- promises/wire/Codec.h - Typed value transmission --------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Codec<T> customization point mapping C++ types onto the external
/// representation. Arguments and results of handler calls are passed by
/// value through these codecs (paper, Section 3: "the data are actually
/// sent using an external representation").
///
/// Built-in codecs cover scalars, strings, vectors, pairs, optionals, and
/// tuples. Abstract types provide their own specialization; such
/// user-provided codecs may fail, which the call layer turns into the
/// `failure` exception.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_WIRE_CODEC_H
#define PROMISES_WIRE_CODEC_H

#include "promises/wire/Encoder.h"

#include <cstdint>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace promises::wire {

/// Primary template; specialize for each transmissible type with
///   static void encode(Encoder &E, const T &V);
///   static T decode(Decoder &D);
/// decode() must tolerate a failed decoder (return a default value).
template <typename T> struct Codec;

/// True for types with a Codec specialization.
template <typename T>
concept Transmissible = requires(Encoder &E, Decoder &D, const T &V) {
  Codec<T>::encode(E, V);
  { Codec<T>::decode(D) } -> std::convertible_to<T>;
};

// --- Scalar codecs -------------------------------------------------------

template <> struct Codec<bool> {
  static void encode(Encoder &E, bool V) { E.writeBool(V); }
  static bool decode(Decoder &D) { return D.readBool(); }
};

template <> struct Codec<uint8_t> {
  static void encode(Encoder &E, uint8_t V) { E.writeU8(V); }
  static uint8_t decode(Decoder &D) { return D.readU8(); }
};

template <> struct Codec<uint16_t> {
  static void encode(Encoder &E, uint16_t V) { E.writeU16(V); }
  static uint16_t decode(Decoder &D) { return D.readU16(); }
};

template <> struct Codec<uint32_t> {
  static void encode(Encoder &E, uint32_t V) { E.writeU32(V); }
  static uint32_t decode(Decoder &D) { return D.readU32(); }
};

template <> struct Codec<uint64_t> {
  static void encode(Encoder &E, uint64_t V) { E.writeU64(V); }
  static uint64_t decode(Decoder &D) { return D.readU64(); }
};

template <> struct Codec<int32_t> {
  static void encode(Encoder &E, int32_t V) { E.writeI32(V); }
  static int32_t decode(Decoder &D) { return D.readI32(); }
};

template <> struct Codec<int64_t> {
  static void encode(Encoder &E, int64_t V) { E.writeI64(V); }
  static int64_t decode(Decoder &D) { return D.readI64(); }
};

template <> struct Codec<double> {
  static void encode(Encoder &E, double V) { E.writeF64(V); }
  static double decode(Decoder &D) { return D.readF64(); }
};

template <> struct Codec<std::string> {
  static void encode(Encoder &E, const std::string &V) { E.writeString(V); }
  static std::string decode(Decoder &D) { return D.readString(); }
};

/// Unit type for handlers that return nothing ("sends" in the paper carry
/// no normal result).
struct Unit {
  friend bool operator==(Unit, Unit) { return true; }
};

template <> struct Codec<Unit> {
  static void encode(Encoder &, Unit) {}
  static Unit decode(Decoder &) { return Unit{}; }
};

// --- Composite codecs ----------------------------------------------------

/// Hard cap on the element count of any length-prefixed sequence. Even a
/// sequence of empty elements (zero encoded bytes each) cannot make the
/// decoder loop or allocate more than this many times on a hostile length.
inline constexpr uint32_t MaxSequenceElems = 1u << 20;

template <typename T> struct Codec<std::vector<T>> {
  static void encode(Encoder &E, const std::vector<T> &V) {
    E.writeU32(static_cast<uint32_t>(V.size()));
    for (const T &Elem : V)
      Codec<T>::encode(E, Elem);
  }
  static std::vector<T> decode(Decoder &D) {
    uint32_t N = D.readU32();
    std::vector<T> Out;
    if (N > MaxSequenceElems) {
      D.fail("oversized sequence length");
      return Out;
    }
    for (uint32_t I = 0; I != N && !D.failed(); ++I)
      Out.push_back(Codec<T>::decode(D));
    return Out;
  }
};

template <typename A, typename B> struct Codec<std::pair<A, B>> {
  static void encode(Encoder &E, const std::pair<A, B> &V) {
    Codec<A>::encode(E, V.first);
    Codec<B>::encode(E, V.second);
  }
  static std::pair<A, B> decode(Decoder &D) {
    A First = Codec<A>::decode(D);
    B Second = Codec<B>::decode(D);
    return {std::move(First), std::move(Second)};
  }
};

template <typename T> struct Codec<std::optional<T>> {
  static void encode(Encoder &E, const std::optional<T> &V) {
    E.writeBool(V.has_value());
    if (V)
      Codec<T>::encode(E, *V);
  }
  static std::optional<T> decode(Decoder &D) {
    if (!D.readBool())
      return std::nullopt;
    return Codec<T>::decode(D);
  }
};

template <typename... Ts> struct Codec<std::tuple<Ts...>> {
  static void encode(Encoder &E, const std::tuple<Ts...> &V) {
    std::apply([&](const Ts &...Elems) { (Codec<Ts>::encode(E, Elems), ...); },
               V);
  }
  static std::tuple<Ts...> decode(Decoder &D) {
    // Braced init guarantees left-to-right evaluation of the decodes.
    return std::tuple<Ts...>{Codec<Ts>::decode(D)...};
  }
};

// --- Convenience entry points --------------------------------------------

/// Encodes \p V into fresh bytes; returns std::nullopt if the codec failed
/// (with \p Reason set to the failure reason).
template <Transmissible T>
std::optional<Bytes> encodeToBytes(const T &V, std::string *Reason = nullptr) {
  Encoder E;
  Codec<T>::encode(E, V);
  if (E.failed()) {
    if (Reason)
      *Reason = E.failReason();
    return std::nullopt;
  }
  return E.take();
}

/// Decodes a whole value from \p B; returns std::nullopt on failure or
/// trailing garbage.
template <Transmissible T>
std::optional<T> decodeFromBytes(const Bytes &B, std::string *Reason = nullptr) {
  Decoder D(B);
  T V = Codec<T>::decode(D);
  if (D.failed()) {
    if (Reason)
      *Reason = D.failReason();
    return std::nullopt;
  }
  if (!D.atEnd()) {
    if (Reason)
      *Reason = "trailing bytes after value";
    return std::nullopt;
  }
  return V;
}

// --- Failure injection ----------------------------------------------------

/// A transmissible value whose user-provided codec can be told to fail, for
/// exercising the paper's encode/decode failure paths ("user-provided code,
/// which may contain errors").
struct Fragile {
  int32_t Value = 0;
  bool FailEncode = false;
  bool FailDecode = false;

  friend bool operator==(const Fragile &A, const Fragile &B) {
    return A.Value == B.Value;
  }
};

template <> struct Codec<Fragile> {
  static void encode(Encoder &E, const Fragile &V) {
    if (V.FailEncode) {
      E.fail("user codec refused to encode");
      return;
    }
    E.writeI32(V.Value);
    E.writeBool(V.FailDecode);
  }
  static Fragile decode(Decoder &D) {
    Fragile V;
    V.Value = D.readI32();
    V.FailDecode = D.readBool();
    if (V.FailDecode)
      D.fail("user codec refused to decode");
    return V;
  }
};

} // namespace promises::wire

#endif // PROMISES_WIRE_CODEC_H
