//===- promises/wire/Frame.h - Checksummed datagram frames -----*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire-integrity layer under the call-stream protocol: every datagram
/// the stream transport sends is wrapped in a small versioned frame whose
/// CRC32C checksum is verified before any decoding happens. The paper's
/// model assigns transport damage to the built-in `failure`/`unavailable`
/// exceptions (Section 3); this layer is how damage is *detected* — a
/// corrupt frame is dropped as if lost and recovered by retransmission,
/// never handed to the message decoder.
///
/// Frame layout (all multi-byte fields little-endian):
///
///   offset 0  u8   magic    (0xD5)
///   offset 1  u8   version  (1)
///   offset 2  u32  payload length
///   offset 6  u32  CRC32C of the payload bytes
///   offset 10      payload
///
/// The checksum covers only the payload; the header fields are validated
/// structurally (magic, version, length == frame size - header size), so
/// every corruption class maps to a distinct FrameError.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_WIRE_FRAME_H
#define PROMISES_WIRE_FRAME_H

#include "promises/wire/Encoder.h"

#include <array>
#include <cstdint>
#include <optional>

namespace promises::wire {

/// CRC32C (Castagnoli) over \p Len bytes, table-driven, reflected
/// polynomial 0x82F63B78. Known answer: crc32c("123456789") == 0xE3069283.
inline uint32_t crc32c(const uint8_t *Data, size_t Len, uint32_t Seed = 0) {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? (0x82F63B78u ^ (C >> 1)) : (C >> 1);
      T[I] = C;
    }
    return T;
  }();
  uint32_t Crc = ~Seed;
  for (size_t I = 0; I != Len; ++I)
    Crc = Table[(Crc ^ Data[I]) & 0xFF] ^ (Crc >> 8);
  return ~Crc;
}

inline uint32_t crc32c(const Bytes &B, uint32_t Seed = 0) {
  return crc32c(B.data(), B.size(), Seed);
}

/// Buffer-traffic tallies for the seal path (docs/OBSERVABILITY.md).
/// Single-runner discipline (at most one simulated process runs at a
/// time), so plain counters suffice. PayloadBytesCopied counts payload
/// bytes memcpy'd into a second buffer while sealing: the legacy
/// encode-then-copy sealFrame() pays Payload.size() per frame, the
/// in-place finishFrame() path pays zero. Tests and bench_hotpath read
/// and reset these to prove the zero-copy property holds.
struct FrameStats {
  uint64_t FramesSealed = 0;        ///< sealFrame() calls (copying path).
  uint64_t FramesSealedInPlace = 0; ///< finishFrame() calls (zero-copy).
  uint64_t PayloadBytesCopied = 0;  ///< Payload bytes copied while sealing.
};

inline FrameStats &frameStats() {
  static FrameStats S;
  return S;
}

/// First byte of every frame.
inline constexpr uint8_t FrameMagic = 0xD5;

/// Current frame format version.
inline constexpr uint8_t FrameVersion = 1;

/// Bytes of header before the payload.
inline constexpr size_t FrameHeaderBytes = 10;

/// Hard cap on the payload a frame may carry; anything larger is rejected
/// before allocation. Far above any batch the transport produces.
inline constexpr uint32_t MaxFramePayloadBytes = 1u << 20;

/// Why openFrame() rejected a frame. Each corruption class is distinct so
/// drops can be traced with a cause.
enum class FrameError : uint8_t {
  None,
  Truncated,   ///< Shorter than the fixed header.
  BadMagic,    ///< First byte is not FrameMagic.
  BadVersion,  ///< Unknown format version.
  BadLength,   ///< Header length disagrees with the frame size.
  Oversized,   ///< Declared payload exceeds MaxFramePayloadBytes.
  BadChecksum, ///< Payload CRC32C mismatch.
};

inline const char *frameErrorName(FrameError E) {
  switch (E) {
  case FrameError::None:
    return "none";
  case FrameError::Truncated:
    return "truncated";
  case FrameError::BadMagic:
    return "bad magic";
  case FrameError::BadVersion:
    return "bad version";
  case FrameError::BadLength:
    return "bad length";
  case FrameError::Oversized:
    return "oversized";
  case FrameError::BadChecksum:
    return "bad checksum";
  }
  return "unknown";
}

/// Wraps \p Payload in a frame header. With \p Checksum false the CRC
/// field is written as zero (the ablation knob for measuring checksum
/// cost); the receiver must then also skip verification.
inline Bytes sealFrame(const Bytes &Payload, bool Checksum = true) {
  frameStats().FramesSealed++;
  frameStats().PayloadBytesCopied += Payload.size();
  Bytes Out;
  Out.reserve(FrameHeaderBytes + Payload.size());
  Out.push_back(FrameMagic);
  Out.push_back(FrameVersion);
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (size_t I = 0; I != 4; ++I)
    Out.push_back(static_cast<uint8_t>(Len >> (8 * I)));
  uint32_t Crc = Checksum ? crc32c(Payload) : 0;
  for (size_t I = 0; I != 4; ++I)
    Out.push_back(static_cast<uint8_t>(Crc >> (8 * I)));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

/// Begins a zero-copy framed encode: writes a placeholder frame header
/// into the (must-be-empty) encoder, presized for \p PayloadSizeHint
/// payload bytes so that a correct hint makes the entire seal a single
/// allocation. The caller encodes the payload directly after the header
/// and then calls finishFrame() — no intermediate payload buffer ever
/// exists. See docs/PROTOCOL.md, "Buffer ownership and the zero-copy
/// send path".
inline void beginFrame(Encoder &E, size_t PayloadSizeHint = 0) {
  E.reserve(FrameHeaderBytes + PayloadSizeHint);
  E.writeU8(FrameMagic);
  E.writeU8(FrameVersion);
  E.writeU32(0); // Payload length, patched by finishFrame().
  E.writeU32(0); // Payload CRC32C, patched by finishFrame().
}

/// Seals a frame begun with beginFrame() in place: patches the real
/// payload length and CRC32C into the reserved header and moves the
/// buffer out. Fails the encoder (and returns empty) on an oversized
/// payload or a prior encode failure — callers must check E.failed()
/// before transmitting. With \p Checksum false the CRC field stays zero
/// (same ablation knob as sealFrame).
inline Bytes finishFrame(Encoder &E, bool Checksum = true) {
  if (E.failed())
    return {};
  size_t PayloadLen = E.size() - FrameHeaderBytes;
  if (PayloadLen > MaxFramePayloadBytes) {
    E.fail("frame payload too large");
    return {};
  }
  E.patchU32(2, static_cast<uint32_t>(PayloadLen));
  if (Checksum)
    E.patchU32(6, crc32c(E.bytes().data() + FrameHeaderBytes, PayloadLen));
  frameStats().FramesSealedInPlace++;
  return E.take();
}

/// Validates \p Frame and returns its payload, or std::nullopt with \p Err
/// (if non-null) set to the rejection cause. Never reads past the buffer
/// and never allocates before the length has been validated against both
/// the actual frame size and MaxFramePayloadBytes.
///
/// By default the buffer must be exactly one frame — any size mismatch is
/// BadLength. Passing \p TrailingBytes switches to the tolerant mode real
/// datagram transports need: some stacks pad a datagram past the sender's
/// length (and a buggy peer could append garbage), so a buffer *longer*
/// than the declared frame is accepted, the excess bytes are dropped
/// (never handed to the decoder, never checksummed), and their count is
/// reported through the out-param for the caller to account (the
/// net.frames_trailing_bytes counter). A buffer shorter than declared is
/// still BadLength in both modes.
inline std::optional<Bytes> openFrame(const Bytes &Frame,
                                      bool VerifyChecksum = true,
                                      FrameError *Err = nullptr,
                                      size_t *TrailingBytes = nullptr) {
  auto Reject = [&](FrameError E) -> std::optional<Bytes> {
    if (Err)
      *Err = E;
    return std::nullopt;
  };
  if (Err)
    *Err = FrameError::None;
  if (TrailingBytes)
    *TrailingBytes = 0;
  if (Frame.size() < FrameHeaderBytes)
    return Reject(FrameError::Truncated);
  if (Frame[0] != FrameMagic)
    return Reject(FrameError::BadMagic);
  if (Frame[1] != FrameVersion)
    return Reject(FrameError::BadVersion);
  uint32_t Len = 0, Crc = 0;
  for (size_t I = 0; I != 4; ++I) {
    Len |= static_cast<uint32_t>(Frame[2 + I]) << (8 * I);
    Crc |= static_cast<uint32_t>(Frame[6 + I]) << (8 * I);
  }
  if (Len > MaxFramePayloadBytes)
    return Reject(FrameError::Oversized);
  if (TrailingBytes) {
    if (Frame.size() < FrameHeaderBytes + Len)
      return Reject(FrameError::BadLength);
    *TrailingBytes = Frame.size() - (FrameHeaderBytes + Len);
  } else if (Frame.size() != FrameHeaderBytes + Len) {
    return Reject(FrameError::BadLength);
  }
  if (VerifyChecksum &&
      crc32c(Frame.data() + FrameHeaderBytes, Len) != Crc)
    return Reject(FrameError::BadChecksum);
  return Bytes(Frame.begin() + FrameHeaderBytes,
               Frame.begin() + FrameHeaderBytes + Len);
}

} // namespace promises::wire

#endif // PROMISES_WIRE_FRAME_H
