//===- promises/wire/Encoder.h - External representation -------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-level encoder/decoder for the external representation used to pass
/// arguments and results by value between entities (Herlihy & Liskov's
/// value transmission method, reference [7] of the paper).
///
/// Errors are sticky: any failed write/read marks the whole
/// encoder/decoder failed, and later operations are inert. Per the paper,
/// encode/decode failures surface as the `failure` exception at the call
/// level, and a decode failure at the receiver also breaks the stream.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_WIRE_ENCODER_H
#define PROMISES_WIRE_ENCODER_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace promises::wire {

/// Raw encoded bytes.
using Bytes = std::vector<uint8_t>;

/// Hard cap on any single length-prefixed byte sequence or string. A
/// corrupt or hostile length above this is rejected before allocation,
/// independent of how many bytes the buffer actually holds.
inline constexpr uint32_t MaxStringBytes = 1u << 20;

/// Serializes values into the external representation (little-endian,
/// fixed-width scalars, length-prefixed sequences).
class Encoder {
public:
  Encoder() = default;

  /// Presizes the buffer for \p Hint total bytes (including anything
  /// already written). A correct hint makes the whole encode a single
  /// allocation; an undersized hint only costs reallocation, never
  /// correctness.
  void reserve(size_t Hint) { Buf.reserve(Hint); }

  void writeU8(uint8_t V) {
    if (!Failed)
      Buf.push_back(V);
  }
  void writeBool(bool V) { writeU8(V ? 1 : 0); }
  void writeU16(uint16_t V) { writeLe(V); }
  void writeU32(uint32_t V) { writeLe(V); }
  void writeU64(uint64_t V) { writeLe(V); }
  void writeI32(int32_t V) { writeLe(static_cast<uint32_t>(V)); }
  void writeI64(int64_t V) { writeLe(static_cast<uint64_t>(V)); }

  void writeF64(double V) {
    uint64_t Raw;
    std::memcpy(&Raw, &V, sizeof(Raw));
    writeU64(Raw);
  }

  /// Writes a length-prefixed byte sequence. Lengths above MaxStringBytes
  /// fail the encoder (mirror of the decode-side bound): a sequence the
  /// receiver is guaranteed to reject must never be encoded, and a length
  /// that would not survive the u32 prefix must never be truncated into
  /// one that seems to.
  void writeBytes(const uint8_t *Data, size_t Len) {
    if (Failed)
      return;
    if (Len > MaxStringBytes) {
      fail("oversized byte sequence");
      return;
    }
    writeU32(static_cast<uint32_t>(Len));
    Buf.insert(Buf.end(), Data, Data + Len);
  }

  /// Writes a length-prefixed string.
  void writeString(const std::string &S) {
    writeBytes(reinterpret_cast<const uint8_t *>(S.data()), S.size());
  }

  /// Overwrites four previously written bytes at offset \p Off with \p V
  /// (little-endian). Used by the framing layer to patch a reserved
  /// header in place once the payload length and checksum are known; the
  /// range [Off, Off+4) must already have been written.
  void patchU32(size_t Off, uint32_t V) {
    if (Failed)
      return;
    if (Off + 4 > Buf.size()) {
      fail("patch outside encoded bytes");
      return;
    }
    for (size_t I = 0; I != 4; ++I)
      Buf[Off + I] = static_cast<uint8_t>(V >> (8 * I));
  }

  /// Marks the encoding failed (used by fallible user codecs for abstract
  /// types). Subsequent writes are ignored.
  void fail(std::string Reason) {
    if (!Failed) {
      Failed = true;
      Reason_ = std::move(Reason);
    }
  }

  bool failed() const { return Failed; }
  const std::string &failReason() const { return Reason_; }

  /// Bytes encoded so far (undefined content if failed()).
  const Bytes &bytes() const { return Buf; }

  /// Moves the encoded bytes out.
  Bytes take() { return std::move(Buf); }

  /// Number of bytes encoded so far.
  size_t size() const { return Buf.size(); }

private:
  template <typename T> void writeLe(T V) {
    if (Failed)
      return;
    for (size_t I = 0; I != sizeof(T); ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  Bytes Buf;
  bool Failed = false;
  std::string Reason_;
};

/// Deserializes values from the external representation. Does not own the
/// underlying bytes; keep them alive while decoding.
class Decoder {
public:
  Decoder(const uint8_t *Data, size_t Len) : Data(Data), Len(Len) {}
  explicit Decoder(const Bytes &B) : Decoder(B.data(), B.size()) {}

  uint8_t readU8() {
    uint8_t V = 0;
    readRaw(&V, 1);
    return V;
  }
  bool readBool() { return readU8() != 0; }
  uint16_t readU16() { return readLe<uint16_t>(); }
  uint32_t readU32() { return readLe<uint32_t>(); }
  uint64_t readU64() { return readLe<uint64_t>(); }
  int32_t readI32() { return static_cast<int32_t>(readU32()); }
  int64_t readI64() { return static_cast<int64_t>(readU64()); }

  double readF64() {
    uint64_t Raw = readU64();
    double V;
    std::memcpy(&V, &Raw, sizeof(V));
    return V;
  }

  /// Reads a length-prefixed byte sequence.
  Bytes readBytes() {
    uint32_t N = readU32();
    if (N > MaxStringBytes) {
      fail("oversized byte sequence");
      return {};
    }
    if (N > remaining()) {
      fail("truncated byte sequence");
      return {};
    }
    Bytes Out(Data + Pos, Data + Pos + N);
    Pos += N;
    return Out;
  }

  /// Reads a length-prefixed string.
  std::string readString() {
    uint32_t N = readU32();
    if (N > MaxStringBytes) {
      fail("oversized string");
      return {};
    }
    if (N > remaining()) {
      fail("truncated string");
      return {};
    }
    std::string Out(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return Out;
  }

  /// Marks the decoding failed (bounds violation or fallible user codec).
  void fail(std::string Reason) {
    if (!Failed) {
      Failed = true;
      Reason_ = std::move(Reason);
    }
  }

  bool failed() const { return Failed; }
  const std::string &failReason() const { return Reason_; }

  /// Bytes not yet consumed.
  size_t remaining() const { return Len - Pos; }

  /// True when every byte has been consumed.
  bool atEnd() const { return Pos == Len; }

private:
  void readRaw(void *Out, size_t N) {
    if (Failed)
      return;
    if (N > remaining()) {
      fail("read past end of message");
      return;
    }
    std::memcpy(Out, Data + Pos, N);
    Pos += N;
  }

  template <typename T> T readLe() {
    uint8_t Raw[sizeof(T)] = {0};
    readRaw(Raw, sizeof(T));
    T V = 0;
    for (size_t I = 0; I != sizeof(T); ++I)
      V |= static_cast<T>(static_cast<T>(Raw[I]) << (8 * I));
    return V;
  }

  const uint8_t *Data;
  size_t Len;
  size_t Pos = 0;
  bool Failed = false;
  std::string Reason_;
};

} // namespace promises::wire

#endif // PROMISES_WIRE_ENCODER_H
