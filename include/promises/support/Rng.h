//===- promises/support/Rng.h - Deterministic random numbers ---*- C++ -*-===//
//
// Part of the promises project: a reproduction of Liskov & Shrira,
// "Promises: Linguistic Support for Efficient Asynchronous Procedure Calls
// in Distributed Systems", PLDI 1988.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic pseudo-random generator (splitmix64 seeded
/// xoshiro256**). Every source of randomness in the simulator goes through
/// an explicitly seeded Rng so that simulations replay identically.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_SUPPORT_RNG_H
#define PROMISES_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace promises {

/// Deterministic pseudo-random generator.
///
/// Not a std-style engine on purpose: the tiny interface below is all the
/// simulator needs, and keeping it concrete guarantees identical streams on
/// every platform and standard-library implementation.
class Rng {
public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  /// Re-seeds in place, restarting the stream.
  void reseed(uint64_t Seed) {
    // Expand the seed with splitmix64 so that nearby seeds give unrelated
    // streams.
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      X += 0x9e3779b97f4a7c15ull;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Returns the next 64 uniformly distributed bits.
  uint64_t next() {
    auto Rotl = [](uint64_t V, int K) {
      return (V << K) | (V >> (64 - K));
    };
    uint64_t Result = Rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = Rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "below() requires a nonzero bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t V = next();
      if (V >= Threshold)
        return V % Bound;
    }
  }

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  uint64_t between(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "between() requires Lo <= Hi");
    return Lo + below(Hi - Lo + 1);
  }

  /// Returns a uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool chance(double P) {
    if (P <= 0.0)
      return false;
    if (P >= 1.0)
      return true;
    return unit() < P;
  }

  /// Derives an independent child generator; used to give each node/link its
  /// own stream so adding a fault source does not perturb the others.
  Rng split() { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

private:
  uint64_t State[4];
};

} // namespace promises

#endif // PROMISES_SUPPORT_RNG_H
