//===- promises/support/Metrics.h - Observability core ---------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified observability core: one registry of named, labelled
/// counters, gauges, and histograms, plus a buffer of typed TraceEvent
/// records, shared by every layer (sim, net, stream, runtime, baseline).
///
/// Design rules (see docs/OBSERVABILITY.md):
///
///  * Counters are *always on*: they are the storage behind the public
///    `counters()` accessors (NetCounters, StreamCounters, ...), which are
///    now thin value views assembled from registry cells. An increment is
///    one pointer indirection — the same cost class as the ad-hoc structs
///    they replace.
///  * Histograms and trace events are *gated*: when the registry is
///    disabled (the default) an observe()/emit() site costs one predicted
///    branch, so benchmarks are unaffected. Enable with
///    MetricsRegistry::setEnabled(true) or the PROMISES_METRICS /
///    PROMISES_METRICS_DIR environment variables.
///  * Gauges may be backed by a *probe* callback (e.g. event-queue depth)
///    evaluated only at export time — zero hot-path cost.
///
/// Exporters: a human-readable summary, JSON Lines (one metric per line),
/// and the chrome://tracing JSON format for the event buffer.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_SUPPORT_METRICS_H
#define PROMISES_SUPPORT_METRICS_H

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace promises {

/// Metric labels, e.g. {{"node", "server"}}. Order is preserved and is
/// part of the metric identity.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry;

/// A monotonically increasing count. Always on (see file comment).
class Counter {
public:
  void inc(uint64_t N = 1) { V += N; }
  uint64_t value() const { return V; }

private:
  friend class MetricsRegistry;
  Counter() = default;
  uint64_t V = 0;
};

/// A point-in-time value, either set directly or read from a probe
/// callback at export time.
class Gauge {
public:
  void set(double X) { V = X; }
  void add(double D) { V += D; }
  double value() const { return Probe ? Probe() : V; }

private:
  friend class MetricsRegistry;
  Gauge() = default;
  double V = 0;
  std::function<double()> Probe;
};

/// A distribution accumulator with HDR-style log-linear buckets: each
/// power-of-two range is subdivided into 2^SubBucketBits linear
/// sub-buckets, so a bucket's relative width — and therefore the
/// percentile error — is at most 1/2^SubBucketBits (~3%), while memory
/// stays a fixed flat array (O(1) per metric, independent of sample
/// count; a million-client run costs the same 15 KiB as an idle one).
/// Exact count, sum, min, max; approximate percentiles clamped to
/// [min, max]. observe() is gated on the registry's enabled flag: one
/// predicted branch when observability is off.
class Histogram {
public:
  static constexpr size_t SubBucketBits = 5;
  static constexpr size_t SubBuckets = size_t{1} << SubBucketBits;
  /// Bucket 0 holds "< 1"; the rest cover the full uint64 range at
  /// SubBuckets of linear resolution per octave. The top value
  /// (UINT64_MAX, 64 significant bits) lands at shift 58, sub-index 63,
  /// so the flat index range is [0, 58 * SubBuckets + 64).
  static constexpr size_t NumBuckets =
      1 + (64 - SubBucketBits - 1) * SubBuckets + 2 * SubBuckets;

  void observe(double Sample) {
    if (!*Enabled)
      return;
    record(Sample);
  }

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0; }
  double min() const { return Count ? Min : 0; }
  double max() const { return Count ? Max : 0; }

  /// Approximate percentile by nearest rank over the buckets. \p P is
  /// clamped to [0, 100]; NaN is treated as 0 (the minimum). Returns 0.0
  /// when the histogram is empty. Total, not sanity-checked: callers often
  /// feed config- or flag-derived P straight in, and a bad value must not
  /// index buckets out of range in a build with asserts stripped.
  double percentile(double P) const;

private:
  friend class MetricsRegistry;
  explicit Histogram(const bool *Enabled) : Enabled(Enabled) {}

  void record(double Sample);

  /// Bucket 0 holds samples < 1 (and non-finite ones). For the rest the
  /// sample is truncated to uint64 and binned at its top SubBucketBits+1
  /// significant bits: Shift = bit_width(U) - (SubBucketBits + 1) (floored
  /// at 0), index = 1 + Shift * SubBuckets + (U >> Shift). Small values
  /// (U < 2 * SubBuckets) get exact integer buckets; larger ones keep
  /// SubBuckets of linear resolution per power-of-two range, so adjacent
  /// buckets are contiguous and each is at most 1/SubBuckets wide
  /// relative to its value.
  static size_t bucketIndex(double V) {
    if (!(V >= 1.0))
      return 0;
    uint64_t U = V >= 9.2e18 ? UINT64_MAX : static_cast<uint64_t>(V);
    int Shift = std::max(0, static_cast<int>(std::bit_width(U)) -
                                static_cast<int>(SubBucketBits) - 1);
    return 1 + static_cast<size_t>(Shift) * SubBuckets +
           static_cast<size_t>(U >> Shift);
  }

  double representative(size_t B) const;

  const bool *Enabled;
  uint64_t Count = 0;
  double Sum = 0, Min = 0, Max = 0;
  std::array<uint64_t, NumBuckets> Buckets{};
};

/// The typed trace events emitted at transport/runtime decision points
/// (replacing the untyped tracef stream at those sites).
enum class EventKind : uint8_t {
  CallIssued,       ///< Sender queued a call (Id=agent, Seq=call seq).
  CallSpan,         ///< A call's issue->outcome span (DurNs = latency).
  CallBatchTx,      ///< Call batch transmitted (Seq=calls in batch).
  ReplyBatchTx,     ///< Reply batch transmitted (Seq=replies in batch).
  SenderBreak,      ///< Sender side of a stream broke.
  ReceiverBreak,    ///< Receiver side of a stream broke.
  StreamRestart,    ///< Broken sender stream reincarnated (Seq=new inc).
  StreamSuperseded, ///< Receiver stream replaced by a newer incarnation.
  OrphanDestroyed,  ///< Orphaned call execution killed (Seq=call seq).
  NodeCrash,        ///< Network node went down.
  NodeRestart,      ///< Network node came back up.
  SenderBlocked,    ///< Issuer blocked on a full in-flight window
                    ///< (Seq=window occupancy).
  SenderUnblocked,  ///< Blocked issuer resumed (DurNs = time blocked).
  DeadlineExpired,  ///< Receiver dropped a call whose deadline passed
                    ///< before execution (Id=stream tag, Seq=call seq).
  CallCancelled,    ///< Call completed as cancelled (Id=stream tag).
  CallRetry,        ///< Client re-issued a call after `unavailable`
                    ///< (Id=agent, Seq=attempt number).
  CallShed,         ///< Guardian shed an incoming call under admission
                    ///< control (Id=stream tag, Seq=call seq).
  BreakerOpen,      ///< Endpoint circuit breaker tripped open (Id=agent,
                    ///< Seq=consecutive timeout breaks).
  BreakerClose,     ///< Breaker closed: a reply proved reachability.
  DatagramCorrupted,  ///< Network flipped bits in a datagram in flight
                      ///< (Seq=bits flipped).
  FrameCorruptDropped, ///< Transport rejected an arriving frame before
                       ///< decode (Detail=cause, Seq=frame bytes).
  Custom,           ///< Anything else; see Detail.
};

/// Stable lowercase name for an event kind ("sender_break", ...).
const char *eventKindName(EventKind K);

/// One structured trace record. TsNs is virtual time.
struct TraceEvent {
  uint64_t TsNs = 0;
  EventKind Kind = EventKind::Custom;
  uint32_t Node = 0;  ///< Originating network node, when known.
  uint64_t Id = 0;    ///< Agent id, stream tag, or process id.
  uint64_t Seq = 0;   ///< Call seq, incarnation, or batch size.
  uint64_t DurNs = 0; ///< When nonzero: a span [TsNs, TsNs + DurNs].
  std::string Detail; ///< Break reason etc.; often empty.
};

/// The registry. One per Simulation (reachable from every layer via
/// sim::Simulation::metrics()); freestanding instances are fine in tests.
/// Instrument handles returned by counter()/gauge()/histogram() are stable
/// for the registry's lifetime.
class MetricsRegistry {
public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Gates histograms and trace events (counters and gauges stay live).
  bool enabled() const { return EnabledFlag; }
  void setEnabled(bool On) { EnabledFlag = On; }

  /// True when PROMISES_METRICS or PROMISES_METRICS_DIR is set in the
  /// environment; new registries start in this state.
  static bool enabledByEnvironment();

  /// Gets or creates the instrument with this name+labels identity.
  /// Re-requesting with a different type is a programming error (asserts).
  Counter &counter(const std::string &Name, MetricLabels Labels = {});
  Gauge &gauge(const std::string &Name, MetricLabels Labels = {});
  Histogram &histogram(const std::string &Name, MetricLabels Labels = {});

  /// Creates (or rebinds) a gauge whose value is read from \p Probe at
  /// export time.
  Gauge &gaugeProbe(const std::string &Name, std::function<double()> Probe,
                    MetricLabels Labels = {});

  /// Appends a trace event if enabled. The buffer is capped (MaxEvents);
  /// overflow increments droppedEvents() instead of growing unboundedly.
  void emit(TraceEvent E);

  const std::vector<TraceEvent> &events() const { return Events; }
  uint64_t droppedEvents() const { return DroppedEvents; }
  void clearEvents() {
    Events.clear();
    DroppedEvents = 0;
  }

  /// --- Exporters ---

  /// Human-readable table of all instruments.
  void writeSummary(std::ostream &OS) const;

  /// One JSON object per line per instrument, then one per trace event.
  void writeJsonLines(std::ostream &OS) const;

  /// The trace-event buffer in chrome://tracing JSON format (load via
  /// about:tracing or https://ui.perfetto.dev).
  void writeChromeTrace(std::ostream &OS) const;

  /// File convenience wrappers; return false if the file cannot be opened.
  bool writeJsonLinesFile(const std::string &Path) const;
  bool writeChromeTraceFile(const std::string &Path) const;

  static constexpr size_t MaxEvents = 1 << 20;

private:
  enum class Type : uint8_t { Counter, Gauge, Histogram };
  struct Instrument {
    Type T;
    std::string Name;
    MetricLabels Labels;
    Counter *C = nullptr;
    Gauge *G = nullptr;
    Histogram *H = nullptr;
  };

  static std::string key(const std::string &Name, const MetricLabels &Labels);
  Instrument &find(Type T, const std::string &Name, MetricLabels Labels);

  bool EnabledFlag = false;
  // Deques give the handles stable addresses.
  std::deque<Counter> CounterPool;
  std::deque<Gauge> GaugePool;
  std::deque<Histogram> HistogramPool;
  std::map<std::string, Instrument> Instruments; ///< Sorted for export.
  std::vector<TraceEvent> Events;
  uint64_t DroppedEvents = 0;
};

} // namespace promises

#endif // PROMISES_SUPPORT_METRICS_H
