//===- promises/support/Trace.h - Optional event tracing -------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opt-in diagnostic tracing. Set the environment variable PROMISES_TRACE
/// to any non-empty value to stream transport and runtime events to
/// stderr; it is off (and nearly free: one predicted branch per site)
/// otherwise. A TraceSink can be installed instead to capture events
/// programmatically (used by tests).
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_SUPPORT_TRACE_H
#define PROMISES_SUPPORT_TRACE_H

#include <functional>
#include <string>

namespace promises {

/// Receives each trace line (no trailing newline).
using TraceSink = std::function<void(const std::string &)>;

/// True when tracing is active (env var set or a sink installed).
bool traceEnabled();

/// Installs (or clears, with nullptr) a programmatic sink; enables
/// tracing while installed.
void setTraceSink(TraceSink Sink);

/// Emits one formatted trace line if tracing is active.
void tracef(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace promises

#endif // PROMISES_SUPPORT_TRACE_H
