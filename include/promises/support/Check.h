//===- promises/support/Check.h - Always-on invariant checks ---*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PROMISES_CHECK: an assert that survives NDEBUG.
///
/// Bare `assert` is for debugging aids — redundant restatements of local
/// logic whose failure would be caught (noisily) a few lines later anyway.
/// Invariants that *guard wire correctness* are different: if one fails in
/// a release build with asserts stripped, the transport silently seals and
/// sends a garbage frame, or walks a window map with a dangling iterator —
/// corruption, not a crash. Those sites use PROMISES_CHECK, which aborts
/// with a message in every build mode (see DESIGN.md, "Check policy").
///
/// The policy, in short:
///
///  * PROMISES_CHECK — the condition being false means the process must
///    not be allowed to take another step (it would emit damage onto the
///    wire or corrupt protocol state). Always compiled in; the cost is a
///    predictable branch on paths that already do map lookups and I/O.
///  * assert — everything else: cheap sanity restatements, preconditions
///    of private helpers, shape checks in tests.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_SUPPORT_CHECK_H
#define PROMISES_SUPPORT_CHECK_H

#include <cstdio>
#include <cstdlib>

namespace promises {

/// Failure path of PROMISES_CHECK; out-of-line-ish (never inlined into the
/// hot path's happy branch) and noreturn so the compiler treats the check
/// as a single predictable branch.
[[noreturn]] inline void checkFailed(const char *Cond, const char *Msg,
                                     const char *File, int Line) {
  std::fprintf(stderr, "PROMISES_CHECK failed: %s (%s) at %s:%d\n", Msg,
               Cond, File, Line);
  std::fflush(stderr);
  std::abort();
}

} // namespace promises

/// Aborts with \p Msg when \p Cond is false, in every build mode (NDEBUG
/// does not strip it). Use for invariants whose violation would corrupt
/// wire or protocol state; use plain assert for debugging aids.
#define PROMISES_CHECK(Cond, Msg)                                             \
  do {                                                                        \
    if (!(Cond)) [[unlikely]]                                                 \
      ::promises::checkFailed(#Cond, (Msg), __FILE__, __LINE__);              \
  } while (false)

#endif // PROMISES_SUPPORT_CHECK_H
