//===- promises/support/Stats.h - Measurement accumulators -----*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulators used by tests and benchmarks to summarize series of
/// measurements (counts, mean, min/max, percentiles).
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_SUPPORT_STATS_H
#define PROMISES_SUPPORT_STATS_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace promises {

/// Streaming accumulator for scalar samples.
///
/// Stores all samples so exact percentiles are available; the workloads in
/// this repository are small enough that this is never a concern.
class Stats {
public:
  /// Records one sample.
  void add(double Sample) {
    Samples.push_back(Sample);
    Sorted = false;
  }

  /// Number of recorded samples.
  size_t count() const { return Samples.size(); }

  /// Returns true if no samples have been recorded.
  bool empty() const { return Samples.empty(); }

  /// Sum of all samples; 0 when empty.
  double sum() const {
    double Total = 0;
    for (double S : Samples)
      Total += S;
    return Total;
  }

  /// Arithmetic mean; 0 when empty.
  double mean() const {
    return Samples.empty() ? 0.0 : sum() / static_cast<double>(Samples.size());
  }

  /// Smallest sample; 0 when empty.
  double min() const {
    return Samples.empty() ? 0.0
                           : *std::min_element(Samples.begin(), Samples.end());
  }

  /// Largest sample; 0 when empty.
  double max() const {
    return Samples.empty() ? 0.0
                           : *std::max_element(Samples.begin(), Samples.end());
  }

  /// Exact percentile by nearest-rank; \p P in [0, 100]. 0 when empty.
  /// Const so snapshots can be passed around by const reference; the sort
  /// cache is mutable.
  double percentile(double P) const {
    assert(P >= 0.0 && P <= 100.0 && "percentile out of range");
    if (Samples.empty())
      return 0.0;
    ensureSorted();
    size_t Rank = static_cast<size_t>((P / 100.0) *
                                      static_cast<double>(Samples.size() - 1));
    return Samples[Rank];
  }

  /// Median, i.e. percentile(50).
  double median() const { return percentile(50.0); }

private:
  void ensureSorted() const {
    if (!Sorted) {
      std::sort(Samples.begin(), Samples.end());
      Sorted = true;
    }
  }

  mutable std::vector<double> Samples;
  mutable bool Sorted = true;
};

} // namespace promises

#endif // PROMISES_SUPPORT_STATS_H
