//===- promises/support/StrUtil.h - Small string helpers -------*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting helpers shared by the runtime, examples, and
/// benchmarks. Kept deliberately tiny; anything heavier belongs in the
/// caller.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_SUPPORT_STRUTIL_H
#define PROMISES_SUPPORT_STRUTIL_H

#include <cstdint>
#include <string>
#include <vector>

namespace promises {

/// Renders a virtual-time duration in nanoseconds as a human-readable
/// string with an appropriate unit, e.g. "12.50ms".
std::string formatDuration(uint64_t Nanos);

/// Renders \p Value with \p Decimals fractional digits.
std::string formatDouble(double Value, int Decimals = 2);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// printf-style formatting into a std::string.
std::string strprintf(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace promises

#endif // PROMISES_SUPPORT_STRUTIL_H
