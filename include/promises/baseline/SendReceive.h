//===- promises/baseline/SendReceive.h - Explicit messaging ----*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicit send/receive baseline (paper Section 5, PLITS/*MOD-style):
/// one-way messages with the sender free as soon as the message is
/// produced, high throughput, and — the paper's criticism — "it is
/// entirely the responsibility of the user code to relate reply messages
/// with the calls that caused them".
///
/// To keep the throughput comparison fair, Mailbox rides on the same
/// call-stream transport (batching, exactly-once, ordering) using
/// reply-less sends; what it deliberately lacks is everything promises
/// add: typed results, ordered reply consumption, and exception
/// propagation. User code ships correlation ids by hand.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_BASELINE_SENDRECEIVE_H
#define PROMISES_BASELINE_SENDRECEIVE_H

#include "promises/stream/StreamTransport.h"

#include <deque>
#include <map>
#include <memory>
#include <string>

namespace promises::baseline {

/// One received message.
struct Msg {
  net::Address From;
  wire::Bytes Payload;
};

/// An explicit-messaging endpoint: send one-way messages, receive from a
/// single inbox, correlate by hand.
class Mailbox {
public:
  /// Binds a mailbox on \p Node.
  Mailbox(net::Network &Net, net::NodeId Node,
          stream::StreamConfig Cfg = stream::StreamConfig());
  ~Mailbox();
  Mailbox(const Mailbox &) = delete;
  Mailbox &operator=(const Mailbox &) = delete;

  /// The address peers send to.
  net::Address address() const { return Transport->address(); }

  /// Sends \p Payload to the mailbox at \p To. Returns immediately once
  /// the message is produced (buffered); delivery is reliable and in
  /// order per destination.
  void sendMsg(net::Address To, wire::Bytes Payload);

  /// Expedites buffered messages to \p To.
  void flushTo(net::Address To);

  /// Blocks the calling process until a message arrives, then returns it.
  Msg receive();

  /// Non-blocking receive; false when the inbox is empty.
  bool tryReceive(Msg &Out);

  /// Messages waiting in the inbox.
  size_t pending() const { return Inbox.size(); }

  stream::StreamTransport &transport() { return *Transport; }

private:
  static constexpr stream::PortId MsgPort = 1;
  static constexpr stream::GroupId MsgGroup = 1;

  MetricsRegistry &Reg;
  MetricLabels Labels;
  Counter *MsgsSent = nullptr;
  Counter *MsgsReceived = nullptr;
  std::unique_ptr<stream::StreamTransport> Transport;
  // A raw deque + wait queue rather than PromiseQueue: deliveries arrive
  // in scheduler context, where monitor-style primitives are off-limits.
  std::deque<Msg> Inbox;
  std::unique_ptr<sim::WaitQueue> InboxWaiters;
  /// One sending agent per destination (per-destination ordering).
  std::map<net::Address, stream::AgentId> Agents;
};

} // namespace promises::baseline

#endif // PROMISES_BASELINE_SENDRECEIVE_H
