//===- promises/baseline/DynFuture.h - MultiLisp-style futures -*- C++ -*-===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A faithful-in-spirit rendition of MultiLisp futures (paper Section 3.3,
/// reference [5]) used as the comparison baseline:
///
///  * "an object of any type can be a future": DynFuture is type-erased;
///    a value of any type hides behind it.
///  * "every object must be examined each time it is accessed to
///    determine whether or not it is a future": every access performs the
///    runtime tag check (and blocks if the future is unresolved) — this is
///    the overhead promises avoid by being a distinct static type.
///  * "exceptions are turned into error values automatically, and
///    information about the error value propagates through the
///    expression": arithmetic on an error future yields an error future,
///    and the original reason is buried as the value flows on.
///
//===----------------------------------------------------------------------===//

#ifndef PROMISES_BASELINE_DYNFUTURE_H
#define PROMISES_BASELINE_DYNFUTURE_H

#include "promises/sim/Simulation.h"

#include <any>
#include <cassert>
#include <functional>
#include <memory>
#include <string>

namespace promises::baseline {

/// A dynamically checked value-or-future-or-error.
class DynFuture {
public:
  /// Wraps an immediate value (still pays the tag check on access).
  template <typename T> static DynFuture immediate(T V) {
    DynFuture F;
    F.St = std::make_shared<State>();
    F.St->T = Tag::Value;
    F.St->V = std::move(V);
    return F;
  }

  /// Makes an error value.
  static DynFuture error(std::string Why) {
    DynFuture F;
    F.St = std::make_shared<State>();
    F.St->T = Tag::Error;
    F.St->Err = std::move(Why);
    return F;
  }

  /// Spawns \p Body in a new process; the future resolves to its result.
  /// The body may return DynFuture::error to signal.
  template <typename Fn>
  static DynFuture spawn(sim::Simulation &S, Fn Body) {
    DynFuture F;
    F.St = std::make_shared<State>();
    F.St->T = Tag::Pending;
    F.St->Waiters = std::make_unique<sim::WaitQueue>(S);
    S.spawn("future", [St = F.St, Body = std::move(Body)]() mutable {
      DynFuture R = wrap(Body());
      // Collapse: adopt the result's state.
      if (R.St->T == Tag::Error) {
        St->T = Tag::Error;
        St->Err = R.St->Err;
      } else {
        St->V = R.St->V;
        St->T = Tag::Value;
      }
      St->Waiters->notifyAll();
    });
    return F;
  }

  bool valid() const { return St != nullptr; }

  /// The dynamic check every access pays: resolve if needed, then test the
  /// tag and the stored type. Blocks the calling process while pending.
  template <typename T> T as() const {
    assert(valid());
    touch();
    if (St->T == Tag::Error)
      return T{}; // Error values yield a default; isError() tells.
    const T *P = std::any_cast<T>(&St->V);
    assert(P && "dynamic type check failed on future access");
    return *P;
  }

  /// Forces resolution without extracting (MultiLisp's touch).
  void touch() const {
    assert(valid());
    while (St->T == Tag::Pending)
      St->Waiters->wait();
  }

  /// True when resolution produced an error value. Forces first.
  bool isError() const {
    touch();
    return St->T == Tag::Error;
  }

  /// The buried reason; often far from where the error arose — the
  /// debugging problem the paper cites.
  const std::string &errorReason() const {
    touch();
    return St->Err;
  }

  bool resolved() const { return valid() && St->T != Tag::Pending; }

  /// Error-contagious arithmetic: the future world's implicit
  /// propagation. Operands must already be resolved numbers or errors.
  friend DynFuture operator+(const DynFuture &A, const DynFuture &B) {
    if (A.isError())
      return error("propagated: " + A.St->Err);
    if (B.isError())
      return error("propagated: " + B.St->Err);
    return immediate(A.as<double>() + B.as<double>());
  }

private:
  enum class Tag : uint8_t { Pending, Value, Error };
  struct State {
    Tag T = Tag::Pending;
    std::any V;
    std::string Err;
    std::unique_ptr<sim::WaitQueue> Waiters;
  };

  static DynFuture wrap(DynFuture F) { return F; }
  template <typename T> static DynFuture wrap(T V) {
    return immediate(std::move(V));
  }

  std::shared_ptr<State> St;
};

} // namespace promises::baseline

#endif // PROMISES_BASELINE_DYNFUTURE_H
