# Empty compiler generated dependencies file for bench_rpc_vs_stream.
# This may be replaced when dependencies are built.
