file(REMOVE_RECURSE
  "CMakeFiles/bench_breaks.dir/bench_breaks.cpp.o"
  "CMakeFiles/bench_breaks.dir/bench_breaks.cpp.o.d"
  "bench_breaks"
  "bench_breaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_breaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
