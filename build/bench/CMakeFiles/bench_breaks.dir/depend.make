# Empty dependencies file for bench_breaks.
# This may be replaced when dependencies are built.
