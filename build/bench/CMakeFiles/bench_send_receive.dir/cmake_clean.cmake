file(REMOVE_RECURSE
  "CMakeFiles/bench_send_receive.dir/bench_send_receive.cpp.o"
  "CMakeFiles/bench_send_receive.dir/bench_send_receive.cpp.o.d"
  "bench_send_receive"
  "bench_send_receive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_send_receive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
