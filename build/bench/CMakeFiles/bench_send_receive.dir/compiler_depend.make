# Empty compiler generated dependencies file for bench_send_receive.
# This may be replaced when dependencies are built.
