# Empty dependencies file for bench_per_item.
# This may be replaced when dependencies are built.
