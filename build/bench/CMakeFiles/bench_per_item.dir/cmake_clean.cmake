file(REMOVE_RECURSE
  "CMakeFiles/bench_per_item.dir/bench_per_item.cpp.o"
  "CMakeFiles/bench_per_item.dir/bench_per_item.cpp.o.d"
  "bench_per_item"
  "bench_per_item.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_per_item.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
