# Empty dependencies file for bench_typed_vs_future.
# This may be replaced when dependencies are built.
