file(REMOVE_RECURSE
  "CMakeFiles/bench_typed_vs_future.dir/bench_typed_vs_future.cpp.o"
  "CMakeFiles/bench_typed_vs_future.dir/bench_typed_vs_future.cpp.o.d"
  "bench_typed_vs_future"
  "bench_typed_vs_future.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_typed_vs_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
