# Empty compiler generated dependencies file for bench_grades.
# This may be replaced when dependencies are built.
