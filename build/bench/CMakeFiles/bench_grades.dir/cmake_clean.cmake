file(REMOVE_RECURSE
  "CMakeFiles/bench_grades.dir/bench_grades.cpp.o"
  "CMakeFiles/bench_grades.dir/bench_grades.cpp.o.d"
  "bench_grades"
  "bench_grades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
