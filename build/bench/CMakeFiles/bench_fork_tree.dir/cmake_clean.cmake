file(REMOVE_RECURSE
  "CMakeFiles/bench_fork_tree.dir/bench_fork_tree.cpp.o"
  "CMakeFiles/bench_fork_tree.dir/bench_fork_tree.cpp.o.d"
  "bench_fork_tree"
  "bench_fork_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fork_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
