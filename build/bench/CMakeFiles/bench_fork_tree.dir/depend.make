# Empty dependencies file for bench_fork_tree.
# This may be replaced when dependencies are built.
