# Empty compiler generated dependencies file for bench_flush_synch.
# This may be replaced when dependencies are built.
