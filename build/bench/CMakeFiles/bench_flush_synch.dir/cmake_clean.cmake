file(REMOVE_RECURSE
  "CMakeFiles/bench_flush_synch.dir/bench_flush_synch.cpp.o"
  "CMakeFiles/bench_flush_synch.dir/bench_flush_synch.cpp.o.d"
  "bench_flush_synch"
  "bench_flush_synch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flush_synch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
