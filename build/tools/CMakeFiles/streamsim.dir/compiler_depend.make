# Empty compiler generated dependencies file for streamsim.
# This may be replaced when dependencies are built.
