file(REMOVE_RECURSE
  "CMakeFiles/streamsim.dir/streamsim.cpp.o"
  "CMakeFiles/streamsim.dir/streamsim.cpp.o.d"
  "streamsim"
  "streamsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
