# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_streamsim_stream "/root/repo/build/tools/streamsim" "--calls" "64" "--mode" "stream" "--loss" "0.2")
set_tests_properties(tool_streamsim_stream PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_streamsim_rpc "/root/repo/build/tools/streamsim" "--calls" "16" "--mode" "rpc")
set_tests_properties(tool_streamsim_rpc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_streamsim_send "/root/repo/build/tools/streamsim" "--calls" "32" "--mode" "send")
set_tests_properties(tool_streamsim_send PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_streamsim_crash "/root/repo/build/tools/streamsim" "--calls" "64" "--mode" "stream" "--crash-at-ms" "2")
set_tests_properties(tool_streamsim_crash PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
