# Empty dependencies file for promises_actions.
# This may be replaced when dependencies are built.
