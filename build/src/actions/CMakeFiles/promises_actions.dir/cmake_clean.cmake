file(REMOVE_RECURSE
  "CMakeFiles/promises_actions.dir/Action.cpp.o"
  "CMakeFiles/promises_actions.dir/Action.cpp.o.d"
  "libpromises_actions.a"
  "libpromises_actions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
