file(REMOVE_RECURSE
  "libpromises_actions.a"
)
