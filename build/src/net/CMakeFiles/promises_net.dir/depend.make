# Empty dependencies file for promises_net.
# This may be replaced when dependencies are built.
