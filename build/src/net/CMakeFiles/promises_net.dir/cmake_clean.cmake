file(REMOVE_RECURSE
  "CMakeFiles/promises_net.dir/Network.cpp.o"
  "CMakeFiles/promises_net.dir/Network.cpp.o.d"
  "libpromises_net.a"
  "libpromises_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
