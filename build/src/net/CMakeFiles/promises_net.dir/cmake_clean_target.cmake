file(REMOVE_RECURSE
  "libpromises_net.a"
)
