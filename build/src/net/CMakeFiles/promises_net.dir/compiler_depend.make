# Empty compiler generated dependencies file for promises_net.
# This may be replaced when dependencies are built.
