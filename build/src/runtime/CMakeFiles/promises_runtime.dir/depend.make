# Empty dependencies file for promises_runtime.
# This may be replaced when dependencies are built.
