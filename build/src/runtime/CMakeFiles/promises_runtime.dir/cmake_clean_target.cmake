file(REMOVE_RECURSE
  "libpromises_runtime.a"
)
