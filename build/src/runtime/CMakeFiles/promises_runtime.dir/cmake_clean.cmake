file(REMOVE_RECURSE
  "CMakeFiles/promises_runtime.dir/Guardian.cpp.o"
  "CMakeFiles/promises_runtime.dir/Guardian.cpp.o.d"
  "libpromises_runtime.a"
  "libpromises_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
