# Empty dependencies file for promises_apps.
# This may be replaced when dependencies are built.
