file(REMOVE_RECURSE
  "libpromises_apps.a"
)
