file(REMOVE_RECURSE
  "CMakeFiles/promises_apps.dir/GradesDb.cpp.o"
  "CMakeFiles/promises_apps.dir/GradesDb.cpp.o.d"
  "CMakeFiles/promises_apps.dir/KvStore.cpp.o"
  "CMakeFiles/promises_apps.dir/KvStore.cpp.o.d"
  "CMakeFiles/promises_apps.dir/Mailer.cpp.o"
  "CMakeFiles/promises_apps.dir/Mailer.cpp.o.d"
  "CMakeFiles/promises_apps.dir/Printer.cpp.o"
  "CMakeFiles/promises_apps.dir/Printer.cpp.o.d"
  "CMakeFiles/promises_apps.dir/TwoPhase.cpp.o"
  "CMakeFiles/promises_apps.dir/TwoPhase.cpp.o.d"
  "CMakeFiles/promises_apps.dir/WindowSystem.cpp.o"
  "CMakeFiles/promises_apps.dir/WindowSystem.cpp.o.d"
  "libpromises_apps.a"
  "libpromises_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
