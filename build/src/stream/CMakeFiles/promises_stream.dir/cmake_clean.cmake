file(REMOVE_RECURSE
  "CMakeFiles/promises_stream.dir/StreamTransport.cpp.o"
  "CMakeFiles/promises_stream.dir/StreamTransport.cpp.o.d"
  "libpromises_stream.a"
  "libpromises_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
