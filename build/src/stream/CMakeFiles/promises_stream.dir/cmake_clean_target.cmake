file(REMOVE_RECURSE
  "libpromises_stream.a"
)
