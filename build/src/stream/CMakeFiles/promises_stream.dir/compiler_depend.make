# Empty compiler generated dependencies file for promises_stream.
# This may be replaced when dependencies are built.
