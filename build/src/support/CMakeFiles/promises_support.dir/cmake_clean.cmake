file(REMOVE_RECURSE
  "CMakeFiles/promises_support.dir/StrUtil.cpp.o"
  "CMakeFiles/promises_support.dir/StrUtil.cpp.o.d"
  "CMakeFiles/promises_support.dir/Trace.cpp.o"
  "CMakeFiles/promises_support.dir/Trace.cpp.o.d"
  "libpromises_support.a"
  "libpromises_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
