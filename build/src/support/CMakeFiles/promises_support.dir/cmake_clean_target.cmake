file(REMOVE_RECURSE
  "libpromises_support.a"
)
