# Empty dependencies file for promises_support.
# This may be replaced when dependencies are built.
