file(REMOVE_RECURSE
  "CMakeFiles/promises_core.dir/Coenter.cpp.o"
  "CMakeFiles/promises_core.dir/Coenter.cpp.o.d"
  "libpromises_core.a"
  "libpromises_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
