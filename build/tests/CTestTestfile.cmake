# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_parallel_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/support_trace_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_orphan_test[1]_include.cmake")
include("/root/repo/build/tests/actions_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_signatures_test[1]_include.cmake")
