file(REMOVE_RECURSE
  "CMakeFiles/runtime_signatures_test.dir/runtime_signatures_test.cpp.o"
  "CMakeFiles/runtime_signatures_test.dir/runtime_signatures_test.cpp.o.d"
  "runtime_signatures_test"
  "runtime_signatures_test.pdb"
  "runtime_signatures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_signatures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
