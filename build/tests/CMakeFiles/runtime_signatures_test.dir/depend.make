# Empty dependencies file for runtime_signatures_test.
# This may be replaced when dependencies are built.
