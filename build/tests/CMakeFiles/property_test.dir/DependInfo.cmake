
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_actions_test.cpp" "tests/CMakeFiles/property_test.dir/property_actions_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property_actions_test.cpp.o.d"
  "/root/repo/tests/property_sim_test.cpp" "tests/CMakeFiles/property_test.dir/property_sim_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property_sim_test.cpp.o.d"
  "/root/repo/tests/property_stream_test.cpp" "tests/CMakeFiles/property_test.dir/property_stream_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property_stream_test.cpp.o.d"
  "/root/repo/tests/property_twophase_test.cpp" "tests/CMakeFiles/property_test.dir/property_twophase_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property_twophase_test.cpp.o.d"
  "/root/repo/tests/property_wire_test.cpp" "tests/CMakeFiles/property_test.dir/property_wire_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property_wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/promises_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/actions/CMakeFiles/promises_actions.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/promises_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/promises_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/promises_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/promises_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/promises_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/promises_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
