file(REMOVE_RECURSE
  "CMakeFiles/runtime_parallel_test.dir/runtime_parallel_test.cpp.o"
  "CMakeFiles/runtime_parallel_test.dir/runtime_parallel_test.cpp.o.d"
  "runtime_parallel_test"
  "runtime_parallel_test.pdb"
  "runtime_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
