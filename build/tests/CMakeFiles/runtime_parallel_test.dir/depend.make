# Empty dependencies file for runtime_parallel_test.
# This may be replaced when dependencies are built.
