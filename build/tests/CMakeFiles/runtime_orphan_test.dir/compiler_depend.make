# Empty compiler generated dependencies file for runtime_orphan_test.
# This may be replaced when dependencies are built.
