file(REMOVE_RECURSE
  "CMakeFiles/runtime_orphan_test.dir/runtime_orphan_test.cpp.o"
  "CMakeFiles/runtime_orphan_test.dir/runtime_orphan_test.cpp.o.d"
  "runtime_orphan_test"
  "runtime_orphan_test.pdb"
  "runtime_orphan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_orphan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
