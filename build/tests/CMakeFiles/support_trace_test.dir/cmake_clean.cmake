file(REMOVE_RECURSE
  "CMakeFiles/support_trace_test.dir/support_trace_test.cpp.o"
  "CMakeFiles/support_trace_test.dir/support_trace_test.cpp.o.d"
  "support_trace_test"
  "support_trace_test.pdb"
  "support_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
