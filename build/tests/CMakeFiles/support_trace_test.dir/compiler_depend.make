# Empty compiler generated dependencies file for support_trace_test.
# This may be replaced when dependencies are built.
