# Empty compiler generated dependencies file for windows.
# This may be replaced when dependencies are built.
