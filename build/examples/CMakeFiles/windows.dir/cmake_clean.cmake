file(REMOVE_RECURSE
  "CMakeFiles/windows.dir/windows.cpp.o"
  "CMakeFiles/windows.dir/windows.cpp.o.d"
  "windows"
  "windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
