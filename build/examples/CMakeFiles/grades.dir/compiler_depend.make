# Empty compiler generated dependencies file for grades.
# This may be replaced when dependencies are built.
