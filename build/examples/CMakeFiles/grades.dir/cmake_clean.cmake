file(REMOVE_RECURSE
  "CMakeFiles/grades.dir/grades.cpp.o"
  "CMakeFiles/grades.dir/grades.cpp.o.d"
  "grades"
  "grades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
