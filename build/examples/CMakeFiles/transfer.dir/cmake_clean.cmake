file(REMOVE_RECURSE
  "CMakeFiles/transfer.dir/transfer.cpp.o"
  "CMakeFiles/transfer.dir/transfer.cpp.o.d"
  "transfer"
  "transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
