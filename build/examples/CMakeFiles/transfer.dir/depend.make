# Empty dependencies file for transfer.
# This may be replaced when dependencies are built.
