file(REMOVE_RECURSE
  "CMakeFiles/futures_vs_promises.dir/futures_vs_promises.cpp.o"
  "CMakeFiles/futures_vs_promises.dir/futures_vs_promises.cpp.o.d"
  "futures_vs_promises"
  "futures_vs_promises.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futures_vs_promises.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
