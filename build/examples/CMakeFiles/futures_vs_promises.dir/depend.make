# Empty dependencies file for futures_vs_promises.
# This may be replaced when dependencies are built.
