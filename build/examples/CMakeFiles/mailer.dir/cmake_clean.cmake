file(REMOVE_RECURSE
  "CMakeFiles/mailer.dir/mailer.cpp.o"
  "CMakeFiles/mailer.dir/mailer.cpp.o.d"
  "mailer"
  "mailer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mailer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
