# Empty dependencies file for mailer.
# This may be replaced when dependencies are built.
