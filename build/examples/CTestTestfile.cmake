# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;8;promises_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_grades "/root/repo/build/examples/grades")
set_tests_properties(example_grades PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;9;promises_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline "/root/repo/build/examples/pipeline")
set_tests_properties(example_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;10;promises_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mailer "/root/repo/build/examples/mailer")
set_tests_properties(example_mailer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;11;promises_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_windows "/root/repo/build/examples/windows")
set_tests_properties(example_windows PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;12;promises_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transfer "/root/repo/build/examples/transfer")
set_tests_properties(example_transfer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;13;promises_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_futures_vs_promises "/root/repo/build/examples/futures_vs_promises")
set_tests_properties(example_futures_vs_promises PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;14;promises_example;/root/repo/examples/CMakeLists.txt;0;")
