//===- sim_simulation_test.cpp - Kernel unit tests ------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/sim/Simulation.h"

#include <gtest/gtest.h>

#include <vector>

using namespace promises::sim;

namespace {

TEST(Simulation, StartsAtTimeZero) {
  Simulation S;
  EXPECT_EQ(S.now(), 0u);
}

TEST(Simulation, RunWithNoProcessesReturnsImmediately) {
  Simulation S;
  S.run();
  EXPECT_EQ(S.now(), 0u);
}

TEST(Simulation, ProcessBodyRuns) {
  Simulation S;
  bool Ran = false;
  S.spawn("p", [&] { Ran = true; });
  S.run();
  EXPECT_TRUE(Ran);
}

TEST(Simulation, SleepAdvancesVirtualTime) {
  Simulation S;
  Time Observed = 0;
  S.spawn("p", [&] {
    S.sleep(msec(5));
    Observed = S.now();
  });
  S.run();
  EXPECT_EQ(Observed, msec(5));
  EXPECT_EQ(S.now(), msec(5));
}

TEST(Simulation, NestedSleepsAccumulate) {
  Simulation S;
  S.spawn("p", [&] {
    S.sleep(usec(100));
    S.sleep(usec(250));
    S.sleep(nsec(7));
  });
  S.run();
  EXPECT_EQ(S.now(), usec(350) + nsec(7));
}

TEST(Simulation, ProcessesInterleaveDeterministically) {
  Simulation S;
  std::vector<int> Order;
  S.spawn("a", [&] {
    Order.push_back(1);
    S.sleep(msec(2));
    Order.push_back(3);
  });
  S.spawn("b", [&] {
    Order.push_back(2);
    S.sleep(msec(1));
    Order.push_back(4); // Wakes at 1ms, before a's 2ms.
    S.sleep(msec(2));
    Order.push_back(5); // 3ms.
  });
  S.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 4, 3, 5}));
}

TEST(Simulation, SpawnOrderBreaksTimeTies) {
  // Two processes woken at the same instant run in schedule order.
  Simulation S;
  std::vector<int> Order;
  S.spawn("a", [&] {
    S.sleep(msec(1));
    Order.push_back(1);
  });
  S.spawn("b", [&] {
    S.sleep(msec(1));
    Order.push_back(2);
  });
  S.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2}));
}

TEST(Simulation, YieldNowLetsPeersRunWithoutAdvancingTime) {
  Simulation S;
  std::vector<int> Order;
  S.spawn("a", [&] {
    Order.push_back(1);
    S.yieldNow();
    Order.push_back(3);
    EXPECT_EQ(S.now(), 0u);
  });
  S.spawn("b", [&] { Order.push_back(2); });
  S.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, ScheduledCallbackRunsAtRequestedTime) {
  Simulation S;
  Time Fired = 0;
  S.schedule(msec(10), [&] { Fired = S.now(); });
  S.run();
  EXPECT_EQ(Fired, msec(10));
}

TEST(Simulation, CancelledCallbackDoesNotRun) {
  Simulation S;
  bool Fired = false;
  uint64_t Id = S.schedule(msec(10), [&] { Fired = true; });
  S.cancel(Id);
  S.run();
  EXPECT_FALSE(Fired);
  EXPECT_EQ(S.now(), 0u); // The cancelled event does not advance the clock.
}

TEST(Simulation, RunForStopsAtHorizon) {
  Simulation S;
  int Fired = 0;
  S.schedule(msec(1), [&] { ++Fired; });
  S.schedule(msec(5), [&] { ++Fired; });
  EXPECT_TRUE(S.runFor(msec(2)));
  EXPECT_EQ(Fired, 1);
  EXPECT_EQ(S.now(), msec(2));
  EXPECT_FALSE(S.runFor(msec(10)));
  EXPECT_EQ(Fired, 2);
  EXPECT_EQ(S.now(), msec(12));
}

TEST(Simulation, StopEndsRunEarly) {
  Simulation S;
  int Fired = 0;
  S.schedule(msec(1), [&] {
    ++Fired;
    S.stop();
  });
  S.schedule(msec(2), [&] { ++Fired; });
  S.run();
  EXPECT_EQ(Fired, 1);
  S.run(); // Resumes where it left off.
  EXPECT_EQ(Fired, 2);
}

TEST(Simulation, JoinWaitsForCompletion) {
  Simulation S;
  std::vector<int> Order;
  auto Child = S.spawn("child", [&] {
    S.sleep(msec(3));
    Order.push_back(1);
  });
  S.spawn("parent", [&] {
    S.join(Child);
    Order.push_back(2);
    EXPECT_EQ(S.now(), msec(3));
  });
  S.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2}));
}

TEST(Simulation, JoinOnFinishedProcessReturnsImmediately) {
  Simulation S;
  auto Child = S.spawn("child", [] {});
  bool Joined = false;
  S.spawn("parent", [&] {
    S.sleep(msec(1)); // Child has long finished.
    S.join(Child);
    Joined = true;
  });
  S.run();
  EXPECT_TRUE(Joined);
}

TEST(Simulation, MultipleJoinersAllWake) {
  Simulation S;
  auto Child = S.spawn("child", [&] { S.sleep(msec(1)); });
  int Joined = 0;
  for (int I = 0; I < 3; ++I)
    S.spawn("j", [&] {
      S.join(Child);
      ++Joined;
    });
  S.run();
  EXPECT_EQ(Joined, 3);
}

TEST(Simulation, CurrentIsNullInSchedulerContext) {
  Simulation S;
  EXPECT_EQ(Simulation::current(), nullptr);
  Process *Seen = reinterpret_cast<Process *>(1);
  S.schedule(msec(1), [&] { Seen = Simulation::current(); });
  S.run();
  EXPECT_EQ(Seen, nullptr);
}

TEST(Simulation, CurrentIsSetInsideProcess) {
  Simulation S;
  ProcessHandle H;
  Process *Seen = nullptr;
  H = S.spawn("me", [&] { Seen = Simulation::current(); });
  S.run();
  EXPECT_EQ(Seen, H.get());
  EXPECT_EQ(H->name(), "me");
}

TEST(Simulation, SpawnFromWithinProcess) {
  Simulation S;
  std::vector<int> Order;
  S.spawn("outer", [&] {
    Order.push_back(1);
    auto Inner = S.spawn("inner", [&] { Order.push_back(2); });
    S.join(Inner);
    Order.push_back(3);
  });
  S.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, WaitQueueNotifyOneWakesFifo) {
  Simulation S;
  WaitQueue Q(S);
  std::vector<int> Woken;
  for (int I = 0; I < 3; ++I)
    S.spawn("w", [&, I] {
      Q.wait();
      Woken.push_back(I);
    });
  S.spawn("notifier", [&] {
    S.sleep(msec(1));
    Q.notifyOne();
    S.sleep(msec(1));
    Q.notifyOne();
    S.sleep(msec(1));
    Q.notifyOne();
  });
  S.run();
  EXPECT_EQ(Woken, (std::vector<int>{0, 1, 2}));
}

TEST(Simulation, WaitQueueNotifyAllWakesEveryone) {
  Simulation S;
  WaitQueue Q(S);
  int Woken = 0;
  for (int I = 0; I < 5; ++I)
    S.spawn("w", [&] {
      Q.wait();
      ++Woken;
    });
  S.spawn("notifier", [&] {
    S.sleep(msec(1));
    EXPECT_EQ(Q.waiterCount(), 5u);
    Q.notifyAll();
  });
  S.run();
  EXPECT_EQ(Woken, 5);
}

TEST(Simulation, WaitForTimesOut) {
  Simulation S;
  WaitQueue Q(S);
  bool Notified = true;
  S.spawn("w", [&] {
    Notified = Q.waitFor(msec(2));
    EXPECT_EQ(S.now(), msec(2));
  });
  S.run();
  EXPECT_FALSE(Notified);
}

TEST(Simulation, WaitForSeesNotifyBeforeTimeout) {
  Simulation S;
  WaitQueue Q(S);
  bool Notified = false;
  S.spawn("w", [&] {
    Notified = Q.waitFor(msec(10));
    EXPECT_EQ(S.now(), msec(1));
  });
  S.spawn("n", [&] {
    S.sleep(msec(1));
    Q.notifyOne();
  });
  S.run();
  EXPECT_TRUE(Notified);
}

TEST(Simulation, StaleTimeoutDoesNotWakeLaterWait) {
  // A process that times out of one wait and immediately waits again must
  // not be woken by any artifact of the first wait.
  Simulation S;
  WaitQueue Q(S);
  int Wakeups = 0;
  S.spawn("w", [&] {
    EXPECT_FALSE(Q.waitFor(msec(1)));
    ++Wakeups;
    EXPECT_FALSE(Q.waitFor(msec(5)));
    ++Wakeups;
    EXPECT_EQ(S.now(), msec(6));
  });
  S.run();
  EXPECT_EQ(Wakeups, 2);
}

TEST(Simulation, KillWakesBlockedProcess) {
  Simulation S;
  WaitQueue Q(S);
  bool ReachedEnd = false;
  auto Victim = S.spawn("victim", [&] {
    Q.wait();
    ReachedEnd = true;
  });
  S.spawn("killer", [&] {
    S.sleep(msec(1));
    S.kill(Victim);
  });
  S.run();
  EXPECT_FALSE(ReachedEnd);
  EXPECT_TRUE(Victim->finished());
  EXPECT_EQ(Q.waiterCount(), 0u);
}

TEST(Simulation, KillBeforeFirstRunPreventsBody) {
  Simulation S;
  bool Ran = false;
  // Spawn and kill before the event loop ever runs the process.
  auto Victim = S.spawn("victim", [&] { Ran = true; });
  S.kill(Victim);
  S.run();
  EXPECT_FALSE(Ran);
  EXPECT_TRUE(Victim->finished());
}

TEST(Simulation, KillRunningProcessDeliversAtNextBlockingPoint) {
  Simulation S;
  std::vector<int> Trace;
  ProcessHandle Victim;
  Victim = S.spawn("victim", [&] {
    Trace.push_back(1);
    S.sleep(msec(5)); // Killed during this sleep.
    Trace.push_back(2);
  });
  S.spawn("killer", [&] {
    S.sleep(msec(1));
    S.kill(Victim);
  });
  S.run();
  EXPECT_EQ(Trace, (std::vector<int>{1}));
  EXPECT_TRUE(Victim->finished());
  EXPECT_LE(S.now(), msec(5)); // Victim did not sleep to completion.
}

TEST(Simulation, KillDeferredInsideCriticalSection) {
  Simulation S;
  std::vector<int> Trace;
  WaitQueue Q(S);
  ProcessHandle Victim;
  Victim = S.spawn("victim", [&] {
    {
      CriticalSection Cs;
      Trace.push_back(1);
      Q.waitFor(msec(10)); // Blocked inside the critical section.
      Trace.push_back(2);  // Still runs: kill deferred.
    }
    Trace.push_back(3); // Never runs: kill delivered at section exit.
  });
  S.spawn("killer", [&] {
    S.sleep(msec(1));
    S.kill(Victim);
    EXPECT_FALSE(Victim->finished()); // Deferred, not instant.
  });
  S.run();
  EXPECT_EQ(Trace, (std::vector<int>{1, 2}));
  EXPECT_TRUE(Victim->finished());
}

TEST(Simulation, NestedCriticalSectionsDeferUntilOutermostExit) {
  Simulation S;
  std::vector<int> Trace;
  ProcessHandle Victim;
  Victim = S.spawn("victim", [&] {
    CriticalSection Outer;
    {
      CriticalSection Inner;
      S.sleep(msec(5)); // Killed here; deferred (depth 2).
      Trace.push_back(1);
    }
    // Depth back to 1: still deferred.
    Trace.push_back(2);
    S.sleep(msec(1)); // Blocking point at depth 1: still deferred.
    Trace.push_back(3);
  });
  S.spawn("killer", [&] {
    S.sleep(msec(1));
    S.kill(Victim);
  });
  S.run();
  EXPECT_EQ(Trace, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(Victim->finished());
}

TEST(Simulation, WoundMarksWithoutTerminating) {
  Simulation S;
  ProcessHandle Victim;
  bool SawWound = false;
  bool Completed = false;
  Victim = S.spawn("victim", [&] {
    S.sleep(msec(5));
    SawWound = Victim->wounded();
    Completed = true;
  });
  S.spawn("wounder", [&] {
    S.sleep(msec(1));
    S.wound(Victim);
  });
  S.run();
  EXPECT_TRUE(SawWound);
  EXPECT_TRUE(Completed);
}

TEST(Simulation, KillFinishedProcessIsNoop) {
  Simulation S;
  auto P = S.spawn("p", [] {});
  S.run();
  EXPECT_TRUE(P->finished());
  S.kill(P); // Must not crash or revive.
  S.run();
  EXPECT_TRUE(P->finished());
}

TEST(Simulation, JoinerWakesWhenJoineeIsKilled) {
  Simulation S;
  WaitQueue Forever(S);
  auto Victim = S.spawn("victim", [&] { Forever.wait(); });
  bool Joined = false;
  S.spawn("parent", [&] {
    S.join(Victim);
    Joined = true;
  });
  S.spawn("killer", [&] {
    S.sleep(msec(1));
    S.kill(Victim);
  });
  S.run();
  EXPECT_TRUE(Joined);
}

TEST(Simulation, DestructorReapsBlockedProcesses) {
  // A Simulation with deadlocked processes must destruct cleanly.
  auto S = std::make_unique<Simulation>();
  WaitQueue Q(*S);
  for (int I = 0; I < 4; ++I)
    S->spawn("stuck", [&] { Q.wait(); });
  S->run();
  EXPECT_EQ(S->liveProcessCount(), 4u);
  S.reset(); // Must not hang or crash.
}

TEST(Simulation, DestructorReapsProcessesInCriticalSections) {
  auto S = std::make_unique<Simulation>();
  WaitQueue Q(*S);
  S->spawn("stuck", [&] {
    CriticalSection Cs;
    Q.wait();
  });
  S->run();
  S.reset(); // Shutdown overrides critical-section deferral.
}

TEST(Simulation, ContextSwitchesAreCounted) {
  Simulation S;
  EXPECT_EQ(S.contextSwitches(), 0u);
  S.spawn("a", [&] { S.sleep(msec(1)); });
  S.run();
  // One switch to start the process, one to resume it after the sleep.
  EXPECT_EQ(S.contextSwitches(), 2u);
}

TEST(Simulation, ManyProcessesRunToCompletion) {
  Simulation S;
  int Done = 0;
  for (int I = 0; I < 200; ++I)
    S.spawn("p", [&, I] {
      S.sleep(usec(static_cast<uint64_t>(I) % 17));
      ++Done;
    });
  S.run();
  EXPECT_EQ(Done, 200);
  EXPECT_EQ(S.liveProcessCount(), 0u);
}

} // namespace
