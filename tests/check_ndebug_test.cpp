//===- check_ndebug_test.cpp - PROMISES_CHECK under NDEBUG ----------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// The assertion-hole regression test: this binary is compiled with NDEBUG
// defined (see tests/CMakeLists.txt), so every plain assert() in the
// library is stripped — exactly the configuration a release deployment
// ships. The invariants promoted to PROMISES_CHECK must still abort here:
// before the sweep, a failed encode in such a build silently sealed and
// sent a garbage frame.
//
//===----------------------------------------------------------------------===//

#ifndef NDEBUG
#error "check_ndebug_test must be compiled with NDEBUG (see CMakeLists.txt)"
#endif

#include "promises/stream/Messages.h"
#include "promises/support/Check.h"
#include "promises/wire/Encoder.h"
#include "promises/wire/Frame.h"

#include <gtest/gtest.h>

using namespace promises;

namespace {

stream::Message callBatchWithArgBytes(size_t N) {
  stream::CallBatchMsg M;
  M.Agent = 1;
  M.Group = 1;
  M.Inc = 1;
  stream::CallReq C;
  C.S = 1;
  C.Port = 1;
  C.Args = wire::Bytes(N, 0x55);
  M.Calls.push_back(std::move(C));
  return M;
}

} // namespace

TEST(CheckNDebug, MacroItselfSurvivesNDebug) {
  // assert() is dead in this translation unit; PROMISES_CHECK is not.
  EXPECT_DEATH(PROMISES_CHECK(false, "must fire under NDEBUG"),
               "PROMISES_CHECK failed: must fire under NDEBUG");
  PROMISES_CHECK(true, "passing check is silent");
}

TEST(CheckNDebug, OversizedArgsAbortInsteadOfSealingGarbage) {
  // Args one byte over MaxStringBytes makes Encoder::writeBytes fail the
  // encoder. In the pre-sweep code the guard was a bare assert: under
  // NDEBUG the transport went on to seal and send the half-written frame.
  stream::Message M = callBatchWithArgBytes(wire::MaxStringBytes + 1);
  EXPECT_DEATH((void)stream::encodeFramedMessage(M, true),
               "PROMISES_CHECK failed: stream messages must always encode");
  EXPECT_DEATH((void)stream::encodeMessage(M),
               "PROMISES_CHECK failed: stream messages must always encode");
}

TEST(CheckNDebug, FrameLimitOverflowAbortsInsteadOfSealingGarbage) {
  // Each byte sequence is within MaxStringBytes, but batch framing
  // overhead pushes the total payload past MaxFramePayloadBytes, so the
  // failure surfaces in finishFrame() rather than writeBytes().
  stream::Message M = callBatchWithArgBytes(wire::MaxStringBytes);
  EXPECT_DEATH((void)stream::encodeFramedMessage(M, true),
               "PROMISES_CHECK failed: stream message exceeds the frame limit");
}

TEST(CheckNDebug, InBoundsMessageStillEncodes) {
  // Control: a payload comfortably inside both limits seals fine with
  // NDEBUG defined, proving the checks are branches, not build-mode traps.
  stream::Message M = callBatchWithArgBytes(1024);
  wire::Bytes F = stream::encodeFramedMessage(M, true);
  auto Payload = wire::openFrame(F, true);
  ASSERT_TRUE(Payload.has_value());
  auto Decoded = stream::decodeMessage(*Payload);
  ASSERT_TRUE(Decoded.has_value());
  EXPECT_TRUE(*Decoded == M);
}
