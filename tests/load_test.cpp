//===- load_test.cpp - Open-loop workload generation ----------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The workload subsystem (docs/WORKLOADS.md): the scenario catalogue and
// its graceful-degradation battery, the open-loop arrival processes, the
// shed-exempt priority-admission mechanism, and determinism of runs.
//
//===----------------------------------------------------------------------===//

#include "promises/load/Load.h"
#include "promises/runtime/RemoteHandler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

using namespace promises;
using namespace promises::load;

namespace {

LoadOptions optionsFor(const char *Scenario, uint64_t Seed = 1) {
  const LoadScenario *Sc = LoadScenario::byName(Scenario);
  EXPECT_NE(Sc, nullptr) << Scenario;
  LoadOptions O;
  O.Seed = Seed;
  O.Scenario = *Sc;
  return O;
}

std::string violations(const LoadReport &R) {
  std::string S;
  for (const std::string &V : R.Violations)
    S += V + "\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Catalogue
//===----------------------------------------------------------------------===//

TEST(LoadCatalogue, NamesAreUniqueAndResolvable) {
  auto Names = LoadScenario::names();
  EXPECT_GE(Names.size(), 6u);
  for (const std::string &N : Names) {
    const LoadScenario *Sc = LoadScenario::byName(N);
    ASSERT_NE(Sc, nullptr);
    EXPECT_EQ(Sc->Name, N);
    EXPECT_FALSE(Sc->Summary.empty());
    EXPECT_FALSE(Sc->Tenants.empty());
  }
  auto Sorted = Names;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  EXPECT_EQ(LoadScenario::byName("no-such-scenario"), nullptr);
}

//===----------------------------------------------------------------------===//
// The storm battery (the tentpole invariants)
//===----------------------------------------------------------------------===//

TEST(LoadBattery, SteadyStateHoldsSlosWithoutShedding) {
  LoadReport R = runLoad(optionsFor("steady"));
  EXPECT_TRUE(R.ok()) << violations(R);
  // Well under capacity: goodput is offered load, sheds are incidental.
  EXPECT_GT(R.Normal, R.Offered * 95 / 100);
  for (const TenantReport &T : R.Tenants) {
    EXPECT_TRUE(T.SloChecked) << T.Name;
    EXPECT_TRUE(T.SloOk) << T.Name;
  }
}

TEST(LoadBattery, StormShedsButGoodputHoldsTheFloor) {
  LoadOptions O = optionsFor("storm");
  LoadReport R = runLoad(O);
  EXPECT_TRUE(R.ok()) << violations(R);
  // The storm doubles offered load past capacity: real shedding happens,
  // yet overload-window goodput stays above the configured floor of the
  // base window (no congestion collapse).
  EXPECT_GT(R.Shed, 0u);
  EXPECT_GE(R.GoodputRatio, O.Scenario.GoodputFloor);
  // Cheap rejection: every shed happened before execution, so executions
  // account for exactly the normal completions.
  EXPECT_EQ(R.Executions, R.Normal);
}

TEST(LoadBattery, TenantIsolationHoldsUnderNoisyNeighbor) {
  LoadReport R = runLoad(optionsFor("tenants"));
  EXPECT_TRUE(R.ok()) << violations(R);
  const TenantReport *Noisy = nullptr, *Paying = nullptr;
  for (const TenantReport &T : R.Tenants) {
    if (T.Name == "noisy")
      Noisy = &T;
    if (T.Name == "paying")
      Paying = &T;
  }
  ASSERT_NE(Noisy, nullptr);
  ASSERT_NE(Paying, nullptr);
  // The per-stream quota confines the storm to the noisy tenant: it gets
  // shed hard, while the compliant tenant keeps its SLO and throughput.
  EXPECT_GT(Noisy->Shed, Noisy->Offered / 4);
  EXPECT_TRUE(Paying->SloChecked);
  EXPECT_TRUE(Paying->SloOk);
  EXPECT_GE(Paying->Normal, Paying->Completed * 9 / 10);
}

TEST(LoadBattery, NewOrderStormStrandsNoLocks) {
  LoadReport R = runLoad(optionsFor("neworder"));
  // The battery itself checks Txns/Locks emptiness, commit conservation,
  // and InDoubt == 0; a violation here means overload stranded 2PC state.
  EXPECT_TRUE(R.ok()) << violations(R);
  EXPECT_GT(R.Normal, 0u);
}

TEST(LoadBattery, ChaosBatteryPassesDuringStorm) {
  LoadReport R = runLoad(optionsFor("chaos-storm"));
  EXPECT_TRUE(R.ok()) << violations(R);
  // The plan actually exercised faults while the storm ran.
  EXPECT_GT(R.Crashes + R.Shutdowns + R.Partitions + R.LossBursts, 0u);
}

TEST(LoadBattery, RetryVolumeStaysInsideBudget) {
  LoadReport R = runLoad(optionsFor("spike"));
  EXPECT_TRUE(R.ok()) << violations(R);
  // Deadlines and retries are on: some retries fire, but the battery's
  // token-bucket bound (checked inside runLoad) holds. Sanity-check the
  // aggregates made it out.
  EXPECT_GT(R.Expired + R.Shed, 0u);
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(LoadDeterminism, SameOptionsSameTraceAndReport) {
  LoadOptions O = optionsFor("storm", 7);
  LoadReport A = runLoad(O);
  LoadReport B = runLoad(O);
  EXPECT_EQ(A.TraceHash, B.TraceHash);
  EXPECT_EQ(A.TraceEvents, B.TraceEvents);
  EXPECT_EQ(A.Offered, B.Offered);
  EXPECT_EQ(A.Normal, B.Normal);
  EXPECT_EQ(A.Shed, B.Shed);
  EXPECT_EQ(A.VirtualEnd, B.VirtualEnd);
}

TEST(LoadDeterminism, DifferentSeedsDiffer) {
  LoadReport A = runLoad(optionsFor("storm", 1));
  LoadReport B = runLoad(optionsFor("storm", 2));
  EXPECT_NE(A.TraceHash, B.TraceHash);
}

TEST(LoadDeterminism, ReplayCommandNamesTheRun) {
  LoadOptions O = optionsFor("tenants", 42);
  O.RateScale = 0.5;
  std::string Cmd = replayCommand(O);
  EXPECT_NE(Cmd.find("--scenario tenants"), std::string::npos) << Cmd;
  EXPECT_NE(Cmd.find("--seed 42"), std::string::npos) << Cmd;
  EXPECT_NE(Cmd.find("--rate-scale 0.5"), std::string::npos) << Cmd;
}

TEST(LoadBench, JsonCarriesTheGate) {
  LoadOptions O = optionsFor("storm");
  LoadReport R = runLoad(O);
  std::string J = benchJson(O, R);
  EXPECT_NE(J.find("\"bench\": \"bench_overload\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"goodput_ratio\""), std::string::npos);
  EXPECT_NE(J.find("\"battery_violations\": 0"), std::string::npos) << J;
  EXPECT_NE(J.find("\"tenants\": ["), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Arrival processes (open-loop math)
//===----------------------------------------------------------------------===//

// Runs a stripped scenario whose only purpose is counting arrivals.
uint64_t arrivalsFor(Arrival Arr, Shape Sh, double RateCps, uint64_t Seed) {
  LoadScenario Sc;
  Sc.Name = "arrival-probe";
  Sc.Duration = sim::msec(400);
  Sc.ServiceTime = 0; // Zero service: the server never pushes back.
  Sc.MaxPendingCalls = 0;
  Sc.GoodputFloor = 0;
  TenantSpec T;
  T.Name = "probe";
  T.RateCps = RateCps;
  T.Arr = Arr;
  T.Sh = Sh;
  T.DiurnalAmplitude = 0.8;
  T.StormFactor = 2.0;
  Sc.Tenants = {T};
  LoadOptions O;
  O.Seed = Seed;
  O.Scenario = Sc;
  LoadReport R = runLoad(O);
  EXPECT_TRUE(R.ok()) << violations(R);
  EXPECT_EQ(R.Offered, R.Completed);
  return R.Offered;
}

TEST(LoadArrivals, PoissonHitsTheMeanRate) {
  // 2000 cps over 400 ms => mean 800 arrivals; +-5 sigma ~ +-141.
  uint64_t N = arrivalsFor(Arrival::Poisson, Shape::Steady, 2000, 3);
  EXPECT_GT(N, 660u);
  EXPECT_LT(N, 940u);
}

TEST(LoadArrivals, ParetoHitsTheMeanRateWithBursts) {
  // The bounded Pareto keeps the same mean; the tail index only shapes
  // the gaps. Wider tolerance: heavy tails converge slowly.
  uint64_t N = arrivalsFor(Arrival::Pareto, Shape::Steady, 2000, 3);
  EXPECT_GT(N, 500u);
  EXPECT_LT(N, 1100u);
}

TEST(LoadArrivals, StepDoublesTheSecondHalf) {
  // Steady 1000 cps vs step x2 in [0.5, 1): the step run offers ~1.5x.
  uint64_t Flat = arrivalsFor(Arrival::Poisson, Shape::Steady, 1000, 5);
  uint64_t Step = arrivalsFor(Arrival::Poisson, Shape::Step, 1000, 5);
  EXPECT_GT(Step, Flat * 5 / 4);
  EXPECT_LT(Step, Flat * 7 / 4);
}

TEST(LoadArrivals, DiurnalIntegratesToTheMean) {
  // sin integrates to zero over the full run: same mean as steady.
  uint64_t Flat = arrivalsFor(Arrival::Poisson, Shape::Steady, 2000, 9);
  uint64_t Day = arrivalsFor(Arrival::Poisson, Shape::Diurnal, 2000, 9);
  EXPECT_GT(Day, Flat * 4 / 5);
  EXPECT_LT(Day, Flat * 6 / 5);
}

//===----------------------------------------------------------------------===//
// Priority admission (shed-exempt ports)
//===----------------------------------------------------------------------===//

struct ShedExemptTest : ::testing::Test {
  sim::Simulation S;
  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<runtime::Guardian> Server, Client;
  runtime::HandlerRef<int32_t(int32_t)> Normal, Exempt;

  void SetUp() override {
    Net = std::make_unique<net::SimNetwork>(S, net::NetConfig{});
    net::NodeId SN = Net->addNode("server"), CN = Net->addNode("client");
    runtime::GuardianConfig GC;
    GC.MaxPendingCalls = 1;
    Server = std::make_unique<runtime::Guardian>(*Net, SN, "server", GC);
    Client = std::make_unique<runtime::Guardian>(*Net, CN, "client");
    Normal = Server->addHandler<int32_t(int32_t)>(
        "normal", [this](int32_t V) -> core::Outcome<int32_t> {
          S.sleep(sim::msec(20));
          return V;
        });
    Exempt = Server->addHandler<int32_t(int32_t)>(
        "exempt", [this](int32_t V) -> core::Outcome<int32_t> {
          S.sleep(sim::msec(1));
          return V + 100;
        });
    Server->setShedExempt(Exempt.Port);
  }
};

TEST_F(ShedExemptTest, ExemptPortAdmittedPastTheBound) {
  bool SawShed = false, ExemptOk = false;
  Client->spawnProcess("driver", [&] {
    auto A1 = Client->newAgent(), A2 = Client->newAgent(),
         A3 = Client->newAgent();
    // Fill the single admission slot with a slow call...
    auto Slow = runtime::bindHandler(*Client, A1, Normal).streamCall(1);
    S.sleep(sim::msec(5));
    // ...then a second normal call is shed, but the exempt call runs.
    auto O2 = runtime::bindHandler(*Client, A2, Normal).call(2);
    ASSERT_TRUE(O2.is<core::Unavailable>());
    EXPECT_EQ(O2.get<core::Unavailable>().Reason, core::reasons::Overloaded);
    SawShed = true;
    auto O3 = runtime::bindHandler(*Client, A3, Exempt).call(3);
    ASSERT_TRUE(O3.isNormal());
    EXPECT_EQ(O3.value(), 103);
    ExemptOk = true;
    (void)Slow.claim();
  });
  S.run();
  EXPECT_TRUE(SawShed);
  EXPECT_TRUE(ExemptOk);
  EXPECT_EQ(Server->callsShed(), 1u);
}

TEST_F(ShedExemptTest, ExemptionCanBeRevoked) {
  Server->setShedExempt(Exempt.Port, false);
  EXPECT_FALSE(Server->isShedExempt(Exempt.Port));
  bool BothShed = false;
  Client->spawnProcess("driver", [&] {
    auto A1 = Client->newAgent(), A2 = Client->newAgent();
    auto Slow = runtime::bindHandler(*Client, A1, Normal).streamCall(1);
    S.sleep(sim::msec(5));
    auto O = runtime::bindHandler(*Client, A2, Exempt).call(3);
    ASSERT_TRUE(O.is<core::Unavailable>());
    BothShed = true;
    (void)Slow.claim();
  });
  S.run();
  EXPECT_TRUE(BothShed);
}

} // namespace
