//===- chaos_test.cpp - Chaos-harness tests -------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Two layers: the harness itself (plan generation and replay must be pure
// functions of the seed; every profile's invariant battery must hold), and
// a directed recovery-path regression that pins the epoch-qualified
// address fix — retransmits addressed to a crashed incarnation must never
// execute on the incarnation that reuses its port.
//
//===----------------------------------------------------------------------===//

#include "promises/chaos/Chaos.h"
#include "promises/runtime/RemoteHandler.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>

using namespace promises;
using namespace promises::chaos;
using namespace promises::sim;

namespace {

ChaosOptions smallRun(uint64_t Seed, const ChaosProfile &P) {
  ChaosOptions O;
  O.Seed = Seed;
  O.Profile = P;
  O.OpsPerClient = 48;
  return O;
}

TEST(ChaosPlanTest, GenerationIsDeterministic) {
  ChaosOptions O = smallRun(42, ChaosProfile::mixed());
  ChaosPlan A = ChaosPlan::generate(O);
  ChaosPlan B = ChaosPlan::generate(O);
  ASSERT_FALSE(A.Actions.empty());
  ASSERT_EQ(A.Actions.size(), B.Actions.size());
  for (size_t I = 0; I < A.Actions.size(); ++I)
    EXPECT_EQ(formatAction(A.Actions[I]), formatAction(B.Actions[I]));
  // Actions come out time-sorted so the run can schedule them directly.
  for (size_t I = 1; I < A.Actions.size(); ++I)
    EXPECT_LE(A.Actions[I - 1].At, A.Actions[I].At);
}

TEST(ChaosPlanTest, DifferentSeedsGiveDifferentPlans) {
  ChaosPlan A = ChaosPlan::generate(smallRun(1, ChaosProfile::mixed()));
  ChaosPlan B = ChaosPlan::generate(smallRun(2, ChaosProfile::mixed()));
  std::string SA, SB;
  for (const ChaosAction &X : A.Actions)
    SA += formatAction(X) + "\n";
  for (const ChaosAction &X : B.Actions)
    SB += formatAction(X) + "\n";
  EXPECT_NE(SA, SB);
}

TEST(ChaosRunTest, MixedSeedsSatisfyInvariants) {
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    ChaosOptions O = smallRun(Seed, ChaosProfile::mixed());
    ChaosReport R = runChaos(O);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << ": " << R.summary()
                        << (R.Violations.empty() ? ""
                                                 : "\n  " + R.Violations[0])
                        << "\n  replay: " << replayCommand(O);
    EXPECT_EQ(R.OpsIssued, O.OpsPerClient * O.Clients);
    EXPECT_GT(R.Executions, 0u);
    // Every claimed outcome is accounted for.
    EXPECT_EQ(R.Normal + R.Unavailable + R.Failed + R.ExceptionReplies,
              R.OpsIssued - R.Sends);
  }
}

TEST(ChaosRunTest, EveryProfileSatisfiesInvariants) {
  for (const std::string &Name : ChaosProfile::names()) {
    ChaosOptions O = smallRun(9, *ChaosProfile::byName(Name));
    ChaosReport R = runChaos(O);
    EXPECT_TRUE(R.ok()) << Name << ": " << R.summary() << "\n  replay: "
                        << replayCommand(O);
  }
}

TEST(ChaosRunTest, ReplayIsByteIdentical) {
  ChaosOptions O = smallRun(11, ChaosProfile::mixed());
  ChaosReport A = runChaos(O);
  ChaosReport B = runChaos(O);
  ASSERT_TRUE(A.ok()) << A.summary();
  // The trace digest covers every structured event in emission order; two
  // equal hashes over equal-length streams mean the runs were
  // observationally identical, not merely similar.
  EXPECT_EQ(A.TraceHash, B.TraceHash);
  EXPECT_EQ(A.TraceEvents, B.TraceEvents);
  EXPECT_EQ(A.VirtualEnd, B.VirtualEnd);
  EXPECT_EQ(A.Normal, B.Normal);
  EXPECT_EQ(A.Unavailable, B.Unavailable);
  EXPECT_EQ(A.Executions, B.Executions);
  EXPECT_EQ(A.OrphansDestroyed, B.OrphansDestroyed);
  EXPECT_EQ(A.StaleEpochDrops, B.StaleEpochDrops);
}

TEST(ChaosRunTest, DeadlinesWorkloadSatisfiesInvariants) {
  // The resilience mix layers deadlines, mid-flight cancels, retry
  // policies, circuit breaking, and admission control on top of the fault
  // plan; the extra invariants (client-observed resilience outcomes
  // bounded by server-side counters, at-most-once for non-idempotent ops)
  // must hold on every seed.
  uint64_t Cancels = 0, Retries = 0;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    ChaosOptions O = smallRun(Seed, ChaosProfile::mixed());
    O.Deadlines = true;
    ChaosReport R = runChaos(O);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << ": " << R.summary()
                        << (R.Violations.empty() ? ""
                                                 : "\n  " + R.Violations[0])
                        << "\n  replay: " << replayCommand(O);
    EXPECT_EQ(R.Normal + R.Unavailable + R.Failed + R.ExceptionReplies,
              R.OpsIssued - R.Sends);
    EXPECT_LE(R.Cancelled, R.ServerCancelled);
    EXPECT_LE(R.ServerCancelled, R.CancelsSent);
    EXPECT_LE(R.Expired, R.ServerExpired);
    EXPECT_LE(R.Shed, R.ServerShed);
    Cancels += R.CancelsSent;
    Retries += R.Retries;
  }
  // The workload actually drives the new machinery.
  EXPECT_GT(Cancels, 0u);
  EXPECT_GT(Retries, 0u);
}

TEST(ChaosRunTest, DeadlinesReplayIsByteIdentical) {
  ChaosOptions O = smallRun(11, ChaosProfile::mixed());
  O.Deadlines = true;
  ChaosReport A = runChaos(O);
  ChaosReport B = runChaos(O);
  ASSERT_TRUE(A.ok()) << A.summary();
  EXPECT_EQ(A.TraceHash, B.TraceHash);
  EXPECT_EQ(A.TraceEvents, B.TraceEvents);
  EXPECT_EQ(A.VirtualEnd, B.VirtualEnd);
  EXPECT_EQ(A.Retries, B.Retries);
  EXPECT_EQ(A.CancelsSent, B.CancelsSent);
  EXPECT_EQ(A.Expired, B.Expired);
  EXPECT_EQ(A.Shed, B.Shed);
  EXPECT_EQ(A.FastFails, B.FastFails);
  // The replay command round-trips the resilience flag.
  EXPECT_NE(replayCommand(O).find("--deadlines"), std::string::npos);
}

TEST(ChaosRunTest, TraceHashIsBackendIndependent) {
  // The execution backend is invisible to scheduling: the same seed must
  // drive the identical event sequence — and therefore the identical
  // trace-stream hash — whether processes run as fibers or as parked OS
  // threads. CI pins the same property over many seeds via chaossim.
  for (uint64_t Seed : {1u, 7u}) {
    ChaosOptions O = smallRun(Seed, ChaosProfile::mixed());
    O.Backend = BackendKind::Fiber;
    ChaosReport F = runChaos(O);
    O.Backend = BackendKind::Thread;
    ChaosReport T = runChaos(O);
    ASSERT_TRUE(F.ok()) << F.summary();
    ASSERT_TRUE(T.ok()) << T.summary();
    EXPECT_EQ(F.TraceHash, T.TraceHash) << "seed " << Seed;
    EXPECT_EQ(F.TraceEvents, T.TraceEvents) << "seed " << Seed;
    EXPECT_EQ(F.VirtualEnd, T.VirtualEnd) << "seed " << Seed;
    // The replay command pins the backend it ran on.
    EXPECT_NE(replayCommand(O).find("--backend thread"), std::string::npos);
  }
}

TEST(ChaosRunTest, WireIntegrityWorkloadSatisfiesInvariants) {
  // Byte-level damage on top of the fault plan: bit-flip corruption
  // (ambient + bursts), heavy duplication, and bounded reordering all at
  // once. The checksums must catch every damaged frame, dedup must keep
  // execution exactly-once, and the whole invariant battery must hold.
  uint64_t Corrupted = 0, Dropped = 0;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    ChaosOptions O = smallRun(Seed, ChaosProfile::mixed());
    O.Corrupt = O.Dup = O.Reorder = true;
    ChaosReport R = runChaos(O);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << ": " << R.summary()
                        << (R.Violations.empty() ? ""
                                                 : "\n  " + R.Violations[0])
                        << "\n  replay: " << replayCommand(O);
    // Damage is detected at most once per damaged copy, and nothing ever
    // reaches the message decoder (that would be a local encode bug).
    EXPECT_LE(R.FramesCorruptDropped, R.DatagramsCorrupted);
    EXPECT_EQ(R.MalformedDropped, 0u);
    Corrupted += R.DatagramsCorrupted;
    Dropped += R.FramesCorruptDropped;
  }
  // The workload actually damages frames, and the checksums actually
  // reject them.
  EXPECT_GT(Corrupted, 0u);
  EXPECT_GT(Dropped, 0u);
}

TEST(ChaosRunTest, WireIntegrityReplayIsByteIdentical) {
  ChaosOptions O = smallRun(11, ChaosProfile::mixed());
  O.Corrupt = O.Dup = O.Reorder = true;
  ChaosReport A = runChaos(O);
  ChaosReport B = runChaos(O);
  ASSERT_TRUE(A.ok()) << A.summary() << "\n  replay: " << replayCommand(O);
  EXPECT_EQ(A.TraceHash, B.TraceHash);
  EXPECT_EQ(A.TraceEvents, B.TraceEvents);
  EXPECT_EQ(A.VirtualEnd, B.VirtualEnd);
  EXPECT_EQ(A.DatagramsCorrupted, B.DatagramsCorrupted);
  EXPECT_EQ(A.FramesCorruptDropped, B.FramesCorruptDropped);
  EXPECT_EQ(A.CorruptBursts, B.CorruptBursts);
  // The replay command round-trips every wire-integrity flag.
  std::string Cmd = replayCommand(O);
  EXPECT_NE(Cmd.find("--corrupt"), std::string::npos);
  EXPECT_NE(Cmd.find("--dup"), std::string::npos);
  EXPECT_NE(Cmd.find("--reorder"), std::string::npos);
}

TEST(ChaosRunTest, CorruptionMachineryStaysColdWithoutTheFlag) {
  // Adding the wire-integrity knobs must not perturb existing runs: a
  // plain run reports zero corruption activity (the invariant battery
  // enforces this too, but pin it explicitly).
  ChaosOptions O = smallRun(11, ChaosProfile::mixed());
  ChaosReport R = runChaos(O);
  ASSERT_TRUE(R.ok()) << R.summary();
  EXPECT_EQ(R.DatagramsCorrupted, 0u);
  EXPECT_EQ(R.FramesCorruptDropped, 0u);
  EXPECT_EQ(R.MalformedDropped, 0u);
  EXPECT_EQ(R.CorruptBursts, 0u);
  EXPECT_EQ(replayCommand(O).find("--corrupt"), std::string::npos);
}

TEST(ChaosRunTest, CrashProfileExercisesRecoveryMachinery) {
  // One known-good seed that drives the paths this PR hardens: node
  // crashes with port-reusing restarts (stale-epoch drops) and breaks.
  ChaosOptions O = smallRun(7, ChaosProfile::crashes());
  ChaosReport R = runChaos(O);
  ASSERT_TRUE(R.ok()) << R.summary() << "\n  replay: " << replayCommand(O);
  EXPECT_GT(R.Crashes, 0u);
  EXPECT_GT(R.Restarts, 0u);
  EXPECT_GT(R.Unavailable, 0u);
}

TEST(ChaosDirected, RetransmitsDoNotExecuteOnNewIncarnation) {
  // Regression for the stale-datagram bug: a restarted node reuses its
  // port space, so an in-flight call batch (or its retransmits) addressed
  // to the crashed incarnation lands on the same (node, port) as the new
  // guardian. Restart epochs must drop it; before the fix the new
  // incarnation executed the call while the client also saw a break.
  Simulation S;
  net::NetConfig NC; // Default 2ms propagation keeps the batch in flight.
  net::SimNetwork Net(S, NC);
  net::NodeId SN = Net.addNode("server");
  net::NodeId CN = Net.addNode("client");

  runtime::GuardianConfig GC;
  GC.Stream.RetransmitTimeout = msec(5);
  GC.Stream.MaxRetries = 1;

  uint64_t Exec1 = 0, Exec2 = 0;
  auto Server1 = std::make_unique<runtime::Guardian>(Net, SN, "server#1", GC);
  auto Ref1 = Server1->addHandler<uint64_t(uint64_t)>(
      "echo", [&](uint64_t V) -> core::Outcome<uint64_t> {
        ++Exec1;
        return V;
      });
  runtime::Guardian Client(Net, CN, "client", GC);

  std::unique_ptr<runtime::Guardian> Server2;
  std::optional<core::Exn> Err;
  Client.spawnProcess("driver", [&] {
    auto H = runtime::bindHandler(Client, Client.newAgent(), Ref1);
    auto P = H.streamCall(uint64_t{42});
    H.flush();
    Err = P.claim().toExn();
  });
  S.schedule(msec(1), [&] {
    Net.crash(SN);
    Net.restart(SN);
    Server2 = std::make_unique<runtime::Guardian>(Net, SN, "server#2", GC);
    Server2->addHandler<uint64_t(uint64_t)>(
        "echo", [&](uint64_t V) -> core::Outcome<uint64_t> {
          ++Exec2;
          return V;
        });
    // Same port, new epoch: the addresses must never compare equal.
    EXPECT_EQ(Server2->address().Port, Server1->address().Port);
    EXPECT_NE(Server2->address().Epoch, Server1->address().Epoch);
  });
  S.run();

  // Neither incarnation ran the call: #1 died before delivery, #2 only
  // ever saw stale-epoch datagrams.
  EXPECT_EQ(Exec1, 0u);
  EXPECT_EQ(Exec2, 0u);
  ASSERT_TRUE(Server2);
  EXPECT_EQ(Server2->callsExecuted(), 0u);
  EXPECT_GE(Net.staleEpochDrops(), 1u);
  // The client saw exactly one outcome for the call: a break.
  ASSERT_TRUE(Err.has_value());
  EXPECT_EQ(Err->Name, "unavailable");
}

} // namespace
