//===- actions_test.cpp - Atomic actions unit tests -----------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/actions/AtomicCell.h"
#include "promises/core/Coenter.h"

#include <gtest/gtest.h>

#include <vector>

using namespace promises;
using namespace promises::actions;
using namespace promises::core;
using namespace promises::sim;

namespace {

struct ActionsFixture : ::testing::Test {
  Simulation S;
  ActionConfig AC;
  std::unique_ptr<ActionManager> M;

  void build() { M = std::make_unique<ActionManager>(S, AC); }
};

TEST_F(ActionsFixture, CommitMakesWritesDurable) {
  build();
  AtomicCell<int> Cell(*M, 1);
  S.spawn("p", [&] {
    Action A(*M);
    EXPECT_EQ(Cell.read(A), 1);
    Cell.write(A, 5);
    EXPECT_TRUE(A.commit());
  });
  S.run();
  EXPECT_EQ(Cell.peek(), 5);
  EXPECT_FALSE(Cell.locked());
  EXPECT_EQ(M->commits(), 1u);
}

TEST_F(ActionsFixture, AbortRollsBack) {
  build();
  AtomicCell<int> Cell(*M, 1);
  S.spawn("p", [&] {
    Action A(*M);
    Cell.write(A, 5);
    EXPECT_EQ(Cell.peek(), 5); // Visible in place...
    A.abort();
    EXPECT_EQ(Cell.peek(), 1); // ...until the rollback.
  });
  S.run();
  EXPECT_FALSE(Cell.locked());
  EXPECT_EQ(M->aborts(), 1u);
}

TEST_F(ActionsFixture, RaiiScopeAbortsWhenNotCommitted) {
  build();
  AtomicCell<int> Cell(*M, 10);
  S.spawn("p", [&] {
    {
      Action A(*M);
      Cell.write(A, 99);
      // No commit: falls out of scope.
    }
    EXPECT_EQ(Cell.peek(), 10);
  });
  S.run();
  EXPECT_EQ(M->aborts(), 1u);
}

TEST_F(ActionsFixture, WriterExcludesOtherActions) {
  build();
  AtomicCell<int> Cell(*M, 0);
  std::vector<int> ReadLog;
  S.spawn("writer", [&] {
    Action A(*M);
    Cell.write(A, 42);
    S.sleep(msec(5));
    A.commit();
  });
  S.spawn("reader", [&] {
    S.sleep(msec(1)); // Writer holds the lock now.
    Action B(*M);
    // Blocks until the writer commits: never observes the uncommitted 42
    // as a dirty read *before* commit.
    int V = Cell.read(B);
    ReadLog.push_back(V);
    EXPECT_EQ(S.now(), msec(5)); // Woke exactly at commit time.
    B.commit();
  });
  S.run();
  ASSERT_EQ(ReadLog.size(), 1u);
  EXPECT_EQ(ReadLog[0], 42);
}

TEST_F(ActionsFixture, ReadersShareButBlockWriters) {
  build();
  AtomicCell<int> Cell(*M, 7);
  Time WriterGotLock = 0;
  int R1 = 0, R2 = 0;
  S.spawn("r1", [&] {
    Action A(*M);
    R1 = Cell.read(A);
    S.sleep(msec(4));
    A.commit();
  });
  S.spawn("r2", [&] {
    Action A(*M);
    R2 = Cell.read(A); // Shared with r1, no blocking.
    EXPECT_EQ(S.now(), 0u);
    S.sleep(msec(2));
    A.commit();
  });
  S.spawn("w", [&] {
    S.sleep(usec(100));
    Action A(*M);
    Cell.write(A, 8); // Blocks until both readers finish (4ms).
    WriterGotLock = S.now();
    A.commit();
  });
  S.run();
  EXPECT_EQ(R1, 7);
  EXPECT_EQ(R2, 7);
  EXPECT_EQ(WriterGotLock, msec(4));
  EXPECT_EQ(Cell.peek(), 8);
}

TEST_F(ActionsFixture, SubactionCommitMergesIntoParent) {
  build();
  AtomicCell<int> Cell(*M, 1);
  S.spawn("p", [&] {
    Action Top(*M);
    {
      Action Sub(*M, Top);
      Cell.write(Sub, 2);
      EXPECT_TRUE(Sub.commit());
    }
    // The child's effect is now the parent's: visible to the parent,
    // undone if the parent aborts.
    EXPECT_EQ(Cell.read(Top), 2);
    Top.abort();
    EXPECT_EQ(Cell.peek(), 1); // Parent abort undoes the child's write.
  });
  S.run();
}

TEST_F(ActionsFixture, SubactionCommitThenParentCommitIsDurable) {
  build();
  AtomicCell<int> Cell(*M, 1);
  S.spawn("p", [&] {
    Action Top(*M);
    {
      Action Sub(*M, Top);
      Cell.write(Sub, 2);
      Sub.commit();
    }
    EXPECT_TRUE(Top.commit());
  });
  S.run();
  EXPECT_EQ(Cell.peek(), 2);
  EXPECT_FALSE(Cell.locked());
}

TEST_F(ActionsFixture, SubactionAbortLeavesParentWriteIntact) {
  build();
  AtomicCell<int> Cell(*M, 1);
  S.spawn("p", [&] {
    Action Top(*M);
    Cell.write(Top, 2);
    {
      Action Sub(*M, Top);
      Cell.write(Sub, 3); // Inherits the lock, logs its own pre-image.
      EXPECT_EQ(Cell.peek(), 3);
      Sub.abort();
    }
    EXPECT_EQ(Cell.peek(), 2); // Back to the parent's write, not to 1.
    EXPECT_TRUE(Top.commit());
  });
  S.run();
  EXPECT_EQ(Cell.peek(), 2);
}

TEST_F(ActionsFixture, ChildMayUseWhatParentHolds) {
  build();
  AtomicCell<int> Cell(*M, 5);
  S.spawn("p", [&] {
    Action Top(*M);
    Cell.write(Top, 6);
    Action Sub(*M, Top);
    EXPECT_EQ(Cell.read(Sub), 6); // No self-deadlock on the family lock.
    Sub.commit();
    Top.commit();
  });
  S.run();
  EXPECT_EQ(Cell.peek(), 6);
}

TEST_F(ActionsFixture, SiblingsConflictOnTheFamilyCell) {
  // Two subactions of one parent still conflict with each other.
  build();
  AtomicCell<int> Cell(*M, 0);
  std::vector<int> Order;
  S.spawn("p", [&] {
    Action Top(*M);
    Coenter(S)
        .arm("s1",
             [&]() -> ArmResult {
               Action A(*M, Top);
               Cell.write(A, 1);
               Order.push_back(1);
               S.sleep(msec(2));
               A.commit();
               Order.push_back(2);
               return {};
             })
        .arm("s2",
             [&]() -> ArmResult {
               S.sleep(usec(100));
               Action A(*M, Top);
               Cell.write(A, 2); // Blocks until s1 commits.
               Order.push_back(3);
               A.commit();
               return {};
             })
        .run();
    Top.commit();
  });
  S.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(Cell.peek(), 2);
}

TEST_F(ActionsFixture, DeadlockResolvesByDooming) {
  AC.LockTimeout = msec(5);
  build();
  AtomicCell<int> X(*M, 0), Y(*M, 0);
  bool ACommitted = false, BCommitted = false;
  S.spawn("a", [&] {
    Action A(*M);
    X.write(A, 1);
    S.sleep(msec(1));
    Y.write(A, 1); // A->Y while B holds Y: deadlock.
    ACommitted = A.commit();
  });
  S.spawn("b", [&] {
    Action B(*M);
    Y.write(B, 2);
    S.sleep(msec(1));
    X.write(B, 2);
    BCommitted = B.commit();
  });
  S.run();
  // At least one was doomed and aborted; the system did not hang, and
  // the cells hold only committed actions' values (or the initial ones).
  EXPECT_FALSE(ACommitted && BCommitted);
  EXPECT_FALSE(X.locked());
  EXPECT_FALSE(Y.locked());
  if (!ACommitted && !BCommitted) {
    EXPECT_EQ(X.peek(), 0);
    EXPECT_EQ(Y.peek(), 0);
  }
}

TEST_F(ActionsFixture, KilledProcessAbortsItsAction) {
  // The coenter story: a terminated arm's action aborts via RAII during
  // the forced unwind.
  build();
  AtomicCell<int> Cell(*M, 100);
  S.spawn("p", [&] {
    Coenter(S)
        .arm("worker",
             [&]() -> ArmResult {
               Action A(*M);
               Cell.write(A, 999);
               S.sleep(sec(10)); // Killed during this sleep.
               A.commit();       // Never reached.
               return {};
             })
        .arm("failer",
             [&]() -> ArmResult {
               S.sleep(msec(1));
               return armRaise("boom");
             })
        .run();
  });
  S.run();
  EXPECT_EQ(Cell.peek(), 100); // Rolled back by the unwinding abort.
  EXPECT_FALSE(Cell.locked());
  EXPECT_EQ(M->aborts(), 1u);
  EXPECT_LT(S.now(), sec(10));
}

TEST_F(ActionsFixture, ManyCellsOneAction) {
  build();
  std::vector<std::unique_ptr<AtomicCell<int>>> Cells;
  for (int I = 0; I < 20; ++I)
    Cells.push_back(std::make_unique<AtomicCell<int>>(*M, I));
  S.spawn("p", [&] {
    {
      Action A(*M);
      for (auto &C : Cells)
        C->write(A, C->read(A) + 1000);
      A.abort();
    }
    for (int I = 0; I < 20; ++I)
      EXPECT_EQ(Cells[static_cast<size_t>(I)]->peek(), I);
    Action B(*M);
    for (auto &C : Cells)
      C->write(B, C->read(B) + 1);
    EXPECT_TRUE(B.commit());
  });
  S.run();
  for (int I = 0; I < 20; ++I)
    EXPECT_EQ(Cells[static_cast<size_t>(I)]->peek(), I + 1);
}

TEST_F(ActionsFixture, DoomedActionCannotCommit) {
  AC.LockTimeout = msec(2);
  build();
  AtomicCell<int> Cell(*M, 0);
  S.spawn("holder", [&] {
    Action A(*M);
    Cell.write(A, 1);
    S.sleep(msec(20));
    A.commit();
  });
  S.spawn("victim", [&] {
    S.sleep(usec(100));
    Action B(*M);
    Cell.write(B, 2); // Times out at ~2ms; B is doomed.
    EXPECT_TRUE(B.doomed());
    EXPECT_FALSE(B.commit()); // Commit refuses and aborts.
  });
  S.run();
  EXPECT_EQ(Cell.peek(), 1); // Only the holder's write survived.
}

} // namespace
