//===- failure_taxonomy_test.cpp - failure vs unavailable ------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The paper's exception taxonomy (Section 3): codec trouble is *permanent*
// — a call whose arguments or results cannot be encoded or decoded claims
// as `failure`, never `unavailable` — while transport trouble (crash,
// partition) is *temporary* and claims as `unavailable`. Claiming the same
// promise again re-raises the same exception.
//
//===----------------------------------------------------------------------===//

#include "promises/core/Exceptions.h"
#include "promises/runtime/RemoteHandler.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

struct TaxonomyFixture : ::testing::Test {
  Simulation S;
  net::NetConfig NC;
  GuardianConfig GC;

  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<Guardian> Server, Client;
  net::NodeId SN = 0, CN = 0;

  HandlerRef<wire::Fragile(wire::Fragile)> Echo;
  HandlerRef<wire::Fragile(int32_t)> Brittle;

  void build() {
    Net = std::make_unique<net::SimNetwork>(S, NC);
    SN = Net->addNode("server");
    CN = Net->addNode("client");
    Server = std::make_unique<Guardian>(*Net, SN, "server", GC);
    Client = std::make_unique<Guardian>(*Net, CN, "client", GC);
    Echo = Server->addHandler<wire::Fragile(wire::Fragile)>(
        "echo", [](wire::Fragile F) -> Outcome<wire::Fragile> { return F; });
    // The server-side encode bug: the handler runs fine but its *result*
    // refuses to encode.
    Brittle = Server->addHandler<wire::Fragile(int32_t)>(
        "brittle", [](int32_t V) -> Outcome<wire::Fragile> {
          wire::Fragile F;
          F.Value = V;
          F.FailEncode = true;
          return F;
        });
  }
};

TEST_F(TaxonomyFixture, ReplyEncodeFailureClaimsAsFailure) {
  build();
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Brittle);
    auto P = H.streamCall(int32_t(5));
    H.flush();
    const auto &O = P.claim();
    ASSERT_TRUE(O.is<Failure>())
        << "a reply that cannot be encoded is permanent, not retryable";
    EXPECT_FALSE(O.is<Unavailable>());
    EXPECT_NE(O.get<Failure>().Reason.find("encode"), std::string::npos);
  });
  S.run();
}

TEST_F(TaxonomyFixture, ArgumentDecodeFailureClaimsAsFailure) {
  build();
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Echo);
    wire::Fragile Bad;
    Bad.FailDecode = true; // Encodes fine; the *server* cannot decode it.
    auto P = H.streamCall(Bad);
    H.flush();
    const auto &O = P.claim();
    ASSERT_TRUE(O.is<Failure>());
    EXPECT_NE(O.get<Failure>().Reason.find("decode"), std::string::npos);
  });
  S.run();
}

TEST_F(TaxonomyFixture, ArgumentEncodeFailureFailsWithoutCalling) {
  build();
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Echo);
    uint64_t SentBefore = Net->counters().DatagramsSent;
    wire::Fragile Bad;
    Bad.FailEncode = true;
    auto P = H.streamCall(Bad);
    // Step 1 of the paper's call sequence fails locally: the promise is
    // born ready and nothing went on the wire.
    ASSERT_TRUE(P.ready());
    const auto &O = P.claim();
    ASSERT_TRUE(O.is<Failure>());
    EXPECT_NE(O.get<Failure>().Reason.find("encode"), std::string::npos);
    EXPECT_EQ(Net->counters().DatagramsSent, SentBefore);
  });
  S.run();
}

TEST_F(TaxonomyFixture, RepeatedClaimReRaisesTheSameException) {
  build();
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Brittle);
    auto P = H.streamCall(int32_t(9));
    H.flush();
    const auto &First = P.claim();
    ASSERT_TRUE(First.is<Failure>());
    std::string Reason = First.get<Failure>().Reason;
    // Paper, Section 3: "the claim can be repeated; each repetition
    // returns the same result or signals the same exception."
    for (int I = 0; I != 3; ++I) {
      const auto &Again = P.claim();
      ASSERT_TRUE(Again.is<Failure>());
      EXPECT_EQ(Again.get<Failure>().Reason, Reason);
    }
  });
  S.run();
}

TEST_F(TaxonomyFixture, CrashIsUnavailableNotFailure) {
  // The contrast case that pins the taxonomy: the same call shape against
  // a crashed node is *temporary* trouble.
  build();
  S.schedule(usec(1), [&] { Net->crash(SN); });
  Client->spawnProcess("main", [&] {
    S.sleep(msec(1));
    auto H = bindHandler(*Client, Client->newAgent(), Echo);
    auto P = H.streamCall(wire::Fragile{});
    H.flush();
    const auto &O = P.claim();
    ASSERT_TRUE(O.is<Unavailable>());
    EXPECT_FALSE(O.is<Failure>());
    // And it re-raises identically too.
    EXPECT_TRUE(P.claim().is<Unavailable>());
  });
  S.run();
}

} // namespace
