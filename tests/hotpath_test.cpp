//===- hotpath_test.cpp - Hot-path allocation & flat-window tests ---------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Regression tests for the cache-conscious hot paths:
//
//  * SeqRing (the flat replacement for the transport's std::map windows):
//    wrap past capacity, sparse ranges, erase/re-insert, iteration order.
//  * Zero-copy frame sealing: encodeFramedMessage is byte-identical to
//    the legacy encode-then-seal pipeline, costs exactly one allocation,
//    and copies zero payload bytes.
//  * Promise slab: steady-state promise churn allocates nothing.
//  * The timed-event heap: generation-checked cancellation semantics.
//  * End-to-end allocation budget: a full call round trip stays under an
//    allocation ceiling (the bench's machine-independent companion).
//
// This binary installs a global operator-new hook, so it holds every test
// that counts allocations; keep hook-free tests in the other suites.
//
//===----------------------------------------------------------------------===//

#include "promises/core/Promise.h"
#include "promises/net/Network.h"
#include "promises/sim/Simulation.h"
#include "promises/stream/Messages.h"
#include "promises/stream/SeqRing.h"
#include "promises/stream/StreamTransport.h"
#include "promises/wire/Frame.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

using namespace promises;

//===----------------------------------------------------------------------===//
// Allocation counting hook
//===----------------------------------------------------------------------===//

static std::atomic<uint64_t> GAllocs{0};

void *operator new(std::size_t N) {
  GAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t N) { return ::operator new(N); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

static uint64_t allocCount() {
  return GAllocs.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// SeqRing
//===----------------------------------------------------------------------===//

TEST(SeqRing, InsertFindErase) {
  stream::SeqRing<int> R;
  EXPECT_TRUE(R.empty());
  R.insert(5, 50);
  R.insert(7, 70);
  R.insert(6, 60);
  EXPECT_EQ(R.size(), 3u);
  EXPECT_EQ(R.firstSeq(), 5u);
  EXPECT_EQ(R.lastSeq(), 7u);
  EXPECT_TRUE(R.contains(6));
  EXPECT_FALSE(R.contains(4));
  EXPECT_FALSE(R.contains(8));
  EXPECT_EQ(R.at(5), 50);
  EXPECT_EQ(*R.find(7), 70);
  EXPECT_EQ(R.find(8), nullptr);
  R.erase(5);
  EXPECT_EQ(R.firstSeq(), 6u);
  R.erase(7);
  EXPECT_EQ(R.lastSeq(), 6u);
  R.erase(6);
  EXPECT_TRUE(R.empty());
}

TEST(SeqRing, WrapsPastCapacityManyTimes) {
  // A long-lived window marches through far more seqs than the slot array
  // holds; every seq must index cleanly through the mask.
  stream::SeqRing<uint64_t> R;
  uint64_t Next = 1, Acked = 1;
  for (int Round = 0; Round != 1000; ++Round) {
    // Keep up to 8 in flight, then retire the oldest (prefix erase, the
    // retransmission-window pattern).
    while (Next - Acked < 8)
      R.insert(Next, Next * 3), ++Next;
    EXPECT_EQ(R.firstSeq(), Acked);
    EXPECT_EQ(R.at(Acked), Acked * 3);
    R.erase(Acked);
    ++Acked;
  }
  EXPECT_EQ(R.size(), 7u);
}

TEST(SeqRing, SparseRangeAndAscendingIteration) {
  // The ahead-of-order pattern: gaps inside [Lo, Hi).
  stream::SeqRing<int> R;
  R.insert(10, 1);
  R.insert(14, 5);
  R.insert(12, 3);
  EXPECT_EQ(R.firstSeq(), 10u);
  EXPECT_EQ(R.lastSeq(), 14u);
  EXPECT_FALSE(R.contains(11));
  EXPECT_FALSE(R.contains(13));
  std::vector<uint64_t> Seen;
  R.forEach([&](uint64_t S, const int &) { Seen.push_back(S); });
  EXPECT_EQ(Seen, (std::vector<uint64_t>{10, 12, 14}));
  // Erasing an endpoint tightens past the gap.
  R.erase(14);
  EXPECT_EQ(R.lastSeq(), 12u);
  R.erase(10);
  EXPECT_EQ(R.firstSeq(), 12u);
}

TEST(SeqRing, EraseThenReinsertSameSeq) {
  // A slot must be fully reusable after erase: stale "present" state or a
  // stale value resurrecting would corrupt the window.
  stream::SeqRing<std::vector<int>> R;
  R.insert(3, {1, 2, 3});
  R.erase(3);
  EXPECT_FALSE(R.contains(3));
  R.insert(3, {9});
  EXPECT_EQ(R.at(3), (std::vector<int>{9}));
  // And erase() must reset the slot to T{} so owned buffers free eagerly.
  R.erase(3);
  R.insert(3 + 16, {7}); // Same slot index after one full mask cycle.
  EXPECT_EQ(R.at(3 + 16), (std::vector<int>{7}));
}

TEST(SeqRing, GrowthPreservesSparseEntries) {
  stream::SeqRing<int> R;
  // Span wider than the initial 16 slots, inserted out of order.
  R.insert(100, 0);
  R.insert(140, 40);
  R.insert(121, 21);
  EXPECT_EQ(R.size(), 3u);
  EXPECT_EQ(R.at(100), 0);
  EXPECT_EQ(R.at(121), 21);
  EXPECT_EQ(R.at(140), 40);
  std::vector<uint64_t> Seen;
  R.forEach([&](uint64_t S, const int &) { Seen.push_back(S); });
  EXPECT_EQ(Seen, (std::vector<uint64_t>{100, 121, 140}));
}

TEST(SeqRing, ClearKeepsCapacityWarm) {
  stream::SeqRing<int> R;
  for (uint64_t S = 1; S <= 12; ++S)
    R.insert(S, 1);
  R.clear();
  EXPECT_TRUE(R.empty());
  uint64_t Before = allocCount();
  for (uint64_t S = 1; S <= 12; ++S)
    R.insert(S, 2);
  EXPECT_EQ(allocCount(), Before) << "clear() must retain the slot array";
  EXPECT_EQ(R.at(7), 2);
}

//===----------------------------------------------------------------------===//
// Zero-copy frame sealing
//===----------------------------------------------------------------------===//

namespace {

stream::Message sampleCallBatch() {
  stream::CallBatchMsg M;
  M.Agent = 7;
  M.Group = 2;
  M.Inc = 3;
  M.AckReplyThrough = 41;
  M.FlushReplies = true;
  for (uint64_t S = 42; S != 46; ++S) {
    stream::CallReq C;
    C.S = S;
    C.Port = 9;
    C.DeadlineNs = 1234567;
    C.Args = wire::Bytes(100 + S, static_cast<uint8_t>(S));
    M.Calls.push_back(std::move(C));
  }
  return M;
}

stream::Message sampleReplyBatch() {
  stream::ReplyBatchMsg M;
  M.Agent = 7;
  M.Group = 2;
  M.Inc = 3;
  M.AckCallThrough = 45;
  M.CompletedThrough = 44;
  M.Broken = true;
  M.BreakReason = "handler crashed";
  for (uint64_t S = 43; S != 45; ++S) {
    stream::WireReply W;
    W.S = S;
    W.Status = stream::ReplyStatus::Exception;
    W.ExTag = 5;
    W.Payload = wire::Bytes(64, 0xEE);
    W.Reason = "why";
    M.Replies.push_back(std::move(W));
  }
  return M;
}

stream::Message sampleCancel() {
  stream::CancelMsg M;
  M.Agent = 7;
  M.Group = 2;
  M.Inc = 3;
  M.Seqs = {44, 45};
  return M;
}

} // namespace

TEST(ZeroCopySeal, ByteIdenticalToLegacyPipeline) {
  for (const stream::Message &M :
       {sampleCallBatch(), sampleReplyBatch(), sampleCancel()}) {
    for (bool Checksum : {true, false}) {
      wire::Bytes Legacy =
          wire::sealFrame(stream::encodeMessage(M), Checksum);
      wire::Bytes Framed = stream::encodeFramedMessage(M, Checksum);
      EXPECT_EQ(Framed, Legacy);
      // And the result round-trips through the verifying receive path.
      auto Payload = wire::openFrame(Framed, Checksum);
      ASSERT_TRUE(Payload.has_value());
      auto Decoded = stream::decodeMessage(*Payload);
      ASSERT_TRUE(Decoded.has_value());
      EXPECT_TRUE(*Decoded == M);
    }
  }
}

TEST(ZeroCopySeal, ExactlyOneAllocationPerSealedMessage) {
  // The exact-size reserve must keep a framed encode to a single buffer
  // allocation. This pins the encodedSizeOf() size math in
  // StreamTransport.cpp to the Codec<> layouts: any drift shows up here
  // as a reallocation.
  for (const stream::Message &M :
       {sampleCallBatch(), sampleReplyBatch(), sampleCancel()}) {
    uint64_t Before = allocCount();
    wire::Bytes Framed = stream::encodeFramedMessage(M, true);
    uint64_t After = allocCount();
    EXPECT_EQ(After - Before, 1u);
    EXPECT_GT(Framed.size(), wire::FrameHeaderBytes);
  }
}

TEST(ZeroCopySeal, CopiesZeroPayloadBytes) {
  uint64_t CopiedBefore = wire::frameStats().PayloadBytesCopied;
  uint64_t InPlaceBefore = wire::frameStats().FramesSealedInPlace;
  (void)stream::encodeFramedMessage(sampleCallBatch(), true);
  EXPECT_EQ(wire::frameStats().PayloadBytesCopied, CopiedBefore);
  EXPECT_EQ(wire::frameStats().FramesSealedInPlace, InPlaceBefore + 1);
}

//===----------------------------------------------------------------------===//
// Promise slab
//===----------------------------------------------------------------------===//

TEST(PromiseSlab, SteadyStateChurnAllocatesNothing) {
  sim::Simulation Sim;
  // Warm one slab's worth of states.
  for (int I = 0; I != 80; ++I) {
    auto [P, R] = core::makePromise<uint64_t>(Sim);
    R.fulfill(core::Outcome<uint64_t>(uint64_t(I)));
    EXPECT_TRUE(P.ready());
  }
  // Steady state: every create/fulfill/drop cycle recycles a slab slot.
  uint64_t Before = allocCount();
  for (int I = 0; I != 1000; ++I) {
    auto [P, R] = core::makePromise<uint64_t>(Sim);
    R.fulfill(core::Outcome<uint64_t>(uint64_t(I)));
    EXPECT_EQ(P.claim().value(), uint64_t(I));
  }
  EXPECT_EQ(allocCount(), Before)
      << "promise churn must recycle slab slots, not hit the heap";
}

TEST(PromiseSlab, CopiesShareStateAndOutliveResolver) {
  sim::Simulation Sim;
  auto [P, R] = core::makePromise<int>(Sim);
  core::Promise<int> P2 = P;       // Copy: shared state.
  core::Promise<int> P3 = std::move(P);
  EXPECT_FALSE(P.valid()); // NOLINT: moved-from promises are invalid.
  {
    core::Resolver<int> R2 = R; // Resolver copies share too.
    R2.fulfill(core::Outcome<int>(17));
  }
  EXPECT_TRUE(P2.ready());
  EXPECT_TRUE(P3.ready());
  EXPECT_EQ(P2.claim().value(), 17);
  EXPECT_EQ(P3.claim().value(), 17);
}

TEST(PromiseSlab, MakeReadyHasNoWaitQueue) {
  auto P = core::Promise<int>::makeReady(core::Outcome<int>(5));
  EXPECT_TRUE(P.ready());
  EXPECT_EQ(P.claim().value(), 5);
}

//===----------------------------------------------------------------------===//
// Timed-event heap
//===----------------------------------------------------------------------===//

TEST(EventHeap, CancelPreventsExecutionAndStaleIdsMiss) {
  sim::Simulation Sim;
  int Fired = 0;
  uint64_t A = Sim.schedule(100, [&] { ++Fired; });
  uint64_t B = Sim.schedule(200, [&] { Fired += 10; });
  Sim.cancel(A);
  Sim.cancel(A); // Double cancel: no-op.
  Sim.run();
  EXPECT_EQ(Fired, 10);
  // B already ran; its id is stale now. Cancelling it must be a no-op
  // even though its pooled slot has been recycled.
  Sim.cancel(B);
  int After = 0;
  uint64_t C = Sim.schedule(50, [&] { ++After; });
  Sim.cancel(B); // Still stale, possibly aliasing C's slot — must miss.
  Sim.run();
  EXPECT_EQ(After, 1) << "stale cancel must not hit a recycled slot";
  (void)C;
}

TEST(EventHeap, DispatchOrderIsTimeThenScheduleOrder) {
  sim::Simulation Sim;
  std::vector<int> Order;
  Sim.schedule(100, [&] { Order.push_back(2); });
  Sim.schedule(50, [&] { Order.push_back(1); });
  Sim.schedule(100, [&] { Order.push_back(3); }); // Same time: FIFO.
  Sim.schedule(150, [&] { Order.push_back(4); });
  Sim.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventHeap, CancelledEventDoesNotAdvanceClock) {
  sim::Simulation Sim;
  uint64_t Late = Sim.schedule(1000000, [] {});
  Sim.schedule(10, [] {});
  Sim.cancel(Late);
  Sim.run();
  EXPECT_EQ(Sim.now(), 10u)
      << "a tombstoned event must be dropped without advancing time";
}

TEST(EventHeap, SteadyStateSchedulingAllocatesOnlyTheClosure) {
  sim::Simulation Sim;
  // Warm the heap and pool past the measured high-water mark of
  // outstanding events.
  for (int I = 0; I != 128; ++I)
    Sim.schedule(I, [] {});
  Sim.run();
  uint64_t Before = allocCount();
  for (int I = 0; I != 100; ++I)
    Sim.schedule(I, [] {}); // Captureless: fits std::function inline.
  uint64_t Armed = allocCount();
  EXPECT_EQ(Armed, Before)
      << "arming a timer must not allocate once heap and pool are warm";
  Sim.run();
  EXPECT_EQ(allocCount(), Armed);
}

//===----------------------------------------------------------------------===//
// End-to-end allocation budget
//===----------------------------------------------------------------------===//

namespace {

struct EchoWorld {
  sim::Simulation Sim;
  net::SimNetwork Net;
  std::unique_ptr<stream::StreamTransport> Client;
  std::unique_ptr<stream::StreamTransport> Server;
  stream::AgentId Agent = 0;

  EchoWorld() : Net(Sim) {
    net::NodeId C = Net.addNode("client");
    net::NodeId S = Net.addNode("server");
    Client = std::make_unique<stream::StreamTransport>(Net, C);
    Server = std::make_unique<stream::StreamTransport>(Net, S);
    Agent = Client->newAgent();
    Server->setCallSink([](stream::IncomingCall IC) {
      IC.Complete(stream::ReplyStatus::Normal, 0, std::move(IC.Args), {});
    });
  }

  core::Promise<uint64_t> issue(const wire::Bytes &Args) {
    auto [P, R] = core::makePromise<uint64_t>(Sim);
    auto Issue = Client->issueCall(
        Agent, Server->address(), 1, 1, wire::Bytes(Args), false, true,
        [R = R](const stream::ReplyOutcome &O) {
          R.fulfill(core::Outcome<uint64_t>(
              static_cast<uint64_t>(O.Payload.size())));
        });
    EXPECT_TRUE(Issue.Issued);
    return P;
  }
};

} // namespace

TEST(HotPathBudget, RpcRoundTripStaysUnderAllocationCeiling) {
  // Machine-independent twin of bench_hotpath's allocs/call metric. The
  // PR 7 baseline measured 96.4 allocs per RPC; the acceptance bar is a
  // 2x reduction (<= 48.2). The measured value after the rework is ~31;
  // the ceiling leaves headroom for stdlib variation while still failing
  // if the old per-call node allocations creep back.
  EchoWorld W;
  wire::Bytes Args(64, 0xAB);
  double PerCall = 0;
  uint64_t SealCopied = 0;
  W.Sim.spawn("driver", [&] {
    for (int I = 0; I != 200; ++I) // Warm slabs, rings, pools.
      W.issue(Args).claim();
    uint64_t A0 = allocCount();
    uint64_t C0 = wire::frameStats().PayloadBytesCopied;
    constexpr int N = 500;
    for (int I = 0; I != N; ++I)
      W.issue(Args).claim();
    PerCall = static_cast<double>(allocCount() - A0) / N;
    SealCopied = wire::frameStats().PayloadBytesCopied - C0;
  });
  W.Sim.run();
  EXPECT_GT(PerCall, 0.0);
  EXPECT_LE(PerCall, 48.2) << "RPC hot path regressed past the 2x-vs-"
                              "baseline allocation criterion";
  EXPECT_EQ(SealCopied, 0u) << "send path must seal frames in place";
}
