//===- durability_test.cpp - Crash recovery integration tests -------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// The durable protocols from docs/DURABILITY.md, end to end on the
// simulator: a WAL-backed KvStore whose acknowledged writes survive a
// crash and reinstall, snapshot compaction, and the presumed-abort
// durable 2PC — including the regression this PR exists for: a
// coordinator that crashes between phase 1 and phase 2 leaves a
// prepared participant in doubt, and after both restart the
// transaction resolves to abort (presumed) and releases its locks.
//
//===----------------------------------------------------------------------===//

#include "promises/apps/KvStore.h"
#include "promises/apps/TwoPhase.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::apps;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

struct DurabilityFixture : ::testing::Test {
  Simulation S;
  std::unique_ptr<net::SimNetwork> Net;
  std::vector<std::unique_ptr<Guardian>> Guardians;

  void SetUp() override {
    Net = std::make_unique<net::SimNetwork>(S, net::NetConfig{});
  }

  Guardian &newGuardian(const std::string &Name) {
    Guardians.push_back(std::make_unique<Guardian>(
        *Net, Net->addNode(Name), Name, GuardianConfig{}));
    return *Guardians.back();
  }

  /// A store whose un-synced suffix always vanishes at a crash — the
  /// paper-faithful volatile write-back cache.
  std::unique_ptr<storage::StableStore> newWal(const std::string &Name,
                                               double TornRate = 0.0) {
    storage::StorageConfig SC;
    SC.Name = Name;
    SC.Faults = {1.0, TornRate, 42};
    return std::make_unique<storage::StableStore>(S, SC);
  }
};

TEST_F(DurabilityFixture, AckedKvPutsSurviveCrashAndReplay) {
  auto Wal = newWal("kv");
  KvStoreConfig KC;
  KC.Wal = Wal.get();
  KvStore Kv = installKvStore(newGuardian("srv"), KC);

  Guardian &Client = newGuardian("cl");
  Client.spawnProcess("writer", [&] {
    auto Put = bindHandler(Client, Client.newAgent(), Kv.Put);
    EXPECT_TRUE(Put.call("k1", "v1").isNormal());
    EXPECT_TRUE(Put.call("k2", "v2").isNormal());
  });
  S.run();

  Wal->crash(); // Both puts were acked, so both were forced.
  KvStore Reborn = installKvStore(newGuardian("srv2"), KC);
  EXPECT_EQ(Reborn.Store->Data["k1"], "v1");
  EXPECT_EQ(Reborn.Store->Data["k2"], "v2");
  EXPECT_EQ(Reborn.Store->Replayed, 2u);
  EXPECT_FALSE(Reborn.Store->RecoveredTorn);
}

TEST_F(DurabilityFixture, UnsyncedWriteIsInvisibleAfterCrash) {
  auto Wal = newWal("kv");
  KvStoreConfig KC;
  KC.Wal = Wal.get();
  KvStore Kv = installKvStore(newGuardian("srv"), KC);

  Guardian &Client = newGuardian("cl");
  Client.spawnProcess("writer", [&] {
    auto Put = bindHandler(Client, Client.newAgent(), Kv.Put);
    EXPECT_TRUE(Put.call("acked", "yes").isNormal());
  });
  S.run();

  // A write the crash interrupted between append and force: on the log
  // tail, never acknowledged, and therefore free to vanish.
  wire::Encoder E;
  E.writeString("ghost");
  E.writeString("never-acked");
  Wal->append(E.take());
  Wal->crash();

  KvStore Reborn = installKvStore(newGuardian("srv2"), KC);
  EXPECT_EQ(Reborn.Store->Data.count("ghost"), 0u);
  EXPECT_EQ(Reborn.Store->Data["acked"], "yes");
  EXPECT_EQ(Reborn.Store->Replayed, 1u);
}

TEST_F(DurabilityFixture, SnapshotCompactionLosesNothing) {
  auto Wal = newWal("kv");
  KvStoreConfig KC;
  KC.Wal = Wal.get();
  KC.SnapshotEvery = 4; // Compact aggressively.
  KvStore Kv = installKvStore(newGuardian("srv"), KC);

  Guardian &Client = newGuardian("cl");
  Client.spawnProcess("writer", [&] {
    auto Put = bindHandler(Client, Client.newAgent(), Kv.Put);
    for (int I = 0; I != 10; ++I)
      EXPECT_TRUE(
          Put.call("k" + std::to_string(I), "v" + std::to_string(I))
              .isNormal());
  });
  S.run();
  EXPECT_LT(Wal->recordsInLog(), 10u); // At least one checkpoint fired.

  Wal->crash();
  KvStore Reborn = installKvStore(newGuardian("srv2"), KC);
  ASSERT_EQ(Reborn.Store->Data.size(), 10u);
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(Reborn.Store->Data["k" + std::to_string(I)],
              "v" + std::to_string(I));
  EXPECT_LT(Reborn.Store->Replayed, 10u); // Snapshot carried the rest.
}

TEST_F(DurabilityFixture, DurableCommitSurvivesParticipantCrash) {
  auto WalA = newWal("a"), WalB = newWal("b"), CoordWal = newWal("coord");
  TwoPhaseCoordinatorKit Kit =
      installTwoPhaseCoordinator(newGuardian("coord"), *CoordWal);

  TxnKvConfig TC;
  TC.Wal = WalA.get();
  TxnKv KvA = installTxnKv(newGuardian("a"), TC);
  TC.Wal = WalB.get();
  TxnKv KvB = installTxnKv(newGuardian("b"), TC);

  Guardian &Client = newGuardian("cl");
  TwoPhaseResult R = TwoPhaseResult::Aborted;
  uint64_t Gtid = 0;
  Client.spawnProcess("txn", [&] {
    TwoPhaseCoordinator T(Client, &Kit);
    size_t A = T.enlist(KvA);
    size_t B = T.enlist(KvB);
    EXPECT_TRUE(T.put(A, "x", "1"));
    EXPECT_TRUE(T.put(B, "y", "2"));
    R = T.commit();
    Gtid = T.gtid();

    // Replays of the decision are idempotent: a resolver or retry that
    // re-delivers CommitG for an already-applied gtid succeeds as a
    // no-op even when the local txn id is long gone.
    auto Dup = bindHandler(Client, Client.newAgent(), KvA.CommitG);
    EXPECT_TRUE(Dup.call(9999u, Gtid).isNormal());
  });
  S.run();
  ASSERT_EQ(R, TwoPhaseResult::Committed);
  ASSERT_NE(Gtid, 0u);
  EXPECT_TRUE(Kit.St->Committed.count(Gtid));

  WalA->crash();
  TC.Wal = WalA.get();
  TxnKv Reborn = installTxnKv(newGuardian("a2"), TC);
  EXPECT_EQ(Reborn.Store->Data["x"], "1");
  EXPECT_TRUE(Reborn.Store->Applied.count(Gtid));
  EXPECT_TRUE(Reborn.Store->Locks.empty());
  EXPECT_TRUE(Reborn.Store->Txns.empty());
  EXPECT_EQ(KvB.Store->Data["y"], "2"); // B never crashed.
}

/// The regression this PR's satellite demands: the coordinator crashes
/// between phase 1 (participant prepared, vote logged and forced) and
/// phase 2 (no decision ever logged). The participant crashes too and
/// restarts; replay revives the prepared transaction *with its locks
/// held*, and the resolver must settle it against the restarted
/// coordinator — whose incarnation knows nothing of the gtid, which
/// under presumed abort authoritatively means aborted. The lock must
/// not survive.
TEST_F(DurabilityFixture, CoordinatorCrashBetweenPhasesResolvesToAbort) {
  auto WalA = newWal("a"), CoordWal = newWal("coord");
  TwoPhaseCoordinatorKit Kit1 =
      installTwoPhaseCoordinator(newGuardian("coord"), *CoordWal);

  // First incarnation: no QueryStatus wired, so the prepared txn blocks
  // exactly like the classic 2PC hole until recovery.
  TxnKvConfig TC;
  TC.Wal = WalA.get();
  TxnKv KvA = installTxnKv(newGuardian("a"), TC);

  Guardian &Client = newGuardian("cl");
  uint64_t Gtid = Kit1.St->beginTxn();
  Client.spawnProcess("phase1", [&] {
    auto Agent = Client.newAgent();
    auto Begin = bindHandler(Client, Agent, KvA.Begin);
    auto Out = Begin.call(wire::Unit{});
    ASSERT_TRUE(Out.isNormal());
    uint32_t Txn = Out.value();
    auto Put = bindHandler(Client, Agent, KvA.Put);
    ASSERT_TRUE(Put.call(Txn, "k", "doomed").isNormal());
    auto Prep = bindHandler(Client, Agent, KvA.PrepareG);
    auto Vote = Prep.call(Txn, Gtid);
    ASSERT_TRUE(Vote.isNormal());
    EXPECT_TRUE(Vote.value()); // Voted yes; prepare is on stable media.
  });
  S.run();
  EXPECT_EQ(KvA.Store->Locks.count("k"), 1u);

  // Coordinator and participant both crash before any phase-2 message.
  // The restarted coordinator replays only its incarnation record — the
  // in-flight gtid was volatile by design.
  CoordWal->crash();
  TwoPhaseCoordinatorKit Kit2 =
      installTwoPhaseCoordinator(newGuardian("coord2"), *CoordWal);
  EXPECT_GT(Kit2.St->Incarnation, Kit1.St->Incarnation);
  EXPECT_FALSE(Kit2.St->Committed.count(Gtid));
  EXPECT_FALSE(Kit2.St->Active.count(Gtid));

  WalA->crash();
  Guardian &SrvA2 = newGuardian("a2");
  TC.QueryStatus = [&Client = SrvA2, &Kit2](uint64_t G) -> int {
    auto H = bindHandler(Client, Client.newAgent(), Kit2.StatusPort);
    auto Out = H.call(G);
    return Out.isNormal() ? static_cast<int>(Out.value()) : -1;
  };
  TxnKv Reborn = installTxnKv(SrvA2, TC);

  // Replay revived the in-doubt transaction, locks and all.
  EXPECT_EQ(Reborn.Store->InDoubtRecovered, 1u);
  EXPECT_EQ(Reborn.Store->Locks.count("k"), 1u);

  S.run(); // The resolver probes the new incarnation: presumed abort.
  EXPECT_EQ(Reborn.Store->ResolvedAborts, 1u);
  EXPECT_EQ(Reborn.Store->ResolvedCommits, 0u);
  EXPECT_TRUE(Reborn.Store->Locks.empty());
  EXPECT_TRUE(Reborn.Store->Txns.empty());
  EXPECT_EQ(Reborn.Store->Data.count("k"), 0u);
}

/// The mirror image: the coordinator forced its commit decision and
/// *then* everything crashed. The restarted coordinator replays the
/// decision, so the revived in-doubt participant must redo, not abort.
TEST_F(DurabilityFixture, LoggedDecisionResolvesToCommitAfterRestart) {
  auto WalA = newWal("a"), CoordWal = newWal("coord");
  TwoPhaseCoordinatorKit Kit1 =
      installTwoPhaseCoordinator(newGuardian("coord"), *CoordWal);

  TxnKvConfig TC;
  TC.Wal = WalA.get();
  TxnKv KvA = installTxnKv(newGuardian("a"), TC);

  Guardian &Client = newGuardian("cl");
  uint64_t Gtid = Kit1.St->beginTxn();
  Client.spawnProcess("phase1", [&] {
    auto Agent = Client.newAgent();
    auto Begin = bindHandler(Client, Agent, KvA.Begin);
    auto Out = Begin.call(wire::Unit{});
    ASSERT_TRUE(Out.isNormal());
    uint32_t Txn = Out.value();
    auto Put = bindHandler(Client, Agent, KvA.Put);
    ASSERT_TRUE(Put.call(Txn, "k", "committed").isNormal());
    auto Prep = bindHandler(Client, Agent, KvA.PrepareG);
    ASSERT_TRUE(Prep.call(Txn, Gtid).isNormal());
    Kit1.St->logCommit(Gtid); // Phase 2 dies right after this force.
  });
  S.run();

  CoordWal->crash();
  TwoPhaseCoordinatorKit Kit2 =
      installTwoPhaseCoordinator(newGuardian("coord2"), *CoordWal);
  EXPECT_TRUE(Kit2.St->Committed.count(Gtid)); // The decision replayed.

  WalA->crash();
  Guardian &SrvA2 = newGuardian("a2");
  TC.QueryStatus = [&SrvA2, &Kit2](uint64_t G) -> int {
    auto H = bindHandler(SrvA2, SrvA2.newAgent(), Kit2.StatusPort);
    auto Out = H.call(G);
    return Out.isNormal() ? static_cast<int>(Out.value()) : -1;
  };
  TxnKv Reborn = installTxnKv(SrvA2, TC);
  EXPECT_EQ(Reborn.Store->InDoubtRecovered, 1u);

  S.run();
  EXPECT_EQ(Reborn.Store->ResolvedCommits, 1u);
  EXPECT_EQ(Reborn.Store->Data["k"], "committed");
  EXPECT_TRUE(Reborn.Store->Applied.count(Gtid));
  EXPECT_TRUE(Reborn.Store->Locks.empty());
}

/// A prepared participant that never crashes must still not block
/// forever when phase 2 is simply lost: after ResolveAfter it asks the
/// live coordinator, which no longer lists the gtid in flight — the
/// presumption applies and the locks come free without any restart.
TEST_F(DurabilityFixture, LiveResolverUnblocksLostPhaseTwo) {
  auto WalA = newWal("a"), CoordWal = newWal("coord");
  Guardian &SrvA = newGuardian("a");
  TwoPhaseCoordinatorKit Kit =
      installTwoPhaseCoordinator(newGuardian("coord"), *CoordWal);

  TxnKvConfig TC;
  TC.Wal = WalA.get();
  TC.QueryStatus = [&SrvA, &Kit](uint64_t G) -> int {
    auto H = bindHandler(SrvA, SrvA.newAgent(), Kit.StatusPort);
    auto Out = H.call(G);
    return Out.isNormal() ? static_cast<int>(Out.value()) : -1;
  };
  TxnKv KvA = installTxnKv(SrvA, TC);

  Guardian &Client = newGuardian("cl");
  uint64_t Gtid = Kit.St->beginTxn();
  Client.spawnProcess("phase1", [&] {
    auto Agent = Client.newAgent();
    auto Begin = bindHandler(Client, Agent, KvA.Begin);
    auto Out = Begin.call(wire::Unit{});
    ASSERT_TRUE(Out.isNormal());
    uint32_t Txn = Out.value();
    auto Put = bindHandler(Client, Agent, KvA.Put);
    ASSERT_TRUE(Put.call(Txn, "k", "v").isNormal());
    auto Prep = bindHandler(Client, Agent, KvA.PrepareG);
    ASSERT_TRUE(Prep.call(Txn, Gtid).isNormal());
    // The coordinator gives up without telling anyone (client died, no
    // abort messages got through) — under presumed abort it just drops
    // the txn from its in-flight set and logs nothing.
    Kit.St->finishTxn(Gtid);
  });
  S.run();

  EXPECT_EQ(KvA.Store->ResolvedAborts, 1u);
  EXPECT_TRUE(KvA.Store->Locks.empty());
  EXPECT_EQ(KvA.Store->Data.count("k"), 0u);
}

} // namespace
