//===- wire_codec_test.cpp - External representation tests ----------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/wire/Codec.h"

#include <gtest/gtest.h>

#include <limits>

using namespace promises::wire;

namespace {

template <Transmissible T> T roundTrip(const T &V) {
  auto B = encodeToBytes(V);
  EXPECT_TRUE(B.has_value());
  auto Out = decodeFromBytes<T>(*B);
  EXPECT_TRUE(Out.has_value());
  return Out ? *Out : T{};
}

TEST(WireCodec, ScalarRoundTrips) {
  EXPECT_EQ(roundTrip(true), true);
  EXPECT_EQ(roundTrip(false), false);
  EXPECT_EQ(roundTrip<uint8_t>(0xab), 0xab);
  EXPECT_EQ(roundTrip<uint16_t>(0xbeef), 0xbeef);
  EXPECT_EQ(roundTrip<uint32_t>(0xdeadbeef), 0xdeadbeefu);
  EXPECT_EQ(roundTrip<uint64_t>(0x0123456789abcdefull), 0x0123456789abcdefull);
  EXPECT_EQ(roundTrip<int32_t>(-17), -17);
  EXPECT_EQ(roundTrip<int32_t>(std::numeric_limits<int32_t>::min()),
            std::numeric_limits<int32_t>::min());
  EXPECT_EQ(roundTrip<int64_t>(-123456789012345ll), -123456789012345ll);
}

TEST(WireCodec, DoubleRoundTripsExactly) {
  EXPECT_EQ(roundTrip(3.25), 3.25);
  EXPECT_EQ(roundTrip(-0.0), 0.0);
  EXPECT_EQ(roundTrip(1e300), 1e300);
  double Nan = roundTrip(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(Nan != Nan);
}

TEST(WireCodec, StringRoundTrips) {
  EXPECT_EQ(roundTrip(std::string("")), "");
  EXPECT_EQ(roundTrip(std::string("hello")), "hello");
  std::string WithNul("a\0b", 3);
  EXPECT_EQ(roundTrip(WithNul), WithNul);
  std::string Big(10000, 'x');
  EXPECT_EQ(roundTrip(Big), Big);
}

TEST(WireCodec, VectorRoundTrips) {
  std::vector<int32_t> V{1, -2, 3, -4};
  EXPECT_EQ(roundTrip(V), V);
  std::vector<std::string> Names{"ann", "bob", ""};
  EXPECT_EQ(roundTrip(Names), Names);
  std::vector<int32_t> Empty;
  EXPECT_EQ(roundTrip(Empty), Empty);
}

TEST(WireCodec, NestedCompositeRoundTrips) {
  std::vector<std::pair<std::string, double>> Grades{
      {"ann", 91.5}, {"bob", 76.0}};
  EXPECT_EQ(roundTrip(Grades), Grades);
  std::optional<std::vector<int32_t>> Some{{1, 2, 3}};
  EXPECT_EQ(roundTrip(Some), Some);
  std::optional<std::vector<int32_t>> None;
  EXPECT_EQ(roundTrip(None), None);
}

TEST(WireCodec, TupleRoundTripsInOrder) {
  std::tuple<std::string, int32_t, double> T{"stu", 7, 88.25};
  EXPECT_EQ(roundTrip(T), T);
}

TEST(WireCodec, UnitRoundTrips) {
  auto B = encodeToBytes(Unit{});
  ASSERT_TRUE(B.has_value());
  EXPECT_TRUE(B->empty());
  EXPECT_TRUE(decodeFromBytes<Unit>(*B).has_value());
}

TEST(WireCodec, DecodeFailsOnTruncation) {
  auto B = encodeToBytes(std::string("hello"));
  ASSERT_TRUE(B.has_value());
  for (size_t Cut = 0; Cut < B->size(); ++Cut) {
    Bytes Truncated(B->begin(), B->begin() + static_cast<long>(Cut));
    std::string Reason;
    EXPECT_FALSE(decodeFromBytes<std::string>(Truncated, &Reason).has_value())
        << "cut at " << Cut;
    EXPECT_FALSE(Reason.empty());
  }
}

TEST(WireCodec, DecodeFailsOnTrailingBytes) {
  auto B = encodeToBytes<int32_t>(5);
  ASSERT_TRUE(B.has_value());
  B->push_back(0);
  std::string Reason;
  EXPECT_FALSE(decodeFromBytes<int32_t>(*B, &Reason).has_value());
  EXPECT_EQ(Reason, "trailing bytes after value");
}

TEST(WireCodec, DecodeFailsOnCorruptVectorLength) {
  // A huge length prefix with no elements behind it must fail cleanly
  // without attempting a giant allocation.
  Encoder E;
  E.writeU32(0xffffffffu);
  auto Out = decodeFromBytes<std::vector<int32_t>>(E.bytes());
  EXPECT_FALSE(Out.has_value());
}

TEST(WireCodec, HostileLengthsAreRejectedBeforeAllocation) {
  // The explicit bounds (MaxStringBytes, MaxSequenceElems) reject hostile
  // length prefixes up front with a specific reason — the decoder never
  // sizes a buffer from an unvalidated length, even when the declared
  // length exceeds the bytes actually present.
  {
    Encoder E;
    E.writeU32(MaxStringBytes + 1);
    Decoder D(E.bytes());
    (void)D.readString();
    ASSERT_TRUE(D.failed());
    EXPECT_EQ(D.failReason(), "oversized string");
  }
  {
    Encoder E;
    E.writeU32(MaxStringBytes + 1);
    Decoder D(E.bytes());
    (void)D.readBytes();
    ASSERT_TRUE(D.failed());
    EXPECT_EQ(D.failReason(), "oversized byte sequence");
  }
  {
    // A sequence of zero-byte elements: the truncation check cannot catch
    // this one (every element needs 0 bytes), only the element-count cap
    // can stop the decode loop.
    Encoder E;
    E.writeU32(MaxSequenceElems + 1);
    Decoder D(E.bytes());
    (void)Codec<std::vector<Unit>>::decode(D);
    ASSERT_TRUE(D.failed());
    EXPECT_EQ(D.failReason(), "oversized sequence length");
  }
  {
    // At the boundary the caps do not fire; shortage of bytes is then
    // reported as ordinary truncation.
    Encoder E;
    E.writeU32(MaxStringBytes);
    Decoder D(E.bytes());
    (void)D.readString();
    ASSERT_TRUE(D.failed());
    EXPECT_NE(D.failReason(), "oversized string");
  }
}

TEST(WireCodec, MaxBoundsRoundTripAtModestSizes) {
  // Values comfortably under the caps flow unchanged.
  std::string S(1024, 'x');
  EXPECT_EQ(roundTrip(S), S);
  std::vector<uint8_t> V(2048, 0x5A);
  EXPECT_EQ(roundTrip(V), V);
}

TEST(WireCodec, StickyDecoderFailure) {
  Bytes Empty;
  Decoder D(Empty);
  (void)D.readU32();
  EXPECT_TRUE(D.failed());
  // Later reads stay inert and the first reason is preserved.
  std::string First = D.failReason();
  (void)D.readU64();
  (void)D.readString();
  EXPECT_EQ(D.failReason(), First);
}

TEST(WireCodec, FragileEncodeFailureIsReported) {
  Fragile F;
  F.FailEncode = true;
  std::string Reason;
  EXPECT_FALSE(encodeToBytes(F, &Reason).has_value());
  EXPECT_EQ(Reason, "user codec refused to encode");
}

TEST(WireCodec, FragileDecodeFailureIsReported) {
  Fragile F;
  F.Value = 42;
  F.FailDecode = true;
  auto B = encodeToBytes(F);
  ASSERT_TRUE(B.has_value());
  std::string Reason;
  EXPECT_FALSE(decodeFromBytes<Fragile>(*B, &Reason).has_value());
  EXPECT_EQ(Reason, "user codec refused to decode");
}

TEST(WireCodec, FragileHappyPathRoundTrips) {
  Fragile F;
  F.Value = 42;
  EXPECT_EQ(roundTrip(F).Value, 42);
}

TEST(WireCodec, EncoderSizeTracksBytes) {
  Encoder E;
  EXPECT_EQ(E.size(), 0u);
  E.writeU32(1);
  EXPECT_EQ(E.size(), 4u);
  E.writeString("abc");
  EXPECT_EQ(E.size(), 4u + 4u + 3u);
}

TEST(WireCodec, FailedEncoderStopsWriting) {
  Encoder E;
  E.writeU32(1);
  E.fail("boom");
  E.writeU64(2);
  EXPECT_TRUE(E.failed());
  EXPECT_EQ(E.failReason(), "boom");
  // writeU8 appends unconditionally only through writeLe guards; the u64
  // write above must not have grown the buffer.
  EXPECT_EQ(E.size(), 4u);
}

} // namespace
