//===- integration_capstone_test.cpp - Whole-system scenario --------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// One Mercury-flavoured scenario exercising every layer together: a
// dashboard client drives a grades database and a window server while a
// background auditor runs distributed transactions across two stores —
// then the database node crashes mid-run, the coenter group terminates
// cleanly, the node restarts, and the system finishes the job. Asserts
// global invariants at the end.
//
//===----------------------------------------------------------------------===//

#include "promises/apps/GradesDb.h"
#include "promises/apps/TwoPhase.h"
#include "promises/apps/WindowSystem.h"
#include "promises/core/Coenter.h"
#include "promises/core/PromiseQueue.h"
#include "promises/support/StrUtil.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::apps;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

TEST(Capstone, FullSystemSurvivesCrashAndFinishes) {
  Simulation S;
  net::NetConfig NC;
  NC.LossRate = 0.05;
  NC.Seed = 2026;
  net::SimNetwork Net(S, NC);
  GuardianConfig GC;
  GC.Stream.RetransmitTimeout = msec(10);
  GC.Stream.MaxRetries = 3;

  net::NodeId DbNode = Net.addNode("db");
  auto DbG = std::make_unique<Guardian>(Net, DbNode, "db", GC);
  Guardian WinG(Net, Net.addNode("win"), "win", GC);
  Guardian StoreAG(Net, Net.addNode("storeA"), "storeA", GC);
  Guardian StoreBG(Net, Net.addNode("storeB"), "storeB", GC);
  Guardian ClientG(Net, Net.addNode("client"), "client", GC);

  GradesDb Db = installGradesDb(*DbG);
  WindowSystem W = installWindowSystem(WinG);
  TxnKv KvA = installTxnKv(StoreAG);
  TxnKv KvB = installTxnKv(StoreBG);

  const int N = 40;
  int DashboardRounds = 0;
  bool SawCrashExn = false, RecoveredOk = false;
  int AuditCommits = 0;

  // Crash the grades db mid-run; restart it (fresh guardian) later.
  GradesDb Db2;
  S.schedule(msec(8), [&] { Net.crash(DbNode); });
  S.schedule(msec(100), [&] {
    Net.restart(DbNode);
    DbG = std::make_unique<Guardian>(Net, DbNode, "db2", GC);
    Db2 = installGradesDb(*DbG);
  });

  // The dashboard: record grades and mirror averages into a window.
  ClientG.spawnProcess("dashboard", [&] {
    auto A = ClientG.newAgent();
    WindowPorts Win =
        bindHandler(ClientG, A, W.CreateWindow).call(wire::Unit{}).value();
    auto Puts = bindHandler(ClientG, A, Win.Puts);

    auto RunRound = [&](GradesDb &Target) -> std::optional<Exn> {
      PromiseQueue<Promise<double, NoSuchStudent>> Q(S);
      ArmResult Bad =
          Coenter(S)
              .arm("record",
                   [&]() -> ArmResult {
                     auto RA = ClientG.newAgent();
                     auto Rec = bindHandler(ClientG, RA, Target.RecordGrade);
                     for (int I = 0; I < N; ++I)
                       Q.enq(Rec.streamCall(strprintf("stu%02d", I),
                                            int32_t(60 + I % 30)));
                     return Rec.synch().toExn();
                   })
              .arm("display",
                   [&]() -> ArmResult {
                     for (int I = 0; I < N; ++I) {
                       auto P = Q.deq(); // Keep alive past claim().
                       const auto &O = P.claim();
                       if (!O.isNormal())
                         return O.toExn();
                       Puts.streamCall(strprintf("%.0f ", O.value()));
                     }
                     return Puts.synch().toExn();
                   })
              .run();
      ++DashboardRounds;
      return Bad;
    };

    // Round 1 hits the crash.
    auto Bad = RunRound(Db);
    if (Bad) {
      SawCrashExn = true;
      // Back off past the restart, then run against the new incarnation.
      S.sleep(msec(150));
      auto Bad2 = RunRound(Db2);
      RecoveredOk = !Bad2.has_value();
    }
  });

  // The auditor: distributed transactions across the two stores, running
  // concurrently with everything else; must stay atomic throughout.
  ClientG.spawnProcess("auditor", [&] {
    for (int T = 0; T < 6; ++T) {
      TwoPhaseCoordinator Txn(ClientG);
      size_t IA = Txn.enlist(KvA);
      size_t IB = Txn.enlist(KvB);
      Txn.put(IA, strprintf("audit%d", T), "a");
      Txn.put(IB, strprintf("audit%d", T), "b");
      if (Txn.commit() == TwoPhaseResult::Committed)
        ++AuditCommits;
      S.sleep(msec(10));
    }
  });

  S.run();

  EXPECT_TRUE(SawCrashExn) << "the crash should have surfaced";
  EXPECT_TRUE(RecoveredOk) << "the rerun against db2 should succeed";
  EXPECT_EQ(DashboardRounds, 2);
  // The second round recorded everything on the new incarnation.
  EXPECT_EQ(Db2.Db->RecordCalls, static_cast<uint64_t>(N));
  // The auditor's transactions never tore: both stores agree exactly.
  EXPECT_EQ(AuditCommits, 6);
  EXPECT_EQ(KvA.Store->Data.size(), KvB.Store->Data.size());
  for (auto &[K, V] : KvA.Store->Data)
    EXPECT_TRUE(KvB.Store->Data.count(K)) << K;
  // The window holds one line per successfully displayed average; round 1
  // may have displayed a prefix before dying, round 2 displayed all N.
  auto &Windows = W.Screen->Windows;
  ASSERT_EQ(Windows.size(), 1u);
}

} // namespace
