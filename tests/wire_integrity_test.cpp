//===- wire_integrity_test.cpp - Corruption/duplication at the stream ----===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
//
// End-to-end wire integrity through the call-stream transport: frames
// damaged in flight are detected by the checksum, dropped, counted, traced,
// and recovered by retransmission; duplicated datagrams never double-execute
// a call; frame-valid but undecodable payloads are counted as a distinct
// (local-bug) class. See docs/PROTOCOL.md "Wire integrity".
//
//===----------------------------------------------------------------------===//

#include "promises/stream/StreamTransport.h"
#include "promises/wire/Frame.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

using namespace promises;
using namespace promises::stream;
using namespace promises::sim;

namespace {

wire::Bytes bytesOf(uint32_t V) {
  wire::Encoder E;
  E.writeU32(V);
  return E.take();
}

uint32_t u32Of(const wire::Bytes &B) {
  wire::Decoder D(B);
  return D.readU32();
}

constexpr PortId EchoPort = 1;

struct IntegrityFixture : ::testing::Test {
  Simulation S;
  net::NetConfig NC;
  StreamConfig SC;

  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<StreamTransport> Client, Server;
  net::NodeId CN = 0, SN = 0;

  /// Handler executions per (stream tag, seq): the exactly-once ledger.
  std::map<std::pair<uint64_t, Seq>, int> Deliveries;

  void build() {
    Net = std::make_unique<net::SimNetwork>(S, NC);
    CN = Net->addNode("client");
    SN = Net->addNode("server");
    Client = std::make_unique<StreamTransport>(*Net, CN, SC);
    Server = std::make_unique<StreamTransport>(*Net, SN, SC);
    Server->setCallSink([this](IncomingCall IC) {
      ++Deliveries[{IC.StreamTag, IC.CallSeq}];
      IC.Complete(ReplyStatus::Normal, 0, IC.Args, "");
    });
  }

  void call(AgentId A, uint32_t Arg, std::vector<ReplyOutcome> &Out) {
    auto R = Client->issueCall(A, Server->address(), /*Group=*/1, EchoPort,
                               bytesOf(Arg), /*NoReply=*/false,
                               /*IsRpc=*/false,
                               [&Out](const ReplyOutcome &O) {
                                 Out.push_back(O);
                               });
    ASSERT_TRUE(R.Issued);
  }

  uint64_t eventCount(EventKind K, const std::string &Detail = "") {
    uint64_t N = 0;
    for (const TraceEvent &E : S.metrics().events())
      if (E.Kind == K && (Detail.empty() || E.Detail == Detail))
        ++N;
    return N;
  }
};

TEST_F(IntegrityFixture, CorruptionIsDetectedAndRecovered) {
  build();
  S.metrics().setEnabled(true);
  // Corrupt every datagram for the first few milliseconds, then relent so
  // retransmission can win. The calls issued during the outage must all
  // complete normally, in order, exactly once.
  Net->setCorruptRate(1.0);
  S.schedule(msec(10), [&] { Net->setCorruptRate(0.0); });

  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  for (uint32_t I = 0; I != 8; ++I)
    call(A, I, Out);
  S.run();

  ASSERT_EQ(Out.size(), 8u);
  for (uint32_t I = 0; I != 8; ++I) {
    EXPECT_EQ(Out[I].K, ReplyOutcome::Kind::Normal);
    EXPECT_EQ(u32Of(Out[I].Payload), I);
  }
  for (const auto &[Key, N] : Deliveries)
    EXPECT_EQ(N, 1) << "seq " << Key.second << " executed " << N << " times";

  // Damage actually happened and was caught: the network corrupted copies,
  // the transports rejected exactly that many frames (checksum or header),
  // and every drop was traced with a cause.
  auto NetC = Net->counters();
  EXPECT_GT(NetC.DatagramsCorrupted, 0u);
  uint64_t Dropped = Client->counters().FramesCorruptDropped +
                     Server->counters().FramesCorruptDropped;
  EXPECT_GT(Dropped, 0u);
  EXPECT_LE(Dropped, NetC.DatagramsCorrupted);
  EXPECT_EQ(eventCount(EventKind::FrameCorruptDropped), Dropped);
  EXPECT_EQ(eventCount(EventKind::DatagramCorrupted), NetC.DatagramsCorrupted);
  // Nothing slipped past the checksum into the decoder.
  EXPECT_EQ(Client->counters().MalformedDropped, 0u);
  EXPECT_EQ(Server->counters().MalformedDropped, 0u);
}

TEST_F(IntegrityFixture, DuplicatedDatagramsNeverDoubleExecute) {
  // Satellite regression: with *every* datagram duplicated (and a little
  // ambient loss to force retransmits on top), per-stream dedup must keep
  // execution exactly-once and completion exactly-once.
  NC.DupRate = 1.0;
  NC.LossRate = 0.05;
  NC.Seed = 7;
  build();

  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  for (uint32_t I = 0; I != 32; ++I)
    call(A, I, Out);
  S.run();

  // Every call completed exactly once, in issue order.
  ASSERT_EQ(Out.size(), 32u);
  for (uint32_t I = 0; I != 32; ++I) {
    EXPECT_EQ(Out[I].K, ReplyOutcome::Kind::Normal);
    EXPECT_EQ(u32Of(Out[I].Payload), I);
  }
  // Every call executed exactly once despite the duplicate deliveries.
  EXPECT_EQ(Deliveries.size(), 32u);
  for (const auto &[Key, N] : Deliveries)
    EXPECT_EQ(N, 1) << "seq " << Key.second << " executed " << N << " times";
  EXPECT_GT(Net->counters().DatagramsDuplicated, 0u);
  EXPECT_GT(Server->counters().DuplicateCallsDropped, 0u);
}

TEST_F(IntegrityFixture, GarbageDatagramsAreRejectedWithCause) {
  build();
  S.metrics().setEnabled(true);
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  call(A, 1, Out);
  // Inject raw damage straight at the server's bound port: garbage bytes,
  // a truncated header, and a frame whose magic byte is wrong.
  S.schedule(usec(1), [&] {
    Net->send(Client->address(), Server->address(), {0xDE, 0xAD, 0xBE, 0xEF});
    Net->send(Client->address(), Server->address(), {wire::FrameMagic});
    wire::Bytes F = wire::sealFrame(bytesOf(9));
    F[0] ^= 0xFF;
    Net->send(Client->address(), Server->address(), F);
  });
  S.run();

  // The stream itself is unharmed.
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].K, ReplyOutcome::Kind::Normal);
  // All three injections were dropped pre-decode with distinct causes.
  EXPECT_EQ(Server->counters().FramesCorruptDropped, 3u);
  EXPECT_EQ(eventCount(EventKind::FrameCorruptDropped, "truncated"), 2u);
  EXPECT_EQ(eventCount(EventKind::FrameCorruptDropped, "bad magic"), 1u);
}

TEST_F(IntegrityFixture, MalformedButChecksummedPayloadIsCountedAsLocalBug) {
  build();
  S.metrics().setEnabled(true);
  // A frame that passes every integrity check but whose payload is not a
  // stream message models a *local* encode bug, not line noise; it gets
  // its own counter and trace detail so chaos can flag any occurrence.
  S.schedule(usec(1), [&] {
    Net->send(Client->address(), Server->address(),
              wire::sealFrame({0x77, 0x01, 0x02}));
  });
  S.run();
  EXPECT_EQ(Server->counters().MalformedDropped, 1u);
  EXPECT_EQ(Server->counters().FramesCorruptDropped, 0u);
  EXPECT_EQ(eventCount(EventKind::FrameCorruptDropped, "malformed message"),
            1u);
}

TEST_F(IntegrityFixture, ChecksumAblationStillWorksEndToEnd) {
  // FrameChecksums=false (the benchmark ablation) seals with a zero CRC
  // and skips verification on receive; on a clean network the protocol
  // must be unaffected.
  SC.FrameChecksums = false;
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  for (uint32_t I = 0; I != 4; ++I)
    call(A, I, Out);
  S.run();
  ASSERT_EQ(Out.size(), 4u);
  for (uint32_t I = 0; I != 4; ++I)
    EXPECT_EQ(u32Of(Out[I].Payload), I);
  EXPECT_EQ(Client->counters().FramesCorruptDropped, 0u);
  EXPECT_EQ(Server->counters().FramesCorruptDropped, 0u);
}

TEST_F(IntegrityFixture, ReorderingPreservesCallOrder) {
  // Heavy reordering: most copies suffer up to 2ms of extra delay, far
  // larger than the inter-send gap, so datagrams routinely overtake each
  // other. Sequence numbers must still deliver calls in issue order.
  NC.ReorderRate = 0.75;
  NC.ReorderMax = msec(2);
  NC.Seed = 11;
  build();

  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  for (uint32_t I = 0; I != 24; ++I)
    call(A, I, Out);
  S.run();

  ASSERT_EQ(Out.size(), 24u);
  for (uint32_t I = 0; I != 24; ++I)
    EXPECT_EQ(u32Of(Out[I].Payload), I);
  // Executions happened in seq order per stream (the map is sorted by
  // (tag, seq); deliveries to the sink follow issue order by contract).
  for (const auto &[Key, N] : Deliveries)
    EXPECT_EQ(N, 1);
}

} // namespace
