//===- support_trace_test.cpp - Trace facility tests ----------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/support/Trace.h"

#include "promises/runtime/RemoteHandler.h"

#include <gtest/gtest.h>

#include <vector>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

struct TraceCapture {
  std::vector<std::string> Lines;
  TraceCapture() {
    setTraceSink([this](const std::string &L) { Lines.push_back(L); });
  }
  ~TraceCapture() { setTraceSink(nullptr); }
  bool contains(const std::string &Needle) const {
    for (const auto &L : Lines)
      if (L.find(Needle) != std::string::npos)
        return true;
    return false;
  }
};

TEST(Trace, DisabledByDefault) {
  // No sink, no env var (the test runner does not set PROMISES_TRACE).
  EXPECT_FALSE(traceEnabled());
  tracef("should vanish %d", 1); // Must be a no-op, not a crash.
}

TEST(Trace, SinkReceivesFormattedLines) {
  TraceCapture Cap;
  EXPECT_TRUE(traceEnabled());
  tracef("hello %s %d", "world", 42);
  ASSERT_EQ(Cap.Lines.size(), 1u);
  EXPECT_EQ(Cap.Lines[0], "hello world 42");
}

TEST(Trace, TransportEmitsLifecycleEvents) {
  TraceCapture Cap;
  Simulation S;
  net::SimNetwork Net(S, net::NetConfig{});
  net::NodeId SN = Net.addNode("s");
  GuardianConfig GC;
  GC.Stream.RetransmitTimeout = msec(10);
  GC.Stream.MaxRetries = 1;
  Guardian Server(Net, SN, "s", GC);
  Guardian Client(Net, Net.addNode("c"), "c", GC);
  auto Echo = Server.addHandler<int32_t(int32_t)>(
      "echo", [](int32_t V) -> Outcome<int32_t> { return V; });
  Client.spawnProcess("main", [&] {
    auto H = bindHandler(Client, Client.newAgent(), Echo);
    H.call(int32_t(1));             // issue + tx + reply events.
    Net.crash(SN);                  // Later calls break the stream.
    H.streamCall(int32_t(2));
    H.flush();
    S.sleep(msec(100));
  });
  S.run();
  EXPECT_TRUE(Cap.contains("issue"));
  EXPECT_TRUE(Cap.contains("tx call-batch"));
  EXPECT_TRUE(Cap.contains("tx reply-batch"));
  EXPECT_TRUE(Cap.contains("break sender"));
}

TEST(Trace, SinkRemovalStopsDelivery) {
  auto Cap = std::make_unique<TraceCapture>();
  tracef("one");
  EXPECT_EQ(Cap->Lines.size(), 1u);
  Cap.reset(); // Uninstalls.
  tracef("two");
  EXPECT_FALSE(traceEnabled());
}

} // namespace
