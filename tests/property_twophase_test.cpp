//===- property_twophase_test.cpp - 2PC atomicity under faults ------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Property: across a sweep of loss rates and seeds, a distributed
// transaction over two participants never ends *partially applied
// silently* — either both participants applied, neither did, or the
// coordinator reported the in-doubt/abort outcome honestly.
//
//===----------------------------------------------------------------------===//

#include "promises/apps/TwoPhase.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::apps;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

struct FaultCase {
  double Loss;
  uint64_t Seed;
  bool CrashB; ///< Crash participant B at a random-ish time.

  friend std::ostream &operator<<(std::ostream &OS, const FaultCase &C) {
    return OS << "loss" << static_cast<int>(C.Loss * 100) << "_s" << C.Seed
              << (C.CrashB ? "_crash" : "");
  }
};

class TwoPhaseFaultSweep : public ::testing::TestWithParam<FaultCase> {};

TEST_P(TwoPhaseFaultSweep, NeverSilentlyPartial) {
  const FaultCase &C = GetParam();
  Simulation S;
  net::NetConfig NC;
  NC.LossRate = C.Loss;
  NC.Seed = C.Seed;
  net::SimNetwork Net(S, NC);
  GuardianConfig GC;
  GC.Stream.RetransmitTimeout = msec(10);
  GC.Stream.MaxRetries = 3;
  net::NodeId NB = Net.addNode("b-node");
  Guardian GA(Net, Net.addNode("a-node"), "a", GC);
  Guardian GB(Net, NB, "b", GC);
  Guardian Client(Net, Net.addNode("cl"), "cl", GC);
  TxnKv KvA = installTxnKv(GA);
  TxnKv KvB = installTxnKv(GB);

  if (C.CrashB)
    S.schedule(msec(5 + C.Seed % 40), [&] { Net.crash(NB); });

  TwoPhaseResult R = TwoPhaseResult::Aborted;
  bool Finished = false;
  Client.spawnProcess("txn", [&] {
    TwoPhaseCoordinator T(Client);
    size_t A = T.enlist(KvA);
    size_t B = T.enlist(KvB);
    T.put(A, "k", "va");
    T.put(B, "k", "vb");
    R = T.commit();
    Finished = true;
  });
  S.run();
  ASSERT_TRUE(Finished) << "coordinator hung";

  bool AApplied = KvA.Store->Data.count("k") != 0;
  bool BApplied = KvB.Store->Data.count("k") != 0;
  switch (R) {
  case TwoPhaseResult::Committed:
    EXPECT_TRUE(AApplied && BApplied);
    break;
  case TwoPhaseResult::Aborted:
    // Neither applied. (A crashed participant's volatile state is empty,
    // which also counts as not-applied.)
    EXPECT_FALSE(AApplied);
    EXPECT_FALSE(BApplied);
    break;
  case TwoPhaseResult::InDoubt:
    // Divergence is possible but must have been *reported*.
    SUCCEED();
    break;
  }
  // No locks may leak on live participants.
  EXPECT_TRUE(KvA.Store->Locks.empty() || R == TwoPhaseResult::InDoubt);
}

std::vector<FaultCase> cases() {
  std::vector<FaultCase> Out;
  for (double Loss : {0.0, 0.2, 0.4})
    for (uint64_t Seed : {11ull, 22ull, 33ull, 44ull})
      for (bool Crash : {false, true})
        Out.push_back({Loss, Seed, Crash});
  return Out;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TwoPhaseFaultSweep, ::testing::ValuesIn(cases()),
    [](const ::testing::TestParamInfo<FaultCase> &Info) {
      std::ostringstream OS;
      OS << Info.param;
      return OS.str();
    });

} // namespace
