//===- observability_test.cpp - Unified observability core tests ----------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// The metrics registry (support/Metrics.h) and its wiring through the
// layers: instrument identity, gating, conservation invariants at
// quiescence, typed trace events on break/restart/orphan paths, and the
// exporters.
//
//===----------------------------------------------------------------------===//

#include "promises/runtime/RemoteHandler.h"
#include "promises/support/Metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

//===----------------------------------------------------------------------===//
// Registry unit tests
//===----------------------------------------------------------------------===//

TEST(MetricsRegistry, CounterIdentityAndLabels) {
  MetricsRegistry R;
  Counter &A = R.counter("test.a");
  Counter &A2 = R.counter("test.a");
  EXPECT_EQ(&A, &A2);

  Counter &B = R.counter("test.a", {{"node", "x"}});
  EXPECT_NE(&A, &B);
  Counter &B2 = R.counter("test.a", {{"node", "x"}});
  EXPECT_EQ(&B, &B2);
  Counter &C = R.counter("test.a", {{"node", "y"}});
  EXPECT_NE(&B, &C);

  A.inc();
  A.inc(4);
  EXPECT_EQ(A.value(), 5u);
  EXPECT_EQ(B.value(), 0u);
}

TEST(MetricsRegistry, GaugeDirectAndProbe) {
  MetricsRegistry R;
  Gauge &G = R.gauge("test.g");
  EXPECT_EQ(G.value(), 0.0);
  G.set(3.5);
  G.add(0.5);
  EXPECT_EQ(G.value(), 4.0);

  double X = 7;
  Gauge &P = R.gaugeProbe("test.p", [&X] { return X; });
  EXPECT_EQ(P.value(), 7.0);
  X = 11;
  EXPECT_EQ(P.value(), 11.0); // Probes are read at access time.

  // gaugeProbe rebinds an existing gauge (used to freeze probes whose
  // captures are about to die).
  R.gaugeProbe("test.p", [] { return 2.0; });
  EXPECT_EQ(P.value(), 2.0);
}

TEST(MetricsRegistry, HistogramGatedOnEnabledFlag) {
  MetricsRegistry R;
  ASSERT_FALSE(R.enabled()); // Default off (no PROMISES_METRICS in env).
  Histogram &H = R.histogram("test.h");
  H.observe(10);
  EXPECT_EQ(H.count(), 0u); // Disabled: observe is a no-op.

  R.setEnabled(true);
  H.observe(10);
  H.observe(20);
  EXPECT_EQ(H.count(), 2u);
  EXPECT_EQ(H.min(), 10.0);
  EXPECT_EQ(H.max(), 20.0);
  EXPECT_EQ(H.mean(), 15.0);
}

TEST(MetricsRegistry, HistogramPercentilesAreOrderedAndBounded) {
  MetricsRegistry R;
  R.setEnabled(true);
  Histogram &H = R.histogram("test.h");
  EXPECT_EQ(H.percentile(50), 0.0); // Empty.
  for (int I = 1; I <= 1000; ++I)
    H.observe(static_cast<double>(I));
  EXPECT_EQ(H.count(), 1000u);
  double P50 = H.percentile(50), P90 = H.percentile(90),
         P99 = H.percentile(99);
  EXPECT_GE(P50, H.min());
  EXPECT_LE(P99, H.max());
  EXPECT_LE(P50, P90);
  EXPECT_LE(P90, P99);
  // Log-linear buckets: the approximation is within one sub-bucket.
  EXPECT_GE(P50, 250.0);
  EXPECT_LE(P50, 1000.0);
}

TEST(MetricsRegistry, HistogramPercentilesAreAccurateWithBoundedMemory) {
  // The log-linear (HDR-style) buckets promise two things at once: a
  // relative percentile error of at most 1/SubBuckets per bucket, and a
  // fixed memory footprint no matter how many samples arrive. Check the
  // accuracy against exact order statistics on distributions shaped like
  // the ones the load suite records (uniform latencies, a heavy tail,
  // and tight clusters), and pin the footprint.
  static_assert(sizeof(Histogram) < 20 * 1024,
                "histogram memory must stay O(1) per metric");

  auto exactPercentile = [](std::vector<double> &V, double P) {
    std::sort(V.begin(), V.end());
    size_t Rank = static_cast<size_t>((P / 100.0) *
                                      static_cast<double>(V.size() - 1));
    return V[Rank];
  };
  auto checkDistribution = [&](std::vector<double> Samples) {
    MetricsRegistry R;
    R.setEnabled(true);
    Histogram &H = R.histogram("test.acc");
    for (double S : Samples)
      H.observe(S);
    for (double P : {50.0, 90.0, 99.0, 99.9}) {
      double Exact = exactPercentile(Samples, P);
      double Approx = H.percentile(P);
      // One sub-bucket of slack on either side (~3.2% relative), plus a
      // +-1 absolute for the exact small-integer buckets.
      EXPECT_NEAR(Approx, Exact, Exact / Histogram::SubBuckets + 1.0)
          << "p" << P << " over " << Samples.size() << " samples";
    }
  };

  // Uniform 1..100k (typical latency-us range).
  std::vector<double> Uniform;
  for (int I = 1; I <= 100000; ++I)
    Uniform.push_back(static_cast<double>(I));
  checkDistribution(Uniform);

  // Heavy tail: x = 1/u^2 for a deterministic u sweep — spans 1..1e8.
  std::vector<double> Heavy;
  for (int I = 1; I <= 50000; ++I) {
    double U = static_cast<double>(I) / 50001.0;
    Heavy.push_back(1.0 / (U * U));
  }
  checkDistribution(Heavy);

  // Tight cluster far from 1: all mass inside one power-of-two range,
  // where the old geometric-midpoint buckets were off by up to 41%.
  std::vector<double> Cluster;
  for (int I = 0; I < 10000; ++I)
    Cluster.push_back(70000.0 + static_cast<double>(I % 100));
  checkDistribution(Cluster);
}

TEST(MetricsRegistry, PercentileIsTotalOnGarbageInput) {
  // percentile() is fed config- and flag-derived values directly, so it
  // must be a total function: out-of-range P clamps, NaN maps to the
  // minimum, and none of them may index buckets out of range in a build
  // with asserts stripped.
  MetricsRegistry R;
  R.setEnabled(true);
  Histogram &H = R.histogram("test.h");
  const double NaN = std::numeric_limits<double>::quiet_NaN();
  // Empty histogram: every garbage P still returns 0, never a crash.
  EXPECT_EQ(H.percentile(NaN), 0.0);
  EXPECT_EQ(H.percentile(-5.0), 0.0);
  EXPECT_EQ(H.percentile(250.0), 0.0);
  for (int I = 1; I <= 100; ++I)
    H.observe(static_cast<double>(I));
  // Negative and NaN clamp to p0; above-100 clamps to p100.
  EXPECT_EQ(H.percentile(-5.0), H.percentile(0.0));
  EXPECT_EQ(H.percentile(NaN), H.percentile(0.0));
  EXPECT_EQ(H.percentile(250.0), H.percentile(100.0));
  EXPECT_EQ(H.percentile(std::numeric_limits<double>::infinity()),
            H.percentile(100.0));
  // And the clamped extremes stay inside the observed range.
  EXPECT_GE(H.percentile(0.0), H.min());
  EXPECT_LE(H.percentile(100.0), H.max());
}

TEST(MetricsRegistry, EventsGatedAndRecorded) {
  MetricsRegistry R;
  R.emit({100, EventKind::SenderBreak, 1, 2, 3, 0, "early"});
  EXPECT_TRUE(R.events().empty()); // Disabled: dropped silently.
  EXPECT_EQ(R.droppedEvents(), 0u);

  R.setEnabled(true);
  R.emit({200, EventKind::CallIssued, 1, 42, 7, 0, {}});
  ASSERT_EQ(R.events().size(), 1u);
  EXPECT_EQ(R.events()[0].TsNs, 200u);
  EXPECT_EQ(R.events()[0].Id, 42u);
  EXPECT_STREQ(eventKindName(R.events()[0].Kind), "call_issued");
  EXPECT_STREQ(eventKindName(EventKind::OrphanDestroyed),
               "orphan_destroyed");

  R.clearEvents();
  EXPECT_TRUE(R.events().empty());
}

TEST(MetricsRegistry, ExportersEmitAllInstrumentKinds) {
  MetricsRegistry R;
  R.setEnabled(true);
  R.counter("test.c", {{"node", "n1"}}).inc(3);
  R.gauge("test.g").set(1.5);
  R.histogram("test.h").observe(8);
  R.emit({1000, EventKind::ReceiverBreak, 2, 5, 0, 0, "why \"quoted\""});
  R.emit({2000, EventKind::CallSpan, 2, 5, 1, 500, {}});

  std::ostringstream Sum;
  R.writeSummary(Sum);
  EXPECT_NE(Sum.str().find("test.c{node=n1} = 3"), std::string::npos);
  EXPECT_NE(Sum.str().find("test.g = 1.5"), std::string::npos);
  EXPECT_NE(Sum.str().find("trace events: 2 captured"), std::string::npos);

  std::ostringstream Jsonl;
  R.writeJsonLines(Jsonl);
  std::string J = Jsonl.str();
  EXPECT_NE(J.find("{\"type\":\"counter\",\"name\":\"test.c\","
                   "\"labels\":{\"node\":\"n1\"},\"value\":3}"),
            std::string::npos);
  EXPECT_NE(J.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(J.find("\"kind\":\"receiver_break\""), std::string::npos);
  EXPECT_NE(J.find("\\\"quoted\\\""), std::string::npos); // Escaped.
  EXPECT_NE(J.find("\"dur_ns\":500"), std::string::npos);

  std::ostringstream Chrome;
  R.writeChromeTrace(Chrome);
  std::string T = Chrome.str();
  EXPECT_NE(T.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(T.find("\"ph\":\"i\""), std::string::npos); // Instant event.
  EXPECT_NE(T.find("\"ph\":\"X\""), std::string::npos); // Span event.
  EXPECT_NE(T.find("\"dur\":0.5"), std::string::npos);  // 500ns = 0.5us.
}

namespace strictjson {

// A minimal, deliberately strict JSON value parser: exactly the RFC 8259
// grammar, nothing more. In particular a number must match
// -?(0|[1-9][0-9]*)(.[0-9]+)?([eE][+-]?[0-9]+)? — the bare `nan`, `inf`,
// and `-nan` tokens iostreams print for non-finite doubles are syntax
// errors here, exactly as they are to Python's json module and jq. Used
// to prove the exporters emit machine-parseable output even when the
// instruments were fed garbage.
struct Parser {
  const char *P, *End;
  bool value() {
    skipWs();
    if (P == End)
      return false;
    switch (*P) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
  bool object() {
    ++P; // '{'
    skipWs();
    if (P != End && *P == '}')
      return ++P, true;
    for (;;) {
      skipWs();
      if (P == End || *P != '"' || !string())
        return false;
      skipWs();
      if (P == End || *P++ != ':')
        return false;
      if (!value())
        return false;
      skipWs();
      if (P == End)
        return false;
      if (*P == '}')
        return ++P, true;
      if (*P++ != ',')
        return false;
    }
  }
  bool array() {
    ++P; // '['
    skipWs();
    if (P != End && *P == ']')
      return ++P, true;
    for (;;) {
      if (!value())
        return false;
      skipWs();
      if (P == End)
        return false;
      if (*P == ']')
        return ++P, true;
      if (*P++ != ',')
        return false;
    }
  }
  bool string() {
    ++P; // '"'
    while (P != End && *P != '"') {
      if (*P == '\\') {
        ++P;
        if (P == End)
          return false;
        if (*P == 'u') {
          for (int I = 0; I != 4; ++I)
            if (++P == End || !std::isxdigit(static_cast<unsigned char>(*P)))
              return false;
        }
      }
      ++P;
    }
    if (P == End)
      return false;
    ++P;
    return true;
  }
  bool number() {
    if (P != End && *P == '-')
      ++P;
    if (P == End || !std::isdigit(static_cast<unsigned char>(*P)))
      return false;
    if (*P == '0')
      ++P;
    else
      while (P != End && std::isdigit(static_cast<unsigned char>(*P)))
        ++P;
    if (P != End && *P == '.') {
      ++P;
      if (P == End || !std::isdigit(static_cast<unsigned char>(*P)))
        return false;
      while (P != End && std::isdigit(static_cast<unsigned char>(*P)))
        ++P;
    }
    if (P != End && (*P == 'e' || *P == 'E')) {
      ++P;
      if (P != End && (*P == '+' || *P == '-'))
        ++P;
      if (P == End || !std::isdigit(static_cast<unsigned char>(*P)))
        return false;
      while (P != End && std::isdigit(static_cast<unsigned char>(*P)))
        ++P;
    }
    return true;
  }
  bool literal(const char *L) {
    for (; *L; ++L)
      if (P == End || *P++ != *L)
        return false;
    return true;
  }
  void skipWs() {
    while (P != End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }
};

bool parses(const std::string &S) {
  Parser Psr{S.data(), S.data() + S.size()};
  if (!Psr.value())
    return false;
  Psr.skipWs();
  return Psr.P == Psr.End;
}

} // namespace strictjson

TEST(MetricsRegistry, JsonlStaysParseableUnderNonFiniteInputs) {
  // Regression: a gauge probe that divides by zero or a histogram fed a
  // NaN latency used to poison the JSONL export with bare nan/inf tokens,
  // which strict parsers (Python json, jq, tools/check_bench.py) reject —
  // one bad sample made the whole metrics file unreadable. Non-finite
  // aggregates must now be emitted as 0.
  const double NaN = std::numeric_limits<double>::quiet_NaN();
  const double Inf = std::numeric_limits<double>::infinity();
  MetricsRegistry R;
  R.setEnabled(true);
  R.gauge("test.poisoned_gauge").set(NaN);
  R.gaugeProbe("test.poisoned_probe", [Inf] { return -Inf; });
  Histogram &H = R.histogram("test.poisoned");
  H.observe(NaN); // Min/Max/Sum all become NaN.
  H.observe(Inf);
  H.observe(4.0);
  R.histogram("test.empty"); // Registered but never observed.

  std::ostringstream Jsonl;
  R.writeJsonLines(Jsonl);
  std::string Line;
  size_t Lines = 0;
  std::istringstream In(Jsonl.str());
  while (std::getline(In, Line)) {
    ++Lines;
    EXPECT_TRUE(strictjson::parses(Line)) << "unparseable line: " << Line;
    EXPECT_EQ(Line.find("nan"), std::string::npos) << Line;
    EXPECT_EQ(Line.find("inf"), std::string::npos) << Line;
  }
  EXPECT_EQ(Lines, 4u);
  EXPECT_NE(Jsonl.str().find("\"name\":\"test.poisoned_gauge\",\"labels\":{},"
                             "\"value\":0}"),
            std::string::npos);

  // The human-readable summary must not print bare non-finite tokens
  // either (it feeds grep-based assertions in CI logs).
  std::ostringstream Sum;
  R.writeSummary(Sum);
  EXPECT_EQ(Sum.str().find("nan"), std::string::npos) << Sum.str();
  EXPECT_EQ(Sum.str().find("inf"), std::string::npos) << Sum.str();

  // Sanity: the strict parser itself rejects what the old exporter wrote.
  EXPECT_FALSE(strictjson::parses("{\"value\":nan}"));
  EXPECT_FALSE(strictjson::parses("{\"value\":-nan}"));
  EXPECT_FALSE(strictjson::parses("{\"value\":inf}"));
  EXPECT_TRUE(strictjson::parses("{\"value\":-1.5e-3,\"a\":[0,true,null]}"));
}

TEST(MetricsRegistry, FileExportersWriteFiles) {
  MetricsRegistry R;
  R.counter("test.c").inc();
  std::string Dir = ::testing::TempDir();
  std::string Jsonl = Dir + "/obs_test.metrics.jsonl";
  std::string Trace = Dir + "/obs_test.trace.json";
  EXPECT_TRUE(R.writeJsonLinesFile(Jsonl));
  EXPECT_TRUE(R.writeChromeTraceFile(Trace));
  EXPECT_FALSE(R.writeJsonLinesFile("/nonexistent-dir/x.jsonl"));

  std::ifstream In(Jsonl);
  std::string Line;
  ASSERT_TRUE(std::getline(In, Line));
  EXPECT_NE(Line.find("\"name\":\"test.c\""), std::string::npos);
  std::remove(Jsonl.c_str());
  std::remove(Trace.c_str());
}

//===----------------------------------------------------------------------===//
// Simulation wiring
//===----------------------------------------------------------------------===//

TEST(SimObservability, ContextSwitchCounterAndGauges) {
  Simulation S;
  S.spawn("p", [&] { S.sleep(usec(10)); });
  S.run();
  EXPECT_GT(S.contextSwitches(), 0u);
  EXPECT_EQ(S.metrics().counter("sim.context_switches").value(),
            S.contextSwitches());
  // The queue-depth and live-process gauges are probe-backed.
  EXPECT_EQ(S.metrics().gauge("sim.live_processes").value(), 0.0);
  EXPECT_EQ(S.metrics().gauge("sim.processes_spawned").value(), 1.0);
}

//===----------------------------------------------------------------------===//
// Conservation invariants at quiescence
//===----------------------------------------------------------------------===//

TEST(NetConservation, LossDupJitterQuiescence) {
  Simulation S;
  net::NetConfig NC;
  NC.LossRate = 0.25;
  NC.DupRate = 0.25;
  NC.JitterMax = usec(500);
  NC.Seed = 7;
  net::SimNetwork Net(S, NC);
  net::NodeId A = Net.addNode("a"), B = Net.addNode("b");
  int Got = 0;
  net::Address Dst = Net.bind(B, [&](net::Datagram) { ++Got; });
  net::Address Src = Net.bind(A, [](net::Datagram) {});
  for (int I = 0; I < 400; ++I)
    Net.send(Src, Dst, wire::Bytes{1, 2, 3});
  S.run();

  net::NetCounters C = Net.counters();
  EXPECT_EQ(C.DatagramsSent, 400u);
  EXPECT_GT(C.DatagramsDropped, 0u);
  EXPECT_GT(C.DatagramsDuplicated, 0u);
  EXPECT_EQ(static_cast<uint64_t>(Got), C.DatagramsDelivered);
  // Every in-flight copy was either delivered or dropped.
  EXPECT_EQ(C.DatagramsSent + C.DatagramsDuplicated,
            C.DatagramsDelivered + C.DatagramsDropped);
  // The per-node cells feed the same registry: the senders' view agrees
  // with the network-wide one.
  EXPECT_EQ(Net.counters(A).DatagramsSent, 400u);
  EXPECT_EQ(Net.counters(B).DatagramsDelivered, C.DatagramsDelivered);
}

struct WorldFixture : ::testing::Test {
  Simulation S;
  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<Guardian> Server, Client;
  HandlerRef<int32_t(int32_t)> Echo;
  net::NodeId SN = 0;

  void build(net::NetConfig NC = net::NetConfig()) {
    Net = std::make_unique<net::SimNetwork>(S, NC);
    GuardianConfig GC;
    GC.Stream.RetransmitTimeout = msec(10);
    GC.Stream.MaxRetries = 2;
    SN = Net->addNode("server");
    Server = std::make_unique<Guardian>(*Net, SN, "server", GC);
    Client = std::make_unique<Guardian>(*Net, Net->addNode("client"),
                                        "client", GC);
    Echo = Server->addHandler<int32_t(int32_t)>(
        "echo", [](int32_t V) -> Outcome<int32_t> { return V; });
  }
};

TEST_F(WorldFixture, StreamConservationCleanRun) {
  build();
  Client->spawnProcess("driver", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Echo);
    std::vector<Promise<int32_t>> Ps;
    for (int I = 0; I < 100; ++I)
      Ps.push_back(H.streamCall(int32_t(I)));
    H.flush();
    for (auto &P : Ps)
      P.claim();
  });
  S.run();

  stream::StreamCounters TC = Client->transport().counters();
  EXPECT_EQ(TC.CallsIssued, 100u);
  EXPECT_EQ(TC.CallsFulfilled, 100u);
  EXPECT_EQ(TC.CallsBroken, 0u);
  EXPECT_EQ(TC.CallsIssued, TC.CallsFulfilled + TC.CallsBroken);
  EXPECT_EQ(Server->callsExecuted(), 100u);
}

TEST_F(WorldFixture, StreamConservationAcrossCrashBreak) {
  build();
  // Crash the server before the call batches arrive (propagation is 2ms):
  // the calls terminate through the break path, and the invariant must
  // still balance.
  S.schedule(msec(1), [&] { Net->crash(SN); });
  Client->spawnProcess("driver", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Echo);
    std::vector<Promise<int32_t>> Ps;
    for (int I = 0; I < 50; ++I)
      Ps.push_back(H.streamCall(int32_t(I)));
    H.flush();
    int Broken = 0;
    for (auto &P : Ps)
      if (!P.claim().isNormal())
        ++Broken;
    EXPECT_GT(Broken, 0);
  });
  S.run();

  stream::StreamCounters TC = Client->transport().counters();
  EXPECT_EQ(TC.CallsIssued, 50u);
  EXPECT_GT(TC.CallsBroken, 0u);
  EXPECT_GT(TC.SenderBreaks, 0u);
  EXPECT_EQ(TC.CallsIssued, TC.CallsFulfilled + TC.CallsBroken);

  // Handlers killed by the crash must not linger in the executor tables:
  // the probe gauges read them, and at quiescence both drain to zero.
  MetricLabels SL{{"guardian", "server"}, {"node", "0"}};
  EXPECT_EQ(S.metrics().gauge("runtime.live_call_processes", SL).value(), 0.0);
  EXPECT_EQ(S.metrics().gauge("runtime.handler_queue_depth", SL).value(), 0.0);
}

//===----------------------------------------------------------------------===//
// Typed trace events on the break / restart / orphan paths
//===----------------------------------------------------------------------===//

uint64_t countKind(const MetricsRegistry &R, EventKind K) {
  return static_cast<uint64_t>(
      std::count_if(R.events().begin(), R.events().end(),
                    [K](const TraceEvent &E) { return E.Kind == K; }));
}

TEST_F(WorldFixture, CrashEmitsBreakAndNodeEvents) {
  build();
  S.metrics().setEnabled(true);
  S.schedule(msec(1), [&] { Net->crash(SN); });
  S.schedule(msec(200), [&] { Net->restart(SN); });
  Client->spawnProcess("driver", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Echo);
    auto P = H.streamCall(int32_t(1));
    H.flush();
    P.claim();
  });
  S.run();

  const MetricsRegistry &R = S.metrics();
  EXPECT_GE(countKind(R, EventKind::CallIssued), 1u);
  EXPECT_GE(countKind(R, EventKind::CallBatchTx), 1u);
  EXPECT_EQ(countKind(R, EventKind::SenderBreak), 1u);
  EXPECT_EQ(countKind(R, EventKind::NodeCrash), 1u);
  EXPECT_EQ(countKind(R, EventKind::NodeRestart), 1u);
  // The break event carries the reason in Detail.
  for (const TraceEvent &E : R.events())
    if (E.Kind == EventKind::SenderBreak)
      EXPECT_FALSE(E.Detail.empty());
}

TEST_F(WorldFixture, FulfilledCallEmitsSpanWithLatency) {
  build();
  S.metrics().setEnabled(true);
  Client->spawnProcess("driver", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Echo);
    auto P = H.streamCall(int32_t(9));
    H.flush();
    P.claim();
  });
  S.run();

  const MetricsRegistry &R = S.metrics();
  ASSERT_GE(countKind(R, EventKind::CallSpan), 1u);
  for (const TraceEvent &E : R.events())
    if (E.Kind == EventKind::CallSpan)
      EXPECT_GT(E.DurNs, 0u); // Issue -> outcome took virtual time.
  // The call-latency histogram observed the same span.
  Histogram &H = S.metrics().histogram(
      "stream.call_latency_us",
      {{"node", "client"}, {"port", "1"}});
  EXPECT_GE(H.count(), 1u);
  EXPECT_GT(H.mean(), 0.0);
}

struct OrphanFixture : ::testing::Test {
  Simulation S;
  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<Guardian> Server, Client;
  HandlerRef<int32_t(int32_t)> SlowWork;

  void build() {
    Net = std::make_unique<net::SimNetwork>(S, net::NetConfig{});
    GuardianConfig GC;
    GC.Stream.RetransmitTimeout = msec(10);
    GC.Stream.MaxRetries = 2;
    Server = std::make_unique<Guardian>(*Net, Net->addNode("s"), "s", GC);
    Client = std::make_unique<Guardian>(*Net, Net->addNode("c"), "c", GC);
    SlowWork = Server->addHandler<int32_t(int32_t)>(
        "slow", [this](int32_t V) -> Outcome<int32_t> {
          S.sleep(sec(5));
          return V;
        });
  }
};

TEST_F(OrphanFixture, SupersededStreamEmitsOrphanDestroyed) {
  build();
  S.metrics().setEnabled(true);
  Client->spawnProcess("driver", [&] {
    auto A = Client->newAgent();
    auto H = bindHandler(*Client, A, SlowWork);
    auto P1 = H.streamCall(int32_t(1));
    H.flush();
    S.sleep(msec(20)); // Let the call start executing at the server.
    // Restart and call again: the new incarnation supersedes the old
    // receiver stream, destroying its in-flight execution.
    Client->transport().restart(A, Server->address(),
                                Guardian::DefaultGroup);
    auto P2 = H.streamCall(int32_t(2));
    H.flush();
    (void)P1;
    (void)P2;
  });
  S.run();

  const MetricsRegistry &R = S.metrics();
  EXPECT_EQ(Server->orphansDestroyed(), 1u);
  EXPECT_EQ(countKind(R, EventKind::StreamSuperseded), 1u);
  EXPECT_EQ(countKind(R, EventKind::OrphanDestroyed), 1u);
  EXPECT_GE(countKind(R, EventKind::StreamRestart), 1u);
  EXPECT_EQ(S.metrics()
                .counter("runtime.orphans_destroyed",
                         {{"guardian", "s"}, {"node", "0"}})
                .value(),
            1u);
}

TEST_F(OrphanFixture, ExplicitReceiverBreakEmitsEvent) {
  build();
  S.metrics().setEnabled(true);
  Client->spawnProcess("driver", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), SlowWork);
    auto P = H.streamCall(int32_t(1));
    H.flush();
    while (Server->transport().receiverStreamCount() == 0)
      S.sleep(msec(1));
    Server->transport().breakReceiverStream(1, "poisoned");
    P.claim();
  });
  S.run();

  const MetricsRegistry &R = S.metrics();
  ASSERT_EQ(countKind(R, EventKind::ReceiverBreak), 1u);
  for (const TraceEvent &E : R.events())
    if (E.Kind == EventKind::ReceiverBreak)
      EXPECT_EQ(E.Detail, "poisoned");
}

//===----------------------------------------------------------------------===//
// Disabled-path behavior: counters stay live, gated paths stay silent
//===----------------------------------------------------------------------===//

TEST_F(WorldFixture, DisabledRegistryKeepsCountersButNoEventsOrSamples) {
  build();
  ASSERT_FALSE(S.metrics().enabled());
  Client->spawnProcess("driver", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Echo);
    auto P = H.streamCall(int32_t(1));
    H.flush();
    P.claim();
  });
  S.run();

  EXPECT_EQ(Client->transport().counters().CallsIssued, 1u); // Always on.
  EXPECT_TRUE(S.metrics().events().empty());                 // Gated.
  EXPECT_EQ(S.metrics()
                .histogram("stream.call_latency_us",
                           {{"node", "client"}, {"port", "1"}})
                .count(),
            0u); // Gated.
}

} // namespace
