//===- wire_frame_test.cpp - Frame header + checksum tests ----------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The datagram frame layer (docs/PROTOCOL.md): CRC32C, the versioned
// header, and openFrame's rejection taxonomy. Every corruption class maps
// to a distinct FrameError so dropped frames are diagnosable from counters
// and trace events alone.
//
//===----------------------------------------------------------------------===//

#include "promises/wire/Frame.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::wire;

namespace {

Bytes bytes(std::initializer_list<uint8_t> L) { return Bytes(L); }

TEST(Crc32c, KnownAnswers) {
  // The canonical CRC-32C check value (RFC 3720 appendix, and every other
  // Castagnoli implementation): crc32c("123456789") == 0xE3069283.
  const char *Digits = "123456789";
  EXPECT_EQ(crc32c(reinterpret_cast<const uint8_t *>(Digits), 9), 0xE3069283u);
  // Empty input.
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
  // 32 zero bytes (another published vector): 0x8A9136AA.
  Bytes Zeros(32, 0);
  EXPECT_EQ(crc32c(Zeros), 0x8A9136AAu);
}

TEST(Crc32c, SeedChains) {
  // Checksumming in two chunks with chaining equals one pass.
  Bytes B = bytes({1, 2, 3, 4, 5, 6, 7, 8});
  uint32_t Whole = crc32c(B);
  uint32_t Half = crc32c(B.data(), 4);
  EXPECT_EQ(crc32c(B.data() + 4, 4, Half), Whole);
}

TEST(Frame, SealOpenRoundTrips) {
  for (size_t N : {size_t(0), size_t(1), size_t(17), size_t(4096)}) {
    Bytes Payload(N);
    for (size_t I = 0; I != N; ++I)
      Payload[I] = static_cast<uint8_t>(I * 37 + 11);
    Bytes Frame = sealFrame(Payload);
    EXPECT_EQ(Frame.size(), FrameHeaderBytes + N);
    FrameError Err = FrameError::BadMagic; // Must be reset to None.
    auto Opened = openFrame(Frame, true, &Err);
    ASSERT_TRUE(Opened.has_value()) << "payload size " << N;
    EXPECT_EQ(*Opened, Payload);
    EXPECT_EQ(Err, FrameError::None);
  }
}

TEST(Frame, EveryHeaderByteIsChecked) {
  Bytes Frame = sealFrame(bytes({0xAA, 0xBB, 0xCC}));

  // Truncated: shorter than the header.
  for (size_t N = 0; N != FrameHeaderBytes; ++N) {
    Bytes Short(Frame.begin(), Frame.begin() + N);
    FrameError Err = FrameError::None;
    EXPECT_FALSE(openFrame(Short, true, &Err).has_value());
    EXPECT_EQ(Err, FrameError::Truncated);
  }

  // Bad magic.
  {
    Bytes F = Frame;
    F[0] ^= 0xFF;
    FrameError Err = FrameError::None;
    EXPECT_FALSE(openFrame(F, true, &Err).has_value());
    EXPECT_EQ(Err, FrameError::BadMagic);
  }

  // Bad version.
  {
    Bytes F = Frame;
    F[1] = FrameVersion + 1;
    FrameError Err = FrameError::None;
    EXPECT_FALSE(openFrame(F, true, &Err).has_value());
    EXPECT_EQ(Err, FrameError::BadVersion);
  }

  // Length disagrees with the actual byte count (both directions).
  {
    Bytes F = Frame;
    F.pop_back();
    FrameError Err = FrameError::None;
    EXPECT_FALSE(openFrame(F, true, &Err).has_value());
    EXPECT_EQ(Err, FrameError::BadLength);
  }
  {
    Bytes F = Frame;
    F.push_back(0);
    FrameError Err = FrameError::None;
    EXPECT_FALSE(openFrame(F, true, &Err).has_value());
    EXPECT_EQ(Err, FrameError::BadLength);
  }

  // Oversized: a hostile length field is rejected before any comparison
  // against the real size could allocate or wrap.
  {
    Bytes F = Frame;
    uint32_t Huge = MaxFramePayloadBytes + 1;
    for (size_t I = 0; I != 4; ++I)
      F[2 + I] = static_cast<uint8_t>(Huge >> (8 * I));
    FrameError Err = FrameError::None;
    EXPECT_FALSE(openFrame(F, true, &Err).has_value());
    EXPECT_EQ(Err, FrameError::Oversized);
  }

  // Payload damage: only the checksum can catch it.
  {
    Bytes F = Frame;
    F.back() ^= 0x01;
    FrameError Err = FrameError::None;
    EXPECT_FALSE(openFrame(F, true, &Err).has_value());
    EXPECT_EQ(Err, FrameError::BadChecksum);
  }

  // Checksum field damage.
  {
    Bytes F = Frame;
    F[6] ^= 0x01;
    FrameError Err = FrameError::None;
    EXPECT_FALSE(openFrame(F, true, &Err).has_value());
    EXPECT_EQ(Err, FrameError::BadChecksum);
  }
}

TEST(Frame, ChecksumAblation) {
  // FrameChecksums=false seals with a zero CRC and skips verification;
  // the structural header checks still apply. This is the benchmark
  // ablation knob, not a wire option (see StreamConfig::FrameChecksums).
  Bytes Payload = bytes({1, 2, 3});
  Bytes Unsummed = sealFrame(Payload, /*Checksum=*/false);
  EXPECT_FALSE(openFrame(Unsummed, /*VerifyChecksum=*/true).has_value());
  auto Opened = openFrame(Unsummed, /*VerifyChecksum=*/false);
  ASSERT_TRUE(Opened.has_value());
  EXPECT_EQ(*Opened, Payload);

  // A verifying receiver still accepts checksummed frames, and a
  // non-verifying receiver accepts them too (the CRC is simply ignored).
  Bytes Summed = sealFrame(Payload, /*Checksum=*/true);
  EXPECT_TRUE(openFrame(Summed, /*VerifyChecksum=*/false).has_value());

  // Structural damage is caught even with verification off.
  Bytes F = Unsummed;
  F[0] ^= 0xFF;
  FrameError Err = FrameError::None;
  EXPECT_FALSE(openFrame(F, /*VerifyChecksum=*/false, &Err).has_value());
  EXPECT_EQ(Err, FrameError::BadMagic);
}

TEST(Frame, TrailingBytesRejectedInStrictMode) {
  // Without the out-param, any size mismatch — including extra bytes past
  // the declared payload — is BadLength, byte-for-byte as before.
  Bytes Frame = sealFrame(bytes({0x10, 0x20, 0x30}));
  Bytes Padded = Frame;
  Padded.push_back(0xEE);
  Padded.push_back(0xFF);
  FrameError Err = FrameError::None;
  EXPECT_FALSE(openFrame(Padded, true, &Err).has_value());
  EXPECT_EQ(Err, FrameError::BadLength);
}

TEST(Frame, TrailingBytesToleratedAndCounted) {
  Bytes Payload = bytes({0x10, 0x20, 0x30});
  Bytes Frame = sealFrame(Payload);

  // Exact-length frame: tolerant mode reports zero trailing bytes.
  size_t Trailing = 1234;
  FrameError Err = FrameError::BadMagic;
  auto Opened = openFrame(Frame, true, &Err, &Trailing);
  ASSERT_TRUE(Opened.has_value());
  EXPECT_EQ(*Opened, Payload);
  EXPECT_EQ(Err, FrameError::None);
  EXPECT_EQ(Trailing, 0u);

  // Junk appended past the declared length: accepted, payload sliced to
  // the declared length (the junk never reaches the decoder), and the
  // excess is reported for the net.frames_trailing_bytes counter.
  Bytes Padded = Frame;
  for (uint8_t J : {0xDE, 0xAD, 0xBE, 0xEF, 0x00})
    Padded.push_back(J);
  Trailing = 0;
  Err = FrameError::BadMagic;
  Opened = openFrame(Padded, true, &Err, &Trailing);
  ASSERT_TRUE(Opened.has_value());
  EXPECT_EQ(*Opened, Payload);
  EXPECT_EQ(Err, FrameError::None);
  EXPECT_EQ(Trailing, 5u);

  // The trailing bytes are excluded from checksum verification: damaging
  // them must not turn a valid frame into BadChecksum.
  Bytes Damaged = Padded;
  Damaged.back() ^= 0xFF;
  EXPECT_TRUE(openFrame(Damaged, true, nullptr, &Trailing).has_value());
  EXPECT_EQ(Trailing, 5u);

  // A buffer shorter than declared is still BadLength in tolerant mode,
  // and the out-param resets to zero on the reject path.
  Bytes Short = Frame;
  Short.pop_back();
  Trailing = 77;
  Err = FrameError::None;
  EXPECT_FALSE(openFrame(Short, true, &Err, &Trailing).has_value());
  EXPECT_EQ(Err, FrameError::BadLength);
  EXPECT_EQ(Trailing, 0u);
}

TEST(Frame, ErrorNamesAreDistinct) {
  EXPECT_STREQ(frameErrorName(FrameError::None), "none");
  EXPECT_STREQ(frameErrorName(FrameError::Truncated), "truncated");
  EXPECT_STREQ(frameErrorName(FrameError::BadMagic), "bad magic");
  EXPECT_STREQ(frameErrorName(FrameError::BadVersion), "bad version");
  EXPECT_STREQ(frameErrorName(FrameError::BadLength), "bad length");
  EXPECT_STREQ(frameErrorName(FrameError::Oversized), "oversized");
  EXPECT_STREQ(frameErrorName(FrameError::BadChecksum), "bad checksum");
}

TEST(Frame, ErrPointerIsOptional) {
  Bytes F = sealFrame(bytes({9}));
  F[0] = 0;
  EXPECT_FALSE(openFrame(F).has_value()); // Must not dereference null.
}

} // namespace
