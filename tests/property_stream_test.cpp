//===- property_stream_test.cpp - Stream invariants under faults ----------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Parameterized sweeps over the fault grid (loss x duplication x jitter x
// batch size x seed), checking the call-stream guarantees of paper
// Section 2 as properties:
//
//   P1  every issued call eventually gets exactly one outcome;
//   P2  outcomes arrive in call order;
//   P3  each call is delivered to user code exactly once (exactly-once);
//   P4  promise readiness is monotone in call order (i+1 ready => i ready);
//   P5  normal outcomes carry the right payloads;
//   P6  the same configuration replays identically (determinism).
//
//===----------------------------------------------------------------------===//

#include "promises/runtime/RemoteHandler.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {
struct AppError {
  static constexpr const char *Name = "app_error";
};
} // namespace

namespace promises::wire {
template <> struct Codec<AppError> {
  static void encode(Encoder &, const AppError &) {}
  static AppError decode(Decoder &) { return {}; }
};
} // namespace promises::wire

namespace {

struct FaultParams {
  double Loss;
  double Dup;
  uint64_t JitterUs;
  size_t Batch;
  uint64_t Seed;
  bool ParallelGroup = false; ///< Exercise out-of-order completions.
  bool StateShaped = false;   ///< Exercise full-state reply batches.

  friend std::ostream &operator<<(std::ostream &OS, const FaultParams &P) {
    return OS << "loss" << static_cast<int>(P.Loss * 100) << "_dup"
              << static_cast<int>(P.Dup * 100) << "_jit" << P.JitterUs
              << "_b" << P.Batch << "_s" << P.Seed
              << (P.ParallelGroup ? "_par" : "")
              << (P.StateShaped ? "_ss" : "");
  }
};

struct RunResult {
  Time Elapsed = 0;
  uint64_t Datagrams = 0;
  std::vector<int32_t> Order; // Fulfillment order, by call index.
  int Failures = 0;
  bool DeliveredExactlyOnce = true;
  bool ReadinessMonotone = true;
  bool PayloadsCorrect = true;
  bool ExecutionOrdered = true; ///< Server ran calls in issue order
                                ///< (meaningful for gated groups only).
};

constexpr int NumCalls = 150;

RunResult runWorkload(const FaultParams &FP) {
  RunResult R;
  Simulation S;
  net::NetConfig NC;
  NC.LossRate = FP.Loss;
  NC.DupRate = FP.Dup;
  NC.JitterMax = usec(FP.JitterUs);
  NC.Seed = FP.Seed;
  net::SimNetwork Net(S, NC);
  GuardianConfig GC;
  GC.Stream.MaxBatchCalls = FP.Batch;
  GC.Stream.MaxReplyBatch = FP.Batch;
  GC.Stream.StateShapedReplies = FP.StateShaped;
  Guardian Server(Net, Net.addNode("server"), "server", GC);
  Guardian Client(Net, Net.addNode("client"), "client", GC);
  stream::GroupId Group = Guardian::DefaultGroup;
  if (FP.ParallelGroup) {
    Group = Server.createGroup();
    Server.setParallelGroup(Group);
  }

  struct Seen {
    std::map<int32_t, int> Count;
    std::vector<int32_t> ExecOrder;
  };
  auto ServerSeen = std::make_shared<Seen>();
  auto Work = Server.addHandler<int32_t(int32_t), AppError>(
      "work", Group,
      [ServerSeen, &S](int32_t V) -> Outcome<int32_t, AppError> {
        ++ServerSeen->Count[V];
        ServerSeen->ExecOrder.push_back(V);
        // Variable service time: under a parallel group, later calls can
        // finish first, exercising out-of-order completion buffering.
        S.sleep(usec(20 + static_cast<uint64_t>(V * 13) % 90));
        if (V % 11 == 0)
          return AppError{};
        return V + 1000;
      });

  Client.spawnProcess("driver", [&] {
    auto H = bindHandler(Client, Client.newAgent(), Work);
    std::vector<Promise<int32_t, AppError>> Ps;
    for (int32_t I = 0; I < NumCalls; ++I)
      Ps.push_back(H.streamCall(I));
    H.flush();
    // Claim the last promise; then verify monotonicity + claim the rest
    // in a scrambled order (claims may happen in any order).
    Ps.back().claim();
    for (int I = 0; I + 1 < NumCalls; ++I)
      if (Ps[static_cast<size_t>(I + 1)].ready() &&
          !Ps[static_cast<size_t>(I)].ready())
        R.ReadinessMonotone = false;
    for (int I = NumCalls - 1; I >= 0; --I) {
      const auto &O = Ps[static_cast<size_t>(I)].claim();
      R.Order.push_back(I);
      if (O.isNormal()) {
        if (O.value() != I + 1000)
          R.PayloadsCorrect = false;
      } else if (O.is<AppError>()) {
        if (I % 11 != 0)
          R.PayloadsCorrect = false;
      } else {
        ++R.Failures;
      }
    }
  });
  S.run();
  R.Elapsed = S.now();
  R.Datagrams = Net.counters().DatagramsSent;
  for (const auto &[V, N] : ServerSeen->Count)
    if (N != 1)
      R.DeliveredExactlyOnce = false;
  if (ServerSeen->Count.size() != NumCalls)
    R.DeliveredExactlyOnce = false;
  // P2b: with the default gated execution, the handler bodies STARTED in
  // issue order, whatever the datagram schedule did.
  if (!FP.ParallelGroup)
    for (size_t I = 1; I < ServerSeen->ExecOrder.size(); ++I)
      if (ServerSeen->ExecOrder[I] != ServerSeen->ExecOrder[I - 1] + 1)
        R.ExecutionOrdered = false;
  return R;
}

class StreamFaultSweep : public ::testing::TestWithParam<FaultParams> {};

TEST_P(StreamFaultSweep, GuaranteesHoldUnderFaults) {
  RunResult R = runWorkload(GetParam());
  EXPECT_EQ(R.Order.size(), static_cast<size_t>(NumCalls)) << "P1 violated";
  EXPECT_EQ(R.Failures, 0) << "P1: unexpected unavailable/failure";
  EXPECT_TRUE(R.DeliveredExactlyOnce) << "P3 violated";
  EXPECT_TRUE(R.ReadinessMonotone) << "P4 violated";
  EXPECT_TRUE(R.PayloadsCorrect) << "P5 violated";
  EXPECT_TRUE(R.ExecutionOrdered) << "P2b violated";
}

TEST_P(StreamFaultSweep, RunsAreDeterministic) {
  RunResult A = runWorkload(GetParam());
  RunResult B = runWorkload(GetParam());
  EXPECT_EQ(A.Elapsed, B.Elapsed) << "P6 violated";
  EXPECT_EQ(A.Datagrams, B.Datagrams) << "P6 violated";
}

std::vector<FaultParams> faultGrid() {
  std::vector<FaultParams> Grid;
  const double Losses[] = {0.0, 0.15, 0.35};
  const double Dups[] = {0.0, 0.3};
  const uint64_t Jitters[] = {0, 3000};
  const size_t Batches[] = {1, 4, 16};
  uint64_t Seed = 1000;
  for (double L : Losses)
    for (double D : Dups)
      for (uint64_t J : Jitters)
        for (size_t B : Batches)
          Grid.push_back(FaultParams{L, D, J, B, ++Seed});
  return Grid;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StreamFaultSweep, ::testing::ValuesIn(faultGrid()),
    [](const ::testing::TestParamInfo<FaultParams> &Info) {
      std::ostringstream OS;
      OS << Info.param;
      return OS.str();
    });

// Reduced grids for the two transport variants: parallel in-stream
// execution (out-of-order completions) and state-shaped reply batches.
std::vector<FaultParams> variantGrid() {
  std::vector<FaultParams> Grid;
  uint64_t Seed = 9000;
  for (double L : {0.0, 0.3})
    for (uint64_t J : {uint64_t(0), uint64_t(3000)}) {
      FaultParams Par{L, 0.0, J, 8, ++Seed};
      Par.ParallelGroup = true;
      Grid.push_back(Par);
      FaultParams SS{L, 0.0, J, 8, ++Seed};
      SS.StateShaped = true;
      Grid.push_back(SS);
    }
  return Grid;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, StreamFaultSweep, ::testing::ValuesIn(variantGrid()),
    [](const ::testing::TestParamInfo<FaultParams> &Info) {
      std::ostringstream OS;
      OS << Info.param;
      return OS.str();
    });

} // namespace
