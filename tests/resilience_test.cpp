//===- resilience_test.cpp - Deadlines, cancel, retry, breaker ------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The resilience layer: per-call deadlines (claimFor/claimUntil and the
// wire deadline), cancellation, retry policies, admission-control
// shedding, and endpoint circuit breaking.
//
//===----------------------------------------------------------------------===//

#include "promises/core/Exceptions.h"
#include "promises/runtime/RemoteHandler.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

struct ResilienceFixture : ::testing::Test {
  Simulation S;
  net::NetConfig NC;
  GuardianConfig GC;     // Server side.
  GuardianConfig ClientGC; // Client side (breaker knobs live here).

  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<Guardian> Server, Client;
  net::NodeId SN = 0, CN = 0;

  std::vector<int32_t> Executed;
  HandlerRef<int32_t(int32_t)> Fast;
  HandlerRef<int32_t(int32_t)> Slow;

  void build() {
    Net = std::make_unique<net::SimNetwork>(S, NC);
    SN = Net->addNode("server");
    CN = Net->addNode("client");
    Server = std::make_unique<Guardian>(*Net, SN, "server", GC);
    Client = std::make_unique<Guardian>(*Net, CN, "client", ClientGC);
    Fast = Server->addHandler<int32_t(int32_t)>(
        "fast", [this](int32_t V) -> Outcome<int32_t> {
          Executed.push_back(V);
          return V * 10;
        });
    Slow = Server->addHandler<int32_t(int32_t)>(
        "slow", [this](int32_t V) -> Outcome<int32_t> {
          Executed.push_back(V);
          S.sleep(msec(5));
          return V * 10;
        });
  }
};

//===----------------------------------------------------------------------===//
// claimFor / claimUntil
//===----------------------------------------------------------------------===//

TEST_F(ResilienceFixture, ClaimForTimesOutThenDelivers) {
  build();
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    auto P = H.streamCall(int32_t(1));
    H.flush();
    // The slow handler takes 5ms; a 1ms claim window must time out
    // without consuming the outcome.
    Time T0 = S.now();
    EXPECT_EQ(P.claimFor(msec(1)), nullptr);
    EXPECT_GE(S.now(), T0 + msec(1));
    // A second, generous window sees the real outcome.
    const auto *O = P.claimFor(sec(1));
    ASSERT_NE(O, nullptr);
    EXPECT_EQ(O->value(), 10);
    // claimUntil with a deadline already in the past returns immediately
    // once the value exists.
    EXPECT_NE(P.claimUntil(0), nullptr);
  });
  S.run();
}

TEST_F(ResilienceFixture, ClaimForOnBornReadyPromiseNeedsNoSimulation) {
  // Born-ready promises have no wait queue; claimFor must not touch one.
  auto P = Promise<int32_t>::makeReady(Outcome<int32_t>(int32_t(7)));
  const auto *O = P.claimFor(msec(1));
  ASSERT_NE(O, nullptr);
  EXPECT_EQ(O->value(), 7);
}

TEST_F(ResilienceFixture, RepeatedClaimAfterUnavailableIsStable) {
  // Claiming an unavailable outcome is repeatable: the promise stays
  // ready and every claim observes the same exception.
  GC.Stream.RetransmitTimeout = msec(5);
  GC.Stream.MaxRetries = 1;
  ClientGC = GC;
  build();
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Fast);
    Net->crash(SN);
    auto P = H.streamCall(int32_t(1));
    H.flush();
    const auto &O1 = P.claim();
    EXPECT_TRUE(O1.is<Unavailable>());
    const auto &O2 = P.claim();
    EXPECT_TRUE(O2.is<Unavailable>());
    EXPECT_EQ(O1.get<Unavailable>().Reason, O2.get<Unavailable>().Reason);
    EXPECT_TRUE(P.ready());
  });
  S.run();
}

TEST_F(ResilienceFixture, SynchAfterShutdownReportsTransportShutDown) {
  GC.Stream.AutoRestart = false;
  ClientGC = GC;
  build();
  SynchResult SR;
  std::optional<core::Exn> Late;
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    auto P = H.streamCall(int32_t(1));
    H.flush();
    Client->transport().shutdown();
    // The window cannot be vouched for: synch reports the shutdown.
    SR = H.synch();
    // With AutoRestart off and the transport dead, further sends fail
    // immediately with a born-ready promise.
    Late = H.send(int32_t(2));
  });
  S.run();
  EXPECT_EQ(SR.K, SynchResult::Kind::Unavailable);
  EXPECT_EQ(SR.Reason, core::reasons::TransportShutDown);
  ASSERT_TRUE(Late.has_value());
  EXPECT_EQ(Late->Name, "unavailable");
}

//===----------------------------------------------------------------------===//
// Wire deadlines
//===----------------------------------------------------------------------===//

TEST_F(ResilienceFixture, DeadlineExpiresWhileGatedBehindSlowCall) {
  build();
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    // Propagation alone is 2ms, so a 4ms deadline lets call 1 start in
    // time while call 2 — gated behind 5ms of service — must expire.
    H.withDeadline(msec(4));
    auto P1 = H.streamCall(int32_t(1));
    auto P2 = H.streamCall(int32_t(2));
    H.flush();
    ASSERT_TRUE(P1.claim().isNormal());
    const auto &O2 = P2.claim();
    ASSERT_TRUE(O2.is<Unavailable>());
    EXPECT_EQ(O2.get<Unavailable>().Reason, core::reasons::DeadlineExpired);
  });
  S.run();
  // The expired call never ran the handler, and the drop was counted.
  EXPECT_EQ(Executed, (std::vector<int32_t>{1}));
  EXPECT_EQ(Server->deadlinesExpired(), 1u);
  EXPECT_EQ(Server->callsExecuted(), 1u);
}

TEST_F(ResilienceFixture, GenerousDeadlineDoesNotFire) {
  build();
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    H.withDeadline(sec(1));
    auto P = H.streamCall(int32_t(3));
    H.flush();
    EXPECT_TRUE(P.claim().isNormal());
  });
  S.run();
  EXPECT_EQ(Server->deadlinesExpired(), 0u);
}

//===----------------------------------------------------------------------===//
// Cancellation
//===----------------------------------------------------------------------===//

TEST_F(ResilienceFixture, CancelDestroysExecutingCallAndUnblocksSuccessor) {
  build();
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    auto [P1, C1] = H.streamCallCancellable(int32_t(1));
    auto P2 = H.streamCall(int32_t(2));
    H.flush();
    S.sleep(msec(1)); // Let call 1 start executing (5ms service time).
    ASSERT_TRUE(C1.valid());
    EXPECT_TRUE(H.cancel(C1));
    const auto &O1 = P1.claim();
    ASSERT_TRUE(O1.is<Unavailable>());
    EXPECT_EQ(O1.get<Unavailable>().Reason, core::reasons::Cancelled);
    // The successor still executes and completes: cancellation advanced
    // the stream's execution gate past the dead call.
    EXPECT_EQ(P2.claim().value(), 20);
  });
  S.run();
  // Call 1 started (hence in Executed) but was destroyed mid-sleep.
  EXPECT_EQ(Executed, (std::vector<int32_t>{1, 2}));
  auto SrvC = Server->transport().counters();
  EXPECT_EQ(SrvC.CallsCancelled, 1u);
  auto CliC = Client->transport().counters();
  EXPECT_EQ(CliC.CancelsSent, 1u);
  // Quiescence: nothing leaked on the kill path.
  EXPECT_EQ(Server->liveCallProcessCount(), 0u);
  EXPECT_EQ(Server->gatedCallCount(), 0u);
}

TEST_F(ResilienceFixture, CancelBeforeDeliveryDropsCallWithoutExecuting) {
  build();
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    auto P1 = H.streamCall(int32_t(1));
    auto [P2, C2] = H.streamCallCancellable(int32_t(2));
    auto P3 = H.streamCall(int32_t(3));
    // Cancel before flush: the cancel races ahead of redelivery and the
    // receiver marks the seq, completing it at delivery time.
    EXPECT_TRUE(H.cancel(C2));
    H.flush();
    EXPECT_TRUE(P1.claim().isNormal());
    const auto &O2 = P2.claim();
    ASSERT_TRUE(O2.is<Unavailable>());
    EXPECT_EQ(O2.get<Unavailable>().Reason, core::reasons::Cancelled);
    EXPECT_EQ(P3.claim().value(), 30);
  });
  S.run();
  // Call 2 never reached its handler.
  EXPECT_EQ(Executed, (std::vector<int32_t>{1, 3}));
  EXPECT_EQ(Server->transport().counters().CallsCancelled, 1u);
}

TEST_F(ResilienceFixture, CancelAfterOutcomeIsRefused) {
  build();
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Fast);
    auto [P, C] = H.streamCallCancellable(int32_t(1));
    H.flush();
    EXPECT_EQ(P.claim().value(), 10);
    // The outcome already arrived; there is nothing left to cancel.
    EXPECT_FALSE(H.cancel(C));
  });
  S.run();
  EXPECT_EQ(Client->transport().counters().CancelsSent, 0u);
}

//===----------------------------------------------------------------------===//
// Retry policies
//===----------------------------------------------------------------------===//

TEST_F(ResilienceFixture, IdempotentCallRetriesPastTransientOverload) {
  GC.MaxPendingCalls = 1; // Server sheds while the slow call runs.
  build();
  Client->spawnProcess("occupier", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    auto P = H.streamCall(int32_t(1));
    H.flush();
    P.claim();
  });
  Client->spawnProcess("retrier", [&] {
    S.sleep(msec(1)); // Arrive while the slow call occupies the server.
    auto H = bindHandler(*Client, Client->newAgent(), Fast);
    RetryPolicy RP;
    RP.MaxAttempts = 4;
    RP.Backoff = msec(4);
    H.withRetryPolicy(RP).declareIdempotent();
    auto P = H.streamCall(int32_t(2));
    H.flush();
    // The first attempt is shed; a backed-off retry lands after the slow
    // call drains and succeeds.
    EXPECT_EQ(P.claim().value(), 20);
  });
  S.run();
  EXPECT_GE(Server->callsShed(), 1u);
  EXPECT_GE(Client->retriesIssued(), 1u);
}

TEST_F(ResilienceFixture, NonIdempotentCallIsNotRetried) {
  GC.MaxPendingCalls = 1;
  build();
  Client->spawnProcess("occupier", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    auto P = H.streamCall(int32_t(1));
    H.flush();
    P.claim();
  });
  Client->spawnProcess("caller", [&] {
    S.sleep(msec(1));
    auto H = bindHandler(*Client, Client->newAgent(), Fast);
    RetryPolicy RP;
    RP.MaxAttempts = 4;
    RP.Backoff = msec(4);
    H.withRetryPolicy(RP); // IdempotentOnly (default) + not declared.
    auto P = H.streamCall(int32_t(2));
    H.flush();
    const auto &O = P.claim();
    ASSERT_TRUE(O.is<Unavailable>());
    EXPECT_EQ(O.get<Unavailable>().Reason, core::reasons::Overloaded);
  });
  S.run();
  EXPECT_EQ(Client->retriesIssued(), 0u);
}

TEST_F(ResilienceFixture, RetryBudgetBoundsAttempts) {
  // A permanently-crashed server: every attempt breaks with unavailable.
  // The budget (not MaxAttempts) is what stops the retries.
  GC.Stream.RetransmitTimeout = msec(2);
  GC.Stream.MaxRetries = 1;
  ClientGC = GC;
  build();
  Client->spawnProcess("main", [&] {
    Net->crash(SN);
    auto H = bindHandler(*Client, Client->newAgent(), Fast);
    RetryPolicy RP;
    RP.MaxAttempts = 10;
    RP.Backoff = msec(1);
    RP.Budget = 2.0; // Two retry tokens only.
    H.withRetryPolicy(RP).declareIdempotent();
    auto P = H.streamCall(int32_t(1));
    H.flush();
    EXPECT_TRUE(P.claim().is<Unavailable>());
  });
  S.run();
  EXPECT_EQ(Client->retriesIssued(), 2u);
}

//===----------------------------------------------------------------------===//
// Admission control (shedding)
//===----------------------------------------------------------------------===//

TEST_F(ResilienceFixture, OverloadedGuardianShedsBeyondMaxPendingCalls) {
  GC.MaxPendingCalls = 2;
  build();
  int Normal = 0, Shed = 0;
  Client->spawnProcess("burst", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    std::vector<Promise<int32_t>> Ps;
    for (int32_t I = 0; I < 6; ++I)
      Ps.push_back(H.streamCall(I));
    H.flush();
    for (auto &P : Ps) {
      const auto &O = P.claim();
      if (O.isNormal()) {
        ++Normal;
      } else {
        ASSERT_TRUE(O.is<Unavailable>());
        EXPECT_EQ(O.get<Unavailable>().Reason, core::reasons::Overloaded);
        ++Shed;
      }
    }
  });
  S.run();
  // The burst lands in one batch: two calls are admitted (one executing,
  // one gated), the rest shed. Outcomes are conserved either way.
  EXPECT_EQ(Normal, 2);
  EXPECT_EQ(Shed, 4);
  EXPECT_EQ(Server->callsShed(), 4u);
  EXPECT_EQ(Server->callsExecuted(), 2u);
}

//===----------------------------------------------------------------------===//
// Circuit breaking
//===----------------------------------------------------------------------===//

TEST_F(ResilienceFixture, BreakerFailsFastWithoutTouchingNetworkThenHeals) {
  ClientGC.Stream.RetransmitTimeout = msec(2);
  ClientGC.Stream.MaxRetries = 1;
  ClientGC.Stream.BreakerThreshold = 1;
  ClientGC.Stream.BreakerCooldown = msec(4);
  build();
  Client->spawnProcess("main", [&] {
    Net->setPartitioned(CN, SN, true);
    auto A = Client->newAgent();
    auto H = bindHandler(*Client, A, Fast);
    // First call: times out, breaks, trips the breaker.
    auto P1 = H.streamCall(int32_t(1));
    H.flush();
    EXPECT_TRUE(P1.claim().is<Unavailable>());
    EXPECT_EQ(Client->transport().breakerState(A, Server->address(),
                                               Guardian::DefaultGroup),
              1);
    EXPECT_EQ(Client->transport().openBreakerCount(), 1u);
    // Second call fails fast: born-ready promise, zero datagrams.
    uint64_t SentBefore = Net->counters().DatagramsSent;
    auto P2 = H.streamCall(int32_t(2));
    ASSERT_TRUE(P2.ready());
    const auto &O2 = P2.claim();
    ASSERT_TRUE(O2.is<Unavailable>());
    EXPECT_EQ(O2.get<Unavailable>().Reason, core::reasons::CircuitOpen);
    EXPECT_EQ(Net->counters().DatagramsSent, SentBefore);
    // Heal the link; the half-open probe draws a reply and closes the
    // breaker, after which calls flow normally again.
    Net->setPartitioned(CN, SN, false);
    S.sleep(msec(20));
    EXPECT_EQ(Client->transport().breakerState(A, Server->address(),
                                               Guardian::DefaultGroup),
              0);
    auto P3 = H.streamCall(int32_t(3));
    H.flush();
    EXPECT_EQ(P3.claim().value(), 30);
  });
  S.run();
  auto C = Client->transport().counters();
  EXPECT_EQ(C.BreakerOpens, 1u);
  EXPECT_GE(C.BreakerFastFails, 1u);
  EXPECT_GE(C.BreakerProbes, 1u);
  EXPECT_EQ(C.BreakerCloses, 1u);
  EXPECT_EQ(Client->transport().openBreakerCount(), 0u);
}

TEST_F(ResilienceFixture, ReceiverReportedBreaksDoNotTripBreaker) {
  // Decode failures prove the endpoint is reachable: the breaker must
  // ignore them no matter how many occur consecutively.
  ClientGC.Stream.BreakerThreshold = 1;
  build();
  auto Fragile = Server->addHandler<wire::Fragile(wire::Fragile)>(
      "fragile", [](wire::Fragile F) -> Outcome<wire::Fragile> { return F; });
  Client->spawnProcess("main", [&] {
    auto A = Client->newAgent();
    auto H = bindHandler(*Client, A, Fragile);
    for (int I = 0; I < 3; ++I) {
      wire::Fragile Bad;
      Bad.FailDecode = true;
      auto P = H.streamCall(Bad);
      H.flush();
      EXPECT_TRUE(P.claim().is<Failure>());
    }
    EXPECT_EQ(Client->transport().breakerState(A, Server->address(),
                                               Guardian::DefaultGroup),
              0);
  });
  S.run();
  EXPECT_EQ(Client->transport().counters().BreakerOpens, 0u);
}

//===----------------------------------------------------------------------===//
// Overload-path accounting
//===----------------------------------------------------------------------===//
//
// The degradation battery leans on these identities: a completion that
// reports unavailable("overloaded") increments call.shed exactly once and
// nothing in breaker.*; unavailable("circuit open") increments
// breaker.fast_fails exactly once and nothing in call.shed; and shed
// completions never consume retry-budget tokens — only an actually-issued
// retry attempt does.
//===----------------------------------------------------------------------===//

TEST_F(ResilienceFixture, ShedCompletionCountsOnceAsShedOnly) {
  GC.MaxPendingCalls = 1;
  build();
  S.metrics().setEnabled(true);
  Client->spawnProcess("occupier", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    auto P = H.streamCall(int32_t(1));
    H.flush();
    P.claim();
  });
  Client->spawnProcess("caller", [&] {
    S.sleep(msec(1)); // Arrive while the slow call holds the only slot.
    auto H = bindHandler(*Client, Client->newAgent(), Fast);
    auto P = H.streamCall(int32_t(2));
    H.flush();
    const auto &O = P.claim();
    ASSERT_TRUE(O.is<Unavailable>());
    EXPECT_EQ(O.get<Unavailable>().Reason, core::reasons::Overloaded);
  });
  S.run();
  // Exactly one shed, mirrored one-to-one by the trace events, and no
  // breaker or retry involvement anywhere.
  EXPECT_EQ(Server->callsShed(), 1u);
  size_t ShedEvents = 0;
  for (const auto &E : S.metrics().events())
    ShedEvents += E.Kind == EventKind::CallShed;
  EXPECT_EQ(ShedEvents, 1u);
  EXPECT_EQ(Client->transport().counters().BreakerFastFails, 0u);
  EXPECT_EQ(Client->transport().counters().BreakerOpens, 0u);
  EXPECT_EQ(Client->retriesIssued(), 0u);
  // The call had no retry policy: the shed must not have touched the
  // retry bucket for this endpoint (it should not even exist yet), so a
  // full Budget's worth of tokens is still available.
  EXPECT_TRUE(Client->takeRetryToken(Server->address(), 2.0));
  EXPECT_TRUE(Client->takeRetryToken(Server->address(), 2.0));
  EXPECT_FALSE(Client->takeRetryToken(Server->address(), 2.0));
}

TEST_F(ResilienceFixture, FastFailCompletionCountsOnceAsBreakerOnly) {
  ClientGC.Stream.RetransmitTimeout = msec(2);
  ClientGC.Stream.MaxRetries = 1;
  ClientGC.Stream.BreakerThreshold = 1;
  ClientGC.Stream.BreakerCooldown = sec(1); // Stay open for the test.
  build();
  Client->spawnProcess("main", [&] {
    Net->setPartitioned(CN, SN, true);
    auto H = bindHandler(*Client, Client->newAgent(), Fast);
    auto P1 = H.streamCall(int32_t(1));
    H.flush();
    EXPECT_TRUE(P1.claim().is<Unavailable>()); // Timeout break trips it.
    for (int32_t I = 2; I <= 4; ++I) {
      auto P = H.streamCall(I);
      ASSERT_TRUE(P.ready()); // Born-ready: never touched the network.
      const auto &O = P.claim();
      ASSERT_TRUE(O.is<Unavailable>());
      EXPECT_EQ(O.get<Unavailable>().Reason, core::reasons::CircuitOpen);
    }
  });
  S.run();
  // Three fast-fails, each counted exactly once as breaker work; the
  // shed counters on both sides never move.
  EXPECT_EQ(Client->transport().counters().BreakerFastFails, 3u);
  EXPECT_EQ(Client->transport().counters().BreakerOpens, 1u);
  EXPECT_EQ(Server->callsShed(), 0u);
  EXPECT_EQ(Client->callsShed(), 0u);
  EXPECT_EQ(Server->callsExecuted(), 0u);
}

TEST_F(ResilienceFixture, FastFailedRetryRefundsItsBudgetToken) {
  // Attempt 1 times out and trips the breaker; the scheduled retry then
  // fast-fails locally without touching the network. That retry consumed
  // a budget token for an attempt that never happened — it must be
  // refunded, or sustained fast-fails drain the budget that healthy
  // endpoints will need after the partition heals.
  GC.Stream.RetransmitTimeout = msec(2);
  GC.Stream.MaxRetries = 1;
  ClientGC = GC;
  ClientGC.Stream.BreakerThreshold = 1;
  ClientGC.Stream.BreakerCooldown = sec(1);
  build();
  Client->spawnProcess("main", [&] {
    Net->crash(SN);
    auto H = bindHandler(*Client, Client->newAgent(), Fast);
    RetryPolicy RP;
    RP.MaxAttempts = 10;
    RP.Backoff = msec(1);
    RP.Budget = 2.0;
    H.withRetryPolicy(RP).declareIdempotent();
    auto P = H.streamCall(int32_t(1));
    H.flush();
    const auto &O = P.claim();
    ASSERT_TRUE(O.is<Unavailable>());
    EXPECT_EQ(O.get<Unavailable>().Reason, core::reasons::CircuitOpen);
  });
  S.run();
  // One real retry was issued (and fast-failed); its token came back.
  EXPECT_EQ(Client->retriesIssued(), 1u);
  EXPECT_EQ(Client->transport().counters().BreakerFastFails, 1u);
  // The bucket is back at the full 2.0: two takes succeed, a third fails.
  EXPECT_TRUE(Client->takeRetryToken(Server->address(), 2.0));
  EXPECT_TRUE(Client->takeRetryToken(Server->address(), 2.0));
  EXPECT_FALSE(Client->takeRetryToken(Server->address(), 2.0));
}

TEST_F(ResilienceFixture, RetryAfterShedConsumesExactlyOneTokenPerRetry) {
  GC.MaxPendingCalls = 1;
  build();
  Client->spawnProcess("occupier", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    auto P = H.streamCall(int32_t(1));
    H.flush();
    P.claim();
  });
  Client->spawnProcess("retrier", [&] {
    S.sleep(msec(1));
    auto H = bindHandler(*Client, Client->newAgent(), Fast);
    RetryPolicy RP;
    RP.MaxAttempts = 4;
    RP.Backoff = msec(4);
    RP.Budget = 3.0;
    RP.BudgetCredit = 0.5;
    H.withRetryPolicy(RP).declareIdempotent();
    auto P = H.streamCall(int32_t(2));
    H.flush();
    EXPECT_EQ(P.claim().value(), 20);
  });
  S.run();
  // One shed completion, one retry that succeeded. The shed itself cost
  // nothing; the retry debited 1.0 and the success credited 0.5 back:
  // 3.0 - 1.0 + 0.5 = 2.5 tokens left — two takes, not three.
  ASSERT_EQ(Client->retriesIssued(), 1u);
  EXPECT_EQ(Server->callsShed(), 1u);
  EXPECT_TRUE(Client->takeRetryToken(Server->address(), 3.0));
  EXPECT_TRUE(Client->takeRetryToken(Server->address(), 3.0));
  EXPECT_FALSE(Client->takeRetryToken(Server->address(), 3.0));
}

TEST_F(ResilienceFixture, PerStreamQuotaShedsStormWithoutStarvingOthers) {
  // Tenant isolation at the admission layer: one stream may hold at most
  // MaxPendingPerStream slots, so a storming agent sheds against its own
  // quota while another agent's calls are admitted untouched.
  GC.MaxPendingPerStream = 1;
  build();
  int StormNormal = 0, StormShed = 0;
  Client->spawnProcess("main", [&] {
    auto Stormer = bindHandler(*Client, Client->newAgent(), Slow);
    std::vector<Promise<int32_t>> Ps;
    for (int32_t I = 0; I < 4; ++I)
      Ps.push_back(Stormer.streamCall(I));
    Stormer.flush();
    // The quiet agent's single call rides its own stream: admitted and
    // served while the storm stream is pinned at its quota.
    auto Quiet = bindHandler(*Client, Client->newAgent(), Fast);
    auto PQ = Quiet.streamCall(int32_t(100));
    Quiet.flush();
    EXPECT_EQ(PQ.claim().value(), 1000);
    for (auto &P : Ps) {
      const auto &O = P.claim();
      if (O.isNormal()) {
        ++StormNormal;
      } else {
        ASSERT_TRUE(O.is<Unavailable>());
        EXPECT_EQ(O.get<Unavailable>().Reason, core::reasons::Overloaded);
        ++StormShed;
      }
    }
  });
  S.run();
  // The storm batch landed together: one admitted, three shed.
  EXPECT_EQ(StormNormal, 1);
  EXPECT_EQ(StormShed, 3);
  EXPECT_EQ(Server->callsShed(), 3u);
  // Quiescence: the shed seqs settled their stream (no gate leak).
  EXPECT_EQ(Server->liveCallProcessCount(), 0u);
  EXPECT_EQ(Server->gatedCallCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Shed → DoneThrough under sustained queue-full (the PR 4 hang class)
//===----------------------------------------------------------------------===//

TEST_F(ResilienceFixture, ShedStormQuiescesWithOrderedSuccessorsExecuted) {
  // 10k calls on one ordered stream against a guardian that admits two at
  // a time: every batch sheds most of its calls, so the stream's
  // DoneThrough gate must repeatedly advance over long runs of shed seqs
  // or the admitted successors behind them gate forever (the PR 4 hang
  // class — this test times out instead of failing an assertion if that
  // regresses).
  GC.MaxPendingCalls = 2;
  build();
  auto Tick = Server->addHandler<int32_t(int32_t)>(
      "tick", [this](int32_t V) -> Outcome<int32_t> {
        Executed.push_back(V);
        S.sleep(usec(50));
        return V;
      });
  const int32_t N = 10000;
  int Normal = 0, Shed = 0;
  Client->spawnProcess("storm", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Tick);
    std::vector<Promise<int32_t>> Ps;
    Ps.reserve(N);
    for (int32_t I = 1; I <= N; ++I)
      Ps.push_back(H.streamCall(I));
    H.flush();
    for (auto &P : Ps) {
      const auto &O = P.claim();
      if (O.isNormal()) {
        ++Normal;
      } else {
        ASSERT_TRUE(O.is<Unavailable>());
        ASSERT_EQ(O.get<Unavailable>().Reason, core::reasons::Overloaded);
        ++Shed;
      }
    }
  });
  S.run();
  // Every call got exactly one conserving outcome.
  EXPECT_EQ(Normal + Shed, N);
  EXPECT_GE(Normal, 1000);
  EXPECT_GE(Shed, 1000);
  EXPECT_EQ(Server->callsShed(), static_cast<uint64_t>(Shed));
  EXPECT_EQ(Server->callsExecuted(), static_cast<uint64_t>(Normal));
  // Ordered successors executed in call order across every shed gap.
  ASSERT_EQ(Executed.size(), static_cast<size_t>(Normal));
  for (size_t I = 1; I < Executed.size(); ++I)
    EXPECT_LT(Executed[I - 1], Executed[I]);
  // Full quiescence: no leaked or still-gated call processes.
  EXPECT_EQ(Server->liveCallProcessCount(), 0u);
  EXPECT_EQ(Server->gatedCallCount(), 0u);
  EXPECT_EQ(S.liveProcessCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Wire format
//===----------------------------------------------------------------------===//

TEST_F(ResilienceFixture, CancelMsgCodecRoundTrips) {
  stream::CancelMsg CM;
  CM.Agent = 9;
  CM.Group = 4;
  CM.Inc = 2;
  CM.Seqs = {3, 5, 8};
  auto B = stream::encodeMessage(stream::Message(CM));
  auto M = stream::decodeMessage(B);
  ASSERT_TRUE(M.has_value());
  ASSERT_TRUE(std::holds_alternative<stream::CancelMsg>(*M));
  EXPECT_EQ(std::get<stream::CancelMsg>(*M), CM);
}

} // namespace
