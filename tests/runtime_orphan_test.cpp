//===- runtime_orphan_test.cpp - Orphan destruction tests -----------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Paper Section 4.2: terminated computations' remote calls become
// orphans, and "the Argus system guarantees that it will find these
// computations and destroy them later". Here: when a receiver stream
// breaks or is superseded by a new incarnation, its in-flight handler
// executions are killed instead of running to completion.
//
//===----------------------------------------------------------------------===//

#include "promises/runtime/RemoteHandler.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

struct OrphanFixture : ::testing::Test {
  Simulation S;
  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<Guardian> Server, Client;
  HandlerRef<int32_t(int32_t)> SlowWork;
  int Started = 0, Completed = 0;

  void build() {
    Net = std::make_unique<net::SimNetwork>(S, net::NetConfig{});
    GuardianConfig GC;
    GC.Stream.RetransmitTimeout = msec(10);
    GC.Stream.MaxRetries = 2;
    Server = std::make_unique<Guardian>(*Net, Net->addNode("s"), "s", GC);
    Client = std::make_unique<Guardian>(*Net, Net->addNode("c"), "c", GC);
    SlowWork = Server->addHandler<int32_t(int32_t)>(
        "slow", [this](int32_t V) -> Outcome<int32_t> {
          ++Started;
          S.sleep(sec(5)); // Orphans would sit here for 5 virtual seconds.
          ++Completed;
          return V;
        });
  }
};

TEST_F(OrphanFixture, RestartKillsInFlightExecutions) {
  build();
  Client->spawnProcess("driver", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), SlowWork);
    auto P = H.streamCall(int32_t(1));
    H.flush();
    S.sleep(msec(20)); // Let the call start executing at the server.
    EXPECT_EQ(Started, 1);
    // Restart the stream: the old incarnation's execution is an orphan.
    Client->transport().restart(Client->newAgent() - 1 /*unused*/,
                                Server->address(), Guardian::DefaultGroup);
    (void)P;
  });
  S.run();
  // Without orphan destruction this would be 1 after 5 virtual seconds;
  // the simulation instead quiesces quickly with the work abandoned.
  EXPECT_EQ(Started, 1);
  EXPECT_EQ(Completed, 1); // Old incarnation: restart is sender-side only
                           // until the receiver learns of the new one.
}

TEST_F(OrphanFixture, NewIncarnationSupersedesAndKillsOrphans) {
  build();
  ProcessHandle Driver = Client->spawnProcess("driver", [&] {
    auto A = Client->newAgent();
    auto H = bindHandler(*Client, A, SlowWork);
    auto P1 = H.streamCall(int32_t(1));
    H.flush();
    S.sleep(msec(20));
    EXPECT_EQ(Started, 1);
    // Restart and immediately call again: the new incarnation's call
    // batch supersedes the old receiver stream, whose in-flight
    // execution must be destroyed.
    Client->transport().restart(A, Server->address(),
                                Guardian::DefaultGroup);
    auto P2 = H.streamCall(int32_t(2));
    H.flush();
    // P2's handler also sleeps 5s; wait for it to start.
    S.sleep(msec(20));
    EXPECT_EQ(Started, 2);
    (void)P1;
    (void)P2;
  });
  S.run();
  // The first execution was killed when the new incarnation arrived: only
  // the second ran to completion (5s later).
  EXPECT_EQ(Started, 2);
  EXPECT_EQ(Completed, 1);
  EXPECT_GE(S.now(), sec(5));
  EXPECT_LT(S.now(), sec(6)); // Not 10s: the orphan did not finish.
}

TEST_F(OrphanFixture, ReceiverBreakKillsPendingGatedCalls) {
  build();
  // A port whose first call breaks the stream while later calls wait in
  // the execution gate.
  int LaterRan = 0;
  auto Breaker = Server->addHandler<int32_t(int32_t)>(
      "breaker", [this](int32_t V) -> Outcome<int32_t> {
        if (V == 1)
          return Failure{"poisoned"};
        return V;
      });
  auto Sink = Server->addHandler<int32_t(int32_t)>(
      "sink", [&](int32_t V) -> Outcome<int32_t> {
        ++LaterRan;
        return V;
      });
  (void)Sink;
  Client->spawnProcess("driver", [&] {
    auto A = Client->newAgent();
    auto HB = bindHandler(*Client, A, Breaker);
    auto HS = bindHandler(*Client, A, SlowWork);
    // Fragile decode failure is the canonical breaker; simulate it by
    // breaking explicitly through the transport after the first call.
    auto P1 = HB.streamCall(int32_t(1));
    auto P2 = HS.streamCall(int32_t(2));
    auto P3 = HS.streamCall(int32_t(3));
    HB.flush();
    // Wait for the batch to arrive and the slow call to start executing.
    while (Server->transport().receiverStreamCount() == 0)
      S.sleep(msec(1));
    S.sleep(msec(1));
    // Break the receiver stream under the calls.
    // (Find the tag via the server's transport introspection: there is
    // exactly one receiver stream.)
    ASSERT_EQ(Server->transport().receiverStreamCount(), 1u);
    Server->transport().breakReceiverStream(1, "test break");
    P1.claim();
    P2.claim();
    P3.claim();
  });
  S.run();
  EXPECT_EQ(LaterRan, 0);
  EXPECT_LT(S.now(), sec(5)); // No orphan slept its full 5 seconds.
}

} // namespace
