//===- property_sim_test.cpp - Kernel and coenter property sweeps ---------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Properties:
//   K1 a random process workload replays identically from the same seed;
//   K2 whenever a coenter group is terminated — at any point in its
//      execution — the parent resumes, no process leaks, and the shared
//      queue is never left torn (the paper's damaged-aveq safety story);
//   K3 kills delivered inside critical sections are always deferred to
//      the section boundary.
//
//===----------------------------------------------------------------------===//

#include "promises/core/Coenter.h"
#include "promises/core/PromiseQueue.h"
#include "promises/support/Rng.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

using namespace promises;
using namespace promises::core;
using namespace promises::sim;

namespace {

/// K1: a pseudo-random mix of sleeps, yields, queue traffic, and spawns
/// must produce an identical event trace for identical seeds.
std::string runChaos(uint64_t Seed) {
  std::ostringstream Trace;
  Simulation S;
  Rng R(Seed);
  PromiseQueue<int> Q(S);
  for (int P = 0; P < 8; ++P) {
    uint64_t MySeed = R.next();
    S.spawn("chaos", [&, P, MySeed] {
      Rng My(MySeed);
      for (int Step = 0; Step < 20; ++Step) {
        switch (My.below(4)) {
        case 0:
          S.sleep(usec(My.below(500)));
          break;
        case 1:
          S.yieldNow();
          break;
        case 2:
          Q.enq(P * 100 + Step);
          break;
        default: {
          int V;
          if (Q.tryDeq(V))
            Trace << "p" << P << "got" << V << "@" << S.now() << ";";
          break;
        }
        }
      }
      Trace << "p" << P << "done@" << S.now() << ";";
    });
  }
  S.run();
  Trace << "end@" << S.now();
  return Trace.str();
}

class ChaosSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSeedSweep, IdenticalSeedsReplayIdentically) {
  EXPECT_EQ(runChaos(GetParam()), runChaos(GetParam()));
}

TEST_P(ChaosSeedSweep, DifferentSeedsUsuallyDiffer) {
  // Not a guarantee, but with 160 random decisions a collision would
  // indicate the seed is being ignored.
  EXPECT_NE(runChaos(GetParam()), runChaos(GetParam() + 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSeedSweep,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

/// K2/K3: a producer/consumer coenter killed at a swept time point.
struct KillSweepResult {
  bool ParentResumed = false;
  bool ExnSeen = false;
  size_t LiveAfter = 0;
  bool QueueConsistent = true;
};

KillSweepResult runKillSweep(uint64_t KillAtUs) {
  KillSweepResult Out;
  Simulation S;
  PromiseQueue<int> Q(S);
  int Produced = 0, Consumed = 0;
  S.spawn("parent", [&] {
    ArmResult Bad =
        Coenter(S)
            .arm("producer",
                 [&]() -> ArmResult {
                   for (int I = 0; I < 50; ++I) {
                     S.sleep(usec(100));
                     Q.enq(I);
                     ++Produced;
                   }
                   return {};
                 })
            .arm("consumer",
                 [&]() -> ArmResult {
                   for (int I = 0; I < 50; ++I) {
                     int V = Q.deq();
                     if (V != I)
                       return armRaise("out_of_order");
                     ++Consumed;
                     S.sleep(usec(130));
                   }
                   return {};
                 })
            .arm("bomb",
                 [&]() -> ArmResult {
                   S.sleep(usec(KillAtUs));
                   return armRaise("bomb");
                 })
            .run();
    Out.ParentResumed = true;
    Out.ExnSeen = Bad.has_value() && Bad->Name == "bomb";
  });
  S.run();
  // Consistency: everything produced was either consumed or still sits
  // intact in the queue (no element torn or lost mid-deq).
  Out.QueueConsistent =
      static_cast<size_t>(Produced - Consumed) == Q.size();
  Out.LiveAfter = S.liveProcessCount();
  return Out;
}

class KillTimingSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KillTimingSweep, GroupTerminationIsCleanAtAnyInstant) {
  KillSweepResult R = runKillSweep(GetParam());
  EXPECT_TRUE(R.ParentResumed);
  EXPECT_TRUE(R.ExnSeen);
  EXPECT_EQ(R.LiveAfter, 0u) << "process leak after coenter";
  EXPECT_TRUE(R.QueueConsistent) << "queue torn by forced termination";
}

INSTANTIATE_TEST_SUITE_P(KillTimes, KillTimingSweep,
                         ::testing::Values(1, 50, 99, 100, 101, 130, 217,
                                           500, 1333, 2500, 4999, 6501));

/// K3 directly: a process that loops mutating a two-part invariant inside
/// critical sections is killed at a swept instant; the invariant must
/// never be observed torn.
class CriticalSectionSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CriticalSectionSweep, InvariantNeverTorn) {
  Simulation S;
  int A = 0, B = 0; // Invariant: A == B outside critical sections.
  ProcessHandle Victim = S.spawn("mutator", [&] {
    for (int I = 0; I < 100; ++I) {
      CriticalSection Cs;
      A = I + 1;
      S.sleep(usec(40)); // Torn state is visible while sleeping here...
      B = I + 1;         // ...but kills are deferred until we finish.
    }
  });
  S.schedule(usec(GetParam()), [&] { S.kill(Victim); });
  S.run();
  EXPECT_TRUE(Victim->finished());
  EXPECT_EQ(A, B) << "kill tore the critical section";
}

INSTANTIATE_TEST_SUITE_P(KillTimes, CriticalSectionSweep,
                         ::testing::Values(0, 15, 40, 41, 79, 80, 81, 200,
                                           1000, 3999, 4000));

} // namespace
