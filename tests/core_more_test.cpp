//===- core_more_test.cpp - Core-library edge cases -----------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/core/Coenter.h"
#include "promises/core/Fork.h"
#include "promises/core/PromiseQueue.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace promises;
using namespace promises::core;
using namespace promises::sim;

namespace {

struct E1 {
  static constexpr const char *Name = "e1";
  char C = 0;
  friend bool operator==(const E1 &, const E1 &) = default;
};
struct E2 {
  static constexpr const char *Name = "e2";
  friend bool operator==(const E2 &, const E2 &) = default;
};

TEST(OutcomeMore, VisitReturnsValues) {
  Outcome<int, E1, E2> O(E1{'x'});
  int Code = O.visit(Visitor{
      [](const int &) { return 0; },
      [](const E1 &E) { return E.C == 'x' ? 1 : -1; },
      [](const E2 &) { return 2; },
      [](const auto &) { return 3; },
  });
  EXPECT_EQ(Code, 1);
}

TEST(OutcomeMore, PaperSignatureShape) {
  // port (int) returns (real) signals (e1(char), e2) — the paper's
  // example port type, as an outcome.
  using PaperOutcome = Outcome<double, E1, E2>;
  PaperOutcome Normal(3.5);
  PaperOutcome WithChar(E1{'q'});
  PaperOutcome Bare(E2{});
  EXPECT_TRUE(Normal.isNormal());
  EXPECT_EQ(WithChar.get<E1>().C, 'q');
  EXPECT_STREQ(Bare.exceptionName(), "e2");
}

TEST(OutcomeMore, EqualityComparesAlternativeAndValue) {
  Outcome<int, E2> A(1), B(1), C(2), D((E2()));
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(A, D);
}

TEST(PromiseMore, ClaimWithReturnsValue) {
  Simulation S;
  auto P = Promise<int>::makeReady(Outcome<int>(21));
  int Doubled = P.claimWith([](const int &V) { return V * 2; },
                            [](const auto &) { return -1; });
  EXPECT_EQ(Doubled, 42);
}

TEST(PromiseMore, QueueOfPromisesMultiConsumer) {
  Simulation S;
  PromiseQueue<Promise<int>> Q(S);
  int Sum = 0;
  for (int C = 0; C < 3; ++C)
    S.spawn("consumer", [&] {
      for (int I = 0; I < 4; ++I)
        Sum += Q.deq().claim().value();
    });
  S.spawn("producer", [&] {
    for (int I = 1; I <= 12; ++I) {
      Q.enq(fork(S, [&, I] {
        S.sleep(usec(static_cast<uint64_t>(13 - I)));
        return I;
      }));
      S.sleep(usec(3));
    }
  });
  S.run();
  EXPECT_EQ(Sum, 78); // 1+...+12.
}

TEST(CoenterMore, ZeroArmsReturnsImmediately) {
  Simulation S;
  bool Done = false;
  S.spawn("p", [&] {
    ArmResult R = Coenter(S).run();
    EXPECT_FALSE(R.has_value());
    EXPECT_EQ(S.now(), 0u);
    Done = true;
  });
  S.run();
  EXPECT_TRUE(Done);
}

TEST(CoenterMore, SingleArmBehavesLikeACall) {
  Simulation S;
  int Ran = 0;
  S.spawn("p", [&] {
    ArmResult R = Coenter(S)
                      .arm("only",
                           [&]() -> ArmResult {
                             ++Ran;
                             return {};
                           })
                      .run();
    EXPECT_FALSE(R.has_value());
  });
  S.run();
  EXPECT_EQ(Ran, 1);
}

TEST(CoenterMore, ArmEachStopsSiblingsOnFirstException) {
  Simulation S;
  std::vector<int> Items{1, 2, 3, 4, 5, 6};
  int Completed = 0;
  ArmResult R;
  S.spawn("p", [&] {
    R = Coenter(S)
            .armEach(Items,
                     [&](int I) -> ArmResult {
                       S.sleep(msec(static_cast<uint64_t>(I)));
                       if (I == 2)
                         return armRaise("item2");
                       ++Completed;
                       return {};
                     })
            .run();
  });
  S.run();
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Name, "item2");
  // Item 1 finished (1ms < 2ms); 3..6 were killed mid-sleep.
  EXPECT_EQ(Completed, 1);
}

TEST(CoenterMore, ArmEachNamesArmsByIndex) {
  // Regression: armEach used to spawn every arm under the same name
  // ("arm"), making exception reports and traces from a coenter over a
  // collection ambiguous. Arms are now named by position.
  Simulation S;
  std::vector<int> Items{10, 20, 30};
  std::vector<std::string> Names;
  S.spawn("p", [&] {
    Coenter(S)
        .armEach(Items,
                 [&](int) -> ArmResult {
                   Names.push_back(Simulation::current()->name());
                   return {};
                 })
        .run();
  });
  S.run();
  ASSERT_EQ(Names.size(), 3u);
  EXPECT_EQ(Names[0], "arm[0]");
  EXPECT_EQ(Names[1], "arm[1]");
  EXPECT_EQ(Names[2], "arm[2]");
}

TEST(CoenterMore, ArmsSeeSharedStateWrittenBeforeRun) {
  Simulation S;
  int Shared = 0;
  S.spawn("p", [&] {
    Coenter Co(S);
    Co.arm("w", [&]() -> ArmResult {
      Shared = 7;
      return {};
    });
    Co.arm("r", [&]() -> ArmResult {
      S.sleep(usec(1));
      EXPECT_EQ(Shared, 7);
      return {};
    });
    Co.run();
  });
  S.run();
}

TEST(CoenterMore, SequentialCoentersReuseParent) {
  Simulation S;
  std::vector<int> Order;
  S.spawn("p", [&] {
    for (int Round = 0; Round < 3; ++Round) {
      Coenter(S)
          .arm("a",
               [&, Round]() -> ArmResult {
                 Order.push_back(Round * 2);
                 return {};
               })
          .arm("b",
               [&, Round]() -> ArmResult {
                 Order.push_back(Round * 2 + 1);
                 return {};
               })
          .run();
    }
  });
  S.run();
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(ForkMore, ManyForksJoinViaClaims) {
  Simulation S;
  std::vector<Promise<int>> Ps;
  int Total = 0;
  S.spawn("p", [&] {
    for (int I = 0; I < 50; ++I)
      Ps.push_back(fork(S, [&, I] {
        S.sleep(usec(static_cast<uint64_t>(I % 7)));
        return I;
      }));
    for (auto &P : Ps)
      Total += P.claim().value();
  });
  S.run();
  EXPECT_EQ(Total, 49 * 50 / 2);
}

TEST(ForkMore, ForkResultClaimedFromSiblingFork) {
  // Promises are first-class: hand one to another fork.
  Simulation S;
  int Got = 0;
  S.spawn("p", [&] {
    auto A = fork(S, [&] {
      S.sleep(msec(1));
      return 11;
    });
    auto B = fork(S, [&, A] { return A.claim().value() * 2; });
    Got = B.claim().value();
  });
  S.run();
  EXPECT_EQ(Got, 22);
}

TEST(ForkMore, StringResults) {
  Simulation S;
  std::string Got;
  S.spawn("p", [&] {
    auto P = fork(S, [] { return std::string("payload"); });
    Got = P.claim().value();
  });
  S.run();
  EXPECT_EQ(Got, "payload");
}

} // namespace
