//===- storage_test.cpp - Stable storage unit tests -----------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// The StableStore contract from docs/DURABILITY.md, checked without any
// network or guardian in the loop: record framing round-trips, a crash
// loses exactly the un-synced suffix, a torn tail is detected on both
// the truncation and the CRC path and stops replay at the last valid
// record, snapshots compact the log without losing state, the fault
// model is a pure function of its seed, and rates of exactly 0/1 draw
// no randomness at all.
//
//===----------------------------------------------------------------------===//

#include "promises/storage/Storage.h"

#include "promises/support/Rng.h"
#include "promises/wire/Encoder.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::storage;

namespace {

wire::Bytes rec(const std::string &S) {
  return wire::Bytes(S.begin(), S.end());
}

std::string str(const wire::Bytes &B) {
  return std::string(B.begin(), B.end());
}

StorageConfig instantConfig(StorageFaults F = StorageFaults()) {
  StorageConfig C;
  C.SyncTime = 0; // No process context in these tests.
  C.Faults = F;
  return C;
}

TEST(StorageTest, RoundTripPreservesRecordsInOrder) {
  sim::Simulation S;
  StableStore Store(S, instantConfig());
  Store.append(rec("alpha"));
  Store.append(rec(""));
  Store.append(rec(std::string(100000, 'x')));
  Store.sync();

  StableStore::Recovery R = Store.scan();
  EXPECT_FALSE(R.TornTail);
  EXPECT_EQ(R.DiscardedBytes, 0u);
  EXPECT_TRUE(R.Snapshot.empty());
  ASSERT_EQ(R.Records.size(), 3u);
  EXPECT_EQ(str(R.Records[0]), "alpha");
  EXPECT_EQ(str(R.Records[1]), "");
  EXPECT_EQ(R.Records[2].size(), 100000u);
}

TEST(StorageTest, CrashDropsExactlyTheUnsyncedSuffix) {
  sim::Simulation S;
  StableStore Store(S, instantConfig({1.0, 0.0, 42}));
  Store.append(rec("durable1"));
  Store.append(rec("durable2"));
  Store.sync();
  Store.append(rec("volatile1"));
  Store.append(rec("volatile2"));

  Store.crash();
  StableStore::Recovery R = Store.scan();
  EXPECT_FALSE(R.TornTail); // Clean loss, not a tear (TornWriteRate 0).
  ASSERT_EQ(R.Records.size(), 2u);
  EXPECT_EQ(str(R.Records[0]), "durable1");
  EXPECT_EQ(str(R.Records[1]), "durable2");
  EXPECT_EQ(Store.crashes(), 1u);
  EXPECT_EQ(Store.tornTails(), 0u);
  EXPECT_GT(Store.lostBytes(), 0u);
}

TEST(StorageTest, ZeroLostRateModelsBatteryBackedCache) {
  sim::Simulation S;
  StableStore Store(S, instantConfig({0.0, 0.0, 42}));
  Store.append(rec("synced"));
  Store.sync();
  Store.append(rec("unsynced"));

  Store.crash();
  StableStore::Recovery R = Store.scan();
  EXPECT_FALSE(R.TornTail);
  ASSERT_EQ(R.Records.size(), 2u); // The whole tail read back.
  EXPECT_EQ(str(R.Records[1]), "unsynced");
  EXPECT_EQ(Store.lostBytes(), 0u);
}

/// Runs one synced + one torn-lost record under seed \p Seed and
/// returns the scan. \p FullRecLen receives the framed length of the
/// torn record so callers can tell the CRC path (DiscardedBytes ==
/// FullRecLen: full length kept, one byte flipped) from the truncation
/// path (a shorter partial prefix).
StableStore::Recovery tornCrash(uint64_t Seed, uint64_t &FullRecLen) {
  sim::Simulation S;
  StableStore Store(S, instantConfig({1.0, 1.0, Seed}));
  Store.append(rec("keep"));
  Store.sync();
  wire::Bytes Torn = rec("about-to-tear");
  FullRecLen = 9 + Torn.size(); // magic + len + crc framing.
  Store.append(Torn);
  Store.crash();
  EXPECT_EQ(Store.tornTails(), 1u);
  return Store.scan();
}

TEST(StorageTest, TornTailDetectedOnBothPaths) {
  bool SawCrc = false, SawTruncated = false;
  for (uint64_t Seed = 1; Seed != 257 && !(SawCrc && SawTruncated);
       ++Seed) {
    uint64_t FullRecLen = 0;
    StableStore::Recovery R = tornCrash(Seed, FullRecLen);
    // Whatever the tear looked like, replay must stop at the synced
    // prefix and report the damage.
    EXPECT_TRUE(R.TornTail);
    ASSERT_EQ(R.Records.size(), 1u);
    EXPECT_EQ(str(R.Records[0]), "keep");
    EXPECT_GT(R.DiscardedBytes, 0u);
    EXPECT_LE(R.DiscardedBytes, FullRecLen);
    if (R.DiscardedBytes == FullRecLen)
      SawCrc = true; // Full length survived; only the CRC caught it.
    else
      SawTruncated = true;
  }
  EXPECT_TRUE(SawCrc);
  EXPECT_TRUE(SawTruncated);
}

TEST(StorageTest, OpenDiscardsTornTailAndServesCleanly) {
  sim::Simulation S;
  StableStore Store(S, instantConfig({1.0, 1.0, 7}));
  Store.append(rec("keep"));
  Store.sync();
  Store.append(rec("lost"));
  Store.crash();

  StableStore::Recovery R = Store.open();
  ASSERT_EQ(R.Records.size(), 1u);
  // The torn fragment is gone from the media and the surviving log is
  // durable again, so the next incarnation appends and replays cleanly.
  EXPECT_EQ(Store.logBytes(), Store.syncedBytes());
  Store.append(rec("next-life"));
  Store.sync();
  StableStore::Recovery R2 = Store.scan();
  EXPECT_FALSE(R2.TornTail);
  ASSERT_EQ(R2.Records.size(), 2u);
  EXPECT_EQ(str(R2.Records[1]), "next-life");
}

TEST(StorageTest, SnapshotCompactsLogAndReplaysFirst) {
  sim::Simulation S;
  StableStore Store(S, instantConfig());
  Store.append(rec("pre1"));
  Store.append(rec("pre2"));
  Store.sync();
  Store.saveSnapshot([] { return rec("snapshot-state"); });
  EXPECT_EQ(Store.logBytes(), 0u); // Log truncated by the checkpoint.
  EXPECT_EQ(Store.recordsInLog(), 0u);
  Store.append(rec("post"));
  Store.sync();

  StableStore::Recovery R = Store.scan();
  EXPECT_EQ(str(R.Snapshot), "snapshot-state");
  ASSERT_EQ(R.Records.size(), 1u); // Only records after the snapshot.
  EXPECT_EQ(str(R.Records[0]), "post");
}

TEST(StorageTest, FaultModelIsAPureFunctionOfTheSeed) {
  auto Run = [](uint64_t Seed) {
    sim::Simulation S;
    StableStore Store(S, instantConfig({0.5, 0.5, Seed}));
    for (int Crash = 0; Crash != 8; ++Crash) {
      for (int I = 0; I != 3; ++I)
        Store.append(rec("r" + std::to_string(Crash * 3 + I)));
      if (Crash % 2 == 0)
        Store.sync();
      Store.crash();
      Store.open();
    }
    StableStore::Recovery R = Store.scan();
    std::string Flat;
    for (const wire::Bytes &B : R.Records)
      Flat += str(B) + "|";
    return std::make_tuple(Flat, Store.lostBytes(), Store.tornTails());
  };
  EXPECT_EQ(Run(1234), Run(1234)); // Identical seed, identical damage.
  EXPECT_NE(Run(1234), Run(1235)); // Fault model actually seeded.
}

TEST(StorageTest, ExactZeroAndOneRatesDrawNoRng) {
  // The bit-identity promise in docs/DURABILITY.md rests on `chance`
  // consuming no randomness at P <= 0 and P >= 1: a fault-free store
  // must not perturb any stream it shares a seed lineage with.
  Rng A(99), B(99);
  EXPECT_FALSE(A.chance(0.0));
  EXPECT_TRUE(A.chance(1.0));
  EXPECT_FALSE(A.chance(-0.5));
  EXPECT_TRUE(A.chance(1.5));
  EXPECT_EQ(A.next(), B.next()); // Stream position untouched.

  // And therefore the always-lose/never-tear store ignores its seed
  // entirely: any two seeds produce identical damage.
  auto Run = [](uint64_t Seed) {
    sim::Simulation S;
    StableStore Store(S, instantConfig({1.0, 0.0, Seed}));
    Store.append(rec("synced"));
    Store.sync();
    Store.append(rec("lost"));
    Store.crash();
    return Store.lostBytes();
  };
  EXPECT_EQ(Run(1), Run(777777));
}

TEST(StorageTest, GroupCommitCoversRecordsAppendedBeforeSync) {
  sim::Simulation S;
  StableStore Store(S, instantConfig({1.0, 0.0, 1}));
  Store.append(rec("a"));
  Store.append(rec("b"));
  Store.sync(); // One force covers both.
  EXPECT_EQ(Store.syncedBytes(), Store.logBytes());
  Store.crash();
  EXPECT_EQ(Store.scan().Records.size(), 2u);
}

} // namespace
