//===- udp_parity_test.cpp - SimNetwork/UdpNetwork outcome parity ---------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// The UDP backend (docs/NETWORK.md) must be *semantically* interchangeable
// with the simulator: the same workload, run over real loopback sockets
// and over the deterministic SimNetwork, must produce identical outcome
// tallies — every call completes with the same status and value, calls
// execute exactly once, nothing is corrupted or dropped on the floor.
//
// Parity is asserted on outcome tallies, not on traces: the two backends
// cannot agree on timing (one is a cost model, the other is a kernel), so
// trace hashes would be meaningless. What must agree is what the paper's
// semantics promise the *caller*: which calls succeeded, with what values,
// in what per-stream order.
//
//===----------------------------------------------------------------------===//

#include "promises/net/UdpNetwork.h"
#include "promises/runtime/RemoteHandler.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

struct BadInput {
  static constexpr const char *Name = "bad_input";
  int32_t Value = 0;
};

} // namespace

namespace promises::wire {
template <> struct Codec<BadInput> {
  static void encode(Encoder &E, const BadInput &V) { E.writeI32(V.Value); }
  static BadInput decode(Decoder &D) { return {D.readI32()}; }
};
} // namespace promises::wire

namespace {

/// Everything a caller can observe from the workload, independent of
/// timing. Two backends are in parity iff these tally structs are equal.
struct OutcomeTally {
  uint64_t Normal = 0;
  uint64_t Raised = 0;
  int64_t ValueSum = 0;     ///< Sum of normal results.
  int64_t RaisedSum = 0;    ///< Sum of exception payloads.
  std::vector<int32_t> StreamOrder; ///< Pipelined results, claim order.
  uint64_t ServerExecuted = 0;      ///< runtime.calls_executed on the server.
  uint64_t Corrupted = 0;           ///< net datagrams_corrupted.
  uint64_t Malformed = 0;           ///< transport MalformedDropped.

  bool operator==(const OutcomeTally &O) const = default;
};

/// The standard workload, identical for both backends: one server guardian
/// exporting two handlers, one client guardian issuing a mix of RPCs
/// (some succeeding, some raising the declared exception) and a pipelined
/// burst of stream calls whose promises are claimed in issue order.
OutcomeTally runWorkload(Simulation &S, net::Network &Net, net::NodeId SN,
                         net::NodeId CN, int Calls) {
  GuardianConfig GC;
  auto Server = std::make_unique<Guardian>(Net, SN, "server", GC);
  auto Client = std::make_unique<Guardian>(Net, CN, "client", GC);

  auto Triple = Server->addHandler<int32_t(int32_t), BadInput>(
      "triple", [](int32_t V) -> Outcome<int32_t, BadInput> {
        if (V % 7 == 3)
          return BadInput{V};
        return V * 3;
      });
  auto Square = Server->addHandler<int64_t(int32_t)>(
      "square", [](int32_t V) -> Outcome<int64_t> {
        return static_cast<int64_t>(V) * V;
      });

  OutcomeTally T;
  Client->spawnProcess("main", [&] {
    // Phase 1: sequential RPCs with a deterministic mix of normal and
    // exceptional outcomes.
    auto H = bindHandler(*Client, Client->newAgent(), Triple);
    for (int I = 0; I != Calls; ++I) {
      auto O = H.call(int32_t(I));
      if (O.isNormal()) {
        ++T.Normal;
        T.ValueSum += O.value();
      } else {
        ++T.Raised;
        T.RaisedSum += O.template get<BadInput>().Value;
      }
    }
    // Phase 2: a pipelined burst on one stream; promises become ready in
    // call order, and the claimed values land in StreamOrder.
    auto H2 = bindHandler(*Client, Client->newAgent(), Square);
    std::vector<decltype(H2.streamCall(int32_t(0)))> Ps;
    for (int I = 0; I != Calls; ++I)
      Ps.push_back(H2.streamCall(int32_t(I)));
    for (auto &P : Ps) {
      const auto &O = P.claim();
      ASSERT_TRUE(O.isNormal());
      T.StreamOrder.push_back(static_cast<int32_t>(O.value()));
    }
  });
  S.run();

  T.ServerExecuted =
      S.metrics()
          .counter("runtime.calls_executed",
                   {{"guardian", "server"}, {"node", std::to_string(SN)}})
          .value();
  T.Corrupted = Net.counters().DatagramsCorrupted;
  T.Malformed = Server->transport().counters().MalformedDropped +
                Client->transport().counters().MalformedDropped;
  return T;
}

OutcomeTally runOverSim(int Calls) {
  Simulation S;
  net::NetConfig NC; // Default: lossless. Parity needs a clean channel.
  net::SimNetwork Net(S, NC);
  net::NodeId SN = Net.addNode("server");
  net::NodeId CN = Net.addNode("client");
  OutcomeTally T = runWorkload(S, Net, SN, CN, Calls);
  return T;
}

OutcomeTally runOverUdp(int Calls) {
  Simulation S;
  net::UdpNetwork Net(S); // Loopback, ephemeral ports.
  net::NodeId SN = Net.addNode("server");
  net::NodeId CN = Net.addNode("client");
  OutcomeTally T = runWorkload(S, Net, SN, CN, Calls);
  EXPECT_EQ(Net.unknownSourceDrops(), 0u);
  EXPECT_EQ(Net.sendQueueDrops(), 0u);
  return T;
}

TEST(UdpParity, OutcomeTalliesMatchTheSimulator) {
  const int Calls = 100;
  OutcomeTally Sim = runOverSim(Calls);
  OutcomeTally Udp = runOverUdp(Calls);

  // Both tallies against each other *and* against first principles, so a
  // bug common to both backends cannot hide inside "they agree".
  uint64_t ExpectRaised = 0;
  int64_t ExpectValueSum = 0, ExpectRaisedSum = 0;
  for (int I = 0; I != Calls; ++I) {
    if (I % 7 == 3) {
      ++ExpectRaised;
      ExpectRaisedSum += I;
    } else {
      ExpectValueSum += I * 3;
    }
  }
  EXPECT_EQ(Sim.Normal, Calls - ExpectRaised);
  EXPECT_EQ(Sim.Raised, ExpectRaised);
  EXPECT_EQ(Sim.ValueSum, ExpectValueSum);
  EXPECT_EQ(Sim.RaisedSum, ExpectRaisedSum);
  ASSERT_EQ(Sim.StreamOrder.size(), static_cast<size_t>(Calls));
  for (int I = 0; I != Calls; ++I)
    EXPECT_EQ(Sim.StreamOrder[I], I * I);
  EXPECT_EQ(Sim.ServerExecuted, static_cast<uint64_t>(2 * Calls));
  EXPECT_EQ(Sim.Corrupted, 0u);
  EXPECT_EQ(Sim.Malformed, 0u);

  EXPECT_EQ(Udp, Sim);
}

TEST(UdpParity, UdpSurvivesARestartedServerNode) {
  // Crash/restart semantics must also hold over real sockets: epoch
  // filtering makes traffic addressed to the pre-crash incarnation
  // unroutable instead of delivering it to the reborn node.
  Simulation S;
  net::UdpNetwork Net(S);
  net::NodeId SN = Net.addNode("server");
  net::NodeId CN = Net.addNode("client");
  GuardianConfig GC;
  auto Client = std::make_unique<Guardian>(Net, CN, "client", GC);
  std::unique_ptr<Guardian> Server =
      std::make_unique<Guardian>(Net, SN, "server", GC);
  auto Echo = Server->addHandler<int32_t(int32_t)>(
      "echo", [](int32_t V) -> Outcome<int32_t> { return V; });

  int32_t Before = -1, After = -1;
  bool SawBreak = false;
  Client->spawnProcess("main", [&] {
    {
      auto H = bindHandler(*Client, Client->newAgent(), Echo);
      auto O = H.call(int32_t(7));
      ASSERT_TRUE(O.isNormal());
      Before = O.value();
    }
    // Take the server down and bring a fresh incarnation up.
    Net.crash(SN);
    Net.restart(SN);
    Server = std::make_unique<Guardian>(Net, SN, "server", GC);
    auto Echo2 = Server->addHandler<int32_t(int32_t)>(
        "echo", [](int32_t V) -> Outcome<int32_t> { return V; });
    // A call binds a fresh stream to the new epoch and completes.
    auto H2 = bindHandler(*Client, Client->newAgent(), Echo2);
    auto O2 = H2.call(int32_t(9));
    if (O2.isNormal())
      After = O2.value();
    else
      SawBreak = true;
  });
  S.run();
  EXPECT_EQ(Before, 7);
  EXPECT_EQ(After, 9);
  EXPECT_FALSE(SawBreak);
}

} // namespace
