//===- core_concurrency_test.cpp - Fork, coenter, queue tests -------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/core/Coenter.h"
#include "promises/core/Fork.h"
#include "promises/core/PromiseQueue.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace promises;
using namespace promises::core;
using namespace promises::sim;

namespace {

struct TooDeep {
  static constexpr const char *Name = "too_deep";
};

TEST(Fork, PlainValueBody) {
  Simulation S;
  auto P = fork(S, [] { return 21 * 2; });
  int Got = 0;
  S.spawn("main", [&] { Got = P.claim().value(); });
  S.run();
  EXPECT_EQ(Got, 42);
}

TEST(Fork, RunsInParallelWithCaller) {
  Simulation S;
  std::vector<int> Order;
  S.spawn("main", [&] {
    auto P = fork(S, [&] {
      S.sleep(msec(2));
      Order.push_back(2);
      return 1;
    });
    Order.push_back(1); // Runs before the fork finishes.
    S.sleep(msec(5));
    Order.push_back(3);
    EXPECT_TRUE(P.ready()); // Finished at 2ms while we slept.
    P.claim();
  });
  S.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
}

TEST(Fork, OutcomeBodyPropagatesException) {
  Simulation S;
  auto P = fork(S, []() -> Outcome<int, TooDeep> { return TooDeep{}; });
  bool SawExn = false;
  S.spawn("main", [&] {
    P.claimWith([](const int &) { FAIL() << "unexpected normal result"; },
                [&](const TooDeep &) { SawExn = true; },
                [](const auto &) { FAIL() << "unexpected builtin"; });
  });
  S.run();
  EXPECT_TRUE(SawExn);
}

TEST(Fork, KilledForkFulfillsPromiseWithFailure) {
  // A forked process that is forcibly terminated (here: by simulation
  // shutdown) must leave its promise ready with Failure, never blocked.
  auto S = std::make_unique<Simulation>();
  auto Stuck = std::make_unique<WaitQueue>(*S);
  Promise<int> P;
  S->spawn("main", [&] {
    P = fork(*S, [&] {
      Stuck->wait(); // Never notified.
      return 1;
    });
  });
  S->run();
  ASSERT_TRUE(P.valid());
  EXPECT_FALSE(P.ready());
  S.reset(); // Shutdown kills the stuck fork; the guard fulfills.
  ASSERT_TRUE(P.ready());
  ASSERT_TRUE(P.claim().is<Failure>());
  EXPECT_EQ(P.claim().get<Failure>().Reason, "forked process terminated");
}

TEST(Fork, NestedForks) {
  Simulation S;
  int Got = 0;
  S.spawn("main", [&] {
    auto Outer = fork(S, [&] {
      auto Inner1 = fork(S, [&] { return 1; });
      auto Inner2 = fork(S, [&] { return 2; });
      return Inner1.claim().value() + Inner2.claim().value();
    });
    Got = Outer.claim().value();
  });
  S.run();
  EXPECT_EQ(Got, 3);
}

TEST(Fork, PromiseTreeParallelSearch) {
  // Paper Section 3.2: "promises can be used for parallel insertion and
  // searching of elements in a binary tree in which the nodes of the tree
  // are promises."
  Simulation S;
  struct Node;
  using NodeP = Promise<std::shared_ptr<Node>>;
  struct Node {
    int Key;
    NodeP Left, Right;
  };

  // Build a small tree where each subtree is computed by a fork with a
  // simulated cost.
  std::function<NodeP(std::vector<int>)> Build =
      [&](std::vector<int> Keys) -> NodeP {
    return fork(S, [&, Keys]() -> std::shared_ptr<Node> {
      if (Keys.empty())
        return nullptr;
      S.sleep(usec(10)); // Construction work.
      size_t Mid = Keys.size() / 2;
      auto N = std::make_shared<Node>();
      N->Key = Keys[Mid];
      N->Left = Build(std::vector<int>(Keys.begin(), Keys.begin() + Mid));
      N->Right =
          Build(std::vector<int>(Keys.begin() + Mid + 1, Keys.end()));
      return N;
    });
  };

  bool Found = false;
  S.spawn("searcher", [&] {
    NodeP Root = Build({1, 3, 5, 7, 9, 11, 13});
    // Search: claim nodes on the path; waits when a subtree is not built.
    NodeP Cur = Root;
    while (true) {
      auto N = Cur.claim().value();
      if (!N)
        break;
      if (N->Key == 9) {
        Found = true;
        break;
      }
      Cur = 9 < N->Key ? N->Left : N->Right;
    }
  });
  S.run();
  EXPECT_TRUE(Found);
}

TEST(Coenter, AllArmsRunToCompletion) {
  Simulation S;
  std::vector<int> Done;
  ArmResult R;
  S.spawn("parent", [&] {
    R = Coenter(S)
            .arm("a",
                 [&]() -> ArmResult {
                   S.sleep(msec(2));
                   Done.push_back(1);
                   return {};
                 })
            .arm("b",
                 [&]() -> ArmResult {
                   S.sleep(msec(1));
                   Done.push_back(2);
                   return {};
                 })
            .run();
    Done.push_back(3); // Parent resumes only after both arms.
    EXPECT_EQ(S.now(), msec(2));
  });
  S.run();
  EXPECT_FALSE(R.has_value());
  EXPECT_EQ(Done, (std::vector<int>{2, 1, 3}));
}

TEST(Coenter, ParentHaltsWhileArmsRun) {
  Simulation S;
  bool ParentResumed = false;
  S.spawn("parent", [&] {
    Coenter(S)
        .arm("slow", [&]() -> ArmResult {
          S.sleep(msec(10));
          EXPECT_FALSE(ParentResumed);
          return {};
        })
        .run();
    ParentResumed = true;
  });
  S.run();
  EXPECT_TRUE(ParentResumed);
}

TEST(Coenter, ExceptionTerminatesSiblings) {
  Simulation S;
  PromiseQueue<int> Q(S);
  bool ConsumerFinished = false;
  ArmResult R;
  S.spawn("parent", [&] {
    R = Coenter(S)
            .arm("producer",
                 [&]() -> ArmResult {
                   S.sleep(msec(1));
                   return armRaise("unavailable", "stream broke");
                 })
            .arm("consumer",
                 [&]() -> ArmResult {
                   // Would hang forever without group termination — the
                   // paper's termination problem.
                   Q.deq();
                   ConsumerFinished = true;
                   return {};
                 })
            .run();
  });
  S.run();
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Name, "unavailable");
  EXPECT_EQ(R->What, "stream broke");
  EXPECT_FALSE(ConsumerFinished);
}

TEST(Coenter, FirstExceptionWins) {
  Simulation S;
  ArmResult R;
  S.spawn("parent", [&] {
    R = Coenter(S)
            .arm("slow-fail",
                 [&]() -> ArmResult {
                   S.sleep(msec(5));
                   return armRaise("late");
                 })
            .arm("fast-fail",
                 [&]() -> ArmResult {
                   S.sleep(msec(1));
                   return armRaise("early");
                 })
            .run();
  });
  S.run();
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Name, "early");
}

TEST(Coenter, KillDeferredInCriticalSection) {
  // An arm killed while mutating shared state inside a critical section
  // finishes the mutation first (the paper's damaged-aveq scenario).
  Simulation S;
  std::vector<int> Log;
  ArmResult R;
  S.spawn("parent", [&] {
    R = Coenter(S)
            .arm("worker",
                 [&]() -> ArmResult {
                   CriticalSection Cs;
                   Log.push_back(1);
                   S.sleep(msec(5)); // Killed during this sleep...
                   Log.push_back(2); // ...but still completes the section.
                   return {};
                 })
            .arm("failer",
                 [&]() -> ArmResult {
                   S.sleep(msec(1));
                   return armRaise("boom");
                 })
            .run();
  });
  S.run();
  EXPECT_EQ(Log, (std::vector<int>{1, 2}));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Name, "boom");
}

TEST(Coenter, DynamicArmsViaArmEach) {
  // The paper's extension "to allow a dynamic number of processes" — a
  // process per data item.
  Simulation S;
  std::vector<int> Items{1, 2, 3, 4, 5};
  int Sum = 0;
  S.spawn("parent", [&] {
    Coenter(S)
        .armEach(Items,
                 [&](int I) -> ArmResult {
                   S.sleep(usec(static_cast<uint64_t>(I)));
                   Sum += I;
                   return {};
                 })
        .run();
  });
  S.run();
  EXPECT_EQ(Sum, 15);
}

TEST(Coenter, NestedCoenters) {
  Simulation S;
  int Leaves = 0;
  S.spawn("parent", [&] {
    Coenter(S)
        .arm("left",
             [&]() -> ArmResult {
               return Coenter(S)
                   .arm("ll", [&]() -> ArmResult { ++Leaves; return {}; })
                   .arm("lr", [&]() -> ArmResult { ++Leaves; return {}; })
                   .run();
             })
        .arm("right", [&]() -> ArmResult { ++Leaves; return {}; })
        .run();
  });
  S.run();
  EXPECT_EQ(Leaves, 3);
}

TEST(Coenter, InnerExceptionPropagatesThroughOuterArm) {
  Simulation S;
  ArmResult R;
  bool SiblingCompleted = false;
  S.spawn("parent", [&] {
    R = Coenter(S)
            .arm("inner-group",
                 [&]() -> ArmResult {
                   return Coenter(S)
                       .arm("bad",
                            [&]() -> ArmResult { return armRaise("inner"); })
                       .run();
                 })
            .arm("sibling",
                 [&]() -> ArmResult {
                   S.sleep(sec(1)); // Should be killed long before this.
                   SiblingCompleted = true;
                   return {};
                 })
            .run();
  });
  S.run();
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Name, "inner");
  EXPECT_FALSE(SiblingCompleted);
  EXPECT_LT(S.now(), sec(1));
}

TEST(PromiseQueue, FifoOrder) {
  Simulation S;
  PromiseQueue<int> Q(S);
  std::vector<int> Got;
  S.spawn("producer", [&] {
    for (int I = 0; I < 5; ++I) {
      Q.enq(I);
      S.sleep(usec(10));
    }
  });
  S.spawn("consumer", [&] {
    for (int I = 0; I < 5; ++I)
      Got.push_back(Q.deq());
  });
  S.run();
  EXPECT_EQ(Got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(PromiseQueue, DeqBlocksOnEmpty) {
  Simulation S;
  PromiseQueue<int> Q(S);
  Time GotAt = 0;
  S.spawn("consumer", [&] {
    int V = Q.deq();
    EXPECT_EQ(V, 7);
    GotAt = S.now();
  });
  S.spawn("producer", [&] {
    S.sleep(msec(3));
    Q.enq(7);
  });
  S.run();
  EXPECT_EQ(GotAt, msec(3));
}

TEST(PromiseQueue, TryDeq) {
  Simulation S;
  PromiseQueue<int> Q(S);
  S.spawn("p", [&] {
    int V = 0;
    EXPECT_FALSE(Q.tryDeq(V));
    Q.enq(9);
    EXPECT_TRUE(Q.tryDeq(V));
    EXPECT_EQ(V, 9);
    EXPECT_TRUE(Q.empty());
  });
  S.run();
}

TEST(PromiseQueue, CarriesPromises) {
  // The canonical composition shape: promises flow through the queue from
  // the producer loop to the consumer loop (paper Figure 4-1/4-2).
  Simulation S;
  PromiseQueue<Promise<int>> Q(S);
  std::vector<int> Claimed;
  S.spawn("producer", [&] {
    for (int I = 0; I < 10; ++I)
      Q.enq(fork(S, [&, I] {
        S.sleep(usec(50)); // The "call" takes a while.
        return I * I;
      }));
  });
  S.spawn("consumer", [&] {
    for (int I = 0; I < 10; ++I)
      Claimed.push_back(Q.deq().claim().value());
  });
  S.run();
  ASSERT_EQ(Claimed.size(), 10u);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Claimed[static_cast<size_t>(I)], I * I);
}

TEST(PromiseQueue, ManyProducersManyConsumers) {
  Simulation S;
  PromiseQueue<int> Q(S);
  int Produced = 0, Consumed = 0;
  for (int P = 0; P < 3; ++P)
    S.spawn("producer", [&] {
      for (int I = 0; I < 20; ++I) {
        Q.enq(1);
        ++Produced;
        S.sleep(usec(7));
      }
    });
  for (int C = 0; C < 2; ++C)
    S.spawn("consumer", [&] {
      for (int I = 0; I < 30; ++I)
        Consumed += Q.deq();
    });
  S.run();
  EXPECT_EQ(Produced, 60);
  EXPECT_EQ(Consumed, 60);
}

} // namespace
