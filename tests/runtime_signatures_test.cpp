//===- runtime_signatures_test.cpp - Handler signature coverage -----------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// The paper's promise types have "a results part, listing the type or
// types of objects returned by the handler call in the normal case" —
// multiple results map onto tuples here. This suite pins down signature
// corners: tuple results, vector/optional arguments, zero-argument
// handlers, and unit results.
//
//===----------------------------------------------------------------------===//

#include "promises/runtime/RemoteHandler.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

struct SigFixture : ::testing::Test {
  Simulation S;
  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<Guardian> Server, Client;

  void build() {
    Net = std::make_unique<net::SimNetwork>(S, net::NetConfig{});
    Server = std::make_unique<Guardian>(*Net, Net->addNode("s"), "s");
    Client = std::make_unique<Guardian>(*Net, Net->addNode("c"), "c");
  }
};

TEST_F(SigFixture, MultipleResultsViaTuple) {
  build();
  // "returns (real, int, string)" — a stats handler returning mean,
  // count, and label at once.
  using Multi = std::tuple<double, int32_t, std::string>;
  auto Stats = Server->addHandler<Multi(std::vector<int32_t>)>(
      "stats", [](std::vector<int32_t> Vs) -> Outcome<Multi> {
        double Sum = 0;
        for (int32_t V : Vs)
          Sum += V;
        double Mean = Vs.empty() ? 0 : Sum / static_cast<double>(Vs.size());
        return Multi{Mean, static_cast<int32_t>(Vs.size()), "ok"};
      });
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Stats);
    auto O = H.call(std::vector<int32_t>{2, 4, 6});
    ASSERT_TRUE(O.isNormal());
    auto [Mean, Count, Label] = O.value();
    EXPECT_EQ(Mean, 4.0);
    EXPECT_EQ(Count, 3);
    EXPECT_EQ(Label, "ok");
  });
  S.run();
}

TEST_F(SigFixture, ZeroArgumentHandler) {
  build();
  int Calls = 0;
  auto Tick = Server->addHandler<int32_t(wire::Unit)>(
      "tick", [&](wire::Unit) -> Outcome<int32_t> { return ++Calls; });
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Tick);
    EXPECT_EQ(H.call(wire::Unit{}).value(), 1);
    EXPECT_EQ(H.call(wire::Unit{}).value(), 2);
  });
  S.run();
}

TEST_F(SigFixture, OptionalAndNestedContainerArguments) {
  build();
  using Arg = std::optional<std::vector<std::pair<std::string, int32_t>>>;
  auto Count = Server->addHandler<int32_t(Arg)>(
      "count", [](Arg A) -> Outcome<int32_t> {
        return A ? static_cast<int32_t>(A->size()) : -1;
      });
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Count);
    EXPECT_EQ(H.call(Arg{}).value(), -1);
    Arg Some{{{"a", 1}, {"b", 2}}};
    EXPECT_EQ(H.call(Some).value(), 2);
  });
  S.run();
}

TEST_F(SigFixture, LargeStringPayloadRoundTrips) {
  build();
  auto Echo = Server->addHandler<std::string(std::string)>(
      "echo", [](std::string V) -> Outcome<std::string> { return V; });
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Echo);
    std::string Big(64 * 1024, 'q');
    Big[12345] = 'X';
    auto O = H.call(Big);
    ASSERT_TRUE(O.isNormal());
    EXPECT_EQ(O.value(), Big);
  });
  S.run();
}

TEST_F(SigFixture, OutstandingTracksIssueAndFulfil) {
  build();
  auto Slow = Server->addHandler<int32_t(int32_t)>(
      "slow", [&](int32_t V) -> Outcome<int32_t> {
        S.sleep(msec(5));
        return V;
      });
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    EXPECT_EQ(H.outstanding(), 0u);
    auto P1 = H.streamCall(int32_t(1));
    auto P2 = H.streamCall(int32_t(2));
    EXPECT_EQ(H.outstanding(), 2u);
    H.flush();
    P1.claim();
    EXPECT_EQ(H.outstanding(), 1u);
    P2.claim();
    EXPECT_EQ(H.outstanding(), 0u);
  });
  S.run();
}

TEST_F(SigFixture, SameHandlerBoundToTwoAgentsIsTwoStreams) {
  build();
  std::vector<int32_t> ServerOrder;
  auto Log = Server->addHandler<int32_t(int32_t)>(
      "log", [&](int32_t V) -> Outcome<int32_t> {
        ServerOrder.push_back(V);
        S.sleep(msec(2));
        return V;
      });
  Time Done1 = 0, Done2 = 0;
  Client->spawnProcess("p1", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Log);
    H.call(int32_t(1));
    Done1 = S.now();
  });
  Client->spawnProcess("p2", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Log);
    H.call(int32_t(2));
    Done2 = S.now();
  });
  S.run();
  // Both executed concurrently (different streams): completion within
  // one service time of each other, not serialized.
  Time Gap = Done1 > Done2 ? Done1 - Done2 : Done2 - Done1;
  EXPECT_LT(Gap, msec(2));
  EXPECT_EQ(ServerOrder.size(), 2u);
}

} // namespace
